// Allocation-regression gates for the per-packet data path. The free-list
// pools (engine events, core tasks, NIC dispatch records, skbs, RX ring
// cookies, user-copy buffers) and the sharded DAMN fast path make the steady
// state allocation-free; these tests pin that property so a stray closure or
// boxed value on the hot path fails CI instead of silently costing 10-20% of
// macro wall clock again.
package damn_test

import (
	"net/netip"
	"testing"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/tenant"
	"github.com/asplos18/damn/internal/testbed"
)

// TestCancelStormZeroAlloc gates the engine's cancel-heavy ticker churn: a
// start-ticker / schedule / stop-ticker / drain cycle must recycle the
// ticker and its event through the engine free lists instead of allocating
// a fresh ticker, stop closure and event per iteration (319 ns and 4
// allocs/op before the ticker free list).
func TestCancelStormZeroAlloc(t *testing.T) {
	e := sim.NewEngine(1)
	fn := func() {}
	cycle := func() {
		stop := e.Every(sim.Microsecond, fn)
		e.After(sim.Microsecond/2, fn)
		stop()
		e.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("cancel storm allocates %.1f/op, want 0", allocs)
	}
}

// TestDamnAllocFreeZeroAlloc gates the damn_alloc/damn_free fast path: after
// the first allocation warms the chunk, magazines and region shard, the
// per-buffer cycle must not touch the Go heap.
func TestDamnAllocFreeZeroAlloc(t *testing.T) {
	m := benchMachine(t, damn.SchemeDAMN)
	d := m.DamnAllocator()
	cycle := func() {
		pa, err := d.Alloc(damnCtx, testbed.NICDeviceID, iommu.PermWrite, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(damnCtx, pa); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("damn alloc/free allocates %.1f/op, want 0", allocs)
	}
}

// TestDmaMapUnmapZeroAlloc gates the dma_map+dma_unmap round trip under
// every scheme — for DAMN the §5.3 interposition, for the legacy schemes the
// real mapping machinery (walk caches and dense device tables included).
func TestDmaMapUnmapZeroAlloc(t *testing.T) {
	for _, scheme := range []damn.Scheme{
		damn.SchemeOff, damn.SchemeStrict, damn.SchemeDeferred, damn.SchemeShadow, damn.SchemeDAMN,
	} {
		t.Run(string(scheme), func(t *testing.T) {
			m := benchMachine(t, scheme)
			tb := m.Testbed()
			pa, damnOwned, err := tb.Kernel.AllocBuffer(nil, testbed.NICDeviceID, iommu.PermWrite, 4096)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Kernel.FreeBuffer(nil, pa, damnOwned)
			cycle := func() {
				v, err := tb.DMA.Map(nil, testbed.NICDeviceID, pa, 4096, dmaapi.FromDevice)
				if err != nil {
					t.Fatal(err)
				}
				if err := tb.DMA.Unmap(nil, testbed.NICDeviceID, v, 4096, dmaapi.FromDevice); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				cycle()
			}
			if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
				t.Fatalf("%s map/unmap allocates %.1f/op, want 0", scheme, allocs)
			}
		})
	}
}

// TestRXPathZeroAlloc gates the full receive path in steady state: wire
// arrival, DMA + translation, interrupt dispatch, driver unmap + repost,
// skb adoption, accessor copy, netfilter, user copy, free. After a warmup
// that populates every pool, a segment end-to-end must not allocate.
func TestRXPathZeroAlloc(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    2,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	hdr := []byte("hdr:steady")
	inject := func() {
		ma.NIC.InjectRX(0, device.Segment{Flow: 1, Len: 9000, Header: hdr})
		ma.Sim.RunUntilIdle()
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("RX path allocates %.1f/segment, want 0", allocs)
	}
	if recv.Segments < 700 {
		t.Fatalf("receiver saw %d segments; the path under test did not run", recv.Segments)
	}
}

// TestRetransmitPathZeroAlloc gates the ARQ loss-recovery cycle: every
// iteration loses a segment, detects the hole by duplicate ACKs, fast
// retransmits through the same injection path, reorders/flushes at the
// receiver, and returns the cumulative ACK through the real TX DMA path.
// After warmup the whole cycle — pooled ARQ segments, header rebuilds into
// the embedded buffer, reorder-window bookkeeping, pooled ACK transmissions
// and the lazily re-armed RTO timer — must not touch the Go heap.
func TestRetransmitPathZeroAlloc(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    2,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	src := netip.AddrFrom4([4]byte{192, 168, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	const segLen = 1500
	dropNext := false
	var arq *netstack.ArqSender
	arq = netstack.NewArqSender(ma.Sim, netstack.ArqConfig{SegLen: segLen},
		func(seg *netstack.ArqSegment, retx bool) {
			if !retx {
				payload := seg.Len - netstack.HeaderLen
				byteSeq := (seg.Seq - 1) * uint32(payload)
				seg.Hdr = netstack.AppendHeaders(seg.HdrBuf(), src, dst, 10001, 5001, byteSeq, payload)
				if dropNext {
					dropNext = false
					return // lost on the wire; recovery must resend it
				}
			}
			ma.NIC.InjectRX(0, device.Segment{Flow: 1, Seq: seg.Seq, Len: seg.Len, Header: seg.Hdr})
		})
	recv := &netstack.Receiver{K: ma.Kernel}
	rr := netstack.NewReliableReceiver(recv, ma.Driver, 0, 0, arq)
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		rr.HandleSegment(task, skb)
	}
	cycle := func() {
		// One lost segment, three successors: their duplicate ACKs trigger
		// the fast retransmit that repairs the hole, and the final fresh
		// ACK empties the window before the next iteration.
		dropNext = true
		for i := 0; i < 4; i++ {
			arq.SendNext()
		}
		ma.Sim.RunUntilIdle()
		if arq.InFlight() != 0 {
			t.Fatalf("window not drained: %d in flight", arq.InFlight())
		}
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("retransmit path allocates %.1f/cycle, want 0", allocs)
	}
	if arq.FastRetx < 700 || recv.Segments < 2800 {
		t.Fatalf("path under test did not run: %d fast retx, %d segments", arq.FastRetx, recv.Segments)
	}
}

// TestRXPathZeroAllocMultiRing extends the gate to RSS fan-out: four rings,
// each bound to its own core and DAMN shard, with every iteration pushing
// one segment through every ring. The per-queue completion/refill paths
// (and the hash → indirection-table steering itself) must stay
// allocation-free too.
func TestRXPathZeroAllocMultiRing(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    4, // Rings == Cores: 4 RX queues
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	hdr := []byte("hdr:steady")
	inject := func() {
		// The default indirection table is i % Rings over 128 slots, so
		// hash h < 4 selects ring h: one segment per ring per iteration.
		for h := uint32(0); h < 4; h++ {
			ma.NIC.InjectRX(0, device.Segment{Flow: int(h) + 1, Hash: h, Len: 9000, Header: hdr})
		}
		ma.Sim.RunUntilIdle()
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("multi-ring RX path allocates %.1f/iteration, want 0", allocs)
	}
	if recv.Segments < 2800 {
		t.Fatalf("receiver saw %d segments; the path under test did not run", recv.Segments)
	}
	if ma.Driver.RxWrongCore != 0 {
		t.Fatalf("RxWrongCore = %d, want 0", ma.Driver.RxWrongCore)
	}
}

// TestCapCheckZeroAlloc gates the multi-tenant capability check itself: the
// two-compare validation the driver runs before every map and unmap on a
// tenant-owned ring. Both the accept path and the deny path (aggregate and
// per-tenant denial counters included) must stay off the Go heap — the
// counters are created at Register time, never on the check.
func TestCapCheckZeroAlloc(t *testing.T) {
	tab := tenant.NewTable(4)
	tab.SetStats(stats.NewRegistry())
	tab.AssignRing(0, 0)
	tab.AssignRing(1, 1)
	tab.Present(1, tenant.Handle{Tenant: 0}) // forged: wrong tenant
	cycle := func() {
		if !tab.CheckRing(0) {
			t.Fatal("valid capability denied")
		}
		if tab.CheckRing(1) {
			t.Fatal("forged capability passed")
		}
		if tab.CheckRing(2) { // unowned: passes uncounted
		}
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("capability check allocates %.1f/op, want 0", allocs)
	}
	if tab.Denials < 1000 {
		t.Fatalf("deny path saw %d denials; the path under test did not run", tab.Denials)
	}
}

// TestRXPathZeroAllocTenancy re-runs the RX steady-state gate with the
// multi-tenant layer installed: the capability gate on every map/unmap and
// the fair-share admission pacer on every DMA must not add an allocation to
// the per-segment path. The containment poller is stopped before measuring
// (it is control-plane cadence, not per-packet work, and RunUntilIdle never
// drains a live ticker); the gate and the pacer stay installed.
func TestRXPathZeroAllocTenancy(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    2,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := tenant.Attach(ma, tenant.Config{})
	if _, err := mgr.AddTenant(0, 1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	mgr.Stop()
	hdr := []byte("hdr:steady")
	inject := func() {
		ma.NIC.InjectRX(0, device.Segment{Flow: 1, Len: 9000, Header: hdr})
		ma.Sim.RunUntilIdle()
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("tenant-gated RX path allocates %.1f/segment, want 0", allocs)
	}
	if recv.Segments < 700 {
		t.Fatalf("receiver saw %d segments; the path under test did not run", recv.Segments)
	}
	if mgr.Table().Checks == 0 {
		t.Fatal("capability gate never consulted; the path under test did not run")
	}
}

// bypassAllocMachine assembles a bypass machine with a set-up, started
// polling driver for the 0-alloc gates. The caller must advance the engine
// with bounded Run windows — the poll ticker never goes idle, so
// RunUntilIdle would spin forever.
func bypassAllocMachine(t *testing.T, scheme testbed.Scheme) (*testbed.Machine, *netstack.BypassDriver) {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   scheme,
		MemBytes: 256 << 20,
		Cores:    2,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := netstack.NewBypassDriver(ma.Kernel, ma.NIC, 0, testbed.BypassDeviceID,
		scheme == testbed.SchemeBypassProt)
	var setupErr error
	d.Core().Submit(false, func(task *sim.Task) { setupErr = d.Setup(task) })
	ma.Sim.Run(ma.Sim.Now())
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	d.Start()
	t.Cleanup(d.Close)
	return ma, d
}

// TestBypassPollZeroAlloc gates the idle busy-poll loop: every tick submits
// the pinned poll task, harvests an empty used ring and charges the full
// spin interval. The pinned ticker, task free list and reused harvest
// buffer make the steady-state tick allocation-free.
func TestBypassPollZeroAlloc(t *testing.T) {
	ma, d := bypassAllocMachine(t, testbed.SchemeBypassRaw)
	interval := ma.Model.BypassPollInterval
	cycle := func() {
		ma.Sim.Run(ma.Sim.Now() + interval)
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	polls := d.Polls
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("bypass poll tick allocates %.1f/op, want 0", allocs)
	}
	if d.Polls < polls+1000 {
		t.Fatalf("poll loop ticked %d times during measurement; the path under test did not run", d.Polls-polls)
	}
	if d.EmptyPolls == 0 {
		t.Fatal("no empty polls recorded; the idle spin path did not run")
	}
}

// TestBypassRXPathZeroAlloc gates the full bypass receive path in steady
// state: wire arrival, DMA through the per-app domain, used-ring publish,
// busy-poll harvest, run-to-completion delivery and the batched repost
// behind one doorbell. Runs the protected flavor so the IOMMU-translated
// path is the one measured.
func TestBypassRXPathZeroAlloc(t *testing.T) {
	ma, d := bypassAllocMachine(t, testbed.SchemeBypassProt)
	window := 4 * ma.Model.BypassPollInterval // covers DMA + publish + poll + repost
	hdr := []byte("hdr:steady")
	inject := func() {
		ma.NIC.InjectRX(0, device.Segment{Flow: 1, Len: 9000, Header: hdr})
		ma.Sim.Run(ma.Sim.Now() + window)
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	harvested := d.Harvested
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("bypass RX path allocates %.1f/segment, want 0", allocs)
	}
	if d.Harvested < harvested+500 {
		t.Fatalf("driver harvested %d completions during measurement; the path under test did not run", d.Harvested-harvested)
	}
	if d.Drops != 0 {
		t.Fatalf("%d completions dropped; the good-segment path was not the one measured", d.Drops)
	}
	if vq := d.Virtqueue(); vq.PublishFaults != 0 {
		t.Fatalf("%d used-ring publishes faulted; the registered pool does not cover the ring", vq.PublishFaults)
	}
}
