// Allocation-regression gates for the per-packet data path. The free-list
// pools (engine events, core tasks, NIC dispatch records, skbs, RX ring
// cookies, user-copy buffers) and the sharded DAMN fast path make the steady
// state allocation-free; these tests pin that property so a stray closure or
// boxed value on the hot path fails CI instead of silently costing 10-20% of
// macro wall clock again.
package damn_test

import (
	"testing"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// TestDamnAllocFreeZeroAlloc gates the damn_alloc/damn_free fast path: after
// the first allocation warms the chunk, magazines and region shard, the
// per-buffer cycle must not touch the Go heap.
func TestDamnAllocFreeZeroAlloc(t *testing.T) {
	m := benchMachine(t, damn.SchemeDAMN)
	d := m.DamnAllocator()
	cycle := func() {
		pa, err := d.Alloc(damnCtx, testbed.NICDeviceID, iommu.PermWrite, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(damnCtx, pa); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("damn alloc/free allocates %.1f/op, want 0", allocs)
	}
}

// TestDmaMapUnmapZeroAlloc gates the dma_map+dma_unmap round trip under
// every scheme — for DAMN the §5.3 interposition, for the legacy schemes the
// real mapping machinery (walk caches and dense device tables included).
func TestDmaMapUnmapZeroAlloc(t *testing.T) {
	for _, scheme := range []damn.Scheme{
		damn.SchemeOff, damn.SchemeStrict, damn.SchemeDeferred, damn.SchemeShadow, damn.SchemeDAMN,
	} {
		t.Run(string(scheme), func(t *testing.T) {
			m := benchMachine(t, scheme)
			tb := m.Testbed()
			pa, damnOwned, err := tb.Kernel.AllocBuffer(nil, testbed.NICDeviceID, iommu.PermWrite, 4096)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Kernel.FreeBuffer(nil, pa, damnOwned)
			cycle := func() {
				v, err := tb.DMA.Map(nil, testbed.NICDeviceID, pa, 4096, dmaapi.FromDevice)
				if err != nil {
					t.Fatal(err)
				}
				if err := tb.DMA.Unmap(nil, testbed.NICDeviceID, v, 4096, dmaapi.FromDevice); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				cycle()
			}
			if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
				t.Fatalf("%s map/unmap allocates %.1f/op, want 0", scheme, allocs)
			}
		})
	}
}

// TestRXPathZeroAlloc gates the full receive path in steady state: wire
// arrival, DMA + translation, interrupt dispatch, driver unmap + repost,
// skb adoption, accessor copy, netfilter, user copy, free. After a warmup
// that populates every pool, a segment end-to-end must not allocate.
func TestRXPathZeroAlloc(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    2,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	hdr := []byte("hdr:steady")
	inject := func() {
		ma.NIC.InjectRX(0, device.Segment{Flow: 1, Len: 9000, Header: hdr})
		ma.Sim.RunUntilIdle()
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("RX path allocates %.1f/segment, want 0", allocs)
	}
	if recv.Segments < 700 {
		t.Fatalf("receiver saw %d segments; the path under test did not run", recv.Segments)
	}
}

// TestRXPathZeroAllocMultiRing extends the gate to RSS fan-out: four rings,
// each bound to its own core and DAMN shard, with every iteration pushing
// one segment through every ring. The per-queue completion/refill paths
// (and the hash → indirection-table steering itself) must stay
// allocation-free too.
func TestRXPathZeroAllocMultiRing(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		MemBytes: 256 << 20,
		Cores:    4, // Rings == Cores: 4 RX queues
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	hdr := []byte("hdr:steady")
	inject := func() {
		// The default indirection table is i % Rings over 128 slots, so
		// hash h < 4 selects ring h: one segment per ring per iteration.
		for h := uint32(0); h < 4; h++ {
			ma.NIC.InjectRX(0, device.Segment{Flow: int(h) + 1, Hash: h, Len: 9000, Header: hdr})
		}
		ma.Sim.RunUntilIdle()
	}
	for i := 0; i < 200; i++ {
		inject()
	}
	if allocs := testing.AllocsPerRun(500, inject); allocs != 0 {
		t.Fatalf("multi-ring RX path allocates %.1f/iteration, want 0", allocs)
	}
	if recv.Segments < 2800 {
		t.Fatalf("receiver saw %d segments; the path under test did not run", recv.Segments)
	}
	if ma.Driver.RxWrongCore != 0 {
		t.Fatalf("RxWrongCore = %d, want 0", ma.Driver.RxWrongCore)
	}
}
