// Benchmarks, two tiers:
//
//   - Micro: real wall-clock cost of the reproduction's hot data
//     structures (DAMN alloc/free fast path, the DMA-map interposition,
//     the legacy schemes' map/unmap, IOTLB lookups, skb accessors).
//   - Macro: one benchmark per table/figure of the paper; each iteration
//     reruns the experiment in quick mode and reports the headline number
//     as a custom metric (Gb/s, TPS, KIOPS …). These take seconds per
//     iteration by design.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package damn_test

import (
	"fmt"
	"runtime"
	"testing"

	damn "github.com/asplos18/damn"
	damncore "github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/experiments"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// damnCtx is a zero allocation context (core 0, standard context).
var damnCtx = damncore.Ctx{}

func benchMachine(b testing.TB, scheme damn.Scheme) *damn.Machine {
	b.Helper()
	m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 512 << 20, Cores: 4})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// ---- Micro benchmarks ----

// BenchmarkDamnAllocFree measures the damn_alloc/damn_free fast path
// (per-core bump pointer + chunk refcount, §5.4).
func BenchmarkDamnAllocFree(b *testing.B) {
	m := benchMachine(b, damn.SchemeDAMN)
	d := m.DamnAllocator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, err := d.Alloc(damnCtx, testbed.NICDeviceID, iommu.PermWrite, 1500)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(damnCtx, pa); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDamnAllocFreeFullChunk exercises the chunk-recycling path: every
// allocation consumes a whole 64 KiB chunk, so each round trips through the
// magazine layer.
func BenchmarkDamnAllocFreeFullChunk(b *testing.B) {
	m := benchMachine(b, damn.SchemeDAMN)
	d := m.DamnAllocator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, err := d.Alloc(damnCtx, testbed.NICDeviceID, iommu.PermWrite, d.MaxAlloc())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(damnCtx, pa); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelSlabAllocFree is the kmalloc baseline the DAMN paths are
// compared against.
func BenchmarkKernelSlabAllocFree(b *testing.B) {
	m := benchMachine(b, damn.SchemeOff)
	slab := m.Testbed().Slab
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, err := slab.Alloc(1500, 0)
		if err != nil {
			b.Fatal(err)
		}
		slab.Free(pa)
	}
}

// BenchmarkDmaMapUnmap measures a full dma_map+dma_unmap round trip under
// each scheme — for DAMN this is the §5.3 interposition fast path (page-
// struct lookup + MSB check), for the others the real mapping machinery.
func BenchmarkDmaMapUnmap(b *testing.B) {
	for _, scheme := range []damn.Scheme{
		damn.SchemeOff, damn.SchemeStrict, damn.SchemeDeferred, damn.SchemeShadow, damn.SchemeDAMN,
	} {
		b.Run(string(scheme), func(b *testing.B) {
			m := benchMachine(b, scheme)
			tb := m.Testbed()
			pa, damnOwned, err := tb.Kernel.AllocBuffer(nil, testbed.NICDeviceID, iommu.PermWrite, 4096)
			if err != nil {
				b.Fatal(err)
			}
			defer tb.Kernel.FreeBuffer(nil, pa, damnOwned)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := tb.DMA.Map(nil, testbed.NICDeviceID, pa, 4096, dmaapi.FromDevice)
				if err != nil {
					b.Fatal(err)
				}
				if err := tb.DMA.Unmap(nil, testbed.NICDeviceID, v, 4096, dmaapi.FromDevice); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIOMMUTranslate measures a warm IOTLB translation.
func BenchmarkIOMMUTranslate(b *testing.B) {
	m := benchMachine(b, damn.SchemeDAMN)
	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 4096)
	if err != nil {
		b.Fatal(err)
	}
	u := m.Testbed().IOMMU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Translate(testbed.NICDeviceID, buf.DMAAddr, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceDMAWrite measures an end-to-end translated device write.
func BenchmarkDeviceDMAWrite(b *testing.B) {
	m := benchMachine(b, damn.SchemeDAMN)
	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 4096)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1500)
	u := m.Testbed().IOMMU
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.DMAWrite(testbed.NICDeviceID, buf.DMAAddr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkbAccess measures the §5.2 accessor with the TOCTTOU copy.
func BenchmarkSkbAccess(b *testing.B) {
	m := benchMachine(b, damn.SchemeDAMN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		skb, err := m.NewSKB(4096, true)
		if err != nil {
			b.Fatal(err)
		}
		skb.SetReceived(4096, 0)
		b.StartTimer()
		if _, err := skb.Access(nil, 128); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		skb.Free(nil)
		b.StartTimer()
	}
}

// ---- Engine micro benchmarks ----
//
// The event loop underneath every simulation. The free-list pool and the
// reusable ticker event make all three steady-state paths allocation-free;
// these benchmarks are the regression gate (cmd/benchreport records them in
// BENCH_PR3.json).

// BenchmarkEngineScheduleRun measures the schedule+dispatch round trip: one
// event scheduled and executed per iteration. Steady state must not
// allocate — the event struct comes from the engine's free pool.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Microsecond, fn)
		e.RunUntilIdle()
	}
}

// BenchmarkEngineTicker measures one periodic tick. The ticker owns a single
// pinned event and one closure for its whole lifetime, so ticking must not
// allocate per period.
func BenchmarkEngineTicker(b *testing.B) {
	e := sim.NewEngine(1)
	ticks := 0
	stop := e.Every(sim.Microsecond, func() { ticks++ })
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(sim.Time(b.N) * sim.Microsecond)
	b.StopTimer()
	stop()
	if ticks < b.N {
		b.Fatalf("ticker ran %d times, want ≥ %d", ticks, b.N)
	}
}

// BenchmarkEngineCancelStorm measures a start/stop ticker cycle with live
// traffic in the heap — the pattern that used to leak cancelled events until
// the engine learned to compact.
func BenchmarkEngineCancelStorm(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := e.Every(sim.Microsecond, fn)
		e.After(sim.Microsecond/2, fn)
		stop()
		e.RunUntilIdle()
	}
}

// BenchmarkBuddyAllocFree measures the buddy page allocator.
func BenchmarkBuddyAllocFree(b *testing.B) {
	m, err := mem.New(mem.Config{TotalBytes: 256 << 20, NUMANodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.AllocPages(4, 0)
		if err != nil {
			b.Fatal(err)
		}
		m.FreePages(p, 4)
	}
}

// ---- Macro benchmarks: one per table/figure ----

var quickOpts = experiments.Options{Quick: true}

// BenchmarkTable1Matrix regenerates the Table 1 security matrix by mounting
// the attack probes against every scheme.
func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("matrix incomplete")
		}
	}
}

// BenchmarkFig4SingleCore regenerates Fig 4 and reports damn's single-core
// RX throughput.
func BenchmarkFig4SingleCore(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "damn" && r.Dir == "RX" {
				gbps = r.Gbps
			}
		}
	}
	b.ReportMetric(gbps, "damn-RX-Gb/s")
}

// BenchmarkFig5MultiCore regenerates Fig 5 and reports strict's throttled
// multi-core RX throughput.
func BenchmarkFig5MultiCore(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "strict" && r.Dir == "RX" {
				gbps = r.Gbps
			}
		}
	}
	b.ReportMetric(gbps, "strict-RX-Gb/s")
}

// BenchmarkFig6Bidirectional regenerates Figures 1/6 and reports damn's
// aggregate throughput.
func BenchmarkFig6Bidirectional(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "damn" {
				gbps = r.TotalGbps
			}
		}
	}
	b.ReportMetric(gbps, "damn-total-Gb/s")
}

// BenchmarkTable3Variants regenerates Table 3 and reports damn's fraction
// of the iommu-off throughput.
func BenchmarkTable3Variants(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		pct = rows[0].PctOfIOMMU
	}
	b.ReportMetric(pct, "damn-%-of-off")
}

// BenchmarkFig2Interference regenerates Fig 2 and reports the shadow
// slowdown of the Graph500 co-runner.
func BenchmarkFig2Interference(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		var shadow, alone float64
		for _, r := range rows {
			switch r.Config {
			case "shadow":
				shadow = r.GraphIterSec
			case "no net":
				alone = r.GraphIterSec
			}
		}
		if alone > 0 {
			slowdown = shadow / alone
		}
	}
	b.ReportMetric(slowdown, "shadow-BFS-slowdown-x")
}

// BenchmarkFig7Memcached regenerates Fig 7 and reports strict's TPS.
func BenchmarkFig7Memcached(b *testing.B) {
	var tps float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "strict" {
				tps = r.TPS
			}
		}
	}
	b.ReportMetric(tps, "strict-TPS")
}

// BenchmarkFig8Tocttou regenerates Fig 8 and reports damn's CPU at the
// full-copy extreme.
func BenchmarkFig8Tocttou(b *testing.B) {
	var cpu float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "damn" && r.AccessedBytes == 64<<10 {
				cpu = r.CPUUtil * 100
			}
		}
	}
	b.ReportMetric(cpu, "damn-64KiB-CPU-%")
}

// BenchmarkFig9PagesMapped regenerates Fig 9 and reports the final
// ever-mapped page count.
func BenchmarkFig9PagesMapped(b *testing.B) {
	var ever float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		ever = float64(points[len(points)-1].EverPages)
	}
	b.ReportMetric(ever, "ever-mapped-pages")
}

// BenchmarkFig10Memory regenerates Fig 10 and reports damn's bidirectional
// 28-instance memory usage.
func BenchmarkFig10Memory(b *testing.B) {
	var mib float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "damn" && r.Direction == "bidir" && r.Instances == 28 {
				mib = r.AvgMiB
			}
		}
	}
	b.ReportMetric(mib, "damn-bidir-MiB")
}

// BenchmarkFig11Nvme regenerates Fig 11 and reports shadow's 512 B IOPS
// (the §6.5 premise: prior schemes suffice for storage).
func BenchmarkFig11Nvme(b *testing.B) {
	var kiops float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "shadow" && r.BlockSize == 512 {
				kiops = r.KIOPS
			}
		}
	}
	b.ReportMetric(kiops, "shadow-512B-KIOPS")
}

// BenchmarkAblations regenerates the §5.4 design-ablation table and reports
// the no-DMA-cache configuration's throughput (the cost the permanent
// mapping avoids).
func BenchmarkAblations(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Config == "damn-no-dma-cache" {
				gbps = r.TotalGbps
			}
		}
	}
	b.ReportMetric(gbps, "no-cache-Gb/s")
}

// BenchmarkSuiteQuick reruns the entire quick-mode evaluation suite (every
// paper figure, in catalog order) once per iteration — serially and fanned
// across GOMAXPROCS workers. The parallel/serial ratio is the headline
// speedup recorded in BENCH_PR3.json; output byte-identity between the two
// is asserted on every iteration.
func BenchmarkSuiteQuick(b *testing.B) {
	var serialOut string
	b.Run("parallel-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := experiments.RunSuite(experiments.Options{Quick: true, Seed: 1, Parallel: 1})
			if err != nil {
				b.Fatal(err)
			}
			serialOut = out
		}
	})
	workers := runtime.GOMAXPROCS(0)
	b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := experiments.RunSuite(experiments.Options{Quick: true, Seed: 1, Parallel: workers})
			if err != nil {
				b.Fatal(err)
			}
			if serialOut != "" && out != serialOut {
				b.Fatal("parallel suite output diverged from the serial run")
			}
		}
	})
}
