// Command attacksim mounts the paper's DMA attacks (§2.1, §4.1) against
// every protection configuration and reports which attacks land. This is
// the executable version of Table 1's security columns.
//
// Scenarios:
//
//  1. arbitrary-read   — the device scans for a kernel secret it was
//     never given access to.
//  2. co-location      — the device reads a secret sharing a page with a
//     legitimately mapped buffer (sub-page granularity).
//  3. window-write     — the device writes a buffer after dma_unmap
//     (deferred-mode TOCTTOU window).
//  4. tocttou-header   — the device rewrites packet headers after the
//     firewall inspected them.
//
// With -recovery, a fifth scenario mounts a DMA-fault storm (the device
// hammers translations it has no mapping for) with the fault-domain
// recovery supervisor attached: the attack is "blocked" when the supervisor
// quarantines the device and heals the domain, and "lands" where no
// translation means no fault records — with the IOMMU off there is nothing
// to detect, let alone contain.
//
// With -tenants, a sixth scenario re-parents the malicious device as a
// compromised *tenant*: two tenants share the NIC through SR-IOV-style
// virtual functions (per-tenant IOMMU domains, DAMN generations, ring
// pairs, capability-gated buffer handoff), and tenant 0 mounts the full
// hostile repertoire — forged capabilities, DMA probes into its sibling's
// IOVA ranges, a VF-filtered fault storm. The attack is "blocked" when no
// probe reads the neighbour's memory and the containment ladder
// quarantines (or evicts) the attacker; with the IOMMU off the virtual
// functions run passthrough and the probes land.
//
// With -bypass, the kernel-bypass flavors join the attacked set and a
// seventh scenario targets the bypass pool directly: a polling driver
// registers its hugepage pool, then the compromised device probes a kernel
// secret *outside* the registered region under the app's DMA identity.
// bypass-raw runs passthrough, so the probe lands anywhere in RAM;
// bypass-prot's per-app domain confines DMA to the registered hugepages and
// the probe is blocked — the pool boundary is the protection.
//
// -loss P arms P% link loss (80% clean drops, 20% corruption) on the
// attacked machines: protection verdicts are properties of the translation
// schemes, so they must be identical on a lossy wire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

type outcome struct {
	scenario string
	landed   bool
	detail   string
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "schemes attacked concurrently (1 = serial; output is byte-identical for any value)")
	faultRate := flag.Float64("faults", 0, "per-visit fault-injection probability for every fault kind (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
	statsOut := flag.String("stats", "", "write per-scheme metrics snapshots to this JSON file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the attacked machines")
	recover := flag.Bool("recovery", false, "attach the fault-domain recovery supervisor and mount a DMA-fault-storm scenario")
	tenants := flag.Bool("tenants", false, "mount the compromised-tenant scenario: the malicious device attacks as a tenant virtual function")
	bypass := flag.Bool("bypass", false, "attack the kernel-bypass flavors too, including a pool-escape probe under the app's DMA identity")
	lossPct := flag.Float64("loss", 0, "link-loss percentage armed on the attacked machines (80% drop / 20% corrupt); verdicts must not change on a lossy wire")
	flag.Parse()

	var faultCfg *faults.Config
	if *faultRate > 0 {
		faultCfg = &faults.Config{Seed: *faultSeed, Rates: faults.UniformRates(*faultRate)}
	}
	if *lossPct > 0 {
		// Link loss is noise, not an attack vector: the scenarios must reach
		// the same verdicts over a lossy wire. Arm the two link-loss kinds on
		// top of whatever -faults configured.
		if faultCfg == nil {
			faultCfg = &faults.Config{Seed: *faultSeed, Rates: map[faults.Kind]float64{}}
		}
		faultCfg.Rates[faults.LinkDrop] = 0.8 * *lossPct / 100
		faultCfg.Rates[faults.LinkCorrupt] = 0.2 * *lossPct / 100
	}

	var tracer *stats.Tracer
	if *traceOut != "" {
		tracer = stats.NewTracer()
	}
	snaps := map[string]stats.Snapshot{}

	fmt.Println("DMA attack simulation — a compromised NIC attacks each configuration")
	fmt.Println()
	exitCode := 0

	schemes := testbed.AllSchemes
	if *bypass {
		schemes = append(append([]testbed.Scheme{}, testbed.AllSchemes...), testbed.BypassSchemes...)
	}

	// Each scheme's machine is fully private, so the attacks fan out across
	// workers; results print in scheme order, so output is byte-identical
	// to a serial run. Tracing shares one sink — it forces serial.
	type result struct {
		outs []outcome
		snap stats.Snapshot
		err  error
	}
	workers := *parallel
	if workers < 1 || tracer != nil {
		workers = 1
	}
	if workers > len(schemes) {
		workers = len(schemes)
	}
	results := make([]result, len(schemes))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := &results[i]
				r.outs, r.snap, r.err = attack(schemes[i], *seed, tracer, faultCfg, *recover, *tenants)
			}
		}()
	}
	for i := range schemes {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, scheme := range schemes {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", scheme, r.err)
			os.Exit(1)
		}
		snaps[string(scheme)] = r.snap
		fmt.Printf("=== %s ===\n", scheme)
		for _, o := range r.outs {
			verdict := "BLOCKED"
			if o.landed {
				verdict = "LANDED "
			}
			fmt.Printf("  %-16s %s  %s\n", o.scenario, verdict, o.detail)
		}
		fmt.Println()
	}
	if *statsOut != "" {
		if err := writeJSONFile(*statsOut, func(enc *json.Encoder) error {
			enc.SetIndent("", "  ")
			return enc.Encode(snaps)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metric snapshots to %s\n", len(snaps), *statsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tracer.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	os.Exit(exitCode)
}

func writeJSONFile(path string, write func(*json.Encoder) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(json.NewEncoder(f)); err != nil {
		return err
	}
	return f.Close()
}

func attack(scheme testbed.Scheme, seed int64, tracer *stats.Tracer, faultCfg *faults.Config, withRecovery, withTenants bool) ([]outcome, stats.Snapshot, error) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: scheme, MemBytes: 128 << 20, Seed: seed, RingSize: 8,
		Tracer: tracer, Faults: faultCfg,
	})
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	var outs []outcome

	// 1. Arbitrary read of a kernel secret.
	secretPA, err := ma.Slab.Alloc(64, 0)
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	secret := []byte("KERNEL-SECRET-KEY")
	ma.Mem.Write(secretPA, secret)
	got, rerr := attacker.TryRead(iommu.IOVA(secretPA), len(secret))
	landed := rerr == nil && string(got) == string(secret)
	outs = append(outs, outcome{"arbitrary-read", landed,
		"device DMA-reads a kmalloc'ed secret at its physical address"})

	// 2. Co-location (sub-page) exposure.
	bufPA, err := ma.Slab.Alloc(256, 0)
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	neighbourPA, err := ma.Slab.Alloc(256, 0)
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	ma.Mem.Write(neighbourPA, secret)
	colanded := false
	if ma.Damn == nil {
		v, err := ma.DMA.Map(nil, testbed.NICDeviceID, bufPA, 256, dmaapi.ToDevice)
		if err == nil {
			found, _ := attacker.ScanForSecret(v&^iommu.IOVA(mem.PageMask),
				(v&^iommu.IOVA(mem.PageMask))+iommu.IOVA(mem.PageSize), secret)
			colanded = len(found) > 0
			ma.DMA.Unmap(nil, testbed.NICDeviceID, v, 256, dmaapi.ToDevice)
		}
	} else {
		// Under DAMN the packet buffer never shares a page with the
		// secret; scan the whole region around the buffer.
		skb, err := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 256, false)
		if err != nil {
			return nil, stats.Snapshot{}, err
		}
		v, _ := ma.Damn.IOVAOf(skb.HeadPA())
		base := v &^ iommu.IOVA(mem.HugePageMask)
		found, _ := attacker.ScanForSecret(base, base+iommu.IOVA(mem.HugePageSize), secret)
		colanded = len(found) > 0
	}
	outs = append(outs, outcome{"co-location", colanded,
		"device hunts a secret co-located with a mapped network buffer"})

	// 3. Post-unmap write (the deferred window).
	p, err := ma.Mem.AllocPages(0, 0)
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	winLanded := false
	if passthrough(scheme) {
		winLanded = attacker.TryWrite(iommu.IOVA(p.PFN().Addr()), []byte("evil")) == nil
	} else if ma.Damn == nil {
		v, err := ma.DMA.Map(nil, testbed.NICDeviceID, p.PFN().Addr(), mem.PageSize, dmaapi.FromDevice)
		if err != nil {
			return nil, stats.Snapshot{}, err
		}
		attacker.TryWrite(v, []byte("prime")) // prime the IOTLB
		ma.DMA.Unmap(nil, testbed.NICDeviceID, v, mem.PageSize, dmaapi.FromDevice)
		if scheme == testbed.SchemeShadow {
			// Writes land in the shadow pool only; check the kernel
			// buffer instead.
			probe := make([]byte, 5)
			ma.Mem.Read(p.PFN().Addr(), probe)
			before := string(probe)
			attacker.TOCTTOUFlip(v, []byte("evil!"), 3)
			ma.Mem.Read(p.PFN().Addr(), probe)
			winLanded = string(probe) != before
		} else {
			winLanded = attacker.TOCTTOUFlip(v, []byte("evil!"), 3)
		}
	} else {
		// DAMN: buffers are permanently mapped by design, but freed
		// chunks only ever hold packet data; the equivalent attack is
		// scenario 4.
		winLanded = false
	}
	outs = append(outs, outcome{"window-write", winLanded,
		"device writes a buffer after dma_unmap returned"})

	// 4. TOCTTOU on inspected headers.
	tocttou, err := headerTocttou(ma, attacker, scheme)
	if err != nil {
		return nil, stats.Snapshot{}, err
	}
	outs = append(outs, outcome{"tocttou-header", tocttou,
		"device rewrites packet headers after firewall inspection"})

	// 5. Fault-storm containment (only with -recovery).
	if withRecovery {
		outs = append(outs, stormOutcome(ma, attacker))
	}
	// 6. Compromised tenant (only with -tenants; the bypass flavors hand
	// the whole queue pair to one app, so SR-IOV tenancy doesn't apply).
	if withTenants && !testbed.IsBypass(scheme) {
		o, err := tenantOutcome(scheme, seed)
		if err != nil {
			return nil, stats.Snapshot{}, err
		}
		outs = append(outs, o)
	}
	// 7. Pool escape (bypass flavors only): the attack the bypass figure's
	// safety columns are built on, mounted under the app's DMA identity.
	if testbed.IsBypass(scheme) {
		o, err := poolEscapeOutcome(ma, scheme)
		if err != nil {
			return nil, stats.Snapshot{}, err
		}
		outs = append(outs, o)
	}
	return outs, ma.StatsSnapshot(), nil
}

// passthrough reports whether the scheme leaves the NIC's DMA untranslated:
// iommu-off, and bypass-raw's permanent identity mappings.
func passthrough(scheme testbed.Scheme) bool {
	return scheme == testbed.SchemeOff || scheme == testbed.SchemeBypassRaw
}

// poolEscapeOutcome sets up the polling driver (registering its hugepage
// pool) and then probes a kernel secret *outside* the registered region
// under the bypass device identity. bypass-raw runs passthrough, so the
// probe reads anything; bypass-prot's per-app domain has exactly the pool
// hugepages mapped, so the probe faults at the pool boundary.
func poolEscapeOutcome(ma *testbed.Machine, scheme testbed.Scheme) (outcome, error) {
	d := netstack.NewBypassDriver(ma.Kernel, ma.NIC, 0, testbed.BypassDeviceID,
		scheme == testbed.SchemeBypassProt)
	var setupErr error
	d.Core().Submit(false, func(t *sim.Task) { setupErr = d.Setup(t) })
	ma.Sim.Run(ma.Sim.Now())
	if setupErr != nil {
		return outcome{}, setupErr
	}
	defer d.Close()
	secret := []byte("OUTSIDE-POOL-SECRET")
	secretPA, err := ma.Slab.Alloc(64, 0)
	if err != nil {
		return outcome{}, err
	}
	ma.Mem.Write(secretPA, secret)
	attacker := device.NewMalicious(ma.IOMMU, testbed.BypassDeviceID)
	got, rerr := attacker.TryRead(iommu.IOVA(secretPA), len(secret))
	if rerr == nil && string(got) == string(secret) {
		return outcome{"pool-escape", true,
			"app's DMA identity reads a kernel secret outside its registered pool"}, nil
	}
	return outcome{"pool-escape", false, fmt.Sprintf(
		"probe outside the registered pool faulted (%d hugepages mapped, nothing else)",
		len(d.PoolChunks()))}, nil
}

// tenantOutcome re-parents the attacker as a compromised tenant virtual
// function on a fresh two-tenant machine: forged capabilities, neighbour
// IOVA probes and a VF-filtered fault storm, with the containment ladder
// armed. The attack lands if any probe reads the sibling's memory.
func tenantOutcome(scheme testbed.Scheme, seed int64) (outcome, error) {
	res, err := workloads.RunTenants(workloads.TenantsConfig{
		Scheme: scheme, Tenants: 2, FaultSeed: seed,
		Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond,
		Attack: true, AttackLen: 3 * sim.Millisecond,
	})
	if err != nil {
		return outcome{}, err
	}
	if res.ProbesLanded > 0 {
		return outcome{"tenant-probe", true, fmt.Sprintf(
			"%d cross-tenant probes read the neighbour's memory (attacker %s)",
			res.ProbesLanded, res.AttackerState)}, nil
	}
	return outcome{"tenant-probe", false, fmt.Sprintf(
		"probes blocked (%d classified), %d forged caps denied, attacker %s",
		res.ProbesBlocked, res.CapDenials, res.AttackerState)}, nil
}

// stormOutcome mounts a DMA-fault storm with the recovery supervisor
// attached: the compromised device hammers translations it owns no mapping
// for. The attack is contained when the supervisor quarantines the device
// and heals the domain; with the IOMMU in passthrough there are no fault
// records and the storm sails through unsupervised.
func stormOutcome(ma *testbed.Machine, attacker *device.Malicious) outcome {
	sup := recovery.Attach(ma, recovery.Config{})
	defer sup.Stop()
	stop := ma.Sim.Every(2*sim.Microsecond, func() {
		attacker.TryRead(iommu.IOVA(0xfeed0000), 64)
	})
	deadline := ma.Sim.Now() + 20*sim.Millisecond
	for ma.Sim.Now() < deadline && sup.State(testbed.NICDeviceID) != recovery.Quarantined {
		ma.Sim.Run(ma.Sim.Now() + 10*sim.Microsecond)
	}
	stop()
	for ma.Sim.Now() < deadline {
		st := sup.State(testbed.NICDeviceID)
		if st == recovery.Healthy || st == recovery.Failed {
			break
		}
		ma.Sim.Run(ma.Sim.Now() + 10*sim.Microsecond)
	}
	if sup.Storms > 0 && sup.State(testbed.NICDeviceID) == recovery.Healthy {
		return outcome{"fault-storm", false, fmt.Sprintf(
			"storm detected, device quarantined and healed (MTTR %.1fµs)",
			float64(sup.MTTR(testbed.NICDeviceID))/1e6)}
	}
	return outcome{"fault-storm", true,
		"storm DMAs flowed without detection — no fault records, no containment"}
}

// headerTocttou reports whether the device manages to change the OS's view
// of already-inspected header bytes.
func headerTocttou(ma *testbed.Machine, attacker *device.Malicious, scheme testbed.Scheme) (bool, error) {
	packet := []byte("SRC=10.0.0.1 OK")
	var skb *netstack.SKBuff
	var v iommu.IOVA
	var err error
	if ma.Damn != nil {
		skb, err = netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, true)
		if err != nil {
			return false, err
		}
		v, _ = ma.Damn.IOVAOf(skb.HeadPA())
	} else {
		skb, err = netstack.AllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, true)
		if err != nil {
			return false, err
		}
		v, err = skb.MapForDevice(nil, dmaapi.FromDevice)
		if err != nil {
			return false, err
		}
	}
	if _, err := ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet); err != nil &&
		!passthrough(scheme) {
		return false, err
	}
	skb.SetReceived(len(packet), len(packet))
	if ma.Damn == nil {
		if err := skb.UnmapForDevice(nil, dmaapi.FromDevice); err != nil {
			return false, err
		}
	}
	before, _ := skb.Access(nil, len(packet))
	saved := string(before)
	attacker.TOCTTOUFlip(v, []byte("SRC=66.6.6.6 NO"), 3)
	if passthrough(scheme) {
		// Passthrough: attack the physical address directly.
		attacker.TryWrite(iommu.IOVA(skb.HeadPA()), []byte("SRC=66.6.6.6 NO"))
	}
	after, _ := skb.Access(nil, len(packet))
	return string(after) != saved, nil
}
