// Command damnbench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated testbed and prints them as text tables.
//
// Usage:
//
//	damnbench [-quick] [-parallel N] [-seed N]
//	          [-exp all|table1|fig2|fig4|fig5|fig6|table3|fig7|fig8|fig9|fig10|fig11|scaling|chaos|recovery|loss|cluster|tenants|bypass]
//	          [-recovery] [-scaling] [-loss] [-cluster] [-tenants] [-bypass] [-topo-workers N]
//	          [-faults P] [-fault-seed N] [-stats out.json] [-trace out.trace]
//
// The default full-fidelity run takes a few minutes; -quick shrinks the
// measurement windows for a fast smoke pass. -parallel N fans each figure's
// scheme × datapoint jobs out across N workers (default GOMAXPROCS;
// -parallel 1 reproduces the fully serial run). Every job owns a private
// simulated machine and RNG and results are collected in declaration order,
// so stdout is byte-identical for every N; per-figure timing goes to stderr
// to keep it that way. -stats writes a JSON document with every machine's
// metrics registry keyed "<figure>/<scheme>"; -trace writes a Chrome
// trace_event file (load in chrome://tracing or Perfetto) with one process
// per simulated machine and one thread per core — tracing shares one sink
// across machines, so it forces a serial run.
//
// -faults P arms the deterministic fault-injection plane on every machine:
// each fault kind (link drop/corrupt/duplicate/reorder, DMA faults,
// invalidation time-outs, IOVA/memory exhaustion, lost/delayed completions)
// fires with per-visit probability P on the schedule rooted at -fault-seed.
// -exp chaos runs the dedicated chaos harness and prints the injected-fault
// and recovery evidence.
//
// -recovery (or -exp recovery) adds the fault-domain recovery figure: per
// scheme, a DMA-fault storm quarantines the NIC and the recovery supervisor
// heals it; the row reports the throughput dip, detection latency and MTTR.
// With -exp chaos, -recovery also attaches the supervisor to the chaos
// machines, so chaos storms are contained instead of ridden out.
//
// -scaling (or -exp scaling) adds the RSS scale-out figure: netperf RX
// throughput at 1/2/4/8/16 simulated cores per scheme, with flows spread
// across one RX ring per core by the deterministic Toeplitz hash. The run
// fails if any RX completion executes off its ring's core or any DAMN
// request is clamped to a foreign shard.
//
// -loss (or -exp loss) adds the loss-resilience figure: reliable (ARQ)
// flows per scheme over a lossy link (0–5% drop/corrupt), reporting
// delivered goodput, retransmission rate, CPU per delivered megabyte, and
// a chaos column where the same flows ride the uniform all-kinds fault
// schedule under the recovery supervisor. The fault schedule is rooted at
// -fault-seed and replays exactly.
//
// -tenants (or -exp tenants) adds the multi-tenant isolation figure: N
// tenants (1/2/4/8) share one protected NIC, each with its own virtual
// function — a private IOMMU domain, DAMN cache generation and RSS ring
// pair — behind a capability-checked buffer handoff and a weighted fair
// share of the PCIe ceiling. For every N > 1 datapoint one tenant is
// compromised (forged capabilities, DMA probes into sibling IOVA ranges, a
// VF-filtered DMA-fault storm); the row reports the neighbours' worst
// goodput ratio, where the containment ladder left the attacker, and what
// the capability gate and per-tenant domains blocked.
//
// -bypass (or -exp bypass) adds the kernel-bypass figure: the five kernel
// schemes under single-core netperf RX next to bypass-raw (virtio-style
// polling rings, permanent identity mappings, no protection — the DPDK
// baseline) and bypass-prot (the same rings behind a per-app IOMMU domain
// registered once at setup). Rows report goodput, CPU microseconds per
// megabyte (busy-poll spin included), idle busy-poll burn, and the measured
// Table 1 safety verdicts; the run fails unless raw beats iommu-off, prot
// stays within 10% of raw, and both burn idle CPU. The bypass family also
// appears as extra rows of the -scaling figure.
//
// -cluster (or -exp cluster) adds the multi-machine cluster figure: per
// scheme, a 4-sender incast storm through a tail-dropping router and a
// 2-client/2-server memcached cluster behind a load balancer, both on the
// sharded conservative-parallel topology engine. -topo-workers N advances
// N machines concurrently inside lookahead epochs; the figure's rows are
// byte-identical for any value (1 = serial reference).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/asplos18/damn/internal/experiments"
	"github.com/asplos18/damn/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "short measurement windows")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker count (1 = serial; output is byte-identical for any value)")
	seed := flag.Int64("seed", 1, "simulation seed")
	faultRate := flag.Float64("faults", 0, "per-visit fault-injection probability for every fault kind (0 = off); see internal/faults")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule (used with -faults or -exp chaos)")
	exp := flag.String("exp", "all", "experiment to run (comma separated): all, table1, fig2, fig4, fig5, fig6, table3, fig7, fig8, fig9, fig10, fig11, ablations, footnote5, scaling, chaos, recovery, loss, cluster, tenants, bypass")
	recover := flag.Bool("recovery", false, "fault-domain recovery: add the recovery figure to the run, and attach the device-recovery supervisor to chaos machines")
	scaling := flag.Bool("scaling", false, "RSS scale-out: add the Gb/s vs. core-count figure to the run")
	loss := flag.Bool("loss", false, "loss resilience: add the ARQ goodput-vs-link-loss figure to the run")
	cluster := flag.Bool("cluster", false, "multi-machine topologies: add the incast + memcached cluster figure to the run")
	tenants := flag.Bool("tenants", false, "multi-tenant isolation: add the fairness + compromised-tenant blast-radius figure to the run")
	bypass := flag.Bool("bypass", false, "kernel bypass: add the polling-path vs. kernel-stack figure to the run")
	topoWorkers := flag.Int("topo-workers", 1, "host workers advancing a topology's machines in parallel (output is identical for any value)")
	statsOut := flag.String("stats", "", "write per-figure metrics snapshots to this JSON file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of every simulated machine")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel,
		TopoWorkers: *topoWorkers,
		FaultRate:   *faultRate, FaultSeed: *faultSeed, Recovery: *recover}
	var snaps map[string]stats.Snapshot
	if *statsOut != "" {
		snaps = map[string]stats.Snapshot{}
		opts.OnStats = func(label string, snap stats.Snapshot) { snaps[label] = snap }
	}
	if *traceOut != "" {
		opts.Tracer = stats.NewTracer()
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if *recover {
		want["recovery"] = true
	}
	if *scaling {
		want["scaling"] = true
	}
	if *loss {
		want["loss"] = true
	}
	if *cluster {
		want["cluster"] = true
	}
	if *tenants {
		want["tenants"] = true
	}
	if *bypass {
		want["bypass"] = true
	}
	all := want["all"]

	ran := 0
	for _, fig := range experiments.Catalog() {
		// The chaos harness is a robustness gate, not a paper figure: run
		// it only when asked for by name, so -exp all stays the paper's
		// output.
		if !want[fig.Name] && (!all || !fig.Paper) {
			continue
		}
		ran++
		start := time.Now()
		out, err := fig.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", fig.Name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		// Wall-clock timing goes to stderr: stdout stays byte-identical
		// across runs and -parallel settings.
		fmt.Fprintf(os.Stderr, "(%s computed in %.1fs)\n", fig.Name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, snaps); err != nil {
			fmt.Fprintf(os.Stderr, "stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metric snapshots to %s\n", len(snaps), *statsOut)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s", opts.Tracer.Len(), *traceOut)
		if d := opts.Tracer.Dropped(); d > 0 {
			fmt.Printf(" (%d dropped past the event limit)", d)
		}
		fmt.Println()
	}
}

func writeStats(path string, snaps map[string]stats.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		return err
	}
	return f.Close()
}

func writeTrace(path string, tr *stats.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}
