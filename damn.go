// Package damn is a faithful, simulation-backed Go reproduction of
// "DAMN: Overhead-Free IOMMU Protection for Networking" (Markuze, Smolyar,
// Morrison, Tsafrir — ASPLOS 2018).
//
// The package exposes the whole system the paper builds and evaluates:
//
//   - the DAMN allocator itself (DMA caches, magazines, per-core bump
//     allocators, metadata-encoded IOVAs) — internal/damn;
//   - the substrate it needs: simulated physical memory with a buddy
//     allocator and compound pages, a VT-d-style IOMMU with an IOTLB and
//     invalidation queue, the kernel DMA API with the strict / deferred /
//     shadow-buffer baseline protection schemes, a miniature network stack
//     with the §5.2 accessor interposition, and NIC/NVMe/malicious device
//     models that DMA through the IOMMU;
//   - the paper's evaluation: one function per table and figure.
//
// Quick start — build a DAMN-protected machine and allocate a
// device-visible packet buffer:
//
//	m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN})
//	if err != nil { ... }
//	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 2048)
//	// buf is permanently IOMMU-mapped for the NIC; m.Attacker() cannot
//	// reach anything else.
//
// To regenerate the paper's results, use the Run* functions or the
// cmd/damnbench binary; cmd/attacksim mounts the DMA attacks of §2.1
// against every configuration.
package damn

import (
	damncore "github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/experiments"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// Scheme selects the machine's IOMMU protection configuration.
type Scheme = testbed.Scheme

// The evaluated configurations (Table 1 plus the Table 3 variants).
const (
	SchemeOff           = testbed.SchemeOff
	SchemeStrict        = testbed.SchemeStrict
	SchemeDeferred      = testbed.SchemeDeferred
	SchemeShadow        = testbed.SchemeShadow
	SchemeDAMN          = testbed.SchemeDAMN
	SchemeDAMNHugeDense = testbed.SchemeDAMNHugeDense
	SchemeDAMNNoIOMMU   = testbed.SchemeDAMNNoIOMMU
	SchemeBypassRaw     = testbed.SchemeBypassRaw
	SchemeBypassProt    = testbed.SchemeBypassProt
)

// AllSchemes is the five-way comparison set of the evaluation.
var AllSchemes = testbed.AllSchemes

// Rights are DMA access rights for allocated buffers.
type Rights = iommu.Perm

// Access-right values (§5.1: read for TX, write for RX).
const (
	RightsRead  = iommu.PermRead
	RightsWrite = iommu.PermWrite
	RightsRW    = iommu.PermRW
)

// Config describes a machine to build.
type Config struct {
	// Scheme is the protection configuration (default: SchemeDAMN).
	Scheme Scheme
	// MemBytes of simulated RAM (default 1 GiB).
	MemBytes int64
	// Cores overrides the modelled 28-core testbed.
	Cores int
	// Seed makes runs reproducible.
	Seed int64
}

// Machine is a fully assembled simulated host: memory, IOMMU, cores, the
// DMA API under the chosen scheme, the (optional) DAMN allocator, the
// network stack and a dual-port 100 Gb/s NIC.
type Machine struct {
	tb *testbed.Machine
}

// NewMachine builds a machine.
func NewMachine(cfg Config) (*Machine, error) {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = SchemeDAMN
	}
	tb, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   scheme,
		MemBytes: cfg.MemBytes,
		Cores:    cfg.Cores,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Machine{tb: tb}, nil
}

// Scheme returns the machine's protection configuration.
func (m *Machine) Scheme() Scheme { return m.tb.Cfg.Scheme }

// Testbed exposes the underlying assembly for advanced use (workload
// construction, direct access to the IOMMU, NIC, allocator and engine).
func (m *Machine) Testbed() *testbed.Machine { return m.tb }

// PacketBuffer is a network buffer handle returned by AllocPacketBuffer.
type PacketBuffer struct {
	m *Machine
	// Addr is the kernel (physical) address of the buffer.
	Addr mem.PhysAddr
	// DMAAddr is the address a device must use to reach it.
	DMAAddr iommu.IOVA
	// Size in bytes.
	Size int
	damn bool
	dir  dmaapi.Direction
}

// AllocPacketBuffer allocates a packet buffer for the machine's NIC with
// the given access rights — from DAMN when deployed (permanently mapped),
// otherwise from the kernel allocator + DMA API (scheme-dependent
// mapping). This is the damn_alloc + dma_map flow a driver performs.
func (m *Machine) AllocPacketBuffer(rights Rights, size int) (*PacketBuffer, error) {
	k := m.tb.Kernel
	pa, damnOwned, err := k.AllocBuffer(nil, testbed.NICDeviceID, rights, size)
	if err != nil {
		return nil, err
	}
	dir := dirFor(rights)
	v, err := k.DMA.Map(nil, testbed.NICDeviceID, pa, size, dir)
	if err != nil {
		k.FreeBuffer(nil, pa, damnOwned)
		return nil, err
	}
	return &PacketBuffer{m: m, Addr: pa, DMAAddr: v, Size: size, damn: damnOwned, dir: dir}, nil
}

// Free unmaps and releases the buffer.
func (b *PacketBuffer) Free() error {
	k := b.m.tb.Kernel
	if err := k.DMA.Unmap(nil, testbed.NICDeviceID, b.DMAAddr, b.Size, b.dir); err != nil {
		return err
	}
	return k.FreeBuffer(nil, b.Addr, b.damn)
}

// Bytes exposes the buffer's kernel-side contents.
func (b *PacketBuffer) Bytes() []byte { return b.m.tb.Mem.Bytes(b.Addr, b.Size) }

func dirFor(r Rights) dmaapi.Direction {
	switch r {
	case RightsRead:
		return dmaapi.ToDevice
	case RightsWrite:
		return dmaapi.FromDevice
	default:
		return dmaapi.Bidirectional
	}
}

// Attacker returns a malicious-device handle bound to the NIC's identity
// (§2.1's threat model: the compromised NIC attacks with its own ID).
func (m *Machine) Attacker() *device.Malicious {
	return device.NewMalicious(m.tb.IOMMU, testbed.NICDeviceID)
}

// DamnAllocator returns the DAMN allocator, or nil when the machine runs a
// baseline scheme.
func (m *Machine) DamnAllocator() *damncore.DAMN { return m.tb.Damn }

// NewSKB allocates a socket buffer through __alloc_skb (§5.7); rx selects
// device-write (receive) rights.
func (m *Machine) NewSKB(size int, rx bool) (*netstack.SKBuff, error) {
	return netstack.AllocSKB(m.tb.Kernel, nil, testbed.NICDeviceID, size, rx)
}

// RunFor advances simulated time (e.g. to let deferred-mode timers fire).
func (m *Machine) RunFor(d sim.Time) { m.tb.Sim.Run(m.tb.Sim.Now() + d) }

// ---- Evaluation façade ----

// Options re-exports the experiment options.
type Options = experiments.Options

// The full evaluation, one function per table/figure; see EXPERIMENTS.md
// for the paper-vs-measured record.
var (
	RunTable1 = experiments.Table1
	RunFig2   = experiments.Fig2
	RunFig4   = experiments.Fig4
	RunFig5   = experiments.Fig5
	RunFig6   = experiments.Fig6
	RunTable3 = experiments.Table3
	RunFig7   = experiments.Fig7
	RunFig8   = experiments.Fig8
	RunFig9   = experiments.Fig9
	RunFig10  = experiments.Fig10
	RunFig11  = experiments.Fig11
)
