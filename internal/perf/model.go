// Package perf holds the performance model of the reproduction: the
// calibrated cycle costs, hardware latencies and bandwidth ceilings that the
// simulated kernel charges against simulated cores while executing the real
// data structures.
//
// Calibration philosophy (see DESIGN.md §3): the *baseline* workload costs
// (what an unprotected kernel spends per segment) are calibrated so that the
// iommu-off configuration lands near the paper's absolute numbers; the
// *protection-scheme* costs are then mechanistic (lock holds, hardware
// invalidation latency, copy costs), so the relative behaviour of
// strict/deferred/shadow/DAMN — the paper's actual subject — emerges from
// the simulation rather than being dialled in per scheme.
package perf

import (
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Model is the full parameter set of the simulated testbed.
type Model struct {
	// ---- Machine (matches the paper's evaluation server, §6) ----

	// CoreHz is the core clock: 2 GHz Xeon E5-2660 v4.
	CoreHz float64
	// NumCores across both sockets (2 × 14).
	NumCores int
	// NumNodes is the NUMA node count.
	NumNodes int
	// MemBWBytesPerSec is the memory-controller ceiling the paper measures
	// (§6.1: "≈80 GB/s, which is the advertised limit").
	MemBWBytesPerSec float64
	// PCIeGbpsPerDir bounds NIC DMA per direction (§6: PCIe 3.0 limits to
	// 128 Gb/s; in practice 106 Gb/s was the best observed).
	PCIeGbpsPerDir float64
	// PCIeAggGbps bounds combined RX+TX DMA payload over the bus (the
	// bidirectional practical ceiling behind Fig 6's iommu-off result).
	PCIeAggGbps float64
	// WireGbpsPerPort is the port speed (ConnectX-4: 100 Gb/s, 2 ports).
	WireGbpsPerPort float64
	// NICPorts is the number of NIC ports (each full duplex).
	NICPorts int

	// ---- Baseline per-segment workload costs ----

	// SegmentSize is the TSO/LRO aggregation size (64 KiB).
	SegmentSize int
	// RXSegCycles is the fixed kernel cost to receive one aggregated
	// segment (driver, skbuff, TCP, socket) excluding copies, calibrated
	// against Fig 4a: one 2 GHz core drives 67 Gb/s RX with iommu-off.
	RXSegCycles float64
	// TXSegCycles is the transmit-side equivalent (Fig 4b: 74 Gb/s).
	TXSegCycles float64
	// AckCycles models the ACK-processing cost a bidirectional stream
	// adds per data segment (§6.1 "ACK segments compete with data
	// segments").
	AckCycles float64
	// WakeupCycles is the scheduler/wakeup cost charged per segment when
	// flows block and wake instead of running hot (multi-instance tests).
	WakeupCycles float64
	// CopyCyclesPerByte is the warm user/kernel copy cost (≈20 GB/s per
	// core at 2 GHz).
	CopyCyclesPerByte float64
	// ColdCopyCyclesPerByte is the RX-side shadow copy-back, which the
	// paper observes is colder in cache than DAMN's in-place buffers
	// (§6.2: shadow copies go "to arbitrary kmalloc()ed kernel buffers
	// that are colder in the cache"). RX shadow buffers are also part of
	// a much larger working set than TX (§6.1), hence the higher cost.
	ColdCopyCyclesPerByte float64
	// ShadowTXCopyCyclesPerByte is the TX-side staging copy into the
	// shadow pool, warmer than the RX side (the source was just written
	// by the user copy).
	ShadowTXCopyCyclesPerByte float64
	// AccessCopyCyclesPerByte is DAMN's TOCTTOU accessor copy. Slightly
	// warmer than the shadow copy-back (§6.2: at full-segment copying
	// DAMN's CPU use stays ~10% below shadow buffers because its source
	// buffers are hotter in cache).
	AccessCopyCyclesPerByte float64
	// SkbAllocCycles / SkbFreeCycles cover skbuff + buffer allocation on
	// the baseline (non-DAMN) path.
	SkbAllocCycles float64
	SkbFreeCycles  float64

	// RXBuffersPerSegment is how many driver RX buffers one 64 KiB LRO
	// segment occupies — each is a separate dma_map/dma_unmap. ConnectX-4
	// uses multi-frame striding buffers; 2 × 32 KiB reproduces the
	// strict-mode single-core throughput of Fig 4a.
	RXBuffersPerSegment int
	// TXBuffersPerSegment: TSO hands the NIC one aggregated segment, but
	// header and payload come as separate mapped frags.
	TXBuffersPerSegment int

	// ---- DMA API / IOMMU protection-scheme costs ----

	// MapCycles is dma_map's CPU cost on the dynamic-mapping paths:
	// IOVA allocation plus page-table updates.
	MapCycles float64
	// UnmapCycles is dma_unmap's CPU cost excluding invalidation.
	UnmapCycles float64
	// IOTLBInvLatency is the hardware execution time of one IOTLB
	// invalidation command; strict mode holds the invalidation-queue
	// lock until it completes ("a costly hardware operation", §6.1).
	IOTLBInvLatency sim.Time
	// InvLockHoldCycles is the uncontended hold time of the invalidation-
	// queue lock.
	InvLockHoldCycles float64
	// InvLockCongestionFactor scales hold-time inflation with the lock's
	// utilization (cache-line bouncing between sockets): effective hold =
	// base × (1 + factor × utilization). This is what makes strict
	// collapse on multi-core networking (§4.1, §6.1) while lower-rate
	// NVMe traffic survives (§6.5).
	InvLockCongestionFactor float64
	// DeferredEnqueueCycles is the cost of batching one invalidation.
	DeferredEnqueueCycles float64
	// DeferredBatchSize and DeferredFlushInterval define deferred mode's
	// flush policy (Linux: 250 entries or 10 ms, §4.1).
	DeferredBatchSize     int
	DeferredFlushInterval sim.Time
	// DeferredFlushCycles is the CPU cost of issuing the batched flush.
	DeferredFlushCycles float64
	// ITETimeout is how long the OS waits for the invalidation queue to
	// drain before declaring a VT-d Invalidation Time-out Error and
	// retrying. Linux waits up to 1 s before giving up; the simulation
	// uses a much shorter window so injected ITEs cost a visible but
	// bounded amount of simulated time.
	ITETimeout sim.Time

	// ---- Shadow-buffer scheme costs ----

	// ShadowMgmtCycles is the shadow pool bookkeeping per map/unmap.
	ShadowMgmtCycles float64

	// ---- Application workload costs (§6 benchmarks) ----

	// MemcachedOpCycles is the server-side cost of one memcached op
	// excluding network processing (hashing, item handling).
	MemcachedOpCycles float64
	// Graph500EdgeCycles, Graph500LatencyCycles and Graph500BytesPerEdge
	// parameterise the BFS co-runner of Fig 2: per-edge compute, the
	// uncontended DRAM access latency its dependent loads pay, and the
	// cache-line traffic each edge contributes.
	Graph500EdgeCycles    float64
	Graph500LatencyCycles float64
	Graph500BytesPerEdge  float64
	// FioPerIOCycles is fio's per-command submit+complete CPU cost.
	FioPerIOCycles float64
	// XorCyclesPerByte is Fig 8's lightweight segment processing.
	XorCyclesPerByte float64

	// ---- DAMN costs ----

	// DamnAllocCycles / DamnFreeCycles are the bump-pointer fast paths.
	DamnAllocCycles float64
	DamnFreeCycles  float64
	// DamnRefillCycles is the magazine/depot path taken when a per-core
	// bump chunk is exhausted.
	DamnRefillCycles float64
	// DamnMapLookupCycles is the dma_map interposition fast path (page-
	// struct walk to the stored IOVA, §5.5).
	DamnMapLookupCycles float64
	// DamnUnmapCheckCycles is the dma_unmap MSB test (§5.3).
	DamnUnmapCheckCycles float64
	// DamnHeaderBytes is the typical header span the TOCTTOU interposer
	// copies on first access (§5.2).
	DamnHeaderBytes int
	// IRQDisableCycles is the cost of a cli/sti pair plus the latency
	// penalty of delayed interrupts — paid per operation by the
	// single-context ablation (§5.4 rejects this design).
	IRQDisableCycles float64
	// ZeroCyclesPerByte is the cost of zeroing freshly allocated chunks
	// (§5.6: every page DAMN takes from the OS is zeroed).
	ZeroCyclesPerByte float64

	// ---- Kernel-bypass (virtio-style polling path) costs ----

	// BypassPollInterval is the busy-poll loop period of the bypass
	// driver's dedicated core: the poll ticker fires this often and the
	// core is charged the full interval whether or not completions were
	// harvested (the honest cost of spinning, DPDK-style).
	BypassPollInterval sim.Time
	// BypassRXSegCycles is the user-space per-segment receive cost on the
	// bypass path: no syscall, no skbuff, no socket — just descriptor
	// bookkeeping and a lean run-to-completion stack.
	BypassRXSegCycles float64
	// VQHarvestCycles is the cost of consuming one used-ring element
	// (index load, descriptor read, ring bookkeeping).
	VQHarvestCycles float64
	// VQPostCycles is the cost of writing one avail-ring descriptor.
	VQPostCycles float64
	// DoorbellCycles is one MMIO doorbell write (uncached, posted); the
	// bypass driver batches posts so this is paid per batch, not per
	// descriptor.
	DoorbellCycles float64
	// BypassHarvestBurst caps how many used-ring elements one poll tick
	// consumes, bounding per-tick work like a NAPI budget.
	BypassHarvestBurst int

	// ---- Device-side translation costs ----

	// IOTLBMissPenalty is the DMA-pipeline delay of one IOTLB miss
	// (a page walk by the IOMMU). With DAMN's metadata-encoded, sparse
	// IOVAs this is what costs the 6.5% of Table 3.
	IOTLBMissPenalty sim.Time

	// ---- Memory-traffic fractions (DDIO / cache locality model) ----

	// NICDMAMemFraction is the fraction of NIC DMA bytes that reach DRAM
	// (the rest hits the LLC via DDIO).
	NICDMAMemFraction float64
	// CopyMemFraction is DRAM traffic per byte of a warm user copy
	// (source usually in LLC; destination write-allocates).
	CopyMemFraction float64
	// ShadowCopyMemFraction is DRAM traffic per byte of the extra shadow
	// staging copy (cold on both sides).
	ShadowCopyMemFraction float64
}

// Default28Core returns the model of the paper's evaluation machine:
// a dual-socket, 28-core, 2 GHz Broadwell server with a dual-port
// 100 Gb/s ConnectX-4.
func Default28Core() *Model {
	return &Model{
		CoreHz:           2e9,
		NumCores:         28,
		NumNodes:         2,
		MemBWBytesPerSec: 80e9,
		PCIeGbpsPerDir:   106,
		PCIeAggGbps:      197,
		WireGbpsPerPort:  100,
		NICPorts:         2,

		SegmentSize: 64 << 10,
		// 67 Gb/s RX on one core = 127.8 k segments/s at 2 GHz
		// ⇒ ~15.6 k cycles per segment all-in; copies cost
		// 65536 B × 0.1 c/B ≈ 6.6 k of that.
		RXSegCycles:               8400,
		TXSegCycles:               7000,
		AckCycles:                 2600,
		WakeupCycles:              5200,
		CopyCyclesPerByte:         0.10,
		ColdCopyCyclesPerByte:     0.36,
		ShadowTXCopyCyclesPerByte: 0.13,
		AccessCopyCyclesPerByte:   0.33,
		SkbAllocCycles:            420,
		SkbFreeCycles:             260,

		RXBuffersPerSegment: 1,
		TXBuffersPerSegment: 1,

		MapCycles:               150,
		UnmapCycles:             100,
		IOTLBInvLatency:         220 * sim.Nanosecond,
		InvLockHoldCycles:       100,
		InvLockCongestionFactor: 1.8,
		DeferredEnqueueCycles:   50,
		DeferredBatchSize:       250,
		DeferredFlushInterval:   10 * sim.Millisecond,
		DeferredFlushCycles:     2200,
		ITETimeout:              10 * sim.Microsecond,

		ShadowMgmtCycles: 500,

		MemcachedOpCycles:     12000,
		Graph500EdgeCycles:    10,
		Graph500LatencyCycles: 90,
		Graph500BytesPerEdge:  8,
		FioPerIOCycles:        4000,
		XorCyclesPerByte:      0.03,

		DamnAllocCycles:      90,
		DamnFreeCycles:       70,
		DamnRefillCycles:     900,
		DamnMapLookupCycles:  120,
		DamnUnmapCheckCycles: 30,
		DamnHeaderBytes:      128,
		IRQDisableCycles:     300,
		ZeroCyclesPerByte:    0.08,

		BypassPollInterval: 2 * sim.Microsecond,
		BypassRXSegCycles:  1500,
		VQHarvestCycles:    60,
		VQPostCycles:       80,
		DoorbellCycles:     400,
		BypassHarvestBurst: 64,

		IOTLBMissPenalty: 190 * sim.Nanosecond,

		NICDMAMemFraction:     0.5,
		CopyMemFraction:       0.3,
		ShadowCopyMemFraction: 2.9,
	}
}

// Charger is the cost-charging surface of sim.Task; every kernel-path
// function takes one so that functional tests can pass a NopCharger and the
// evaluation passes real tasks.
type Charger interface {
	Charge(cycles float64)
	ChargeTime(d sim.Time)
	StallUntil(at sim.Time)
	Now() sim.Time
}

// NopCharger discards all costs; used by purely functional unit tests.
type NopCharger struct{}

func (NopCharger) Charge(float64)      {}
func (NopCharger) ChargeTime(sim.Time) {}
func (NopCharger) StallUntil(sim.Time) {}
func (NopCharger) Now() sim.Time       { return 0 }

// IsNilCharger reports whether c is nil, including a typed-nil *sim.Task
// wrapped in the interface.
func IsNilCharger(c Charger) bool {
	if c == nil {
		return true
	}
	t, ok := c.(*sim.Task)
	return ok && t == nil
}

// Charge charges cycles if c is non-nil.
func Charge(c Charger, cycles float64) {
	if !IsNilCharger(c) {
		c.Charge(cycles)
	}
}

// ChargeTime charges a fixed duration if c is non-nil.
func ChargeTime(c Charger, d sim.Time) {
	if !IsNilCharger(c) {
		c.ChargeTime(d)
	}
}

// ChargeCat charges cycles and accounts them to a per-category accumulator
// (a stats.FloatCounter such as "perf/cycles_unmap"), making the cost-model
// spend attributable after a run. cat may be nil (stats off).
func ChargeCat(c Charger, cat *stats.FloatCounter, cycles float64) {
	Charge(c, cycles)
	cat.Add(cycles)
}

// ChargeTimeCat charges a fixed hardware duration and accounts its
// picoseconds to the per-category accumulator.
func ChargeTimeCat(c Charger, cat *stats.FloatCounter, d sim.Time) {
	ChargeTime(c, d)
	cat.Add(float64(d))
}
