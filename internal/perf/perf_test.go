package perf

import (
	"testing"

	"github.com/asplos18/damn/internal/sim"
)

func TestDefaultModelSane(t *testing.T) {
	m := Default28Core()
	if m.NumCores != 28 || m.NumNodes != 2 {
		t.Fatalf("testbed shape wrong: %d cores, %d nodes", m.NumCores, m.NumNodes)
	}
	if m.CoreHz != 2e9 {
		t.Fatalf("core clock %v", m.CoreHz)
	}
	if m.SegmentSize != 64<<10 {
		t.Fatalf("segment size %d", m.SegmentSize)
	}
	// The calibration identities the EXPERIMENTS.md derivations rely on.
	perSeg := m.RXSegCycles + m.SkbAllocCycles + m.SkbFreeCycles +
		float64(m.SegmentSize)*m.CopyCyclesPerByte
	gbps := m.CoreHz / perSeg * float64(m.SegmentSize) * 8 / 1e9
	if gbps < 60 || gbps > 75 {
		t.Fatalf("single-core RX calibration drifted: %.1f Gb/s implied, want ≈67", gbps)
	}
}

func TestChargeHelpers(t *testing.T) {
	e := sim.NewEngine(1)
	c := sim.NewCore(e, 0, 0, 1e9)
	var elapsed sim.Time
	c.Submit(false, func(task *sim.Task) {
		Charge(task, 1000)
		ChargeTime(task, 500*sim.Nanosecond)
		elapsed = task.Elapsed()
	})
	e.RunUntilIdle()
	if elapsed != 1500*sim.Nanosecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestChargeNilSafe(t *testing.T) {
	Charge(nil, 100)
	ChargeTime(nil, sim.Microsecond)
	var nilTask *sim.Task
	if !IsNilCharger(nilTask) {
		t.Fatal("typed-nil task not detected")
	}
	Charge(nilTask, 100) // must not panic
	CPUCopy(nilTask, nil, 100, 0.1, 0.5)
}

func TestCPUCopyChargesCycles(t *testing.T) {
	e := sim.NewEngine(1)
	c := sim.NewCore(e, 0, 0, 1e9)
	var elapsed sim.Time
	c.Submit(false, func(task *sim.Task) {
		CPUCopy(task, nil, 1000, 1.0, 0) // 1000 cycles at 1 GHz = 1 us
		elapsed = task.Elapsed()
	})
	e.RunUntilIdle()
	if elapsed != sim.Microsecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestCPUCopyCongestionStall(t *testing.T) {
	e := sim.NewEngine(1)
	mc := sim.NewMemController(1e9) // 1 GB/s
	mc.Attach(e)
	c := sim.NewCore(e, 0, 0, 1e9)
	// Saturate the controller: demand 4 GB/s for several windows.
	stop := e.Every(10*sim.Microsecond, func() {
		mc.Use(e.Now(), 40000)
	})
	e.Run(2 * sim.Millisecond)
	stop()
	if mc.Utilization() < 2 {
		t.Fatalf("controller should report overload, rho=%.2f", mc.Utilization())
	}
	var stall sim.Time
	c.Submit(false, func(task *sim.Task) {
		before := task.Elapsed()
		CPUCopy(task, mc, 10000, 0, 1.0) // pure memory time
		stall = task.Elapsed() - before
	})
	e.RunUntilIdle()
	// Service would be 10 us; under overload the queueing extra must
	// dominate.
	if stall < 50*sim.Microsecond {
		t.Fatalf("congested copy stalled only %v", stall)
	}
}

func TestDeviceDMATraffic(t *testing.T) {
	e := sim.NewEngine(1)
	mc := sim.NewMemController(1e9)
	mc.Attach(e)
	done := DeviceDMATraffic(mc, 0, 1000, 1.0)
	if done != sim.Microsecond {
		t.Fatalf("uncongested device transfer completes at %v, want 1us", done)
	}
	if DeviceDMATraffic(nil, 5, 1000, 1.0) != 5 {
		t.Fatal("nil controller should be a no-op")
	}
	if DeviceDMATraffic(mc, 5, 1000, 0) != 5 {
		t.Fatal("zero fraction should be a no-op")
	}
}

func TestBandwidthMeter(t *testing.T) {
	mc := sim.NewMemController(1e9)
	m := NewBandwidthMeter(mc, 0)
	mc.Use(0, 500)
	mc.Use(0, 500)
	if got := m.Rate(sim.Millisecond); got != 1e6 {
		t.Fatalf("Rate = %v, want 1e6 B/s", got)
	}
	if m.Rate(0) != 0 {
		t.Fatal("zero-window rate should be 0")
	}
}
