package perf

import "github.com/asplos18/damn/internal/sim"

// CPUCopy models a kernel memory copy of n bytes performed by the current
// task: it charges the CPU cycles and accounts the resulting DRAM traffic
// against the shared memory controller. When the controller is congested
// (aggregate demand near the ceiling), the copy suffers a queueing stall —
// burned CPU, which is exactly how shadow buffers cannibalize cycles in
// Fig 2/Fig 6.
//
// membw may be nil in functional tests.
func CPUCopy(c Charger, membw *sim.MemController, n int, cyclesPerByte, memFraction float64) {
	if IsNilCharger(c) {
		return
	}
	c.Charge(float64(n) * cyclesPerByte)
	if membw == nil || n == 0 || memFraction == 0 {
		return
	}
	_, extra := membw.Use(c.Now(), float64(n)*memFraction)
	if extra > 0 {
		c.ChargeTime(extra)
	}
}

// DeviceDMATraffic accounts a device-initiated transfer of n bytes against
// the memory controller and returns the completion time of its memory
// phase; the device model uses it to pace its rings (it has no CPU to
// stall).
func DeviceDMATraffic(membw *sim.MemController, now sim.Time, n int, memFraction float64) sim.Time {
	if membw == nil || n == 0 || memFraction == 0 {
		return now
	}
	service, extra := membw.Use(now, float64(n)*memFraction)
	return now + service + extra
}

// UsageReporter is anything exposing cumulative usage (FluidResource,
// MemController).
type UsageReporter interface{ Used() float64 }

// BandwidthMeter converts a resource's cumulative usage into an average
// rate over a measurement window.
type BandwidthMeter struct {
	res UsageReporter
	t0  sim.Time
	u0  float64
}

// NewBandwidthMeter starts measuring res at time now.
func NewBandwidthMeter(res UsageReporter, now sim.Time) *BandwidthMeter {
	return &BandwidthMeter{res: res, t0: now, u0: res.Used()}
}

// Rate returns the average units/second since the meter started.
func (m *BandwidthMeter) Rate(now sim.Time) float64 {
	dt := (now - m.t0).Seconds()
	if dt <= 0 {
		return 0
	}
	return (m.res.Used() - m.u0) / dt
}
