// Package topo builds multi-machine network topologies on top of the
// sharded conservative-parallel event engine (sim.Cluster). Each testbed
// machine and each router is one logical process with a private event
// queue; they interact only through device.Link edges, whose propagation
// latency is the lookahead that lets shards advance in parallel inside an
// epoch. A K-worker run of a topology is byte-identical to the serial run:
// the cluster merges cross-shard deliveries in deterministic (time, shard,
// sequence) order at every epoch barrier, so host parallelism changes
// wall-clock time and nothing else.
package topo

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// Node is one machine placed on its own shard.
type Node struct {
	M     *testbed.Machine
	shard *sim.Shard
}

// Shard returns the cluster shard the machine runs on.
func (n *Node) Shard() *sim.Shard { return n.shard }

// Router is a store-and-forward switch on its own shard: segments arriving
// from any connected link are routed to an output port, pay that port's
// serialization time, and are forwarded on. Output queues are bounded in
// time: when a port's wire backlog exceeds QueueLimit the segment is
// tail-dropped — the congestion behaviour that makes incast measurable.
type Router struct {
	se         *sim.Engine
	shard      *sim.Shard
	ports      []*device.Link
	route      func(device.Segment) int
	queueLimit sim.Time

	// Forwarded and Dropped count routed and tail-dropped segments.
	Forwarded uint64
	Dropped   uint64
}

// Shard returns the cluster shard the router runs on.
func (r *Router) Shard() *sim.Shard { return r.shard }

// Ports returns the number of attached output ports.
func (r *Router) Ports() int { return len(r.ports) }

// receive is the terminus of every link pointing at the router; it runs on
// the router's shard.
func (r *Router) receive(seg device.Segment) {
	out := r.route(seg)
	if out < 0 || out >= len(r.ports) {
		r.Dropped++
		return
	}
	l := r.ports[out]
	now := r.se.Now()
	if r.queueLimit > 0 && l.Backlog(now) > r.queueLimit {
		// Output queue full: tail-drop. The segment's wire time was paid
		// on the ingress link; a dropped frame costs the output nothing.
		r.Dropped++
		return
	}
	r.Forwarded++
	l.Forward(l.Reserve(now, seg.Len), seg)
}

// Topology is a set of machines and routers wired by links, executing on a
// sim.Cluster.
type Topology struct {
	cluster *sim.Cluster
	nodes   []*Node
	routers []*Router
}

// New creates an empty topology. lookahead is the epoch length and the
// minimum latency any cross-shard link may carry; workers is the host
// parallelism (1 = serial reference execution).
func New(lookahead sim.Time, workers int) *Topology {
	return &Topology{cluster: sim.NewCluster(lookahead, workers)}
}

// Cluster exposes the underlying conservative-parallel engine.
func (tp *Topology) Cluster() *sim.Cluster { return tp.cluster }

// Nodes returns the machines in placement order.
func (tp *Topology) Nodes() []*Node { return tp.nodes }

// AddMachine places a machine on a fresh shard. The shard's engine is
// seeded from cfg.Seed, and the machine is built on it.
func (tp *Topology) AddMachine(cfg testbed.MachineConfig) (*Node, error) {
	shard := tp.cluster.AddShard(cfg.Seed)
	cfg.Engine = shard.Engine()
	m, err := testbed.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{M: m, shard: shard}
	tp.nodes = append(tp.nodes, n)
	return n, nil
}

// AddRouter places a router on a fresh shard. route maps a segment to an
// output port (the order ports are attached by ConnectRouterToMachine);
// queueLimit bounds each output port's wire backlog (0 = unbounded).
func (tp *Topology) AddRouter(seed int64, queueLimit sim.Time, route func(device.Segment) int) *Router {
	shard := tp.cluster.AddShard(seed)
	r := &Router{se: shard.Engine(), shard: shard, route: route, queueLimit: queueLimit}
	tp.routers = append(tp.routers, r)
	return r
}

// sched returns the cross-shard delivery hook for a link from src to dst —
// nil when both ends share a shard (plain local scheduling).
func sched(src, dst *sim.Shard) func(sim.Time, func()) {
	if src == dst {
		return nil
	}
	return func(at sim.Time, fn func()) { src.Send(dst, at, fn) }
}

// checkLatency enforces the conservative-synchronization precondition: a
// cross-shard link must carry at least the cluster's lookahead of delay.
func (tp *Topology) checkLatency(src, dst *sim.Shard, latency sim.Time) error {
	if src != dst && latency < tp.cluster.Lookahead() {
		return fmt.Errorf("topo: cross-shard link latency %v below cluster lookahead %v",
			latency, tp.cluster.Lookahead())
	}
	return nil
}

// ConnectMachines wires one direction of a cable: a's egress port to b's
// ingress port. Call twice (swapped) for a full-duplex pair.
func (tp *Topology) ConnectMachines(a *Node, aPort int, b *Node, bPort int, latency sim.Time) error {
	if err := tp.checkLatency(a.shard, b.shard, latency); err != nil {
		return err
	}
	return a.M.NIC.Egress(aPort).ConnectNIC(b.M.NIC, bPort, latency, b.M.Faults, sched(a.shard, b.shard))
}

// ConnectMachineToRouter points a machine's egress port at the router.
func (tp *Topology) ConnectMachineToRouter(n *Node, port int, r *Router, latency sim.Time) error {
	if err := tp.checkLatency(n.shard, r.shard, latency); err != nil {
		return err
	}
	n.M.NIC.Egress(port).ConnectFunc(latency, r.receive, sched(n.shard, r.shard))
	return nil
}

// ConnectRouterToMachine attaches a new output port on the router wired to
// a machine's ingress port, returning the output port index (what the
// router's route function must produce to reach this machine).
func (tp *Topology) ConnectRouterToMachine(r *Router, n *Node, port int, gbps float64, latency sim.Time) (int, error) {
	if err := tp.checkLatency(r.shard, n.shard, latency); err != nil {
		return 0, err
	}
	out := len(r.ports)
	l := device.NewLink(fmt.Sprintf("router%d-out%d", r.shard.ID(), out), r.se, gbps)
	if err := l.ConnectNIC(n.M.NIC, port, latency, n.M.Faults, sched(r.shard, n.shard)); err != nil {
		return 0, err
	}
	r.ports = append(r.ports, l)
	return out, nil
}

// Run advances every machine and router to the given simulated time.
func (tp *Topology) Run(until sim.Time) { tp.cluster.Run(until) }

// Close releases every machine's simulated-RAM backing.
func (tp *Topology) Close() {
	for _, n := range tp.nodes {
		n.M.Close()
	}
}
