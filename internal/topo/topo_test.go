package topo

import (
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func smallMachine(seed int64) testbed.MachineConfig {
	return testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		Seed:     seed,
		Cores:    1,
		MemBytes: 64 << 20,
	}
}

// TestConnectRejectsSubLookaheadLatency: every builder edge must refuse a
// cross-shard link faster than the cluster's lookahead — such a link would
// let a message land inside an epoch that has already executed.
func TestConnectRejectsSubLookaheadLatency(t *testing.T) {
	tp := New(10*sim.Microsecond, 1)
	defer tp.Close()
	a, err := tp.AddMachine(smallMachine(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tp.AddMachine(smallMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	r := tp.AddRouter(3, 0, func(device.Segment) int { return 0 })
	if err := tp.ConnectMachines(a, 0, b, 0, 1*sim.Microsecond); err == nil {
		t.Error("ConnectMachines accepted a sub-lookahead cross-shard link")
	}
	if err := tp.ConnectMachineToRouter(a, 0, r, 1*sim.Microsecond); err == nil {
		t.Error("ConnectMachineToRouter accepted a sub-lookahead cross-shard link")
	}
	if _, err := tp.ConnectRouterToMachine(r, b, 0, 100, 1*sim.Microsecond); err == nil {
		t.Error("ConnectRouterToMachine accepted a sub-lookahead cross-shard link")
	}
	// At exactly the lookahead the same edges are legal.
	if err := tp.ConnectMachines(a, 0, b, 0, 10*sim.Microsecond); err != nil {
		t.Errorf("ConnectMachines rejected a latency equal to the lookahead: %v", err)
	}
}

// TestRouterDropsUnroutableSegments: a route function returning an invalid
// port must count a drop, not panic or forward.
func TestRouterDropsUnroutableSegments(t *testing.T) {
	tp := New(5*sim.Microsecond, 1)
	defer tp.Close()
	r := tp.AddRouter(1, 0, func(device.Segment) int { return 7 })
	r.receive(device.Segment{Len: 1500})
	if r.Dropped != 1 || r.Forwarded != 0 {
		t.Fatalf("dropped=%d forwarded=%d, want 1/0", r.Dropped, r.Forwarded)
	}
}

// TestEachMachineOwnsAShard: placement puts every machine and router on its
// own shard, so they advance as independent logical processes.
func TestEachMachineOwnsAShard(t *testing.T) {
	tp := New(5*sim.Microsecond, 2)
	defer tp.Close()
	a, err := tp.AddMachine(smallMachine(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tp.AddMachine(smallMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	r := tp.AddRouter(3, 0, func(device.Segment) int { return 0 })
	if a.Shard() == b.Shard() || a.Shard() == r.Shard() {
		t.Fatal("machines/routers share a shard")
	}
	if a.M.Sim != a.Shard().Engine() {
		t.Fatal("machine does not run on its shard's engine")
	}
	if len(tp.Cluster().Shards()) != 3 {
		t.Fatalf("cluster has %d shards, want 3", len(tp.Cluster().Shards()))
	}
}
