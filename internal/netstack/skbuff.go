package netstack

import (
	"fmt"

	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

// SKBuff is the socket buffer. Its data lives in a single head buffer
// (DAMN chunks cover the 64 KiB LRO maximum, so scatter/gather frags are
// unnecessary in this reproduction).
//
// OS code must access packet bytes through the accessor methods — exactly
// the property §5.2 relies on. When the head is device-writable (a DAMN RX
// buffer), the accessors copy the touched prefix into a kernel-private
// "safe" buffer first, so the device can never change bytes the OS has
// already looked at (TOCTTOU defence). For legacy schemes the accessors
// read the head directly — any staleness window there is the scheme's
// problem, which the attack scenarios demonstrate.
type SKBuff struct {
	k *Kernel

	// Dev is the owning device (-1: none).
	Dev int
	// Rights are the device's access rights to the head buffer.
	Rights iommu.Perm

	headPA   mem.PhysAddr
	headCap  int
	damnHead bool

	// dataLen is the logical payload length; materialized is how much of
	// it is physically present (throughput runs materialise only
	// headers; security tests materialise everything).
	dataLen      int
	materialized int

	// Safe prefix: [0, safeLen) of the payload has been copied out of
	// the device's reach into safePA (slab memory).
	safePA  mem.PhysAddr
	safeCap int
	safeLen int

	// DMAAddr is valid while the buffer is mapped for the device.
	DMAAddr iommu.IOVA
	mapped  bool

	freed bool

	// userBuf is the pooled CopyToUser destination recorded for recycling
	// when the skb is freed (first copy only; callers never use the slice
	// past the skb's lifetime).
	userBuf []byte

	// Flow tags the TCP flow the segment belongs to (demux key).
	Flow int
	// Seq is the ARQ sequence number carried by the segment (0: none).
	Seq uint32
	// Hash is the RSS hash the segment carries on the wire; TX paths fill
	// it so a forwarded segment steers correctly at the receiving machine.
	Hash uint32
	// Meta is opaque application metadata carried end to end (the cluster
	// workloads encode request descriptors here).
	Meta uint32
	// Stamp is the sending NIC's wire timestamp on a cross-machine
	// segment (zero for local traffic) — the receiver's latency baseline.
	Stamp sim.Time
	// Owner carries the sending endpoint through the TX ring for
	// completion dispatch.
	Owner any

	// CopiedBytes counts TOCTTOU-defence copying on this skb (Fig 8).
	CopiedBytes int
}

// AllocSKB is __alloc_skb: dev < 0 allocates from the ordinary kernel
// allocator; dev >= 0 with DAMN deployed allocates a device-visible DAMN
// buffer with rights chosen by rx (§5.7: the flags argument defines the
// access rights — write for RX, read for TX).
func AllocSKB(k *Kernel, t *sim.Task, dev int, size int, rx bool) (*SKBuff, error) {
	perf.Charge(t, k.Model.SkbAllocCycles)
	rights := iommu.PermRead
	if rx {
		rights = iommu.PermWrite
	}
	pa, damnOwned, err := k.AllocBuffer(t, dev, rights, size)
	if err != nil {
		return nil, err
	}
	s := k.getSKB()
	s.Dev, s.Rights = dev, rights
	s.headPA, s.headCap, s.damnHead = pa, size, damnOwned
	return s, nil
}

// DmaAllocSKB is the new dma_alloc_skb entry point of §5.7 for DAMN-aware
// flows; identical to AllocSKB but requires a device.
func DmaAllocSKB(k *Kernel, t *sim.Task, dev int, size int, rx bool) (*SKBuff, error) {
	if dev < 0 {
		return nil, fmt.Errorf("netstack: dma_alloc_skb requires a device")
	}
	return AllocSKB(k, t, dev, size, rx)
}

// AllocSKBPageCache builds a transmit skb over page-cache-style kernel
// memory — the zero-copy paths (sendfile, zero-copy forwarding) of §2.2,
// which DAMN explicitly does not serve: such buffers are not DAMN's, so
// when the driver maps them the call falls through to the legacy DMA API
// and its protection scheme.
func AllocSKBPageCache(k *Kernel, t *sim.Task, dev int, size int) (*SKBuff, error) {
	perf.Charge(t, k.Model.SkbAllocCycles)
	node := 0
	if t != nil {
		node = t.Core().Node
	}
	pa, err := k.Slab.Alloc(size, node)
	if err != nil {
		return nil, err
	}
	s := k.getSKB()
	s.Dev, s.Rights = dev, iommu.PermRead
	s.headPA, s.headCap = pa, size
	return s, nil
}

// AdoptBuffer builds an skb around an existing raw buffer (the driver's RX
// completion path: the buffer was allocated and posted before the packet
// arrived).
func AdoptBuffer(k *Kernel, dev int, rights iommu.Perm, pa mem.PhysAddr, capacity int, damnOwned bool) *SKBuff {
	s := k.getSKB()
	s.Dev, s.Rights = dev, rights
	s.headPA, s.headCap, s.damnHead = pa, capacity, damnOwned
	return s
}

// Len returns the logical payload length.
func (s *SKBuff) Len() int { return s.dataLen }

// Cap returns the head buffer capacity.
func (s *SKBuff) Cap() int { return s.headCap }

// HeadPA exposes the head buffer address (driver/mapping use only; stack
// code must use the accessors).
func (s *SKBuff) HeadPA() mem.PhysAddr { return s.headPA }

// DamnOwned reports whether the head is a DAMN buffer.
func (s *SKBuff) DamnOwned() bool { return s.damnHead }

// SetReceived records that the device deposited a segment: logical length
// n, of which written bytes are physically present.
func (s *SKBuff) SetReceived(n, written int) {
	if n > s.headCap {
		n = s.headCap
	}
	s.dataLen = n
	s.materialized = written
	s.safeLen = 0
}

// deviceCanWrite reports whether the device can still mutate the head.
func (s *SKBuff) deviceCanWrite() bool {
	return s.damnHead && s.Rights&iommu.PermWrite != 0
}

// Access returns the first n bytes of the payload for OS inspection
// (headers, firewall rules...). This is the interposition point of §5.2:
// if the device can write the buffer, the accessed range is first copied
// out of its reach, making subsequent device writes to those bytes
// invisible to the OS.
func (s *SKBuff) Access(t *sim.Task, n int) ([]byte, error) {
	if n > s.dataLen {
		n = s.dataLen
	}
	if n <= 0 {
		return nil, nil
	}
	if !s.deviceCanWrite() {
		return s.k.Mem.Bytes(s.headPA, n), nil
	}
	if err := s.ensureSafe(t, n); err != nil {
		return nil, err
	}
	return s.k.Mem.Bytes(s.safePA, n), nil
}

// ensureSafe extends the safe prefix to cover [0, n).
func (s *SKBuff) ensureSafe(t *sim.Task, n int) error {
	if n <= s.safeLen {
		return nil
	}
	if s.safePA == 0 || n > s.safeCap {
		// Grow the safe buffer (slab memory, device-inaccessible).
		newCap := s.safeCap * 2
		if newCap < n {
			newCap = n
		}
		node := 0
		if t != nil {
			node = t.Core().Node
		}
		pa, err := s.k.Slab.Alloc(newCap, node)
		if err != nil {
			return err
		}
		if s.safeLen > 0 {
			s.k.Mem.Write(pa, s.k.Mem.Bytes(s.safePA, s.safeLen))
		}
		if s.safePA != 0 {
			s.k.Slab.Free(s.safePA)
		}
		s.safePA = pa
		s.safeCap = newCap
	}
	// Copy the newly accessed span out of the device's reach; this is
	// the only copying DAMN ever adds, and it is proportional to what
	// the OS actually reads (Fig 8).
	span := n - s.safeLen
	src := s.k.Mem.Bytes(s.headPA+mem.PhysAddr(s.safeLen), span)
	s.k.Mem.Write(s.safePA+mem.PhysAddr(s.safeLen), src)
	perf.CPUCopy(t, s.k.MemBW, span, s.k.Model.AccessCopyCyclesPerByte, s.k.Model.CopyMemFraction)
	s.safeLen = n
	s.CopiedBytes += span
	return nil
}

// CopyToUser performs the user-boundary copy of up to n payload bytes and
// returns them (the returned slice models user memory — the device cannot
// reach it). Bytes already in the safe prefix come from there; the rest
// comes straight from the head buffer, because any device write racing
// this copy is indistinguishable from a write that happened while the
// packet was still mapped (§5.6 RX argument).
func (s *SKBuff) CopyToUser(t *sim.Task, n int) []byte {
	if n > s.dataLen {
		n = s.dataLen
	}
	if n <= 0 {
		return nil
	}
	user := s.k.getUserBuf(n)
	if s.userBuf == nil {
		// Recorded for recycling when the skb is freed; a second copy on
		// the same skb (never on the data path) is simply left to the GC.
		s.userBuf = user
	}
	fromSafe := s.safeLen
	if fromSafe > n {
		fromSafe = n
	}
	if fromSafe > 0 {
		copy(user, s.k.Mem.Bytes(s.safePA, fromSafe))
	}
	filled := fromSafe
	if n > fromSafe {
		// Copy only what is materialised; the logical remainder reads
		// as zeroes (throughput runs don't materialise payloads).
		end := s.materialized
		if end > n {
			end = n
		}
		if end > fromSafe {
			copy(user[fromSafe:], s.k.Mem.Bytes(s.headPA+mem.PhysAddr(fromSafe), end-fromSafe))
			filled = end
		}
	}
	// A recycled buffer carries the previous copy's bytes; the
	// unmaterialised tail must still read as zeroes.
	clear(user[filled:])
	perf.CPUCopy(t, s.k.MemBW, n, s.k.Model.CopyCyclesPerByte, s.k.Model.CopyMemFraction)
	return user
}

// CopyFromUser appends user data to the payload (TX path). data may be
// shorter than n (the logical write size); only data's bytes are
// materialised.
func (s *SKBuff) CopyFromUser(t *sim.Task, data []byte, n int) error {
	if s.dataLen+n > s.headCap {
		return fmt.Errorf("netstack: skb overflow: %d+%d > %d", s.dataLen, n, s.headCap)
	}
	if len(data) > 0 {
		s.k.Mem.Write(s.headPA+mem.PhysAddr(s.dataLen), data)
		m := s.dataLen + len(data)
		if m > s.materialized {
			s.materialized = m
		}
	}
	s.dataLen += n
	perf.CPUCopy(t, s.k.MemBW, n, s.k.Model.CopyCyclesPerByte, s.k.Model.CopyMemFraction)
	return nil
}

// MapForDevice runs the buffer through the DMA API (dma_map). For DAMN
// buffers the interposer short-circuits this to the permanent mapping.
func (s *SKBuff) MapForDevice(t *sim.Task, dir dmaapi.Direction) (iommu.IOVA, error) {
	if s.mapped {
		return 0, fmt.Errorf("netstack: skb already mapped")
	}
	v, err := s.k.DMA.Map(t, s.Dev, s.headPA, s.headCap, dir)
	if err != nil {
		return 0, err
	}
	s.DMAAddr = v
	s.mapped = true
	return v, nil
}

// UnmapForDevice is dma_unmap.
func (s *SKBuff) UnmapForDevice(t *sim.Task, dir dmaapi.Direction) error {
	if !s.mapped {
		return fmt.Errorf("netstack: skb not mapped")
	}
	s.mapped = false
	return s.k.DMA.Unmap(t, s.Dev, s.DMAAddr, s.headCap, dir)
}

// Free releases the skb and its buffers.
func (s *SKBuff) Free(t *sim.Task) {
	if s.freed {
		panic("netstack: double free of skb")
	}
	s.freed = true
	perf.Charge(t, s.k.Model.SkbFreeCycles)
	if s.safePA != 0 {
		s.k.Slab.Free(s.safePA)
		s.safePA = 0
	}
	if s.userBuf != nil {
		s.k.putUserBuf(s.userBuf)
		s.userBuf = nil
	}
	// A failed free quarantines the buffer inside FreeBuffer; the skb
	// itself is gone either way.
	_ = s.k.FreeBuffer(t, s.headPA, s.damnHead)
	// The struct goes back to the pool still marked freed, so a stale
	// double free keeps panicking until the slot is reused.
	s.k.freeSKBs = append(s.k.freeSKBs, s)
}
