package netstack_test

import (
	"bytes"
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func newMachine(t testing.TB, scheme testbed.Scheme, cores int) *testbed.Machine {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   scheme,
		MemBytes: 256 << 20,
		Cores:    cores,
		RingSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

// runRX injects one segment end-to-end and returns what the receiver saw.
func runRX(t *testing.T, ma *testbed.Machine, seg device.Segment) *netstack.Receiver {
	t.Helper()
	recv := &netstack.Receiver{K: ma.Kernel}
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		recv.HandleSegment(task, skb)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	ma.NIC.InjectRX(0, seg)
	ma.Sim.RunUntilIdle()
	return recv
}

func TestRXEndToEndAllSchemes(t *testing.T) {
	for _, scheme := range testbed.AllSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			ma := newMachine(t, scheme, 2)
			recv := runRX(t, ma, device.Segment{
				Flow: 1, Len: 9000, Header: []byte("hdr:flow1"),
			})
			if recv.Segments != 1 {
				t.Fatalf("segments = %d", recv.Segments)
			}
			if recv.Bytes != 9000 {
				t.Fatalf("bytes = %d", recv.Bytes)
			}
			if ma.NIC.RxBlocked != 0 {
				t.Fatalf("legitimate DMA blocked under %s", scheme)
			}
		})
	}
}

func TestRXPayloadIntegrity(t *testing.T) {
	// With a materialised payload, the user must read exactly what the
	// device sent, whatever the scheme (shadow copies through its pool;
	// DAMN delivers in place).
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for _, scheme := range testbed.AllSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			ma := newMachine(t, scheme, 2)
			var user []byte
			ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
				user = skb.CopyToUser(task, skb.Len())
				skb.Free(task)
			}
			if err := ma.FillAllRings(); err != nil {
				t.Fatal(err)
			}
			ma.NIC.InjectRX(0, device.Segment{
				Flow: 1, Len: len(payload), WritePayload: true, Payload: payload,
			})
			ma.Sim.RunUntilIdle()
			if !bytes.Equal(user, payload) {
				t.Fatalf("user data corrupted under %s", scheme)
			}
		})
	}
}

func TestTXEndToEndAllSchemes(t *testing.T) {
	for _, scheme := range testbed.AllSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			ma := newMachine(t, scheme, 2)
			snd := &netstack.Sender{
				K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[0],
				Ring: 0, PortID: 0, Flow: 1, Window: 4 * ma.Model.SegmentSize,
			}
			snd.Start()
			ma.Sim.Run(2 * sim.Millisecond)
			snd.Stop()
			ma.Sim.RunUntilIdle()
			if snd.Segments == 0 {
				t.Fatal("nothing transmitted")
			}
			if snd.Errors != 0 {
				t.Fatalf("sender errors: %d", snd.Errors)
			}
			if ma.NIC.TxBytes == 0 {
				t.Fatal("NIC saw no TX bytes")
			}
		})
	}
}

func TestSenderWindowEnforced(t *testing.T) {
	ma := newMachine(t, testbed.SchemeOff, 1)
	seg := ma.Model.SegmentSize
	snd := &netstack.Sender{
		K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[0],
		Window: 2 * seg, // at most 2 segments in flight
	}
	snd.Start()
	// Run less than one wire time (64 KiB at 100 Gb/s ≈ 5.2 us): no
	// completion can have arrived, so exactly 2 segments are in flight.
	ma.Sim.Run(1 * sim.Microsecond)
	if got := ma.NIC.TxSegments; got != 2 {
		t.Fatalf("window violated: %d segments posted, want 2", got)
	}
	snd.Stop()
	ma.Sim.RunUntilIdle()
}

func TestDriverRefillsRing(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) { skb.Free(task) }
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ma.NIC.InjectRX(0, device.Segment{Len: 9000, Header: []byte("h")})
	}
	ma.Sim.RunUntilIdle()
	if got, err := ma.NIC.RXPosted(0); err != nil || got != 8 {
		t.Fatalf("ring not refilled: %d posted, want 8 (err %v)", got, err)
	}
	if ma.Driver.RxDelivered != 20 {
		t.Fatalf("delivered %d of 20", ma.Driver.RxDelivered)
	}
}

func TestAllocSKBFallbackWithoutDevice(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, err := netstack.AllocSKB(ma.Kernel, nil, -1, 2048, false)
	if err != nil {
		t.Fatal(err)
	}
	if skb.DamnOwned() {
		t.Fatal("NULL-device skb must use the ordinary kernel allocator (§5.7)")
	}
	skb.Free(nil)
}

func TestDmaAllocSKBUsesDamn(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, err := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	if !skb.DamnOwned() {
		t.Fatal("dma_alloc_skb must allocate from DAMN")
	}
	if _, err := netstack.DmaAllocSKB(ma.Kernel, nil, -1, 64, true); err == nil {
		t.Fatal("dma_alloc_skb without a device should fail")
	}
	skb.Free(nil)
}

// TestDAMNTocttouDefence is the core §5.2 security property: once the OS
// has accessed packet bytes, the device cannot change what the OS sees.
func TestDAMNTocttouDefence(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	k := ma.Kernel

	// Receive path: a DAMN RX buffer with a materialised packet.
	skb, err := netstack.DmaAllocSKB(k, nil, testbed.NICDeviceID, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ma.Damn.IOVAOf(skb.HeadPA())
	if !ok {
		t.Fatal("no IOVA")
	}
	packet := []byte("SRC=10.0.0.1 DST=10.0.0.2 OK-PAYLOAD")
	if _, err := ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet); err != nil {
		t.Fatal(err)
	}
	skb.SetReceived(len(packet), len(packet))

	// The firewall inspects the header...
	hdr, err := skb.Access(nil, 25)
	if err != nil {
		t.Fatal(err)
	}
	if string(hdr) != string(packet[:25]) {
		t.Fatalf("header read %q", hdr)
	}

	// ...and the compromised NIC immediately rewrites the packet (the
	// buffer is permanently writable — that is DAMN's design).
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	if err := attacker.TryWrite(v, []byte("SRC=66.6.6.66 DST=6.6.6.6 EVIL-DATA!!")); err != nil {
		t.Fatal("the device is expected to be able to write the live buffer")
	}

	// The OS's view of the *accessed* bytes must be unchanged.
	hdr2, err := skb.Access(nil, 25)
	if err != nil {
		t.Fatal(err)
	}
	if string(hdr2) != string(packet[:25]) {
		t.Fatalf("TOCTTOU: OS header view changed to %q", hdr2)
	}
	if skb.CopiedBytes == 0 {
		t.Fatal("no TOCTTOU copying recorded")
	}
	skb.Free(nil)
}

// TestDeferredTocttouVulnerable shows the contrast (§4.1): under deferred
// protection the device can rewrite a buffer the OS is still reading.
func TestDeferredTocttouVulnerable(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDeferred, 1)
	k := ma.Kernel

	skb, err := netstack.AllocSKB(k, nil, testbed.NICDeviceID, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	v, err := skb.MapForDevice(nil, dmaapi.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	packet := []byte("SRC=10.0.0.1 GOOD")
	if _, err := ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet); err != nil {
		t.Fatal(err)
	}
	skb.SetReceived(len(packet), len(packet))
	// Driver unmaps; deferred leaves the IOTLB stale.
	if err := skb.UnmapForDevice(nil, dmaapi.FromDevice); err != nil {
		t.Fatal(err)
	}

	hdr, _ := skb.Access(nil, len(packet))
	if string(hdr) != string(packet) {
		t.Fatalf("first read %q", hdr)
	}
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	if !attacker.TOCTTOUFlip(v, []byte("SRC=66.6.6.66 EVIL"), 1) {
		t.Fatal("attack should land inside the deferred window")
	}
	hdr2, _ := skb.Access(nil, len(packet))
	if string(hdr2) == string(packet) {
		t.Fatal("expected deferred protection to be TOCTTOU-vulnerable (the paper's point)")
	}
	skb.Free(nil)
}

// TestStrictTocttouSafe: strict invalidates synchronously, so the same
// attack faults.
func TestStrictTocttouSafe(t *testing.T) {
	ma := newMachine(t, testbed.SchemeStrict, 1)
	skb, err := netstack.AllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	v, err := skb.MapForDevice(nil, dmaapi.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, []byte("GOOD"))
	skb.SetReceived(4, 4)
	skb.UnmapForDevice(nil, dmaapi.FromDevice)
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	if attacker.TOCTTOUFlip(v, []byte("EVIL"), 3) {
		t.Fatal("strict protection let a post-unmap write land")
	}
	skb.Free(nil)
}

// TestDeferredUseAfterFreeLeak: inside the deferred window the device can
// also read kernel data placed in the recycled buffer (§4.1 "steal data
// placed in unmapped buffers after the OS reuses them").
func TestDeferredUseAfterFreeLeak(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDeferred, 1)
	skb, _ := netstack.AllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, false)
	v, err := skb.MapForDevice(nil, dmaapi.ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the IOTLB with a legitimate read.
	if _, err := ma.IOMMU.DMARead(testbed.NICDeviceID, v, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	pa := skb.HeadPA()
	skb.UnmapForDevice(nil, dmaapi.ToDevice)
	skb.Free(nil)
	// The kernel reuses the memory for something sensitive...
	secretPA, err := ma.Slab.Alloc(2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if secretPA != pa {
		t.Skip("slab did not recycle the same object")
	}
	ma.Mem.Write(secretPA, []byte("TOP-SECRET-KEY"))
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	got, err := attacker.TryRead(v, 14)
	if err != nil {
		t.Fatal("read should succeed inside the window")
	}
	if string(got) != "TOP-SECRET-KEY" {
		t.Fatalf("read %q", got)
	}
	// After the flush the window closes.
	ma.Deferred.S.Flush(nil)
	if _, err := attacker.TryRead(v, 14); err == nil {
		t.Fatal("window should close after flush")
	}
}

// TestDAMNNoKernelDataExposure: under DAMN the device's reach is exactly
// the DAMN pages; recycled network buffers never hold non-network data.
func TestDAMNNoKernelDataExposure(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, _ := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, true)
	v, _ := ma.Damn.IOVAOf(skb.HeadPA())
	skb.Free(nil)
	// The mapping is still live (by design). Whatever the device reads
	// or writes through it is DAMN memory — never slab/kernel memory.
	pa, err := ma.IOMMU.Translate(testbed.NICDeviceID, v, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Damn.Owns(pa) {
		t.Fatal("DAMN mapping reaches non-DAMN memory")
	}
	// And a freshly created kernel secret is unreachable: scan the whole
	// device-visible space for it.
	secretPA, _ := ma.Slab.Alloc(256, 0)
	ma.Mem.Write(secretPA, []byte("SECRET-SAUCE"))
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	found, _ := attacker.ScanForSecret(v&^0xFFFFF, (v&^0xFFFFF)+1<<21, []byte("SECRET-SAUCE"))
	if len(found) != 0 {
		t.Fatal("device found kernel secret through DAMN mappings")
	}
}

func TestNetfilterDropsPacket(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	ma.Kernel.Netfilter.Register(func(task *sim.Task, skb *netstack.SKBuff) netstack.Verdict {
		hdr, _ := skb.Access(task, 4)
		if string(hdr) == "EVIL" {
			return netstack.Drop
		}
		return netstack.Accept
	})
	recv := runRX(t, ma, device.Segment{Len: 1500, Header: []byte("EVILpacket")})
	if recv.Dropped != 1 || recv.Segments != 0 {
		t.Fatalf("dropped=%d segments=%d", recv.Dropped, recv.Segments)
	}
}

func TestAccessorCopiesOnlyOnce(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, _ := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 4096, true)
	skb.SetReceived(4096, 0)
	skb.Access(nil, 128)
	if skb.CopiedBytes != 128 {
		t.Fatalf("CopiedBytes = %d", skb.CopiedBytes)
	}
	skb.Access(nil, 128) // same range: no extra copy
	if skb.CopiedBytes != 128 {
		t.Fatalf("re-access copied again: %d", skb.CopiedBytes)
	}
	skb.Access(nil, 1024) // extends the prefix
	if skb.CopiedBytes != 1024 {
		t.Fatalf("CopiedBytes = %d, want 1024", skb.CopiedBytes)
	}
	skb.Free(nil)
}

func TestAccessorNoCopyForTXBuffers(t *testing.T) {
	// TX buffers are read-only to the device, so no TOCTTOU copy is
	// needed (§5.6: TX security needs only zeroing).
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, _ := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 4096, false)
	skb.CopyFromUser(nil, []byte("outbound data"), 13)
	if _, err := skb.Access(nil, 13); err != nil {
		t.Fatal(err)
	}
	if skb.CopiedBytes != 0 {
		t.Fatalf("TX access copied %d bytes", skb.CopiedBytes)
	}
	skb.Free(nil)
}

func TestCopyToUserPrefersSafePrefix(t *testing.T) {
	// After the OS accessed the header, the user copy must come from the
	// safe prefix for those bytes even if the device rewrote the buffer.
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, _ := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 1024, true)
	v, _ := ma.Damn.IOVAOf(skb.HeadPA())
	ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, []byte("HEADERpayload"))
	skb.SetReceived(13, 13)
	skb.Access(nil, 6) // header copied out
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	attacker.TryWrite(v, []byte("EVILED"))
	user := skb.CopyToUser(nil, 13)
	if string(user[:6]) != "HEADER" {
		t.Fatalf("user sees tampered header %q", user[:6])
	}
	// The tail was not accessed pre-copy, so the device write there is
	// indistinguishable from a legitimate late DMA — either value is
	// acceptable per §5.6.
	skb.Free(nil)
}

func TestSKBDoubleFreePanics(t *testing.T) {
	ma := newMachine(t, testbed.SchemeOff, 1)
	skb, _ := netstack.AllocSKB(ma.Kernel, nil, -1, 256, false)
	skb.Free(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	skb.Free(nil)
}

func TestRXFlowControlBackpressure(t *testing.T) {
	// With no receiver consuming (OnDeliver leaks the buffers without
	// refilling), the ring drains and the NIC parks traffic instead of
	// losing it.
	ma := newMachine(t, testbed.SchemeOff, 1)
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	// Swallow deliveries but prevent refill by exhausting the ring:
	// inject far more than RingSize with a driver that keeps buffers.
	var kept []*netstack.SKBuff
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		kept = append(kept, skb)
	}
	for i := 0; i < 100; i++ {
		ma.NIC.InjectRX(0, device.Segment{Len: 9000, Header: []byte("x")})
	}
	ma.Sim.RunUntilIdle()
	parked, err := ma.NIC.RXParked(0)
	if err != nil {
		t.Fatal(err)
	}
	if parked+int(ma.Driver.RxDelivered) != 100 {
		t.Fatalf("segments lost: parked %d + delivered %d != 100",
			parked, ma.Driver.RxDelivered)
	}
}

// TestZeroCopyFallback is §2.2: a sendfile-style transmit uses page-cache
// memory, which DAMN cannot own; the mapping must fall back to the legacy
// scheme (deferred on a DAMN machine), complete with its dynamic mapping
// and its security trade-offs.
func TestZeroCopyFallback(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, err := netstack.AllocSKBPageCache(ma.Kernel, nil, testbed.NICDeviceID, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if skb.DamnOwned() {
		t.Fatal("page-cache skb must not be DAMN-owned")
	}
	skb.CopyFromUser(nil, []byte("file contents"), 8192)

	maps := ma.IOMMU.Mappings
	v, err := skb.MapForDevice(nil, dmaapi.ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if ma.IOMMU.Mappings == maps {
		t.Fatal("zero-copy map did not reach the legacy scheme")
	}
	// The device reads the file bytes through the dynamic mapping.
	got := make([]byte, 13)
	if _, err := ma.IOMMU.DMARead(testbed.NICDeviceID, v, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "file contents" {
		t.Fatalf("device read %q", got)
	}
	if err := skb.UnmapForDevice(nil, dmaapi.ToDevice); err != nil {
		t.Fatal(err)
	}
	// Deferred fallback: the unmap batched an invalidation (the window
	// the paper accepts for zero-copy paths).
	if ma.Deferred.S.PendingInvalidations() == 0 {
		t.Fatal("fallback unmap did not batch an invalidation")
	}
	skb.Free(nil)
}

// TestNAPIRunsOnRingCore is the shard-affinity invariant end to end: each
// ring's completions execute on the core its NAPI context is bound to (so
// every allocation and invalidation hits that core's DAMN shard), and the
// driver's wrong-core counter stays zero.
func TestNAPIRunsOnRingCore(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 4)
	coreOf := map[int]int{} // ring -> executing core
	ma.Driver.OnDeliver = func(task *sim.Task, ring int, skb *netstack.SKBuff) {
		coreOf[ring] = task.Core().ID
		skb.Free(task)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	// The default indirection table is i % Rings over 128 slots, so hash h
	// (h < Rings) picks ring h: cover all four rings.
	for h := 0; h < 4; h++ {
		ma.NIC.InjectRX(0, device.Segment{
			Flow: h + 1, Hash: uint32(h), Len: 9000, Header: []byte("h"),
		})
	}
	ma.Sim.RunUntilIdle()
	if len(coreOf) != 4 {
		t.Fatalf("completions on %d rings, want 4 (%v)", len(coreOf), coreOf)
	}
	for ring, core := range coreOf {
		if want := ma.Driver.RingCore(ring).ID; core != want {
			t.Errorf("ring %d completion ran on core %d, want %d", ring, core, want)
		}
	}
	if ma.Driver.RxWrongCore != 0 {
		t.Fatalf("RxWrongCore = %d, want 0", ma.Driver.RxWrongCore)
	}
	if ma.Damn.ShardClamps() != 0 {
		t.Fatalf("ShardClamps = %d, want 0", ma.Damn.ShardClamps())
	}
}
