package netstack

import "github.com/asplos18/damn/internal/sim"

// Verdict is a netfilter hook decision.
type Verdict int

const (
	// Accept lets the packet continue up the stack.
	Accept Verdict = iota
	// Drop discards it.
	Drop
)

// Hook inspects a received segment (after LRO reassembly, as in §6.2's
// XOR benchmark). Hooks access packet bytes only through the skb
// accessors, which is what lets DAMN protect them from TOCTTOU.
type Hook func(t *sim.Task, skb *SKBuff) Verdict

// Netfilter is the hook registry.
type Netfilter struct {
	hooks []Hook
}

// Register appends a hook.
func (nf *Netfilter) Register(h Hook) { nf.hooks = append(nf.hooks, h) }

// Run applies all hooks in order; the first Drop wins.
func (nf *Netfilter) Run(t *sim.Task, skb *SKBuff) Verdict {
	for _, h := range nf.hooks {
		if h(t, skb) == Drop {
			return Drop
		}
	}
	return Accept
}
