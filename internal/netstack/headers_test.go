package netstack

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	b := BuildHeaders(src, dst, 33333, 80, 0x11223344, 9000)
	if len(b) != HeaderLen {
		t.Fatalf("header stack length %d, want %d", len(b), HeaderLen)
	}
	p, err := ParsePacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP.Src != src || p.IP.Dst != dst {
		t.Fatalf("addresses %v -> %v", p.IP.Src, p.IP.Dst)
	}
	if p.TCP.SrcPort != 33333 || p.TCP.DstPort != 80 {
		t.Fatalf("ports %d -> %d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.TCP.Seq != 0x11223344 {
		t.Fatalf("seq %#x", p.TCP.Seq)
	}
	if p.TCP.Flags&TCPFlagACK == 0 {
		t.Fatal("ACK flag missing")
	}
	if p.IP.TTL != 64 || p.IP.Protocol != IPProtoTCP {
		t.Fatalf("ip fields: ttl=%d proto=%d", p.IP.TTL, p.IP.Protocol)
	}
}

func TestHeaderQuickRoundTrip(t *testing.T) {
	check := func(s, d [4]byte, sp, dp uint16, seq uint32, plen uint16) bool {
		src, dst := netip.AddrFrom4(s), netip.AddrFrom4(d)
		b := BuildHeaders(src, dst, sp, dp, seq, int(plen))
		p, err := ParsePacket(b)
		if err != nil {
			return false
		}
		return p.IP.Src == src && p.IP.Dst == dst &&
			p.TCP.SrcPort == sp && p.TCP.DstPort == dp && p.TCP.Seq == seq
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	b := BuildHeaders(src, dst, 1, 2, 3, 100)
	// A TOCTTOU attacker flips the source address; the checksum catches
	// it unless the attacker also fixes the checksum.
	b[EthHeaderLen+12] ^= 0xFF
	if _, err := ParseIPv4(b[EthHeaderLen:]); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestParseShortBuffers(t *testing.T) {
	if _, err := ParseEth(make([]byte, 5)); err == nil {
		t.Error("short ethernet accepted")
	}
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short IPv4 accepted")
	}
	if _, err := ParseTCP(make([]byte, 10)); err == nil {
		t.Error("short TCP accepted")
	}
	if _, err := ParsePacket(make([]byte, HeaderLen-1)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestParseRejectsNonIPv4(t *testing.T) {
	b := EthHeader{EtherType: 0x86DD /* IPv6 */}.Marshal(nil)
	b = append(b, make([]byte, 40)...)
	if _, err := ParsePacket(b); err == nil {
		t.Fatal("IPv6 ethertype accepted as IPv4")
	}
}

func TestParseRejectsNonTCP(t *testing.T) {
	src := netip.AddrFrom4([4]byte{1, 2, 3, 4})
	b := EthHeader{EtherType: EtherTypeIPv4}.Marshal(nil)
	b = IPv4Header{TotalLen: 40, TTL: 64, Protocol: 17 /* UDP */, Src: src, Dst: src}.Marshal(b)
	b = append(b, make([]byte, TCPHeaderLen)...)
	if _, err := ParsePacket(b); err == nil {
		t.Fatal("UDP accepted as TCP")
	}
}
