package netstack

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	b := BuildHeaders(src, dst, 33333, 80, 0x11223344, 9000)
	if len(b) != HeaderLen {
		t.Fatalf("header stack length %d, want %d", len(b), HeaderLen)
	}
	p, err := ParsePacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP.Src != src || p.IP.Dst != dst {
		t.Fatalf("addresses %v -> %v", p.IP.Src, p.IP.Dst)
	}
	if p.TCP.SrcPort != 33333 || p.TCP.DstPort != 80 {
		t.Fatalf("ports %d -> %d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.TCP.Seq != 0x11223344 {
		t.Fatalf("seq %#x", p.TCP.Seq)
	}
	if p.TCP.Flags&TCPFlagACK == 0 {
		t.Fatal("ACK flag missing")
	}
	if p.IP.TTL != 64 || p.IP.Protocol != IPProtoTCP {
		t.Fatalf("ip fields: ttl=%d proto=%d", p.IP.TTL, p.IP.Protocol)
	}
}

func TestHeaderQuickRoundTrip(t *testing.T) {
	check := func(s, d [4]byte, sp, dp uint16, seq uint32, plen uint16) bool {
		src, dst := netip.AddrFrom4(s), netip.AddrFrom4(d)
		b := BuildHeaders(src, dst, sp, dp, seq, int(plen))
		p, err := ParsePacket(b)
		if err != nil {
			return false
		}
		return p.IP.Src == src && p.IP.Dst == dst &&
			p.TCP.SrcPort == sp && p.TCP.DstPort == dp && p.TCP.Seq == seq
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	b := BuildHeaders(src, dst, 1, 2, 3, 100)
	// A TOCTTOU attacker flips the source address; the checksum catches
	// it unless the attacker also fixes the checksum.
	b[EthHeaderLen+12] ^= 0xFF
	if _, err := ParseIPv4(b[EthHeaderLen:]); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestParseShortBuffers(t *testing.T) {
	if _, err := ParseEth(make([]byte, 5)); err == nil {
		t.Error("short ethernet accepted")
	}
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short IPv4 accepted")
	}
	if _, err := ParseTCP(make([]byte, 10)); err == nil {
		t.Error("short TCP accepted")
	}
	if _, err := ParsePacket(make([]byte, HeaderLen-1)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestParseRejectsNonIPv4(t *testing.T) {
	b := EthHeader{EtherType: 0x86DD /* IPv6 */}.Marshal(nil)
	b = append(b, make([]byte, 40)...)
	if _, err := ParsePacket(b); err == nil {
		t.Fatal("IPv6 ethertype accepted as IPv4")
	}
}

func TestParseRejectsNonTCP(t *testing.T) {
	src := netip.AddrFrom4([4]byte{1, 2, 3, 4})
	b := EthHeader{EtherType: EtherTypeIPv4}.Marshal(nil)
	b = IPv4Header{TotalLen: 40, TTL: 64, Protocol: 17 /* UDP */, Src: src, Dst: src}.Marshal(b)
	b = append(b, make([]byte, TCPHeaderLen)...)
	if _, err := ParsePacket(b); err == nil {
		t.Fatal("UDP accepted as TCP")
	}
}

// TestToeplitzVectors checks the RSS hash against the published Microsoft
// verification vectors for the canonical key (TCP/IPv4 with ports).
func TestToeplitzVectors(t *testing.T) {
	cases := []struct {
		src, dst         string
		srcPort, dstPort uint16
		want             uint32
	}{
		{"66.9.149.187", "161.142.100.80", 2794, 1766, 0x51ccc178},
		{"199.92.111.2", "65.69.140.83", 14230, 4739, 0xc626b0ea},
		{"24.19.198.95", "12.22.207.184", 12898, 38024, 0x5c2b394a},
		{"38.27.205.30", "209.142.163.6", 48228, 2217, 0xafc7327f},
		{"153.39.163.191", "202.188.127.2", 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		src, dst := netip.MustParseAddr(c.src), netip.MustParseAddr(c.dst)
		if got := RSSHashIPv4(src, dst, c.srcPort, c.dstPort); got != c.want {
			t.Errorf("RSSHashIPv4(%s:%d -> %s:%d) = %#x, want %#x",
				c.src, c.srcPort, c.dst, c.dstPort, got, c.want)
		}
	}
}

// TestRSSHashPacketMatchesTuple: hashing the wire bytes of a generated
// segment gives the same value as hashing the 4-tuple directly — the
// property that lets traffic sources precompute the per-flow hash the way
// hardware reports it in completion descriptors.
func TestRSSHashPacketMatchesTuple(t *testing.T) {
	src := netip.AddrFrom4([4]byte{192, 168, 0, 7})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	b := BuildHeaders(src, dst, 10007, 5001, 1234, 9000)
	got, ok := RSSHashPacket(b)
	if !ok {
		t.Fatal("RSSHashPacket rejected a generated header stack")
	}
	if want := RSSHashIPv4(src, dst, 10007, 5001); got != want {
		t.Fatalf("packet hash %#x != tuple hash %#x", got, want)
	}
	if _, ok := RSSHashPacket([]byte("not a packet at all, tiny")); ok {
		t.Fatal("RSSHashPacket accepted junk")
	}
}
