// Package netstack is the miniature Linux networking subsystem of the
// reproduction: skbuffs with the accessor API that DAMN's TOCTTOU defence
// interposes on (§5.2), the NIC driver (RX ring management, TX mapping),
// stream senders/receivers with socket-buffer flow control (the TCP-lite
// data path netperf exercises), and netfilter hooks.
//
// Deployment mirrors §5.7: __alloc_skb takes a device argument; a nil
// device (Dev < 0) falls back to the ordinary kernel allocator, and
// DAMN-aware flows call DmaAllocSKB with the device from their socket.
package netstack

import (
	"fmt"

	"github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Kernel bundles the machine's kernel-side services the stack needs.
type Kernel struct {
	Sim   *sim.Engine
	Mem   *mem.Memory
	Slab  *mem.Slab
	IOMMU *iommu.IOMMU
	DMA   *dmaapi.Engine
	// Damn is nil when DAMN is not deployed (baseline schemes).
	Damn  *damn.DAMN
	Model *perf.Model
	MemBW *sim.MemController
	Cores []*sim.Core

	Netfilter Netfilter

	// Free lists recycling SKBuff structs and user-copy destination
	// buffers (host Go memory only — the simulated slab/DAMN memory
	// behind an skb is always released before the struct is recycled, so
	// pooling changes no simulated allocation counts or figure output).
	freeSKBs []*SKBuff
	userBufs [][]byte

	// Observability (nil-safe handles; see SetStats).
	freeErrC *stats.Counter
	// Receive-drop causes, split so the registry can say *why* a stream
	// shed a segment: stack couldn't access the headers, a netfilter hook
	// rejected it, the ARQ reorder window saw a duplicate, or the segment
	// landed outside the reorder window entirely.
	recvDropAccess *stats.Counter
	recvDropFilter *stats.Counter
	recvDropDup    *stats.Counter
	recvDropOow    *stats.Counter
}

// getSKB pops a recycled SKBuff (or allocates the pool's first); every
// field is reset to the zero state before the caller initialises it.
func (k *Kernel) getSKB() *SKBuff {
	if n := len(k.freeSKBs); n > 0 {
		s := k.freeSKBs[n-1]
		k.freeSKBs = k.freeSKBs[:n-1]
		*s = SKBuff{k: k}
		return s
	}
	return &SKBuff{k: k}
}

// getUserBuf pops a length-n user-copy destination from the pool when the
// top buffer is big enough; the caller owns the contents entirely (every
// byte of [0, n) is overwritten or zeroed by CopyToUser).
func (k *Kernel) getUserBuf(n int) []byte {
	if m := len(k.userBufs); m > 0 && cap(k.userBufs[m-1]) >= n {
		b := k.userBufs[m-1]
		k.userBufs = k.userBufs[:m-1]
		return b[:n]
	}
	return make([]byte, n)
}

// putUserBuf returns a user-copy buffer; the pool is bounded so a burst of
// oversized copies cannot pin memory forever.
func (k *Kernel) putUserBuf(b []byte) {
	if cap(b) == 0 || len(k.userBufs) >= 1024 {
		return
	}
	k.userBufs = append(k.userBufs, b[:0])
}

// SetStats attaches a metrics registry for kernel-level error accounting.
func (k *Kernel) SetStats(r *stats.Registry) {
	k.freeErrC = r.Counter("netstack", "buffer_free_errors")
	k.recvDropAccess = r.Counter("netstack", "recv_drop_access")
	k.recvDropFilter = r.Counter("netstack", "recv_drop_filter")
	k.recvDropDup = r.Counter("netstack", "recv_drop_dup")
	k.recvDropOow = r.Counter("netstack", "recv_drop_out_of_window")
}

// UseDamn reports whether the DAMN allocator is deployed.
func (k *Kernel) UseDamn() bool { return k.Damn != nil }

// Ctx derives a DAMN allocation context from a simulated task.
func (k *Kernel) Ctx(t *sim.Task) damn.Ctx {
	if t == nil {
		return damn.Ctx{}
	}
	return damn.Ctx{C: t, CPU: t.Core().ID, IRQ: t.Interrupt}
}

// AllocBuffer allocates a raw packet buffer for a device: from DAMN when
// deployed and dev is real, otherwise from the ordinary kernel allocator
// (which is exactly the co-location hazard of §4.1 for the legacy schemes).
// Returns the buffer address and whether it is DAMN-owned.
func (k *Kernel) AllocBuffer(t *sim.Task, dev int, rights iommu.Perm, size int) (mem.PhysAddr, bool, error) {
	if k.UseDamn() && dev >= 0 {
		pa, err := k.Damn.Alloc(k.Ctx(t), dev, rights, size)
		return pa, true, err
	}
	node := 0
	if t != nil {
		node = t.Core().Node
	}
	pa, err := k.Slab.Alloc(size, node)
	return pa, false, err
}

// FreeBuffer releases a buffer from AllocBuffer. A failed DAMN free is a
// buffer-accounting error, not a simulator invariant violation: the buffer
// is quarantined (leaked, never reused) rather than handed back in an
// unknown state, the failure is counted, and the error is returned for the
// caller's own accounting.
func (k *Kernel) FreeBuffer(t *sim.Task, pa mem.PhysAddr, damnOwned bool) error {
	if damnOwned {
		if err := k.Damn.Free(k.Ctx(t), pa); err != nil {
			k.freeErrC.Inc()
			return fmt.Errorf("netstack: damn free: %w", err)
		}
		return nil
	}
	k.Slab.Free(pa)
	return nil
}
