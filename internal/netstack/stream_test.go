package netstack_test

import (
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func TestSenderStopDrains(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	snd := &netstack.Sender{K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[0]}
	snd.Start()
	ma.Sim.Run(1 * sim.Millisecond)
	snd.Stop()
	ma.Sim.RunUntilIdle()
	// Everything transmitted must have completed; nothing in flight.
	if ma.NIC.TXInFlight(0) != 0 {
		t.Fatalf("in-flight after drain: %d", ma.NIC.TXInFlight(0))
	}
	if uint64(ma.NIC.TxSegments) != snd.Segments {
		t.Fatalf("NIC sent %d, sender completed %d", ma.NIC.TxSegments, snd.Segments)
	}
	// Buffer accounting balances: DAMN footprint is bounded by the
	// window, not the total transmitted.
	if ma.Damn.FootprintBytes() > int64(snd.Window)*4 {
		t.Fatalf("footprint %d for window %d", ma.Damn.FootprintBytes(), snd.Window)
	}
}

func TestSenderSurvivesTinyTxRing(t *testing.T) {
	// A TX ring smaller than the window: PostTX fails sometimes; the
	// sender must retry via completions without losing accounting.
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeOff, MemBytes: 128 << 20, Cores: 1, RingSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild NIC with a 2-entry TX ring.
	nic := device.NewNIC(ma.Sim, ma.IOMMU, ma.Model, ma.MemBW, ma.Cores, device.NICConfig{
		ID: testbed.NICDeviceID, Ports: 1, RingSize: 4, TxRing: 2, Rings: 1,
		WireGbps: 100, PCIeGbps: 106,
	})
	drv := netstack.NewDriver(ma.Kernel, nic)
	drv.OnTxDone = netstack.DispatchTxDone
	snd := &netstack.Sender{K: ma.Kernel, Drv: drv, Core: ma.Cores[0], Window: 8 * ma.Model.SegmentSize}
	snd.Start()
	ma.Sim.Run(2 * sim.Millisecond)
	snd.Stop()
	ma.Sim.RunUntilIdle()
	if snd.Segments == 0 {
		t.Fatal("nothing transmitted through the tiny ring")
	}
	if nic.TXInFlight(0) != 0 {
		t.Fatal("ring not drained")
	}
}

func TestReceiverCountsDrops(t *testing.T) {
	ma := newMachine(t, testbed.SchemeOff, 1)
	ma.Kernel.Netfilter.Register(func(task *sim.Task, skb *netstack.SKBuff) netstack.Verdict {
		return netstack.Drop
	})
	recv := runRX(t, ma, device.Segment{Len: 9000, Header: []byte("any")})
	if recv.Dropped != 1 || recv.Segments != 0 || recv.Bytes != 0 {
		t.Fatalf("dropped=%d segments=%d bytes=%d", recv.Dropped, recv.Segments, recv.Bytes)
	}
}

func TestDispatchTxDoneWithoutOwner(t *testing.T) {
	// Completions for unowned skbs must still free the buffer.
	ma := newMachine(t, testbed.SchemeDAMN, 1)
	skb, err := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, false)
	if err != nil {
		t.Fatal(err)
	}
	skb.CopyFromUser(nil, nil, 2048)
	ma.Cores[0].Submit(false, func(task *sim.Task) {
		if err := ma.Driver.Transmit(task, 0, 0, skb); err != nil {
			t.Error(err)
		}
	})
	ma.Sim.RunUntilIdle()
	if ma.Driver.TxCompleted != 1 {
		t.Fatalf("TxCompleted = %d", ma.Driver.TxCompleted)
	}
	// The buffer was freed (footprint bounded to the recycled chunk).
	if got := ma.Damn.FootprintBytes(); got > int64(ma.Damn.ChunkBytes()) {
		t.Fatalf("footprint %d suggests a leak", got)
	}
}
