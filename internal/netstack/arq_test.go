package netstack_test

import (
	"net/netip"
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// --- Pure sender state-machine tests (no machine, just the engine) ---

func TestArqRTOEstimator(t *testing.T) {
	eng := sim.NewEngine(1)
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{SegLen: 100}, func(*netstack.ArqSegment, bool) {})

	// First sample: srtt = R, rttvar = R/2, rto = srtt + 4*rttvar = 3R.
	arq.SendNext()
	eng.Run(100 * sim.Microsecond)
	arq.OnAck(2)
	if got, want := arq.SRTT(), 100*sim.Microsecond; got != want {
		t.Fatalf("srtt after first sample: %v, want %v", got, want)
	}
	if got, want := arq.RTO(), 300*sim.Microsecond; got != want {
		t.Fatalf("rto after first sample: %v, want %v", got, want)
	}

	// Second sample R'=200µs: rttvar = (3*50+|100-200|)/4 = 62.5µs,
	// srtt = (7*100+200)/8 = 112.5µs, rto = 362.5µs.
	arq.SendNext()
	eng.Run(eng.Now() + 200*sim.Microsecond)
	arq.OnAck(3)
	if got := arq.SRTT(); got.Seconds() != 112.5e-6 {
		t.Fatalf("srtt after second sample: %v, want 112.5µs", got)
	}
	if got := arq.RTO(); got.Seconds() != 362.5e-6 {
		t.Fatalf("rto after second sample: %v, want 362.5µs", got)
	}
}

func TestArqTimeoutBackoffAndKarn(t *testing.T) {
	eng := sim.NewEngine(1)
	var sends, retx int
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{
		SegLen: 100, InitRTO: sim.Millisecond, MaxRTO: 4 * sim.Millisecond,
	}, func(seg *netstack.ArqSegment, isRetx bool) {
		sends++
		if isRetx {
			retx++
		}
	})

	arq.SendNext() // never acked: timeouts fire with exponential backoff
	eng.Run(sim.Millisecond)
	if arq.Timeouts != 1 || arq.TimeoutRetx != 1 {
		t.Fatalf("after 1ms: timeouts=%d retx=%d, want 1/1", arq.Timeouts, arq.TimeoutRetx)
	}
	if got, want := arq.RTO(), 2*sim.Millisecond; got != want {
		t.Fatalf("rto after first timeout: %v, want %v", got, want)
	}
	eng.Run(3 * sim.Millisecond) // second timeout at t=1ms+2ms
	if got, want := arq.RTO(), 4*sim.Millisecond; got != want {
		t.Fatalf("rto after second timeout: %v, want %v", got, want)
	}
	eng.Run(7 * sim.Millisecond) // third timeout at t=3ms+4ms; clamped
	if got, want := arq.RTO(), 4*sim.Millisecond; got != want {
		t.Fatalf("rto clamp: %v, want %v", got, want)
	}
	if arq.Timeouts != 3 {
		t.Fatalf("timeouts: %d, want 3", arq.Timeouts)
	}

	// Karn's rule: the segment was retransmitted, so its eventual ack
	// must not produce an RTT sample.
	arq.OnAck(2)
	if arq.SRTT() != 0 {
		t.Fatalf("retransmitted segment produced an RTT sample: srtt=%v", arq.SRTT())
	}
	if arq.InFlight() != 0 {
		t.Fatalf("in-flight after ack: %d", arq.InFlight())
	}
	eng.RunUntilIdle() // pending timer dies quietly with nothing in flight
	if arq.Timeouts != 3 {
		t.Fatalf("spurious timeout after ack: %d", arq.Timeouts)
	}
}

func TestArqFastRetransmitOnDupAcks(t *testing.T) {
	eng := sim.NewEngine(1)
	var retxSeqs []uint32
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{SegLen: 100}, func(seg *netstack.ArqSegment, isRetx bool) {
		if isRetx {
			retxSeqs = append(retxSeqs, seg.Seq)
		}
	})

	for i := 0; i < 5; i++ {
		arq.SendNext()
	}
	// Receiver saw 2,3,4 but not 1: three duplicate cumulative ACKs.
	arq.OnAck(1)
	arq.OnAck(1)
	if len(retxSeqs) != 0 {
		t.Fatalf("retransmit before dup threshold: %v", retxSeqs)
	}
	arq.OnAck(1)
	if len(retxSeqs) != 1 || retxSeqs[0] != 1 {
		t.Fatalf("fast retransmit: %v, want [1]", retxSeqs)
	}
	if arq.FastRetx != 1 || arq.DupAcks != 3 {
		t.Fatalf("fastretx=%d dupacks=%d, want 1/3", arq.FastRetx, arq.DupAcks)
	}
	// The retransmission repairs the hole; the cumulative ack releases
	// everything at once.
	arq.OnAck(6)
	if arq.InFlight() != 0 || arq.AckSeq() != 6 {
		t.Fatalf("after repair: inflight=%d ack=%d", arq.InFlight(), arq.AckSeq())
	}
}

func TestArqPartialAckNeedsOwnDupAcks(t *testing.T) {
	eng := sim.NewEngine(1)
	var retxSeqs []uint32
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{SegLen: 100}, func(seg *netstack.ArqSegment, isRetx bool) {
		if isRetx {
			retxSeqs = append(retxSeqs, seg.Seq)
		}
	})

	// Segments 1 and 2 both lost; 3..6 arrive and generate dup-ACKs.
	for i := 0; i < 6; i++ {
		arq.SendNext()
	}
	arq.OnAck(1)
	arq.OnAck(1)
	arq.OnAck(1) // fast retransmit of 1
	if len(retxSeqs) != 1 || retxSeqs[0] != 1 {
		t.Fatalf("fast retransmit: %v, want [1]", retxSeqs)
	}
	// Retransmitted 1 arrives; the ack advances only to 2. A partial ack
	// must NOT auto-retransmit (that rule melts down when the ACK path
	// lags delivery — see the package comment); hole 2 earns its own
	// dup-ACKs instead.
	arq.OnAck(2)
	if len(retxSeqs) != 1 {
		t.Fatalf("partial ack retransmitted spuriously: %v", retxSeqs)
	}
	arq.OnAck(2)
	arq.OnAck(2)
	arq.OnAck(2)
	if len(retxSeqs) != 2 || retxSeqs[1] != 2 {
		t.Fatalf("second hole's fast retransmit: %v, want [1 2]", retxSeqs)
	}
	arq.OnAck(7)
	if arq.InFlight() != 0 {
		t.Fatalf("in-flight after recovery: %d", arq.InFlight())
	}
}

func TestArqWindowBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{Window: 4, SegLen: 100}, func(*netstack.ArqSegment, bool) {})
	for i := 0; i < 4; i++ {
		if !arq.CanSend() {
			t.Fatalf("window closed early at %d", i)
		}
		arq.SendNext()
	}
	if arq.CanSend() {
		t.Fatal("window open at capacity")
	}
	arq.OnAck(2)
	if !arq.CanSend() {
		t.Fatal("window closed after ack")
	}
}

func TestArqLazyTimerNoSpuriousTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	arq := netstack.NewArqSender(eng, netstack.ArqConfig{SegLen: 100, InitRTO: sim.Millisecond}, func(*netstack.ArqSegment, bool) {})

	// Seg 1 at t=0 arms the timer for t=1ms. Its ack at t=0.5ms samples
	// RTT=500µs (rto becomes 500 + 4*250 = 1.5ms); seg 2 goes out at
	// t=0.5ms, so the true deadline is t=2ms — but the pending event
	// still fires at t=1ms. It must re-arm, not time out.
	arq.SendNext()
	eng.Run(500 * sim.Microsecond)
	arq.OnAck(2)
	arq.SendNext()
	if got, want := arq.RTO(), 1500*sim.Microsecond; got != want {
		t.Fatalf("rto after sample: %v, want %v", got, want)
	}
	eng.Run(1900 * sim.Microsecond)
	if arq.Timeouts != 0 {
		t.Fatalf("spurious timeout at stale deadline: %d", arq.Timeouts)
	}
	eng.Run(2 * sim.Millisecond)
	if arq.Timeouts != 1 {
		t.Fatalf("timeout missing at true deadline: %d", arq.Timeouts)
	}
}

// --- End-to-end tests through a machine (real DMA path both ways) ---

// arqHarness wires an ArqSender (the remote generator half) to a
// ReliableReceiver on a real machine; drop[seq] counts how many times the
// wire eats that sequence number's transmission.
type arqHarness struct {
	ma   *testbed.Machine
	arq  *netstack.ArqSender
	rr   *netstack.ReliableReceiver
	recv *netstack.Receiver
	drop map[uint32]int
	dup  map[uint32]int
}

func newArqHarness(t *testing.T, scheme testbed.Scheme) *arqHarness {
	t.Helper()
	ma := newMachine(t, scheme, 1)
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	h := &arqHarness{
		ma:   ma,
		drop: map[uint32]int{},
		dup:  map[uint32]int{},
	}
	src := netip.AddrFrom4([4]byte{192, 168, 0, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	hash := netstack.RSSHashIPv4(src, dst, 10001, 5001)
	const segLen = 1500
	h.arq = netstack.NewArqSender(ma.Sim, netstack.ArqConfig{SegLen: segLen}, func(seg *netstack.ArqSegment, retx bool) {
		if !retx {
			seg.Hdr = netstack.AppendHeaders(seg.HdrBuf(), src, dst, 10001, 5001, seg.Seq, segLen-netstack.HeaderLen)
		}
		if h.drop[seg.Seq] > 0 {
			h.drop[seg.Seq]--
			return
		}
		n := 1
		if h.dup[seg.Seq] > 0 {
			n += h.dup[seg.Seq]
			h.dup[seg.Seq] = 0
		}
		for i := 0; i < n; i++ {
			h.ma.NIC.InjectRX(0, device.Segment{
				Flow: 1, Hash: hash, Seq: seg.Seq, Len: segLen, Header: seg.Hdr,
			})
		}
	})
	h.recv = &netstack.Receiver{K: ma.Kernel}
	h.rr = netstack.NewReliableReceiver(h.recv, ma.Driver, 0, 0, h.arq)
	ma.Driver.OnDeliver = func(tk *sim.Task, ring int, skb *netstack.SKBuff) {
		h.rr.HandleSegment(tk, skb)
	}
	return h
}

func (h *arqHarness) send(n int) {
	for i := 0; i < n; i++ {
		if !h.arq.CanSend() {
			break
		}
		h.arq.SendNext()
	}
}

func TestArqInOrderDelivery(t *testing.T) {
	h := newArqHarness(t, testbed.SchemeDAMN)
	h.send(20)
	h.ma.Sim.RunUntilIdle()
	if h.recv.Segments != 20 {
		t.Fatalf("delivered %d, want 20", h.recv.Segments)
	}
	if h.arq.InFlight() != 0 || h.arq.AckSeq() != 21 {
		t.Fatalf("inflight=%d ack=%d, want 0/21", h.arq.InFlight(), h.arq.AckSeq())
	}
	if h.arq.Retransmits != 0 {
		t.Fatalf("retransmits on a clean wire: %d", h.arq.Retransmits)
	}
	if h.rr.AcksSent != 20 {
		t.Fatalf("acks sent: %d, want 20", h.rr.AcksSent)
	}
}

func TestArqLossRecoveredByFastRetransmit(t *testing.T) {
	for _, scheme := range testbed.AllSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			h := newArqHarness(t, scheme)
			h.drop[3] = 1 // first transmission of seq 3 is eaten
			h.send(10)
			h.ma.Sim.RunUntilIdle()
			if h.recv.Segments != 10 {
				t.Fatalf("delivered %d, want 10", h.recv.Segments)
			}
			if h.arq.Retransmits == 0 {
				t.Fatal("loss repaired without a retransmission?")
			}
			if h.rr.BufferedSegments == 0 {
				t.Fatal("no out-of-order buffering despite a hole")
			}
			if h.arq.InFlight() != 0 || h.rr.Expect() != 11 {
				t.Fatalf("inflight=%d expect=%d, want 0/11", h.arq.InFlight(), h.rr.Expect())
			}
		})
	}
}

func TestArqTimeoutRecoversTailLoss(t *testing.T) {
	h := newArqHarness(t, testbed.SchemeDAMN)
	// A lone segment lost: no later traffic, so no dup-ACKs — only the
	// RTO can repair it.
	h.drop[1] = 1
	h.send(1)
	h.ma.Sim.RunUntilIdle()
	if h.recv.Segments != 1 {
		t.Fatalf("delivered %d, want 1", h.recv.Segments)
	}
	if h.arq.TimeoutRetx == 0 || h.arq.Timeouts == 0 {
		t.Fatalf("tail loss repaired without a timeout: retx=%d timeouts=%d", h.arq.TimeoutRetx, h.arq.Timeouts)
	}
}

func TestArqDuplicateSuppression(t *testing.T) {
	h := newArqHarness(t, testbed.SchemeDAMN)
	h.dup[5] = 1 // wire delivers seq 5 twice
	h.send(10)
	h.ma.Sim.RunUntilIdle()
	if h.recv.Segments != 10 {
		t.Fatalf("delivered %d, want 10", h.recv.Segments)
	}
	if h.rr.DroppedDup != 1 {
		t.Fatalf("dup drops: %d, want 1", h.rr.DroppedDup)
	}
	if h.recv.Bytes != 10*1500 {
		t.Fatalf("goodput bytes %d, want %d (duplicate must not count)", h.recv.Bytes, 10*1500)
	}
}

func TestArqOutOfWindowDrop(t *testing.T) {
	h := newArqHarness(t, testbed.SchemeDAMN)
	// A rogue segment far beyond the reorder window must be shed, not
	// buffered (its slot would collide with live sequence numbers).
	hdr := netstack.BuildHeaders(netip.AddrFrom4([4]byte{192, 168, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 1}), 10001, 5001, 999, 1446)
	h.ma.NIC.InjectRX(0, device.Segment{Flow: 1, Hash: 0, Seq: 999, Len: 1500, Header: hdr})
	h.ma.Sim.RunUntilIdle()
	if h.rr.DroppedOow != 1 {
		t.Fatalf("out-of-window drops: %d, want 1", h.rr.DroppedOow)
	}
	if h.recv.Segments != 0 {
		t.Fatalf("delivered %d, want 0", h.recv.Segments)
	}
	// The flow still works afterwards.
	h.send(5)
	h.ma.Sim.RunUntilIdle()
	if h.recv.Segments != 5 {
		t.Fatalf("delivered %d after oow drop, want 5", h.recv.Segments)
	}
}

func TestArqReorderWindowDelivery(t *testing.T) {
	h := newArqHarness(t, testbed.SchemeDAMN)
	// Hold seq 1's first copy, let 2..4 race ahead, then release 1 via
	// retransmission: delivery must come out strictly in order.
	h.drop[1] = 1
	var order []uint32
	prev := h.ma.Driver.OnDeliver
	h.ma.Driver.OnDeliver = func(tk *sim.Task, ring int, skb *netstack.SKBuff) {
		seq := skb.Seq
		before := h.rr.Expect()
		prev(tk, ring, skb)
		if h.rr.Expect() > before {
			// Something was delivered this call; reconstruct the run.
			for s := before; s < h.rr.Expect(); s++ {
				order = append(order, s)
			}
		}
		_ = seq
	}
	h.send(4)
	h.ma.Sim.RunUntilIdle()
	if h.recv.Segments != 4 {
		t.Fatalf("delivered %d, want 4", h.recv.Segments)
	}
	for i, s := range order {
		if s != uint32(i+1) {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}
