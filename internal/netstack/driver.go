package netstack

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Driver is the NIC driver: it keeps RX rings filled with mapped buffers,
// turns completions into skbuffs, and maps/puts TX skbuffs on the wire.
// Its allocation switch is the paper's 2-line driver change (§5.7): with
// DAMN deployed, RX buffers come from damn_alloc; otherwise from the
// ordinary kernel allocator via the DMA API's active scheme.
type Driver struct {
	k   *Kernel
	nic *device.NIC

	// RxBufSize is the posted receive buffer size (64 KiB: one LRO
	// segment per buffer).
	RxBufSize int

	// OnDeliver is the stack entry point for received skbs.
	OnDeliver func(t *sim.Task, ring int, skb *SKBuff)
	// OnTxDone notifies the sending flow that a segment left the wire
	// (the ACK-clocked window opener).
	OnTxDone func(t *sim.Task, ring int, skb *SKBuff)

	// Stats.
	RxDelivered uint64
	RxDropped   uint64 // completions with DMA faults
	TxCompleted uint64

	// Observability (nil-safe handles; see SetStats).
	rxDelivC *stats.Counter
	rxDropC  *stats.Counter
	txDoneC  *stats.Counter
}

// SetStats attaches a metrics registry mirroring the driver's delivery and
// drop counters.
func (d *Driver) SetStats(r *stats.Registry) {
	d.rxDelivC = r.Counter("netstack", "rx_delivered")
	d.rxDropC = r.Counter("netstack", "rx_dropped")
	d.txDoneC = r.Counter("netstack", "tx_completed")
}

// rxBuf is the driver's per-posted-buffer state, carried through the ring
// as the descriptor cookie.
type rxBuf struct {
	pa   mem.PhysAddr
	iova iommu.IOVA
	damn bool
}

// NewDriver wires a driver to its NIC.
func NewDriver(k *Kernel, nic *device.NIC) *Driver {
	d := &Driver{k: k, nic: nic, RxBufSize: k.Model.SegmentSize}
	nic.OnRX(d.handleRX)
	nic.OnTXComplete(d.handleTXComplete)
	return d
}

// NIC returns the underlying device.
func (d *Driver) NIC() *device.NIC { return d.nic }

// FillRing posts buffers until the RX ring is full.
func (d *Driver) FillRing(t *sim.Task, ring int) error {
	for d.nic.RXPosted(ring) < d.nic.Cfg.RingSize {
		if err := d.postOne(t, ring); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) postOne(t *sim.Task, ring int) error {
	perf.Charge(t, d.k.Model.SkbAllocCycles)
	pa, damnOwned, err := d.k.AllocBuffer(t, d.nic.ID(), iommu.PermWrite, d.RxBufSize)
	if err != nil {
		return fmt.Errorf("netstack: RX buffer allocation: %w", err)
	}
	v, err := d.k.DMA.Map(t, d.nic.ID(), pa, d.RxBufSize, dmaapi.FromDevice)
	if err != nil {
		d.k.FreeBuffer(t, pa, damnOwned)
		return fmt.Errorf("netstack: RX buffer map: %w", err)
	}
	return d.nic.PostRX(ring, device.RXDesc{
		IOVA: v, Size: d.RxBufSize,
		Cookie: &rxBuf{pa: pa, iova: v, damn: damnOwned},
	})
}

// handleRX runs in interrupt context on the ring's core.
func (d *Driver) handleRX(t *sim.Task, ring int, comps []device.RXCompletion) {
	for _, comp := range comps {
		rb := comp.Desc.Cookie.(*rxBuf)
		// dma_unmap returns ownership to the kernel. For shadow
		// buffers this performs the copy-back; for DAMN it is the MSB
		// no-op; for strict it invalidates.
		if err := d.k.DMA.Unmap(t, d.nic.ID(), rb.iova, d.RxBufSize, dmaapi.FromDevice); err != nil {
			panic("netstack: RX unmap failed: " + err.Error())
		}
		// Replenish the ring before handing the packet up, as drivers
		// do, so the NIC keeps receiving while the stack works.
		if err := d.postOne(t, ring); err != nil {
			// Out of buffers: the ring shrinks; the NIC will park
			// traffic (flow control) until memory frees up.
			d.RxDropped++
			d.rxDropC.Inc()
		}
		if comp.Written == 0 && comp.Seg.Len > 0 && len(comp.Seg.Header) > 0 {
			// The DMA faulted (attack or misconfiguration): no
			// packet to deliver; recycle the buffer.
			d.k.FreeBuffer(t, rb.pa, rb.damn)
			d.RxDropped++
			d.rxDropC.Inc()
			continue
		}
		skb := AdoptBuffer(d.k, d.nic.ID(), iommu.PermWrite, rb.pa, d.RxBufSize, rb.damn)
		skb.SetReceived(comp.Seg.Len, comp.Written)
		skb.Flow = comp.Seg.Flow
		d.RxDelivered++
		d.rxDelivC.Inc()
		if d.OnDeliver != nil {
			d.OnDeliver(t, ring, skb)
		} else {
			skb.Free(t)
		}
	}
}

// Transmit maps an skb and hands it to the NIC (TSO: the whole ≤64 KiB
// segment goes down at once).
func (d *Driver) Transmit(t *sim.Task, ring, port int, skb *SKBuff) error {
	v, err := skb.MapForDevice(t, dmaapi.ToDevice)
	if err != nil {
		return err
	}
	err = d.nic.PostTX(ring, port, device.TXDesc{IOVA: v, Size: skb.Len(), Cookie: skb})
	if err != nil {
		skb.UnmapForDevice(t, dmaapi.ToDevice)
		return err
	}
	return nil
}

// handleTXComplete runs in interrupt context after the segment is on the
// wire.
func (d *Driver) handleTXComplete(t *sim.Task, ring int, descs []device.TXDesc) {
	for _, desc := range descs {
		skb := desc.Cookie.(*SKBuff)
		if err := skb.UnmapForDevice(t, dmaapi.ToDevice); err != nil {
			panic("netstack: TX unmap failed: " + err.Error())
		}
		d.TxCompleted++
		d.txDoneC.Inc()
		if d.OnTxDone != nil {
			d.OnTxDone(t, ring, skb)
		} else {
			skb.Free(t)
		}
	}
}
