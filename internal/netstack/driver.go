package netstack

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Driver is the NIC driver: it keeps RX rings filled with mapped buffers,
// turns completions into skbuffs, and maps/puts TX skbuffs on the wire.
// Its allocation switch is the paper's 2-line driver change (§5.7): with
// DAMN deployed, RX buffers come from damn_alloc; otherwise from the
// ordinary kernel allocator via the DMA API's active scheme.
type Driver struct {
	k   *Kernel
	nic *device.NIC

	// napi holds one poll context per RX ring, bound to the core the NIC
	// raises that ring's completion interrupt on (the MSI-X affinity of a
	// multi-queue driver). All completion, refill and watchdog work for a
	// ring runs on its context's core — which is what pins the ring's
	// allocations to that core's DAMN shard.
	napi []napiCtx

	// RxBufSize is the posted receive buffer size (64 KiB: one LRO
	// segment per buffer).
	RxBufSize int

	// freeBufs recycles rxBuf cookie records; each record's ring life has
	// exactly one terminal point (delivery, drop, reclaim), where it
	// returns to the pool.
	freeBufs []*rxBuf

	// OnDeliver is the stack entry point for received skbs.
	OnDeliver func(t *sim.Task, ring int, skb *SKBuff)
	// OnTxDone notifies the sending flow that a segment left the wire
	// (the ACK-clocked window opener).
	OnTxDone func(t *sim.Task, ring int, skb *SKBuff)

	// epoch is bumped on every quarantine drain (whole-device or per-ring).
	// Each ring records the epoch value of its *own* last drain in its NAPI
	// context, and completions carry the epoch their buffer was posted
	// under; a completion whose epoch trails its ring's raced a teardown —
	// its ring state is gone, so the handler reclaims the buffer without
	// touching the (possibly rebuilt) ring. Keeping the stamp per ring is
	// what makes a tenant quarantine surgical: draining tenant A's rings
	// must not stale-drop tenant B's in-flight completions.
	epoch uint64

	// cap, when installed, is the capability gate on the buffer-handoff
	// fast path: every map (RX post, TX map) and unmap (RX completion)
	// first validates the capability presented for the ring. Nil when
	// tenancy is off — one pointer check, so the single-tenant path is
	// byte-identical to the pre-tenant driver.
	cap CapGate

	// ringTenants labels each ring with its owning tenant id (-1 = none).
	// Only used for stats attribution; the DMA identity lives in the NIC's
	// ring-device binding.
	ringTenants   []int
	rxWrongCoreBy []uint64

	// Stats.
	RxDelivered     uint64
	RxWrongCore     uint64 // completions handled off their ring's bound core (invariant: 0)
	RxDropped       uint64 // completions with DMA faults
	RxCsumDrops     uint64 // corrupted frames caught by hardware checksum
	RxUnmapErrors   uint64 // RX unmap failures (buffer leaked unless DAMN)
	RxUnmapReleased uint64 // DAMN buffers released despite a failed unmap
	RxStaleDrops    uint64 // completions that crossed a quarantine epoch
	TxUnmapErrors   uint64
	TxCompleted     uint64
	WatchdogRuns    uint64 // watchdog polls that found work
	WatchdogReaps   uint64 // completions recovered after a lost interrupt

	// Observability (nil-safe handles; see SetStats).
	reg           *stats.Registry
	wrongCoreTenC []*stats.Counter
	rxDelivC      *stats.Counter
	rxWrongCPUC   *stats.Counter
	rxDropC       *stats.Counter
	rxCsumC       *stats.Counter
	rxUnmapC      *stats.Counter
	rxUnmapRelC   *stats.Counter
	rxStaleC      *stats.Counter
	txUnmapC      *stats.Counter
	txDoneC       *stats.Counter
	watchdogC     *stats.Counter
	wdReapedC     *stats.Counter
	wdRefillC     *stats.Counter
}

// SetStats attaches a metrics registry mirroring the driver's delivery and
// drop counters, plus the degradation-path accounting (checksum drops,
// quarantined unmap failures, watchdog recoveries).
func (d *Driver) SetStats(r *stats.Registry) {
	d.reg = r
	d.rxDelivC = r.Counter("netstack", "rx_delivered")
	d.rxWrongCPUC = r.Counter("netstack", "rx_wrong_core")
	d.rxDropC = r.Counter("netstack", "rx_dropped")
	d.rxCsumC = r.Counter("netstack", "rx_csum_drops")
	d.rxUnmapC = r.Counter("netstack", "rx_unmap_errors")
	d.rxUnmapRelC = r.Counter("netstack", "rx_unmap_released")
	d.rxStaleC = r.Counter("netstack", "rx_stale_drops")
	d.txUnmapC = r.Counter("netstack", "tx_unmap_errors")
	d.txDoneC = r.Counter("netstack", "tx_completed")
	d.watchdogC = r.Counter("netstack", "watchdog_runs")
	d.wdReapedC = r.Counter("netstack", "watchdog_reaped")
	d.wdRefillC = r.Counter("netstack", "watchdog_refills")
}

// CapGate is the driver-side capability check of the multi-tenant fast
// path: before any buffer crosses the kernel/device boundary on a ring
// (map at RX post or TX, unmap at RX completion), the gate validates the
// capability the ring's owner currently presents. Implemented by
// tenant.Table; a forged or revoked capability denies the handoff. The
// check must be pure arithmetic — it sits on the 0-alloc per-packet path.
type CapGate interface {
	CheckRing(ring int) bool
}

// SetCapGate installs (or with nil removes) the capability gate.
func (d *Driver) SetCapGate(g CapGate) { d.cap = g }

// SetRingTenant labels a ring with its owning tenant for stats
// attribution; tenant < 0 clears the label. The per-tenant wrong-core
// counter (netstack/rx_wrong_core_t<id>) is created lazily on first use,
// so machines without tenants snapshot exactly as before.
func (d *Driver) SetRingTenant(ring, tenant int) {
	if ring < 0 || ring >= len(d.ringTenants) {
		return
	}
	d.ringTenants[ring] = tenant
}

// RxWrongCoreFor reports wrong-core completions attributed to one tenant.
func (d *Driver) RxWrongCoreFor(tenant int) uint64 {
	if tenant < 0 || tenant >= len(d.rxWrongCoreBy) {
		return 0
	}
	return d.rxWrongCoreBy[tenant]
}

// noteWrongCore attributes wrong-core completions to the ring's tenant.
func (d *Driver) noteWrongCore(ring int, n uint64) {
	ten := d.ringTenants[ring]
	if ten < 0 {
		return
	}
	for ten >= len(d.rxWrongCoreBy) {
		d.rxWrongCoreBy = append(d.rxWrongCoreBy, 0)
	}
	d.rxWrongCoreBy[ten] += n
	if d.reg != nil {
		for ten >= len(d.wrongCoreTenC) {
			d.wrongCoreTenC = append(d.wrongCoreTenC, nil)
		}
		c := d.wrongCoreTenC[ten]
		if c == nil {
			c = d.reg.Counter("netstack", fmt.Sprintf("rx_wrong_core_t%d", ten))
			d.wrongCoreTenC[ten] = c
		}
		c.Add(n)
	}
}

// rxBuf is the driver's per-posted-buffer state, carried through the ring
// as the descriptor cookie.
type rxBuf struct {
	pa    mem.PhysAddr
	iova  iommu.IOVA
	dev   int // DMA identity the buffer was mapped under
	damn  bool
	epoch uint64 // ring epoch the buffer was posted under
}

// napiCtx is one RX ring's NAPI poll context. The core is the ring's
// interrupt affinity, read once from the NIC at driver construction; the
// shortfall counts descriptors missing from circulation on this ring —
// completions consumed whose repost failed, plus initial-fill gaps. The
// watchdog restores exactly this deficit — it must not "top up" in-flight
// descriptors, or it would defeat flow control. epoch is the value of the
// driver's drain counter at this ring's last quarantine drain; buffers
// posted earlier are stale on arrival.
type napiCtx struct {
	core      *sim.Core
	shortfall int
	epoch     uint64
}

// NewDriver wires a driver to its NIC, building one NAPI context per ring
// on the ring's bound core.
func NewDriver(k *Kernel, nic *device.NIC) *Driver {
	d := &Driver{k: k, nic: nic, RxBufSize: k.Model.SegmentSize}
	for ring := 0; ring < nic.Cfg.Rings; ring++ {
		d.napi = append(d.napi, napiCtx{core: nic.RingCore(ring)})
		d.ringTenants = append(d.ringTenants, -1)
	}
	nic.OnRX(d.handleRX)
	nic.OnTXComplete(d.handleTXComplete)
	return d
}

// RingCore reports the core a ring's NAPI context is bound to (tests and
// the shard-affinity invariant).
func (d *Driver) RingCore(ring int) *sim.Core { return d.napi[ring].core }

// NIC returns the underlying device.
func (d *Driver) NIC() *device.NIC { return d.nic }

// FillRing posts buffers until the RX ring is full (initial priming; no
// segments are in flight yet). A failure records the remaining gap as the
// ring's shortfall so the watchdog can finish the job later.
func (d *Driver) FillRing(t *sim.Task, ring int) error {
	for {
		posted, err := d.nic.RXPosted(ring)
		if err != nil {
			return err
		}
		if posted >= d.nic.Cfg.RingSize {
			return nil
		}
		if err := d.postOne(t, ring); err != nil {
			d.napi[ring].shortfall += d.nic.Cfg.RingSize - posted
			return err
		}
	}
}

func (d *Driver) getRXBuf() *rxBuf {
	if n := len(d.freeBufs); n > 0 {
		rb := d.freeBufs[n-1]
		d.freeBufs = d.freeBufs[:n-1]
		return rb
	}
	return &rxBuf{}
}

func (d *Driver) putRXBuf(rb *rxBuf) {
	*rb = rxBuf{}
	d.freeBufs = append(d.freeBufs, rb)
}

func (d *Driver) postOne(t *sim.Task, ring int) error {
	if d.cap != nil && !d.cap.CheckRing(ring) {
		return fmt.Errorf("netstack: ring %d capability denied; RX post refused", ring)
	}
	perf.Charge(t, d.k.Model.SkbAllocCycles)
	dev := d.nic.RingDevice(ring)
	pa, damnOwned, err := d.k.AllocBuffer(t, dev, iommu.PermWrite, d.RxBufSize)
	if err != nil {
		return fmt.Errorf("netstack: RX buffer allocation: %w", err)
	}
	v, err := d.k.DMA.Map(t, dev, pa, d.RxBufSize, dmaapi.FromDevice)
	if err != nil {
		d.k.FreeBuffer(t, pa, damnOwned)
		return fmt.Errorf("netstack: RX buffer map: %w", err)
	}
	rb := d.getRXBuf()
	rb.pa, rb.iova, rb.dev, rb.damn, rb.epoch = pa, v, dev, damnOwned, d.napi[ring].epoch
	return d.nic.PostRX(ring, device.RXDesc{IOVA: v, Size: d.RxBufSize, Cookie: rb})
}

// reclaimBuf returns a buffer whose ring life is over to the kernel:
// dma_unmap then free. When the unmap fails (domain torn down under the
// driver, injected unmap fault) a non-DAMN buffer's mapping state is
// unknown and it must be quarantined — a deliberate, counted leak. A DAMN
// buffer's IOMMU mapping belongs to its chunk, not to this map/unmap pair,
// so a failed per-DMA unmap leaves nothing ambiguous: the buffer is
// released for reuse. (Leaking it instead would pin its chunk forever and
// break conservation across device resets.)
func (d *Driver) reclaimBuf(t *sim.Task, rb *rxBuf) (freed bool) {
	if err := d.k.DMA.Unmap(t, rb.dev, rb.iova, d.RxBufSize, dmaapi.FromDevice); err != nil {
		d.RxUnmapErrors++
		d.rxUnmapC.Inc()
		if !rb.damn {
			return false
		}
		d.RxUnmapReleased++
		d.rxUnmapRelC.Inc()
	}
	_ = d.k.FreeBuffer(t, rb.pa, rb.damn)
	return true
}

// handleRX runs in interrupt context on the ring's bound core.
func (d *Driver) handleRX(t *sim.Task, ring int, comps []device.RXCompletion) {
	if t.Core() != d.napi[ring].core {
		// Shard-affinity invariant: a ring's completions (and thus its
		// buffer allocations and invalidations) only ever touch the DAMN
		// shard of the ring's bound core. Must stay zero; DESIGN.md §11.
		d.RxWrongCore += uint64(len(comps))
		d.rxWrongCPUC.Add(uint64(len(comps)))
		d.noteWrongCore(ring, uint64(len(comps)))
	}
	for _, comp := range comps {
		rb := comp.Desc.Cookie.(*rxBuf)
		if rb.epoch != d.napi[ring].epoch {
			// The completion raced a quarantine: its descriptor was
			// popped before the teardown, so the drain never saw it.
			// Reclaim the buffer but leave the (rebuilt) ring alone.
			d.RxStaleDrops++
			d.rxStaleC.Inc()
			d.RxDropped++
			d.rxDropC.Inc()
			d.reclaimBuf(t, rb)
			d.putRXBuf(rb)
			continue
		}
		if d.cap != nil && !d.cap.CheckRing(ring) {
			// The ring's capability was revoked (or a forged one is being
			// presented) while the buffer was in flight: the handoff back
			// to the kernel is denied. Reclaim the buffer kernel-side —
			// conservation must survive containment — count the drop, and
			// post no replacement: a capability-less ring drains.
			d.RxDropped++
			d.rxDropC.Inc()
			d.reclaimBuf(t, rb)
			d.putRXBuf(rb)
			continue
		}
		// dma_unmap returns ownership to the kernel. For shadow
		// buffers this performs the copy-back; for DAMN it is the MSB
		// no-op; for strict it invalidates.
		if err := d.k.DMA.Unmap(t, rb.dev, rb.iova, d.RxBufSize, dmaapi.FromDevice); err != nil {
			// A non-DAMN buffer's mapping state is now unknown, so it
			// can never be reused: quarantine it (deliberate leak). A
			// DAMN buffer's mapping is chunk-owned and unaffected by
			// the failed unmap, so it goes back to the allocator (see
			// reclaimBuf). Either way, count the drop and keep the
			// ring alive and receiving.
			d.RxUnmapErrors++
			d.rxUnmapC.Inc()
			if rb.damn {
				d.RxUnmapReleased++
				d.rxUnmapRelC.Inc()
				_ = d.k.FreeBuffer(t, rb.pa, true)
			}
			d.RxDropped++
			d.rxDropC.Inc()
			d.putRXBuf(rb)
			if err := d.postOne(t, ring); err != nil {
				d.napi[ring].shortfall++ // watchdog restores it
			}
			continue
		}
		// Replenish the ring before handing the packet up, as drivers
		// do, so the NIC keeps receiving while the stack works.
		if err := d.postOne(t, ring); err != nil {
			// Out of buffers: the ring shrinks; the NIC will park
			// traffic (flow control) until memory frees up or the
			// watchdog restores the recorded shortfall.
			d.RxDropped++
			d.rxDropC.Inc()
			d.napi[ring].shortfall++
		}
		if comp.Written == 0 && comp.Seg.Len > 0 && len(comp.Seg.Header) > 0 {
			// The DMA faulted (attack or misconfiguration): no
			// packet to deliver; recycle the buffer.
			_ = d.k.FreeBuffer(t, rb.pa, rb.damn)
			d.RxDropped++
			d.rxDropC.Inc()
			d.putRXBuf(rb)
			continue
		}
		if comp.BadCSum {
			// Hardware checksum caught a corrupted frame: drop and
			// recycle, exactly as a real driver does.
			_ = d.k.FreeBuffer(t, rb.pa, rb.damn)
			d.RxCsumDrops++
			d.rxCsumC.Inc()
			d.RxDropped++
			d.rxDropC.Inc()
			d.putRXBuf(rb)
			continue
		}
		skb := AdoptBuffer(d.k, rb.dev, iommu.PermWrite, rb.pa, d.RxBufSize, rb.damn)
		skb.SetReceived(comp.Seg.Len, comp.Written)
		skb.Flow = comp.Seg.Flow
		skb.Seq = comp.Seg.Seq
		skb.Hash = comp.Seg.Hash
		skb.Meta = comp.Seg.Meta
		skb.Stamp = comp.Seg.Stamp
		d.putRXBuf(rb)
		d.RxDelivered++
		d.rxDelivC.Inc()
		if d.OnDeliver != nil {
			d.OnDeliver(t, ring, skb)
		} else {
			skb.Free(t)
		}
	}
}

// watchdogPollCycles is the CPU cost of one NAPI-style watchdog poll that
// found work (ring scan + bookkeeping).
const watchdogPollCycles = 600

// EnableWatchdog arms a NAPI-style poll on every ring: each period it reaps
// completions whose interrupts were lost and reposts the descriptors whose
// replenish failed (the recorded shortfall). Real drivers run exactly such
// a watchdog (mlx5's health poll / NAPI timeout) so a missed interrupt
// degrades latency instead of wedging the ring. It deliberately restores
// only the shortfall — descriptors consumed by in-flight segments are the
// flow-control signal, not losses. The testbed arms it only when fault
// injection is on; at a zero fault rate it never finds work, so the event
// stream matches a machine without it. Returns a stop function.
func (d *Driver) EnableWatchdog(period sim.Time) (stop func()) {
	if period <= 0 {
		period = 100 * sim.Microsecond
	}
	stops := make([]func(), 0, d.nic.Cfg.Rings)
	for ring := 0; ring < d.nic.Cfg.Rings; ring++ {
		ring := ring
		n := &d.napi[ring]
		stops = append(stops, d.k.Sim.Every(period, func() {
			if d.nic.RingQuarantined(ring) {
				// A quarantined or resetting device owns no ring state:
				// reposting into it would hand buffers to a domain that
				// is being torn down. The shortfall survives untouched;
				// once Reinit refills the rings the next tick resumes
				// normal service.
				return
			}
			comps := d.nic.ReapMissed(ring)
			if len(comps) == 0 && n.shortfall == 0 {
				return
			}
			n.core.Submit(true, func(t *sim.Task) {
				perf.Charge(t, watchdogPollCycles)
				d.WatchdogRuns++
				d.watchdogC.Inc()
				if len(comps) > 0 {
					d.WatchdogReaps += uint64(len(comps))
					d.wdReapedC.Add(uint64(len(comps)))
					d.handleRX(t, ring, comps)
				}
				// Repost what the interrupt path failed to; under injected
				// OOM this may fail again — the next tick retries.
				for n.shortfall > 0 {
					if err := d.postOne(t, ring); err != nil {
						break
					}
					n.shortfall--
					d.wdRefillC.Inc()
				}
			})
		}))
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// Shortfall reports the total descriptor deficit across rings — the NAPI
// watchdog's backlog. The recovery supervisor reads it as a health signal:
// a deficit that keeps growing means reposts keep failing.
func (d *Driver) Shortfall() int {
	n := 0
	for i := range d.napi {
		n += d.napi[i].shortfall
	}
	return n
}

// Epoch reports the current quarantine epoch (tests).
func (d *Driver) Epoch() uint64 { return d.epoch }

// QuarantineDrain fences the NIC and tears down the driver's ring state:
// every descriptor still posted (or parked in an interrupt-lost completion)
// is unmapped and its buffer returned to the kernel while the IOMMU domain
// is still attached — so legacy-scheme unmaps succeed and IOVA slots are
// recycled. The epoch bump makes any completion already in flight reclaim
// its buffer on arrival instead of touching the dead ring. Returns how many
// buffers were reclaimed, how many had to be leaked (failed non-DAMN
// unmaps), and how many flow-control-parked segments were dropped.
func (d *Driver) QuarantineDrain(t *sim.Task) (reclaimed, leaked, parkedDropped int) {
	d.epoch++
	for i := range d.napi {
		d.napi[i].epoch = d.epoch
	}
	descs, parked := d.nic.Quarantine()
	for _, desc := range descs {
		rb := desc.Cookie.(*rxBuf)
		if d.reclaimBuf(t, rb) {
			reclaimed++
		} else {
			leaked++
		}
		d.putRXBuf(rb)
	}
	// The deficit described a ring that no longer exists; Reinit refills
	// from scratch.
	for i := range d.napi {
		d.napi[i].shortfall = 0
	}
	return reclaimed, leaked, parked
}

// QuarantineDrainRings is the tenant-scoped QuarantineDrain: it fences and
// tears down only the given rings, reclaiming their posted buffers while
// the owner's IOMMU domain is still attached, and bumps only those rings'
// epochs — in-flight completions on *other* rings are untouched, which is
// what keeps a tenant quarantine's blast radius at one tenant.
func (d *Driver) QuarantineDrainRings(t *sim.Task, rings []int) (reclaimed, leaked, parkedDropped int) {
	d.epoch++
	for _, ring := range rings {
		if ring >= 0 && ring < len(d.napi) {
			d.napi[ring].epoch = d.epoch
		}
	}
	descs, parked := d.nic.QuarantineRings(rings)
	for _, desc := range descs {
		rb := desc.Cookie.(*rxBuf)
		if d.reclaimBuf(t, rb) {
			reclaimed++
		} else {
			leaked++
		}
		d.putRXBuf(rb)
	}
	for _, ring := range rings {
		if ring >= 0 && ring < len(d.napi) {
			d.napi[ring].shortfall = 0
		}
	}
	return reclaimed, leaked, parked
}

// Reinit brings a recovered (or hotplug-replaced) device back into service:
// lifts the quarantine and refills every RX ring. A fill failure leaves the
// gap in the ring's shortfall (the watchdog keeps retrying) and is returned
// so the supervisor can decide between waiting and escalating.
func (d *Driver) Reinit(t *sim.Task) error {
	if err := d.nic.Resume(); err != nil {
		return err
	}
	var firstErr error
	for ring := 0; ring < d.nic.Cfg.Rings; ring++ {
		if d.nic.RingQuarantined(ring) {
			continue // a tenant still in containment keeps its fence
		}
		if err := d.FillRing(t, ring); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ReinitRings is the tenant-scoped Reinit: it lifts the given rings'
// quarantine and refills them, leaving the rest of the device alone.
func (d *Driver) ReinitRings(t *sim.Task, rings []int) error {
	if err := d.nic.ResumeRings(rings); err != nil {
		return err
	}
	var firstErr error
	for _, ring := range rings {
		if err := d.FillRing(t, ring); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Transmit maps an skb and hands it to the NIC (TSO: the whole ≤64 KiB
// segment goes down at once).
func (d *Driver) Transmit(t *sim.Task, ring, port int, skb *SKBuff) error {
	if d.cap != nil && !d.cap.CheckRing(ring) {
		return fmt.Errorf("netstack: ring %d capability denied; TX refused", ring)
	}
	v, err := skb.MapForDevice(t, dmaapi.ToDevice)
	if err != nil {
		return err
	}
	err = d.nic.PostTX(ring, port, device.TXDesc{IOVA: v, Size: skb.Len(), Cookie: skb,
		Seg: device.Segment{
			Flow: skb.Flow,
			Hash: skb.Hash,
			Seq:  skb.Seq,
			Meta: skb.Meta,
			Len:  skb.Len(),
		}})
	if err != nil {
		skb.UnmapForDevice(t, dmaapi.ToDevice)
		return err
	}
	return nil
}

// handleTXComplete runs in interrupt context after the segment is on the
// wire.
func (d *Driver) handleTXComplete(t *sim.Task, ring int, descs []device.TXDesc) {
	for _, desc := range descs {
		skb := desc.Cookie.(*SKBuff)
		if err := skb.UnmapForDevice(t, dmaapi.ToDevice); err != nil {
			// The skb already cleared its mapped flag, so freeing it is
			// safe; the stale IOMMU mapping leaks until the domain is
			// torn down. Count it and let the flow continue.
			d.TxUnmapErrors++
			d.txUnmapC.Inc()
		}
		d.TxCompleted++
		d.txDoneC.Inc()
		if d.OnTxDone != nil {
			d.OnTxDone(t, ring, skb)
		} else {
			skb.Free(t)
		}
	}
}
