package netstack

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
)

// BypassDriver is the kernel-bypass data path: a user-space, DPDK-style
// polling driver owning one NIC RX ring through a virtio-style split queue.
// It never takes a completion interrupt — a dedicated core busy-polls the
// used ring on a fixed tick, harvesting completions in bursts and reposting
// descriptors in batches behind a single doorbell. Buffers come from a
// hugepage pool carved once at setup and mapped forever:
//
//   - bypass-raw: the pool lives in a passthrough domain (permanent identity
//     mappings, no IOMMU protection) — the classic DPDK deployment.
//   - bypass-prot: the same pool behind a per-app IOMMU domain whose
//     mappings are registered once at setup (two hugepage PTEs cover pool
//     and rings), so protection costs IOTLB pressure, not map/unmap calls.
//
// Either way the per-packet host path allocates nothing and issues no
// syscalls; the poll core is charged its full spin interval even when the
// used ring is empty, so idle busy-poll burn shows up in CPU/MB accounting.
type BypassDriver struct {
	k    *Kernel
	nic  *device.NIC
	ring int
	dev  int
	core *sim.Core
	vq   *device.Virtqueue
	prot bool

	// BufSize is the per-descriptor buffer size (one LRO segment).
	BufSize int

	chunks   []*mem.Page // order-9 hugepage chunks backing pool + rings
	bufRecs  []bypassBuf // descriptor cookies, fixed at setup
	usedIOVA iommu.IOVA

	harvest  []device.RXCompletion // reusable harvest burst buffer
	batch    []device.RXDesc       // repost batch, flushed per doorbell
	pollTask func(*sim.Task)       // bound once; reused every tick
	stop     func()

	// OnDeliver, when set, receives each good completion on the poll core
	// (the run-to-completion application hook). The completion is only
	// valid for the duration of the call.
	OnDeliver func(t *sim.Task, comp device.RXCompletion)

	// Stats.
	Polls      uint64 // poll ticks executed
	EmptyPolls uint64 // ticks that found nothing (pure spin)
	Harvested  uint64 // completions consumed from the used ring
	Posted     uint64 // descriptors posted (initial fill + reposts)
	Doorbells  uint64 // doorbell MMIO writes (one per batch)
	Bytes      uint64 // wire bytes of delivered segments
	Drops      uint64 // faulted or checksum-failed completions
}

// bypassBuf is a pool buffer's permanent identity: with mappings registered
// once at setup there is nothing to unmap, so the cookie never changes and
// descriptors circulate ring → used ring → repost untouched.
type bypassBuf struct {
	pa   mem.PhysAddr
	iova iommu.IOVA
}

// NewBypassDriver binds a polling driver to one NIC ring. dev is the DMA
// identity the ring's transfers translate under (the bypass device id);
// prot selects the per-app-domain flavor (the caller attached the domain).
// The poll core is the ring's bound core — dedicated, never shared with an
// interrupt path.
func NewBypassDriver(k *Kernel, nic *device.NIC, ring, dev int, prot bool) *BypassDriver {
	return &BypassDriver{
		k: k, nic: nic, ring: ring, dev: dev, prot: prot,
		core:    nic.RingCore(ring),
		BufSize: k.Model.SegmentSize,
	}
}

// Core reports the dedicated poll core.
func (d *BypassDriver) Core() *sim.Core { return d.core }

// Virtqueue exposes the device half (tests, attack scenarios).
func (d *BypassDriver) Virtqueue() *device.Virtqueue { return d.vq }

// PoolChunks reports the hugepage chunks backing the buffer pool — the
// registered region a bypass attack scenario probes the edges of.
func (d *BypassDriver) PoolChunks() []*mem.Page { return d.chunks }

// Setup carves the buffer pool and used ring from hugepages, registers the
// mappings (bypass-prot pays MapCycles once per hugepage — the entire
// protection setup cost), builds the virtqueue, switches the ring to poll
// mode and fills it behind one doorbell.
func (d *BypassDriver) Setup(t *sim.Task) error {
	m := d.k.Model
	ringSize := d.nic.Cfg.RingSize
	need := ringSize*d.BufSize + mem.PageSize // pool + used-ring page
	nchunks := (need + mem.HugePageSize - 1) / mem.HugePageSize
	node := d.core.Node
	for i := 0; i < nchunks; i++ {
		pg, err := d.k.Mem.AllocPages(mem.HugePageShift-mem.PageShift, node)
		if err != nil {
			return fmt.Errorf("netstack: bypass pool chunk %d/%d: %w", i, nchunks, err)
		}
		d.chunks = append(d.chunks, pg)
		pa := pg.PFN().Addr()
		if d.prot {
			// Register once, forever: identity IOVAs in the app's own
			// domain, one 2 MiB PTE per chunk.
			if err := d.k.IOMMU.MapHuge(d.dev, iommu.IOVA(pa), pa, iommu.PermRW); err != nil {
				return fmt.Errorf("netstack: bypass pool map: %w", err)
			}
			t.Charge(m.MapCycles)
		}
	}
	// Carve: buffers first, then the used-ring slot on its own page.
	chunk, off := 0, 0
	carve := func(size int) mem.PhysAddr {
		if off+size > mem.HugePageSize {
			chunk++
			off = 0
		}
		pa := d.chunks[chunk].PFN().Addr() + mem.PhysAddr(off)
		off += size
		return pa
	}
	d.bufRecs = make([]bypassBuf, ringSize)
	for i := range d.bufRecs {
		pa := carve(d.BufSize)
		d.bufRecs[i] = bypassBuf{pa: pa, iova: iommu.IOVA(pa)}
	}
	d.usedIOVA = iommu.IOVA(carve(mem.PageSize))

	// The ring becomes the app's queue pair: its DMAs translate (and
	// fault) under the bypass device identity, exactly like an SR-IOV VF
	// handed to user space.
	if err := d.nic.BindRingDevice(d.ring, d.dev); err != nil {
		return err
	}
	d.vq = device.NewVirtqueue(d.k.Sim, d.k.IOMMU, d.dev, d.usedIOVA)
	if err := d.nic.AttachVirtqueue(d.ring, d.vq); err != nil {
		return err
	}
	d.harvest = make([]device.RXCompletion, m.BypassHarvestBurst)
	d.batch = make([]device.RXDesc, 0, ringSize)
	d.pollTask = d.poll

	// Initial fill: the whole avail ring behind one doorbell.
	for i := range d.bufRecs {
		rb := &d.bufRecs[i]
		d.batch = append(d.batch, device.RXDesc{IOVA: rb.iova, Size: d.BufSize, Cookie: rb})
		t.Charge(m.VQPostCycles)
	}
	return d.flushPosts(t)
}

// flushPosts publishes the batched avail descriptors with one doorbell.
func (d *BypassDriver) flushPosts(t *sim.Task) error {
	if len(d.batch) == 0 {
		return nil
	}
	t.Charge(d.k.Model.DoorbellCycles)
	d.Doorbells++
	err := d.nic.PostRX(d.ring, d.batch...)
	d.Posted += uint64(len(d.batch))
	d.batch = d.batch[:0]
	return err
}

// Start arms the busy-poll ticker on the dedicated core. The returned stop
// function (also kept as d.Stop) cancels it; anything that drains the engine
// with RunUntilIdle must stop the poller first, or the tick stream never
// ends.
func (d *BypassDriver) Start() (stop func()) {
	interval := d.k.Model.BypassPollInterval
	if interval <= 0 {
		interval = 2 * sim.Microsecond
	}
	d.stop = d.k.Sim.Every(interval, func() {
		d.core.Submit(false, d.pollTask)
	})
	return d.stop
}

// Stop cancels the poll ticker.
func (d *BypassDriver) Stop() {
	if d.stop != nil {
		d.stop()
		d.stop = nil
	}
}

// poll is one tick of the busy-poll loop: harvest a burst from the used
// ring, run each completion to completion, repost behind one doorbell —
// and charge the spin remainder when the tick found less than a tick's
// worth of work, because a polling core never sleeps.
func (d *BypassDriver) poll(t *sim.Task) {
	m := d.k.Model
	d.Polls++
	n := d.vq.Harvest(d.harvest)
	var work float64
	if n == 0 {
		d.EmptyPolls++
	}
	for i := 0; i < n; i++ {
		comp := &d.harvest[i]
		work += m.VQHarvestCycles
		d.Harvested++
		bad := comp.BadCSum || (comp.Written == 0 && comp.Seg.Len > 0 && len(comp.Seg.Header) > 0)
		if bad {
			d.Drops++
		} else {
			// The lean user-space stack: descriptor bookkeeping plus
			// run-to-completion processing, no syscall, no skbuff.
			work += m.BypassRXSegCycles
			d.Bytes += uint64(comp.Seg.Len)
			if d.OnDeliver != nil {
				d.OnDeliver(t, *comp)
			}
		}
		// Permanent mappings: repost the same descriptor unchanged.
		d.batch = append(d.batch, comp.Desc)
		work += m.VQPostCycles
		d.harvest[i] = device.RXCompletion{}
	}
	if n > 0 {
		work += m.DoorbellCycles
	}
	t.Charge(work)
	if err := d.flushPosts(t); err != nil {
		// A quarantined ring rejects posts; drop the batch — the fence
		// owns the descriptors now.
		d.batch = d.batch[:0]
	}
	// The spin remainder: a poll loop burns the whole interval whether or
	// not work arrived. Under overload (work > interval) nothing extra is
	// charged — the core is already saturated.
	if spin := float64(m.BypassPollInterval.Seconds())*m.CoreHz - work; spin > 0 {
		t.Charge(spin)
	}
}

// Close stops polling, detaches the virtqueue (the ring returns to
// interrupt mode) and releases the hugepage pool.
func (d *BypassDriver) Close() {
	d.Stop()
	if d.vq != nil {
		d.nic.AttachVirtqueue(d.ring, nil)       //nolint:errcheck
		d.nic.BindRingDevice(d.ring, d.nic.ID()) //nolint:errcheck
		d.vq = nil
	}
	for _, pg := range d.chunks {
		d.k.Mem.FreePages(pg, mem.HugePageShift-mem.PageShift)
	}
	d.chunks = nil
}
