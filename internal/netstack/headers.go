package netstack

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Wire-format packet headers. The traffic generators materialise real
// Ethernet/IPv4/TCP headers in every segment, so firewall hooks and the
// TOCTTOU scenarios operate on genuine protocol bytes — the "headers" DAMN
// copies on first access are the real thing.

// Header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	// HeaderLen is the full stack of headers on a generated segment.
	HeaderLen = EthHeaderLen + IPv4HeaderLen + TCPHeaderLen
)

// EtherType values.
const EtherTypeIPv4 = 0x0800

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst       [6]byte
	Src       [6]byte
	EtherType uint16
}

// Marshal appends the wire form to b.
func (h EthHeader) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// ParseEth decodes an Ethernet header.
func ParseEth(b []byte) (EthHeader, error) {
	var h EthHeader
	if len(b) < EthHeaderLen {
		return h, fmt.Errorf("netstack: short ethernet header (%d bytes)", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// IPv4Header is a minimal (option-less) IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
}

// IP protocol numbers.
const IPProtoTCP = 6

// Marshal appends the wire form (with a valid header checksum) to b.
func (h IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, 0) // version 4, IHL 5, DSCP 0
	b = binary.BigEndian.AppendUint16(b, h.TotalLen)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, 0) // no fragmentation
	b = append(b, h.TTL, h.Protocol, 0, 0)  // checksum placeholder
	src := h.Src.As4()
	dst := h.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	sum := ipChecksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], sum)
	return b
}

// ParseIPv4 decodes and checks an IPv4 header.
func ParseIPv4(b []byte) (IPv4Header, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("netstack: short IPv4 header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("netstack: not IPv4 (version %d)", b[0]>>4)
	}
	if ipChecksum(b[:IPv4HeaderLen]) != 0 {
		return h, fmt.Errorf("netstack: IPv4 header checksum mismatch")
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return h, nil
}

// ipChecksum is the RFC 1071 ones-complement sum. Computing it over a
// header whose checksum field holds the transmitted value yields 0 for a
// valid header.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// TCPHeader is a minimal (option-less) TCP header.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// Marshal appends the wire form to b (checksum left zero: large receive
// offload hardware verifies and strips it, which is the configuration the
// evaluation uses).
func (h TCPHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, 5<<4, h.Flags) // data offset 5 words
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = append(b, 0, 0, 0, 0) // checksum + urgent
	return b
}

// ParseTCP decodes a TCP header.
func ParseTCP(b []byte) (TCPHeader, error) {
	var h TCPHeader
	if len(b) < TCPHeaderLen {
		return h, fmt.Errorf("netstack: short TCP header (%d bytes)", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	return h, nil
}

// RSS — receive-side scaling. The NIC's hash unit runs the Toeplitz hash
// over the 4-tuple of every arriving frame and an indirection table maps the
// hash to an RX ring, spreading flows across cores while keeping each flow
// on one ring (packet order within a flow is preserved). The simulated
// device cannot parse headers itself (the device package must not depend on
// the netstack), so traffic sources compute the hash here — once per flow,
// since it covers only connection-constant fields — and carry it in
// device.Segment.Hash, exactly as real hardware reports the computed hash in
// the completion descriptor.

// rssKey is the 40-byte Toeplitz key every machine uses (the canonical
// Microsoft verification key, so the hash can be checked against the
// published test vectors). A fixed key is what makes ring placement a pure
// function of the flow tuple — the determinism contract extends through RSS.
var rssKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// rssKeyWindow returns the 32-bit window of the key starting at bit off.
func rssKeyWindow(off int) uint32 {
	var v uint64 // 40 bits: the 5 key bytes covering the window
	for k := 0; k < 5; k++ {
		v = v<<8 | uint64(rssKey[off/8+k])
	}
	return uint32(v >> (8 - off%8))
}

// ToeplitzHash computes the RSS Toeplitz hash of data under the fixed key.
// The key bounds the input to 35 bytes (the IPv4 4-tuple input is 12).
func ToeplitzHash(data []byte) uint32 {
	var h uint32
	for i, b := range data {
		for bit := 0; bit < 8; bit++ {
			if b&(0x80>>bit) != 0 {
				h ^= rssKeyWindow(i*8 + bit)
			}
		}
	}
	return h
}

// RSSHashIPv4 is the hash the NIC computes for a TCP/IPv4 frame: Toeplitz
// over source address, destination address, source port, destination port
// (in that order, network byte order — the layout the Microsoft test
// vectors pin down).
func RSSHashIPv4(src, dst netip.Addr, srcPort, dstPort uint16) uint32 {
	var data [12]byte
	s, d := src.As4(), dst.As4()
	copy(data[0:4], s[:])
	copy(data[4:8], d[:])
	binary.BigEndian.PutUint16(data[8:10], srcPort)
	binary.BigEndian.PutUint16(data[10:12], dstPort)
	return ToeplitzHash(data[:])
}

// RSSFlowHash hashes a bare flow identifier for traffic that does not carry
// a parseable TCP/IPv4 stack (the memcached workload's protocol frames, raw
// device tests) — the analogue of a NIC falling back to an L2 hash for
// non-IP traffic. Same Toeplitz unit, so placement stays deterministic.
func RSSFlowHash(flow int) uint32 {
	var data [4]byte
	binary.BigEndian.PutUint32(data[:], uint32(flow))
	return ToeplitzHash(data[:])
}

// RSSHashPacket parses a generated header stack and returns its RSS hash —
// what the hardware hash unit would compute from the wire bytes. It reports
// ok=false for frames that are not TCP/IPv4.
func RSSHashPacket(b []byte) (uint32, bool) {
	p, err := ParsePacket(b)
	if err != nil {
		return 0, false
	}
	return RSSHashIPv4(p.IP.Src, p.IP.Dst, p.TCP.SrcPort, p.TCP.DstPort), true
}

// Packet is a parsed header stack.
type Packet struct {
	Eth EthHeader
	IP  IPv4Header
	TCP TCPHeader
}

// BuildHeaders marshals a full Ethernet+IPv4+TCP header stack for a
// segment carrying payloadLen bytes of TCP payload.
func BuildHeaders(src, dst netip.Addr, srcPort, dstPort uint16, seq uint32, payloadLen int) []byte {
	return AppendHeaders(make([]byte, 0, HeaderLen), src, dst, srcPort, dstPort, seq, payloadLen)
}

// AppendHeaders is BuildHeaders into a caller-supplied buffer: with
// cap(dst) >= HeaderLen it performs no allocation, which is what keeps
// ARQ retransmission header rebuilds off the heap.
func AppendHeaders(dst []byte, srcAddr, dstAddr netip.Addr, srcPort, dstPort uint16, seq uint32, payloadLen int) []byte {
	b := dst
	b = EthHeader{
		Dst:       [6]byte{0x02, 0, 0, 0, 0, 2},
		Src:       [6]byte{0x02, 0, 0, 0, 0, 1},
		EtherType: EtherTypeIPv4,
	}.Marshal(b)
	b = IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + min(payloadLen, 0xFFFF-IPv4HeaderLen-TCPHeaderLen)),
		TTL:      64,
		Protocol: IPProtoTCP,
		Src:      srcAddr,
		Dst:      dstAddr,
	}.Marshal(b)
	b = TCPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Flags: TCPFlagACK | TCPFlagPSH, Window: 0xFFFF,
	}.Marshal(b)
	return b
}

// ParsePacket decodes the full header stack (what a firewall hook does with
// the bytes it obtained through skb.Access).
func ParsePacket(b []byte) (Packet, error) {
	var p Packet
	eth, err := ParseEth(b)
	if err != nil {
		return p, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return p, fmt.Errorf("netstack: not IPv4 (ethertype %#x)", eth.EtherType)
	}
	ip, err := ParseIPv4(b[EthHeaderLen:])
	if err != nil {
		return p, err
	}
	if ip.Protocol != IPProtoTCP {
		return p, fmt.Errorf("netstack: not TCP (proto %d)", ip.Protocol)
	}
	tcp, err := ParseTCP(b[EthHeaderLen+IPv4HeaderLen:])
	if err != nil {
		return p, err
	}
	return Packet{Eth: eth, IP: ip, TCP: tcp}, nil
}
