package netstack

import (
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

// ARQ — the reliable-delivery layer. The fault plane can drop, corrupt,
// duplicate, and reorder wire segments; this file turns those events from
// silent goodput loss into recovered deliveries: a cumulative-ACK
// sliding-window sender with RFC 6298 RTO estimation (exponential backoff,
// Karn's rule), dup-ACK fast retransmit, and a bounded reorder/reassembly
// window at the receiver.
//
// Recovery is deliberately Reno-style: each hole needs its own three
// duplicate ACKs before fast retransmit; a fresh cumulative ACK resets the
// counter, and a partial ACK never auto-retransmits. The NewReno
// partial-ACK rule assumes the ACK path keeps pace with delivery; here a
// CPU-saturated host drains TX (ACK) completions much later than RX
// deliveries, so a repaired hole releases a burst of stale-but-advancing
// ACKs — under NewReno every one of them would spuriously retransmit an
// already-delivered segment, and the duplicates' ACKs feed the next burst.
// Dup-ACK-gated recovery is immune: stale fresh ACKs just drain.
//
// Placement mirrors the testbed: loss is injected at the NIC's ingress, so
// the *data* sender is the remote traffic-generation machine (it wraps an
// ArqSender and retransmits by re-injecting the segment), while the host
// runs a ReliableReceiver whose ACKs travel the host's real TX DMA path —
// every ACK pays the per-scheme map/unmap cost, and every retransmitted
// data segment re-pays the per-scheme RX buffer cycle (strict remaps,
// deferred batches, DAMN reuses its permanent mapping). The cost asymmetry
// under loss is therefore modeled end to end, not asserted.
//
// Determinism: all timing lives on the discrete-event engine. The RTO
// timer is a single lazily re-armed event (the engine has no cancel API):
// the sender tracks the true deadline in rtoAt and the pending event
// simply checks it when it fires, re-arming if the deadline moved out.
// The deadline only ever extends a pending event — if a fresh RTT sample
// shrinks the RTO while a timer is outstanding, the timeout fires at the
// old (later) time. That errs toward fewer spurious timeouts and keeps
// the timer 0-alloc and exactly replayable.
//
// The ACK direction is lossless by design (the fault plane injects only at
// the host's ingress); cumulative ACKs would tolerate ACK loss anyway, but
// keeping the reverse path clean makes the figure attribute every
// retransmission to data-path loss. A netfilter hook that deterministically
// drops a flow's segments would retransmit forever — the loss workloads
// install no hooks, and real stacks have the same pathology.

// ArqConfig parameterises one reliable flow.
type ArqConfig struct {
	// Window is the sender's in-flight segment limit and the receiver's
	// reorder window (segments, not bytes).
	Window int
	// SegLen is the wire length of each data segment.
	SegLen int
	// DupThresh is the duplicate-ACK count that triggers fast retransmit.
	DupThresh int
	// InitRTO seeds the retransmission timeout before the first RTT
	// sample; MinRTO/MaxRTO clamp the estimator and the backoff.
	InitRTO sim.Time
	MinRTO  sim.Time
	MaxRTO  sim.Time
}

func (c *ArqConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.DupThresh == 0 {
		c.DupThresh = 3
	}
	if c.InitRTO == 0 {
		c.InitRTO = sim.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 100 * sim.Microsecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 10 * sim.Millisecond
	}
}

// ArqSegment is one in-flight data segment. Segments are pooled by the
// sender; the embedded header buffer keeps retransmission header rebuilds
// allocation-free (HeaderLen fits with room to spare).
type ArqSegment struct {
	// Seq is the 1-based segment sequence number (0 is reserved for
	// "no ARQ" in device.Segment).
	Seq uint32
	// Len is the segment's wire length.
	Len int
	// Hdr is the marshalled header stack, built by the transmit callback
	// on first send into HdrBuf and reused verbatim on retransmission.
	Hdr []byte

	hdrBuf [64]byte
	sentAt sim.Time
	sends  int
}

// HdrBuf returns the segment's embedded header buffer, empty, for the
// transmit callback to AppendHeaders into without allocating.
func (s *ArqSegment) HdrBuf() []byte { return s.hdrBuf[:0] }

// Sends reports how many times the segment has been transmitted.
func (s *ArqSegment) Sends() int { return s.sends }

// ArqSender is the sending half of a reliable flow: a sliding window of
// unacknowledged segments, an RTT estimator, and the retransmission
// machinery. It does not touch the wire itself — the xmit callback does
// (re-injecting at the remote generator, or transmitting through a host
// driver), so the same state machine serves either direction.
type ArqSender struct {
	eng *sim.Engine
	cfg ArqConfig
	// xmit transmits a segment; retx marks retransmissions (the segment's
	// header is already built then and must be reused, not rebuilt).
	xmit func(seg *ArqSegment, retx bool)

	nextSeq uint32 // next sequence number to assign
	ackSeq  uint32 // all segments below this are acknowledged

	// unacked[head:] is the in-flight window in sequence order; popped
	// entries compact in place (same head-index idiom as the NIC rings).
	unacked []*ArqSegment
	head    int
	free    []*ArqSegment

	dupAcks int

	// RFC 6298 estimator state.
	srtt    sim.Time
	rttvar  sim.Time
	rto     sim.Time
	hasSRTT bool

	// Lazy RTO timer: rtoAt is the true deadline; timerArmed says one
	// pending engine event exists (armed for a time <= any later rtoAt).
	rtoAt      sim.Time
	timerArmed bool
	timerFn    func()

	// Stats.
	Sent        uint64
	Acked       uint64
	Retransmits uint64
	FastRetx    uint64
	TimeoutRetx uint64
	Timeouts    uint64
	DupAcks     uint64
}

// NewArqSender builds a sender on the engine; xmit performs the actual
// transmission of a (possibly retransmitted) segment.
func NewArqSender(eng *sim.Engine, cfg ArqConfig, xmit func(seg *ArqSegment, retx bool)) *ArqSender {
	cfg.setDefaults()
	s := &ArqSender{
		eng:     eng,
		cfg:     cfg,
		xmit:    xmit,
		nextSeq: 1,
		ackSeq:  1,
		rto:     cfg.InitRTO,
	}
	s.timerFn = s.onTimer
	return s
}

// InFlight reports the number of unacknowledged segments.
func (s *ArqSender) InFlight() int { return len(s.unacked) - s.head }

// CanSend reports whether the window admits another segment — the
// backpressure the traffic source honours.
func (s *ArqSender) CanSend() bool { return s.InFlight() < s.cfg.Window }

// AckSeq returns the cumulative acknowledgment point.
func (s *ArqSender) AckSeq() uint32 { return s.ackSeq }

// NextSeq returns the next sequence number to be assigned.
func (s *ArqSender) NextSeq() uint32 { return s.nextSeq }

// RTO returns the current retransmission timeout.
func (s *ArqSender) RTO() sim.Time { return s.rto }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *ArqSender) SRTT() sim.Time { return s.srtt }

// SendNext assigns the next sequence number and transmits a new segment.
// The caller must check CanSend first.
func (s *ArqSender) SendNext() {
	seg := s.getSeg()
	seg.Seq = s.nextSeq
	s.nextSeq++
	seg.Len = s.cfg.SegLen
	seg.sends = 1
	seg.sentAt = s.eng.Now()
	wasIdle := s.InFlight() == 0
	s.unacked = append(s.unacked, seg)
	s.Sent++
	if wasIdle {
		// The window was empty, so any pending timer deadline is stale
		// (set when older data was in flight). Reset it unconditionally —
		// re-arming from a stale rtoAt would fire a spurious timeout.
		s.rtoAt = s.eng.Now() + s.rto
		s.armTimer()
	}
	s.xmit(seg, false)
}

// OnAck processes a cumulative acknowledgment: everything below ack has
// been delivered in order at the receiver.
func (s *ArqSender) OnAck(ack uint32) {
	if ack > s.ackSeq {
		// Fresh ack: pop the acknowledged prefix. Karn's rule — only a
		// segment transmitted exactly once yields an RTT sample.
		var sampleAt sim.Time
		haveSample := false
		for s.head < len(s.unacked) && s.unacked[s.head].Seq < ack {
			seg := s.unacked[s.head]
			s.unacked[s.head] = nil
			s.head++
			s.Acked++
			if seg.sends == 1 {
				sampleAt = seg.sentAt
				haveSample = true
			}
			s.putSeg(seg)
		}
		if s.head > 0 && s.head*2 >= len(s.unacked) {
			n := copy(s.unacked, s.unacked[s.head:])
			s.unacked = s.unacked[:n]
			s.head = 0
		}
		s.ackSeq = ack
		s.dupAcks = 0
		if haveSample {
			s.updateRTT(s.eng.Now() - sampleAt)
		}
		if s.InFlight() > 0 {
			s.rtoAt = s.eng.Now() + s.rto
			s.armTimer()
		}
		return
	}
	if ack == s.ackSeq && s.InFlight() > 0 {
		s.dupAcks++
		s.DupAcks++
		if s.dupAcks == s.cfg.DupThresh {
			s.retransmit(true)
			s.rtoAt = s.eng.Now() + s.rto
			s.armTimer()
		}
	}
}

// retransmit resends the oldest unacknowledged segment. Karn's rule is
// enforced structurally: the bumped send count disqualifies the segment
// from ever producing an RTT sample.
func (s *ArqSender) retransmit(fast bool) {
	if s.InFlight() == 0 {
		return
	}
	seg := s.unacked[s.head]
	seg.sends++
	seg.sentAt = s.eng.Now()
	s.Retransmits++
	if fast {
		s.FastRetx++
	} else {
		s.TimeoutRetx++
	}
	s.xmit(seg, true)
}

// updateRTT folds a fresh RTT sample into the RFC 6298 estimator.
func (s *ArqSender) updateRTT(r sim.Time) {
	if !s.hasSRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.hasSRTT = true
	} else {
		d := s.srtt - r
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

// armTimer ensures one pending timer event exists. The pending event may
// be armed for an earlier time than the current deadline; onTimer detects
// that and re-arms (lazy cancellation).
func (s *ArqSender) armTimer() {
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	s.eng.At(s.rtoAt, s.timerFn)
}

// onTimer fires the retransmission timeout: exponential backoff, resend
// the oldest segment, restart the timer.
func (s *ArqSender) onTimer() {
	s.timerArmed = false
	if s.InFlight() == 0 {
		return // everything acked; the timer dies until the next send
	}
	now := s.eng.Now()
	if now < s.rtoAt {
		s.armTimer() // deadline moved out since this event was armed
		return
	}
	s.Timeouts++
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.dupAcks = 0
	s.retransmit(false)
	s.rtoAt = now + s.rto
	s.armTimer()
}

func (s *ArqSender) getSeg() *ArqSegment {
	if n := len(s.free); n > 0 {
		seg := s.free[n-1]
		s.free = s.free[:n-1]
		return seg
	}
	return &ArqSegment{}
}

func (s *ArqSender) putSeg(seg *ArqSegment) {
	seg.Hdr = nil
	s.free = append(s.free, seg)
}

// ReliableReceiver wraps a Receiver with the ARQ reorder window and the
// ACK return path. Data segments arrive through the host's RX DMA path as
// usual; every arrival — in-order, buffered, or dropped as a duplicate —
// is answered with a cumulative ACK transmitted through the host's TX DMA
// path (AllocSKB + Transmit), so the reverse direction pays the scheme's
// real map/unmap cost.
type ReliableReceiver struct {
	R   *Receiver
	Drv *Driver
	// AckRing/AckPort place the ACK transmissions.
	AckRing int
	AckPort int
	// Dest is the remote ArqSender the ACKs are delivered to (at TX
	// wire-completion time, so the RTT covers the full return path).
	Dest *ArqSender
	// Window is the reorder window in segments; AckLen the ACK wire size.
	Window int
	AckLen int

	expect   uint32
	buf      []*SKBuff
	freeAcks []*ackTx

	// Stats.
	BufferedSegments uint64
	DroppedDup       uint64
	DroppedOow       uint64
	AcksSent         uint64
	AckSendErrors    uint64
}

// NewReliableReceiver builds the receiving half of a reliable flow.
func NewReliableReceiver(r *Receiver, drv *Driver, ackRing, ackPort int, dest *ArqSender) *ReliableReceiver {
	rr := &ReliableReceiver{
		R: r, Drv: drv, AckRing: ackRing, AckPort: ackPort, Dest: dest,
		Window: 64, AckLen: 64, expect: 1,
	}
	rr.buf = make([]*SKBuff, rr.Window)
	return rr
}

// Expect returns the next in-order sequence number (the cumulative ACK
// value the receiver is currently advertising).
func (rr *ReliableReceiver) Expect() uint32 { return rr.expect }

// HandleSegment consumes one received skb (Driver.OnDeliver shape). The
// per-segment stack cost is identical to the plain Receiver's; on top of
// it the reorder window decides: deliver in order, buffer out-of-order,
// or drop duplicates/out-of-window arrivals. A checksum-failed segment
// never reaches here (the driver drops it at the completion ring), which
// leaves a hole the sender repairs by retransmission — corruption and
// loss are the same event from ARQ's point of view.
func (rr *ReliableReceiver) HandleSegment(t *sim.Task, skb *SKBuff) {
	r := rr.R
	r.chargeSegment(t)
	seq := skb.Seq
	switch {
	case seq < rr.expect:
		// Duplicate of already-delivered data (a retransmission that
		// crossed our ACK, or an injected duplicate).
		rr.dropDup(t, skb)
	case seq >= rr.expect+uint32(rr.Window):
		// Beyond the reorder window: a well-behaved sender can't get
		// here (its window matches ours), so shed it.
		rr.DroppedOow++
		r.Dropped++
		r.K.recvDropOow.Inc()
		skb.Free(t)
	default:
		if !r.process(t, skb) {
			// Stack-level drop (access failure / netfilter): the hole
			// stays open and the sender's retransmission repairs it.
		} else if seq == rr.expect {
			r.deliver(t, skb)
			rr.expect++
			rr.flush(t)
		} else {
			slot := seq % uint32(len(rr.buf))
			if rr.buf[slot] != nil {
				rr.dropDup(t, skb)
			} else {
				rr.buf[slot] = skb
				rr.BufferedSegments++
			}
		}
	}
	rr.sendAck(t)
}

// flush delivers the in-order run now available in the reorder buffer.
func (rr *ReliableReceiver) flush(t *sim.Task) {
	for {
		slot := rr.expect % uint32(len(rr.buf))
		skb := rr.buf[slot]
		if skb == nil || skb.Seq != rr.expect {
			return
		}
		rr.buf[slot] = nil
		rr.R.deliver(t, skb)
		rr.expect++
	}
}

func (rr *ReliableReceiver) dropDup(t *sim.Task, skb *SKBuff) {
	rr.DroppedDup++
	rr.R.Dropped++
	rr.R.K.recvDropDup.Inc()
	skb.Free(t)
}

// sendAck transmits a cumulative ACK through the host TX path. An ACK
// that cannot be sent (TX ring full, quarantined device) is simply lost —
// cumulative ACKs make the next one carry the same information.
func (rr *ReliableReceiver) sendAck(t *sim.Task) {
	k := rr.R.K
	perf.Charge(t, k.Model.AckCycles)
	skb, err := AllocSKB(k, t, rr.Drv.NIC().ID(), rr.AckLen, false)
	if err != nil {
		rr.AckSendErrors++
		return
	}
	if err := skb.CopyFromUser(t, nil, rr.AckLen); err != nil {
		rr.AckSendErrors++
		skb.Free(t)
		return
	}
	a := rr.getAck()
	a.val = rr.expect
	skb.Owner = a
	if err := rr.Drv.Transmit(t, rr.AckRing, rr.AckPort, skb); err != nil {
		rr.AckSendErrors++
		skb.Free(t)
		rr.putAck(a)
		return
	}
	rr.AcksSent++
}

// ackTx carries one ACK's cumulative value through the TX ring; TxDone
// fires at wire completion, which is when the remote sender learns of it
// (the RTT therefore covers the full return path). Pooled, so the ACK
// path allocates nothing in steady state.
type ackTx struct {
	rr  *ReliableReceiver
	val uint32
}

func (a *ackTx) TxDone(t *sim.Task, skb *SKBuff) {
	skb.Free(t)
	rr, val := a.rr, a.val
	rr.putAck(a)
	if rr.Dest != nil {
		rr.Dest.OnAck(val)
	}
}

func (rr *ReliableReceiver) getAck() *ackTx {
	if n := len(rr.freeAcks); n > 0 {
		a := rr.freeAcks[n-1]
		rr.freeAcks = rr.freeAcks[:n-1]
		return a
	}
	return &ackTx{rr: rr}
}

func (rr *ReliableReceiver) putAck(a *ackTx) {
	rr.freeAcks = append(rr.freeAcks, a)
}
