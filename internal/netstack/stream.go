package netstack

import (
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

// Receiver is the kernel+application side of one inbound TCP stream (a
// netperf TCP_STREAM receive flow): interrupt-context stack processing,
// netfilter, and the user-boundary copy performed by the blocked read.
type Receiver struct {
	K *Kernel
	// ExtraCycles is per-segment workload overhead on top of the model's
	// RXSegCycles — the per-figure calibration knob (multi-instance
	// cache/scheduler effects; see EXPERIMENTS.md).
	ExtraCycles float64
	// Wakeup charges the blocked-reader wakeup on every segment
	// (multi-instance runs where the app sleeps between segments).
	Wakeup bool
	// AckCost charges the bidirectional ACK-competition cost (§6.1).
	AckCost bool

	// Stats. Dropped is the total; the per-cause splits below (and their
	// stats-registry counterparts, see Kernel.SetStats) say why.
	Bytes    uint64
	Segments uint64
	Dropped  uint64
	// DroppedAccess counts segments the stack could not even look at
	// (header access failed — e.g. safe-copy allocation failure under an
	// injected AllocFail).
	DroppedAccess uint64
	// DroppedFilter counts segments a netfilter hook rejected.
	DroppedFilter uint64
}

// HandleSegment consumes one received skb; runs in interrupt context.
func (r *Receiver) HandleSegment(t *sim.Task, skb *SKBuff) {
	r.chargeSegment(t)
	if !r.process(t, skb) {
		return
	}
	r.deliver(t, skb)
}

// chargeSegment pays the per-segment interrupt-context cost (stack
// processing plus the per-figure calibration knobs).
func (r *Receiver) chargeSegment(t *sim.Task) {
	m := r.K.Model
	perf.Charge(t, m.RXSegCycles+r.ExtraCycles)
	if r.Wakeup {
		perf.Charge(t, m.WakeupCycles)
	}
	if r.AckCost {
		perf.Charge(t, m.AckCycles)
	}
}

// process runs header access and netfilter; on failure it frees the skb,
// records the drop cause, and returns false.
func (r *Receiver) process(t *sim.Task, skb *SKBuff) bool {
	m := r.K.Model
	// The stack reads the headers — under DAMN this is the accessor
	// interposition that copies them out of the device's reach (§5.2).
	hdrLen := m.DamnHeaderBytes
	if _, err := skb.Access(t, hdrLen); err != nil {
		r.Dropped++
		r.DroppedAccess++
		r.K.recvDropAccess.Inc()
		skb.Free(t)
		return false
	}
	if r.K.Netfilter.Run(t, skb) == Drop {
		r.Dropped++
		r.DroppedFilter++
		r.K.recvDropFilter.Inc()
		skb.Free(t)
		return false
	}
	return true
}

// deliver performs the application's read() — the user-boundary copy that
// makes the payload unreachable by the device — and frees the skb.
func (r *Receiver) deliver(t *sim.Task, skb *SKBuff) {
	skb.CopyToUser(t, skb.Len())
	r.Bytes += uint64(skb.Len())
	r.Segments++
	skb.Free(t)
}

// Sender is one outbound TCP stream: the application writes into a socket
// whose in-flight window is bounded by the socket buffer; TSO-sized
// segments are mapped and handed to the NIC; completions (ACK-clocked)
// reopen the window.
type Sender struct {
	K      *Kernel
	Drv    *Driver
	Core   *sim.Core
	Ring   int
	PortID int
	Flow   int
	// Dev overrides the device identity TX buffers are allocated and
	// mapped for (a tenant's virtual function); 0 means the NIC's own id.
	Dev int
	// Hash is the RSS hash stamped on outbound segments; the far end of a
	// topology link steers by it. Zero lands on the receiver's ring 0.
	Hash uint32
	// Meta is opaque metadata stamped on outbound segments.
	Meta uint32

	// SegSize is the TSO aggregate (64 KiB).
	SegSize int
	// Window is the socket send-buffer size in bytes.
	Window int
	// ExtraCycles per segment (per-figure calibration).
	ExtraCycles float64
	// AckCost charges bidirectional ACK competition.
	AckCost bool
	// Wakeup charges the writer wakeup per segment.
	Wakeup bool

	inFlight int
	pumping  bool
	stopped  bool
	// pumpFn is the pump task closure, bound once on first use so window
	// refills don't allocate.
	pumpFn func(*sim.Task)

	// DebugPumps counts pump task executions (test instrumentation).
	DebugPumps uint64
	DebugSends uint64

	// Stats.
	Bytes    uint64
	Segments uint64
	Errors   uint64
}

// Start begins transmitting; the flow runs until Stop.
func (s *Sender) Start() {
	if s.SegSize == 0 {
		s.SegSize = s.K.Model.SegmentSize
	}
	if s.Window == 0 {
		s.Window = 16 * s.SegSize
	}
	s.schedulePump()
}

// Stop halts the flow after in-flight segments drain.
func (s *Sender) Stop() { s.stopped = true }

// Kick re-arms a stalled pump. When a device is quarantined, Transmit
// returns an error and the pump parks with the window open but no
// completions due that would restart it; the recovery supervisor calls
// Kick after reinitialisation so the flow resumes.
func (s *Sender) Kick() { s.schedulePump() }

func (s *Sender) schedulePump() {
	if s.pumping || s.stopped {
		return
	}
	s.pumping = true
	if s.pumpFn == nil {
		s.pumpFn = func(t *sim.Task) {
			s.pumping = false
			s.DebugPumps++
			s.pump(t)
		}
	}
	s.Core.Submit(false, s.pumpFn)
}

// pump fills the window; it runs as an application/syscall task.
func (s *Sender) pump(t *sim.Task) {
	m := s.K.Model
	dev := s.Dev
	if dev == 0 {
		dev = s.Drv.NIC().ID()
	}
	for !s.stopped && s.inFlight+s.SegSize <= s.Window {
		skb, err := AllocSKB(s.K, t, dev, s.SegSize, false)
		if err != nil {
			s.Errors++
			return
		}
		skb.Flow = s.Flow
		skb.Hash = s.Hash
		skb.Meta = s.Meta
		skb.Owner = s
		// The user's write(): copy at the user/kernel boundary.
		if err := skb.CopyFromUser(t, nil, s.SegSize); err != nil {
			s.Errors++
			skb.Free(t)
			return
		}
		perf.Charge(t, m.TXSegCycles+s.ExtraCycles)
		if s.AckCost {
			perf.Charge(t, m.AckCycles)
		}
		if s.Wakeup {
			perf.Charge(t, m.WakeupCycles)
		}
		if err := s.Drv.Transmit(t, s.Ring, s.PortID, skb); err != nil {
			// TX ring full: free and retry when completions arrive.
			s.Errors++
			skb.Free(t)
			return
		}
		s.inFlight += s.SegSize
		s.DebugSends++
	}
}

// TxDone is invoked (via skb.Owner dispatch) when a segment completes.
func (s *Sender) TxDone(t *sim.Task, skb *SKBuff) {
	s.inFlight -= skb.Len()
	s.Bytes += uint64(skb.Len())
	s.Segments++
	skb.Free(t)
	if !s.stopped && s.inFlight+s.SegSize <= s.Window {
		s.schedulePump()
	}
}

// TxCompleter receives transmit completions for skbs it owns.
type TxCompleter interface {
	TxDone(t *sim.Task, skb *SKBuff)
}

// DispatchTxDone is a Driver.OnTxDone adapter routing completions back to
// their owning endpoints.
func DispatchTxDone(t *sim.Task, ring int, skb *SKBuff) {
	if c, ok := skb.Owner.(TxCompleter); ok {
		c.TxDone(t, skb)
		return
	}
	skb.Free(t)
}
