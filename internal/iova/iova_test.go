package iova

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/asplos18/damn/internal/iommu"
)

func TestAllocTopDown(t *testing.T) {
	a := NewAllocator(0x1000, 0x100000)
	v1, err := a.Alloc(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a.Alloc(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 0xFF000 || v2 != 0xFE000 {
		t.Fatalf("top-down allocation gave %#x, %#x", v1, v2)
	}
}

func TestAllocRoundsToPages(t *testing.T) {
	a := NewAllocator(0x1000, 0x100000)
	v, err := a.Alloc(100) // rounds to 4 KiB
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeOf(v) != 0x1000 {
		t.Fatalf("SizeOf = %#x, want page", a.SizeOf(v))
	}
}

func TestFreeCoalesces(t *testing.T) {
	a := NewAllocator(0x1000, 0x100000)
	total := a.FreeBytes()
	var vs []iommu.IOVA
	for i := 0; i < 10; i++ {
		v, err := a.Alloc(0x3000)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	// Free in shuffled order.
	order := []int{3, 7, 1, 9, 0, 5, 2, 8, 6, 4}
	for _, i := range order {
		if err := a.Free(vs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeBytes() != total {
		t.Fatalf("FreeBytes = %#x, want %#x", a.FreeBytes(), total)
	}
	// After full coalescing, one max-size allocation must succeed.
	if _, err := a.Alloc(int(total)); err != nil {
		t.Fatalf("full-space alloc after coalesce: %v", err)
	}
}

func TestFreeUnknownFails(t *testing.T) {
	a := NewAllocator(0x1000, 0x100000)
	if err := a.Free(0x2000); err == nil {
		t.Fatal("free of unallocated base should fail")
	}
}

func TestExhaustion(t *testing.T) {
	a := NewAllocator(0x1000, 0x5000) // 4 pages
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(0x1000); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(0x1000); err == nil {
		t.Fatal("expected exhaustion")
	}
}

func TestAllocatorNoOverlap(t *testing.T) {
	a := NewAllocator(0x1000, 0x200000)
	rng := rand.New(rand.NewSource(3))
	live := map[iommu.IOVA]int{}
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			size := (rng.Intn(8) + 1) * 0x1000
			v, err := a.Alloc(size)
			if err != nil {
				continue
			}
			for b, s := range live {
				if v < b+iommu.IOVA(s) && b < v+iommu.IOVA(size) {
					t.Fatalf("overlap: [%#x,+%#x) with [%#x,+%#x)", v, size, b, s)
				}
			}
			live[v] = size
		} else {
			for b := range live {
				a.Free(b)
				delete(live, b)
				break
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(cpu uint8, rightsRaw uint8, dev uint8, offRaw uint32) bool {
		c := int(cpu) % (MaxCPU + 1)
		d := int(dev) % (MaxDev + 1)
		rights := iommu.Perm(rightsRaw%3 + 1) // 1..3: R, W, RW
		off := uint64(offRaw) % OffsetSpace
		v, err := Encode(c, rights, d, off)
		if err != nil {
			return false
		}
		if !IsDAMN(v) {
			return false
		}
		e, ok := Decode(v)
		if !ok {
			return false
		}
		return e.CPU == c && e.Rights == rights && e.Dev == d && e.Offset == off
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadInputs(t *testing.T) {
	if _, err := Encode(MaxCPU+1, iommu.PermRead, 0, 0); err == nil {
		t.Error("cpu overflow accepted")
	}
	if _, err := Encode(0, iommu.PermRead, MaxDev+1, 0); err == nil {
		t.Error("dev overflow accepted")
	}
	if _, err := Encode(0, 0, 0, 0); err == nil {
		t.Error("zero rights accepted")
	}
	if _, err := Encode(0, iommu.PermRead, 0, OffsetSpace); err == nil {
		t.Error("offset overflow accepted")
	}
}

func TestAPIAndDAMNSpacesDisjoint(t *testing.T) {
	a := NewAPIAllocator()
	for i := 0; i < 100; i++ {
		v, err := a.Alloc(0x10000)
		if err != nil {
			t.Fatal(err)
		}
		if IsDAMN(v) {
			t.Fatalf("API allocator produced DAMN-partition IOVA %#x", v)
		}
	}
	v, _ := Encode(5, iommu.PermWrite, 3, 0x1234000)
	if !IsDAMN(v) {
		t.Fatal("encoded IOVA must be in DAMN partition")
	}
}

func TestRegionsDisjointAcrossIdentities(t *testing.T) {
	// Distinct (cpu, rights, dev) triples must produce disjoint 1 GiB
	// regions — this is what lets dma_unmap identify the allocator.
	seen := map[iommu.IOVA]string{}
	for cpu := 0; cpu < 4; cpu++ {
		for _, rights := range []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW} {
			for dev := 0; dev < 4; dev++ {
				base, err := RegionBase(cpu, rights, dev)
				if err != nil {
					t.Fatal(err)
				}
				if who, dup := seen[base]; dup {
					t.Fatalf("region base %#x shared by two identities (%s)", base, who)
				}
				seen[base] = "seen"
			}
		}
	}
}

func TestDecodeNonDAMN(t *testing.T) {
	if _, ok := Decode(0x1234000); ok {
		t.Fatal("non-DAMN IOVA decoded")
	}
}
