// Package iova provides I/O virtual address management: a Linux-style range
// allocator used by the standard DMA API path, and the bit-encoded IOVA
// scheme DAMN uses to make dma_unmap and damn_free self-describing
// (Figure 3 of the paper).
//
// The 48-bit IOVA space is partitioned by its most significant bit:
// addresses with bit 47 clear belong to the standard DMA API allocator;
// addresses with bit 47 set are DAMN IOVAs whose top bits encode the
// allocating CPU, the access rights and the device index, letting DAMN
// identify the owning DMA cache from the address alone (§5.4, §5.5).
package iova

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/asplos18/damn/internal/iommu"
)

// ErrExhausted reports that no free range large enough exists. Callers in
// the DMA API match it with errors.Is to distinguish address-space
// exhaustion (retryable after unmaps) from caller bugs like a bad size.
var ErrExhausted = errors.New("iova: space exhausted")

// Space boundaries.
const (
	// Bits of usable IOVA space (VT-d 4-level).
	Bits = 48
	// DAMNBit is the partition bit: set ⇒ DAMN-owned IOVA.
	DAMNBit = iommu.IOVA(1) << 47
	// APISpaceLo/Hi bound the standard DMA API region (bit 47 clear);
	// Hi is exclusive and page aligned. The low 16 MiB are kept unused so
	// that a zero/near-zero IOVA is never valid — catching uninitialised
	// DMA addresses.
	APISpaceLo = iommu.IOVA(1 << 24)
	APISpaceHi = DAMNBit
)

// Allocator hands out page-aligned IOVA ranges from [lo, hi], top-down,
// first-fit, as the Linux intel-iommu allocator does. It is safe for
// concurrent use.
type Allocator struct {
	mu   sync.Mutex
	lo   iommu.IOVA
	hi   iommu.IOVA
	free []span // sorted by base, non-overlapping, coalesced

	allocated map[iommu.IOVA]int // base -> size (bytes), for Free validation
}

type span struct {
	base iommu.IOVA
	size uint64 // bytes
}

// NewAllocator creates an allocator over [lo, hi]. Both bounds must be page
// aligned (hi exclusive). An empty range (lo >= hi) yields a valid
// allocator whose every Alloc fails with ErrExhausted — exhaustion is an
// error the DMA API surfaces, never a panic.
func NewAllocator(lo, hi iommu.IOVA) *Allocator {
	a := &Allocator{
		lo:        lo,
		hi:        hi,
		allocated: make(map[iommu.IOVA]int),
	}
	if lo < hi {
		a.free = []span{{base: lo, size: uint64(hi - lo)}}
	}
	return a
}

// NewAPIAllocator creates the allocator for the standard DMA API partition.
func NewAPIAllocator() *Allocator { return NewAllocator(APISpaceLo, APISpaceHi) }

// Alloc reserves size bytes (rounded up to pages) and returns the base
// IOVA. Allocation is top-down: the highest free range that fits is used,
// mirroring Linux's behaviour of growing the IOVA space downward from the
// DMA limit.
func (a *Allocator) Alloc(size int) (iommu.IOVA, error) {
	if size <= 0 {
		return 0, fmt.Errorf("iova: bad size %d", size)
	}
	need := (uint64(size) + 0xFFF) &^ 0xFFF
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.free) - 1; i >= 0; i-- {
		s := &a.free[i]
		if s.size < need {
			continue
		}
		// Take from the top of the span.
		base := s.base + iommu.IOVA(s.size-need)
		s.size -= need
		if s.size == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		a.allocated[base] = int(need)
		return base, nil
	}
	return 0, fmt.Errorf("%w allocating %d bytes", ErrExhausted, size)
}

// Free releases a range returned by Alloc.
func (a *Allocator) Free(base iommu.IOVA) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.allocated[base]
	if !ok {
		return fmt.Errorf("iova: free of unallocated base %#x", base)
	}
	delete(a.allocated, base)
	a.insertFree(span{base: base, size: uint64(size)})
	return nil
}

// SizeOf reports the allocated size of base, or 0.
func (a *Allocator) SizeOf(base iommu.IOVA) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocated[base]
}

// insertFree adds a span back, keeping the list sorted and coalesced.
func (a *Allocator) insertFree(s span) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base > s.base })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].base+iommu.IOVA(a.free[i].size) == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].base+iommu.IOVA(a.free[i-1].size) == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// FreeBytes reports the total free IOVA space (tests).
func (a *Allocator) FreeBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n uint64
	for _, s := range a.free {
		n += s.size
	}
	return n
}

// Live reports the number of outstanding allocations.
func (a *Allocator) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.allocated)
}
