package iova

import (
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
)

// DAMN IOVA encoding, after Figure 3 of the paper. Bit 47 is always 1
// (marking the DAMN partition); the next fields identify the allocator the
// buffer came from, so that dma_unmap and damn_free can dispatch on the
// address alone:
//
//	 47      46..40    39..37   36..30   29..0
//	+---+-----------+--------+---------+--------+
//	| 1 |  cpu idx  | rights | dev idx | offset |
//	+---+-----------+--------+---------+--------+
//
// 7 bits of CPU index cover 128 cores, 3 bits encode the access rights
// (the iommu.Perm value), 7 bits of device index cover 128 DMA-capable
// devices, and the remaining 30 bits give each (cpu, rights, dev)
// combination a private 1 GiB IOVA region.
//
// This is exactly the property Table 3 penalises: because the metadata
// lives in the *high* bits, buffers from different DMA caches land in
// different 2 MiB huge-page regions, so the IOTLB covers the working set
// with more entries than a dense layout would need.
const (
	cpuBits    = 7
	rightsBits = 3
	devBits    = 7
	offsetBits = 30

	offsetShift = 0
	devShift    = offsetBits
	rightsShift = devShift + devBits
	cpuShift    = rightsShift + rightsBits

	// OffsetSpace is the per-allocator region size (1 GiB).
	OffsetSpace = uint64(1) << offsetBits

	MaxCPU = 1<<cpuBits - 1
	MaxDev = 1<<devBits - 1
)

// Encoded is a decoded DAMN IOVA.
type Encoded struct {
	CPU    int
	Rights iommu.Perm
	Dev    int
	Offset uint64
}

// Encode builds a DAMN IOVA from allocator identity and region offset.
func Encode(cpu int, rights iommu.Perm, dev int, offset uint64) (iommu.IOVA, error) {
	if cpu < 0 || cpu > MaxCPU {
		return 0, fmt.Errorf("iova: cpu %d out of encodable range", cpu)
	}
	if dev < 0 || dev > MaxDev {
		return 0, fmt.Errorf("iova: dev %d out of encodable range", dev)
	}
	if rights == 0 || uint8(rights) >= 1<<rightsBits {
		return 0, fmt.Errorf("iova: unencodable rights %v", rights)
	}
	if offset >= OffsetSpace {
		return 0, fmt.Errorf("iova: offset %#x exceeds region size", offset)
	}
	v := DAMNBit |
		iommu.IOVA(cpu)<<cpuShift |
		iommu.IOVA(rights)<<rightsShift |
		iommu.IOVA(dev)<<devShift |
		iommu.IOVA(offset)
	return v, nil
}

// IsDAMN reports whether the IOVA belongs to the DAMN partition; this is
// the MSB test dma_unmap performs (§5.3) to decide whether to skip the
// legacy unmap path.
func IsDAMN(v iommu.IOVA) bool { return v&DAMNBit != 0 }

// Decode splits a DAMN IOVA into its identity fields. ok is false if the
// IOVA is not in the DAMN partition.
func Decode(v iommu.IOVA) (Encoded, bool) {
	if !IsDAMN(v) {
		return Encoded{}, false
	}
	return Encoded{
		CPU:    int(v >> cpuShift & (1<<cpuBits - 1)),
		Rights: iommu.Perm(v >> rightsShift & (1<<rightsBits - 1)),
		Dev:    int(v >> devShift & (1<<devBits - 1)),
		Offset: uint64(v & (1<<offsetBits - 1)),
	}, true
}

// RegionBase returns the base IOVA of the 1 GiB region belonging to the
// given allocator identity.
func RegionBase(cpu int, rights iommu.Perm, dev int) (iommu.IOVA, error) {
	return Encode(cpu, rights, dev, 0)
}
