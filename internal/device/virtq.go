package device

import (
	"encoding/binary"
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/sim"
)

// Virtqueue is the device half of a virtio-style split ring attached to one
// NIC RX ring in poll mode: instead of raising a completion interrupt, the
// device publishes each finished receive into a used ring that lives in
// guest-visible memory, bumps the used index, and lets the driver's busy-poll
// loop harvest entries in bursts. The avail side is the NIC's ordinary
// descriptor ring (PostRX is the batched avail publish; the driver pays the
// doorbell separately), so both flavors of the bypass scheme share the DMA,
// PCIe and IOTLB modelling of the interrupt path byte for byte — only the
// completion signalling differs.
//
// The used-index bump is a real DMA: the device writes the used element
// through the IOMMU under the ring's device identity, so under bypass-prot
// the ring memory itself must be mapped in the per-app domain or completions
// fault (exactly the property that makes the protected flavor meaningful).
type Virtqueue struct {
	se  *sim.Engine
	u   *iommu.IOMMU
	dev int
	// usedIOVA is where the device writes used elements (one 16-byte slot;
	// the model keeps the element payload abstract and the ring contents in
	// host memory, like the NIC's descriptor rings).
	usedIOVA iommu.IOVA

	// used is the used ring: completions published by the device, awaiting
	// harvest. Pops via head and compacts in place, rxRing-style, so the
	// steady state never reallocates.
	used []RXCompletion
	head int

	// UsedIdx is the device's running used index (total elements ever
	// published); the driver compares it against its own shadow to know how
	// far it may harvest.
	UsedIdx uint64
	// PublishFaults counts used-element writes the IOMMU blocked: the
	// completion is lost to the driver and its descriptor leaks, which is
	// what physically happens when a bypass ring isn't mapped.
	PublishFaults uint64

	elem     [16]byte // scratch used-element encoding
	freePubs []*vqPublish
}

// NewVirtqueue builds the device half of a poll-mode queue. dev is the DMA
// identity used-element writes translate under; usedIOVA is the mapped (or
// passthrough) address of the used-ring slot.
func NewVirtqueue(se *sim.Engine, u *iommu.IOMMU, dev int, usedIOVA iommu.IOVA) *Virtqueue {
	return &Virtqueue{se: se, u: u, dev: dev, usedIOVA: usedIOVA}
}

// Pending reports published-but-unharvested used elements.
func (q *Virtqueue) Pending() int { return len(q.used) - q.head }

// Harvest copies up to len(out) used elements into the caller's buffer and
// consumes them, returning the count — the driver-side used-ring read. The
// caller owns out; the virtqueue retains nothing.
func (q *Virtqueue) Harvest(out []RXCompletion) int {
	n := copy(out, q.used[q.head:])
	for i := q.head; i < q.head+n; i++ {
		q.used[i] = RXCompletion{}
	}
	q.head += n
	if q.head == len(q.used) {
		q.used = q.used[:0]
		q.head = 0
	}
	return n
}

// vqPublish carries one completion from DMA-done time into the used ring;
// records and their fire closures are recycled like the NIC's dispatch
// records so poll-mode delivery allocates nothing in steady state.
type vqPublish struct {
	q    *Virtqueue
	comp RXCompletion
	fire func()
}

func (q *Virtqueue) getPublish() *vqPublish {
	if m := len(q.freePubs); m > 0 {
		p := q.freePubs[m-1]
		q.freePubs = q.freePubs[:m-1]
		return p
	}
	p := &vqPublish{q: q}
	p.fire = func() {
		comp := p.comp
		p.comp = RXCompletion{}
		p.q.freePubs = append(p.q.freePubs, p)
		p.q.publish(comp)
	}
	return p
}

// schedulePublish queues a completion to land in the used ring when its DMA
// is done.
func (q *Virtqueue) schedulePublish(at sim.Time, comp RXCompletion) {
	p := q.getPublish()
	p.comp = comp
	q.se.At(at, p.fire)
}

// publish writes the used element through the IOMMU and appends the
// completion for harvest.
func (q *Virtqueue) publish(comp RXCompletion) {
	binary.LittleEndian.PutUint64(q.elem[0:8], q.UsedIdx)
	binary.LittleEndian.PutUint64(q.elem[8:16], uint64(comp.Written))
	if _, err := q.u.DMAWrite(q.dev, q.usedIOVA, q.elem[:]); err != nil {
		q.PublishFaults++
		return
	}
	q.UsedIdx++
	if q.head > 0 && len(q.used) == cap(q.used) {
		n := copy(q.used, q.used[q.head:])
		for i := n; i < len(q.used); i++ {
			q.used[i] = RXCompletion{}
		}
		q.used = q.used[:n]
		q.head = 0
	}
	q.used = append(q.used, comp)
}

// AttachVirtqueue puts an RX ring in poll mode: completions on the ring are
// published to the virtqueue's used ring instead of raising an interrupt.
// Passing nil restores interrupt delivery.
func (n *NIC) AttachVirtqueue(ring int, q *Virtqueue) error {
	if ring < 0 || ring >= len(n.rings) {
		return fmt.Errorf("device: nic %d has no RX ring %d to attach a virtqueue", n.Cfg.ID, ring)
	}
	if n.pollVQ == nil {
		n.pollVQ = make([]*Virtqueue, len(n.rings))
	}
	n.pollVQ[ring] = q
	return nil
}
