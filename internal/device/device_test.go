package device

import (
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

type rig struct {
	se    *sim.Engine
	mem   *mem.Memory
	u     *iommu.IOMMU
	model *perf.Model
	cores []*sim.Core
}

func newRig(t *testing.T, nCores int) *rig {
	t.Helper()
	m, err := mem.New(mem.Config{TotalBytes: 64 << 20, NUMANodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	se := sim.NewEngine(1)
	model := perf.Default28Core()
	var cores []*sim.Core
	for i := 0; i < nCores; i++ {
		cores = append(cores, sim.NewCore(se, i, 0, model.CoreHz))
	}
	return &rig{se: se, mem: m, u: iommu.New(m), model: model, cores: cores}
}

func (r *rig) mapBuf(t *testing.T, dev, order int, perm iommu.Perm, v iommu.IOVA) mem.PhysAddr {
	t.Helper()
	p, err := r.mem.AllocPages(order, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa := p.PFN().Addr()
	if err := r.u.Map(dev, v, pa, mem.PageSize<<order, perm); err != nil {
		t.Fatal(err)
	}
	return pa
}

func defaultNIC(r *rig) *NIC {
	r.u.AttachDevice(1)
	return NewNIC(r.se, r.u, r.model, nil, r.cores, NICConfig{
		ID: 1, Ports: 2, RingSize: 64, TxRing: 64, Rings: len(r.cores),
		WireGbps: 100, PCIeGbps: 106,
	})
}

func TestNICRXDeliversThroughIOMMU(t *testing.T) {
	r := newRig(t, 1)
	n := defaultNIC(r)
	pa := r.mapBuf(t, 1, 4, iommu.PermWrite, 0x100000)

	var got []RXCompletion
	n.OnRX(func(_ *sim.Task, ring int, comps []RXCompletion) { got = append(got, comps...) })
	if err := n.PostRX(0, RXDesc{IOVA: 0x100000, Size: 64 << 10, Cookie: "buf0"}); err != nil {
		t.Fatal(err)
	}
	hdr := []byte("ETH|IP|TCP hdr")
	n.InjectRX(0, Segment{Flow: 1, Len: 9000, Header: hdr})
	r.se.RunUntilIdle()

	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	if got[0].Desc.Cookie != "buf0" {
		t.Fatal("wrong descriptor completed")
	}
	if got[0].Written != len(hdr) {
		t.Fatalf("Written = %d", got[0].Written)
	}
	// The header bytes really landed in host memory via translation.
	check := make([]byte, len(hdr))
	r.mem.Read(pa, check)
	if string(check) != string(hdr) {
		t.Fatalf("memory holds %q", check)
	}
	if n.RxSegments != 1 || n.RxBytes != 9000 {
		t.Fatalf("stats: %d segs, %d bytes", n.RxSegments, n.RxBytes)
	}
}

func TestNICRXFlowControlParks(t *testing.T) {
	r := newRig(t, 1)
	n := defaultNIC(r)
	delivered := 0
	n.OnRX(func(_ *sim.Task, ring int, comps []RXCompletion) { delivered += len(comps) })
	// No buffers posted: the segment parks (lossless flow control).
	n.InjectRX(0, Segment{Len: 9000, Header: []byte("h")})
	r.se.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("segment delivered without buffers")
	}
	if n.RxStalls != 1 {
		t.Fatalf("RxStalls = %d", n.RxStalls)
	}
	// Posting a buffer releases it.
	r.mapBuf(t, 1, 4, iommu.PermWrite, 0x100000)
	n.PostRX(0, RXDesc{IOVA: 0x100000, Size: 64 << 10})
	r.se.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered = %d after posting", delivered)
	}
}

func TestNICRXFaultBlocked(t *testing.T) {
	r := newRig(t, 1)
	n := defaultNIC(r)
	var comp RXCompletion
	n.OnRX(func(_ *sim.Task, ring int, comps []RXCompletion) { comp = comps[0] })
	// Post a descriptor whose IOVA is not mapped: the DMA must fault.
	n.PostRX(0, RXDesc{IOVA: 0xDEAD000, Size: 4096})
	n.InjectRX(0, Segment{Len: 1500, Header: []byte("attack")})
	r.se.RunUntilIdle()
	if n.RxBlocked != 1 {
		t.Fatalf("RxBlocked = %d", n.RxBlocked)
	}
	if comp.Written != 0 {
		t.Fatal("fault should deliver zero bytes")
	}
}

func TestNICWirePacing(t *testing.T) {
	// 100 Gb/s port: a 64 KiB segment takes ~5.24 us of wire time; two
	// segments injected together complete ~one wire-time apart.
	r := newRig(t, 1)
	n := defaultNIC(r)
	var times []sim.Time
	n.OnRX(func(ta *sim.Task, ring int, comps []RXCompletion) { times = append(times, ta.Start()) })
	r.mapBuf(t, 1, 4, iommu.PermWrite, 0x100000)
	r.mapBuf(t, 1, 4, iommu.PermWrite, 0x200000)
	n.PostRX(0, RXDesc{IOVA: 0x100000, Size: 64 << 10}, RXDesc{IOVA: 0x200000, Size: 64 << 10})
	seg := Segment{Len: 64 << 10, Header: []byte("h")}
	n.InjectRX(0, seg)
	n.InjectRX(0, seg)
	r.se.RunUntilIdle()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	wire := sim.FromSeconds(float64(64<<10) / (100e9 / 8))
	if gap < wire*9/10 || gap > wire*2 {
		t.Fatalf("inter-delivery gap %v, want ≈ %v", gap, wire)
	}
}

func TestNICTXRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	n := defaultNIC(r)
	pa := r.mapBuf(t, 1, 4, iommu.PermRead, 0x300000)
	r.mem.Write(pa, []byte("tx payload"))
	var done []TXDesc
	n.OnTXComplete(func(_ *sim.Task, ring int, descs []TXDesc) { done = append(done, descs...) })
	if err := n.PostTX(0, 0, TXDesc{IOVA: 0x300000, Size: 9000, Cookie: 42}); err != nil {
		t.Fatal(err)
	}
	if n.TXInFlight(0) != 1 {
		t.Fatal("descriptor not in flight")
	}
	r.se.RunUntilIdle()
	if len(done) != 1 || done[0].Cookie != 42 {
		t.Fatalf("completion: %+v", done)
	}
	if n.TXInFlight(0) != 0 {
		t.Fatal("in-flight not drained")
	}
	if n.TxBytes != 9000 {
		t.Fatalf("TxBytes = %d", n.TxBytes)
	}
}

func TestNICTXRingLimit(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(1)
	n := NewNIC(r.se, r.u, r.model, nil, r.cores, NICConfig{
		ID: 1, Ports: 1, RingSize: 4, TxRing: 2, Rings: 1, WireGbps: 100, PCIeGbps: 106,
	})
	r.mapBuf(t, 1, 0, iommu.PermRead, 0x400000)
	d := TXDesc{IOVA: 0x400000, Size: 1500}
	if err := n.PostTX(0, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := n.PostTX(0, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := n.PostTX(0, 0, d); err == nil {
		t.Fatal("ring overflow accepted")
	}
}

func TestMaliciousBlockedByMappings(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(1)
	attacker := NewMalicious(r.u, 1)
	// Nothing mapped: all reads fail.
	if _, err := attacker.TryRead(0x100000, 64); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	// Map something read-only; write must still fail.
	r.mapBuf(t, 1, 0, iommu.PermRead, 0x100000)
	if _, err := attacker.TryRead(0x100000, 64); err != nil {
		t.Fatal("mapped read failed")
	}
	if err := attacker.TryWrite(0x100000, []byte("evil")); err == nil {
		t.Fatal("write through read-only mapping succeeded")
	}
}

func TestMaliciousScanFindsOnlyMapped(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(1)
	pa := r.mapBuf(t, 1, 0, iommu.PermRead, 0x200000)
	r.mem.Write(pa+100, []byte("SECRET-TOKEN"))
	attacker := NewMalicious(r.u, 1)
	found, readable := attacker.ScanForSecret(0x100000, 0x300000, []byte("SECRET-TOKEN"))
	if readable != 1 {
		t.Fatalf("readable pages = %d, want 1", readable)
	}
	if len(found) != 1 || found[0] != 0x200000 {
		t.Fatalf("found = %v", found)
	}
}

func TestMaliciousPassthroughReadsEverything(t *testing.T) {
	// With iommu-off the attacker owns physical memory — the baseline
	// insecurity of Fig 1's "no-iommu" configuration.
	r := newRig(t, 1)
	r.u.AttachDevice(1).Passthrough = true
	p, _ := r.mem.AllocPages(0, 0)
	r.mem.Write(p.PFN().Addr(), []byte("kernel secret"))
	attacker := NewMalicious(r.u, 1)
	got, err := attacker.TryRead(iommu.IOVA(p.PFN().Addr()), 13)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kernel secret" {
		t.Fatalf("read %q", got)
	}
}

func TestNVMeCompletesReads(t *testing.T) {
	r := newRig(t, 2)
	r.u.AttachDevice(9)
	d := NewNVMe(r.se, r.u, r.model, r.cores, DefaultP3700(9))
	r.mapBuf(t, 9, 0, iommu.PermWrite, 0x500000)
	completions := 0
	err := d.SubmitRead(0, 0x500000, 4096, func(t *sim.Task, err error) {
		if err == nil {
			completions++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.se.RunUntilIdle()
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if d.Commands != 1 || d.Bytes != 4096 {
		t.Fatalf("stats %d/%d", d.Commands, d.Bytes)
	}
}

func TestNVMeIOPSCeiling(t *testing.T) {
	// 1000 512 B reads at 900 K IOPS must take ≥ ~1.1 ms of simulated
	// time regardless of CPU speed.
	r := newRig(t, 1)
	r.u.AttachDevice(9)
	d := NewNVMe(r.se, r.u, r.model, r.cores, DefaultP3700(9))
	r.mapBuf(t, 9, 0, iommu.PermWrite, 0x500000)
	var last sim.Time
	var submit func()
	n := 0
	submit = func() {
		if n >= 1000 {
			return
		}
		n++
		d.SubmitRead(0, 0x500000, 512, func(t *sim.Task, err error) {
			last = t.Start()
			submit()
		})
	}
	submit()
	r.se.RunUntilIdle()
	want := sim.FromSeconds(1000.0/900e3) * 99 / 100
	if last < want {
		t.Fatalf("1000 IOs finished in %v, device floor is %v", last, want)
	}
}

func TestNVMeQueueDepthEnforced(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(9)
	cfg := DefaultP3700(9)
	cfg.QueueDepth = 2
	d := NewNVMe(r.se, r.u, r.model, r.cores, cfg)
	r.mapBuf(t, 9, 0, iommu.PermWrite, 0x500000)
	cb := func(*sim.Task, error) {}
	if err := d.SubmitRead(0, 0x500000, 512, cb); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitRead(0, 0x500000, 512, cb); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitRead(0, 0x500000, 512, cb); err == nil {
		t.Fatal("queue depth not enforced")
	}
	r.se.RunUntilIdle()
}

func TestTOCTTOUFlipAgainstStaleIOTLB(t *testing.T) {
	// End-to-end wiring of the deferred-window attack at device level.
	r := newRig(t, 1)
	r.u.AttachDevice(1)
	pa := r.mapBuf(t, 1, 0, iommu.PermWrite, 0x600000)
	attacker := NewMalicious(r.u, 1)
	// Device uses the buffer once (IOTLB primed)...
	if err := attacker.TryWrite(0x600000, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	// ...the OS unmaps, but does not invalidate (deferred).
	if err := r.u.Unmap(1, 0x600000, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if !attacker.TOCTTOUFlip(0x600000, []byte("evil!"), 3) {
		t.Fatal("attack should land through the stale IOTLB entry")
	}
	got := make([]byte, 5)
	r.mem.Read(pa, got)
	if string(got) != "evil!" {
		t.Fatalf("memory holds %q", got)
	}
	// Invalidation closes the window.
	r.u.TLB().InvalidateDevice(1)
	if attacker.TOCTTOUFlip(0x600000, []byte("late."), 3) {
		t.Fatal("attack landed after invalidation")
	}
}

// TestRXPostedParkedBadRing: a bad ring index from the faults plane or a
// misconfigured workload must surface a checked error, not a panic.
func TestRXPostedParkedBadRing(t *testing.T) {
	r := newRig(t, 2)
	n := defaultNIC(r)
	for _, ring := range []int{-1, len(r.cores), 99} {
		if _, err := n.RXPosted(ring); err == nil {
			t.Errorf("RXPosted(%d): no error", ring)
		}
		if _, err := n.RXParked(ring); err == nil {
			t.Errorf("RXParked(%d): no error", ring)
		}
	}
	if got, err := n.RXPosted(0); err != nil || got != 0 {
		t.Fatalf("RXPosted(0) = %d, %v", got, err)
	}
}

// TestRSSRingSelection: the indirection table spreads hashes across every
// ring, an exact-match steering rule overrides it, and hash 0 (raw device
// tests that set no hash) stays on ring 0.
func TestRSSRingSelection(t *testing.T) {
	r := newRig(t, 4)
	n := defaultNIC(r)
	if got := n.RingFor(0); got != 0 {
		t.Fatalf("hash 0 landed on ring %d, want 0", got)
	}
	seen := map[int]bool{}
	for h := uint32(0); h < RSSTableSize; h++ {
		ring := n.RingFor(h)
		if ring < 0 || ring >= 4 {
			t.Fatalf("hash %d -> ring %d out of range", h, ring)
		}
		seen[ring] = true
	}
	if len(seen) != 4 {
		t.Fatalf("indirection table covers %d of 4 rings", len(seen))
	}
	if err := n.SteerFlow(7, 3); err != nil {
		t.Fatal(err)
	}
	if got := n.RingFor(7); got != 3 {
		t.Fatalf("steered hash routed to ring %d, want 3", got)
	}
	if err := n.SteerFlow(8, 4); err == nil {
		t.Fatal("SteerFlow accepted an out-of-range ring")
	}
	if err := n.SteerFlow(8, -1); err == nil {
		t.Fatal("SteerFlow accepted a negative ring")
	}
}

// TestInjectRXFollowsHash: segments land on the ring their hash selects.
func TestInjectRXFollowsHash(t *testing.T) {
	r := newRig(t, 4)
	n := defaultNIC(r)
	byRing := map[int]int{}
	n.OnRX(func(_ *sim.Task, ring int, comps []RXCompletion) { byRing[ring] += len(comps) })
	for ring := 0; ring < 4; ring++ {
		if err := n.PostRX(ring, RXDesc{IOVA: 0x100000, Size: 64 << 10, Cookie: ring}); err != nil {
			t.Fatal(err)
		}
	}
	r.mapBuf(t, 1, 4, iommu.PermWrite, 0x100000)
	// The default table is i % Rings over 128 slots, so hash r -> ring r.
	for h := uint32(0); h < 4; h++ {
		n.InjectRX(0, Segment{Flow: int(h), Hash: h, Len: 1500, Header: []byte("h")})
	}
	r.se.RunUntilIdle()
	for ring := 0; ring < 4; ring++ {
		if byRing[ring] != 1 {
			t.Fatalf("ring %d saw %d completions, want 1 (%v)", ring, byRing[ring], byRing)
		}
	}
}
