package device

import (
	"encoding/binary"
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/sim"
)

// TestVirtqueuePublishHarvest pins the used-ring contract: completions land
// at their DMA-done time via a real used-element write through the IOMMU,
// the used index counts them, and burst harvests drain them in order,
// bounded by the caller's buffer.
func TestVirtqueuePublishHarvest(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(3)
	usedPA := r.mapBuf(t, 3, 0, iommu.PermRW, 0x200000)
	vq := NewVirtqueue(r.se, r.u, 3, 0x200000)
	for i := 0; i < 3; i++ {
		vq.schedulePublish(sim.Time(i+1)*sim.Microsecond, RXCompletion{
			Desc:    RXDesc{IOVA: iommu.IOVA(0x300000 + i*1024), Cookie: i},
			Seg:     Segment{Flow: 1, Len: 1000 + i},
			Written: 14,
		})
	}
	if vq.Pending() != 0 {
		t.Fatalf("pending = %d before any DMA-done time", vq.Pending())
	}
	r.se.RunUntilIdle()
	if vq.Pending() != 3 || vq.UsedIdx != 3 {
		t.Fatalf("pending = %d, used index = %d after 3 publishes", vq.Pending(), vq.UsedIdx)
	}
	// The last used element really landed in host memory through the IOMMU.
	elem := make([]byte, 16)
	r.mem.Read(usedPA, elem)
	if idx := binary.LittleEndian.Uint64(elem[0:8]); idx != 2 {
		t.Fatalf("used element carries index %d, want 2", idx)
	}
	out := make([]RXCompletion, 2)
	if n := vq.Harvest(out); n != 2 || out[0].Seg.Len != 1000 || out[1].Seg.Len != 1001 {
		t.Fatalf("first harvest burst = %d entries (%+v)", n, out[:n])
	}
	if vq.Pending() != 1 {
		t.Fatalf("pending = %d after harvesting 2 of 3", vq.Pending())
	}
	if n := vq.Harvest(out); n != 1 || out[0].Seg.Len != 1002 {
		t.Fatalf("second harvest burst = %d entries (%+v)", n, out[:n])
	}
	if n := vq.Harvest(out); n != 0 || vq.Pending() != 0 {
		t.Fatalf("empty ring harvested %d entries, %d pending", n, vq.Pending())
	}
}

// TestVirtqueuePublishFault pins the protected flavor's failure mode: with
// the used ring unmapped in the device's domain, the used-element write
// faults, the completion is lost to the driver, and the fault is counted —
// nothing is published on the back of a blocked DMA.
func TestVirtqueuePublishFault(t *testing.T) {
	r := newRig(t, 1)
	r.u.AttachDevice(3) // per-app domain exists, but nothing is mapped
	vq := NewVirtqueue(r.se, r.u, 3, 0x200000)
	vq.schedulePublish(sim.Microsecond, RXCompletion{Seg: Segment{Flow: 1, Len: 100}})
	r.se.RunUntilIdle()
	if vq.PublishFaults != 1 {
		t.Fatalf("publish faults = %d, want 1", vq.PublishFaults)
	}
	if vq.Pending() != 0 || vq.UsedIdx != 0 {
		t.Fatalf("blocked publish still visible: pending %d, used index %d", vq.Pending(), vq.UsedIdx)
	}
}
