// Package device models the DMA-capable hardware of the evaluation testbed:
// a dual-port 100 Gb/s NIC with per-core descriptor rings (the ConnectX-4
// analogue), an NVMe SSD (Fig 11), and a malicious device that mounts the
// DMA attacks of §2.1/§4.1.
//
// Every device access to memory goes through iommu.DMARead/DMAWrite — the
// devices address memory by IOVA only, so whatever protection scheme is
// active genuinely constrains them.
package device

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// RXDesc is one posted receive buffer: where the NIC may deposit an
// incoming segment.
type RXDesc struct {
	IOVA iommu.IOVA
	Size int
	// Cookie carries the driver's per-buffer state through the ring.
	Cookie any
}

// TXDesc is one transmit request.
type TXDesc struct {
	IOVA   iommu.IOVA
	Size   int
	Cookie any
	// Seg describes the frame for the far end of the wire. A standalone
	// machine's egress link is unterminated, so the zero value costs
	// nothing; topologies fill it (from the skb) so the receiving machine
	// gets real flow/hash/sequence metadata without the device parsing
	// payload bytes it never materialised.
	Seg Segment
}

// Segment is a unit of wire traffic after LRO aggregation (RX) or before
// TSO segmentation happens in hardware (TX): up to 64 KiB of TCP payload
// plus a header blob.
type Segment struct {
	Flow int
	// Hash is the RSS hash of the segment's flow tuple, as the NIC's hash
	// unit would compute it from the wire bytes (the simulated device does
	// not parse headers, so traffic sources supply it — see
	// netstack.RSSHashIPv4). The indirection table maps it to an RX ring;
	// an exact-match steering rule (SteerFlow) overrides it. Hash 0 lands
	// on ring 0, so raw single-ring tests need no hash at all.
	Hash uint32
	// Seq is the flow's ARQ sequence number (1-based; 0 means the segment
	// carries no ARQ state). The device treats it as opaque completion
	// metadata — only the netstack's reliable endpoints interpret it, so
	// legacy flows are untouched.
	Seq uint32
	// Meta is opaque application metadata carried end to end (the cluster
	// workloads encode request op/slot/client here, standing in for the
	// application header bytes the simulation doesn't materialise).
	Meta uint32
	// Stamp is the sender-side wire timestamp of a forwarded segment —
	// when its last byte left the sending NIC. Receivers use it for
	// cross-machine latency measurement; locally injected traffic leaves
	// it zero.
	Stamp  sim.Time
	Len    int    // total bytes on the wire (headers + payload)
	Header []byte // bytes the NIC actually materialises in memory
	// WritePayload: materialise the whole payload in memory (security
	// tests); otherwise only the header bytes are written and the rest
	// of the buffer is left as allocated (throughput runs, where moving
	// gigabytes through host RAM would only slow the simulation).
	WritePayload bool
	Payload      []byte // used when WritePayload
	// Corrupt marks a frame mangled in flight (injected link fault); the
	// NIC's hardware checksum validation flags it in the completion.
	Corrupt bool
}

// RXCompletion is handed to the driver's interrupt handler.
type RXCompletion struct {
	Desc    RXDesc
	Seg     Segment
	Written int // bytes the device wrote into the buffer
	// BadCSum reports that the NIC's hardware checksum validation failed
	// (corrupted frame); the driver must drop and recycle the buffer.
	BadCSum bool
}

// NICConfig sizes the NIC model.
type NICConfig struct {
	ID       int // device index (IOMMU identity)
	Ports    int
	RingSize int // RX descriptors per ring
	TxRing   int // TX descriptors per ring
	Rings    int // one per core
	// WireGbps is the per-port, per-direction rate.
	WireGbps float64
	// PCIeGbps bounds aggregate DMA per direction.
	PCIeGbps float64
}

// NIC is the network card model.
type NIC struct {
	Cfg   NICConfig
	se    *sim.Engine
	u     *iommu.IOMMU
	model *perf.Model
	membw *sim.MemController

	// Per-port, per-direction wire links: ingress terminates at this NIC
	// (traffic generators inject into it), egress is unterminated on a
	// standalone machine and wired to a peer NIC or router by a topology.
	ingress []*Link
	egress  []*Link
	// PCIe per direction, plus the aggregate bus ceiling.
	pcieRX  *sim.FluidResource
	pcieTX  *sim.FluidResource
	pcieAgg *sim.FluidResource
	// walker is the IOMMU page-walk unit: IOTLB misses from both
	// directions serialize here (Table 3's bottleneck for DAMN's
	// scattered IOVAs).
	walker *sim.FluidResource

	rings []*rxRing
	txqs  []*txRing
	inj   *faults.Injector

	// ringDevs is the DMA identity each ring uses on the bus — the SR-IOV
	// requester ID. By default every ring carries the physical function's
	// id (Cfg.ID); a tenant manager re-binds its rings to the tenant's
	// virtual function, so that ring's DMAs translate in the tenant's own
	// IOMMU domain and fault attribution lands on the tenant.
	ringDevs []int
	// ringQuar fences individual rings while the rest of the device keeps
	// running — the per-VF quarantine a multi-tenant NIC needs. The
	// whole-device quarantined flag still dominates.
	ringQuar []bool
	// adm, when installed, paces DMA admission per ring — the weighted
	// fair-share scheduler on the shared PCIe/memory ceiling. Nil when
	// tenancy is off: one pointer check on the fast path.
	adm Admission

	// ringCores binds each ring to the core whose interrupt handler serves
	// it — the MSI-X affinity of a real multi-queue NIC. Completion and
	// refill work for a ring always runs on its bound core, which is what
	// keeps a ring's allocations on that core's DAMN shard.
	ringCores []*sim.Core
	// rssTable is the RSS indirection table: hash → ring, round-robin by
	// default (the ethtool -X equal-weight layout).
	rssTable [RSSTableSize]int
	// steer holds exact-match flow-steering rules (the aRFS/ethtool -N
	// analogue): hash → ring, overriding the indirection table. Pinned
	// workloads use it to keep a flow on the core its consumer runs on.
	steer map[uint32]int

	rxHandler func(t *sim.Task, ring int, comps []RXCompletion)
	txHandler func(t *sim.Task, ring int, descs []TXDesc)

	// pollVQ, when a ring has an entry, routes that ring's completions to a
	// poll-mode virtqueue instead of an interrupt (see AttachVirtqueue).
	// Nil for every interrupt-driven configuration: one slice check on the
	// delivery path.
	pollVQ []*Virtqueue

	// quarantined fences the device off the host: ingress is dropped at
	// the wire, posting descriptors fails, no DMA is initiated. The
	// recovery supervisor sets it while a fault domain is being torn down
	// and rebuilt. removed additionally marks surprise hot-removal — the
	// device cannot be resumed, only replaced.
	quarantined bool
	removed     bool

	// Stats.
	RxSegments        uint64
	RxBytes           uint64
	TxSegments        uint64
	TxBytes           uint64
	RxBlocked         uint64 // segments whose DMA faulted
	RxStalls          uint64 // segments parked because the ring was empty
	RxQuarantineDrops uint64 // segments dropped at a quarantined device

	// Free lists recycling the per-packet scheduling records (each holds
	// its event and task closures, bound once at creation), plus the TX
	// payload-probe scratch buffer — the steady-state per-packet path
	// allocates nothing. Records are host-side only: they carry no
	// simulated memory and change no event or task ordering.
	freeArrivals []*rxArrival
	freeRXD      []*rxDispatch
	freeTXD      []*txDispatch
	txProbe      []byte

	// Observability (nil-safe handles; see SetStats).
	rxSegC    *stats.Counter
	rxByteC   *stats.Counter
	txSegC    *stats.Counter
	txByteC   *stats.Counter
	faultC    *stats.Counter
	stallC    *stats.Counter
	quarDropC *stats.Counter
	rxSizeH   *stats.Histogram
	txSizeH   *stats.Histogram
}

// SetStats attaches a metrics registry mirroring the NIC's traffic and DMA
// fault counters, plus segment-size histograms.
func (n *NIC) SetStats(r *stats.Registry) {
	n.rxSegC = r.Counter("device", "nic_rx_segments")
	n.rxByteC = r.Counter("device", "nic_rx_bytes")
	n.txSegC = r.Counter("device", "nic_tx_segments")
	n.txByteC = r.Counter("device", "nic_tx_bytes")
	n.faultC = r.Counter("device", "nic_dma_faults")
	n.stallC = r.Counter("device", "nic_rx_stalls")
	n.quarDropC = r.Counter("device", "nic_quarantine_drops")
	n.rxSizeH = r.Histogram("device", "nic_rx_segment_bytes")
	n.txSizeH = r.Histogram("device", "nic_tx_segment_bytes")
}

// rxRing holds posted descriptors and the flow-controlled backlog. Both
// queues pop via a head index and compact in place when an append would
// grow the array — one backing array serves the ring's whole life instead
// of the pop-reslice/append cycle reallocating per packet.
type rxRing struct {
	descs   []RXDesc
	dhead   int
	pending []Segment // flow-controlled backlog waiting for buffers
	phead   int
	// missed holds completions whose interrupt was lost (injected
	// ComplLoss); the driver's watchdog poll reaps them later.
	missed []missedComp
}

func (r *rxRing) posted() int { return len(r.descs) - r.dhead }

func (r *rxRing) parked() int { return len(r.pending) - r.phead }

func (r *rxRing) popDesc() RXDesc {
	d := r.descs[r.dhead]
	r.dhead++
	if r.dhead == len(r.descs) {
		r.descs = r.descs[:0]
		r.dhead = 0
	}
	return d
}

func (r *rxRing) popPending() Segment {
	s := r.pending[r.phead]
	r.pending[r.phead] = Segment{} // drop payload refs
	r.phead++
	if r.phead == len(r.pending) {
		r.pending = r.pending[:0]
		r.phead = 0
	}
	return s
}

func (r *rxRing) park(seg Segment) {
	if r.phead > 0 && len(r.pending) == cap(r.pending) {
		n := copy(r.pending, r.pending[r.phead:])
		clearSegs(r.pending[n:])
		r.pending = r.pending[:n]
		r.phead = 0
	}
	r.pending = append(r.pending, seg)
}

func clearSegs(s []Segment) {
	for i := range s {
		s[i] = Segment{}
	}
}

type missedComp struct {
	comp   RXCompletion
	lostAt sim.Time
}

type txRing struct {
	inFlight int
}

// NewNIC attaches a NIC to the machine. cores maps ring index to the core
// whose interrupt handler serves it; membw may be nil.
func NewNIC(se *sim.Engine, u *iommu.IOMMU, model *perf.Model, membw *sim.MemController, cores []*sim.Core, cfg NICConfig) *NIC {
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.Rings <= 0 {
		cfg.Rings = len(cores)
	}
	n := &NIC{Cfg: cfg, se: se, u: u, model: model, membw: membw}
	for p := 0; p < cfg.Ports; p++ {
		in := NewLink(fmt.Sprintf("nic%d-port%d-rx", cfg.ID, p), se, cfg.WireGbps)
		in.nic, in.nicPort, in.sink = n, p, false
		n.ingress = append(n.ingress, in)
		n.egress = append(n.egress, NewLink(fmt.Sprintf("nic%d-port%d-tx", cfg.ID, p), se, cfg.WireGbps))
	}
	pcieBytes := cfg.PCIeGbps * 1e9 / 8
	n.pcieRX = sim.NewFluidResource("pcie-rx", pcieBytes)
	n.pcieTX = sim.NewFluidResource("pcie-tx", pcieBytes)
	aggGbps := model.PCIeAggGbps
	if aggGbps <= 0 {
		aggGbps = 2 * cfg.PCIeGbps
	}
	n.pcieAgg = sim.NewFluidResource("pcie-agg", aggGbps*1e9/8)
	if model.IOTLBMissPenalty > 0 {
		n.walker = sim.NewFluidResource("iommu-walker", 1.0/model.IOTLBMissPenalty.Seconds())
	}
	for r := 0; r < cfg.Rings; r++ {
		n.rings = append(n.rings, &rxRing{})
		n.txqs = append(n.txqs, &txRing{})
		n.ringCores = append(n.ringCores, cores[r%len(cores)])
		n.ringDevs = append(n.ringDevs, cfg.ID)
	}
	n.ringQuar = make([]bool, cfg.Rings)
	for i := range n.rssTable {
		n.rssTable[i] = i % cfg.Rings
	}
	return n
}

// RSSTableSize is the number of indirection-table entries (mlx5's default).
const RSSTableSize = 128

// RingFor resolves the RX ring a segment with the given RSS hash lands on:
// an exact-match steering rule if one is installed, the indirection table
// otherwise. Traffic sources use it to learn where flow control for their
// flow is signalled.
func (n *NIC) RingFor(hash uint32) int {
	if ring, ok := n.steer[hash]; ok {
		return ring
	}
	return n.rssTable[hash%RSSTableSize]
}

// SteerFlow installs an exact-match steering rule directing the flow with
// the given RSS hash to a ring (aRFS: deliver where the consumer runs).
func (n *NIC) SteerFlow(hash uint32, ring int) error {
	if ring < 0 || ring >= len(n.rings) {
		return fmt.Errorf("device: steering to ring %d of %d", ring, len(n.rings))
	}
	if n.steer == nil {
		n.steer = make(map[uint32]int)
	}
	n.steer[hash] = ring
	return nil
}

// RingCore returns the core bound to a ring's completion interrupt.
func (n *NIC) RingCore(ring int) *sim.Core { return n.ringCores[ring] }

// BindRingDevice re-binds a ring's DMA identity to a virtual function: from
// now on the ring's transfers translate (and fault) as device dev. Passing
// the NIC's own id restores physical-function behaviour.
func (n *NIC) BindRingDevice(ring, dev int) error {
	if ring < 0 || ring >= len(n.ringDevs) {
		return fmt.Errorf("device: nic %d has no ring %d to bind", n.Cfg.ID, ring)
	}
	n.ringDevs[ring] = dev
	return nil
}

// RingDevice reports the DMA identity a ring currently uses.
func (n *NIC) RingDevice(ring int) int {
	if ring < 0 || ring >= len(n.ringDevs) {
		return n.Cfg.ID
	}
	return n.ringDevs[ring]
}

// Admission paces per-ring DMA admission on the shared bus: AdmitDMA
// returns the extra delay (0 for "go now") a transfer of the given size on
// the given ring must absorb before its DMA completes. Implemented by the
// tenant fair-share scheduler.
type Admission interface {
	AdmitDMA(ring, bytes int, now sim.Time) sim.Time
}

// SetAdmission installs (or with nil removes) the per-ring DMA admission
// pacer.
func (n *NIC) SetAdmission(a Admission) { n.adm = a }

// ID returns the NIC's device index.
func (n *NIC) ID() int { return n.Cfg.ID }

// SetFaults attaches the machine's fault-injection plane: netem-style link
// impairments at this machine's ingress links (drop/corrupt/duplicate/
// reorder) and delayed/lost completion interrupts on delivery.
func (n *NIC) SetFaults(inj *faults.Injector) {
	n.inj = inj
	for _, l := range n.ingress {
		l.inj = inj
	}
}

// OnRX registers the driver's receive interrupt handler.
func (n *NIC) OnRX(h func(t *sim.Task, ring int, comps []RXCompletion)) { n.rxHandler = h }

// OnTXComplete registers the driver's transmit-completion handler.
func (n *NIC) OnTXComplete(h func(t *sim.Task, ring int, descs []TXDesc)) { n.txHandler = h }

// Quarantined reports whether the device is fenced off the host.
func (n *NIC) Quarantined() bool { return n.quarantined }

// Removed reports whether the device was surprise-removed.
func (n *NIC) Removed() bool { return n.removed }

// Quarantine fences the device: from now on ingress segments are dropped at
// the wire, descriptor posting fails and the device initiates no DMA. It
// empties every RX ring and returns the descriptors that were posted or
// sitting in interrupt-lost completions, so the driver can unmap and
// reclaim their buffers; flow-control-parked segments are simply dropped
// (lossless flow control ends where the fault domain does) and their count
// returned. Idempotent — a second call returns nothing new.
func (n *NIC) Quarantine() (reclaim []RXDesc, parkedDropped int) {
	n.quarantined = true
	for _, r := range n.rings {
		reclaim = append(reclaim, r.descs[r.dhead:]...)
		r.descs, r.dhead = nil, 0
		for _, m := range r.missed {
			reclaim = append(reclaim, m.comp.Desc)
		}
		r.missed = nil
		parkedDropped += r.parked()
		r.pending, r.phead = nil, 0
	}
	if parkedDropped > 0 {
		n.RxQuarantineDrops += uint64(parkedDropped)
		n.quarDropC.Add(uint64(parkedDropped))
	}
	return reclaim, parkedDropped
}

// QuarantineRings fences a subset of rings — the per-tenant quarantine:
// their ingress is dropped at the wire, posting fails, no DMA is initiated,
// while every other ring keeps line rate. Returns the posted and
// interrupt-lost descriptors of just those rings for the driver to reclaim,
// plus the count of flow-control-parked segments dropped. Idempotent per
// ring.
func (n *NIC) QuarantineRings(rings []int) (reclaim []RXDesc, parkedDropped int) {
	for _, ring := range rings {
		if ring < 0 || ring >= len(n.rings) {
			continue
		}
		n.ringQuar[ring] = true
		r := n.rings[ring]
		reclaim = append(reclaim, r.descs[r.dhead:]...)
		r.descs, r.dhead = nil, 0
		for _, m := range r.missed {
			reclaim = append(reclaim, m.comp.Desc)
		}
		r.missed = nil
		parkedDropped += r.parked()
		r.pending, r.phead = nil, 0
	}
	if parkedDropped > 0 {
		n.RxQuarantineDrops += uint64(parkedDropped)
		n.quarDropC.Add(uint64(parkedDropped))
	}
	return reclaim, parkedDropped
}

// ResumeRings lifts a per-ring quarantine once the rings' owner has been
// re-admitted (domain re-attached, rings about to be refilled).
func (n *NIC) ResumeRings(rings []int) error {
	if n.removed {
		return fmt.Errorf("device: nic %d was removed; cannot resume rings", n.Cfg.ID)
	}
	for _, ring := range rings {
		if ring < 0 || ring >= len(n.ringQuar) {
			return fmt.Errorf("device: nic %d has no ring %d to resume", n.Cfg.ID, ring)
		}
		n.ringQuar[ring] = false
	}
	return nil
}

// RingQuarantined reports whether a specific ring is fenced (by its own
// quarantine or the whole device's).
func (n *NIC) RingQuarantined(ring int) bool {
	if n.quarantined {
		return true
	}
	if ring < 0 || ring >= len(n.ringQuar) {
		return false
	}
	return n.ringQuar[ring]
}

// Resume lifts a quarantine after the host has rebuilt the device's state
// (domain re-attached, rings about to be refilled). A removed device cannot
// resume — it is no longer there.
func (n *NIC) Resume() error {
	if n.removed {
		return fmt.Errorf("device: nic %d was removed; cannot resume", n.Cfg.ID)
	}
	n.quarantined = false
	return nil
}

// Remove models surprise hot-removal: quarantine semantics with no way
// back. Returns the same reclaim list as Quarantine.
func (n *NIC) Remove() (reclaim []RXDesc, parkedDropped int) {
	n.removed = true
	return n.Quarantine()
}

// Reinsert models hotplugging a replacement device into the slot; the
// device stays quarantined until Resume.
func (n *NIC) Reinsert() { n.removed = false }

// PostRX adds receive buffers to a ring (driver side). Parked segments are
// delivered immediately if buffers were the bottleneck.
func (n *NIC) PostRX(ring int, descs ...RXDesc) error {
	if n.RingQuarantined(ring) {
		return fmt.Errorf("device: nic %d ring %d quarantined; RX post rejected", n.Cfg.ID, ring)
	}
	r, err := n.ring(ring)
	if err != nil {
		return err
	}
	if r.posted()+len(descs) > n.Cfg.RingSize {
		return fmt.Errorf("device: RX ring %d overflow", ring)
	}
	if r.dhead > 0 && len(r.descs)+len(descs) > cap(r.descs) {
		k := copy(r.descs, r.descs[r.dhead:])
		r.descs = r.descs[:k]
		r.dhead = 0
	}
	r.descs = append(r.descs, descs...)
	for r.parked() > 0 && r.posted() > 0 {
		n.deliver(ring, r.popPending())
	}
	return nil
}

// ring resolves a ring index with bounds checking: a bad index from the
// faults plane or a misconfigured workload must surface as a checked error,
// not panic the simulation.
func (n *NIC) ring(ring int) (*rxRing, error) {
	if ring < 0 || ring >= len(n.rings) {
		return nil, fmt.Errorf("device: nic %d has no RX ring %d (rings: %d)", n.Cfg.ID, ring, len(n.rings))
	}
	return n.rings[ring], nil
}

// RXPosted reports the number of free posted buffers in a ring.
func (n *NIC) RXPosted(ring int) (int, error) {
	r, err := n.ring(ring)
	if err != nil {
		return 0, err
	}
	return r.posted(), nil
}

// RXParked reports segments held by flow control because the ring had no
// buffers — the congestion signal a paused sender sees.
func (n *NIC) RXParked(ring int) (int, error) {
	r, err := n.ring(ring)
	if err != nil {
		return 0, err
	}
	return r.parked(), nil
}

// WireRXBacklog returns how far a port's inbound wire has fallen behind —
// the generator's pacing signal.
func (n *NIC) WireRXBacklog(port int) sim.Time { return n.ingress[port].Backlog(n.se.Now()) }

// WireTXBacklog is the outbound equivalent.
func (n *NIC) WireTXBacklog(port int) sim.Time { return n.egress[port].Backlog(n.se.Now()) }

// Ingress returns the link terminating at a port — where a topology (or a
// traffic generator) feeds this machine.
func (n *NIC) Ingress(port int) *Link { return n.ingress[port] }

// Egress returns the link a port transmits onto; a topology connects it to
// a peer NIC or router port.
func (n *NIC) Egress(port int) *Link { return n.egress[port] }

// InjectRX simulates a segment arriving on a port: it enters the port's
// ingress link, which carries the wire pacing and netem-style impairments
// (see Link.Inject), and lands in an RX ring steered by its RSS hash. The
// PCIe and memory-bandwidth resources then pace the DMA; the payload lands
// through the IOMMU; then the ring's bound core takes an interrupt.
func (n *NIC) InjectRX(port int, seg Segment) {
	n.ingress[port].Inject(seg)
}

// arriveFromWire lands a segment forwarded across a terminated link: the
// sender already paid serialization and propagation, so what remains is
// this machine's receive side — quarantine fence, the receiving fault
// plane's link impairments, RSS steering, and delivery. Mirrors
// Link.Inject without the wire reservation (a forwarded segment's wire
// time was charged on the sending link; charging it again would halve the
// usable cross-machine bandwidth).
func (n *NIC) arriveFromWire(l *Link, seg Segment) {
	ring := n.RingFor(seg.Hash)
	if n.RingQuarantined(ring) {
		n.RxQuarantineDrops++
		n.quarDropC.Inc()
		return
	}
	if l.inj.Should(faults.LinkDrop) {
		l.Drops++
		return
	}
	if l.inj.Should(faults.LinkCorrupt) {
		seg.Corrupt = true
	}
	if l.inj.Should(faults.LinkDuplicate) {
		dup := seg
		n.scheduleArrival(n.se.Now(), ring, dup)
	}
	at := n.se.Now()
	if l.inj.Should(faults.LinkReorder) {
		at += l.inj.Duration(faults.LinkReorder, 1*sim.Microsecond, 50*sim.Microsecond)
	}
	n.scheduleArrival(at, ring, seg)
}

// rxArrival carries one segment across its wire time: InjectRX schedules the
// record's fire closure (bound once at creation) instead of allocating a
// fresh closure per segment. The record returns to the free list before
// delivering, so delivery-path re-entry just pops the next record.
type rxArrival struct {
	n    *NIC
	ring int
	seg  Segment
	fire func()
}

func (n *NIC) scheduleArrival(at sim.Time, ring int, seg Segment) {
	var a *rxArrival
	if m := len(n.freeArrivals); m > 0 {
		a = n.freeArrivals[m-1]
		n.freeArrivals = n.freeArrivals[:m-1]
	} else {
		a = &rxArrival{n: n}
		a.fire = func() {
			ring, seg := a.ring, a.seg
			a.seg = Segment{}
			a.n.freeArrivals = append(a.n.freeArrivals, a)
			a.n.tryDeliver(ring, seg)
		}
	}
	a.ring = ring
	a.seg = seg
	n.se.At(at, a.fire)
}

// rxDispatch carries one RX completion from its DMA-done event into the
// interrupt handler. Each completion remains its own event and its own task
// (merging either would change figure output); only the record and its two
// closures are recycled.
type rxDispatch struct {
	n     *NIC
	ring  int
	comps [1]RXCompletion
	fire  func()
	task  func(*sim.Task)
}

func (n *NIC) getRXDispatch() *rxDispatch {
	if m := len(n.freeRXD); m > 0 {
		d := n.freeRXD[m-1]
		n.freeRXD = n.freeRXD[:m-1]
		return d
	}
	d := &rxDispatch{n: n}
	d.fire = func() {
		d.n.ringCores[d.ring].Submit(true, d.task)
	}
	d.task = func(t *sim.Task) {
		if d.n.rxHandler != nil {
			d.n.rxHandler(t, d.ring, d.comps[:1])
		}
		d.comps[0] = RXCompletion{}
		d.n.freeRXD = append(d.n.freeRXD, d)
	}
	return d
}

// txDispatch is the transmit-side twin: its fire closure also retires the
// in-flight descriptor at wire-done time, as the inline closure used to.
type txDispatch struct {
	n     *NIC
	ring  int
	descs [1]TXDesc
	fire  func()
	task  func(*sim.Task)
}

func (n *NIC) getTXDispatch() *txDispatch {
	if m := len(n.freeTXD); m > 0 {
		d := n.freeTXD[m-1]
		n.freeTXD = n.freeTXD[:m-1]
		return d
	}
	d := &txDispatch{n: n}
	d.fire = func() {
		d.n.txqs[d.ring].inFlight--
		d.n.ringCores[d.ring].Submit(true, d.task)
	}
	d.task = func(t *sim.Task) {
		if d.n.txHandler != nil {
			d.n.txHandler(t, d.ring, d.descs[:1])
		}
		d.descs[0] = TXDesc{}
		d.n.freeTXD = append(d.n.freeTXD, d)
	}
	return d
}

func (n *NIC) tryDeliver(ring int, seg Segment) {
	if n.RingQuarantined(ring) {
		// In-flight wire time elapsed before the quarantine hit: the
		// segment dies at the fence instead of parking forever.
		n.RxQuarantineDrops++
		n.quarDropC.Inc()
		return
	}
	r := n.rings[ring]
	if r.posted() == 0 {
		// Lossless flow control (§6.1: "Ethernet flow control on"):
		// park until the driver posts buffers.
		r.park(seg)
		n.RxStalls++
		n.stallC.Inc()
		return
	}
	n.deliver(ring, seg)
}

// deliver performs the DMA and raises the interrupt.
func (n *NIC) deliver(ring int, seg Segment) {
	r := n.rings[ring]
	desc := r.popDesc()
	dev := n.ringDevs[ring]

	now := n.se.Now()
	done := n.pcieRX.Reserve(now, float64(seg.Len))
	if a := n.pcieAgg.Reserve(now, float64(seg.Len)); a > done {
		done = a
	}
	if m := perf.DeviceDMATraffic(n.membw, now, seg.Len, n.model.NICDMAMemFraction); m > done {
		done = m
	}
	if n.adm != nil {
		if extra := n.adm.AdmitDMA(ring, seg.Len, now); extra > 0 {
			done += extra
		}
	}

	// The actual DMA, translated by the IOMMU. The transfer touches every
	// 4 KiB page of the segment; each IOTLB miss is a page walk that
	// occupies the DMA pipeline (Table 3's effect).
	missesBefore := n.u.TLB().Misses
	written, err := n.dmaWriteSegment(dev, desc, seg)
	n.touchTranslations(dev, desc.IOVA, seg.Len, true)
	misses := n.u.TLB().Misses - missesBefore
	if misses > 0 && n.walker != nil {
		if d2 := n.walker.Reserve(now, float64(misses)); d2 > done {
			done = d2
		}
	}

	if err != nil {
		// Blocked by the IOMMU: the segment is lost to the device; the
		// buffer is still returned to the driver with 0 bytes (model of
		// a DMA fault + driver error handling).
		n.RxBlocked++
		n.faultC.Inc()
	}
	n.RxSegments++
	n.RxBytes += uint64(seg.Len)
	n.rxSegC.Inc()
	n.rxByteC.Add(uint64(seg.Len))
	n.rxSizeH.Observe(float64(seg.Len))

	comp := RXCompletion{Desc: desc, Seg: seg, Written: written, BadCSum: seg.Corrupt}
	if n.pollVQ != nil && n.pollVQ[ring] != nil {
		// Poll mode: the completion lands in the used ring at DMA-done time
		// and waits for the driver's busy-poll harvest. There is no
		// interrupt to lose or delay, so the completion-fault injectors
		// don't apply (the bypass loss story is the ARQ layer's).
		n.pollVQ[ring].schedulePublish(done, comp)
		return
	}
	if n.inj.Should(faults.ComplLoss) {
		// The interrupt is lost: the DMA happened but no handler runs.
		// The completion sits in the ring until the driver's watchdog
		// poll reaps it (ReapMissed).
		r.missed = append(r.missed, missedComp{comp: comp, lostAt: done})
		return
	}
	if n.inj.Should(faults.ComplDelay) {
		extra := n.inj.Duration(faults.ComplDelay, 1*sim.Microsecond, 100*sim.Microsecond)
		n.inj.ObserveRecovery(faults.ComplDelay, extra)
		done += extra
	}
	d := n.getRXDispatch()
	d.ring = ring
	d.comps[0] = comp
	n.se.At(done, d.fire)
}

// ReapMissed pops the completions whose interrupts were lost on a ring —
// the device-side half of the driver's NAPI-style watchdog poll. Recovery
// latency (loss to reap) is recorded per completion.
func (n *NIC) ReapMissed(ring int) []RXCompletion {
	r := n.rings[ring]
	if len(r.missed) == 0 {
		return nil
	}
	now := n.se.Now()
	comps := make([]RXCompletion, 0, len(r.missed))
	for _, m := range r.missed {
		comps = append(comps, m.comp)
		lat := now - m.lostAt
		if lat < 0 {
			lat = 0
		}
		n.inj.ObserveRecovery(faults.ComplLoss, lat)
	}
	r.missed = r.missed[:0]
	return comps
}

// MissedCompletions reports interrupt-lost completions awaiting the
// watchdog on a ring.
func (n *NIC) MissedCompletions(ring int) int { return len(n.rings[ring].missed) }

// touchTranslations exercises the IOMMU translation for every page a
// transfer spans (the functional DMA only materialises a prefix, but the
// hardware walks the whole span).
func (n *NIC) touchTranslations(dev int, base iommu.IOVA, span int, write bool) {
	n.u.TranslateSpan(dev, base, span, write) //nolint:errcheck
}

// dmaWriteSegment writes the materialised bytes of a segment into the
// posted buffer through the IOMMU, as the ring's bound device identity.
func (n *NIC) dmaWriteSegment(dev int, desc RXDesc, seg Segment) (int, error) {
	payload := seg.Header
	if seg.WritePayload {
		payload = seg.Payload
	}
	if len(payload) > desc.Size {
		payload = payload[:desc.Size]
	}
	if len(payload) == 0 {
		// Still exercise the translation for the buffer start.
		if _, err := n.u.Translate(dev, desc.IOVA, true); err != nil {
			return 0, err
		}
		return 0, nil
	}
	return n.u.DMAWrite(dev, desc.IOVA, payload)
}

// PostTX queues a transmit descriptor (driver side, after dma_map). The
// NIC fetches the payload by DMA, puts it on the wire of the given port,
// and completes back to the driver.
func (n *NIC) PostTX(ring, port int, desc TXDesc) error {
	if ring < 0 || ring >= len(n.txqs) {
		return fmt.Errorf("device: nic %d has no TX ring %d (rings: %d)", n.Cfg.ID, ring, len(n.txqs))
	}
	if n.RingQuarantined(ring) {
		return fmt.Errorf("device: nic %d ring %d quarantined; TX post rejected", n.Cfg.ID, ring)
	}
	q := n.txqs[ring]
	if q.inFlight >= n.Cfg.TxRing {
		return fmt.Errorf("device: TX ring %d full", ring)
	}
	q.inFlight++
	dev := n.ringDevs[ring]

	now := n.se.Now()
	done := n.pcieTX.Reserve(now, float64(desc.Size))
	if a := n.pcieAgg.Reserve(now, float64(desc.Size)); a > done {
		done = a
	}
	if m := perf.DeviceDMATraffic(n.membw, now, desc.Size, n.model.NICDMAMemFraction); m > done {
		done = m
	}
	if n.adm != nil {
		if extra := n.adm.AdmitDMA(ring, desc.Size, now); extra > 0 {
			done += extra
		}
	}

	missesBefore := n.u.TLB().Misses
	// Fetch (a prefix of) the payload through the IOMMU; for throughput
	// runs reading one cache line per buffer exercises translation
	// without bulk copying.
	probe := desc.Size
	if probe > 256 {
		probe = 256
	}
	if cap(n.txProbe) < probe {
		n.txProbe = make([]byte, 256)
	}
	buf := n.txProbe[:probe]
	_, err := n.u.DMARead(dev, desc.IOVA, buf)
	n.touchTranslations(dev, desc.IOVA, desc.Size, false)
	misses := n.u.TLB().Misses - missesBefore
	if misses > 0 && n.walker != nil {
		if d2 := n.walker.Reserve(now, float64(misses)); d2 > done {
			done = d2
		}
	}
	if err != nil {
		n.RxBlocked++ // reuse the blocked counter for TX faults too
		n.faultC.Inc()
	}

	wireDone := n.egress[port].Reserve(done, desc.Size)
	n.TxSegments++
	n.TxBytes += uint64(desc.Size)
	n.txSegC.Inc()
	n.txByteC.Add(uint64(desc.Size))
	n.txSizeH.Observe(float64(desc.Size))
	d := n.getTXDispatch()
	d.ring = ring
	d.descs[0] = desc
	n.se.At(wireDone, d.fire)
	if eg := n.egress[port]; eg.HasPeer() && desc.Seg.Len > 0 {
		seg := desc.Seg
		seg.Stamp = wireDone
		eg.Forward(wireDone, seg)
	}
	return nil
}

// TXInFlight reports queued transmit descriptors on a ring.
func (n *NIC) TXInFlight(ring int) int { return n.txqs[ring].inFlight }
