package device

import (
	"bytes"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
)

// Malicious is the attacker of §2.1: a compromised DMA-capable device (in
// the paper's scenarios, the NIC itself) that issues DMAs the OS never
// asked for. It can only do what the IOMMU lets it — which is the entire
// point of the evaluation's security claims.
type Malicious struct {
	u *iommu.IOMMU
	// Dev is the hardware identity the attacker DMAs as. The attack
	// model assumes DMAs cannot be spoofed (§2.1), so a compromised NIC
	// attacks with the NIC's own identity.
	Dev int
}

// NewMalicious wraps a device identity with attack helpers.
func NewMalicious(u *iommu.IOMMU, dev int) *Malicious { return &Malicious{u: u, Dev: dev} }

// TryRead attempts a DMA read of n bytes at the given IOVA.
func (m *Malicious) TryRead(v iommu.IOVA, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := m.u.DMARead(m.Dev, v, buf)
	return buf[:got], err
}

// TryWrite attempts a DMA write.
func (m *Malicious) TryWrite(v iommu.IOVA, data []byte) error {
	_, err := m.u.DMAWrite(m.Dev, v, data)
	return err
}

// ScanForSecret sweeps the IOVA range [lo, hi) page by page, reading
// whatever translates, and reports the IOVAs where the pattern was found —
// the "steal secret data" attack of the introduction. The number of
// successful reads is returned too, as a measure of exposed surface.
func (m *Malicious) ScanForSecret(lo, hi iommu.IOVA, pattern []byte) (found []iommu.IOVA, readable int) {
	buf := make([]byte, mem.PageSize)
	for v := lo; v < hi; v += mem.PageSize {
		n, err := m.u.DMARead(m.Dev, v, buf)
		if err != nil || n == 0 {
			continue
		}
		readable++
		if bytes.Contains(buf[:n], pattern) {
			found = append(found, v)
		}
	}
	return found, readable
}

// TOCTTOUFlip repeatedly attempts to overwrite [v, v+len(evil)) — the
// "modify a packet after it passes firewall checks" attack (§4.1). It
// returns true if any write landed.
func (m *Malicious) TOCTTOUFlip(v iommu.IOVA, evil []byte, attempts int) bool {
	landed := false
	for i := 0; i < attempts; i++ {
		if _, err := m.u.DMAWrite(m.Dev, v, evil); err == nil {
			landed = true
		}
	}
	return landed
}
