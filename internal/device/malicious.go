package device

import (
	"bytes"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
)

// Malicious is the attacker of §2.1: a compromised DMA-capable device (in
// the paper's scenarios, the NIC itself) that issues DMAs the OS never
// asked for. It can only do what the IOMMU lets it — which is the entire
// point of the evaluation's security claims.
type Malicious struct {
	u *iommu.IOMMU
	// Dev is the hardware identity the attacker DMAs as. The attack
	// model assumes DMAs cannot be spoofed (§2.1), so a compromised NIC
	// attacks with the NIC's own identity.
	Dev int
}

// NewMalicious wraps a device identity with attack helpers.
func NewMalicious(u *iommu.IOMMU, dev int) *Malicious { return &Malicious{u: u, Dev: dev} }

// TryRead attempts a DMA read of n bytes at the given IOVA.
func (m *Malicious) TryRead(v iommu.IOVA, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := m.u.DMARead(m.Dev, v, buf)
	return buf[:got], err
}

// TryWrite attempts a DMA write.
func (m *Malicious) TryWrite(v iommu.IOVA, data []byte) error {
	_, err := m.u.DMAWrite(m.Dev, v, data)
	return err
}

// ScanForSecret sweeps the IOVA range [lo, hi) page by page, reading
// whatever translates, and reports the IOVAs where the pattern was found —
// the "steal secret data" attack of the introduction. The number of
// successful reads is returned too, as a measure of exposed surface.
func (m *Malicious) ScanForSecret(lo, hi iommu.IOVA, pattern []byte) (found []iommu.IOVA, readable int) {
	buf := make([]byte, mem.PageSize)
	for v := lo; v < hi; v += mem.PageSize {
		n, err := m.u.DMARead(m.Dev, v, buf)
		if err != nil || n == 0 {
			continue
		}
		readable++
		if bytes.Contains(buf[:n], pattern) {
			found = append(found, v)
		}
	}
	return found, readable
}

// ProbeNeighbor mounts the cross-tenant attack: a compromised tenant
// function sweeps a *sibling* tenant's DAMN IOVA regions — the (cpu,
// rights, victimDev) 1 GiB partitions of Figure 3 — attempting to read
// pages the victim's buffers live in. With per-tenant IOMMU domains every
// attempt faults (the attacker's domain simply has no such mapping) and is
// classified as a blocked neighbour probe in iommu.DeviceFaultStats; with
// the IOMMU off, probes land. Returns (blocked, landed) attempt counts.
// cpus bounds the per-CPU regions swept and pages the pages probed per
// region, keeping the attack's fault volume deterministic and bounded.
func (m *Malicious) ProbeNeighbor(victimDev, cpus, pages int) (blocked, landed int) {
	buf := make([]byte, mem.PageSize)
	for cpu := 0; cpu < cpus; cpu++ {
		for _, rights := range []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRead | iommu.PermWrite} {
			base, err := iova.RegionBase(cpu, rights, victimDev)
			if err != nil {
				continue
			}
			for p := 0; p < pages; p++ {
				v := base + iommu.IOVA(p*mem.PageSize)
				if _, err := m.u.DMARead(m.Dev, v, buf); err != nil {
					blocked++
				} else {
					landed++
				}
			}
		}
	}
	return blocked, landed
}

// TOCTTOUFlip repeatedly attempts to overwrite [v, v+len(evil)) — the
// "modify a packet after it passes firewall checks" attack (§4.1). It
// returns true if any write landed.
func (m *Malicious) TOCTTOUFlip(v iommu.IOVA, evil []byte, attempts int) bool {
	landed := false
	for i := 0; i < attempts; i++ {
		if _, err := m.u.DMAWrite(m.Dev, v, evil); err == nil {
			landed = true
		}
	}
	return landed
}
