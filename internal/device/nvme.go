package device

import (
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

// NVMe models the Intel DC P3700 SSD of §6.5: submission/completion queue
// pairs, a command-rate ceiling (~900 K IOPS) and a data-rate ceiling
// (~3.2 GiB/s). Reads DMA-write their data into the host buffer through the
// IOMMU, so the protection schemes constrain it exactly as they do the NIC.
type NVMe struct {
	se    *sim.Engine
	u     *iommu.IOMMU
	model *perf.Model
	cores []*sim.Core

	ID int

	cmdRate *sim.FluidResource // commands/s
	dataBW  *sim.FluidResource // bytes/s

	// Queue depth per queue pair.
	QueueDepth int
	inFlight   []int

	Commands uint64
	Bytes    uint64
	Faults   uint64
}

// NVMeConfig sizes the device.
type NVMeConfig struct {
	ID         int
	MaxIOPS    float64 // command ceiling (P3700: ~900 K 512 B reads)
	MaxBytesPS float64 // data ceiling (~3.2 GiB/s)
	QueuePairs int
	QueueDepth int
}

// DefaultP3700 matches the paper's device.
func DefaultP3700(id int) NVMeConfig {
	return NVMeConfig{ID: id, MaxIOPS: 900e3, MaxBytesPS: 3.2 * (1 << 30), QueuePairs: 12, QueueDepth: 128}
}

// NewNVMe attaches the SSD; cores[i] serves queue pair i's completions.
func NewNVMe(se *sim.Engine, u *iommu.IOMMU, model *perf.Model, cores []*sim.Core, cfg NVMeConfig) *NVMe {
	return &NVMe{
		se:         se,
		u:          u,
		model:      model,
		cores:      cores,
		ID:         cfg.ID,
		cmdRate:    sim.NewFluidResource("nvme-cmd", cfg.MaxIOPS),
		dataBW:     sim.NewFluidResource("nvme-data", cfg.MaxBytesPS),
		QueueDepth: cfg.QueueDepth,
		inFlight:   make([]int, cfg.QueuePairs),
	}
}

// SubmitRead issues an asynchronous read of size bytes into the buffer at
// iova (already dma_mapped by the caller) on queue pair qp. done runs in
// interrupt context on the queue pair's core when the command completes.
func (d *NVMe) SubmitRead(qp int, v iommu.IOVA, size int, done func(t *sim.Task, err error)) error {
	if qp < 0 || qp >= len(d.inFlight) {
		return fmt.Errorf("device: bad NVMe queue pair %d", qp)
	}
	if d.inFlight[qp] >= d.QueueDepth {
		return fmt.Errorf("device: NVMe queue %d full", qp)
	}
	d.inFlight[qp]++
	now := d.se.Now()
	end := d.cmdRate.Reserve(now, 1)
	if e2 := d.dataBW.Reserve(now, float64(size)); e2 > end {
		end = e2
	}
	// The device writes the block through the IOMMU. A one-line probe
	// exercises translation; full payloads are unnecessary for Fig 11.
	probe := size
	if probe > 512 {
		probe = 512
	}
	_, err := d.u.DMAWrite(d.ID, v, make([]byte, probe))
	if err != nil {
		d.Faults++
	}
	d.Commands++
	d.Bytes += uint64(size)
	core := d.cores[qp%len(d.cores)]
	d.se.At(end, func() {
		d.inFlight[qp]--
		core.Submit(true, func(t *sim.Task) { done(t, err) })
	})
	return nil
}

// InFlight reports outstanding commands on a queue pair.
func (d *NVMe) InFlight(qp int) int { return d.inFlight[qp] }
