package device

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/sim"
)

// Link is one direction of a network cable: a serialization (bandwidth)
// resource, a propagation latency, and the netem-style impairment point
// (drop / corrupt / duplicate / reorder) drawn from the receiving machine's
// fault plane. The wire model used to live inside NIC.InjectRX; extracting
// it makes the wire a first-class topology edge while the NIC keeps only
// PCIe, IOMMU and ring pacing.
//
// A link is owned by its sending side: the NIC's per-port ingress links
// (what standalone traffic generators inject into) and egress links (where
// PostTX serializes outbound segments) are built with the NIC; router
// output ports are links built by the topology. Each link has exactly one
// serialization resource — whoever puts bytes on the wire reserves it once,
// so a cross-machine hop is paced at the sender and never double-charged at
// the receiver.
//
// Cross-shard delivery goes through the sched hook: when the two ends of
// the link live on different logical processes of a sim.Cluster, the
// topology routes the arrival through the sending shard's outbox instead of
// scheduling directly on the receiving engine. The receiving-side work
// (impairment draws, ring steering, DMA) then runs on the receiver's engine
// in deterministic epoch-merge order.
type Link struct {
	name    string
	se      *sim.Engine
	wire    *sim.FluidResource
	latency sim.Time

	// inj is the receiving side's fault plane; impairments are always
	// drawn where the damage is observed, exactly as the NIC ingress
	// point always did. Nil (router-terminated or sink links) draws
	// nothing.
	inj *faults.Injector

	// Terminus: a NIC port, an arbitrary receive function (router ingress),
	// or nothing (a sink — the standalone NIC's egress, where segments
	// historically died at the wire).
	nic     *NIC
	nicPort int
	fn      func(Segment)
	sink    bool

	// sched schedules receiver-side work; nil means the receiving end
	// shares the sending engine (standalone machine, loopback tests).
	sched func(at sim.Time, fn func())

	// Drops counts segments the link lost to an injected LinkDrop (sink
	// and router links count nothing; NIC termini count on the NIC).
	Drops uint64
}

// NewLink builds an unterminated link owned by the given engine: segments
// forwarded into it die at the far end until a terminus is connected. gbps
// is the serialization rate.
func NewLink(name string, se *sim.Engine, gbps float64) *Link {
	return &Link{name: name, se: se, sink: true,
		wire: sim.NewFluidResource(name, gbps*1e9/8)}
}

// Name returns the link's resource name.
func (l *Link) Name() string { return l.name }

// Latency returns the link's one-way propagation delay.
func (l *Link) Latency() sim.Time { return l.latency }

// SetLatency sets the one-way propagation delay (topology wiring).
func (l *Link) SetLatency(d sim.Time) { l.latency = d }

// SetFaults points the link's impairment draws at an injector — the
// receiving machine's fault plane.
func (l *Link) SetFaults(inj *faults.Injector) { l.inj = inj }

// ConnectNIC terminates the link at a NIC port: forwarded segments arrive
// at that NIC (after serialization + latency), pass the receiving machine's
// link impairments, and are steered to an RX ring. sched, when non-nil,
// routes arrivals across shard boundaries (see sim.Cluster); inj is the
// receiving machine's fault plane.
func (l *Link) ConnectNIC(peer *NIC, port int, latency sim.Time, inj *faults.Injector, sched func(sim.Time, func())) error {
	if peer == nil {
		return fmt.Errorf("device: link %s: nil peer NIC", l.name)
	}
	if port < 0 || port >= peer.Cfg.Ports {
		return fmt.Errorf("device: link %s: peer NIC has no port %d", l.name, port)
	}
	l.nic, l.nicPort, l.fn, l.sink = peer, port, nil, false
	l.latency, l.inj, l.sched = latency, inj, sched
	return nil
}

// ConnectFunc terminates the link at an arbitrary receiver (a router's
// ingress): forwarded segments arrive at fn after serialization + latency.
func (l *Link) ConnectFunc(latency sim.Time, fn func(Segment), sched func(sim.Time, func())) {
	l.fn, l.nic, l.sink = fn, nil, false
	l.latency, l.sched = latency, sched
}

// HasPeer reports whether the link is terminated (segments forwarded into
// it reach something).
func (l *Link) HasPeer() bool { return !l.sink }

// Backlog reports how far the wire has fallen behind at time now — the
// sending side's pacing signal.
func (l *Link) Backlog(now sim.Time) sim.Time { return l.wire.Backlog(now) }

// Reserve serializes size bytes onto the wire starting no earlier than
// start and returns when the last byte leaves.
func (l *Link) Reserve(start sim.Time, size int) sim.Time {
	return l.wire.Reserve(start, float64(size))
}

// Forward carries a segment that finished serializing at wireDone to the
// link's terminus: it arrives latency later, on the receiving side's
// engine. The sender must have Reserved the wire already (PostTX and the
// router do); unterminated links drop the segment at the far end, which is
// exactly the standalone NIC's historical egress behaviour.
func (l *Link) Forward(wireDone sim.Time, seg Segment) {
	if l.sink {
		return
	}
	at := wireDone + l.latency
	if l.sched != nil {
		l.sched(at, func() { l.arrive(seg) })
		return
	}
	l.se.At(at, func() { l.arrive(seg) })
}

// arrive runs on the receiving side once serialization and propagation have
// elapsed: the impairment point for forwarded traffic, then the terminus.
func (l *Link) arrive(seg Segment) {
	if l.fn != nil {
		l.fn(seg)
		return
	}
	if l.nic != nil {
		l.nic.arriveFromWire(l, seg)
	}
}

// Inject is the receiving-side entry for locally injected traffic — the
// standalone testbed's remote-generator model, where segments materialize
// at the NIC-facing end of the wire. The sequence (quarantine fence, link
// impairments, wire serialization, reorder hold-back, arrival) is exactly
// the historical NIC.InjectRX path, so single-machine runs are
// byte-identical to the pre-Link NIC; the impairment draws come from this
// link's injector in the same order, so fault schedules and their digests
// are preserved too.
func (l *Link) Inject(seg Segment) {
	n := l.nic
	ring := n.RingFor(seg.Hash)
	if n.RingQuarantined(ring) {
		// A fenced (or absent) device terminates the link: the segment
		// still occupies the wire (the remote sender cannot know), then
		// dies at the fence — consuming no host resources and drawing no
		// fault-injection decisions. Charging wire time keeps the link
		// paced; otherwise a generator polling the backlog would spin.
		l.wire.Reserve(l.se.Now(), float64(seg.Len))
		n.RxQuarantineDrops++
		n.quarDropC.Inc()
		return
	}
	if l.inj.Should(faults.LinkDrop) {
		// Lost on the wire: consumes no host resources, leaves no trace
		// but the injection counter — the stack sees a silent gap.
		return
	}
	if l.inj.Should(faults.LinkCorrupt) {
		seg.Corrupt = true
	}
	if l.inj.Should(faults.LinkDuplicate) {
		// The duplicate pays its own wire time, like a real re-sent frame.
		dup := seg
		dupDone := l.wire.Reserve(l.se.Now(), float64(dup.Len))
		n.scheduleArrival(dupDone+l.latency, ring, dup)
	}
	wireDone := l.wire.Reserve(l.se.Now(), float64(seg.Len))
	if l.inj.Should(faults.LinkReorder) {
		// Hold the segment back so traffic behind it overtakes.
		wireDone += l.inj.Duration(faults.LinkReorder, 1*sim.Microsecond, 50*sim.Microsecond)
	}
	n.scheduleArrival(wireDone+l.latency, ring, seg)
}
