package sim

// SpinLock models a contended kernel spinlock in simulated time using a
// FIFO fluid approximation: an acquirer that arrives while the lock is held
// waits until the current backlog of holders drains. Wait time is charged
// to the acquiring task as busy (spinning) CPU, which is how Linux's
// invalidation-queue lock burns cycles under strict IOMMU protection
// (§4.1: "the contended lock protecting the invalidation queue").
type SpinLock struct {
	freeAt Time

	// Utilization window (see Utilization).
	winStart Time
	winBusy  Time
	rho      float64

	// Stats.
	Acquisitions uint64
	ContendedFor Time // total time spent waiting
	HeldFor      Time // total time the lock was held
}

// Lock acquires the lock on behalf of task t, holds it for holdCycles
// (converted at the task core's clock), and releases it. The task is
// charged both the spin-wait and the hold time.
func (l *SpinLock) Lock(t *Task, holdCycles float64) {
	hold := t.core.CyclesToTime(holdCycles)
	l.LockFor(t, hold)
}

// LockFor is Lock with an explicit hold duration.
func (l *SpinLock) LockFor(t *Task, hold Time) {
	now := t.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	wait := start - now
	if wait > 0 {
		t.StallUntil(start)
		l.ContendedFor += wait
	}
	t.ChargeTime(hold)
	l.freeAt = start + hold
	l.HeldFor += hold
	l.winBusy += hold
	l.Acquisitions++
}

// ContendedAt reports whether the lock is (still) held at the given time —
// an arriving acquirer would have to spin.
func (l *SpinLock) ContendedAt(now Time) bool { return l.freeAt > now }

// Utilization returns the lock's recent busy fraction, computed over
// rolling ~50 us windows. Callers use it to model contention-dependent
// hold-time inflation (cache-line bouncing): handing a contended lock
// between sockets costs far more than re-acquiring a warm one.
func (l *SpinLock) Utilization(now Time) float64 {
	l.roll(now)
	return l.rho
}

const spinLockWindow = 50 * Microsecond

func (l *SpinLock) roll(now Time) {
	if l.winStart == 0 && l.winBusy == 0 && l.rho == 0 {
		l.winStart = now
		return
	}
	if now < l.winStart+spinLockWindow {
		return
	}
	span := now - l.winStart
	if span <= 0 {
		return
	}
	l.rho = float64(l.winBusy) / float64(span)
	if l.rho > 1 {
		l.rho = 1
	}
	l.winBusy = 0
	l.winStart = now
}

// FluidResource models a bandwidth-limited shared resource (the memory
// controller, a NIC port's wire, the PCIe link) as a single fluid server:
// work arrives in units (bytes), drains at Rate units per second, and
// arrivals queue FIFO. Backlog tells producers (the NIC model) how far the
// resource has fallen behind, which is the throttling signal the paper
// describes for shadow buffers ("the OS throttles its network I/O rate
// because the NIC does not empty its rings sufficiently fast", §6.1).
type FluidResource struct {
	Name string
	// Rate is capacity in units per second.
	Rate float64

	freeAt Time
	used   float64 // total units served
}

// NewFluidResource creates a resource with the given capacity.
func NewFluidResource(name string, rate float64) *FluidResource {
	if rate <= 0 {
		panic("sim: fluid resource rate must be positive")
	}
	return &FluidResource{Name: name, Rate: rate}
}

// Reserve enqueues units of work at time now and returns the time the
// transfer completes.
func (r *FluidResource) Reserve(now Time, units float64) Time {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	d := Time(units / r.Rate * float64(Second))
	r.freeAt = start + d
	r.used += units
	return r.freeAt
}

// ReserveTime occupies the resource for a fixed duration (e.g. an IOMMU
// page walk stalling a DMA pipeline) and returns the completion time.
func (r *FluidResource) ReserveTime(now Time, d Time) Time {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + d
	return r.freeAt
}

// Backlog returns how far the resource's queue extends past now.
func (r *FluidResource) Backlog(now Time) Time {
	if r.freeAt <= now {
		return 0
	}
	return r.freeAt - now
}

// Used returns the total units served so far (for bandwidth reporting).
func (r *FluidResource) Used() float64 { return r.used }
