// Package sim is the discrete-event simulation engine underneath the
// evaluation harness. It provides a deterministic event loop over simulated
// time, simulated CPU cores that charge cycle costs, simulated spinlocks
// whose contention serializes in simulated time (reproducing the
// invalidation-lock collapse of strict IOMMU mode), and fluid-flow resources
// that model bandwidth ceilings (the memory controller, NIC wire rate and
// the PCIe link).
//
// The design follows the "real structures, simulated time" rule from
// DESIGN.md: functional kernel code (allocators, IOMMU updates, packet
// processing) executes inline inside event callbacks on the single engine
// goroutine, while its *cost* is charged to simulated cores. All results are
// therefore deterministic and independent of the host machine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/asplos18/damn/internal/stats"
)

// Time is simulated time in picoseconds. One cycle of a 2 GHz core is
// 500 ps; an int64 of picoseconds covers ~106 days of simulated time, far
// beyond the 30-minute Fig 9 run.
type Time int64

// Time unit helpers.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts simulated time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to simulated time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO, deterministically
	fn  func()
	// cancelled events stay in the heap (removal from the middle of a
	// binary heap is O(n)) but are skipped on pop: they neither execute,
	// nor advance time, nor count as processed. When more than half the
	// heap is cancelled the engine compacts it (see compact).
	cancelled bool
	// queued tracks heap membership so cancel of a currently-executing
	// ticker event (popped, not re-enqueued yet) doesn't corrupt the
	// cancelled-entry accounting.
	queued bool
	// pinned events are owned by a long-lived caller (Every reuses one
	// event for every tick); they are never returned to the free pool.
	pinned bool
	// tick points back to the owning ticker for pinned ticker events, so
	// discarding a stopped ticker's cancelled event recycles the whole
	// ticker (struct + bound closures) instead of leaking it to the GC.
	tick *ticker
}

// ticker is the reusable state behind Every: one pinned event, the wrapper
// and stop closures bound once at construction, and the per-use callback.
// Stopped tickers return to the engine's free list, so a start/stop ticker
// storm allocates nothing at steady state.
type ticker struct {
	e       *Engine
	ev      event
	fn      func()
	period  Time
	stopped bool
	tickFn  func()
	stopFn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil // don't retain the popped event in the backing array
	*h = old[:n-1]
	return e
}

// Engine is the event loop. Not safe for concurrent use: all simulation
// activity happens on the goroutine that calls Run.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// free recycles popped event structs so the schedule/run hot loop
	// allocates nothing at steady state (the pool grows to the peak number
	// of in-flight events and no further).
	free []*event
	// freeTickers recycles stopped tickers the same way (see Every).
	freeTickers []*ticker

	processed uint64
	cancelled int // cancelled events still sitting in the heap

	// Observability (optional): metric handles are nil-safe, so the hot
	// loop below needs no branches when stats are off.
	stats     *stats.Registry
	evCounter *stats.Counter
	taskCount *stats.Counter
	irqCount  *stats.Counter
	taskHist  *stats.Histogram
	tracer    *stats.Tracer
	tracePID  int
}

// NewEngine returns an engine at time zero with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// SetStats attaches a metrics registry: the engine counts processed events
// and cores record task counts and duration distributions into it.
func (e *Engine) SetStats(r *stats.Registry) {
	e.stats = r
	e.evCounter = r.Counter("sim", "events_processed")
	e.taskCount = r.Counter("sim", "tasks")
	e.irqCount = r.Counter("sim", "irq_tasks")
	e.taskHist = r.Histogram("sim", "task_ps")
}

// Stats returns the attached registry (nil when none).
func (e *Engine) Stats() *stats.Registry { return e.stats }

// SetTracer attaches a trace sink under the given trace process ID; cores
// emit one span per executed task (tid = core ID).
func (e *Engine) SetTracer(t *stats.Tracer, pid int) {
	e.tracer = t
	e.tracePID = pid
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule enqueues fn at absolute time t (>= now), drawing the event from
// the free pool when one is available.
func (e *Engine) schedule(t Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.fn = fn
	e.enqueue(ev, t)
	return ev
}

// enqueue pushes a caller-held event (fresh from the pool, or a ticker's
// reusable pinned event that is currently out of the heap) at time t.
func (e *Engine) enqueue(ev *event, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	ev.cancelled = false
	ev.queued = true
	heap.Push(&e.events, ev)
}

// release returns a popped event to the free pool. Pinned events stay owned
// by their ticker — but a stopped ticker's event leaving the heap for the
// last time (cancelled pop, or compaction) is the ticker's terminal point,
// so the ticker itself is recycled there. Everything else drops its closure
// (so the pool retains no callbacks) and becomes reusable.
func (e *Engine) release(ev *event) {
	if ev.pinned {
		if tk := ev.tick; tk != nil && tk.stopped {
			e.recycleTicker(tk)
		}
		return
	}
	ev.fn = nil
	e.free = append(e.free, ev)
}

// recycleTicker returns a stopped ticker to the free list, dropping the
// caller's callback so the list retains nothing.
func (e *Engine) recycleTicker(tk *ticker) {
	tk.fn = nil
	e.freeTickers = append(e.freeTickers, tk)
}

// cancel neutralizes a queued event: it will be discarded on pop without
// executing, advancing time, or counting as processed. Cancelling an event
// that is not in the heap (a ticker callback cancelling itself mid-tick) is
// a no-op — the ticker's stopped flag already prevents re-enqueueing. When
// cancelled entries outnumber live ones the heap is compacted, so a
// start/stop ticker storm cannot grow the heap without bound.
func (e *Engine) cancel(ev *event) {
	if ev == nil || ev.cancelled || !ev.queued {
		return
	}
	ev.cancelled = true
	e.cancelled++
	if e.cancelled >= compactMinCancelled && e.cancelled > len(e.events)/2 {
		e.compact()
	}
}

// compactMinCancelled keeps tiny heaps from thrashing through O(n) rebuilds.
const compactMinCancelled = 16

// compact rebuilds the heap without its cancelled entries. Pop order is
// fully determined by (at, seq), so dropping dead entries and re-heapifying
// leaves the execution order of live events bit-identical.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			ev.queued = false
			e.release(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.cancelled = 0
	heap.Init(&e.events)
}

// At schedules fn to run at absolute simulated time t (>= now).
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run periodically with the given period until the
// returned stop function is called. Stop cancels the ticker's pending heap
// event, so a stopped ticker no longer shows up in Pending() and never
// inflates Processed(). Stopping from inside fn is allowed.
//
// The ticker owns a single pinned event and two closures bound once at
// construction: each tick re-enqueues the same struct, so steady-state
// ticking allocates nothing. Stopped tickers are recycled through a free
// list once their cancelled event leaves the heap, so a start/stop ticker
// storm is allocation-free too. Repeated calls of the same stop handle are
// no-ops until a later Every reuses the ticker; a stale handle held across
// that reuse must not be called (it would stop the new ticker).
func (e *Engine) Every(period Time, fn func()) (stop func()) {
	var tk *ticker
	if n := len(e.freeTickers); n > 0 {
		tk = e.freeTickers[n-1]
		e.freeTickers[n-1] = nil
		e.freeTickers = e.freeTickers[:n-1]
	} else {
		tk = &ticker{e: e}
		tk.ev.pinned = true
		tk.ev.tick = tk
		tk.tickFn = func() {
			tk.fn()
			if !tk.stopped {
				tk.e.enqueue(&tk.ev, tk.e.now+tk.period)
				return
			}
			// Stopped from inside fn: the event is already out of the
			// heap, so this is the ticker's terminal point.
			tk.e.recycleTicker(tk)
		}
		tk.stopFn = func() {
			if !tk.stopped {
				tk.stopped = true
				tk.e.cancel(&tk.ev)
			}
		}
		tk.ev.fn = tk.tickFn
	}
	tk.fn = fn
	tk.period = period
	tk.stopped = false
	e.enqueue(&tk.ev, e.now+period)
	return tk.stopFn
}

// Run processes events until the queue drains or simulated time reaches
// until (events at exactly until still run). Returns the number of events
// processed.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			next.queued = false
			e.cancelled--
			e.release(next)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		next.queued = false
		e.now = next.at
		fn := next.fn
		e.release(next)
		fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	e.processed += n
	e.evCounter.Add(n)
	return n
}

// RunUntilIdle processes events until none remain.
func (e *Engine) RunUntilIdle() uint64 {
	var n uint64
	for len(e.events) > 0 {
		next := heap.Pop(&e.events).(*event)
		next.queued = false
		if next.cancelled {
			e.cancelled--
			e.release(next)
			continue
		}
		e.now = next.at
		fn := next.fn
		e.release(next)
		fn()
		n++
	}
	e.processed += n
	e.evCounter.Add(n)
	return n
}

// Pending reports the number of queued live events (cancelled tickers
// excluded).
func (e *Engine) Pending() int { return len(e.events) - e.cancelled }

// Processed reports the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }
