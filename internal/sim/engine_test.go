package sim

import (
	"testing"

	"github.com/asplos18/damn/internal/stats"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{1 * Microsecond, 2 * Microsecond, 3 * Microsecond} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	n := e.Run(2 * Microsecond)
	if n != 2 || len(ran) != 2 {
		t.Fatalf("Run processed %d events, want 2", n)
	}
	if e.Now() != 2*Microsecond {
		t.Fatalf("Now = %v after bounded Run", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(1*Microsecond, tick)
		}
	}
	e.After(1*Microsecond, tick)
	e.RunUntilIdle()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("Now = %v, want 5us", e.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	stop := e.Every(10*Millisecond, func() { count++ })
	e.Run(55 * Millisecond)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	stop()
	e.RunUntilIdle()
	if count != 5 {
		t.Fatalf("ticker kept running after stop: %d", count)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine(1)
	e.At(10*Nanosecond, func() {
		// Scheduling in the past must clamp to now, not travel back.
		e.At(0, func() {
			if e.Now() != 10*Nanosecond {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.RunUntilIdle()
}

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestCoreSerialExecution(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0, 0, 2e9) // 2 GHz: 1 cycle = 500 ps
	var starts []Time
	for i := 0; i < 3; i++ {
		c.Submit(false, func(task *Task) {
			starts = append(starts, task.Start())
			task.Charge(2000) // 1 us at 2 GHz
		})
	}
	e.RunUntilIdle()
	want := []Time{0, 1 * Microsecond, 2 * Microsecond}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("task %d started at %v, want %v", i, starts[i], want[i])
		}
	}
	if c.Busy() != 3*Microsecond {
		t.Fatalf("Busy = %v, want 3us", c.Busy())
	}
}

func TestCoreChargeTimeAndStall(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0, 0, 1e9)
	c.Submit(false, func(task *Task) {
		task.Charge(1000) // 1 us at 1 GHz
		if task.Now() != 1*Microsecond {
			t.Errorf("Now after 1000 cycles = %v", task.Now())
		}
		task.ChargeTime(500 * Nanosecond)
		task.StallUntil(3 * Microsecond)
		if task.Now() != 3*Microsecond {
			t.Errorf("Now after stall = %v", task.Now())
		}
		task.StallUntil(1 * Microsecond) // in the past: no-op
		if task.Now() != 3*Microsecond {
			t.Errorf("past StallUntil moved time to %v", task.Now())
		}
	})
	e.RunUntilIdle()
	if c.Busy() != 3*Microsecond {
		t.Fatalf("Busy = %v, want 3us", c.Busy())
	}
}

func TestSpinLockUncontended(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0, 0, 1e9)
	var l SpinLock
	c.Submit(false, func(task *Task) {
		l.Lock(task, 100)
		if task.Now() != 100*Nanosecond {
			t.Errorf("uncontended lock took %v", task.Now())
		}
	})
	e.RunUntilIdle()
	if l.ContendedFor != 0 {
		t.Fatalf("ContendedFor = %v, want 0", l.ContendedFor)
	}
	if l.Acquisitions != 1 {
		t.Fatalf("Acquisitions = %d", l.Acquisitions)
	}
}

func TestSpinLockContention(t *testing.T) {
	// Two cores grab the same lock at the same instant; the second must
	// wait for the first's hold time, charged as spin.
	e := NewEngine(1)
	c0 := NewCore(e, 0, 0, 1e9)
	c1 := NewCore(e, 1, 0, 1e9)
	var l SpinLock
	var end0, end1 Time
	c0.Submit(false, func(task *Task) {
		l.Lock(task, 1000) // hold 1 us
		end0 = task.Now()
	})
	c1.Submit(false, func(task *Task) {
		l.Lock(task, 1000)
		end1 = task.Now()
	})
	e.RunUntilIdle()
	if end0 != 1*Microsecond {
		t.Fatalf("first holder finished at %v", end0)
	}
	if end1 != 2*Microsecond {
		t.Fatalf("second holder finished at %v, want 2us (1us wait + 1us hold)", end1)
	}
	if l.ContendedFor != 1*Microsecond {
		t.Fatalf("ContendedFor = %v, want 1us", l.ContendedFor)
	}
	// The waiting core burned CPU while spinning.
	if c1.Busy() != 2*Microsecond {
		t.Fatalf("waiter Busy = %v, want 2us", c1.Busy())
	}
}

func TestFluidResourceSerializes(t *testing.T) {
	r := NewFluidResource("membw", 1e9) // 1 GB/s
	end1 := r.Reserve(0, 1000)          // 1000 B at 1 GB/s = 1 us
	if end1 != 1*Microsecond {
		t.Fatalf("first reserve ends at %v", end1)
	}
	end2 := r.Reserve(0, 1000)
	if end2 != 2*Microsecond {
		t.Fatalf("second reserve ends at %v, want 2us", end2)
	}
	if r.Backlog(0) != 2*Microsecond {
		t.Fatalf("Backlog = %v", r.Backlog(0))
	}
	if r.Backlog(3*Microsecond) != 0 {
		t.Fatal("backlog should drain")
	}
	if r.Used() != 2000 {
		t.Fatalf("Used = %v", r.Used())
	}
}

func TestFluidResourceIdleGap(t *testing.T) {
	r := NewFluidResource("wire", 1e9)
	r.Reserve(0, 1000)
	// Arriving after the queue drained: starts immediately.
	end := r.Reserve(10*Microsecond, 1000)
	if end != 11*Microsecond {
		t.Fatalf("post-idle reserve ends at %v, want 11us", end)
	}
}

func TestCoreInterruptFlag(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0, 0, 1e9)
	var sawIRQ, sawStd bool
	c.Submit(true, func(task *Task) { sawIRQ = task.Interrupt })
	c.Submit(false, func(task *Task) { sawStd = !task.Interrupt })
	e.RunUntilIdle()
	if !sawIRQ || !sawStd {
		t.Fatal("interrupt flag not propagated")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(99)
		c := NewCore(e, 0, 0, 2e9)
		var log []Time
		for i := 0; i < 50; i++ {
			delay := Time(e.Rand().Intn(1000)) * Nanosecond
			e.After(delay, func() {
				c.Submit(false, func(task *Task) {
					task.Charge(float64(e.Rand().Intn(500)))
					log = append(log, task.Now())
				})
			})
		}
		e.RunUntilIdle()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEveryStopRemovesPendingEvent(t *testing.T) {
	e := NewEngine(1)
	count := 0
	stop := e.Every(10*Millisecond, func() { count++ })
	e.Run(25 * Millisecond) // ticks at 10ms and 20ms; next is queued for 30ms
	if count != 2 {
		t.Fatalf("ticks = %d, want 2", count)
	}
	before := e.Processed()
	stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after stop, want 0 (stale ticker event left in heap)", e.Pending())
	}
	if n := e.RunUntilIdle(); n != 0 {
		t.Fatalf("RunUntilIdle executed %d events after stop, want 0", n)
	}
	if e.Processed() != before {
		t.Fatalf("Processed advanced from %d to %d on a stopped ticker", before, e.Processed())
	}
	if count != 2 {
		t.Fatalf("stopped ticker fired: count = %d", count)
	}
	if e.Now() != 25*Millisecond {
		t.Fatalf("cancelled event advanced time to %v", e.Now())
	}
	stop() // idempotent
}

func TestEveryStopFromInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var stop func()
	stop = e.Every(10*Millisecond, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	e.RunUntilIdle()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3 (stop from inside callback must halt re-arm)", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestEveryStopDoesNotCancelOtherEvents(t *testing.T) {
	e := NewEngine(1)
	stop := e.Every(10*Millisecond, func() {})
	ran := false
	e.At(30*Millisecond, func() { ran = true })
	stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if !ran {
		t.Fatal("unrelated event did not run")
	}
}

func TestTickerStormHeapBounded(t *testing.T) {
	// A start/stop ticker storm must not grow the heap without bound:
	// cancelled entries are compacted once they outnumber live events.
	e := NewEngine(1)
	for i := 0; i < 10000; i++ {
		stop := e.Every(10*Millisecond, func() {})
		stop()
		if len(e.events) > 2*compactMinCancelled+2 {
			t.Fatalf("heap grew to %d entries after %d start/stop cycles", len(e.events), i+1)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after storm, want 0", e.Pending())
	}
	if n := e.RunUntilIdle(); n != 0 {
		t.Fatalf("RunUntilIdle executed %d events after storm, want 0", n)
	}
}

func TestCompactPreservesOrder(t *testing.T) {
	// Force a compaction between scheduling and running, and check live
	// events still execute in exact (at, seq) order.
	e := NewEngine(1)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		// Interleave live events with immediately-stopped tickers (two per
		// live event) so the cancelled count crosses the more-than-half
		// compaction threshold.
		e.At(Time(50-i)*Microsecond, func() { got = append(got, 50-i) })
		for j := 0; j < 2; j++ {
			stop := e.Every(Millisecond, func() {})
			stop()
		}
	}
	if e.cancelled != 0 && len(e.events) >= 150 {
		t.Fatalf("no compaction happened: %d entries, %d cancelled", len(e.events), e.cancelled)
	}
	e.RunUntilIdle()
	if len(got) != 50 {
		t.Fatalf("ran %d events, want 50", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("order broken after compaction: %v", got)
		}
	}
}

func TestEventPoolReuseKeepsDeterminism(t *testing.T) {
	// Heavy schedule/run churn recycles event structs through the pool;
	// the observable schedule must stay identical to a fresh engine's.
	run := func() []Time {
		e := NewEngine(7)
		var log []Time
		var burst func()
		rounds := 0
		burst = func() {
			log = append(log, e.Now())
			for i := 0; i < 8; i++ {
				d := Time(e.Rand().Intn(900)+1) * Nanosecond
				e.After(d, func() { log = append(log, e.Now()) })
			}
			if rounds++; rounds < 40 {
				e.After(Microsecond, burst)
			}
		}
		e.After(Microsecond, burst)
		stop := e.Every(3*Microsecond, func() { log = append(log, -e.Now()) })
		e.Run(60 * Microsecond)
		stop()
		e.RunUntilIdle()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pooled runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScheduleRunSteadyStateAllocs(t *testing.T) {
	// After warmup the schedule→run→recycle cycle must not allocate: the
	// event comes from the pool and returns to it.
	e := NewEngine(1)
	fn := func() {}
	at := Time(0)
	step := func() {
		at += Nanosecond
		e.At(at, fn)
		e.Run(at)
	}
	step() // warm the pool
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("schedule/run steady state allocates %.1f allocs/op, want 0", avg)
	}
}

func TestEverySteadyStateAllocs(t *testing.T) {
	// A ticker reuses one pinned event and one closure for its lifetime:
	// steady-state ticking is allocation-free.
	e := NewEngine(1)
	ticks := 0
	stop := e.Every(Microsecond, func() { ticks++ })
	defer stop()
	at := Time(0)
	tick := func() {
		at += Microsecond
		e.Run(at)
	}
	tick() // warm up
	if avg := testing.AllocsPerRun(200, tick); avg != 0 {
		t.Fatalf("ticker steady state allocates %.1f allocs/tick, want 0", avg)
	}
	if ticks < 200 {
		t.Fatalf("ticker only fired %d times", ticks)
	}
}

func TestEngineStatsCountsEvents(t *testing.T) {
	e := NewEngine(1)
	r := stats.NewRegistry()
	e.SetStats(r)
	for i := 0; i < 4; i++ {
		e.After(Time(i)*Microsecond, func() {})
	}
	e.RunUntilIdle()
	if got := r.Counter("sim", "events_processed").Value(); got != 4 {
		t.Fatalf("sim/events_processed = %d, want 4", got)
	}
}

func TestCoreTaskStatsAndTrace(t *testing.T) {
	e := NewEngine(1)
	r := stats.NewRegistry()
	tr := stats.NewTracer()
	e.SetStats(r)
	e.SetTracer(tr, tr.Process("test"))
	c := NewCore(e, 0, 0, 2e9)
	c.Submit(false, func(t *Task) { t.Charge(2000) })
	c.Submit(true, func(t *Task) { t.Charge(1000) })
	e.RunUntilIdle()
	if got := r.Counter("sim", "tasks").Value(); got != 1 {
		t.Fatalf("sim/tasks = %d, want 1", got)
	}
	if got := r.Counter("sim", "irq_tasks").Value(); got != 1 {
		t.Fatalf("sim/irq_tasks = %d, want 1", got)
	}
	if got := r.Histogram("sim", "task_ps").Count(); got != 2 {
		t.Fatalf("sim/task_ps count = %d, want 2", got)
	}
	// Metadata event + two spans.
	if tr.Len() != 3 {
		t.Fatalf("trace has %d events, want 3", tr.Len())
	}
}
