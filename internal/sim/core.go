package sim

import "fmt"

// Core models one CPU core as a FIFO work server in simulated time. Kernel
// work (syscall-side processing, softirq/interrupt handlers) is submitted as
// tasks; each task's callback executes functionally at its start time and
// charges cycle costs that advance the core's clock. CPU utilization is the
// accumulated busy time over the measurement window.
type Core struct {
	eng *Engine
	// ID is the core index; it doubles as the "cpu idx" field of DAMN's
	// encoded IOVAs (Figure 3 of the paper).
	ID int
	// Node is the NUMA node the core belongs to.
	Node int
	// Hz is the clock rate in cycles per second (the paper's testbed
	// server runs 2 GHz Broadwell cores).
	Hz float64

	freeAt Time
	busy   Time
	// queue is the FIFO run queue: qhead indexes the next task so popping
	// is O(1) without shifting; the slice resets when it drains, keeping
	// one backing array alive for the core's lifetime.
	queue   []*Task
	qhead   int
	running bool
	// free recycles Task structs (and their bound dispatch closures) the
	// same way the engine recycles events: tasks live exactly one
	// dispatch, so the steady state allocates nothing per submission.
	free []*Task
}

// NewCore creates a core attached to the engine.
func NewCore(eng *Engine, id, node int, hz float64) *Core {
	if hz <= 0 {
		panic("sim: core frequency must be positive")
	}
	return &Core{eng: eng, ID: id, Node: node, Hz: hz}
}

// CyclesToTime converts a cycle count on this core to simulated duration.
func (c *Core) CyclesToTime(cycles float64) Time {
	return Time(cycles / c.Hz * float64(Second))
}

// Busy returns the cumulative busy time of the core.
func (c *Core) Busy() Time { return c.busy }

// QueueLen returns the number of tasks waiting or running on the core.
func (c *Core) QueueLen() int {
	n := len(c.queue) - c.qhead
	if c.running {
		n++
	}
	return n
}

// Task is the execution context handed to a task callback. The callback
// charges costs through it; the task's simulated clock (Now) advances as
// costs accrue, so nested resource reservations see a consistent timeline.
type Task struct {
	core *Core
	// Interrupt marks tasks running in interrupt context (NIC completion
	// and RX processing). DAMN keeps separate per-context DMA caches to
	// avoid disabling interrupts (§5.4 "two physical copies").
	Interrupt bool

	start  Time
	cycles float64
	stall  Time // non-cycle charged time (resource waits)
	fn     func(*Task)
	// run is the dispatch-event callback, bound once when the Task struct
	// is first created and reused across recycles — the per-dispatch
	// closure would otherwise be an allocation per submitted task.
	run func()
}

// Core returns the core the task runs on.
func (t *Task) Core() *Core { return t.core }

// Start returns the simulated time the task began executing.
func (t *Task) Start() Time { return t.start }

// Now returns the task's current simulated time: start plus everything
// charged so far.
func (t *Task) Now() Time {
	return t.start + t.core.CyclesToTime(t.cycles) + t.stall
}

// Charge adds cycle cost to the task.
func (t *Task) Charge(cycles float64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: negative charge %f", cycles))
	}
	t.cycles += cycles
}

// ChargeTime adds a fixed simulated duration (e.g. a hardware operation
// latency that does not scale with the core clock).
func (t *Task) ChargeTime(d Time) {
	if d < 0 {
		panic("sim: negative time charge")
	}
	t.stall += d
}

// StallUntil busy-waits the task until absolute time at (no-op if at is in
// the task's past). The waited time counts as consumed CPU, matching a
// spin-wait or a stalled memory pipeline.
func (t *Task) StallUntil(at Time) {
	if now := t.Now(); at > now {
		t.stall += at - now
	}
}

// Elapsed returns the total time the task has consumed.
func (t *Task) Elapsed() Time {
	return t.core.CyclesToTime(t.cycles) + t.stall
}

// Submit enqueues fn as a task on the core. Tasks run FIFO; fn executes at
// the task's start time and may submit further work or schedule events.
// Task structs are recycled; callbacks must not retain the *Task beyond
// their own execution (charging after completion would be a bug anyway —
// the core's clock already advanced past the task).
func (c *Core) Submit(interrupt bool, fn func(*Task)) {
	var t *Task
	if n := len(c.free); n > 0 {
		t = c.free[n-1]
		c.free = c.free[:n-1]
		t.Interrupt = interrupt
		t.start = 0
		t.cycles = 0
		t.stall = 0
		t.fn = fn
	} else {
		t = &Task{core: c, Interrupt: interrupt, fn: fn}
		t.run = func() { t.core.execute(t) }
	}
	c.queue = append(c.queue, t)
	c.dispatch()
}

// dispatch starts the next queued task when the core is free.
func (c *Core) dispatch() {
	if c.running || c.qhead == len(c.queue) {
		return
	}
	t := c.queue[c.qhead]
	c.queue[c.qhead] = nil
	c.qhead++
	if c.qhead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
	}
	c.running = true
	at := c.freeAt
	if now := c.eng.Now(); at < now {
		at = now
	}
	c.eng.At(at, t.run)
}

// execute runs one dispatched task at its start time, accounts its elapsed
// time, recycles the Task struct and starts the next queued task.
func (c *Core) execute(t *Task) {
	t.start = c.eng.Now()
	t.fn(t)
	d := t.Elapsed()
	c.busy += d
	c.freeAt = t.start + d
	c.running = false
	if t.Interrupt {
		c.eng.irqCount.Inc()
	} else {
		c.eng.taskCount.Inc()
	}
	c.eng.taskHist.Observe(float64(d))
	if tr := c.eng.tracer; tr != nil {
		name := "task"
		if t.Interrupt {
			name = "irq"
		}
		tr.Span(c.eng.tracePID, c.ID, name, "core", int64(t.start), int64(d))
	}
	t.fn = nil
	c.free = append(c.free, t)
	c.dispatch()
}
