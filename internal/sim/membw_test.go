package sim

import "testing"

func TestMemControllerIdle(t *testing.T) {
	mc := NewMemController(80e9)
	service, extra := mc.Use(0, 80000)
	if service != Microsecond {
		t.Fatalf("service = %v, want 1us", service)
	}
	if extra != 0 {
		t.Fatalf("idle controller produced queueing delay %v", extra)
	}
	if mc.Used() != 80000 {
		t.Fatalf("Used = %v", mc.Used())
	}
}

func TestMemControllerZeroBytes(t *testing.T) {
	mc := NewMemController(1e9)
	if s, e := mc.Use(0, 0); s != 0 || e != 0 {
		t.Fatal("zero transfer should be free")
	}
}

func TestMemControllerCongestion(t *testing.T) {
	e := NewEngine(1)
	mc := NewMemController(1e9)
	mc.Attach(e)
	// Offer 3 GB/s against a 1 GB/s controller for 2 ms.
	stop := e.Every(10*Microsecond, func() { mc.Use(e.Now(), 30000) })
	e.Run(2 * Millisecond)
	stop()
	rho := mc.Utilization()
	if rho < 1.5 {
		t.Fatalf("utilization %.2f should reflect 3x overload", rho)
	}
	_, extra := mc.Use(e.Now(), 10000)
	service := Time(10000.0 / 1e9 * float64(Second))
	if extra < 10*service {
		t.Fatalf("queueing extra %v should dwarf service %v under overload", extra, service)
	}
}

func TestMemControllerDecaysToIdle(t *testing.T) {
	e := NewEngine(1)
	mc := NewMemController(1e9)
	mc.Attach(e)
	mc.Use(e.Now(), 1000)
	// With no further traffic, the rollover chain must terminate so
	// RunUntilIdle returns.
	n := e.RunUntilIdle()
	if n == 0 {
		t.Fatal("no tick events ran")
	}
	if e.Pending() != 0 {
		t.Fatal("controller kept the engine alive")
	}
}

func TestMemControllerUnattachedIsFunctional(t *testing.T) {
	mc := NewMemController(1e9)
	for i := 0; i < 100; i++ {
		mc.Use(Time(i)*Microsecond, 1e6)
	}
	if mc.Utilization() != 0 {
		t.Fatal("unattached controller should not compute utilization")
	}
	if mc.Used() != 1e8 {
		t.Fatalf("Used = %v", mc.Used())
	}
}

func TestSpinLockUtilization(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0, 0, 1e9)
	var l SpinLock
	// Hold the lock ~60% of the time for a while.
	for i := 0; i < 40; i++ {
		c.Submit(false, func(task *Task) {
			l.LockFor(task, 30*Microsecond)
			task.ChargeTime(20 * Microsecond)
		})
	}
	e.RunUntilIdle()
	rho := l.Utilization(e.Now())
	if rho < 0.3 || rho > 1.0 {
		t.Fatalf("utilization %.2f, want ≈0.6", rho)
	}
	// After a long quiet period the next window reads ≈0.
	quiet := e.Now() + 10*Millisecond
	if got := l.Utilization(quiet); got > 0.2 {
		t.Fatalf("utilization %.2f after quiet period", got)
	}
}
