package sim

// MemController models the shared DRAM controller. Unlike FluidResource —
// a FIFO pipeline suited to devices that reserve in event order — the
// controller is used concurrently by every core at its own task-local
// time, so it is modelled with windowed utilization plus a queueing-delay
// factor: a transfer of B bytes has service time B/Rate, and experiences
// extra queueing delay service×ρ/(1−ρ) where ρ is the recent utilization.
// Under light load the extra is negligible; as aggregate demand approaches
// the ceiling the delay explodes, which is exactly how shadow buffers
// cannibalize the machine (Fig 2, Fig 6) — stalled copies burn CPU and
// throttle the producers.
//
// Utilization windows close on the *engine* clock (tasks charge at
// task-local logical times that interleave out of order, so caller time is
// unusable): the controller arms a tick event whenever traffic flows and
// goes dormant when it stops, keeping RunUntilIdle terminating.
type MemController struct {
	// Rate is capacity in bytes per second.
	Rate float64
	// Window is the utilization-averaging period.
	Window Time

	eng      *Engine
	armed    bool
	winStart Time
	winBytes float64
	rho      float64
	used     float64
	// tickFn is the rollover callback bound once; passing the method
	// value directly would allocate a fresh closure on every re-arm.
	tickFn func()
}

// NewMemController builds a controller with the given capacity. Attach an
// engine with Attach for windowed utilization; unattached controllers
// account traffic but report zero congestion (functional tests).
func NewMemController(rate float64) *MemController {
	if rate <= 0 {
		panic("sim: memory controller rate must be positive")
	}
	return &MemController{Rate: rate, Window: 200 * Microsecond}
}

// Attach ties the controller's utilization windows to the engine clock.
func (m *MemController) Attach(eng *Engine) { m.eng = eng }

// Use accounts a transfer of the given bytes and returns its service time
// and the congestion delay it suffers. The now parameter is accepted for
// interface symmetry; congestion is evaluated against the engine clock.
func (m *MemController) Use(now Time, bytes float64) (service, extra Time) {
	if bytes <= 0 {
		return 0, 0
	}
	m.winBytes += bytes
	m.used += bytes
	m.arm()
	service = Time(bytes / m.Rate * float64(Second))
	if mult := congestionMultiplier(m.rho); mult > 0 {
		extra = Time(float64(service) * mult)
	}
	return service, extra
}

// arm schedules the next window rollover if traffic is flowing.
func (m *MemController) arm() {
	if m.armed || m.eng == nil {
		return
	}
	m.armed = true
	m.winStart = m.eng.Now()
	if m.tickFn == nil {
		m.tickFn = m.tick
	}
	m.eng.After(m.Window, m.tickFn)
}

// tick closes the window on the engine clock.
func (m *MemController) tick() {
	m.armed = false
	span := (m.eng.Now() - m.winStart).Seconds()
	if span <= 0 {
		return
	}
	// Blend with the previous estimate: task execution is bursty at
	// window granularity and raw windows oscillate between overload and
	// empty.
	inst := m.winBytes / (m.Rate * span)
	m.rho = 0.7*m.rho + 0.3*inst
	m.winBytes = 0
	if m.rho > 0.005 {
		// Keep rolling while traffic flows; decay to idle otherwise.
		m.arm()
	}
}

// congestionMultiplier maps utilization to queueing delay (in units of the
// transfer's own service time). Below saturation it is the M/M/1 waiting
// factor ρ/(1−ρ); past ρ=0.9 it continues linearly so that *how far* the
// controller is overloaded still matters — that slope is what makes
// co-runners share bandwidth proportionally (Fig 2: the BFS slows by the
// share the networking traffic takes).
func congestionMultiplier(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho <= 0.9 {
		return rho / (1 - rho)
	}
	return 9 + 200*(rho-0.9)
}

// Utilization returns the last closed window's demand/capacity ratio (can
// exceed 1 under overload).
func (m *MemController) Utilization() float64 { return m.rho }

// Used returns total bytes accounted (for bandwidth reporting).
func (m *MemController) Used() float64 { return m.used }
