package sim

import (
	"fmt"
	"testing"
)

// clusterTrace runs a little 3-shard message-passing system — every shard
// periodically sends work to the next with exactly the lookahead of delay,
// every execution appends to a shared-by-construction trace at the
// receiving side — and returns the trace. With workers=1 the epochs run
// serially; any trace divergence at higher worker counts is a merge-
// determinism bug.
func clusterTrace(t *testing.T, workers int) []string {
	t.Helper()
	const look = 10 * Microsecond
	c := NewCluster(look, workers)
	shards := []*Shard{c.AddShard(1), c.AddShard(2), c.AddShard(3)}

	// The trace is appended to only at epoch barriers' merged deliveries
	// and by local events — all on the owning shard — but the slice itself
	// is shared. That is safe precisely because appends happen in the
	// single-threaded merge-ordered deliveries; a data race here would be
	// caught by -race and would itself be the bug.
	var trace []string
	traces := make([][]string, 3)
	for i, s := range shards {
		i, s := i, s
		var n int
		s.Engine().Every(look, func() {
			n++
			at := s.Engine().Now() + look
			msg := fmt.Sprintf("s%d#%d", i, n)
			dst := shards[(i+1)%3]
			s.Send(dst, at, func() {
				traces[dst.ID()] = append(traces[dst.ID()], fmt.Sprintf("%s@%v", msg, dst.Engine().Now()))
			})
		})
	}
	c.Run(1 * Millisecond)
	for _, tr := range traces {
		trace = append(trace, tr...)
	}
	return trace
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	serial := clusterTrace(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 4, 8} {
		got := clusterTrace(t, workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d events, serial %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: event %d = %q, serial %q", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestClusterMergeOrdersByShardAndSeq(t *testing.T) {
	const look = 5 * Microsecond
	c := NewCluster(look, 1)
	a, b, dst := c.AddShard(1), c.AddShard(2), c.AddShard(3)

	// Shards a and b both send two messages landing at the same instant.
	// The merged execution order must be (shard, seq): a#1, a#2, b#1, b#2
	// regardless of send order inside the epoch.
	var got []string
	at := look // epoch boundary — legal landing time
	b.Engine().At(0, func() {
		b.Send(dst, at, func() { got = append(got, "b1") })
		b.Send(dst, at, func() { got = append(got, "b2") })
	})
	a.Engine().At(0, func() {
		a.Send(dst, at, func() { got = append(got, "a1") })
		a.Send(dst, at, func() { got = append(got, "a2") })
	})
	c.Run(2 * look)
	want := []string{"a1", "a2", "b1", "b2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge order %v, want %v", got, want)
		}
	}
}

func TestClusterSameShardSendIsLocal(t *testing.T) {
	c := NewCluster(10*Microsecond, 1)
	s := c.AddShard(1)
	ran := false
	// A same-shard send below the lookahead is legal: it never crosses the
	// barrier.
	s.Engine().At(0, func() {
		s.Send(s, 1*Microsecond, func() { ran = true })
	})
	c.Run(20 * Microsecond)
	if !ran {
		t.Fatal("same-shard send did not run")
	}
	if c.Epochs() != 2 {
		t.Fatalf("epochs = %d, want 2", c.Epochs())
	}
}

func TestClusterPanicsOnSubLookaheadMessage(t *testing.T) {
	c := NewCluster(10*Microsecond, 1)
	a, b := c.AddShard(1), c.AddShard(2)
	a.Engine().At(0, func() {
		b2 := b
		a.Send(b2, 1*Microsecond, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: cross-shard message lands inside the epoch")
		}
	}()
	c.Run(20 * Microsecond)
}

func TestClusterRunStopsAtUntil(t *testing.T) {
	c := NewCluster(7*Microsecond, 2)
	s := c.AddShard(1)
	var ticks int
	s.Engine().Every(2*Microsecond, func() { ticks++ })
	c.Run(20 * Microsecond)
	if c.Now() != 20*Microsecond {
		t.Fatalf("cluster now = %v", c.Now())
	}
	if s.Engine().Now() != 20*Microsecond {
		t.Fatalf("shard now = %v", s.Engine().Now())
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}
