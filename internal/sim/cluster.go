package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Cluster executes several engines — logical processes, one per simulated
// machine or router — as a conservative parallel discrete-event simulation.
// Shards only interact through cross-shard messages carrying at least the
// cluster's lookahead of propagation delay (link latency), which is the
// classic conservative-synchronization precondition: inside an epoch of
// length lookahead, no shard can affect another shard's present, so all
// shards advance their private event queues concurrently. At the epoch
// barrier the buffered cross-shard messages are merged into their
// destination engines in deterministic (time, source shard, send sequence)
// order, so the engine-level (at, seq) tie-break sees the same enqueue
// order no matter how many host workers ran the epoch. A K-worker run is
// therefore byte-identical to the serial (workers=1) run — the same
// "host-fast, sim-identical" bar the experiment runner sets across jobs,
// now applied inside one run.
type Cluster struct {
	look    Time
	workers int
	now     Time
	shards  []*Shard
	epochs  uint64

	// scratch is the barrier's merge buffer, reused across epochs.
	scratch []xmsg
}

// Shard is one logical process: a private engine plus the outbox of
// cross-shard messages generated during the current epoch. Only the host
// worker running the shard's epoch touches the outbox, so no locking is
// needed; the barrier drains it single-threaded.
type Shard struct {
	id  int
	eng *Engine
	out []xmsg
	seq uint64
}

// xmsg is one buffered cross-shard delivery.
type xmsg struct {
	at  Time
	src int
	seq uint64
	dst *Shard
	fn  func()
}

// NewCluster builds an empty cluster. lookahead must be positive and no
// larger than the smallest cross-shard link latency the topology will use;
// workers <= 1 runs epochs serially (the reference execution).
func NewCluster(lookahead Time, workers int) *Cluster {
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Cluster{look: lookahead, workers: workers}
}

// AddShard creates a new logical process with its own engine.
func (c *Cluster) AddShard(seed int64) *Shard {
	s := &Shard{id: len(c.shards), eng: NewEngine(seed)}
	c.shards = append(c.shards, s)
	return s
}

// Engine returns the shard's private event engine.
func (s *Shard) Engine() *Engine { return s.eng }

// ID returns the shard's index in the cluster.
func (s *Shard) ID() int { return s.id }

// Send schedules fn at absolute time at on the destination shard. Called
// from inside the source shard's epoch (an event callback on its engine).
// Same-shard sends go straight onto the local queue; cross-shard sends are
// buffered and merged at the epoch barrier, which requires at to land at or
// after the epoch boundary — guaranteed when the message carries at least
// the cluster's lookahead of delay.
func (s *Shard) Send(dst *Shard, at Time, fn func()) {
	if dst == s {
		s.eng.At(at, fn)
		return
	}
	s.seq++
	s.out = append(s.out, xmsg{at: at, src: s.id, seq: s.seq, dst: dst, fn: fn})
}

// Lookahead returns the epoch length.
func (c *Cluster) Lookahead() Time { return c.look }

// Workers returns the host worker count epochs run under.
func (c *Cluster) Workers() int { return c.workers }

// Now returns the cluster's epoch-barrier time (every shard's engine has
// advanced at least this far).
func (c *Cluster) Now() Time { return c.now }

// Epochs reports how many epoch barriers have completed.
func (c *Cluster) Epochs() uint64 { return c.epochs }

// Shards returns the cluster's logical processes in ID order.
func (c *Cluster) Shards() []*Shard { return c.shards }

// Run advances every shard to until, one lookahead-bounded epoch at a time.
func (c *Cluster) Run(until Time) {
	for c.now < until {
		end := c.now + c.look
		if end > until {
			end = until
		}
		c.runEpoch(end)
		c.merge(end)
		c.now = end
		c.epochs++
	}
}

// runEpoch advances every shard's engine to end, in parallel when the
// cluster has workers to spare. Each shard's engine state (and everything
// hanging off it — machine, stats, fault plane) is private to the shard, so
// the only shared state inside an epoch is this read-only cluster struct.
func (c *Cluster) runEpoch(end Time) {
	if c.workers <= 1 || len(c.shards) <= 1 {
		for _, s := range c.shards {
			s.eng.Run(end)
		}
		return
	}
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			s.eng.Run(end)
		}(s)
	}
	wg.Wait()
}

// merge drains every shard's outbox into the destination engines, sorted by
// (time, source shard, send sequence). The destination heap orders by
// (time, engine seq), and engine seq is assigned in enqueue order, so this
// sort fully determines the execution order of same-time deliveries —
// independent of which host worker ran which shard. A message landing
// before the epoch boundary would have to rewrite its destination's past;
// that can only come from a topology whose cross-shard latency is below the
// cluster lookahead, which is a construction bug worth dying loudly for.
func (c *Cluster) merge(end Time) {
	msgs := c.scratch[:0]
	for _, s := range c.shards {
		msgs = append(msgs, s.out...)
		// Drop closure refs so the retained outbox array leaks nothing.
		clear(s.out)
		s.out = s.out[:0]
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].at != msgs[j].at {
			return msgs[i].at < msgs[j].at
		}
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].seq < msgs[j].seq
	})
	for i := range msgs {
		m := &msgs[i]
		if m.at < end {
			panic(fmt.Sprintf("sim: cross-shard message at %v lands inside the epoch ending %v (link latency below cluster lookahead %v)",
				m.at, end, c.look))
		}
		m.dst.eng.At(m.at, m.fn)
	}
	clear(msgs)
	c.scratch = msgs[:0]
}
