package experiments

import (
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// Footnote5Row is one configuration of the paper's footnote 5: a single RX
// netperf instance on one port with the Linux-default network
// configuration — 1500-byte MTU, LRO off — where per-packet rates explode
// and IOMMU protection overheads dominate: "a single RX netperf ... will
// approach 20 Gb/s if the IOMMU is turned off. This throughput will further
// drop to around 5 Gb/s if the IOMMU is turned on and deferred is used (or
// half that much if strict is used)".
type Footnote5Row struct {
	Scheme string
	Gbps   float64
}

// footnote5Model derives the default-config cost model: per-1500-byte-packet
// stack costs, and the *unamortized* per-mapping IOVA/IOMMU costs that the
// jumbo+LRO configuration hides (each small mapping pays the full IOVA
// allocator and invalidation price — the regime the ATC'15 scalability work
// attacked).
func footnote5Model() *perf.Model {
	m := perf.Default28Core()
	m.SegmentSize = 1500
	m.RXSegCycles = 800 // per-packet stack cost (no LRO aggregation)
	m.SkbAllocCycles = 180
	m.SkbFreeCycles = 120
	m.MapCycles = 2000 // unamortized IOVA rbtree allocation + PTE setup
	m.UnmapCycles = 1200
	m.DeferredEnqueueCycles = 350
	m.IOTLBInvLatency = 2400 * sim.Nanosecond
	return m
}

// Footnote5 reproduces the footnote: one netperf RX instance, one port,
// MTU 1500, LRO off.
func Footnote5(opts Options) ([]Footnote5Row, error) {
	warm, dur := opts.durations()
	schemes := []testbed.Scheme{
		testbed.SchemeOff, testbed.SchemeDeferred, testbed.SchemeStrict, testbed.SchemeDAMN,
	}
	return runJobs(opts, len(schemes), func(i int, opts Options) (Footnote5Row, error) {
		scheme := schemes[i]
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme:   scheme,
			Model:    footnote5Model(),
			MemBytes: 512 << 20,
			Seed:     opts.Seed,
			RingSize: 256, // small buffers: deeper ring, as drivers configure
			Tracer:   opts.Tracer,
			Faults:   opts.faultConfig(),
		})
		if err != nil {
			return Footnote5Row{}, err
		}
		defer ma.Close()
		res, err := workloads.RunNetperf(workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			RXCores: []int{0}, // a single instance
		})
		if err != nil {
			return Footnote5Row{}, err
		}
		opts.emit("footnote5/"+string(scheme), ma)
		return Footnote5Row{Scheme: string(scheme), Gbps: res.RXGbps}, nil
	})
}

// RenderFootnote5 renders the table as text.
func RenderFootnote5(rows []Footnote5Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Scheme, f1(r.Gbps)})
	}
	return "Footnote 5: single netperf RX, one port, MTU 1500, LRO off (paper: ≈20 / ≈5 / ≈2.5 Gb/s)\n" +
		RenderTable([]string{"scheme", "Gb/s"}, cells)
}
