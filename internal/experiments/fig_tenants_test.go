package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// quickTenants runs a reduced grid (damn scheme only) at quick windows —
// the full 5-scheme × 4-count grid belongs to `make tenants`.
func quickTenants(t *testing.T, n int, attack bool) workloads.TenantsResult {
	t.Helper()
	res, err := workloads.RunTenants(workloads.TenantsConfig{
		Scheme: testbed.SchemeDAMN, Tenants: n, FaultSeed: 3,
		Warmup: 2 * sim.Millisecond, Measure: 4 * sim.Millisecond,
		Attack: attack, AttackLen: 4 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTenantsBlastRadiusGate is the PR's acceptance gate: one compromised
// tenant mounting the full attack — forged capabilities, DMA probes into
// sibling IOVA ranges, a fault storm — must be contained while every
// sibling keeps >= 95% of its clean goodput, with the attacker's DAMN
// generation reclaimed and the allocator audit-clean.
func TestTenantsBlastRadiusGate(t *testing.T) {
	res := quickTenants(t, 4, true)
	if res.VictimRatioMin < 0.95 {
		t.Errorf("victim goodput %.3f of clean, want >= 0.95 (victims %v, clean %v)",
			res.VictimRatioMin, res.VictimGbps, res.CleanGbps[1:])
	}
	if res.AttackerState != "quarantined" && res.AttackerState != "evicted" {
		t.Errorf("attacker ended %s, want quarantined or evicted", res.AttackerState)
	}
	if res.ReleasedPages == 0 {
		t.Error("attacker's DAMN generation not reclaimed")
	}
	if res.DamnLiveChunks < 0 {
		t.Error("conservation audit did not run")
	}
	if res.CrossTenantRecs != 0 {
		t.Errorf("%d fault records leaked onto victim VFs, want 0", res.CrossTenantRecs)
	}
	if res.ProbesLanded != 0 {
		t.Errorf("%d probes landed through per-tenant domains, want 0", res.ProbesLanded)
	}
}

// TestTenantsFigureParallelMatchesSerial: the tenants figure must be
// byte-identical for any worker count. The grid is trimmed via Quick and
// exercised at two Parallel values over identical options.
func TestTenantsFigureParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full tenants grid is slow; run via make tenants")
	}
	serial, err := Tenants(Options{Quick: true, FaultSeed: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Tenants(Options{Quick: true, FaultSeed: 3, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("parallel tenants rows diverge from serial")
	}
	if RenderTenants(serial) != RenderTenants(par) {
		t.Error("rendered tenants text differs between serial and parallel")
	}
}

// TestTenantsSeedReplayFigure: two runs of the same (scheme, count, seed)
// datapoint must agree exactly — the figure is a pure function of its
// seeds.
func TestTenantsSeedReplayFigure(t *testing.T) {
	a := quickTenants(t, 2, true)
	b := quickTenants(t, 2, true)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tenants datapoint replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestTenantsRenderShape: the render includes every scheme and the
// attack-evidence columns.
func TestTenantsRenderShape(t *testing.T) {
	rows := []workloads.TenantsResult{
		{Scheme: "damn", Tenants: 1, AggGbps: 50, JainIndex: 1},
		{Scheme: "damn", Tenants: 4, AggGbps: 100, JainIndex: 0.999,
			Attacked: true, VictimRatioMin: 0.99, AttackerState: "evicted",
			CapDenials: 12, ProbesBlocked: 240, ReleasedPages: 512},
	}
	out := RenderTenants(rows)
	for _, want := range []string{"tenants", "Jain", "victim min", "evicted", "240"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
