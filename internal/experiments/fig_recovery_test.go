package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestRecoveryFigureShape: every scheme's row must show a storm that was
// contained and healed — quarantine happened, the device ended Healthy, and
// recovered throughput is within 5% of the pre-storm steady state.
func TestRecoveryFigureShape(t *testing.T) {
	rows, err := RecoveryFigure(Options{Quick: true, FaultSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(recoverySchemes) {
		t.Fatalf("want %d rows, got %d", len(recoverySchemes), len(rows))
	}
	for _, r := range rows {
		if r.Storms == 0 || r.Quarantines == 0 {
			t.Errorf("%s: storm not detected (%+v)", r.Scheme, r)
		}
		if r.FinalState != "healthy" {
			t.Errorf("%s: final state %s, want healthy", r.Scheme, r.FinalState)
		}
		if r.RecoveredGbps < 0.95*r.SteadyGbps {
			t.Errorf("%s: recovered %.2f Gb/s < 95%% of steady %.2f Gb/s",
				r.Scheme, r.RecoveredGbps, r.SteadyGbps)
		}
	}
	out := RenderRecovery(rows)
	if !strings.Contains(out, "damn") || !strings.Contains(out, "MTTR") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

// TestRecoveryFigureParallelMatchesSerial: the same -fault-seed must yield
// byte-identical recovery output serial and parallel.
func TestRecoveryFigureParallelMatchesSerial(t *testing.T) {
	serial, err := RecoveryFigure(Options{Quick: true, FaultSeed: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RecoveryFigure(Options{Quick: true, FaultSeed: 3, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel recovery rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if RenderRecovery(serial) != RenderRecovery(par) {
		t.Error("rendered recovery text differs between serial and parallel")
	}
}
