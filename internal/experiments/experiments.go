// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each function assembles fresh testbeds, drives the
// paper's workload, and returns typed rows that cmd/damnbench renders and
// bench_test.go wraps as benchmarks. EXPERIMENTS.md records paper-vs-
// measured values for each.
package experiments

import (
	"fmt"
	"strings"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
)

// Options tunes experiment scale. The zero value runs the full-fidelity
// settings used by EXPERIMENTS.md; Quick shrinks windows for tests.
type Options struct {
	Quick bool
	Seed  int64

	// Parallel is the worker count for the experiment runner (see
	// runner.go): every figure fans its scheme × datapoint jobs out across
	// this many workers. 0 means runtime.GOMAXPROCS(0); 1 runs the jobs
	// inline (serial). Output is byte-identical regardless of the value —
	// each job owns its machines and RNG, and results and stats emissions
	// are collected in declaration order.
	Parallel int

	// TopoWorkers is the host worker count multi-machine topologies run
	// under (see internal/topo): each machine of a topology is one shard
	// of a conservative-parallel cluster, and this many host workers
	// advance shards concurrently inside lookahead epochs. 0/1 runs the
	// serial reference execution. Figure output is byte-identical for any
	// value — the epoch merge is deterministic.
	TopoWorkers int

	// FaultRate, when positive, arms the deterministic fault-injection
	// plane on every machine the experiments build, giving each fault kind
	// this per-visit probability (see internal/faults). The degradation
	// paths keep the runs alive; the injected-fault counters land in each
	// machine's stats snapshot.
	FaultRate float64
	// FaultSeed roots the fault schedule (independent of Seed so the
	// workload and the faults can be varied separately).
	FaultSeed int64

	// Recovery attaches the fault-domain supervisor to the chaos harness's
	// machines, so chaos storms get quarantined and healed; cmd/damnbench
	// also uses it to add the recovery figure to a run.
	Recovery bool

	// OnStats, when non-nil, receives each machine's metrics snapshot after
	// its run, labelled "<figure>/<scheme>" (plus a direction or parameter
	// suffix where one figure runs several configurations per scheme).
	OnStats func(label string, snap stats.Snapshot)
	// Tracer, when non-nil, is attached to every machine the experiments
	// build; each machine appears as one process in the Chrome trace.
	Tracer *stats.Tracer
}

// faultConfig builds the machine fault plane from the options; nil when
// injection is off, so fault-free runs carry no injector at all.
func (o Options) faultConfig() *faults.Config {
	if o.FaultRate <= 0 {
		return nil
	}
	return &faults.Config{Seed: o.FaultSeed, Rates: faults.UniformRates(o.FaultRate)}
}

// emit hands a finished machine's metrics to the OnStats hook.
func (o Options) emit(label string, ma *testbed.Machine) {
	if o.OnStats != nil {
		o.OnStats(label, ma.StatsSnapshot())
	}
}

func (o Options) durations() (warm, dur sim.Time) {
	if o.Quick {
		return 10 * sim.Millisecond, 30 * sim.Millisecond
	}
	return 25 * sim.Millisecond, 100 * sim.Millisecond
}

// Per-scenario workload-overhead calibration (cycles per segment on top of
// the model's base costs). These absorb the multi-instance cache, NUMA and
// scheduler effects of the paper's testbed; see EXPERIMENTS.md ("workload
// calibration") for their derivations.
const (
	// extraSingleCore: 4 hot instances pinned to one core (Fig 4).
	extraSingleCore = 0
	// extraMultiCore: 28 instances, cross-socket traffic (Fig 5).
	extraMultiCore = 50000
	// extraBidir: 28+28 instances, ACK competition included separately
	// (Fig 1/6, Table 3).
	extraBidir = 44000
	// extraFig2: 8 hot instances on 4 cores.
	extraFig2 = 8000
	// extraFig8: 14-core RX with the netfilter callback.
	extraFig8 = 50000
	// extraScaling: the RSS scale-out figure — many pure-RSS flows per
	// ring, cross-core demux — pinned so 16 cores stay under the PCIe RX
	// ceiling (106 Gb/s) and the growth curve keeps its bottleneck-free
	// shape all the way up.
	extraScaling = 150000
)

func newMachine(scheme testbed.Scheme, opts Options, memBytes int64, ring int) (*testbed.Machine, error) {
	return testbed.NewMachine(testbed.MachineConfig{
		Scheme:   scheme,
		Model:    perf.Default28Core(),
		MemBytes: memBytes,
		Seed:     opts.Seed,
		RingSize: ring,
		Tracer:   opts.Tracer,
		Faults:   opts.faultConfig(),
	})
}

func seqCores(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func repCores(core, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = core
	}
	return out
}

// RenderTable formats rows as an aligned text table.
func RenderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
