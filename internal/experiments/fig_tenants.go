package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// tenantCounts is the tenant-count axis of the tenants figure.
var tenantCounts = []int{1, 2, 4, 8}

// Tenants measures multi-tenant isolation per scheme × tenant count: clean
// aggregate goodput and Jain's fairness index with N tenants sharing one
// protected NIC, then — for N > 1 — the blast radius of one compromised
// tenant (forged capabilities, neighbour DMA probes, a VF-filtered fault
// storm) on its neighbours while the containment ladder quarantines it.
// One machine per (scheme, count), fanned out by the parallel runner;
// byte-identical output for any worker count.
func Tenants(opts Options) ([]workloads.TenantsResult, error) {
	base := workloads.TenantsConfig{FaultSeed: opts.FaultSeed}
	if opts.Quick {
		base.Warmup = 2 * sim.Millisecond
		base.Measure = 4 * sim.Millisecond
		base.AttackLen = 4 * sim.Millisecond
	}
	type job struct {
		scheme testbed.Scheme
		n      int
	}
	var jobs []job
	for _, s := range testbed.AllSchemes {
		for _, n := range tenantCounts {
			jobs = append(jobs, job{s, n})
		}
	}
	return runJobs(opts, len(jobs), func(i int, jopts Options) (workloads.TenantsResult, error) {
		c := base
		c.Scheme = jobs[i].scheme
		c.Tenants = jobs[i].n
		c.Attack = jobs[i].n > 1
		c.OnMachine = func(ma *testbed.Machine) {
			jopts.emit(fmt.Sprintf("tenants/%s-%d", jobs[i].scheme, jobs[i].n), ma)
		}
		res, err := workloads.RunTenants(c)
		if err != nil {
			return res, fmt.Errorf("tenants %s/%d: %w", jobs[i].scheme, jobs[i].n, err)
		}
		return res, nil
	})
}

// RenderTenants formats the tenants figure: isolation cost (aggregate
// goodput as tenants are added), fairness, and the victim's view of an
// attack — worst neighbour goodput ratio, where the attacker ended up, and
// what the capability gate and per-tenant domains blocked.
func RenderTenants(rows []workloads.TenantsResult) string {
	header := []string{"scheme", "tenants", "agg Gb/s", "Jain", "victim min",
		"attacker", "cap denials", "probes blocked", "probes landed", "reclaimed pages"}
	var cells [][]string
	for _, r := range rows {
		victim, attacker := "-", "-"
		denials, blocked, landed, reclaimed := "-", "-", "-", "-"
		if r.Attacked {
			victim = fmt.Sprintf("%.3f", r.VictimRatioMin)
			attacker = r.AttackerState
			denials = fmt.Sprintf("%d", r.CapDenials)
			blocked = fmt.Sprintf("%d", r.ProbesBlocked)
			landed = fmt.Sprintf("%d", r.ProbesLanded)
			reclaimed = fmt.Sprintf("%d", r.ReleasedPages)
		}
		cells = append(cells, []string{
			r.Scheme, fmt.Sprintf("%d", r.Tenants), f1(r.AggGbps),
			fmt.Sprintf("%.4f", r.JainIndex), victim, attacker,
			denials, blocked, landed, reclaimed,
		})
	}
	return "Tenants — multi-tenant isolation: fairness and one compromised tenant's blast radius\n" +
		RenderTable(header, cells)
}
