package experiments

import (
	"runtime"
	"sync"

	"github.com/asplos18/damn/internal/stats"
)

// The parallel experiment runner. Every figure decomposes into independent
// jobs — one per scheme × datapoint — and each job owns its entire world: a
// private testbed.Machine (engine, memory, IOMMU, RNG) plus a private
// stats.Registry. Nothing is shared between jobs, so they fan out across
// workers freely; determinism is preserved by collecting results and stats
// emissions in declaration order, which keeps the rendered output
// byte-identical to a serial (-parallel 1) run.
//
// Determinism rules for jobs:
//
//  1. A job builds every machine it uses itself (no machine reuse across
//     jobs) and seeds it only from Options and its own spec.
//  2. A job never touches package-level mutable state.
//  3. A job reports stats only through the Options it was handed — the
//     runner buffers those emissions per job and replays them in job order
//     after the fan-out joins, so OnStats observes the serial order even
//     though jobs finish out of order.
//
// A shared Tracer is the one per-run resource jobs cannot own privately
// (every machine appends to the same Chrome trace), so tracing runs force a
// single worker.

// emission is one buffered OnStats call.
type emission struct {
	label string
	snap  stats.Snapshot
}

// workers resolves the worker count for this run: the Parallel option,
// defaulting to GOMAXPROCS, clamped to 1 while tracing.
func (o Options) workers() int {
	if o.Tracer != nil {
		return 1
	}
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes n independent jobs and returns their results in job
// order. job receives its index and the Options it must run under — jobs
// must emit stats through those Options (not the caller's) so the runner
// can replay emissions deterministically. With one worker the jobs run
// inline, exactly like the pre-parallel code. Errors surface in job order:
// the failure reported is the one the serial run would have hit first.
func runJobs[T any](opts Options, n int, job func(i int, jopts Options) (T, error)) ([]T, error) {
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([]T, 0, n)
		for i := 0; i < n; i++ {
			r, err := job(i, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	results := make([]T, n)
	errs := make([]error, n)
	emits := make([][]emission, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jopts := opts
				if opts.OnStats != nil {
					i := i
					jopts.OnStats = func(label string, snap stats.Snapshot) {
						emits[i] = append(emits[i], emission{label, snap})
					}
				}
				results[i], errs[i] = job(i, jopts)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Replay in declaration order: emissions of jobs before the first
	// error are delivered (as a serial run would), then the error.
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for _, em := range emits[i] {
			opts.OnStats(em.label, em.snap)
		}
	}
	return results, nil
}
