package experiments

import (
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// AblationRow is one design-ablation configuration measured on the
// bidirectional netperf workload of Fig 6.
type AblationRow struct {
	Config    string
	TotalGbps float64
	CPUUtil   float64
}

// Ablations quantifies the design choices §5.4 argues for, which the paper
// asserts but does not plot:
//
//   - damn                 — the full design;
//   - damn-single-context  — one DMA-cache copy per core, protected by
//     disabling interrupts around every operation (the paper: "interrupt
//     disabling has measurable negative impact on I/O throughput");
//   - damn-no-dma-cache    — no chunk caching at all: every buffer zeroes,
//     maps, unmaps and invalidates its chunk (why the permanent mapping is
//     the whole point).
//
// Deferred is included as the non-DAMN reference. The workload is the
// CPU-bound single-core RX test of Fig 4a, where allocator-path costs are
// directly visible in throughput.
func Ablations(opts Options) ([]AblationRow, error) {
	schemes := []testbed.Scheme{
		testbed.SchemeDAMN,
		testbed.SchemeDAMNSingleCtx,
		testbed.SchemeDAMNNoCache,
		testbed.SchemeDeferred,
	}
	warm, dur := opts.durations()
	return runJobs(opts, len(schemes), func(i int, opts Options) (AblationRow, error) {
		scheme := schemes[i]
		ma, err := newMachine(scheme, opts, 512<<20, 32)
		if err != nil {
			return AblationRow{}, err
		}
		defer ma.Close()
		res, err := workloads.RunNetperf(workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			RXCores: repCores(0, 4),
		})
		if err != nil {
			return AblationRow{}, err
		}
		opts.emit("ablations/"+string(scheme), ma)
		return AblationRow{
			Config:    string(scheme),
			TotalGbps: res.TotalGbps,
			CPUUtil:   res.CPUUtil * float64(len(ma.Cores)), // one-core scale
		}, nil
	})
}

// RenderAblations renders the ablation table as text.
func RenderAblations(rows []AblationRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Config, f1(r.TotalGbps), pct(r.CPUUtil)})
	}
	return "Design ablations (single-core RX netperf, §5.4's choices quantified)\n" +
		RenderTable([]string{"configuration", "Gb/s", "CPU (1 core)"}, cells)
}
