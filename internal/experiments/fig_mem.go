package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// Fig9Point is one time sample of Fig 9.
type Fig9Point struct {
	TimeSec       float64
	EverPages     int64 // distinct pages that ever held DMA buffers
	CurrentlyMapd int64 // pages currently IOMMU-mapped for the NIC
}

// Fig9 reproduces Figure 9: under stock Linux (deferred), the set of pages
// that have ever been exposed to the device grows without bound while the
// instantaneous mapping count stays flat. The paper samples 30 minutes of
// four netperfs beside an iterative kernel compile; the simulation runs a
// time-scaled version of the same setup (see EXPERIMENTS.md).
func Fig9(opts Options) ([]Fig9Point, error) {
	// One machine sampled over time — a single job, routed through the
	// runner so stats emission follows the same deterministic path as the
	// fanned-out figures.
	pointSets, err := runJobs(opts, 1, func(_ int, opts Options) ([]Fig9Point, error) {
		return fig9Run(opts)
	})
	if err != nil {
		return nil, err
	}
	return pointSets[0], nil
}

func fig9Run(opts Options) ([]Fig9Point, error) {
	total := 10 * sim.Second
	sample := 500 * sim.Millisecond
	if opts.Quick {
		total = 2 * sim.Second
		sample = 100 * sim.Millisecond
	}
	ma, err := newMachine(testbed.SchemeDeferred, opts, 2<<30, 16)
	if err != nil {
		return nil, err
	}
	defer ma.Close()
	if err := ma.FillAllRings(); err != nil {
		return nil, err
	}
	// Four netperf RX instances…
	receivers := map[int]*netstack.Receiver{}
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		if r, ok := receivers[skb.Flow]; ok {
			r.HandleSegment(t, skb)
			return
		}
		skb.Free(t)
	}
	var gens []*workloads.Generator
	for i := 0; i < 4; i++ {
		receivers[i+1] = &netstack.Receiver{K: ma.Kernel}
		g, err := workloads.NewGenerator(ma, i%ma.Model.NICPorts, i, i+1, ma.Model.SegmentSize)
		if err != nil {
			return nil, err
		}
		g.Start()
		gens = append(gens, g)
	}
	// …beside the kernel-compile allocator churn on the other cores.
	kc := workloads.StartKCompile(ma, seqCores(len(ma.Cores))[4:], opts.Seed+7)
	defer kc.Stop()
	defer func() {
		for _, g := range gens {
			g.Stop()
		}
	}()

	var points []Fig9Point
	for now := sim.Time(0); now <= total; now += sample {
		ma.Sim.Run(now)
		points = append(points, Fig9Point{
			TimeSec:       ma.Sim.Now().Seconds(),
			EverPages:     ma.DMA.EverDMAPages(),
			CurrentlyMapd: ma.IOMMU.MappedPages(testbed.NICDeviceID),
		})
	}
	opts.emit("fig9/deferred", ma)
	return points, nil
}

// RenderFig9 renders the series as text.
func RenderFig9(points []Fig9Point) string {
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			fmt.Sprintf("%.1f", p.TimeSec),
			fmt.Sprintf("%d (%d MiB)", p.EverPages, p.EverPages*mem.PageSize>>20),
			fmt.Sprintf("%d (%d MiB)", p.CurrentlyMapd, p.CurrentlyMapd*mem.PageSize>>20),
		})
	}
	return "Figure 9: pages ever vs currently holding DMA buffers (stock Linux/deferred)\n" +
		RenderTable([]string{"t (s)", "ever mapped", "currently mapped"}, cells)
}

// MemUsageRow is one bar of Fig 10.
type MemUsageRow struct {
	Scheme    string
	Direction string // "RX", "TX", "bidir"
	Instances int
	AvgMiB    float64
}

// Fig10 reproduces Figure 10: average kernel memory usage during netperf
// TCP_STREAM runs with growing instance counts, comparing iommu-off with
// DAMN (whose DMA caches recycle buffers, §6.3).
func Fig10(opts Options) ([]MemUsageRow, error) {
	warm, dur := opts.durations()
	counts := []int{4, 8, 16, 28}
	if opts.Quick {
		counts = []int{4, 28}
	}
	type spec struct {
		scheme testbed.Scheme
		dir    string
		n      int
	}
	var specs []spec
	for _, scheme := range []testbed.Scheme{testbed.SchemeOff, testbed.SchemeDAMN} {
		for _, dir := range []string{"RX", "TX", "bidir"} {
			for _, n := range counts {
				specs = append(specs, spec{scheme, dir, n})
			}
		}
	}
	return runJobs(opts, len(specs), func(i int, opts Options) (MemUsageRow, error) {
		scheme, dir, n := specs[i].scheme, specs[i].dir, specs[i].n
		ma, err := newMachine(scheme, opts, 2<<30, 32)
		if err != nil {
			return MemUsageRow{}, err
		}
		defer ma.Close()
		// Sample allocated kernel pages every millisecond.
		var samples []int64
		stop := ma.Sim.Every(sim.Millisecond, func() {
			samples = append(samples, ma.Mem.AllocatedPages())
		})
		cfg := workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			ExtraCycles: extraMultiCore, Wakeup: true,
		}
		switch dir {
		case "RX":
			cfg.RXCores = seqCores(n)
		case "TX":
			cfg.TXCores = seqCores(n)
		default:
			cfg.RXCores = seqCores(n)
			cfg.TXCores = seqCores(n)
		}
		if _, err := workloads.RunNetperf(cfg); err != nil {
			return MemUsageRow{}, err
		}
		stop()
		var sum int64
		for _, s := range samples {
			sum += s
		}
		avg := 0.0
		if len(samples) > 0 {
			avg = float64(sum) / float64(len(samples)) * mem.PageSize / (1 << 20)
		}
		opts.emit(fmt.Sprintf("fig10/%s-%s-%d", scheme, dir, n), ma)
		return MemUsageRow{
			Scheme: string(scheme), Direction: dir, Instances: n, AvgMiB: avg,
		}, nil
	})
}

// RenderFig10 renders the figure as text.
func RenderFig10(rows []MemUsageRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, r.Direction, fmt.Sprintf("%d", r.Instances), fmt.Sprintf("%.0f", r.AvgMiB),
		})
	}
	return "Figure 10: kernel memory usage during netperf TCP_STREAM\n" +
		RenderTable([]string{"scheme", "dir", "instances", "avg MiB"}, cells)
}
