package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/workloads"
)

// ChaosRow is one chaos-run summary: a workload driven under the
// deterministic fault schedule, with the evidence that the stack degraded
// instead of dying.
type ChaosRow struct {
	Workload string
	Scheme   string
	// Metric is the workload's headline number (Gb/s or TPS).
	Metric     float64
	MetricUnit string
	// Injected is the total fired-fault count; Counts the per-kind detail.
	Injected uint64
	Counts   string
	// Digest identifies the fault schedule (equal seed ⇒ equal digest).
	Digest uint64
	// Recovered evidence: fault records read, ITE retries, live chunks.
	FaultRecords uint64
	ITETimeouts  uint64
	// Recovery is the fault-domain supervisor's verdict: "off" when it was
	// not attached, else the NIC's final state plus intervention counts.
	Recovery string
}

// Chaos runs the chaos harness: netperf and memcached under a uniform
// fault schedule rooted at opts.FaultSeed. Unlike the figures, this is not
// a paper experiment — it is the robustness gate that every degradation
// path stays panic-free and conservation holds.
func Chaos(opts Options) ([]ChaosRow, error) {
	rate := opts.FaultRate
	if rate <= 0 {
		rate = 0.002
	}
	cfg := workloads.ChaosConfig{FaultSeed: opts.FaultSeed, FaultRate: rate, Recovery: opts.Recovery}

	// Two independent jobs: each chaos workload builds its own machine.
	runs := []func(opts Options) (ChaosRow, error){
		func(opts Options) (ChaosRow, error) {
			np, err := workloads.RunChaosNetperf(cfg)
			if err != nil {
				return ChaosRow{}, fmt.Errorf("chaos netperf: %w", err)
			}
			if opts.OnStats != nil {
				opts.OnStats("chaos/netperf", np.Snapshot)
			}
			return ChaosRow{
				Workload: "netperf", Scheme: np.Netperf.Scheme,
				Metric: np.Netperf.TotalGbps, MetricUnit: "Gb/s",
				Injected: np.InjectedTotal, Counts: formatRes(&np),
				Digest:       np.ScheduleDigest,
				FaultRecords: np.FaultRecords, ITETimeouts: np.ITETimeouts,
				Recovery: formatRecovery(&np),
			}, nil
		},
		func(opts Options) (ChaosRow, error) {
			mc, err := workloads.RunChaosMemcached(cfg)
			if err != nil {
				return ChaosRow{}, fmt.Errorf("chaos memcached: %w", err)
			}
			if opts.OnStats != nil {
				opts.OnStats("chaos/memcached", mc.Snapshot)
			}
			return ChaosRow{
				Workload: "memcached", Scheme: mc.Memcached.Scheme,
				Metric: mc.Memcached.TPS, MetricUnit: "op/s",
				Injected: mc.InjectedTotal, Counts: formatRes(&mc.ChaosResult),
				Digest:       mc.ScheduleDigest,
				FaultRecords: mc.FaultRecords, ITETimeouts: mc.ITETimeouts,
				Recovery: formatRecovery(&mc.ChaosResult),
			}, nil
		},
	}
	return runJobs(opts, len(runs), func(i int, opts Options) (ChaosRow, error) {
		return runs[i](opts)
	})
}

func formatRes(r *workloads.ChaosResult) string {
	top := ""
	var best uint64
	for k, n := range r.Injected {
		if n > best || (n == best && n > 0 && (top == "" || k < top)) {
			best, top = n, k
		}
	}
	if top == "" {
		return "none"
	}
	return fmt.Sprintf("%d kinds, most %s=%d", len(r.Injected), top, best)
}

// formatRecovery summarises the supervisor's involvement in one chaos run.
func formatRecovery(r *workloads.ChaosResult) string {
	if r.RecoveryFinal == "" || r.RecoveryFinal == "off" {
		return "off"
	}
	return fmt.Sprintf("%s (%d storms, %d resets)", r.RecoveryFinal, r.RecoveryStorms, r.RecoveryResets)
}

// RenderChaos formats the chaos summary.
func RenderChaos(rows []ChaosRow) string {
	header := []string{"workload", "scheme", "result", "faults injected", "fault records", "ITE retries", "recovery", "schedule digest"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload, r.Scheme,
			fmt.Sprintf("%.1f %s", r.Metric, r.MetricUnit),
			fmt.Sprintf("%d (%s)", r.Injected, r.Counts),
			fmt.Sprintf("%d", r.FaultRecords),
			fmt.Sprintf("%d", r.ITETimeouts),
			r.Recovery,
			fmt.Sprintf("%#x", r.Digest),
		})
	}
	return "Chaos harness — workloads under deterministic fault injection\n" +
		RenderTable(header, cells)
}
