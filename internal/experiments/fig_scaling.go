package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// ScalingRow is one point of the RSS scale-out figure: netperf RX
// throughput at a given simulated core count under one scheme.
type ScalingRow struct {
	Scheme  string
	Cores   int
	RXGbps  float64
	CPUUtil float64
}

// scalingCores are the simulated core counts of the figure.
var scalingCores = []int{1, 2, 4, 8, 16}

// Scaling is the multi-queue figure this repo adds beyond the paper: RSS
// spreads flows across one RX ring per core, each ring's NAPI context runs
// on its own core against its own DAMN shard, and throughput is plotted
// against core count. The per-scheme spread is the point — DAMN and
// iommu-off scale near-linearly while strict's invalidation lock flattens —
// and the run doubles as the shard-affinity gate: any completion on a
// foreign core or any out-of-range-CPU shard clamp fails the figure.
func Scaling(opts Options) ([]ScalingRow, error) {
	warm, dur := opts.durations()
	type spec struct {
		scheme testbed.Scheme
		cores  int
	}
	var specs []spec
	for _, scheme := range testbed.AllSchemes {
		for _, n := range scalingCores {
			specs = append(specs, spec{scheme, n})
		}
	}
	// The bypass family rides along as extra columns: same core counts,
	// but each core runs a polling queue pair instead of a NAPI context.
	for _, scheme := range testbed.BypassSchemes {
		for _, n := range scalingCores {
			specs = append(specs, spec{scheme, n})
		}
	}
	return runJobs(opts, len(specs), func(i int, opts Options) (ScalingRow, error) {
		scheme, n := specs[i].scheme, specs[i].cores
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme:   scheme,
			Model:    perf.Default28Core(),
			MemBytes: 1 << 30,
			Seed:     opts.Seed,
			RingSize: 32,
			Cores:    n,
			Tracer:   opts.Tracer,
			Faults:   opts.faultConfig(),
		})
		if err != nil {
			return ScalingRow{}, err
		}
		defer ma.Close()
		if testbed.IsBypass(scheme) {
			// Polling path: no interrupt driver, so the wrong-core and
			// shard-clamp invariants don't apply — each queue pair is
			// pinned to its poll core by construction.
			res, err := workloads.RunBypass(workloads.BypassConfig{
				Machine: ma, Rings: n, Warmup: warm, Duration: dur,
			})
			if err != nil {
				return ScalingRow{}, err
			}
			if res.PublishFaults != 0 {
				return ScalingRow{}, fmt.Errorf("scaling: %s/%d cores: %d used-ring publishes faulted", scheme, n, res.PublishFaults)
			}
			opts.emit(fmt.Sprintf("scaling/%s-%d", scheme, n), ma)
			return ScalingRow{
				Scheme: res.Scheme, Cores: n,
				RXGbps: res.RXGbps, CPUUtil: res.CPUUtil,
			}, nil
		}
		res, err := workloads.RunScaling(workloads.ScalingConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			ExtraCycles: extraScaling, Wakeup: true,
		})
		if err != nil {
			return ScalingRow{}, err
		}
		if res.WrongCore != 0 {
			return ScalingRow{}, fmt.Errorf("scaling: %s/%d cores: %d RX completions off their ring's core", scheme, n, res.WrongCore)
		}
		if res.ShardClamps != 0 {
			return ScalingRow{}, fmt.Errorf("scaling: %s/%d cores: %d DAMN shard CPU clamps", scheme, n, res.ShardClamps)
		}
		opts.emit(fmt.Sprintf("scaling/%s-%d", scheme, n), ma)
		return ScalingRow{
			Scheme: res.Scheme, Cores: n,
			RXGbps: res.RXGbps, CPUUtil: res.CPUUtil,
		}, nil
	})
}

// RenderScaling renders the figure: one row per scheme, one throughput
// column per core count.
func RenderScaling(rows []ScalingRow) string {
	header := []string{"scheme"}
	for _, n := range scalingCores {
		header = append(header, fmt.Sprintf("%d-core Gb/s", n))
	}
	byScheme := map[string][]ScalingRow{}
	var order []string
	for _, r := range rows {
		if _, ok := byScheme[r.Scheme]; !ok {
			order = append(order, r.Scheme)
		}
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	var cells [][]string
	for _, s := range order {
		row := []string{s}
		for _, r := range byScheme[s] {
			row = append(row, f1(r.RXGbps))
		}
		cells = append(cells, row)
	}
	return "Scaling: netperf RX throughput vs. simulated cores (RSS, one ring per core)\n" +
		RenderTable(header, cells)
}
