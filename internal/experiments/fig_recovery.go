package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// recoverySchemes is the comparison set of the recovery figure: the two
// legacy protection schemes plus DAMN. (iommu-off is excluded: without
// translation there are no DMA faults to storm, so there is nothing to
// contain or recover.)
var recoverySchemes = []testbed.Scheme{
	testbed.SchemeDeferred, testbed.SchemeStrict, testbed.SchemeDAMN,
}

// RecoveryFigure measures fault-domain containment per scheme: steady-state
// throughput, the dip while a DMA-fault storm rages and the device sits
// quarantined, the time to detect and to repair, and the allocator
// reclamation the reset performed. One machine per scheme, fanned out by
// the parallel runner; byte-identical output for any worker count.
func RecoveryFigure(opts Options) ([]workloads.RecoveryResult, error) {
	cfg := workloads.RecoveryConfig{FaultSeed: opts.FaultSeed}
	if opts.Quick {
		cfg.Warmup = 5 * sim.Millisecond
		cfg.Steady = 8 * sim.Millisecond
		cfg.Measure = 8 * sim.Millisecond
	}
	return runJobs(opts, len(recoverySchemes), func(i int, jopts Options) (workloads.RecoveryResult, error) {
		c := cfg
		c.Scheme = recoverySchemes[i]
		res, err := workloads.RunRecovery(c)
		if err != nil {
			return res, fmt.Errorf("recovery %s: %w", recoverySchemes[i], err)
		}
		return res, nil
	})
}

// fus renders simulated picoseconds as microseconds.
func fus(t sim.Time) string { return fmt.Sprintf("%.1f", float64(t)/1e6) }

// RenderRecovery formats the recovery figure.
func RenderRecovery(rows []workloads.RecoveryResult) string {
	header := []string{"scheme", "steady Gb/s", "storm Gb/s", "recovered Gb/s",
		"detect µs", "MTTR µs", "storms", "resets", "reclaimed pages", "pinned chunks", "final state"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, f1(r.SteadyGbps), f1(r.StormGbps), f1(r.RecoveredGbps),
			fus(r.DetectPS), fus(r.MTTRPS),
			fmt.Sprintf("%d", r.Storms), fmt.Sprintf("%d", r.Resets),
			fmt.Sprintf("%d", r.ReleasedPages), fmt.Sprintf("%d", r.PinnedChunks),
			r.FinalState,
		})
	}
	return "Recovery — throughput dip and time-to-recover under a DMA-fault storm\n" +
		RenderTable(header, cells)
}
