package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// FioRow is one point of Fig 11: IOPS + CPU for one (scheme, block size).
type FioRow struct {
	Scheme    string
	BlockSize int
	KIOPS     float64
	GiBps     float64
	CPUUtil   float64
}

// Fig11 reproduces Figure 11: fio asynchronous direct sequential reads from
// the NVMe SSD under the prior protection schemes (DAMN is incompatible
// with storage, §2.2, so it is not a column — its machines fall back to
// deferred for the SSD anyway).
func Fig11(opts Options) ([]FioRow, error) {
	warm, dur := opts.durations()
	blocks := []int{512, 4 << 10, 32 << 10, 64 << 10}
	if opts.Quick {
		blocks = []int{512, 32 << 10}
	}
	schemes := []testbed.Scheme{
		testbed.SchemeOff, testbed.SchemeDeferred, testbed.SchemeStrict, testbed.SchemeShadow,
	}
	type spec struct {
		scheme testbed.Scheme
		bs     int
	}
	var specs []spec
	for _, scheme := range schemes {
		for _, bs := range blocks {
			specs = append(specs, spec{scheme, bs})
		}
	}
	return runJobs(opts, len(specs), func(i int, opts Options) (FioRow, error) {
		scheme, bs := specs[i].scheme, specs[i].bs
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme: scheme, MemBytes: 256 << 20, Seed: opts.Seed, NoNIC: true,
			Tracer: opts.Tracer,
			Faults: opts.faultConfig(),
		})
		if err != nil {
			return FioRow{}, err
		}
		defer ma.Close()
		nvme := device.NewNVMe(ma.Sim, ma.IOMMU, ma.Model, ma.Cores,
			device.DefaultP3700(testbed.NVMeDeviceID))
		res, err := workloads.RunFio(workloads.FioConfig{
			Machine: ma, NVMe: nvme, BlockSize: bs,
			Warmup: warm, Duration: dur,
		})
		if err != nil {
			return FioRow{}, err
		}
		opts.emit(fmt.Sprintf("fig11/%s-%dB", scheme, bs), ma)
		return FioRow{
			Scheme: string(scheme), BlockSize: bs,
			KIOPS: res.IOPS / 1e3, GiBps: res.GiBps, CPUUtil: res.CPUUtil,
		}, nil
	})
}

// RenderFig11 renders the figure as text.
func RenderFig11(rows []FioRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, fmt.Sprintf("%d", r.BlockSize),
			fmt.Sprintf("%.0f", r.KIOPS), fmt.Sprintf("%.2f", r.GiBps), pct(r.CPUUtil),
		})
	}
	return "Figure 11: fio direct reads from NVMe (12 threads)\n" +
		RenderTable([]string{"scheme", "block B", "K IOPS", "GiB/s", "CPU"}, cells)
}
