package experiments

import (
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// SingleCoreRow is one bar pair of Fig 4: throughput and CPU of a
// single-core netperf TCP_STREAM run (4 instances pinned to core 0).
type SingleCoreRow struct {
	Scheme  string
	Dir     string // "RX" or "TX"
	Gbps    float64
	CPUUtil float64 // of ONE core (the paper's Fig 4 y2-axis)
}

// Fig4 reproduces Figure 4 (a: RX, b: TX). One job per direction × scheme.
func Fig4(opts Options) ([]SingleCoreRow, error) {
	warm, dur := opts.durations()
	specs := crossDirScheme(testbed.AllSchemes)
	return runJobs(opts, len(specs), func(i int, opts Options) (SingleCoreRow, error) {
		dir, scheme := specs[i].dir, specs[i].scheme
		ma, err := newMachine(scheme, opts, 512<<20, 32)
		if err != nil {
			return SingleCoreRow{}, err
		}
		defer ma.Close()
		cfg := workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			ExtraCycles: extraSingleCore,
		}
		if dir == "RX" {
			cfg.RXCores = repCores(0, 4)
		} else {
			cfg.TXCores = repCores(0, 4)
		}
		res, err := workloads.RunNetperf(cfg)
		if err != nil {
			return SingleCoreRow{}, err
		}
		opts.emit("fig4/"+string(scheme)+"-"+dir, ma)
		return SingleCoreRow{
			Scheme: string(scheme), Dir: dir,
			Gbps:    res.TotalGbps,
			CPUUtil: res.CPUUtil * float64(len(ma.Cores)), // one-core scale
		}, nil
	})
}

// dirScheme is one direction × scheme job spec shared by Fig 4 and Fig 5.
type dirScheme struct {
	dir    string
	scheme testbed.Scheme
}

func crossDirScheme(schemes []testbed.Scheme) []dirScheme {
	var specs []dirScheme
	for _, dir := range []string{"RX", "TX"} {
		for _, scheme := range schemes {
			specs = append(specs, dirScheme{dir, scheme})
		}
	}
	return specs
}

// RenderFig4 renders the figure as text.
func RenderFig4(rows []SingleCoreRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Dir, r.Scheme, f1(r.Gbps), pct(r.CPUUtil)})
	}
	return "Figure 4: single-core netperf TCP_STREAM (4 instances on core 0)\n" +
		RenderTable([]string{"dir", "scheme", "Gb/s", "CPU (1 core)"}, cells)
}

// MultiCoreRow is one bar pair of Fig 5: 28 netperf instances, one per core.
type MultiCoreRow struct {
	Scheme  string
	Dir     string
	Gbps    float64
	CPUUtil float64 // of all 28 cores
}

// Fig5 reproduces Figure 5 (a: RX, b: TX). One job per direction × scheme.
func Fig5(opts Options) ([]MultiCoreRow, error) {
	warm, dur := opts.durations()
	specs := crossDirScheme(testbed.AllSchemes)
	return runJobs(opts, len(specs), func(i int, opts Options) (MultiCoreRow, error) {
		dir, scheme := specs[i].dir, specs[i].scheme
		ma, err := newMachine(scheme, opts, 1<<30, 32)
		if err != nil {
			return MultiCoreRow{}, err
		}
		defer ma.Close()
		cfg := workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			ExtraCycles: extraMultiCore, Wakeup: true,
		}
		if dir == "RX" {
			cfg.RXCores = seqCores(len(ma.Cores))
		} else {
			cfg.TXCores = seqCores(len(ma.Cores))
		}
		res, err := workloads.RunNetperf(cfg)
		if err != nil {
			return MultiCoreRow{}, err
		}
		opts.emit("fig5/"+string(scheme)+"-"+dir, ma)
		return MultiCoreRow{
			Scheme: string(scheme), Dir: dir,
			Gbps: res.TotalGbps, CPUUtil: res.CPUUtil,
		}, nil
	})
}

// RenderFig5 renders the figure as text.
func RenderFig5(rows []MultiCoreRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Dir, r.Scheme, f1(r.Gbps), pct(r.CPUUtil)})
	}
	return "Figure 5: multi-core netperf TCP_STREAM (28 instances)\n" +
		RenderTable([]string{"dir", "scheme", "Gb/s", "CPU (28 cores)"}, cells)
}

// BidirRow is one group of Fig 1/Fig 6: bidirectional traffic, with the
// memory-bandwidth bars of Fig 6.
type BidirRow struct {
	Scheme    string
	TotalGbps float64
	RXGbps    float64
	TXGbps    float64
	CPUUtil   float64
	MemBWGBps float64
}

// Fig6 reproduces Figures 1 and 6 (same experiment; Fig 1 shows throughput
// + CPU, Fig 6 adds memory bandwidth): simultaneous RX and TX TCP_STREAM on
// all cores for a theoretical 200 Gb/s.
func Fig6(opts Options) ([]BidirRow, error) {
	return fig6Schemes(opts, testbed.AllSchemes)
}

func fig6Schemes(opts Options, schemes []testbed.Scheme) ([]BidirRow, error) {
	warm, dur := opts.durations()
	return runJobs(opts, len(schemes), func(i int, opts Options) (BidirRow, error) {
		scheme := schemes[i]
		ma, err := newMachine(scheme, opts, 1<<30, 32)
		if err != nil {
			return BidirRow{}, err
		}
		defer ma.Close()
		res, err := workloads.RunNetperf(workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			RXCores:     seqCores(len(ma.Cores)),
			TXCores:     seqCores(len(ma.Cores)),
			ExtraCycles: extraBidir, Wakeup: true,
		})
		if err != nil {
			return BidirRow{}, err
		}
		opts.emit("fig6/"+string(scheme), ma)
		return BidirRow{
			Scheme:    string(scheme),
			TotalGbps: res.TotalGbps, RXGbps: res.RXGbps, TXGbps: res.TXGbps,
			CPUUtil: res.CPUUtil, MemBWGBps: res.MemBWGBps,
		}, nil
	})
}

// RenderFig6 renders the figure as text.
func RenderFig6(rows []BidirRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, f1(r.TotalGbps), f1(r.RXGbps), f1(r.TXGbps),
			pct(r.CPUUtil), f1(r.MemBWGBps),
		})
	}
	return "Figures 1 & 6: bidirectional multi-core netperf TCP_STREAM (peak 200 Gb/s)\n" +
		RenderTable([]string{"scheme", "total Gb/s", "RX", "TX", "CPU", "mem GB/s"}, cells)
}

// Table3Row is one configuration of Table 3.
type Table3Row struct {
	Config     string
	Gbps       float64
	PctOfIOMMU float64 // relative to iommu-off
}

// Table3 reproduces Table 3: the factors behind the damn ↔ iommu-off gap in
// the bidirectional test, using the dense-huge-IOVA variant and DAMN with
// the IOMMU in passthrough.
func Table3(opts Options) ([]Table3Row, error) {
	schemes := []testbed.Scheme{
		testbed.SchemeDAMN,
		testbed.SchemeDAMNHugeDense,
		testbed.SchemeDAMNNoIOMMU,
		testbed.SchemeOff,
	}
	bidir, err := fig6Schemes(opts, schemes)
	if err != nil {
		return nil, err
	}
	base := bidir[len(bidir)-1].TotalGbps
	var rows []Table3Row
	for _, r := range bidir {
		rows = append(rows, Table3Row{
			Config:     r.Scheme,
			Gbps:       r.TotalGbps,
			PctOfIOMMU: r.TotalGbps / base * 100,
		})
	}
	return rows, nil
}

// RenderTable3 renders the table as text.
func RenderTable3(rows []Table3Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Config, f1(r.Gbps), f1(r.PctOfIOMMU) + "%"})
	}
	return "Table 3: factors in the damn vs iommu-off bidirectional gap\n" +
		RenderTable([]string{"configuration", "Gb/s", "% of iommu-off"}, cells)
}
