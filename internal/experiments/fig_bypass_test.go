package experiments

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/testbed"
)

// TestBypassParallelMatchesSerial extends the determinism contract to the
// kernel-bypass figure: same seed, any worker count, repeated runs — the
// rows and the rendered table must be byte-identical. The serial rows also
// pin the figure's safety verdicts, which are measured by attack probes and
// must replay exactly.
func TestBypassParallelMatchesSerial(t *testing.T) {
	serial, err := Bypass(Options{Quick: true, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Bypass(Options{Quick: true, Seed: 1, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Bypass(Options{Quick: true, Seed: 1, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel bypass rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(par, again) {
		t.Errorf("two parallel bypass runs diverge:\n%+v\n%+v", par, again)
	}
	if RenderBypass(serial) != RenderBypass(par) {
		t.Error("rendered bypass figure differs between serial and parallel")
	}

	byScheme := map[string]BypassRow{}
	for _, r := range serial {
		byScheme[r.Scheme] = r
	}
	raw := byScheme[string(testbed.SchemeBypassRaw)]
	prot := byScheme[string(testbed.SchemeBypassProt)]
	if raw.Subpage || raw.NoWindow {
		t.Errorf("bypass-raw measured safe (subpage %v, no-window %v); passthrough protects nothing", raw.Subpage, raw.NoWindow)
	}
	if !prot.Subpage {
		t.Error("bypass-prot pool confinement did not hold: probe outside the registered pool landed")
	}
	if prot.NoWindow {
		t.Error("bypass-prot measured window-free; permanent mappings cannot close the TOCTTOU window")
	}
	for _, scheme := range []string{string(testbed.SchemeOff), string(testbed.SchemeDAMN)} {
		if byScheme[scheme].IdleBurnCores != 0 {
			t.Errorf("%s shows idle burn %.2f cores; interrupt drivers spin nowhere", scheme, byScheme[scheme].IdleBurnCores)
		}
	}
}
