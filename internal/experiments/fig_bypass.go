package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// BypassRow is one row of the kernel-bypass figure: the five kernel schemes
// under single-core netperf RX next to the two bypass flavors under the
// polling driver, with the measured safety verdicts extending Table 1's
// matrix to the bypass world.
type BypassRow struct {
	Scheme string
	// RXGbps is single-core receive goodput (one dedicated core either
	// running the kernel stack or busy-polling).
	RXGbps float64
	// CPUPerMBus is CPU microseconds charged per megabyte delivered —
	// spin time included for the polling schemes, which is the honest
	// comparison the busy-poll trade-off demands.
	CPUPerMBus float64
	// IdleBurnCores is cores' worth of CPU consumed with zero traffic
	// offered (0 for interrupt drivers; ≈1 per poll core for bypass).
	IdleBurnCores float64
	// Subpage / NoWindow are the measured Table 1 safety verdicts:
	// can the device reach co-located kernel data, and can it touch a
	// buffer after the host believes ownership returned.
	Subpage  bool
	NoWindow bool
}

// Bypass runs the kernel-bypass figure: every kernel scheme plus both
// bypass flavors, one job each, with in-figure acceptance checks (raw must
// beat iommu-off, prot must stay within 10% of raw, both must burn idle
// CPU — the defining busy-poll cost).
func Bypass(opts Options) ([]BypassRow, error) {
	warm, dur := opts.durations()
	schemes := make([]testbed.Scheme, 0, len(testbed.AllSchemes)+len(testbed.BypassSchemes))
	schemes = append(schemes, testbed.AllSchemes...)
	schemes = append(schemes, testbed.BypassSchemes...)
	rows, err := runJobs(opts, len(schemes), func(i int, opts Options) (BypassRow, error) {
		scheme := schemes[i]
		if testbed.IsBypass(scheme) {
			return bypassSchemeRow(scheme, opts, warm, dur)
		}
		return kernelSchemeRow(scheme, opts, warm, dur)
	})
	if err != nil {
		return nil, err
	}
	byScheme := map[string]BypassRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	off := byScheme[string(testbed.SchemeOff)]
	raw := byScheme[string(testbed.SchemeBypassRaw)]
	prot := byScheme[string(testbed.SchemeBypassProt)]
	if raw.RXGbps < off.RXGbps {
		return nil, fmt.Errorf("bypass: raw goodput %.1f Gb/s below iommu-off %.1f Gb/s", raw.RXGbps, off.RXGbps)
	}
	if prot.RXGbps < 0.9*raw.RXGbps {
		return nil, fmt.Errorf("bypass: prot goodput %.1f Gb/s more than 10%% below raw %.1f Gb/s", prot.RXGbps, raw.RXGbps)
	}
	if raw.IdleBurnCores <= 0 || prot.IdleBurnCores <= 0 {
		return nil, fmt.Errorf("bypass: idle busy-poll burn missing (raw %.2f, prot %.2f cores)", raw.IdleBurnCores, prot.IdleBurnCores)
	}
	return rows, nil
}

// kernelSchemeRow measures one kernel scheme under the figure's common
// yardstick: single-core netperf RX (Fig 4a's shape), plus the Table 1
// attack probes.
func kernelSchemeRow(scheme testbed.Scheme, opts Options, warm, dur sim.Time) (BypassRow, error) {
	ma, err := newMachine(scheme, opts, 512<<20, 32)
	if err != nil {
		return BypassRow{}, err
	}
	defer ma.Close()
	res, err := workloads.RunNetperf(workloads.NetperfConfig{
		Machine: ma, Warmup: warm, Duration: dur,
		RXCores: repCores(0, 4), ExtraCycles: extraSingleCore,
	})
	if err != nil {
		return BypassRow{}, err
	}
	sub, err := probeSubpage(scheme, opts)
	if err != nil {
		return BypassRow{}, err
	}
	nw, err := probeWindow(scheme, opts)
	if err != nil {
		return BypassRow{}, err
	}
	opts.emit("bypass/"+string(scheme), ma)
	return BypassRow{
		Scheme:     string(scheme),
		RXGbps:     res.RXGbps,
		CPUPerMBus: cpuPerMBus(res.CPUUtil, len(ma.Cores), res.RXGbps),
		Subpage:    sub,
		NoWindow:   nw,
	}, nil
}

// bypassSchemeRow measures one bypass flavor under the polling driver, then
// mounts the bypass attack probes on a fresh machine.
func bypassSchemeRow(scheme testbed.Scheme, opts Options, warm, dur sim.Time) (BypassRow, error) {
	ma, err := newMachine(scheme, opts, 512<<20, 32)
	if err != nil {
		return BypassRow{}, err
	}
	defer ma.Close()
	res, err := workloads.RunBypass(workloads.BypassConfig{
		Machine: ma, Rings: 1, Warmup: warm, Duration: dur,
	})
	if err != nil {
		return BypassRow{}, err
	}
	if res.PublishFaults != 0 {
		return BypassRow{}, fmt.Errorf("bypass: %s: %d used-ring publishes faulted", scheme, res.PublishFaults)
	}
	sub, err := probeBypassReach(scheme, opts)
	if err != nil {
		return BypassRow{}, err
	}
	nw, err := probeBypassWindow(scheme, opts)
	if err != nil {
		return BypassRow{}, err
	}
	opts.emit("bypass/"+string(scheme), ma)
	return BypassRow{
		Scheme:        string(scheme),
		RXGbps:        res.RXGbps,
		CPUPerMBus:    res.CPUPerMBus,
		IdleBurnCores: res.IdleBurnCores,
		Subpage:       sub,
		NoWindow:      nw,
	}, nil
}

// cpuPerMBus converts a whole-machine CPU utilisation into CPU µs per MB
// delivered: util × cores gives seconds of CPU per second, RXGbps × 125
// gives MB per second.
func cpuPerMBus(util float64, cores int, rxGbps float64) float64 {
	if rxGbps <= 0 {
		return 0
	}
	return util * float64(cores) * 1e6 / (rxGbps * 125)
}

// setupProbeDriver assembles a bypass machine with its pool registered —
// the state an attack probe targets.
func setupProbeDriver(scheme testbed.Scheme, opts Options) (*testbed.Machine, *netstack.BypassDriver, error) {
	ma, err := newMachine(scheme, opts, 64<<20, 8)
	if err != nil {
		return nil, nil, err
	}
	d := netstack.NewBypassDriver(ma.Kernel, ma.NIC, 0, testbed.BypassDeviceID,
		scheme == testbed.SchemeBypassProt)
	var setupErr error
	d.Core().Submit(false, func(t *sim.Task) { setupErr = d.Setup(t) })
	ma.Sim.Run(ma.Sim.Now())
	if setupErr != nil {
		ma.Close()
		return nil, nil, setupErr
	}
	return ma, d, nil
}

// probeBypassReach: can the bypass device read kernel memory *outside* its
// registered pool? Under bypass-raw (passthrough) yes — any secret in RAM
// is exposed; under bypass-prot the per-app domain confines DMA to the
// registered hugepages. Returns true when the secret is safe.
func probeBypassReach(scheme testbed.Scheme, opts Options) (bool, error) {
	ma, d, err := setupProbeDriver(scheme, opts)
	if err != nil {
		return false, err
	}
	defer ma.Close()
	defer d.Close()
	secret := []byte("CO-LOCATED-SECRET")
	secretPA, err := ma.Slab.Alloc(256, 0)
	if err != nil {
		return false, err
	}
	ma.Mem.Write(secretPA, secret)
	attacker := device.NewMalicious(ma.IOMMU, testbed.BypassDeviceID)
	got, err := attacker.TryRead(iommu.IOVA(secretPA), len(secret))
	if err != nil {
		return true, nil // blocked: the pool boundary held
	}
	return string(got) != string(secret), nil
}

// probeBypassWindow: can the device still write a pool buffer after the
// application consumed it? With permanent mappings the answer is yes for
// both flavors — the TOCTTOU window never closes, which is exactly the
// protection DAMN's accessor copies add and bypass gives up. Returns true
// when the write is blocked.
func probeBypassWindow(scheme testbed.Scheme, opts Options) (bool, error) {
	ma, d, err := setupProbeDriver(scheme, opts)
	if err != nil {
		return false, err
	}
	defer ma.Close()
	defer d.Close()
	bufPA := d.PoolChunks()[0].PFN().Addr()
	attacker := device.NewMalicious(ma.IOMMU, testbed.BypassDeviceID)
	flipped := attacker.TOCTTOUFlip(iommu.IOVA(bufPA), []byte("evil!"), 3)
	return !flipped, nil
}

// RenderBypass renders the figure.
func RenderBypass(rows []BypassRow) string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, f1(r.RXGbps), f1(r.CPUPerMBus), fmt.Sprintf("%.2f", r.IdleBurnCores),
			mark(r.Subpage), mark(r.NoWindow),
		})
	}
	return "Bypass: single-core RX goodput and CPU cost, kernel stack vs. virtio-style polling\n" +
		"(idle-burn = cores spinning with no traffic; safety columns measured by attack probes)\n" +
		RenderTable([]string{"scheme", "RX Gb/s", "CPU us/MB", "idle-burn", "subpage-safe", "no-window"}, cells)
}
