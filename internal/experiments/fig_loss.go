package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// lossRates is the swept link-loss percentage: each point drops 80% of the
// lost segments cleanly and corrupts the other 20% (checksum-fail drops at
// the completion ring), so both loss flavours feed the retransmission path.
var lossRates = []float64{0, 0.1, 0.5, 1, 2, 5}

// lossChaosRate is the uniform all-kinds fault rate of the figure's chaos
// column: the reliable flows run under the full chaos schedule (DMA faults,
// drops, duplicates, reordering, corruption) with the recovery supervisor
// attached, and the column reports what goodput survives it.
const lossChaosRate = 0.002

// LossRow is one datapoint of the loss-resilience figure: one scheme at one
// loss rate (or, with Chaos set, under the uniform chaos schedule).
type LossRow struct {
	LossPct float64
	Chaos   bool
	Res     workloads.LossResult
}

// Loss is the loss-resilience figure this repo adds beyond the paper: the
// paper's testbed assumes a clean 100 Gb/s wire, but DAMN's claim — IOMMU
// protection without a data-path toll — must also hold when the transport
// is doing real work. Reliable (ARQ) flows run over a lossy link at each
// swept rate, and the figure reports delivered goodput, the retransmission
// rate, and CPU per delivered megabyte. Every retransmitted segment re-pays
// its scheme's RX buffer cost and every ACK pays the TX map/unmap cost, so
// the per-scheme cost asymmetry under loss is measured end to end: strict's
// retransmissions re-cross the strict map/unmap path while DAMN's reuse its
// permanent mapping. The final column is the chaos gate — the same flows
// under the uniform all-kinds fault schedule with the recovery supervisor
// attached.
func Loss(opts Options) ([]LossRow, error) {
	warm, dur := 10*sim.Millisecond, 30*sim.Millisecond
	if opts.Quick {
		warm, dur = 5*sim.Millisecond, 10*sim.Millisecond
	}
	type spec struct {
		scheme testbed.Scheme
		pct    float64
		chaos  bool
	}
	var specs []spec
	for _, scheme := range testbed.AllSchemes {
		for _, pct := range lossRates {
			specs = append(specs, spec{scheme, pct, false})
		}
		specs = append(specs, spec{scheme, 0, true})
	}
	return runJobs(opts, len(specs), func(i int, opts Options) (LossRow, error) {
		sp := specs[i]
		rates := map[faults.Kind]float64{
			faults.LinkDrop:    0.8 * sp.pct / 100,
			faults.LinkCorrupt: 0.2 * sp.pct / 100,
		}
		if sp.chaos {
			rates = faults.UniformRates(lossChaosRate)
		}
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme:   sp.scheme,
			Model:    perf.Default28Core(),
			MemBytes: 1 << 30,
			Seed:     opts.Seed,
			RingSize: 32,
			Cores:    4,
			Tracer:   opts.Tracer,
			Faults:   &faults.Config{Seed: opts.FaultSeed, Rates: rates},
		})
		if err != nil {
			return LossRow{}, err
		}
		defer ma.Close()
		var sup *recovery.Supervisor
		if sp.chaos {
			// The chaos schedule storms the DMA path too; the supervisor
			// quarantines and heals, and the ARQ pumps ride out the outage.
			sup = recovery.Attach(ma, recovery.Config{})
		}
		res, err := workloads.RunLoss(workloads.LossConfig{
			Machine: ma, Warmup: warm, Duration: dur,
		})
		if sup != nil {
			sup.Stop()
		}
		if err != nil {
			return LossRow{}, fmt.Errorf("loss %s/%.1f%%: %w", sp.scheme, sp.pct, err)
		}
		label := fmt.Sprintf("loss/%s-%.1f", sp.scheme, sp.pct)
		if sp.chaos {
			label = fmt.Sprintf("loss/%s-chaos", sp.scheme)
		}
		opts.emit(label, ma)
		return LossRow{LossPct: sp.pct, Chaos: sp.chaos, Res: res}, nil
	})
}

// RenderLoss renders the figure: one row per scheme; goodput across the
// swept loss rates, how much of the clean-wire goodput survives 1% loss,
// the retransmit rate and the CPU cost per delivered megabyte at 5% (where
// every retransmission re-pays the scheme's map/unmap toll), and the chaos
// column.
func RenderLoss(rows []LossRow) string {
	header := []string{"scheme"}
	for _, pct := range lossRates {
		header = append(header, fmt.Sprintf("%g%% Gb/s", pct))
	}
	header = append(header, "recov@1%", "retx@5%", "cpu µs/MB@5%", "chaos Gb/s", "chaos retx")

	type group struct {
		scheme string
		byPct  map[float64]LossRow
		chaos  LossRow
	}
	var order []string
	groups := map[string]*group{}
	for _, r := range rows {
		g, ok := groups[r.Res.Scheme]
		if !ok {
			g = &group{scheme: r.Res.Scheme, byPct: map[float64]LossRow{}}
			groups[r.Res.Scheme] = g
			order = append(order, r.Res.Scheme)
		}
		if r.Chaos {
			g.chaos = r
		} else {
			g.byPct[r.LossPct] = r
		}
	}
	var cells [][]string
	for _, s := range order {
		g := groups[s]
		row := []string{s}
		for _, pct := range lossRates {
			row = append(row, f1(g.byPct[pct].Res.GoodputGbps))
		}
		clean, one, five := g.byPct[0].Res, g.byPct[1].Res, g.byPct[5].Res
		recov := 0.0
		if clean.GoodputGbps > 0 {
			recov = one.GoodputGbps / clean.GoodputGbps
		}
		row = append(row,
			pct(recov),
			fmt.Sprintf("%.2f%%", five.RetxPct),
			f1(five.CPUPerMB),
			f1(g.chaos.Res.GoodputGbps),
			fmt.Sprintf("%.2f%%", g.chaos.Res.RetxPct),
		)
		cells = append(cells, row)
	}
	return "Loss resilience — ARQ goodput and retransmission cost vs. link loss\n" +
		RenderTable(header, cells)
}
