package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// ClusterRow is one scheme's row of the cluster figure: the incast storm
// and the distributed memcached scenario, both on multi-machine topologies
// where every endpoint pays its scheme's IOMMU costs.
type ClusterRow struct {
	Scheme string
	Incast workloads.IncastResult
	MC     workloads.MemcachedClusterResult
}

// Cluster is the multi-machine figure this repo adds beyond the paper: the
// paper evaluates one machine against a traffic generator, but IOMMU
// protection is paid at *both* ends of a datacenter RPC. Two topologies run
// per scheme on the sharded conservative-parallel engine (internal/topo):
// an incast storm — four senders blasting one receiver through a router
// whose output port tail-drops — and a memcached cluster — two client
// machines issuing closed-loop GET/SETs through a load-balancing router to
// two servers. The figure reports receiver goodput, exact p99 latency and
// drop rate under incast, and completed-request throughput and p99 request
// latency for memcached. Host parallelism (Options.TopoWorkers) changes
// wall-clock time only; the rows are byte-identical at any worker count.
func Cluster(opts Options) ([]ClusterRow, error) {
	warm, dur := 3*sim.Millisecond, 10*sim.Millisecond
	if opts.Quick {
		warm, dur = 2*sim.Millisecond, 4*sim.Millisecond
	}
	return runJobs(opts, len(testbed.AllSchemes), func(i int, opts Options) (ClusterRow, error) {
		scheme := testbed.AllSchemes[i]
		// The -stats contract gives every figure per-machine snapshots; a
		// topology has many, so emit the interesting endpoint of each
		// scenario (the incast receiver, the first memcached server).
		ic, err := workloads.RunIncast(workloads.IncastConfig{
			Scheme: scheme, Senders: 4, Workers: opts.TopoWorkers,
			Seed: opts.Seed + 1, Duration: dur, Warmup: warm,
			Inspect: func(ms []*testbed.Machine) error {
				opts.emit(fmt.Sprintf("cluster-incast/%s", scheme), ms[0])
				return nil
			},
		})
		if err != nil {
			return ClusterRow{}, fmt.Errorf("cluster incast %s: %w", scheme, err)
		}
		mc, err := workloads.RunMemcachedCluster(workloads.MemcachedClusterConfig{
			Scheme: scheme, Clients: 2, Servers: 2, Workers: opts.TopoWorkers,
			Seed: opts.Seed + 2, Duration: dur, Warmup: warm,
			Inspect: func(ms []*testbed.Machine) error {
				opts.emit(fmt.Sprintf("cluster-mc/%s", scheme), ms[0])
				return nil
			},
		})
		if err != nil {
			return ClusterRow{}, fmt.Errorf("cluster memcached %s: %w", scheme, err)
		}
		return ClusterRow{Scheme: string(scheme), Incast: ic, MC: mc}, nil
	})
}

// RenderCluster renders the figure.
func RenderCluster(rows []ClusterRow) string {
	header := []string{"scheme", "incast Gb/s", "incast p99 µs", "drop", "mc kops/s", "mc p99 µs"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme,
			f1(r.Incast.Gbps),
			f1(float64(r.Incast.P99) / float64(sim.Microsecond)),
			pct(r.Incast.DropFrac),
			f1(r.MC.KOps),
			f1(float64(r.MC.P99) / float64(sim.Microsecond)),
		})
	}
	return "Cluster: 4-sender incast + distributed memcached on multi-machine topologies\n" +
		RenderTable(header, cells)
}
