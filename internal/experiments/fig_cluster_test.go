package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/asplos18/damn/internal/testbed"
)

// TestClusterFigureShape: one row per scheme, every row moving traffic on
// both the incast and the memcached leg, and the render carrying every
// column the figure promises.
func TestClusterFigureShape(t *testing.T) {
	skipInShort(t)
	rows, err := Cluster(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(testbed.AllSchemes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(testbed.AllSchemes))
	}
	for i, r := range rows {
		if r.Scheme != string(testbed.AllSchemes[i]) {
			t.Errorf("row %d is %s, want %s", i, r.Scheme, testbed.AllSchemes[i])
		}
		if r.Incast.Gbps <= 0 || r.Incast.P99 <= 0 {
			t.Errorf("%s: incast moved nothing: %+v", r.Scheme, r.Incast)
		}
		if r.MC.KOps <= 0 || r.MC.P99 <= 0 {
			t.Errorf("%s: memcached cluster served nothing: %+v", r.Scheme, r.MC)
		}
		if r.Incast.Epochs == 0 {
			t.Errorf("%s: topology ran zero epochs", r.Scheme)
		}
	}
	out := RenderCluster(rows)
	for _, want := range []string{"incast Gb/s", "incast p99", "mc kops/s", "mc p99", "damn", "strict"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestClusterFigureParallelMatchesSerial is the figure-level identity bar:
// the cluster rows — and the rendered text — must be byte-identical
// whether the topologies advance serially or with 4 host workers per
// topology and 4 figure-level workers, and exactly replayable.
func TestClusterFigureParallelMatchesSerial(t *testing.T) {
	skipInShort(t)
	serial, err := Cluster(Options{Quick: true, Seed: 5, Parallel: 1, TopoWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Cluster(Options{Quick: true, Seed: 5, Parallel: 4, TopoWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Cluster(Options{Quick: true, Seed: 5, Parallel: 4, TopoWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel cluster rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(par, again) {
		t.Errorf("two parallel cluster runs diverge:\n%+v\n%+v", par, again)
	}
	if RenderCluster(serial) != RenderCluster(par) {
		t.Error("rendered cluster text differs between serial and parallel")
	}
}
