package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asplos18/damn/internal/stats"
)

// capture records every OnStats emission in arrival order.
type capture struct {
	mu    sync.Mutex
	emits []emission
}

func (c *capture) opts(base Options) Options {
	base.OnStats = func(label string, snap stats.Snapshot) {
		c.mu.Lock()
		c.emits = append(c.emits, emission{label, snap})
		c.mu.Unlock()
	}
	return base
}

func (c *capture) labels() []string {
	out := make([]string, len(c.emits))
	for i, e := range c.emits {
		out[i] = e.label
	}
	return out
}

// TestRunJobsOrderAndEmissions drives the runner with synthetic jobs that
// finish out of order and checks the determinism contract directly: results
// and stats emissions come back in declaration order, bit-identical to a
// serial run.
func TestRunJobsOrderAndEmissions(t *testing.T) {
	const n = 32
	run := func(parallel int) ([]int, []string, error) {
		var c capture
		opts := c.opts(Options{Parallel: parallel})
		results, err := runJobs(opts, n, func(i int, jopts Options) (int, error) {
			// Later jobs finish first: the runner must reorder.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			jopts.OnStats(fmt.Sprintf("job%d/a", i), stats.Snapshot{})
			jopts.OnStats(fmt.Sprintf("job%d/b", i), stats.Snapshot{})
			return i * i, nil
		})
		return results, c.labels(), err
	}

	serialRes, serialEmits, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parEmits, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Errorf("parallel results diverge:\nserial   %v\nparallel %v", serialRes, parRes)
	}
	if !reflect.DeepEqual(serialEmits, parEmits) {
		t.Errorf("parallel emission order diverges:\nserial   %v\nparallel %v", serialEmits, parEmits)
	}
	for i, r := range parRes {
		if r != i*i {
			t.Fatalf("result %d = %d, want %d", i, r, i*i)
		}
	}
}

// TestRunJobsErrorInJobOrder: the error surfaced is the one the serial run
// would have hit first, with the emissions of the preceding jobs delivered.
func TestRunJobsErrorInJobOrder(t *testing.T) {
	errA, errB := errors.New("job 5 failed"), errors.New("job 20 failed")
	var c capture
	opts := c.opts(Options{Parallel: 8})
	_, err := runJobs(opts, 32, func(i int, jopts Options) (int, error) {
		time.Sleep(time.Duration(32-i) * 50 * time.Microsecond)
		switch i {
		case 5:
			return 0, errA
		case 20:
			return 0, errB
		}
		jopts.OnStats(fmt.Sprintf("job%d", i), stats.Snapshot{})
		return i, nil
	})
	if err != errA {
		t.Fatalf("got error %v, want the first job's error %v", err, errA)
	}
	want := []string{"job0", "job1", "job2", "job3", "job4"}
	if !reflect.DeepEqual(c.labels(), want) {
		t.Errorf("emissions before the error: %v, want %v", c.labels(), want)
	}
}

// TestRunJobsConcurrencyAndTracerClamp checks that jobs genuinely overlap
// with Parallel > 1 and that a shared Tracer forces a serial run.
func TestRunJobsConcurrencyAndTracerClamp(t *testing.T) {
	maxInFlight := func(opts Options) int32 {
		var inFlight, peak int32
		_, err := runJobs(opts, 16, func(i int, jopts Options) (int, error) {
			cur := atomic.AddInt32(&inFlight, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&inFlight, -1)
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return atomic.LoadInt32(&peak)
	}
	if peak := maxInFlight(Options{Parallel: 4}); peak < 2 {
		t.Errorf("Parallel=4 never overlapped jobs (peak %d)", peak)
	}
	if peak := maxInFlight(Options{Parallel: 4, Tracer: stats.NewTracer()}); peak != 1 {
		t.Errorf("shared tracer must force serial, saw %d jobs in flight", peak)
	}
}

// TestTable1ParallelMatchesSerial reproduces one real figure at several
// worker counts; rows and rendered text must be byte-identical. Runs in
// -short mode too, so the -race CI pass exercises the parallel path.
func TestTable1ParallelMatchesSerial(t *testing.T) {
	serial, err := Table1(Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1(Options{Quick: true, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Table1(Options{Quick: true, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel Table1 rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(par, again) {
		t.Errorf("two parallel Table1 runs diverge:\n%+v\n%+v", par, again)
	}
	if RenderTable1(serial) != RenderTable1(par) {
		t.Error("rendered Table1 text differs between serial and parallel")
	}
}

// TestSuiteParallelMatchesSerial is the acceptance test for the parallel
// engine: the full quick-mode suite run with Parallel=4 must produce output
// byte-identical to Parallel=1, the stats snapshots must be deep-equal in
// content and order, and a second parallel run with the same seed must
// reproduce the first exactly.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	skipInShort(t)
	run := func(parallel int) (string, []emission) {
		var c capture
		out, err := RunSuite(c.opts(Options{Quick: true, Seed: 1, Parallel: parallel}))
		if err != nil {
			t.Fatalf("suite with Parallel=%d: %v", parallel, err)
		}
		return out, c.emits
	}
	serialOut, serialEmits := run(1)
	parOut, parEmits := run(4)
	if serialOut != parOut {
		t.Errorf("suite output differs between -parallel 1 and -parallel 4:\n%s", firstDiff(serialOut, parOut))
	}
	if !reflect.DeepEqual(serialEmits, parEmits) {
		t.Error("stats emissions differ between -parallel 1 and -parallel 4")
	}
	againOut, againEmits := run(4)
	if parOut != againOut {
		t.Errorf("two -parallel 4 runs with the same seed differ:\n%s", firstDiff(parOut, againOut))
	}
	if !reflect.DeepEqual(parEmits, againEmits) {
		t.Error("stats emissions differ between two identical parallel runs")
	}
}

// firstDiff renders the first position where two strings diverge.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d:\nA: …%q\nB: …%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}
