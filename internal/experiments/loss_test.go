package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/asplos18/damn/internal/testbed"
)

// lossGroups indexes the figure's rows by scheme and loss rate.
func lossGroups(t *testing.T, rows []LossRow) map[string]map[float64]LossRow {
	t.Helper()
	out := map[string]map[float64]LossRow{}
	for _, r := range rows {
		if r.Chaos {
			continue
		}
		g, ok := out[r.Res.Scheme]
		if !ok {
			g = map[float64]LossRow{}
			out[r.Res.Scheme] = g
		}
		g[r.LossPct] = r
	}
	return out
}

// TestLossFigureShape is the loss-resilience acceptance gate: for every
// scheme the ARQ transport must recover at least 90% of the clean-wire
// goodput at 1% loss, retransmissions must actually happen on lossy points
// and never on clean ones, and strict's marginal CPU cost of reliability
// (the per-retransmission map/unmap toll) must visibly exceed DAMN's.
func TestLossFigureShape(t *testing.T) {
	skipInShort(t)
	rows, err := Loss(Options{Quick: true, FaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(testbed.AllSchemes) * (len(lossRates) + 1); len(rows) != want {
		t.Fatalf("want %d rows, got %d", want, len(rows))
	}
	groups := lossGroups(t, rows)
	for scheme, g := range groups {
		clean, one := g[0].Res, g[1].Res
		if clean.Retransmits != 0 || clean.DroppedDup != 0 || clean.CsumDrops != 0 {
			t.Errorf("%s: clean wire retransmitted: %+v", scheme, clean)
		}
		if one.Retransmits == 0 {
			t.Errorf("%s: 1%% loss produced no retransmissions", scheme)
		}
		if one.GoodputGbps < 0.9*clean.GoodputGbps {
			t.Errorf("%s: goodput at 1%% loss %.2f Gb/s < 90%% of clean %.2f Gb/s",
				scheme, one.GoodputGbps, clean.GoodputGbps)
		}
		if five := g[5].Res; five.RetxPct <= one.RetxPct {
			t.Errorf("%s: retx rate not increasing with loss: %.2f%% at 5%% vs %.2f%% at 1%%",
				scheme, five.RetxPct, one.RetxPct)
		}
	}
	// The cost asymmetry the figure exists to show: every retransmitted
	// segment and every ACK re-crosses the scheme's map/unmap path, so
	// reliable delivery under 5% loss must cost strict visibly more CPU
	// per delivered megabyte than DAMN.
	strictCost := groups["strict"][5].Res.CPUPerMB
	damnCost := groups["damn"][5].Res.CPUPerMB
	if strictCost <= 1.3*damnCost {
		t.Errorf("strict CPU under loss %.2f µs/MB not visibly above damn's %.2f µs/MB",
			strictCost, damnCost)
	}
	// The chaos column survived: goodput under the uniform schedule.
	for _, r := range rows {
		if r.Chaos && r.Res.GoodputGbps <= 0 {
			t.Errorf("%s: no goodput under chaos schedule: %+v", r.Res.Scheme, r.Res)
		}
	}
	out := RenderLoss(rows)
	for _, want := range []string{"damn", "strict", "recov@1%", "chaos Gb/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestLossParallelMatchesSerial: the loss figure must be byte-identical for
// any worker count, and exactly replayable with the same fault seed.
func TestLossParallelMatchesSerial(t *testing.T) {
	skipInShort(t)
	serial, err := Loss(Options{Quick: true, FaultSeed: 7, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Loss(Options{Quick: true, FaultSeed: 7, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Loss(Options{Quick: true, FaultSeed: 7, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel loss rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(par, again) {
		t.Errorf("two parallel loss runs diverge:\n%+v\n%+v", par, again)
	}
	if RenderLoss(serial) != RenderLoss(par) {
		t.Error("rendered loss text differs between serial and parallel")
	}
}
