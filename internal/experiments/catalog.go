package experiments

import "strings"

// Figure is one runnable entry of the evaluation: it regenerates a table or
// figure of the paper (or the chaos harness) and renders it as text.
type Figure struct {
	Name string
	// Paper marks the entries that belong to the paper's evaluation; the
	// chaos harness is a robustness gate, not a figure, and only runs when
	// asked for by name.
	Paper bool
	Run   func(Options) (string, error)
}

// Catalog returns every figure in the canonical output order used by
// cmd/damnbench, the determinism tests and the bench harness.
func Catalog() []Figure {
	return []Figure{
		{"table1", true, func(o Options) (string, error) {
			rows, err := Table1(o)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows), nil
		}},
		{"fig4", true, func(o Options) (string, error) {
			rows, err := Fig4(o)
			if err != nil {
				return "", err
			}
			return RenderFig4(rows), nil
		}},
		{"fig5", true, func(o Options) (string, error) {
			rows, err := Fig5(o)
			if err != nil {
				return "", err
			}
			return RenderFig5(rows), nil
		}},
		{"fig6", true, func(o Options) (string, error) {
			rows, err := Fig6(o)
			if err != nil {
				return "", err
			}
			return RenderFig6(rows), nil
		}},
		{"table3", true, func(o Options) (string, error) {
			rows, err := Table3(o)
			if err != nil {
				return "", err
			}
			return RenderTable3(rows), nil
		}},
		{"fig2", true, func(o Options) (string, error) {
			rows, err := Fig2(o)
			if err != nil {
				return "", err
			}
			return RenderFig2(rows), nil
		}},
		{"fig7", true, func(o Options) (string, error) {
			rows, err := Fig7(o)
			if err != nil {
				return "", err
			}
			return RenderFig7(rows), nil
		}},
		{"fig8", true, func(o Options) (string, error) {
			rows, err := Fig8(o)
			if err != nil {
				return "", err
			}
			return RenderFig8(rows), nil
		}},
		{"fig9", true, func(o Options) (string, error) {
			points, err := Fig9(o)
			if err != nil {
				return "", err
			}
			return RenderFig9(points), nil
		}},
		{"fig10", true, func(o Options) (string, error) {
			rows, err := Fig10(o)
			if err != nil {
				return "", err
			}
			return RenderFig10(rows), nil
		}},
		{"fig11", true, func(o Options) (string, error) {
			rows, err := Fig11(o)
			if err != nil {
				return "", err
			}
			return RenderFig11(rows), nil
		}},
		{"ablations", true, func(o Options) (string, error) {
			rows, err := Ablations(o)
			if err != nil {
				return "", err
			}
			return RenderAblations(rows), nil
		}},
		{"footnote5", true, func(o Options) (string, error) {
			rows, err := Footnote5(o)
			if err != nil {
				return "", err
			}
			return RenderFootnote5(rows), nil
		}},
		{"scaling", false, func(o Options) (string, error) {
			rows, err := Scaling(o)
			if err != nil {
				return "", err
			}
			return RenderScaling(rows), nil
		}},
		{"chaos", false, func(o Options) (string, error) {
			rows, err := Chaos(o)
			if err != nil {
				return "", err
			}
			return RenderChaos(rows), nil
		}},
		{"recovery", false, func(o Options) (string, error) {
			rows, err := RecoveryFigure(o)
			if err != nil {
				return "", err
			}
			return RenderRecovery(rows), nil
		}},
		{"loss", false, func(o Options) (string, error) {
			rows, err := Loss(o)
			if err != nil {
				return "", err
			}
			return RenderLoss(rows), nil
		}},
		{"cluster", false, func(o Options) (string, error) {
			rows, err := Cluster(o)
			if err != nil {
				return "", err
			}
			return RenderCluster(rows), nil
		}},
		{"tenants", false, func(o Options) (string, error) {
			rows, err := Tenants(o)
			if err != nil {
				return "", err
			}
			return RenderTenants(rows), nil
		}},
		{"bypass", false, func(o Options) (string, error) {
			rows, err := Bypass(o)
			if err != nil {
				return "", err
			}
			return RenderBypass(rows), nil
		}},
	}
}

// RunSuite runs every paper figure of the catalog in order and returns the
// concatenated rendered output. This is the determinism contract surface:
// the returned text is byte-identical for any Options.Parallel value.
func RunSuite(opts Options) (string, error) {
	var b strings.Builder
	for _, fig := range Catalog() {
		if !fig.Paper {
			continue
		}
		out, err := fig.Run(opts)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
