package experiments

import (
	"testing"

	"github.com/asplos18/damn/internal/testbed"
)

var quick = Options{Quick: true}

// skipInShort gates the figure reproductions out of -short runs: the CI
// race pass uses -short because the race detector slows the simulations by
// an order of magnitude, and the figure shapes are already covered by the
// regular (non-race) test run.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure reproduction skipped in -short mode")
	}
}

func TestTable1SecurityMatrix(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable1(rows))
	want := map[string]Table1Row{
		string(testbed.SchemeOff):      {Subpage: false, NoWindow: false},
		string(testbed.SchemeDeferred): {Subpage: false, NoWindow: false},
		string(testbed.SchemeStrict):   {Subpage: false, NoWindow: true},
		string(testbed.SchemeShadow):   {Subpage: true, NoWindow: true},
		string(testbed.SchemeDAMN):     {Subpage: true, NoWindow: true},
	}
	for _, r := range rows {
		w, ok := want[r.Scheme]
		if !ok {
			t.Errorf("unexpected scheme %s", r.Scheme)
			continue
		}
		if r.Subpage != w.Subpage {
			t.Errorf("%s: subpage-safe = %v, paper says %v", r.Scheme, r.Subpage, w.Subpage)
		}
		if r.NoWindow != w.NoWindow {
			t.Errorf("%s: no-window = %v, paper says %v", r.Scheme, r.NoWindow, w.NoWindow)
		}
	}
}

func byScheme[T any](rows []T, scheme func(T) string, name string) (T, bool) {
	for _, r := range rows {
		if scheme(r) == name {
			return r, true
		}
	}
	var zero T
	return zero, false
}

func TestFig4Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig4(rows))
	get := func(dir, scheme string) float64 {
		for _, r := range rows {
			if r.Dir == dir && r.Scheme == scheme {
				return r.Gbps
			}
		}
		t.Fatalf("missing %s/%s", dir, scheme)
		return 0
	}
	off, damn, strict, shadow := get("RX", "iommu-off"), get("RX", "damn"), get("RX", "strict"), get("RX", "shadow")
	if damn < 0.9*off {
		t.Errorf("RX damn %.1f should be within 10%% of iommu-off %.1f", damn, off)
	}
	if !(shadow < strict && strict < damn) {
		t.Errorf("RX ordering broken: shadow %.1f strict %.1f damn %.1f", shadow, strict, damn)
	}
	if damn < 2*shadow {
		t.Errorf("single-core damn (%.1f) should be ≈2.7× shadow (%.1f)", damn, shadow)
	}
	if txOff := get("TX", "iommu-off"); txOff < off {
		t.Errorf("TX iommu-off %.1f should exceed RX %.1f (Fig 4b)", txOff, off)
	}
}

func TestFig5Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig5(rows))
	for _, r := range rows {
		if r.Dir != "RX" {
			continue
		}
		switch r.Scheme {
		case "strict":
			if r.Gbps > 95 {
				t.Errorf("multi-core strict RX %.1f should throttle below line rate", r.Gbps)
			}
		default:
			if r.Gbps < 95 {
				t.Errorf("multi-core %s RX %.1f should reach ≈100 Gb/s", r.Scheme, r.Gbps)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig6(rows))
	get := func(name string) BidirRow {
		r, ok := byScheme(rows, func(r BidirRow) string { return r.Scheme }, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return r
	}
	off, deferred, damn := get("iommu-off"), get("deferred"), get("damn")
	strict, shadow := get("strict"), get("shadow")
	if damn.TotalGbps < 0.8*off.TotalGbps {
		t.Errorf("damn %.1f should be ≥80%% of iommu-off %.1f", damn.TotalGbps, off.TotalGbps)
	}
	if damn.TotalGbps < 0.9*deferred.TotalGbps {
		t.Errorf("damn %.1f should be within ~3%% of deferred %.1f", damn.TotalGbps, deferred.TotalGbps)
	}
	if strict.TotalGbps > 0.8*damn.TotalGbps {
		t.Errorf("strict %.1f should be well below damn %.1f (paper: 44%% worse)", strict.TotalGbps, damn.TotalGbps)
	}
	// Shadow exhausts memory bandwidth (§6.1).
	if shadow.MemBWGBps < 70 {
		t.Errorf("shadow memory bandwidth %.1f GB/s should approach the 80 GB/s ceiling", shadow.MemBWGBps)
	}
	if shadow.CPUUtil < 1.5*damn.CPUUtil {
		t.Errorf("shadow CPU %.2f should be ≥1.5× damn %.2f", shadow.CPUUtil, damn.CPUUtil)
	}
}

func TestTable3Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable3(rows))
	if len(rows) != 4 {
		t.Fatalf("want 4 configurations, got %d", len(rows))
	}
	damn, huge, noiommu, off := rows[0], rows[1], rows[2], rows[3]
	if !(damn.Gbps <= huge.Gbps+2 && huge.Gbps <= noiommu.Gbps+2 && noiommu.Gbps <= off.Gbps+2) {
		t.Errorf("Table 3 ordering broken: %.1f ≤ %.1f ≤ %.1f ≤ %.1f expected",
			damn.Gbps, huge.Gbps, noiommu.Gbps, off.Gbps)
	}
	if damn.PctOfIOMMU < 75 {
		t.Errorf("damn at %.1f%% of iommu-off; paper reports 86%%", damn.PctOfIOMMU)
	}
}

func TestFig2Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig2(rows))
	get := func(name string) InterferenceRow {
		r, ok := byScheme(rows, func(r InterferenceRow) string { return r.Config }, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return r
	}
	shadow, damn, noNet := get("shadow"), get("damn"), get("no net")
	if noNet.GraphIterSec <= 0 || shadow.GraphIterSec <= 0 || damn.GraphIterSec <= 0 {
		t.Fatalf("BFS iterations did not complete: shadow=%.3f damn=%.3f alone=%.3f",
			shadow.GraphIterSec, damn.GraphIterSec, noNet.GraphIterSec)
	}
	// Shadow buffers slow the co-runner down (1.44× in the paper) and
	// lose netperf throughput relative to damn.
	if shadow.GraphIterSec < 1.2*noNet.GraphIterSec {
		t.Errorf("shadow BFS %.3fs should be ≥1.2× standalone %.3fs", shadow.GraphIterSec, noNet.GraphIterSec)
	}
	if damn.GraphIterSec > 1.4*noNet.GraphIterSec {
		t.Errorf("damn BFS %.3fs should stay near standalone %.3fs", damn.GraphIterSec, noNet.GraphIterSec)
	}
	if shadow.NetperfGbps > 0.8*damn.NetperfGbps {
		t.Errorf("shadow netperf %.1f should lose badly to damn %.1f", shadow.NetperfGbps, damn.NetperfGbps)
	}
}

func TestFig7Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig7(rows))
	get := func(name string) MemcachedRow {
		r, ok := byScheme(rows, func(r MemcachedRow) string { return r.Scheme }, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return r
	}
	off, damn, strict, shadow := get("iommu-off"), get("damn"), get("strict"), get("shadow")
	if damn.TPS < 0.85*off.TPS {
		t.Errorf("damn TPS %.0f should be comparable to iommu-off %.0f", damn.TPS, off.TPS)
	}
	if strict.TPS > 0.7*off.TPS {
		t.Errorf("strict TPS %.0f should be ≈half of iommu-off %.0f", strict.TPS, off.TPS)
	}
	if shadow.CPUUtil < 1.3*damn.CPUUtil {
		t.Errorf("shadow CPU %.2f should be ≈1.6× damn %.2f", shadow.CPUUtil, damn.CPUUtil)
	}
}

func TestFig8Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig8(rows))
	cpu := func(scheme string, n int) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.AccessedBytes == n {
				return r.CPUUtil
			}
		}
		t.Fatalf("missing %s/%d", scheme, n)
		return 0
	}
	// damn starts at iommu-off's level and grows toward shadow.
	if d0, o0 := cpu("damn", 0), cpu("iommu-off", 0); d0 > 1.15*o0 {
		t.Errorf("damn at 0 B (%.2f) should match iommu-off (%.2f)", d0, o0)
	}
	if dFull, d0 := cpu("damn", 64<<10), cpu("damn", 0); dFull < 1.15*d0 {
		t.Errorf("damn CPU should grow with accessed bytes: %.2f -> %.2f", d0, dFull)
	}
	// shadow is flat: it copies everything regardless.
	if sFull, s0 := cpu("shadow", 64<<10), cpu("shadow", 0); sFull > 1.25*s0 {
		t.Errorf("shadow CPU should stay ≈flat: %.2f -> %.2f", s0, sFull)
	}
	// At full copy damn stays below shadow (§6.2: ~10% lower).
	if dFull, sFull := cpu("damn", 64<<10), cpu("shadow", 64<<10); dFull > sFull {
		t.Errorf("damn at full copy (%.2f) should stay below shadow (%.2f)", dFull, sFull)
	}
}

func TestFig9Shape(t *testing.T) {
	skipInShort(t)
	points, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig9(points))
	last := points[len(points)-1]
	mid := points[len(points)/2]
	if last.EverPages <= mid.EverPages {
		t.Errorf("ever-mapped pages should grow monotonically: %d -> %d", mid.EverPages, last.EverPages)
	}
	// Currently-mapped stays bounded (paper: < 50 MiB ≈ 12800 pages; our
	// rings are smaller but the point is boundedness).
	if last.CurrentlyMapd > 4*mid.CurrentlyMapd+1000 {
		t.Errorf("currently-mapped should stay ≈flat: %d vs %d", mid.CurrentlyMapd, last.CurrentlyMapd)
	}
	if last.EverPages < 2*last.CurrentlyMapd {
		t.Errorf("ever (%d) should significantly exceed current (%d) by run end", last.EverPages, last.CurrentlyMapd)
	}
}

func TestFig10Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig10(rows))
	// DAMN's memory usage must stay comparable to iommu-off (§6.3:
	// difference at most ≈270 MiB, usually much closer).
	for _, r := range rows {
		if r.Scheme != string(testbed.SchemeDAMN) {
			continue
		}
		for _, o := range rows {
			if o.Scheme == string(testbed.SchemeOff) && o.Direction == r.Direction && o.Instances == r.Instances {
				if r.AvgMiB > o.AvgMiB+300 {
					t.Errorf("%s/%d: damn %.0f MiB vs off %.0f MiB exceeds the paper's ≈270 MiB bound",
						r.Direction, r.Instances, r.AvgMiB, o.AvgMiB)
				}
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig11(rows))
	get := func(scheme string, bs int) FioRow {
		for _, r := range rows {
			if r.Scheme == scheme && r.BlockSize == bs {
				return r
			}
		}
		t.Fatalf("missing %s/%d", scheme, bs)
		return FioRow{}
	}
	// 512 B: every scheme reaches the device's ≈900 K IOPS ceiling.
	for _, s := range []string{"iommu-off", "deferred", "strict", "shadow"} {
		if r := get(s, 512); r.KIOPS < 800 {
			t.Errorf("%s at 512 B: %.0f K IOPS, device ceiling is ≈900 K", s, r.KIOPS)
		}
	}
	// Strict burns noticeably more CPU at 512 B (paper: 2×).
	if s, o := get("strict", 512), get("iommu-off", 512); s.CPUUtil < 1.2*o.CPUUtil {
		t.Errorf("strict CPU %.3f should exceed iommu-off %.3f markedly", s.CPUUtil, o.CPUUtil)
	}
	// Shadow ≈ iommu-off for storage — the premise of §6.5.
	if s, o := get("shadow", 32<<10), get("iommu-off", 32<<10); s.KIOPS < 0.9*o.KIOPS {
		t.Errorf("shadow IOPS %.0f should match iommu-off %.0f for NVMe", s.KIOPS, o.KIOPS)
	}
}

func TestAblations(t *testing.T) {
	skipInShort(t)
	rows, err := Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderAblations(rows))
	get := func(name string) AblationRow {
		r, ok := byScheme(rows, func(r AblationRow) string { return r.Config }, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return r
	}
	full := get(string(testbed.SchemeDAMN))
	single := get(string(testbed.SchemeDAMNSingleCtx))
	nocache := get(string(testbed.SchemeDAMNNoCache))
	// Disabling interrupts per operation costs throughput on the
	// CPU-bound test ("measurable negative impact", §5.4).
	if single.TotalGbps > 0.99*full.TotalGbps {
		t.Errorf("single-context %.1f should measurably trail full design %.1f", single.TotalGbps, full.TotalGbps)
	}
	// Without the DMA cache, per-buffer zero/map/unmap/invalidate work
	// must hurt badly.
	if nocache.TotalGbps > 0.8*full.TotalGbps {
		t.Errorf("no-dma-cache %.1f should collapse well below full design %.1f", nocache.TotalGbps, full.TotalGbps)
	}
}

func TestFootnote5Shape(t *testing.T) {
	skipInShort(t)
	rows, err := Footnote5(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFootnote5(rows))
	get := func(name string) float64 {
		r, ok := byScheme(rows, func(r Footnote5Row) string { return r.Scheme }, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return r.Gbps
	}
	off, deferred, strict := get("iommu-off"), get("deferred"), get("strict")
	if off < 15 || off > 25 {
		t.Errorf("iommu-off %.1f Gb/s, footnote says ≈20", off)
	}
	if deferred < 3.5 || deferred > 8 {
		t.Errorf("deferred %.1f Gb/s, footnote says ≈5", deferred)
	}
	if strict > 0.7*deferred {
		t.Errorf("strict %.1f should be ≈half of deferred %.1f", strict, deferred)
	}
	// DAMN is the fix: it should stay near iommu-off even here.
	if dm := get("damn"); dm < 0.7*off {
		t.Errorf("damn %.1f should stay near iommu-off %.1f", dm, off)
	}
}
