package experiments

import (
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/testbed"
)

// Table1Row is one row of Table 1: the protection/performance matrix.
// Unlike the paper — which asserts the security columns — this
// reproduction *measures* them by mounting the attacks against each
// configuration (see the probe functions below); the performance columns
// summarise the Fig 4/5/6 results.
type Table1Row struct {
	Scheme string
	// Subpage: device cannot reach kernel data co-located on the page of
	// a mapped buffer.
	Subpage bool
	// NoWindow: device cannot touch a buffer after dma_unmap returns.
	NoWindow bool
	// MultiGbps: sustains multi-gigabit line rate (Fig 5/6).
	MultiGbps bool
	// ZeroCopy: no per-byte copying on the data path.
	ZeroCopy bool
}

// Table1 probes each scheme and assembles the matrix; one job per scheme
// runs both attack probes against private machines.
func Table1(opts Options) ([]Table1Row, error) {
	schemes := testbed.AllSchemes
	return runJobs(opts, len(schemes), func(i int, opts Options) (Table1Row, error) {
		scheme := schemes[i]
		sub, err := probeSubpage(scheme, opts)
		if err != nil {
			return Table1Row{}, err
		}
		nw, err := probeWindow(scheme, opts)
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Scheme:    string(scheme),
			Subpage:   sub,
			NoWindow:  nw,
			MultiGbps: scheme != testbed.SchemeStrict,
			ZeroCopy:  scheme != testbed.SchemeShadow,
		}, nil
	})
}

// probeSubpage maps a 256 B kmalloc buffer that shares its page with a
// secret (or allocates the equivalent network buffer under DAMN) and lets
// the device hunt for the secret. Returns true when the secret is safe.
func probeSubpage(scheme testbed.Scheme, opts Options) (bool, error) {
	ma, err := newMachine(scheme, opts, 64<<20, 8)
	if err != nil {
		return false, err
	}
	defer ma.Close()
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)
	secret := []byte("CO-LOCATED-SECRET")

	if ma.Damn != nil {
		// DAMN path: network buffers never share pages with kernel
		// data, so plant the secret in a kmalloc object and scan.
		skb, err := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 256, false)
		if err != nil {
			return false, err
		}
		secretPA, err := ma.Slab.Alloc(256, 0)
		if err != nil {
			return false, err
		}
		ma.Mem.Write(secretPA, secret)
		v, _ := ma.Damn.IOVAOf(skb.HeadPA())
		base := v &^ iommu.IOVA(mem.HugePageMask)
		found, _ := attacker.ScanForSecret(base, base+iommu.IOVA(mem.HugePageSize), secret)
		return len(found) == 0, nil
	}

	// Legacy path: kmalloc a network buffer; the secret lands on the
	// same page; map the buffer for the device and probe around it.
	slab := ma.Slab
	bufPA, err := slab.Alloc(256, 0)
	if err != nil {
		return false, err
	}
	secretPA, err := slab.Alloc(256, 0)
	if err != nil {
		return false, err
	}
	ma.Mem.Write(secretPA, secret)
	v, err := ma.DMA.Map(nil, testbed.NICDeviceID, bufPA, 256, dmaapi.ToDevice)
	if err != nil {
		return false, err
	}
	defer ma.DMA.Unmap(nil, testbed.NICDeviceID, v, 256, dmaapi.ToDevice)
	base := v &^ iommu.IOVA(mem.PageMask)
	found, _ := attacker.ScanForSecret(base, base+iommu.IOVA(mem.PageSize), secret)
	return len(found) == 0, nil
}

// probeWindow checks whether a device can still write a buffer after
// dma_unmap (the TOCTTOU window). Returns true when the write is blocked —
// or, for DAMN, when OS-visible bytes are provably copy-protected (the
// boundary moved to the accessor/user copy, §5.2: the buffer stays writable
// but nothing the OS read can change under its feet).
func probeWindow(scheme testbed.Scheme, opts Options) (bool, error) {
	ma, err := newMachine(scheme, opts, 64<<20, 8)
	if err != nil {
		return false, err
	}
	defer ma.Close()
	attacker := device.NewMalicious(ma.IOMMU, testbed.NICDeviceID)

	if ma.Damn != nil {
		// DAMN: the window is closed at the accessor. Verify the
		// device cannot alter what the OS has read.
		skb, err := netstack.DmaAllocSKB(ma.Kernel, nil, testbed.NICDeviceID, 2048, true)
		if err != nil {
			return false, err
		}
		v, _ := ma.Damn.IOVAOf(skb.HeadPA())
		packet := []byte("HEADER-BYTES payload")
		if _, err := ma.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet); err != nil {
			return false, err
		}
		skb.SetReceived(len(packet), len(packet))
		before, _ := skb.Access(nil, 12)
		saved := string(before)
		attacker.TOCTTOUFlip(v, []byte("EVILHDRBYTES"), 3)
		after, _ := skb.Access(nil, 12)
		return string(after) == saved, nil
	}

	// Legacy: map, prime the IOTLB, unmap, attack.
	p, err := ma.Mem.AllocPages(0, 0)
	if err != nil {
		return false, err
	}
	pa := p.PFN().Addr()
	v, err := ma.DMA.Map(nil, testbed.NICDeviceID, pa, mem.PageSize, dmaapi.FromDevice)
	if err != nil {
		return false, err
	}
	if err := attacker.TryWrite(v, []byte("prime")); err != nil && scheme != testbed.SchemeShadow {
		return false, err
	}
	if err := ma.DMA.Unmap(nil, testbed.NICDeviceID, v, mem.PageSize, dmaapi.FromDevice); err != nil {
		return false, err
	}
	if scheme == testbed.SchemeOff {
		// Passthrough: the attacker can always write physical memory.
		return attacker.TryWrite(iommu.IOVA(pa), []byte("evil")) != nil, nil
	}
	if scheme == testbed.SchemeShadow {
		// The shadow buffer stays device-writable forever, but the
		// kernel buffer received its copy at unmap: later device
		// writes to the shadow are invisible to the kernel.
		probe := make([]byte, 5)
		ma.Mem.Read(pa, probe)
		before := string(probe)
		attacker.TOCTTOUFlip(v, []byte("evil!"), 3)
		ma.Mem.Read(pa, probe)
		return string(probe) == before, nil
	}
	return !attacker.TOCTTOUFlip(v, []byte("evil!"), 3), nil
}

// RenderTable1 renders the matrix as text.
func RenderTable1(rows []Table1Row) string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, mark(r.Subpage), mark(r.NoWindow), mark(r.MultiGbps), mark(r.ZeroCopy),
		})
	}
	return "Table 1: protection/performance matrix (security columns are MEASURED by attack probes)\n" +
		RenderTable([]string{"scheme", "subpage-safe", "no-window", "multi-Gb/s", "zero-copy"}, cells)
}
