package experiments

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// TestScalingParallelMatchesSerial is the determinism contract extended
// through RSS: the same seed and flow set must hash to identical ring
// assignments whatever the host-side worker count, so the rendered scaling
// figure is byte-identical for serial, parallel, and repeated runs.
func TestScalingParallelMatchesSerial(t *testing.T) {
	serial, err := Scaling(Options{Quick: true, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Scaling(Options{Quick: true, Seed: 1, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Scaling(Options{Quick: true, Seed: 1, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel scaling rows diverge from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(par, again) {
		t.Errorf("two parallel scaling runs diverge:\n%+v\n%+v", par, again)
	}
	if RenderScaling(serial) != RenderScaling(par) {
		t.Error("rendered scaling figure differs between serial and parallel")
	}
}

// TestScalingMonotoneAndDivergent pins the figure's acceptance shape:
// throughput grows monotonically with core count for iommu-off and DAMN,
// and strict — serialized by its invalidation lock — has the flattest
// curve (worst 1→16-core speedup) of all schemes.
func TestScalingMonotoneAndDivergent(t *testing.T) {
	rows, err := Scaling(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	curves := map[string][]float64{}
	for _, r := range rows {
		curves[r.Scheme] = append(curves[r.Scheme], r.RXGbps)
	}
	for _, scheme := range []string{string(testbed.SchemeOff), string(testbed.SchemeDAMN)} {
		g := curves[scheme]
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				t.Errorf("%s throughput not monotone with cores: %v", scheme, g)
			}
		}
	}
	speedup := func(g []float64) float64 { return g[len(g)-1] / g[0] }
	strictX := speedup(curves[string(testbed.SchemeStrict)])
	for scheme, g := range curves {
		if testbed.IsBypass(testbed.Scheme(scheme)) {
			// Bypass saturates the wire at one core and the PCIe ceiling
			// at two — its curve is flat because it is ceiling-bound, not
			// lock-bound, so the lock-contention comparison excludes it.
			continue
		}
		if scheme != string(testbed.SchemeStrict) && speedup(g) <= strictX {
			t.Errorf("strict (%.2fx) is not the flattest curve: %s scales %.2fx", strictX, scheme, speedup(g))
		}
	}
	for _, scheme := range testbed.BypassSchemes {
		g := curves[string(scheme)]
		if len(g) == 0 {
			t.Errorf("scaling rows missing bypass scheme %s", scheme)
			continue
		}
		for i, v := range g {
			if v < 99 {
				t.Errorf("%s at %d cores delivers %.1f Gb/s; polling path should hold the wire/PCIe ceiling", scheme, scalingCores[i], v)
			}
		}
	}
}

// TestScalingFlowSelectionDeterministic: flow selection is a pure function
// of the Toeplitz key and ring count — two machines built alike get the
// same flows on the same rings, with every ring covered.
func TestScalingFlowSelectionDeterministic(t *testing.T) {
	build := func() ([]int, []int) {
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme: testbed.SchemeDAMN, Model: perf.Default28Core(),
			MemBytes: 256 << 20, Seed: 1, RingSize: 8, Cores: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ma.Close()
		perRing := make([]int, ma.NIC.Cfg.Rings)
		var rings []int
		for flow := 1; len(rings) < 2*len(perRing); flow++ {
			g := workloads.NewRSSGenerator(ma, 0, flow, ma.Model.SegmentSize)
			if perRing[g.Ring()] >= 2 {
				continue
			}
			perRing[g.Ring()]++
			rings = append(rings, g.Ring())
		}
		return rings, perRing
	}
	r1, c1 := build()
	r2, c2 := build()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("ring assignment differs across identical machines:\n%v\n%v", r1, r2)
	}
	for ring, n := range c1 {
		if n != 2 {
			t.Errorf("ring %d got %d flows, want 2", ring, n)
		}
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("per-ring flow counts differ: %v vs %v", c1, c2)
	}
}
