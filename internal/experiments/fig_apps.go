package experiments

import (
	"fmt"

	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/workloads"
)

// InterferenceRow is one bar group of Fig 2: bidirectional netperf on 4
// cores concurrent with 3 Graph500 BFS instances on the other 24.
type InterferenceRow struct {
	Config       string // scheme name, "no graph" or "no net"
	NetperfGbps  float64
	GraphIterSec float64 // mean BFS iteration time (0 when no graph runs)
}

// Fig2 reproduces Figure 2.
func Fig2(opts Options) ([]InterferenceRow, error) {
	warm, dur := opts.durations()
	// The paper's run is long enough for several BFS iterations; stretch
	// the window so at least a few complete.
	dur *= 4

	// Scale the BFS problem to the measurement window so several
	// iterations complete (the paper's 2^20-vertex graph iterates on the
	// scale of seconds; the simulated windows are tenths of seconds).
	vertices := 1 << 15
	if opts.Quick {
		vertices = 1 << 14
	}

	netCores := []int{0, 1, 14, 15} // 2 per socket
	graphSets := [][]int{
		{2, 3, 4, 5, 16, 17, 18, 19},
		{6, 7, 8, 9, 20, 21, 22, 23},
		{10, 11, 12, 13, 24, 25, 26, 27},
	}

	run := func(opts Options, scheme testbed.Scheme, withNet, withGraph bool) (InterferenceRow, error) {
		ma, err := newMachine(scheme, opts, 1<<30, 32)
		if err != nil {
			return InterferenceRow{}, err
		}
		defer ma.Close()
		var graphs []*workloads.Graph500Instance
		if withGraph {
			for _, cores := range graphSets {
				graphs = append(graphs, workloads.StartGraph500(workloads.Graph500Config{
					Machine: ma, Cores: cores, Vertices: vertices,
				}))
			}
		}
		row := InterferenceRow{Config: string(scheme)}
		if withNet {
			res, err := workloads.RunNetperf(workloads.NetperfConfig{
				Machine: ma, Warmup: warm, Duration: dur,
				RXCores: netCores, TXCores: netCores,
				ExtraCycles: extraFig2,
			})
			if err != nil {
				return InterferenceRow{}, err
			}
			row.NetperfGbps = res.TotalGbps
		} else {
			ma.Sim.Run(warm + dur)
		}
		for _, g := range graphs {
			g.Stop()
		}
		label := string(scheme)
		switch {
		case !withGraph:
			label += "-nograph"
		case !withNet:
			label += "-nonet"
		}
		opts.emit("fig2/"+label, ma)
		if withGraph {
			var sum sim.Time
			n := 0
			for _, g := range graphs {
				if t := g.MeanIterTime(); t > 0 {
					sum += t
					n++
				}
			}
			if n > 0 {
				row.GraphIterSec = (sum / sim.Time(n)).Seconds()
			}
		}
		return row, nil
	}

	type spec struct {
		scheme             testbed.Scheme
		withNet, withGraph bool
		rename             string
	}
	var specs []spec
	for _, scheme := range testbed.AllSchemes {
		specs = append(specs, spec{scheme, true, true, ""})
	}
	// "no graph": netperf alone with the IOMMU off; "no net": Graph500 alone.
	specs = append(specs,
		spec{testbed.SchemeOff, true, false, "no graph"},
		spec{testbed.SchemeOff, false, true, "no net"})
	return runJobs(opts, len(specs), func(i int, opts Options) (InterferenceRow, error) {
		s := specs[i]
		r, err := run(opts, s.scheme, s.withNet, s.withGraph)
		if err != nil {
			return InterferenceRow{}, err
		}
		if s.rename != "" {
			r.Config = s.rename
		}
		return r, nil
	})
}

// RenderFig2 renders the figure as text.
func RenderFig2(rows []InterferenceRow) string {
	var cells [][]string
	for _, r := range rows {
		net, g := "-", "-"
		if r.NetperfGbps > 0 {
			net = f1(r.NetperfGbps)
		}
		if r.GraphIterSec > 0 {
			g = fmt.Sprintf("%.3f", r.GraphIterSec)
		}
		cells = append(cells, []string{r.Config, net, g})
	}
	return "Figure 2: netperf + Graph500 interference (4 net cores, 3×8 BFS cores)\n" +
		RenderTable([]string{"config", "netperf Gb/s", "BFS s/iter"}, cells)
}

// MemcachedRow is one bar pair of Fig 7.
type MemcachedRow struct {
	Scheme  string
	TPS     float64
	CPUUtil float64
}

// Fig7 reproduces Figure 7: 28 memcached instances under memslap with
// 50/50 GET/SET of 512 KiB values.
func Fig7(opts Options) ([]MemcachedRow, error) {
	warm, dur := opts.durations()
	schemes := testbed.AllSchemes
	return runJobs(opts, len(schemes), func(i int, opts Options) (MemcachedRow, error) {
		scheme := schemes[i]
		ma, err := newMachine(scheme, opts, 1<<30, 32)
		if err != nil {
			return MemcachedRow{}, err
		}
		defer ma.Close()
		res, err := workloads.RunMemcached(workloads.MemcachedConfig{
			Machine: ma, Warmup: warm, Duration: dur,
		})
		if err != nil {
			return MemcachedRow{}, err
		}
		opts.emit("fig7/"+string(scheme), ma)
		return MemcachedRow{Scheme: string(scheme), TPS: res.TPS, CPUUtil: res.CPUUtil}, nil
	})
}

// RenderFig7 renders the figure as text.
func RenderFig7(rows []MemcachedRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Scheme, fmt.Sprintf("%.0f", r.TPS), pct(r.CPUUtil)})
	}
	return "Figure 7: memcached (28 instances, 50/50 GET/SET, 512 KiB values)\n" +
		RenderTable([]string{"scheme", "TPS", "CPU"}, cells)
}

// TocttouRow is one point of Fig 8: CPU use as a netfilter callback
// accesses a growing fraction of each segment's bytes.
type TocttouRow struct {
	Scheme        string
	AccessedBytes int
	CPUUtil       float64 // of the 14 cores used
	Gbps          float64
}

// Fig8 reproduces Figure 8: netperf RX on the 14 cores of one socket with
// an XOR netfilter callback touching 0 B … 64 KiB of each segment.
func Fig8(opts Options) ([]TocttouRow, error) {
	warm, dur := opts.durations()
	sizes := []int{0, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}
	schemes := []testbed.Scheme{testbed.SchemeOff, testbed.SchemeShadow, testbed.SchemeDAMN}
	type spec struct {
		scheme testbed.Scheme
		n      int
	}
	var specs []spec
	for _, scheme := range schemes {
		for _, n := range sizes {
			specs = append(specs, spec{scheme, n})
		}
	}
	return runJobs(opts, len(specs), func(i int, opts Options) (TocttouRow, error) {
		scheme, n := specs[i].scheme, specs[i].n
		ma, err := newMachine(scheme, opts, 1<<30, 32)
		if err != nil {
			return TocttouRow{}, err
		}
		defer ma.Close()
		if n > 0 {
			ma.Kernel.Netfilter.Register(func(t *sim.Task, skb *netstack.SKBuff) netstack.Verdict {
				// Access pulls the bytes out of the device's
				// reach (the DAMN copy); the XOR itself is the
				// cheap segment processing of §6.2.
				if _, err := skb.Access(t, n); err != nil {
					return netstack.Drop
				}
				perf.Charge(t, float64(n)*ma.Model.XorCyclesPerByte)
				return netstack.Accept
			})
		}
		res, err := workloads.RunNetperf(workloads.NetperfConfig{
			Machine: ma, Warmup: warm, Duration: dur,
			RXCores:     seqCores(14),
			ExtraCycles: extraFig8, Wakeup: true,
		})
		if err != nil {
			return TocttouRow{}, err
		}
		opts.emit(fmt.Sprintf("fig8/%s-%dB", scheme, n), ma)
		return TocttouRow{
			Scheme:        string(scheme),
			AccessedBytes: n,
			// Report CPU relative to the 14 busy cores, as the figure does.
			CPUUtil: res.CPUUtil * float64(len(ma.Cores)) / 14,
			Gbps:    res.RXGbps,
		}, nil
	})
}

// RenderFig8 renders the figure as text.
func RenderFig8(rows []TocttouRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scheme, fmt.Sprintf("%d", r.AccessedBytes), pct(r.CPUUtil), f1(r.Gbps),
		})
	}
	return "Figure 8: CPU cost of accessing packet bytes (14-core RX + XOR netfilter)\n" +
		RenderTable([]string{"scheme", "bytes accessed", "CPU (14 cores)", "Gb/s"}, cells)
}
