package recovery_test

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// newMachine builds a small DAMN machine with the fault plane armed (all
// rates zero) so the watchdog is running, like a production deployment.
func newMachine(t *testing.T, scheme testbed.Scheme) *testbed.Machine {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: scheme,
		Cores:  2,
		Faults: &faults.Config{Seed: 1, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

// stormUntil drives synthetic device faults (translations of an unmapped
// IOVA — each deposits a fault record attributed to the NIC) until the
// supervisor reaches the wanted state, then stops the fault source.
func stormUntil(t *testing.T, ma *testbed.Machine, sup *recovery.Supervisor, want recovery.State) {
	t.Helper()
	stop := ma.Sim.Every(2*sim.Microsecond, func() {
		_, _ = ma.IOMMU.Translate(testbed.NICDeviceID, iommu.IOVA(0xdead0000), true)
	})
	deadline := ma.Sim.Now() + 100*sim.Millisecond
	for ma.Sim.Now() < deadline && sup.State(testbed.NICDeviceID) != want {
		ma.Sim.Run(ma.Sim.Now() + 10*sim.Microsecond)
	}
	stop()
	if got := sup.State(testbed.NICDeviceID); got != want {
		t.Fatalf("device never reached %s; stuck at %s", want, got)
	}
}

// runUntilState steps the engine until the device reaches the state.
func runUntilState(t *testing.T, ma *testbed.Machine, sup *recovery.Supervisor, want recovery.State) {
	t.Helper()
	deadline := ma.Sim.Now() + 100*sim.Millisecond
	for ma.Sim.Now() < deadline && sup.State(testbed.NICDeviceID) != want {
		ma.Sim.Run(ma.Sim.Now() + 10*sim.Microsecond)
	}
	if got := sup.State(testbed.NICDeviceID); got != want {
		t.Fatalf("device never reached %s; stuck at %s", want, got)
	}
}

// TestStormQuarantineHeal walks the full state machine: a fault storm must
// degrade, quarantine, reset and heal the device, with the allocator's
// conservation invariants intact and the recovery evidence recorded.
func TestStormQuarantineHeal(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN)
	sup := recovery.Attach(ma, recovery.Config{})
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}

	stormUntil(t, ma, sup, recovery.Quarantined)
	if !ma.NIC.Quarantined() {
		t.Error("NIC not fenced while Quarantined")
	}
	if ma.IOMMU.Attached(testbed.NICDeviceID) {
		t.Error("IOMMU domain still attached while Quarantined")
	}

	runUntilState(t, ma, sup, recovery.Healthy)
	if !ma.IOMMU.Attached(testbed.NICDeviceID) {
		t.Error("domain not re-attached after recovery")
	}
	if ma.NIC.Quarantined() {
		t.Error("NIC still fenced after recovery")
	}
	if sup.Storms == 0 || sup.Quarantines == 0 || sup.Resets == 0 || sup.Reinits == 0 {
		t.Errorf("missing intervention counts: %+v", sup)
	}
	if sup.MTTR(testbed.NICDeviceID) <= 0 {
		t.Error("MTTR not recorded")
	}
	if sup.ReleasedPages == 0 {
		t.Error("reset reclaimed no DAMN pages")
	}
	// The rings were refilled: chunks are live again.
	if _, err := ma.Damn.Audit(); err != nil {
		t.Errorf("conservation audit after recovery: %v", err)
	}
	rec, _, _ := ma.IOMMU.DeviceFaultStats(testbed.NICDeviceID)
	if rec == 0 {
		t.Error("no per-device fault records attributed to the NIC")
	}
	// The state machine must have walked the canonical path.
	var path []recovery.State
	for _, tr := range sup.Transitions {
		if tr.Dev == testbed.NICDeviceID {
			path = append(path, tr.To)
		}
	}
	want := []recovery.State{recovery.Degraded, recovery.Quarantined, recovery.Resetting,
		recovery.Reinitializing, recovery.Healthy}
	if len(path) < len(want) {
		t.Fatalf("transition path too short: %v", path)
	}
	// Degraded may be skipped if the storm trips both thresholds in one
	// poll; check the tail from Quarantined onward.
	tail := path[len(path)-4:]
	if !reflect.DeepEqual(tail, want[1:]) {
		t.Errorf("transition tail %v, want %v", tail, want[1:])
	}
	if sup.StateTime(testbed.NICDeviceID, recovery.Quarantined) <= 0 {
		t.Error("no time accounted to Quarantined")
	}
}

// TestDeterminism: two identical machines driven through the same storm
// must record identical transition sequences and fault evidence.
func TestDeterminism(t *testing.T) {
	run := func() ([]recovery.Transition, uint64) {
		ma := newMachine(t, testbed.SchemeDAMN)
		sup := recovery.Attach(ma, recovery.Config{})
		if err := ma.FillAllRings(); err != nil {
			t.Fatal(err)
		}
		stormUntil(t, ma, sup, recovery.Quarantined)
		runUntilState(t, ma, sup, recovery.Healthy)
		rec, _, _ := ma.IOMMU.DeviceFaultStats(testbed.NICDeviceID)
		return sup.Transitions, rec
	}
	trA, recA := run()
	trB, recB := run()
	if !reflect.DeepEqual(trA, trB) {
		t.Errorf("transition sequences diverge:\n a=%v\n b=%v", trA, trB)
	}
	if recA != recB {
		t.Errorf("fault-record counts diverge: %d vs %d", recA, recB)
	}
}

// TestRemovalAndHotplug: surprise removal takes the containment path with
// no re-attach (Failed); hotplugging a replacement heals the domain.
func TestRemovalAndHotplug(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN)
	sup := recovery.Attach(ma, recovery.Config{})
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	ma.Sim.Run(ma.Sim.Now() + 100*sim.Microsecond)

	if err := sup.Remove(testbed.NICDeviceID); err != nil {
		t.Fatal(err)
	}
	runUntilState(t, ma, sup, recovery.Failed)
	if !ma.NIC.Removed() {
		t.Error("NIC not marked removed")
	}
	if ma.IOMMU.Attached(testbed.NICDeviceID) {
		t.Error("removed device still has an IOMMU domain")
	}
	if _, err := ma.Damn.Audit(); err != nil {
		t.Errorf("conservation audit after removal: %v", err)
	}

	if err := sup.Hotplug(testbed.NICDeviceID); err != nil {
		t.Fatal(err)
	}
	runUntilState(t, ma, sup, recovery.Healthy)
	if ma.NIC.Removed() || ma.NIC.Quarantined() {
		t.Error("hotplugged NIC not back in service")
	}
	if !ma.IOMMU.Attached(testbed.NICDeviceID) {
		t.Error("hotplugged device has no IOMMU domain")
	}
	if sup.Hotplugs != 1 || sup.Removals != 1 {
		t.Errorf("removal/hotplug counts wrong: %+v", sup)
	}
}

// TestBoundedRetriesFail: when reinitialisation keeps failing (allocation
// faults at rate 1.0 starve every ring refill), the supervisor must retry
// with backoff at most MaxResets times and then park the device as Failed —
// not loop forever.
func TestBoundedRetriesFail(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDeferred)
	sup := recovery.Attach(ma, recovery.Config{MaxResets: 2})
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	ma.Faults.SetRate(faults.AllocFail, 1.0)
	stormUntil(t, ma, sup, recovery.Quarantined)
	runUntilState(t, ma, sup, recovery.Failed)
	if sup.Failures != 1 {
		t.Errorf("failures = %d, want 1", sup.Failures)
	}
	if got := sup.ResetsFor(testbed.NICDeviceID); got != 2 {
		t.Errorf("reset attempts = %d, want exactly MaxResets=2", got)
	}
	if ma.IOMMU.Attached(testbed.NICDeviceID) {
		t.Error("failed device left attached")
	}
}

// TestWatchdogQuarantineInterplay: while the device is quarantined or
// resetting, the NAPI watchdog must not repost buffers into it (the fence
// rejects posts; the watchdog skips the device entirely), and after
// reinitialisation the rings must be full again without watchdog help.
func TestWatchdogQuarantineInterplay(t *testing.T) {
	ma := newMachine(t, testbed.SchemeDAMN)
	sup := recovery.Attach(ma, recovery.Config{
		// Slow the reset down so several watchdog periods elapse while
		// the device is down.
		ResetBackoff: 2 * sim.Millisecond,
	})
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	stormUntil(t, ma, sup, recovery.Quarantined)

	posted := func() int {
		n := 0
		for ring := 0; ring < ma.NIC.Cfg.Rings; ring++ {
			p, err := ma.NIC.RXPosted(ring)
			if err != nil {
				t.Fatal(err)
			}
			n += p
		}
		return n
	}
	if posted() != 0 {
		t.Fatalf("quarantine left %d descriptors posted", posted())
	}
	// Let the watchdog run while the device is down: no repost may land.
	for i := 0; i < 10; i++ {
		ma.Sim.Run(ma.Sim.Now() + 100*sim.Microsecond)
		if sup.State(testbed.NICDeviceID) != recovery.Quarantined {
			break
		}
		if posted() != 0 {
			t.Fatalf("watchdog reposted %d descriptors into a quarantined device", posted())
		}
	}

	runUntilState(t, ma, sup, recovery.Healthy)
	want := ma.NIC.Cfg.Rings * ma.NIC.Cfg.RingSize
	if posted() != want {
		t.Errorf("rings not refilled after reinit: %d posted, want %d", posted(), want)
	}
	if _, err := ma.Damn.Audit(); err != nil {
		t.Errorf("conservation audit: %v", err)
	}
}
