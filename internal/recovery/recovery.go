// Package recovery implements per-device fault-domain containment and
// automated recovery on top of the simulated testbed. Each supervised
// device is one fault domain: its IOMMU domain, its DMA mappings, its DAMN
// chunks and its driver rings live and die together. The supervisor watches
// the IOMMU's fault-record ring and the driver watchdog's ring shortfalls
// for fault storms, quarantines the offending device (detach the domain,
// drop in-flight DMA), performs a function-level reset (drain the
// invalidation queue, tear down and rebuild mappings, reclaim allocator
// state owned by the dead domain) and reinitialises the driver — or parks
// the device as Failed after a bounded number of reset attempts. Surprise
// removal takes the same teardown path with no re-attach; hotplug reverses
// it.
//
// Everything is driven by the discrete-event engine: detection runs on a
// polled sim-time window, resets are charged simulated latency, and retry
// backoff is exponential in simulated time — so recovery latencies are
// measurable quantities, deterministic under a fixed fault seed.
package recovery

import (
	"fmt"
	"sort"

	"github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
)

// State is one node of the per-device recovery state machine.
type State int

const (
	// Healthy: the device is attached and passing traffic.
	Healthy State = iota
	// Degraded: faults are arriving above the degrade threshold but below
	// the storm threshold; the device keeps running under observation.
	Degraded
	// Quarantined: the storm threshold tripped — the IOMMU domain is
	// detached, in-flight DMA aborts at the bus, rings are drained.
	Quarantined
	// Resetting: function-level reset in progress (invalidation drain,
	// mapping teardown, allocator reclamation).
	Resetting
	// Reinitializing: domain re-attached, driver rings refilling.
	Reinitializing
	// Failed: recovery abandoned — reset retries exhausted or the device
	// was surprise-removed. Only Hotplug leaves this state.
	Failed
)

var stateNames = [...]string{"healthy", "degraded", "quarantined", "resetting", "reinitializing", "failed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config tunes the supervisor. Zero fields take defaults.
type Config struct {
	// Window is the sliding sim-time window over which fault signals are
	// counted.
	Window sim.Time
	// DegradeThreshold is the signal count in Window that moves a Healthy
	// device to Degraded.
	DegradeThreshold int
	// StormThreshold is the count that declares a storm and quarantines.
	StormThreshold int
	// Poll is the supervisor's detection period.
	Poll sim.Time
	// MaxResets bounds reset attempts per quarantine before Failed.
	MaxResets int
	// ResetBackoff is the delay before the first reset attempt; it doubles
	// per retry (exponential backoff in simulated time).
	ResetBackoff sim.Time
	// ResetTime is the simulated duration of the function-level reset
	// itself (config-space cycling; PCIe requires 100 ms after FLR, scaled
	// down here like every latency in the model).
	ResetTime sim.Time
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 200 * sim.Microsecond
	}
	if c.DegradeThreshold == 0 {
		c.DegradeThreshold = 8
	}
	if c.StormThreshold == 0 {
		c.StormThreshold = 32
	}
	if c.Poll == 0 {
		c.Poll = 50 * sim.Microsecond
	}
	if c.MaxResets == 0 {
		c.MaxResets = 3
	}
	if c.ResetBackoff == 0 {
		c.ResetBackoff = 100 * sim.Microsecond
	}
	if c.ResetTime == 0 {
		c.ResetTime = 50 * sim.Microsecond
	}
	return c
}

// devState is the supervisor's view of one fault domain.
type devState struct {
	dev   int
	drv   *netstack.Driver // nil for devices without a supervised driver
	state State
	// window holds the sim timestamps of recent fault signals.
	window []sim.Time
	// lastShortfall is the watchdog shortfall at the previous poll; the
	// delta is the new-signal count.
	lastShortfall int
	resets        int
	enteredAt     sim.Time
	quarantinedAt sim.Time
	stormStart    sim.Time
	// stateTime accumulates sim time spent per state.
	stateTime [Failed + 1]sim.Time
	// busy blocks the poller from re-triggering while a transition
	// sequence is in flight on the event queue.
	busy bool

	stateG *stats.Gauge
}

// Supervisor drives fault-domain containment for one machine.
type Supervisor struct {
	se    *sim.Engine
	core  *sim.Core
	u     *iommu.IOMMU
	dma   *dmaapi.Engine
	damn  *damn.DAMN // nil on non-DAMN schemes
	model *perf.Model
	cfg   Config
	devs  map[int]*devState
	order []int
	stop  func()

	// OnRecovered, when non-nil, runs after a device returns to Healthy —
	// workloads use it to kick senders whose pumps stalled on a
	// quarantined ring.
	OnRecovered func(dev int)

	// OnForeignRecord, when non-nil, receives fault records whose source
	// device the supervisor does not manage. The IOMMU's fault-record ring
	// is single-consumer (reading pops it), so when both the device
	// supervisor and the tenant manager are attached, the supervisor owns
	// the read and forwards unclaimed records — tenant virtual functions —
	// through this hook instead of silently consuming them.
	OnForeignRecord func(rec iommu.FaultRecord)

	// Transitions records every state change in order (test and report
	// instrumentation).
	Transitions []Transition

	Storms      uint64
	Quarantines uint64
	Resets      uint64
	Reinits     uint64
	Failures    uint64
	Removals    uint64
	Hotplugs    uint64
	// ReleasedPages / PinnedChunks aggregate DAMN reclamation results.
	ReleasedPages int64
	PinnedChunks  int

	stormsC    *stats.Counter
	quarC      *stats.Counter
	resetC     *stats.Counter
	reinitC    *stats.Counter
	failC      *stats.Counter
	mttrG      *stats.Gauge
	recoveryH  *stats.Histogram
	detectH    *stats.Histogram
	stateTimeC map[State]*stats.FloatCounter
	reg        *stats.Registry
}

// Transition is one recorded state change.
type Transition struct {
	Dev  int
	From State
	To   State
	At   sim.Time
}

// Attach builds a supervisor over a machine's devices and starts its
// detection poll. Supervised devices: the NIC (with its driver) when
// present, plus the NVMe identity (fault counting only — it has no driver
// in this testbed). Stop the returned supervisor's poll via Stop.
func Attach(ma *testbed.Machine, cfg Config) *Supervisor {
	s := &Supervisor{
		se:    ma.Sim,
		core:  ma.Cores[0],
		u:     ma.IOMMU,
		dma:   ma.DMA,
		damn:  ma.Damn,
		model: ma.Model,
		cfg:   cfg.withDefaults(),
		devs:  make(map[int]*devState),
		reg:   ma.Stats,
	}
	if ma.NIC != nil {
		s.addDevice(testbed.NICDeviceID, ma.Driver)
	}
	s.addDevice(testbed.NVMeDeviceID, nil)
	s.initStats()
	s.stop = s.se.Every(s.cfg.Poll, s.poll)
	return s
}

func (s *Supervisor) addDevice(dev int, drv *netstack.Driver) {
	ds := &devState{dev: dev, drv: drv, state: Healthy, enteredAt: s.se.Now()}
	if s.reg != nil {
		ds.stateG = s.reg.Gauge("recovery", fmt.Sprintf("state_dev%d", dev))
	}
	s.devs[dev] = ds
	s.order = append(s.order, dev)
	sort.Ints(s.order)
}

func (s *Supervisor) initStats() {
	r := s.reg
	if r == nil {
		return
	}
	s.stormsC = r.Counter("recovery", "storms")
	s.quarC = r.Counter("recovery", "quarantines")
	s.resetC = r.Counter("recovery", "resets")
	s.reinitC = r.Counter("recovery", "reinits")
	s.failC = r.Counter("recovery", "failures")
	s.mttrG = r.Gauge("recovery", "mttr_ps")
	s.recoveryH = r.Histogram("recovery", "recovery_ps")
	s.detectH = r.Histogram("recovery", "detect_ps")
	s.stateTimeC = make(map[State]*stats.FloatCounter, int(Failed)+1)
	for st := Healthy; st <= Failed; st++ {
		s.stateTimeC[st] = r.FloatCounter("recovery", "time_"+st.String()+"_ps")
	}
}

// Stop halts the detection poll (pending transition events still run).
func (s *Supervisor) Stop() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// State reports a device's current recovery state.
func (s *Supervisor) State(dev int) State {
	if ds := s.devs[dev]; ds != nil {
		return ds.state
	}
	return Healthy
}

// Resets reports how many reset attempts the device's current (or last)
// quarantine consumed.
func (s *Supervisor) ResetsFor(dev int) int {
	if ds := s.devs[dev]; ds != nil {
		return ds.resets
	}
	return 0
}

// StateTime reports accumulated sim time the device spent in a state.
func (s *Supervisor) StateTime(dev int, st State) sim.Time {
	ds := s.devs[dev]
	if ds == nil || int(st) >= len(ds.stateTime) {
		return 0
	}
	t := ds.stateTime[st]
	if ds.state == st {
		t += s.se.Now() - ds.enteredAt
	}
	return t
}

func (s *Supervisor) setState(ds *devState, to State) {
	now := s.se.Now()
	ds.stateTime[ds.state] += now - ds.enteredAt
	if c := s.stateTimeC[ds.state]; c != nil {
		c.Add(float64(now - ds.enteredAt))
	}
	s.Transitions = append(s.Transitions, Transition{Dev: ds.dev, From: ds.state, To: to, At: now})
	ds.state = to
	ds.enteredAt = now
	if ds.stateG != nil {
		ds.stateG.Set(int64(to))
	}
}

// poll is the detection tick: harvest fault signals, age the window, drive
// Healthy/Degraded/Quarantined transitions. Devices are visited in sorted
// order so the event stream is deterministic.
func (s *Supervisor) poll() {
	now := s.se.Now()
	// Harvest the IOMMU's fault-record ring once and attribute per source
	// device (the ring is shared hardware; records carry the source id).
	for _, rec := range s.u.ReadFaultRecords() {
		if ds := s.devs[rec.Dev]; ds != nil {
			ds.window = append(ds.window, now)
		} else if s.OnForeignRecord != nil {
			s.OnForeignRecord(rec)
		}
	}
	for _, dev := range s.order {
		ds := s.devs[dev]
		// Watchdog shortfall growth means RX posting keeps failing —
		// allocation faults or a sick ring; count the delta as signals.
		if ds.drv != nil && (ds.state == Healthy || ds.state == Degraded) {
			sf := ds.drv.Shortfall()
			if d := sf - ds.lastShortfall; d > 0 {
				for i := 0; i < d; i++ {
					ds.window = append(ds.window, now)
				}
			}
			ds.lastShortfall = sf
		}
		// Age the sliding window.
		cut := 0
		for cut < len(ds.window) && now-ds.window[cut] > s.cfg.Window {
			cut++
		}
		if cut > 0 {
			ds.window = append(ds.window[:0], ds.window[cut:]...)
		}
		if ds.busy {
			continue
		}
		switch ds.state {
		case Healthy:
			if len(ds.window) >= s.cfg.StormThreshold {
				s.declareStorm(ds)
			} else if len(ds.window) >= s.cfg.DegradeThreshold {
				s.setState(ds, Degraded)
			}
		case Degraded:
			if len(ds.window) >= s.cfg.StormThreshold {
				s.declareStorm(ds)
			} else if len(ds.window) == 0 {
				s.setState(ds, Healthy)
			}
		}
	}
}

func (s *Supervisor) declareStorm(ds *devState) {
	s.Storms++
	if s.stormsC != nil {
		s.stormsC.Inc()
	}
	ds.stormStart = ds.window[0]
	if s.detectH != nil {
		s.detectH.Observe(float64(s.se.Now() - ds.stormStart))
	}
	ds.resets = 0
	s.quarantine(ds, false)
}

// quarantine detaches the fault domain and schedules the reset. The
// sequence runs as an interrupt task on core 0 so every driver/DMA/IOMMU
// mutation happens atomically at one sim timestamp, interleaved cleanly
// with in-flight traffic events.
func (s *Supervisor) quarantine(ds *devState, removal bool) {
	ds.busy = true
	s.core.Submit(true, func(t *sim.Task) {
		// The state flips at the moment containment executes, so an
		// observer seeing Quarantined can rely on the fence being up.
		s.setState(ds, Quarantined)
		ds.quarantinedAt = s.se.Now()
		s.Quarantines++
		if s.quarC != nil {
			s.quarC.Inc()
		}
		// Order matters: drain the driver while the domain is still
		// attached (legacy unmaps must succeed so IOVA slots recycle),
		// then flush the scheme's deferred batch for this device, then
		// detach — after which any in-flight DMA aborts at the bus.
		if ds.drv != nil {
			ds.drv.QuarantineDrain(t)
			ds.lastShortfall = 0
			if removal {
				// Mark removal after the drain: QuarantineDrain consumed
				// the NIC's reclaim list; Remove's second Quarantine is an
				// idempotent no-op.
				ds.drv.NIC().Remove()
			}
		}
		s.dma.ResetDevice(t, ds.dev)
		s.u.DetachDevice(ds.dev)
		ds.window = ds.window[:0]
		if removal {
			s.failDevice(ds)
			return
		}
		s.scheduleReset(ds)
	})
}

func (s *Supervisor) scheduleReset(ds *devState) {
	// Exponential backoff charged to simulated time: 1x, 2x, 4x...
	delay := s.cfg.ResetBackoff << uint(ds.resets)
	s.se.After(delay, func() { s.reset(ds) })
}

// reset is the function-level reset: drain the invalidation queue so no
// stale IOTLB entry survives into the next domain, reclaim the allocator
// state that belonged to the dead domain, then re-attach and reinitialise.
func (s *Supervisor) reset(ds *devState) {
	s.setState(ds, Resetting)
	s.Resets++
	ds.resets++
	if s.resetC != nil {
		s.resetC.Inc()
	}
	s.core.Submit(true, func(t *sim.Task) {
		// Domain-wide invalidation: the IOTLB may cache translations from
		// the destroyed domain; InvDomain works detached.
		if err := s.u.InvQ().Submit(iommu.Command{Kind: iommu.InvDomain, Dev: ds.dev}); err == nil {
			s.u.InvQ().DrainRetry(t, s.model.ITETimeout)
		}
		if s.damn != nil {
			released, pinned := s.damn.ReleaseDevice(damn.Ctx{C: t}, ds.dev)
			s.ReleasedPages += released
			s.PinnedChunks = pinned
		}
		// The function-level reset itself (device quiesce + config-space
		// restore), charged as wall time on the supervising core.
		t.ChargeTime(s.cfg.ResetTime)
		s.reinit(ds, t)
	})
}

// reinit re-attaches the IOMMU domain and rebuilds the driver rings. A
// failure (e.g. injected allocation faults during refill are fine — the
// watchdog tops rings up — but a Resume on a removed device is not)
// retries with doubled backoff, then gives up.
func (s *Supervisor) reinit(ds *devState, t *sim.Task) {
	s.setState(ds, Reinitializing)
	s.Reinits++
	if s.reinitC != nil {
		s.reinitC.Inc()
	}
	s.u.AttachDevice(ds.dev)
	var err error
	if ds.drv != nil {
		err = ds.drv.Reinit(t)
	}
	if err != nil {
		s.u.DetachDevice(ds.dev)
		if ds.resets >= s.cfg.MaxResets {
			s.failDevice(ds)
			return
		}
		s.setState(ds, Quarantined)
		s.scheduleReset(ds)
		return
	}
	s.recovered(ds)
}

func (s *Supervisor) recovered(ds *devState) {
	s.setState(ds, Healthy)
	ds.busy = false
	ds.window = ds.window[:0]
	if ds.drv != nil {
		ds.lastShortfall = ds.drv.Shortfall()
	}
	mttr := s.se.Now() - ds.quarantinedAt
	if s.recoveryH != nil {
		s.recoveryH.Observe(float64(mttr))
	}
	if s.mttrG != nil {
		s.mttrG.Set(int64(mttr))
	}
	if s.OnRecovered != nil {
		s.OnRecovered(ds.dev)
	}
}

func (s *Supervisor) failDevice(ds *devState) {
	s.setState(ds, Failed)
	ds.busy = false
	s.Failures++
	if s.failC != nil {
		s.failC.Inc()
	}
}

// MTTR returns the last observed quarantine-to-healthy latency for a
// device, or 0 if it never recovered.
func (s *Supervisor) MTTR(dev int) sim.Time {
	ds := s.devs[dev]
	if ds == nil {
		return 0
	}
	for i := len(s.Transitions) - 1; i >= 0; i-- {
		tr := s.Transitions[i]
		if tr.Dev == dev && tr.To == Healthy && tr.From == Reinitializing {
			return tr.At - ds.quarantinedAt
		}
	}
	return 0
}

// Remove simulates surprise device removal: the same containment path as a
// storm quarantine, but the device is gone, so no reset is attempted and
// the domain stays Failed until Hotplug.
func (s *Supervisor) Remove(dev int) error {
	ds := s.devs[dev]
	if ds == nil {
		return fmt.Errorf("recovery: unsupervised device %d", dev)
	}
	if ds.state == Failed {
		return nil
	}
	s.Removals++
	s.quarantine(ds, true)
	return nil
}

// Hotplug re-inserts a Failed device and runs the reinitialisation path.
func (s *Supervisor) Hotplug(dev int) error {
	ds := s.devs[dev]
	if ds == nil {
		return fmt.Errorf("recovery: unsupervised device %d", dev)
	}
	if ds.state != Failed {
		return fmt.Errorf("recovery: device %d is %s, not failed", dev, ds.state)
	}
	s.Hotplugs++
	ds.busy = true
	ds.resets = 0
	if ds.drv != nil {
		ds.drv.NIC().Reinsert()
	}
	ds.quarantinedAt = s.se.Now()
	s.core.Submit(true, func(t *sim.Task) { s.reinit(ds, t) })
	return nil
}
