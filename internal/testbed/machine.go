// Package testbed assembles complete simulated machines — memory, IOMMU,
// cores, DMA API with the selected protection scheme, optional DAMN
// deployment, NIC and driver. The workload and experiment packages build
// every evaluation scenario of the paper on top of these machines.
package testbed

import (
	"fmt"

	damncore "github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Scheme selects the IOMMU protection configuration of a machine, covering
// every evaluated system of §6 plus the Table 3 analysis variants.
type Scheme string

const (
	// SchemeOff: IOMMU disabled (passthrough) — no protection.
	SchemeOff Scheme = "iommu-off"
	// SchemeStrict: synchronous IOTLB invalidation on every unmap.
	SchemeStrict Scheme = "strict"
	// SchemeDeferred: batched invalidations (Linux default).
	SchemeDeferred Scheme = "deferred"
	// SchemeShadow: DMA shadow buffers (ASPLOS'16).
	SchemeShadow Scheme = "shadow"
	// SchemeDAMN: the paper's system — DAMN allocator + interposition,
	// falling back to deferred for non-DAMN buffers (§5.3).
	SchemeDAMN Scheme = "damn"
	// SchemeDAMNHugeDense: Table 3 variant — dense huge-page IOVAs.
	SchemeDAMNHugeDense Scheme = "damn+huge+dense"
	// SchemeDAMNNoIOMMU: Table 3 variant — DAMN software stack with the
	// IOMMU in passthrough (isolates IOMMU hardware overheads).
	SchemeDAMNNoIOMMU Scheme = "damn-without-iommu"
	// SchemeDAMNSingleCtx: ablation — one DMA-cache copy per core with
	// interrupt disabling instead of §5.4's two physical copies.
	SchemeDAMNSingleCtx Scheme = "damn-single-context"
	// SchemeDAMNNoCache: ablation — no chunk caching; every buffer
	// builds and tears down its mapping.
	SchemeDAMNNoCache Scheme = "damn-no-dma-cache"
	// SchemeBypassRaw: kernel-bypass polling path with permanent identity
	// mappings and no IOMMU protection — the DPDK baseline the paper never
	// got compared against.
	SchemeBypassRaw Scheme = "bypass-raw"
	// SchemeBypassProt: the same bypass rings behind a per-app IOMMU
	// domain whose mappings are registered once at setup (CAPIO-style
	// protected bypass).
	SchemeBypassProt Scheme = "bypass-prot"
)

// AllSchemes is the comparison set of Fig 1/4/5/6/7.
var AllSchemes = []Scheme{SchemeOff, SchemeDeferred, SchemeStrict, SchemeShadow, SchemeDAMN}

// BypassSchemes is the kernel-bypass family — kept out of AllSchemes so the
// paper figures stay exactly the paper's comparison; the bypass and scaling
// figures append these columns explicitly.
var BypassSchemes = []Scheme{SchemeBypassRaw, SchemeBypassProt}

// IsBypass reports whether a scheme uses the polling bypass data path.
func IsBypass(s Scheme) bool { return s == SchemeBypassRaw || s == SchemeBypassProt }

// MachineConfig describes a testbed instance.
type MachineConfig struct {
	Scheme   Scheme
	Model    *perf.Model
	MemBytes int64
	Seed     int64
	// RingSize is RX descriptors per ring (per core).
	RingSize int
	// Cores overrides Model.NumCores (0 = use model).
	Cores int
	// NoNIC skips NIC construction (NVMe-only experiments).
	NoNIC bool
	// Tracer, when non-nil, receives Chrome trace_event spans for every
	// simulated task; each machine gets its own trace process.
	Tracer *stats.Tracer
	// Faults, when non-nil, arms the deterministic fault-injection plane
	// across every layer of the machine (see internal/faults). Nil keeps
	// every fault point a single predictable-false nil check — the
	// fault-free numbers are bit-identical to a build without the plane.
	Faults *faults.Config
	// Engine, when non-nil, builds the machine on an existing event
	// engine instead of a private one — how a topology places each
	// machine on its cluster shard. Seed is ignored in that case (the
	// shard's engine already owns the RNG).
	Engine *sim.Engine
}

// Machine is one fully assembled testbed.
type Machine struct {
	Cfg    MachineConfig
	Sim    *sim.Engine
	Mem    *mem.Memory
	Slab   *mem.Slab
	IOMMU  *iommu.IOMMU
	Model  *perf.Model
	MemBW  *sim.MemController
	Cores  []*sim.Core
	DMA    *dmaapi.Engine
	Damn   *damncore.DAMN // nil unless a DAMN scheme
	Kernel *netstack.Kernel
	NIC    *device.NIC
	Driver *netstack.Driver

	// Stats collects metrics from every layer of this machine; always
	// non-nil (the handles are cheap atomics even when nobody reads them).
	Stats *stats.Registry

	// Faults is the machine's fault-injection plane; nil when Cfg.Faults
	// is nil (injection off).
	Faults *faults.Injector
	// StopWatchdog disarms the driver's recovery watchdog (armed only
	// under fault injection). The watchdog re-arms itself every period, so
	// a drain-to-idle run must stop it first. Nil when faults are off.
	StopWatchdog func()

	// Deferred is non-nil when the active (or fallback) scheme batches
	// invalidations — exposed for window inspection.
	Deferred *DeferredHandle
}

// DeferredHandle lets experiments inspect/flush the deferred scheme.
type DeferredHandle struct{ S *dmaapi.DeferredScheme }

// NICDeviceID is the NIC's IOMMU identity in every machine.
const NICDeviceID = 1

// NVMeDeviceID is the SSD's identity.
const NVMeDeviceID = 2

// BypassDeviceID is the DMA identity of the kernel-bypass application's
// queue pair (an SR-IOV VF handed to user space); bypass rings re-bind to
// it so their transfers translate — and fault — in the app's own domain.
// Distinct from the tenant VF range (which starts at 8).
const BypassDeviceID = 3

// NewMachine assembles a testbed under the given scheme.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.Model == nil {
		cfg.Model = perf.Default28Core()
	}
	model := cfg.Model
	if cfg.Cores > 0 {
		model.NumCores = cfg.Cores
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 1 << 30
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 64
	}
	m, err := mem.New(mem.Config{TotalBytes: cfg.MemBytes, NUMANodes: model.NumNodes})
	if err != nil {
		return nil, err
	}
	se := cfg.Engine
	if se == nil {
		se = sim.NewEngine(cfg.Seed)
	}
	u := iommu.New(m)
	membw := sim.NewMemController(model.MemBWBytesPerSec)
	membw.Attach(se)

	// Cores split evenly across NUMA nodes (14+14 on the testbed).
	var cores []*sim.Core
	perNode := model.NumCores / model.NumNodes
	if perNode == 0 {
		perNode = model.NumCores
	}
	coreNodes := make([]int, model.NumCores)
	for i := 0; i < model.NumCores; i++ {
		node := i / perNode
		if node >= model.NumNodes {
			node = model.NumNodes - 1
		}
		coreNodes[i] = node
		cores = append(cores, sim.NewCore(se, i, node, model.CoreHz))
	}

	ma := &Machine{
		Cfg: cfg, Sim: se, Mem: m, Slab: mem.NewSlab(m), IOMMU: u,
		Model: model, MemBW: membw, Cores: cores,
		Stats: stats.NewRegistry(),
	}
	se.SetStats(ma.Stats)
	u.SetStats(ma.Stats)
	// Blocked DMAs whose target decodes as another device's DAMN region are
	// classified as neighbour probes (iommu cannot import iova directly).
	u.SetProbeClassifier(func(dev int, v iommu.IOVA) (int, bool) {
		enc, ok := iova.Decode(v)
		if !ok {
			return 0, false
		}
		return enc.Dev, true
	})
	if cfg.Faults != nil {
		ma.Faults = faults.New(*cfg.Faults)
		ma.Faults.SetStats(ma.Stats)
		m.SetFaults(ma.Faults)
		u.SetFaults(ma.Faults)
	}
	if cfg.Tracer != nil {
		pid := cfg.Tracer.Process(string(cfg.Scheme))
		for _, c := range cores {
			cfg.Tracer.ThreadName(pid, c.ID, fmt.Sprintf("core-%d", c.ID))
		}
		se.SetTracer(cfg.Tracer, pid)
	}

	nicDomain := u.AttachDevice(NICDeviceID)
	u.AttachDevice(NVMeDeviceID)

	// Protection scheme + optional DAMN deployment.
	var scheme dmaapi.Scheme
	useDamn := false
	switch cfg.Scheme {
	case SchemeOff:
		nicDomain.Passthrough = true
		u.Domain(NVMeDeviceID).Passthrough = true
		scheme = dmaapi.NewOffScheme()
	case SchemeStrict:
		scheme = dmaapi.NewStrictScheme(u, model)
	case SchemeDeferred, "":
		d := dmaapi.NewDeferredScheme(se, u, model)
		scheme = d
		ma.Deferred = &DeferredHandle{S: d}
	case SchemeShadow:
		scheme = dmaapi.NewShadowScheme(m, u, model, membw)
	case SchemeDAMN, SchemeDAMNHugeDense, SchemeDAMNSingleCtx, SchemeDAMNNoCache:
		// DAMN falls back to the deferred scheme for non-DAMN buffers
		// (§5.3: compatible with any DMA-API-based scheme; deferred is
		// the Linux default).
		d := dmaapi.NewDeferredScheme(se, u, model)
		scheme = d
		ma.Deferred = &DeferredHandle{S: d}
		useDamn = true
	case SchemeDAMNNoIOMMU:
		// Table 3 analysis variant: the full DAMN software stack with
		// the IOMMU in passthrough — dma_map returns physical
		// addresses, isolating DAMN's software overhead from IOMMU
		// hardware effects.
		nicDomain.Passthrough = true
		u.Domain(NVMeDeviceID).Passthrough = true
		scheme = dmaapi.NewOffScheme()
		useDamn = true
	case SchemeBypassRaw:
		// DPDK baseline: everything in passthrough, including the bypass
		// queue pair's own DMA identity — permanent identity mappings,
		// zero protection.
		nicDomain.Passthrough = true
		u.Domain(NVMeDeviceID).Passthrough = true
		u.AttachDevice(BypassDeviceID).Passthrough = true
		scheme = dmaapi.NewOffScheme()
	case SchemeBypassProt:
		// Protected bypass: the app's queue pair gets a real per-app
		// domain (the bypass driver registers its hugepage pool in it
		// once at setup); the kernel's own control path keeps the Linux
		// default deferred scheme.
		u.AttachDevice(BypassDeviceID)
		d := dmaapi.NewDeferredScheme(se, u, model)
		scheme = d
		ma.Deferred = &DeferredHandle{S: d}
	default:
		return nil, fmt.Errorf("testbed: unknown scheme %q", cfg.Scheme)
	}

	ma.DMA = dmaapi.NewEngine(se, m, u, model, scheme)
	ma.DMA.SetStats(ma.Stats)
	ma.DMA.SetFaults(ma.Faults)

	if useDamn {
		dcfg := damncore.DefaultConfig(coreNodes)
		switch cfg.Scheme {
		case SchemeDAMNHugeDense:
			dcfg.DenseHugeIOVA = true
		case SchemeDAMNSingleCtx:
			dcfg.SingleContext = true
		case SchemeDAMNNoCache:
			dcfg.NoDMACache = true
		}
		d, err := damncore.New(m, u, model, dcfg)
		if err != nil {
			return nil, err
		}
		ma.Damn = d
		d.SetStats(ma.Stats)
		// §5.4: under memory pressure the OS invokes DAMN's shrinker
		// to reclaim chunks cached in magazines and the depot.
		m.RegisterShrinker(func() int64 { return d.Shrink(damncore.Ctx{}) })
		if cfg.Scheme != SchemeDAMNNoIOMMU {
			// With the IOMMU off, dma_map must return physical
			// addresses, so the interposer stays out of the path.
			ma.DMA.SetInterposer(&damncore.Interposer{D: d})
		}
	}

	ma.Kernel = &netstack.Kernel{
		Sim: se, Mem: m, Slab: ma.Slab, IOMMU: u, DMA: ma.DMA,
		Damn: ma.Damn, Model: model, MemBW: membw, Cores: cores,
	}
	ma.Kernel.SetStats(ma.Stats)

	if !cfg.NoNIC {
		ma.NIC = device.NewNIC(se, u, model, membw, cores, device.NICConfig{
			ID: NICDeviceID, Ports: model.NICPorts,
			RingSize: cfg.RingSize, TxRing: 256, Rings: model.NumCores,
			WireGbps: model.WireGbpsPerPort, PCIeGbps: model.PCIeGbpsPerDir,
		})
		ma.NIC.SetStats(ma.Stats)
		ma.NIC.SetFaults(ma.Faults)
		ma.Driver = netstack.NewDriver(ma.Kernel, ma.NIC)
		ma.Driver.SetStats(ma.Stats)
		ma.Driver.OnTxDone = netstack.DispatchTxDone
		if ma.Faults != nil {
			// Lost completion interrupts and shrunken rings recover via
			// the driver's watchdog poll; armed only under injection so
			// the fault-free event stream is untouched.
			ma.StopWatchdog = ma.Driver.EnableWatchdog(0)
		}
	}
	return ma, nil
}

// StatsSnapshot captures the machine's metrics at the current simulated time.
func (ma *Machine) StatsSnapshot() stats.Snapshot { return ma.Stats.Snapshot() }

// Close hands the machine's simulated-RAM backing to the mem package's
// recycling pool once a run is over and its results are extracted. Purely a
// host-side optimisation (machine construction otherwise re-zeroes hundreds
// of MiB each time); optional, idempotent, and any memory access after Close
// panics.
func (ma *Machine) Close() { ma.Mem.Release() }

// FillAllRings primes every RX ring before a run. With fault injection on,
// filling is best-effort: an injected allocation failure shrinks a ring
// the watchdog later tops back up, instead of aborting the run.
func (ma *Machine) FillAllRings() error {
	var firstErr error
	for ring := range ma.Cores {
		ring := ring
		ma.Cores[ring].Submit(false, func(t *sim.Task) {
			if err := ma.Driver.FillRing(t, ring); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	ma.Sim.Run(ma.Sim.Now()) // execute the fill tasks queued at current time
	if ma.Faults != nil {
		return nil
	}
	return firstErr
}

// SchemeName returns the human name of the machine's configuration.
func (ma *Machine) SchemeName() string { return string(ma.Cfg.Scheme) }
