package testbed

import (
	"testing"

	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
)

func TestNewMachineAllSchemes(t *testing.T) {
	schemes := append([]Scheme{}, AllSchemes...)
	schemes = append(schemes, SchemeDAMNHugeDense, SchemeDAMNNoIOMMU, SchemeDAMNSingleCtx, SchemeDAMNNoCache)
	for _, scheme := range schemes {
		ma, err := NewMachine(MachineConfig{Scheme: scheme, MemBytes: 128 << 20, Cores: 4, RingSize: 8})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if ma.Kernel == nil || ma.NIC == nil || ma.Driver == nil {
			t.Fatalf("%s: incomplete machine", scheme)
		}
		if err := ma.FillAllRings(); err != nil {
			t.Fatalf("%s: FillAllRings: %v", scheme, err)
		}
		for ring := range ma.Cores {
			if got, err := ma.NIC.RXPosted(ring); err != nil || got != 8 {
				t.Fatalf("%s: ring %d posted %d, want 8 (err %v)", scheme, ring, got, err)
			}
		}
	}
}

func TestMachineCoreNUMALayout(t *testing.T) {
	ma, err := NewMachine(MachineConfig{Scheme: SchemeOff, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Cores) != 28 {
		t.Fatalf("cores = %d", len(ma.Cores))
	}
	if ma.Cores[0].Node != 0 || ma.Cores[13].Node != 0 {
		t.Error("first socket mislaid")
	}
	if ma.Cores[14].Node != 1 || ma.Cores[27].Node != 1 {
		t.Error("second socket mislaid")
	}
}

func TestMachineSchemeSelection(t *testing.T) {
	cases := []struct {
		scheme   Scheme
		name     string
		hasDamn  bool
		deferred bool
	}{
		{SchemeOff, "iommu-off", false, false},
		{SchemeStrict, "strict", false, false},
		{SchemeDeferred, "deferred", false, true},
		{SchemeShadow, "shadow", false, false},
		{SchemeDAMN, "deferred", true, true}, // DAMN falls back to deferred
		{SchemeDAMNNoIOMMU, "iommu-off", true, false},
	}
	for _, c := range cases {
		ma, err := NewMachine(MachineConfig{Scheme: c.scheme, MemBytes: 64 << 20, Cores: 2})
		if err != nil {
			t.Fatalf("%s: %v", c.scheme, err)
		}
		if got := ma.DMA.Scheme().Name(); got != c.name {
			t.Errorf("%s: scheme name %q, want %q", c.scheme, got, c.name)
		}
		if (ma.Damn != nil) != c.hasDamn {
			t.Errorf("%s: damn presence = %v", c.scheme, ma.Damn != nil)
		}
		if (ma.Deferred != nil) != c.deferred {
			t.Errorf("%s: deferred handle presence = %v", c.scheme, ma.Deferred != nil)
		}
	}
}

func TestMachinePassthroughConfigs(t *testing.T) {
	for _, scheme := range []Scheme{SchemeOff, SchemeDAMNNoIOMMU} {
		ma, err := NewMachine(MachineConfig{Scheme: scheme, MemBytes: 64 << 20, Cores: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !ma.IOMMU.Domain(NICDeviceID).Passthrough {
			t.Errorf("%s: NIC domain should be passthrough", scheme)
		}
	}
	ma, _ := NewMachine(MachineConfig{Scheme: SchemeDAMN, MemBytes: 64 << 20, Cores: 2})
	if ma.IOMMU.Domain(NICDeviceID).Passthrough {
		t.Error("damn: NIC domain must be translated")
	}
}

func TestMachineUnknownScheme(t *testing.T) {
	if _, err := NewMachine(MachineConfig{Scheme: "nonsense"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestMachineDamnInterposerWired(t *testing.T) {
	ma, err := NewMachine(MachineConfig{Scheme: SchemeDAMN, MemBytes: 128 << 20, Cores: 2, RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// An RX buffer allocated by the driver must be DAMN-owned, and its
	// mapping must bypass the fallback scheme entirely.
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	if ma.IOMMU.Unmappings != 0 {
		t.Error("ring fill should not unmap anything")
	}
	if ma.Deferred.S.PendingInvalidations() != 0 {
		t.Error("DAMN buffers leaked into the deferred batch")
	}
	if ma.Damn.FootprintBytes() == 0 {
		t.Error("no DAMN memory after ring fill")
	}
}

func TestMachineDeviceIsolationAcrossDevices(t *testing.T) {
	// The NVMe identity must not be able to use NIC mappings.
	ma, err := NewMachine(MachineConfig{Scheme: SchemeStrict, MemBytes: 64 << 20, Cores: 2, RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ma.Mem.AllocPages(0, 0)
	v, err := ma.DMA.Map(nil, NICDeviceID, p.PFN().Addr(), 4096, dmaapi.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.IOMMU.Translate(NVMeDeviceID, v, true); err == nil {
		t.Fatal("NVMe identity used a NIC mapping")
	}
	var f iommu.Fault
	faults := ma.IOMMU.Faults()
	if len(faults) == 0 {
		t.Fatal("no fault recorded")
	}
	f = faults[len(faults)-1]
	if f.Dev != NVMeDeviceID {
		t.Fatalf("fault attributed to dev %d", f.Dev)
	}
}
