package stats

import (
	"encoding/json"
	"io"
	"sync"
)

// Tracer collects discrete-event timeline records and writes them in the
// Chrome trace_event JSON format, loadable in chrome://tracing or Perfetto.
// The mapping from the simulator: one traced machine is a "process", each
// simulated core is a "thread", and every task the core executes becomes a
// complete ("X") event spanning its simulated start and duration. Queue
// depths and rates go down as counter ("C") events.
//
// Timestamps arrive in simulated picoseconds and are emitted in the format's
// microseconds. All methods are nil-safe, so instrumentation sites need no
// guards when tracing is off.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	nextPID int
	limit   int
	dropped uint64
}

// traceEvent is one trace_event record. Fields follow the Trace Event
// Format: ph is the phase (X=complete, C=counter, M=metadata, i=instant).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// defaultTraceLimit bounds memory: a full damnbench run generates millions
// of task spans; past the limit further events are counted as dropped.
const defaultTraceLimit = 2_000_000

// NewTracer returns an empty tracer with the default event limit.
func NewTracer() *Tracer { return &Tracer{limit: defaultTraceLimit} }

// SetLimit overrides the event cap (0 means unlimited).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// psToUS converts simulated picoseconds to trace microseconds.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// Process allocates a process ID for one traced machine and names it.
func (t *Tracer) Process(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextPID++
	pid := t.nextPID
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return pid
}

// ThreadName labels a thread (simulated core) within a process.
func (t *Tracer) ThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// add appends an event, honoring the limit.
func (t *Tracer) add(ev traceEvent) {
	t.mu.Lock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Span records a complete event covering [startPS, startPS+durPS) of
// simulated time.
func (t *Tracer) Span(pid, tid int, name, cat string, startPS, durPS int64) {
	if t == nil {
		return
	}
	dur := psToUS(durPS)
	if dur <= 0 {
		// chrome://tracing hides zero-duration complete events; clamp to
		// the smallest representable width instead.
		dur = 0.001
	}
	t.add(traceEvent{Name: name, Cat: cat, Ph: "X", TS: psToUS(startPS), Dur: dur, PID: pid, TID: tid})
}

// Instant records a zero-duration marker.
func (t *Tracer) Instant(pid, tid int, name, cat string, tsPS int64) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: name, Cat: cat, Ph: "i", TS: psToUS(tsPS), PID: pid, TID: tid,
		Args: map[string]any{"s": "t"}})
}

// CounterEvent records a sampled counter value (rendered as a track).
func (t *Tracer) CounterEvent(pid int, name string, tsPS int64, value float64) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: name, Ph: "C", TS: psToUS(tsPS), PID: pid,
		Args: map[string]any{"value": value}})
}

// Len reports the number of recorded events (metadata included).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports events discarded after the limit was reached.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON emits the trace in the JSON object format chrome://tracing
// accepts ({"traceEvents":[...]}).
func (t *Tracer) WriteJSON(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
