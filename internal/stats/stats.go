// Package stats is the simulator-wide observability layer: a
// zero-dependency metrics registry (typed counters, gauges and log-scale
// histograms, keyed by component) plus an optional Chrome trace_event sink
// (trace.go). Every layer of the simulated machine — the event engine, the
// perf cost model, the IOMMU, DAMN, the DMA API and the devices — records
// into one Registry owned by its testbed.Machine, so every simulated cycle
// charge, IOTLB invalidation and cache hit is attributable after a run.
//
// The registry is safe for concurrent use (counters and gauges are atomics,
// histograms take a small lock), and metric handles are cheap to cache: the
// hot layers look their counters up once and bump them with a single atomic
// add per event. All methods are nil-safe on the metric types so callers
// never need to guard instrumentation sites.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter accumulates a float64 total (cycle charges are fractional).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v into the counter.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a point-in-time integer metric (queue depths, footprints).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a log-scale histogram: bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v < 1), covering
// the full uint64 range.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative observations
// (latencies in picoseconds, queue depths, batch sizes).
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one observation. Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := 0
	if v >= 1 {
		b = int(math.Floor(math.Log2(v))) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// snapshot returns the exported form. Only non-empty buckets are kept, keyed
// by their upper bound (2^i).
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: math.Pow(2, float64(i)), Count: n})
	}
	return s
}

// metricKey identifies one metric: the component that owns it plus its name.
type metricKey struct {
	component string
	name      string
}

func (k metricKey) String() string { return k.component + "/" + k.name }

// Registry holds every metric of one simulated machine.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	floats   map[metricKey]*FloatCounter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		floats:   make(map[metricKey]*FloatCounter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. A nil registry
// returns a nil handle, whose methods are no-ops.
func (r *Registry) Counter(component, name string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{component, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// FloatCounter returns (creating if needed) the named float accumulator.
func (r *Registry) FloatCounter(component, name string) *FloatCounter {
	if r == nil {
		return nil
	}
	k := metricKey{component, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.floats[k]
	if !ok {
		c = &FloatCounter{}
		r.floats[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(component, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{component, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(component, name string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{component, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// HistogramBucket is one exported log2 bucket: Count observations <= Le.
type HistogramBucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the exported form of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of a registry, keyed by
// "component/name", ready for JSON encoding.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric. A nil registry exports an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Floats:     map[string]float64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k.String()] = c.Value()
	}
	for k, c := range r.floats {
		s.Floats[k.String()] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k.String()] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k.String()] = h.snapshot()
	}
	return s
}

// Counter returns a counter's value from the snapshot ("component/name").
func (s Snapshot) Counter(key string) uint64 { return s.Counters[key] }

// WriteJSON encodes the snapshot, indented, to w.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Keys returns every metric key in the snapshot, sorted — handy for stable
// textual dumps.
func (s Snapshot) Keys() []string {
	var keys []string
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Floats {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact human-readable dump (debugging aid).
func (s Snapshot) String() string {
	var out string
	for _, k := range s.Keys() {
		switch {
		case hasKey(s.Counters, k):
			out += fmt.Sprintf("%s = %d\n", k, s.Counters[k])
		case hasKey(s.Floats, k):
			out += fmt.Sprintf("%s = %.1f\n", k, s.Floats[k])
		case hasKey(s.Gauges, k):
			out += fmt.Sprintf("%s = %d\n", k, s.Gauges[k])
		default:
			h := s.Histograms[k]
			out += fmt.Sprintf("%s = {n=%d mean=%.1f max=%.1f}\n", k, h.Count, meanOf(h), h.Max)
		}
	}
	return out
}

func hasKey[V any](m map[string]V, k string) bool { _, ok := m[k]; return ok }

func meanOf(h HistogramSnapshot) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
