package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeFloat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iommu", "iotlb_hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("iommu", "iotlb_hits") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("iommu", "invq_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	f := r.FloatCounter("perf", "cycles_unmap")
	f.Add(1.5)
	f.Add(2.25)
	if got := f.Value(); got != 3.75 {
		t.Fatalf("float counter = %v, want 3.75", got)
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("a", "b").Inc()
	r.FloatCounter("a", "b").Add(1)
	r.Gauge("a", "b").Set(1)
	r.Histogram("a", "b").Observe(1)
	if got := r.Counter("a", "b").Value(); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %v", snap)
	}
	var tr *Tracer
	tr.Span(1, 1, "x", "", 0, 10)
	tr.CounterEvent(1, "c", 0, 1)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim", "task_ps")
	for _, v := range []float64{0, 0.5, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Mean(), (0+0.5+1+2+3+1000)/6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	s := h.snapshot()
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v, want 0/1000", s.Min, s.Max)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
	// An observation far beyond 2^64 clamps into the last bucket.
	h.Observe(math.MaxFloat64)
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("device", "rx_segments").Add(42)
	r.Gauge("damn", "footprint_bytes").Set(1 << 20)
	r.FloatCounter("perf", "cycles_copy").Add(99.5)
	r.Histogram("iommu", "invq_drain_batch").Observe(8)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Counter("device/rx_segments") != 42 {
		t.Fatalf("round-tripped counter = %d, want 42", back.Counter("device/rx_segments"))
	}
	if back.Gauges["damn/footprint_bytes"] != 1<<20 {
		t.Fatal("gauge lost in round trip")
	}
	if back.Histograms["iommu/invq_drain_batch"].Count != 1 {
		t.Fatal("histogram lost in round trip")
	}
	if len(r.Snapshot().Keys()) != 4 {
		t.Fatalf("keys = %v, want 4 entries", r.Snapshot().Keys())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("sim", "events").Inc()
				r.FloatCounter("perf", "cycles").Add(0.5)
				r.Histogram("sim", "dur").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("sim", "events").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.FloatCounter("perf", "cycles").Value(); got != 4000 {
		t.Fatalf("concurrent float counter = %v, want 4000", got)
	}
	if got := r.Histogram("sim", "dur").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestTracerChromeFormat(t *testing.T) {
	tr := NewTracer()
	pid := tr.Process("fig4/damn")
	tr.ThreadName(pid, 0, "core0")
	tr.Span(pid, 0, "task", "sim", 1_000_000, 2_000_000) // 1us..3us
	tr.Instant(pid, 0, "flush", "dmaapi", 5_000_000)
	tr.CounterEvent(pid, "invq_depth", 5_000_000, 12)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("trace has %d events, want 5", len(doc.TraceEvents))
	}
	var sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			sawSpan = true
			if ev["ts"].(float64) != 1.0 || ev["dur"].(float64) != 2.0 {
				t.Fatalf("span ts/dur = %v/%v, want 1/2 us", ev["ts"], ev["dur"])
			}
		}
	}
	if !sawSpan {
		t.Fatal("no complete event in trace")
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Span(1, 0, "task", "", int64(i), 1)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}
