package iommu

import (
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/stats"
)

// IOTLBConfig sizes the translation cache. The defaults approximate the
// IOTLB of a server-class VT-d implementation; what matters for the
// reproduction is that the cache is finite, so scattered IOVA usage (DAMN's
// metadata-encoded IOVAs, Table 3) misses more than dense usage.
type IOTLBConfig struct {
	Sets int // must be a power of two
	Ways int
}

// DefaultIOTLBConfig returns a 4096-set, 4-way cache (16384 entries),
// approximating the combined reach of the IOTLB and the paging-structure
// caches of a server-class IOMMU.
func DefaultIOTLBConfig() IOTLBConfig { return IOTLBConfig{Sets: 4096, Ways: 4} }

type tlbEntry struct {
	valid bool
	dev   int
	tag   IOVA // iova >> PageShift for 4 KiB; iova >> HugePageShift for 2 MiB
	huge  bool
	pfn   mem.PFN
	perm  Perm
	lru   uint64
}

// IOTLB is a set-associative translation cache shared by all devices,
// tagged by device. Invalidation removes entries; until invalidated, a
// cached translation keeps serving DMAs even if the underlying page-table
// entry has been cleared — the property deferred protection trades on.
type IOTLB struct {
	cfg   IOTLBConfig
	sets  [][]tlbEntry
	clock uint64

	Hits          uint64
	Misses        uint64
	Invalidations uint64 // individual entries dropped
	FlushCommands uint64 // invalidation commands processed

	// Observability (nil-safe handles; see SetStats).
	hitC   *stats.Counter
	missC  *stats.Counter
	invC   *stats.Counter
	flushC *stats.Counter
}

// SetStats attaches a metrics registry mirroring the hit/miss/invalidation
// counters, so runs expose them alongside every other layer's metrics.
func (t *IOTLB) SetStats(r *stats.Registry) {
	t.hitC = r.Counter("iommu", "iotlb_hits")
	t.missC = r.Counter("iommu", "iotlb_misses")
	t.invC = r.Counter("iommu", "iotlb_invalidations")
	t.flushC = r.Counter("iommu", "iotlb_flush_commands")
}

// NewIOTLB builds an empty cache.
func NewIOTLB(cfg IOTLBConfig) *IOTLB {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways <= 0 {
		panic("iommu: IOTLB sets must be a positive power of two and ways positive")
	}
	sets := make([][]tlbEntry, cfg.Sets)
	for i := range sets {
		sets[i] = make([]tlbEntry, cfg.Ways)
	}
	return &IOTLB{cfg: cfg, sets: sets}
}

// setIndex uses the low bits of the page tag, as hardware TLBs do. This is
// what makes DAMN's metadata-encoded IOVAs IOTLB-hostile (Table 3): chunks
// from different per-(cpu,rights,dev) regions share their low offset bits,
// so they collide in the same sets, while a dense IOVA range spreads evenly.
func (t *IOTLB) setIndex(dev int, tag IOVA) int {
	return (int(tag) ^ dev*7) & (t.cfg.Sets - 1)
}

// lookup returns the cached translation for the page containing iova.
// It probes the 4 KiB tag and then the 2 MiB tag.
func (t *IOTLB) lookup(dev int, iova IOVA) (*tlbEntry, bool) {
	t.clock++
	smallTag := iova >> mem.PageShift
	hugeTag := iova >> mem.HugePageShift
	for _, probe := range []struct {
		tag  IOVA
		huge bool
	}{{smallTag, false}, {hugeTag, true}} {
		set := t.sets[t.setIndex(dev, probe.tag)]
		for i := range set {
			e := &set[i]
			if e.valid && e.dev == dev && e.huge == probe.huge && e.tag == probe.tag {
				e.lru = t.clock
				t.Hits++
				t.hitC.Inc()
				return e, true
			}
		}
	}
	t.Misses++
	t.missC.Inc()
	return nil, false
}

// bumpInv counts one dropped entry in both the raw and registry counters.
func (t *IOTLB) bumpInv() {
	t.Invalidations++
	t.invC.Inc()
}

// bumpFlush counts one processed invalidation command.
func (t *IOTLB) bumpFlush() {
	t.FlushCommands++
	t.flushC.Inc()
}

// insert fills the cache after a page-table walk.
func (t *IOTLB) insert(dev int, iova IOVA, huge bool, pfn mem.PFN, perm Perm) {
	t.clock++
	var tag IOVA
	if huge {
		tag = iova >> mem.HugePageShift
	} else {
		tag = iova >> mem.PageShift
	}
	set := t.sets[t.setIndex(dev, tag)]
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = tlbEntry{valid: true, dev: dev, tag: tag, huge: huge, pfn: pfn, perm: perm, lru: t.clock}
}

// InvalidateRange drops all entries of dev overlapping [iova, iova+size).
// Small ranges probe only the sets their pages index to (hardware walks the
// cache by set); huge ranges fall back to a full sweep.
func (t *IOTLB) InvalidateRange(dev int, iova IOVA, size int) {
	t.bumpFlush()
	pages := (size + mem.PageSize - 1) >> mem.PageShift
	if pages > 64 {
		t.invalidateRangeSweep(dev, iova, size)
		return
	}
	// 4 KiB entries of the range.
	for p := 0; p < pages; p++ {
		tag := (iova >> mem.PageShift) + IOVA(p)
		set := t.sets[t.setIndex(dev, tag)]
		for i := range set {
			e := &set[i]
			if e.valid && !e.huge && e.dev == dev && e.tag == tag {
				e.valid = false
				t.bumpInv()
			}
		}
	}
	// Huge entries covering any part of the range.
	firstHuge := iova >> mem.HugePageShift
	lastHuge := (iova + IOVA(size) - 1) >> mem.HugePageShift
	for tag := firstHuge; tag <= lastHuge; tag++ {
		set := t.sets[t.setIndex(dev, tag)]
		for i := range set {
			e := &set[i]
			if e.valid && e.huge && e.dev == dev && e.tag == tag {
				e.valid = false
				t.bumpInv()
			}
		}
	}
}

func (t *IOTLB) invalidateRangeSweep(dev int, iova IOVA, size int) {
	end := iova + IOVA(size)
	for si := range t.sets {
		for i := range t.sets[si] {
			e := &t.sets[si][i]
			if !e.valid || e.dev != dev {
				continue
			}
			var lo, hi IOVA
			if e.huge {
				lo = e.tag << mem.HugePageShift
				hi = lo + IOVA(mem.HugePageSize)
			} else {
				lo = e.tag << mem.PageShift
				hi = lo + IOVA(mem.PageSize)
			}
			if lo < end && iova < hi {
				e.valid = false
				t.bumpInv()
			}
		}
	}
}

// InvalidateDevice drops every entry belonging to dev (a domain-selective
// invalidation, what deferred mode issues when its batch overflows).
func (t *IOTLB) InvalidateDevice(dev int) {
	t.bumpFlush()
	for si := range t.sets {
		for i := range t.sets[si] {
			e := &t.sets[si][i]
			if e.valid && e.dev == dev {
				e.valid = false
				t.bumpInv()
			}
		}
	}
}

// InvalidateAll drops everything (global invalidation).
func (t *IOTLB) InvalidateAll() {
	t.bumpFlush()
	for si := range t.sets {
		for i := range t.sets[si] {
			if t.sets[si][i].valid {
				t.sets[si][i].valid = false
				t.bumpInv()
			}
		}
	}
}

// HitRate returns the fraction of lookups served from the cache.
func (t *IOTLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}
