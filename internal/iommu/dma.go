package iommu

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/mem"
)

// Translate resolves one IOVA to a physical address on behalf of a device
// DMA, consulting the IOTLB first. A hit is served from the cache even when
// the page tables no longer contain the mapping — exactly the hardware
// behaviour that makes deferred invalidation a security/performance trade.
// write selects the permission that must be present.
func (u *IOMMU) Translate(dev int, iova IOVA, write bool) (mem.PhysAddr, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.translateLocked(dev, iova, write)
}

// faultLocked records a blocked DMA in the fault log, the bounded VT-d
// fault-record queue and the counters, and returns the Fault for the
// caller to propagate. Caller holds u.mu.
func (u *IOMMU) faultLocked(dev int, iova IOVA, want Perm, write, injected bool) Fault {
	u.BlockedDMAs++
	u.blockedC.Inc()
	if dev >= 0 {
		for dev >= len(u.blockedBy) {
			u.blockedBy = append(u.blockedBy, 0)
		}
		u.blockedBy[dev]++
		if u.reg != nil {
			for dev >= len(u.blockedDevC) {
				u.blockedDevC = append(u.blockedDevC, nil)
			}
			c := u.blockedDevC[dev]
			if c == nil {
				c = u.reg.Counter("iommu", fmt.Sprintf("blocked_dmas_dev%d", dev))
				u.blockedDevC[dev] = c
			}
			c.Inc()
		}
	}
	f := Fault{Dev: dev, Addr: iova, Wanted: want, Write: write}
	u.faults = append(u.faults, f)
	u.fq.push(FaultRecord{Fault: f, Injected: injected})
	// A genuinely blocked DMA aimed at an address another device owns is a
	// neighbour probe: attribute it to the prober so the attack figures have
	// denial evidence per source. Injected faults are hardware hiccups on
	// valid mappings, not probes.
	if !injected && u.classify != nil {
		if owner, ok := u.classify(dev, iova); ok && owner != dev {
			bumpDev(&u.fq.probesBy, dev)
			u.fq.devCounter(&u.fq.probeDevC, "neighbor_probes_blocked", dev).Inc()
		}
	}
	return f
}

// SetProbeClassifier installs the IOVA-ownership decoder used to classify
// blocked DMAs as neighbour probes (see the classify field). Passing nil
// disables classification.
func (u *IOMMU) SetProbeClassifier(fn func(dev int, v IOVA) (owner int, ok bool)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.classify = fn
}

// BlockedDMAsFor reports how many DMAs from one source device the IOMMU has
// blocked — the per-fault-domain flavour of BlockedDMAs.
func (u *IOMMU) BlockedDMAsFor(dev int) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if dev < 0 || dev >= len(u.blockedBy) {
		return 0
	}
	return u.blockedBy[dev]
}

func (u *IOMMU) translateLocked(dev int, iova IOVA, write bool) (mem.PhysAddr, error) {
	u.Translations++
	u.transC.Inc()
	d := u.domain(dev)
	if d == nil {
		return 0, u.faultLocked(dev, iova, permFor(write), write, false)
	}
	if d.Passthrough {
		return mem.PhysAddr(iova), nil
	}
	need := permFor(write)
	// An injected translation fault blocks the DMA even though the mapping
	// is valid — hardware hiccups (ATS glitches, poisoned walks) that real
	// VT-d units report through the fault-record queue.
	if u.inj.ShouldDev(faults.DMAFault, dev) {
		return 0, u.faultLocked(dev, iova, need, write, true)
	}
	if e, ok := u.tlb.lookup(dev, iova); ok {
		if e.perm&need == 0 {
			return 0, u.faultLocked(dev, iova, need, write, false)
		}
		if e.huge {
			return e.pfn.Addr() + mem.PhysAddr(iova&IOVA(mem.HugePageMask)), nil
		}
		return e.pfn.Addr() + mem.PhysAddr(iova&IOVA(mem.PageMask)), nil
	}
	// IOTLB miss: walk the page tables.
	e := d.walk(iova, false)
	if e == nil || !e.present {
		return 0, u.faultLocked(dev, iova, need, write, false)
	}
	if e.perm&need == 0 {
		return 0, u.faultLocked(dev, iova, need, write, false)
	}
	u.tlb.insert(dev, iova, e.huge, e.pfn, e.perm)
	if e.huge {
		return e.pfn.Addr() + mem.PhysAddr(iova&IOVA(mem.HugePageMask)), nil
	}
	return e.pfn.Addr() + mem.PhysAddr(iova&IOVA(mem.PageMask)), nil
}

func permFor(write bool) Perm {
	if write {
		return PermWrite
	}
	return PermRead
}

// TranslateSpan translates every 4 KiB page of [iova, iova+span) in one
// critical section — the batched form of Translate a device uses when it
// walks a whole segment. Counters, IOTLB state and fault records are
// identical to span/PageSize individual Translate calls; the batching only
// saves the per-page lock round trip. Faults do not abort the span (the
// device touches each page independently); the first error is returned.
func (u *IOMMU) TranslateSpan(dev int, iova IOVA, span int, write bool) error {
	if span <= 0 {
		return nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	var first error
	for off := 0; off < span; off += mem.PageSize {
		if _, err := u.translateLocked(dev, iova+IOVA(off), write); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DMARead performs a device read (device fetches host memory, e.g. a TX
// payload): n = len(buf) bytes starting at iova are copied into buf.
// Translation happens page by page; a fault anywhere aborts the transfer at
// the fault boundary and returns the fault plus the byte count completed.
func (u *IOMMU) DMARead(dev int, iova IOVA, buf []byte) (int, error) {
	return u.dma(dev, iova, buf, false)
}

// DMAWrite performs a device write (device deposits into host memory, e.g.
// an RX packet): len(buf) bytes are copied from buf to iova.
func (u *IOMMU) DMAWrite(dev int, iova IOVA, buf []byte) (int, error) {
	return u.dma(dev, iova, buf, true)
}

func (u *IOMMU) dma(dev int, iova IOVA, buf []byte, write bool) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	done := 0
	for done < len(buf) {
		va := iova + IOVA(done)
		pa, err := u.translateLocked(dev, va, write)
		if err != nil {
			return done, err
		}
		// Transfer up to the end of the current 4 KiB page (the unit
		// of translation even within huge mappings).
		chunk := mem.PageSize - int(va&IOVA(mem.PageMask))
		if rem := len(buf) - done; chunk > rem {
			chunk = rem
		}
		if err := u.mem.CheckRange(pa, chunk); err != nil {
			return done, fmt.Errorf("iommu: translated DMA out of RAM bounds: %w", err)
		}
		if write {
			u.mem.Write(pa, buf[done:done+chunk])
		} else {
			u.mem.Read(pa, buf[done:done+chunk])
		}
		done += chunk
	}
	return done, nil
}
