// Package iommu models an Intel VT-d–style I/O memory management unit: per-
// device domains with 4-level page tables mapping I/O virtual addresses
// (IOVAs) to physical addresses, an IOTLB that caches translations, and an
// invalidation queue through which the OS retires stale IOTLB entries.
//
// The security-critical behaviour reproduced here is the one every scheme in
// the paper revolves around: a DMA translates successfully if the IOTLB
// still caches the mapping, *even after the OS has removed it from the page
// tables*. Deferred invalidation therefore leaves a real, exploitable window
// (§4.1), which the attack scenarios in internal/device exercise.
package iommu

import (
	"fmt"
	"sync"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/stats"
)

// IOVA is an I/O virtual address. The usable space is 48 bits, and DAMN
// partitions it by the most significant bit (§5.4/§5.5 of the paper).
type IOVA uint64

// Perm is a DMA permission bitmask.
type Perm uint8

const (
	// PermRead allows the device to read (device-to-host TX data fetch).
	PermRead Perm = 1 << iota
	// PermWrite allows the device to write (RX packet landing).
	PermWrite

	PermRW = PermRead | PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "r"
	case PermWrite:
		return "w"
	case PermRW:
		return "rw"
	default:
		return "-"
	}
}

// Page-table geometry (x86-64 style): 4 levels of 9 bits over 4 KiB pages.
const (
	ptLevels     = 4
	ptBits       = 9
	ptFanout     = 1 << ptBits // 512
	iovaBits     = 48
	maxIOVA      = IOVA(1)<<iovaBits - 1
	hugeLevel    = 1 // level index (from leaf) at which 2 MiB mappings sit
	hugeCoverage = mem.HugePageSize
)

// Fault records a blocked DMA.
type Fault struct {
	Dev    int
	Addr   IOVA
	Wanted Perm
	Write  bool
}

func (f Fault) Error() string {
	return fmt.Sprintf("iommu: DMA fault dev=%d iova=%#x want=%s", f.Dev, f.Addr, f.Wanted)
}

// pte is a page-table entry. Leaf entries carry the target frame and
// permission; interior entries carry children.
type pte struct {
	present  bool
	huge     bool // 2 MiB leaf at hugeLevel
	pfn      mem.PFN
	perm     Perm
	children *[ptFanout]pte
}

// Domain is one device's IOVA address space: the analogue of a VT-d domain
// with its own page-table root.
type Domain struct {
	Dev  int
	root [ptFanout]pte

	// Passthrough disables translation for this device (iommu-off):
	// IOVA == physical address and everything is permitted.
	Passthrough bool

	mappedPages int64 // currently mapped 4 KiB-equivalent pages
	everMapped  int64 // cumulative (Fig 9's "ever touched" curve)

	// Paging-structure cache (the VT-d PDE/PDPE cache analogue): walk
	// memoizes the last leaf table (one 2 MiB window of 4 KiB ptes) and
	// the last page directory (one 1 GiB window of level-1 entries), so
	// consecutive translations within a buffer skip the radix descent.
	// Host-side only: no simulated cost or state depends on it. Guarded
	// by the IOMMU mutex like the tables themselves.
	wcLeaf     *[ptFanout]pte
	wcLeafBase IOVA // 2 MiB-aligned base covered by wcLeaf
	wcDir      *[ptFanout]pte
	wcDirBase  IOVA // 1 GiB-aligned base covered by wcDir
}

// dirCoverage is the IOVA span one level-1 table (page directory) covers.
const dirCoverage = IOVA(hugeCoverage) << ptBits // 1 GiB

// invalidateWalkCache drops the paging-structure memo. Required whenever a
// table the memo may reference can be bypassed or dropped: MapHuge hides a
// leaf table behind a huge leaf, and a detached domain dies wholesale.
// Plain 4 KiB map/unmap only edits leaf ptes in place, so the memo'd
// tables stay coherent across those.
func (d *Domain) invalidateWalkCache() {
	d.wcLeaf = nil
	d.wcDir = nil
}

// IOMMU is the unit: domains plus the shared IOTLB and fault log.
type IOMMU struct {
	mu  sync.Mutex
	mem *mem.Memory
	// domains is dense, indexed by device id (nil = not attached). Device
	// ids are small integers (bus/device/function analogues), so a slice
	// keeps the per-translation domain lookup a bounds check + load
	// instead of a map probe on the hottest path in the simulator.
	domains []*Domain
	tlb     *IOTLB
	invq    *InvalidationQueue
	inj     *faults.Injector

	faults []Fault
	fq     FaultQueue
	// classify, when installed, maps a faulting IOVA back to the device
	// that owns it (DAMN IOVAs encode their owner). A blocked DMA whose
	// decoded owner differs from the requester is a *neighbour probe* — a
	// device reaching into another fault domain's address range — and is
	// attributed per source in the fault stats. Wired by the testbed (the
	// iova package sits above iommu, so the decoder arrives as a hook).
	classify func(dev int, v IOVA) (owner int, ok bool)
	// Stats the evaluation reads.
	Mappings     uint64 // map operations
	Unmappings   uint64 // unmap operations
	Translations uint64 // DMA page translations attempted
	BlockedDMAs  uint64
	Detaches     uint64 // domains torn down (quarantine / surprise removal)

	// blockedBy attributes blocked DMAs to their source device, so a fault
	// storm is attributable to one fault domain (dense, indexed by dev).
	blockedBy []uint64

	// Observability (nil-safe handles; see SetStats).
	reg         *stats.Registry
	mapC        *stats.Counter
	unmapC      *stats.Counter
	transC      *stats.Counter
	blockedC    *stats.Counter
	detachC     *stats.Counter
	blockedDevC []*stats.Counter
}

// domain returns the attached domain for dev, or nil. Caller holds u.mu.
func (u *IOMMU) domain(dev int) *Domain {
	if dev < 0 || dev >= len(u.domains) {
		return nil
	}
	return u.domains[dev]
}

// SetStats attaches a metrics registry to the IOMMU and its IOTLB and
// invalidation queue, so a run's translation, invalidation and fault
// activity is exported alongside every other layer.
func (u *IOMMU) SetStats(r *stats.Registry) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.reg = r
	u.mapC = r.Counter("iommu", "mappings")
	u.unmapC = r.Counter("iommu", "unmappings")
	u.transC = r.Counter("iommu", "translations")
	u.blockedC = r.Counter("iommu", "blocked_dmas")
	u.detachC = r.Counter("iommu", "domain_detaches")
	u.fq.setStats(r)
	u.tlb.SetStats(r)
	u.invq.SetStats(r)
}

// SetFaults attaches the machine's fault-injection plane: injected DMA
// translation faults (delivered through the fault-record queue) and
// invalidation-queue timeouts.
func (u *IOMMU) SetFaults(inj *faults.Injector) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.inj = inj
	u.invq.inj = inj
}

// New creates an IOMMU over the given physical memory.
func New(m *mem.Memory) *IOMMU {
	tlb := NewIOTLB(DefaultIOTLBConfig())
	return &IOMMU{
		mem:  m,
		tlb:  tlb,
		invq: NewInvalidationQueue(tlb),
	}
}

// TLB exposes the IOTLB (the DMA API charges costs for its operations and
// the evaluation reads its hit/miss counters).
func (u *IOMMU) TLB() *IOTLB { return u.tlb }

// InvQ exposes the invalidation queue through which all IOTLB
// invalidations flow (§3).
func (u *IOMMU) InvQ() *InvalidationQueue { return u.invq }

// AttachDevice creates (or returns) the domain for a device. Device ids
// must be non-negative.
func (u *IOMMU) AttachDevice(dev int) *Domain {
	if dev < 0 {
		panic(fmt.Sprintf("iommu: attach of negative device id %d", dev))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for dev >= len(u.domains) {
		u.domains = append(u.domains, nil)
	}
	d := u.domains[dev]
	if d == nil {
		d = &Domain{Dev: dev}
		u.domains[dev] = d
	}
	return d
}

// DetachDevice tears down the device's domain: its page tables are dropped
// wholesale and every in-flight DMA from the device faults from this moment
// on (translateLocked treats a missing domain as a blocked DMA). This is the
// quarantine primitive — the VT-d analogue of clearing the device's context
// entry. The IOTLB may still hold stale entries for the old domain; the
// caller must push an InvDomain through the invalidation queue before the
// device is re-attached, or a rebuilt domain could inherit translations it
// never installed.
//
// Returns the number of pages that were still mapped (the mappings the
// reset abandons) and whether a domain existed at all.
func (u *IOMMU) DetachDevice(dev int) (abandonedPages int64, ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	d := u.domain(dev)
	if d == nil {
		return 0, false
	}
	d.invalidateWalkCache()
	u.domains[dev] = nil
	u.Detaches++
	u.detachC.Inc()
	return d.mappedPages, true
}

// Attached reports whether the device currently has a domain.
func (u *IOMMU) Attached(dev int) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.domain(dev) != nil
}

// Domain returns the domain for dev, or nil.
func (u *IOMMU) Domain(dev int) *Domain {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.domain(dev)
}

// Faults returns a copy of the fault log.
func (u *IOMMU) Faults() []Fault {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]Fault, len(u.faults))
	copy(out, u.faults)
	return out
}

// indexAt returns the page-table index of iova at the given level
// (level 3 = root, level 0 = leaf).
func indexAt(iova IOVA, level int) int {
	return int(iova >> (mem.PageShift + uint(level)*ptBits) & (ptFanout - 1))
}

// Map installs a translation for [iova, iova+size) to the physical range
// starting at pa, with the given permission. Both iova and pa must be page
// aligned and the range must not cross already-mapped pages.
func (u *IOMMU) Map(dev int, iova IOVA, pa mem.PhysAddr, size int, perm Perm) error {
	if iova&IOVA(mem.PageMask) != 0 || uint64(pa)&uint64(mem.PageMask) != 0 {
		return fmt.Errorf("iommu: unaligned map iova=%#x pa=%#x", iova, pa)
	}
	if size <= 0 || iova+IOVA(size)-1 > maxIOVA {
		return fmt.Errorf("iommu: bad map size %d at %#x", size, iova)
	}
	if perm == 0 {
		return fmt.Errorf("iommu: mapping with empty permissions")
	}
	if err := u.mem.CheckRange(pa, size); err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	d := u.domain(dev)
	if d == nil {
		return fmt.Errorf("iommu: device %d not attached", dev)
	}
	pages := (size + mem.PageSize - 1) >> mem.PageShift
	for i := 0; i < pages; i++ {
		va := iova + IOVA(i)<<mem.PageShift
		e := d.walk(va, true)
		if e.present {
			return fmt.Errorf("iommu: iova %#x already mapped", va)
		}
		e.present = true
		e.pfn = mem.PFNOf(pa) + mem.PFN(i)
		e.perm = perm
	}
	d.mappedPages += int64(pages)
	d.everMapped += int64(pages)
	u.Mappings++
	u.mapC.Inc()
	return nil
}

// MapHuge installs a single 2 MiB mapping. iova and pa must be 2 MiB
// aligned. Used by the Table 3 "huge iova pages" DAMN variant.
func (u *IOMMU) MapHuge(dev int, iova IOVA, pa mem.PhysAddr, perm Perm) error {
	if iova&IOVA(mem.HugePageMask) != 0 || uint64(pa)&uint64(mem.HugePageMask) != 0 {
		return fmt.Errorf("iommu: unaligned huge map iova=%#x pa=%#x", iova, pa)
	}
	if err := u.mem.CheckRange(pa, mem.HugePageSize); err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	d := u.domain(dev)
	if d == nil {
		return fmt.Errorf("iommu: device %d not attached", dev)
	}
	// A huge leaf can hide an existing (empty) leaf table behind it, which
	// the memo might still reference — drop the memo before installing.
	d.invalidateWalkCache()
	e := d.walkHuge(iova, true)
	if e.present {
		return fmt.Errorf("iommu: huge iova %#x already mapped", iova)
	}
	e.present = true
	e.huge = true
	e.pfn = mem.PFNOf(pa)
	e.perm = perm
	pages := int64(mem.HugePageSize / mem.PageSize)
	d.mappedPages += pages
	d.everMapped += pages
	u.Mappings++
	u.mapC.Inc()
	return nil
}

// Unmap removes translations for [iova, iova+size). The removal only takes
// full effect once the corresponding IOTLB entries are invalidated; until
// then, cached translations keep working — this is the deferred-mode
// vulnerability window.
func (u *IOMMU) Unmap(dev int, iova IOVA, size int) error {
	if iova&IOVA(mem.PageMask) != 0 || size <= 0 {
		return fmt.Errorf("iommu: bad unmap [%#x,+%d)", iova, size)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	d := u.domain(dev)
	if d == nil {
		return fmt.Errorf("iommu: device %d not attached", dev)
	}
	pages := (size + mem.PageSize - 1) >> mem.PageShift
	for i := 0; i < pages; i++ {
		va := iova + IOVA(i)<<mem.PageShift
		e := d.walk(va, false)
		if e == nil || !e.present {
			return fmt.Errorf("iommu: unmap of unmapped iova %#x", va)
		}
		// Clearing a leaf pte in place keeps the memo'd tables coherent;
		// no walk-cache invalidation needed here.
		*e = pte{}
	}
	d.mappedPages -= int64(pages)
	u.Unmappings++
	u.unmapC.Inc()
	return nil
}

// UnmapHuge removes a 2 MiB mapping.
func (u *IOMMU) UnmapHuge(dev int, iova IOVA) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	d := u.domain(dev)
	if d == nil {
		return fmt.Errorf("iommu: device %d not attached", dev)
	}
	e := d.walkHuge(iova, false)
	if e == nil || !e.present || !e.huge {
		return fmt.Errorf("iommu: huge unmap of unmapped iova %#x", iova)
	}
	d.invalidateWalkCache()
	*e = pte{}
	d.mappedPages -= int64(mem.HugePageSize / mem.PageSize)
	u.Unmappings++
	u.unmapC.Inc()
	return nil
}

// walk descends to the leaf pte for iova, allocating interior nodes when
// create is set. Returns nil if a level is missing and create is false.
// Caller holds u.mu.
//
// The paging-structure cache short-circuits the descent: a hit on the leaf
// memo resolves in one index, a hit on the directory memo skips the top two
// levels. Both memos are (re)warmed by full descents only, so a memoized
// leaf table is never shadowed by a huge leaf (MapHuge invalidates).
func (d *Domain) walk(iova IOVA, create bool) *pte {
	if d.wcLeaf != nil && iova&^IOVA(hugeCoverage-1) == d.wcLeafBase {
		return &d.wcLeaf[indexAt(iova, 0)]
	}
	table := &d.root
	level := ptLevels - 1
	if d.wcDir != nil && iova&^(dirCoverage-1) == d.wcDirBase {
		table = d.wcDir
		level = hugeLevel
	}
	for ; level > 0; level-- {
		e := &table[indexAt(iova, level)]
		if e.present && e.huge {
			// A huge leaf occupies this slot; 4 KiB walk stops here.
			return e
		}
		if e.children == nil {
			if !create {
				return nil
			}
			e.children = new([ptFanout]pte)
		}
		if level == hugeLevel+1 {
			d.wcDir = e.children
			d.wcDirBase = iova &^ (dirCoverage - 1)
		}
		table = e.children
	}
	d.wcLeaf = table
	d.wcLeafBase = iova &^ IOVA(hugeCoverage-1)
	return &table[indexAt(iova, 0)]
}

// walkHuge descends to the level-1 slot that would hold a 2 MiB leaf.
func (d *Domain) walkHuge(iova IOVA, create bool) *pte {
	if d.wcDir != nil && iova&^(dirCoverage-1) == d.wcDirBase {
		return &d.wcDir[indexAt(iova, hugeLevel)]
	}
	table := &d.root
	for level := ptLevels - 1; level > hugeLevel; level-- {
		e := &table[indexAt(iova, level)]
		if e.children == nil {
			if !create {
				return nil
			}
			e.children = new([ptFanout]pte)
		}
		if level == hugeLevel+1 {
			d.wcDir = e.children
			d.wcDirBase = iova &^ (dirCoverage - 1)
		}
		table = e.children
	}
	return &table[indexAt(iova, hugeLevel)]
}

// lookup translates one IOVA page through the page tables only (no IOTLB).
// Caller holds u.mu. Returns the physical address of iova and its perm.
func (d *Domain) lookup(iova IOVA) (mem.PhysAddr, Perm, bool) {
	e := d.walk(iova, false)
	if e == nil || !e.present {
		return 0, 0, false
	}
	if e.huge {
		base := e.pfn.Addr()
		off := mem.PhysAddr(iova & IOVA(mem.HugePageMask))
		return base + off, e.perm, true
	}
	off := mem.PhysAddr(iova & IOVA(mem.PageMask))
	return e.pfn.Addr() + off, e.perm, true
}

// MappedPages returns the number of currently mapped 4 KiB pages in the
// device's domain.
func (u *IOMMU) MappedPages(dev int) int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if d := u.domain(dev); d != nil {
		return d.mappedPages
	}
	return 0
}

// EverMappedPages returns the cumulative count of pages ever mapped for the
// device (the monotone curve of Fig 9).
func (u *IOMMU) EverMappedPages(dev int) int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if d := u.domain(dev); d != nil {
		return d.everMapped
	}
	return 0
}
