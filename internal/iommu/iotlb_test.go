package iommu

import (
	"testing"

	"github.com/asplos18/damn/internal/mem"
)

// TestIOTLBSetIndexDistribution checks that a dense IOVA range spreads
// evenly over the sets: filling exactly Sets×Ways consecutive pages must
// leave every entry resident (no set receives more than Ways pages, so
// nothing is evicted).
func TestIOTLBSetIndexDistribution(t *testing.T) {
	cfg := IOTLBConfig{Sets: 64, Ways: 4}
	tlb := NewIOTLB(cfg)
	dev := 1
	total := cfg.Sets * cfg.Ways
	for p := 0; p < total; p++ {
		iova := IOVA(p) << mem.PageShift
		tlb.insert(dev, iova, false, mem.PFN(p), PermRead)
	}
	perSet := make([]int, cfg.Sets)
	valid := 0
	for si := range tlb.sets {
		for i := range tlb.sets[si] {
			if tlb.sets[si][i].valid {
				valid++
				perSet[si]++
			}
		}
	}
	if valid != total {
		t.Fatalf("dense fill evicted entries: %d resident, want %d", valid, total)
	}
	for si, n := range perSet {
		if n != cfg.Ways {
			t.Fatalf("set %d holds %d entries, want %d (skewed index)", si, n, cfg.Ways)
		}
	}
	// Every inserted page must still translate without a walk.
	for p := 0; p < total; p++ {
		iova := IOVA(p) << mem.PageShift
		if _, ok := tlb.lookup(dev, iova); !ok {
			t.Fatalf("dense page %d missed after full fill", p)
		}
	}
}

// TestIOTLBAdversarialStride drives the all-same-set worst case: an IOVA
// stride of Sets pages maps every access to one set (the collision pattern
// DAMN's region-encoded IOVAs produce, Table 3). The set must behave as a
// bounded LRU: a just-inserted translation always hits, the most recent
// Ways entries stay resident, and older ones are evicted — never an
// unbounded pile-up or a pathological self-eviction.
func TestIOTLBAdversarialStride(t *testing.T) {
	cfg := IOTLBConfig{Sets: 64, Ways: 4}
	tlb := NewIOTLB(cfg)
	dev := 1
	stride := IOVA(cfg.Sets) << mem.PageShift
	n := 3 * cfg.Ways
	for i := 0; i < n; i++ {
		iova := IOVA(i) * stride
		tlb.insert(dev, iova, false, mem.PFN(i), PermWrite)
		// The worst case must still hit immediately after its own insert.
		if e, ok := tlb.lookup(dev, iova); !ok {
			t.Fatalf("entry %d missed right after insert", i)
		} else if e.pfn != mem.PFN(i) {
			t.Fatalf("entry %d returned pfn %d, want %d", i, e.pfn, i)
		}
	}
	// Exactly one set is populated, at exactly Ways entries.
	si := tlb.setIndex(dev, 0)
	for s := range tlb.sets {
		for i := range tlb.sets[s] {
			if tlb.sets[s][i].valid && s != si {
				t.Fatalf("adversarial stride leaked into set %d (home set %d)", s, si)
			}
		}
	}
	valid := 0
	for i := range tlb.sets[si] {
		if tlb.sets[si][i].valid {
			valid++
		}
	}
	if valid != cfg.Ways {
		t.Fatalf("home set holds %d entries, want %d", valid, cfg.Ways)
	}
	// LRU: the most recent Ways insertions survive, everything older is
	// gone.
	for i := 0; i < n; i++ {
		iova := IOVA(i) * stride
		_, ok := tlb.lookup(dev, iova)
		if want := i >= n-cfg.Ways; ok != want {
			t.Fatalf("entry %d resident=%v, want %v", i, ok, want)
		}
	}
}

// TestIOTLBAdversarialStrideHuge repeats the worst case with 2 MiB entries:
// huge-tag collisions must obey the same bounded-LRU behaviour.
func TestIOTLBAdversarialStrideHuge(t *testing.T) {
	cfg := IOTLBConfig{Sets: 16, Ways: 2}
	tlb := NewIOTLB(cfg)
	dev := 2
	stride := IOVA(cfg.Sets) << mem.HugePageShift
	n := 4 * cfg.Ways
	for i := 0; i < n; i++ {
		iova := IOVA(i) * stride
		tlb.insert(dev, iova, true, mem.PFN(i), PermRead)
		if _, ok := tlb.lookup(dev, iova); !ok {
			t.Fatalf("huge entry %d missed right after insert", i)
		}
	}
	for i := 0; i < n; i++ {
		iova := IOVA(i) * stride
		_, ok := tlb.lookup(dev, iova)
		if want := i >= n-cfg.Ways; ok != want {
			t.Fatalf("huge entry %d resident=%v, want %v", i, ok, want)
		}
	}
}
