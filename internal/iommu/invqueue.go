package iommu

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// The OS controls the IOTLB through an *invalidation queue* — "a cyclic
// buffer from which the IOMMU reads commands" (§3 of the paper). The
// protection schemes submit commands here; invalidations take effect only
// when the hardware drains the queue, which is exactly the semantics that
// separates strict (submit + wait for drain) from deferred (submit and move
// on, leaving the window open).

// CommandKind selects an invalidation command type.
type CommandKind uint8

const (
	// InvRange invalidates the IOTLB entries overlapping an IOVA range
	// of one device.
	InvRange CommandKind = iota
	// InvDomain invalidates everything belonging to one device
	// (domain-selective invalidation).
	InvDomain
	// InvGlobal invalidates the whole IOTLB.
	InvGlobal
	// InvWait is a fence: hardware acknowledges it only after every
	// earlier command has executed (used by strict-mode waits).
	InvWait
)

func (k CommandKind) String() string {
	switch k {
	case InvRange:
		return "range"
	case InvDomain:
		return "domain"
	case InvGlobal:
		return "global"
	case InvWait:
		return "wait"
	default:
		return "?"
	}
}

// Command is one invalidation-queue entry.
type Command struct {
	Kind CommandKind
	Dev  int
	Base IOVA
	Size int
	// Acked is set by the hardware when an InvWait executes.
	Acked *bool
}

// InvQueueDepth is the cyclic buffer capacity (VT-d queues are a few
// hundred entries; 256 matches Linux's default allocation).
const InvQueueDepth = 256

// InvalidationQueue is the cyclic command buffer. The OS is the producer
// (Submit); the hardware is the consumer (Drain).
type InvalidationQueue struct {
	tlb *IOTLB
	inj *faults.Injector // set via IOMMU.SetFaults

	buf   [InvQueueDepth]Command
	head  int // next slot the hardware reads
	tail  int // next slot the OS writes
	count int

	Submitted   uint64
	Processed   uint64
	ITETimeouts uint64 // injected invalidation time-outs survived

	// Observability (nil-safe handles; see SetStats).
	submittedC *stats.Counter
	processedC *stats.Counter
	wrapDrainC *stats.Counter
	rejectedC  *stats.Counter
	iteC       *stats.Counter
	depthHist  *stats.Histogram
	drainHist  *stats.Histogram
}

// NewInvalidationQueue builds a queue feeding the given IOTLB.
func NewInvalidationQueue(tlb *IOTLB) *InvalidationQueue {
	return &InvalidationQueue{tlb: tlb}
}

// SetStats attaches a metrics registry: command counts, the queue-depth
// distribution observed at submit, and the batch sizes the hardware drains.
func (q *InvalidationQueue) SetStats(r *stats.Registry) {
	q.submittedC = r.Counter("iommu", "invq_submitted")
	q.processedC = r.Counter("iommu", "invq_processed")
	q.wrapDrainC = r.Counter("iommu", "invq_wrap_drains")
	q.rejectedC = r.Counter("iommu", "invq_rejected")
	q.iteC = r.Counter("iommu", "ite_timeouts")
	q.depthHist = r.Histogram("iommu", "invq_depth")
	q.drainHist = r.Histogram("iommu", "invq_drain_batch")
}

// Pending reports queued, not-yet-executed commands.
func (q *InvalidationQueue) Pending() int { return q.count }

// Submit enqueues a command; it does NOT take effect until the hardware
// drains the queue. A full queue forces the OS to drain synchronously
// first (as the VT-d driver does when the queue wraps). Validation runs
// BEFORE the wrap-handling, so an invalid command is rejected outright and
// can never trigger a spurious synchronous drain.
func (q *InvalidationQueue) Submit(cmd Command) error {
	if cmd.Kind == InvRange && cmd.Size <= 0 {
		q.rejectedC.Inc()
		return fmt.Errorf("iommu: range invalidation with size %d", cmd.Size)
	}
	if q.count == InvQueueDepth {
		// Hardware consumes commands far faster than software can
		// produce them in practice; model the wrap case by draining.
		q.wrapDrainC.Inc()
		q.Drain()
	}
	q.depthHist.Observe(float64(q.count))
	q.buf[q.tail] = cmd
	q.tail = (q.tail + 1) % InvQueueDepth
	q.count++
	q.Submitted++
	q.submittedC.Inc()
	return nil
}

// Drain executes every pending command in FIFO order and returns how many
// ran. This is the "hardware" side; callers charge its latency separately
// (perf.Model.IOTLBInvLatency per command).
//
// Adjacent range invalidations for the same device (each command starting
// where the previous one ended — the pattern a scatter/gather unmap or a
// chunk teardown produces) are coalesced into a single IOTLB walk. The
// command count returned, Processed and the drain-batch histogram still
// reflect the original commands; only the number of IOTLB flush operations
// (the TLB's FlushCommands) shrinks, and the set of entries dropped is
// identical because range invalidation is linear in its page span.
func (q *InvalidationQueue) Drain() int {
	n := 0
	for q.count > 0 {
		cmd := q.buf[q.head]
		q.head = (q.head + 1) % InvQueueDepth
		q.count--
		n++
		q.Processed++
		if cmd.Kind == InvRange {
			for q.count > 0 {
				next := &q.buf[q.head]
				if next.Kind != InvRange || next.Dev != cmd.Dev ||
					next.Base != cmd.Base+IOVA(cmd.Size) {
					break
				}
				cmd.Size += next.Size
				q.head = (q.head + 1) % InvQueueDepth
				q.count--
				n++
				q.Processed++
			}
		}
		q.execute(cmd)
	}
	if n > 0 {
		q.processedC.Add(uint64(n))
		q.drainHist.Observe(float64(n))
	}
	return n
}

// maxITERetries bounds the retry loop: after this many consecutive
// time-outs the OS gives up waiting and proceeds with the drain (the
// hardware has, by then, had orders of magnitude longer than one timeout
// window to respond — matching Linux, which complains but does not halt).
const maxITERetries = 8

// DrainRetry is the OS-side synchronous drain with VT-d ITE handling: wait
// for the queue to empty, and on an (injected) Invalidation Time-out Error
// charge the timed-out wait to the caller, back off exponentially and
// retry. With fault injection off it is exactly Drain. The total stall is
// simulated time on the calling task, so ITE recovery is as measurable as
// any other cost.
func (q *InvalidationQueue) DrainRetry(c perf.Charger, timeout sim.Time) int {
	if timeout <= 0 {
		timeout = 10 * sim.Microsecond
	}
	var waited sim.Time
	backoff := timeout
	for attempt := 0; attempt < maxITERetries && q.inj.Should(faults.InvTimeout); attempt++ {
		q.ITETimeouts++
		q.iteC.Inc()
		perf.ChargeTime(c, backoff)
		waited += backoff
		backoff *= 2
	}
	if waited > 0 {
		q.inj.ObserveRecovery(faults.InvTimeout, waited)
	}
	return q.Drain()
}

func (q *InvalidationQueue) execute(cmd Command) {
	switch cmd.Kind {
	case InvRange:
		q.tlb.InvalidateRange(cmd.Dev, cmd.Base, cmd.Size)
	case InvDomain:
		q.tlb.InvalidateDevice(cmd.Dev)
	case InvGlobal:
		q.tlb.InvalidateAll()
	case InvWait:
		if cmd.Acked != nil {
			*cmd.Acked = true
		}
	}
}
