package iommu

import (
	"math/rand"
	"testing"

	"github.com/asplos18/damn/internal/mem"
)

// TestTranslationMatchesReferenceModel drives random map/unmap/invalidate/
// translate sequences and checks the IOMMU (page tables + IOTLB + queue)
// against a trivial reference map, including the one permitted divergence:
// a stale IOTLB hit between unmap and drain.
func TestTranslationMatchesReferenceModel(t *testing.T) {
	m, err := mem.New(mem.Config{TotalBytes: 64 << 20, NUMANodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := New(m)
	u.AttachDevice(1)
	rng := rand.New(rand.NewSource(99))

	type mapping struct {
		pa   mem.PhysAddr
		perm Perm
	}
	ref := map[IOVA]mapping{}   // live page-table state
	stale := map[IOVA]mapping{} // unmapped but possibly IOTLB-cached
	var freePages []*mem.Page

	randIOVA := func() IOVA { return IOVA(rng.Intn(4096)) << mem.PageShift }
	perms := []Perm{PermRead, PermWrite, PermRW}

	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // map
			v := randIOVA()
			if _, ok := ref[v]; ok {
				continue
			}
			p, err := m.AllocPages(0, 0)
			if err != nil {
				continue
			}
			perm := perms[rng.Intn(3)]
			if err := u.Map(1, v, p.PFN().Addr(), mem.PageSize, perm); err != nil {
				t.Fatalf("step %d: map: %v", step, err)
			}
			ref[v] = mapping{p.PFN().Addr(), perm}
			delete(stale, v)
			freePages = append(freePages, p)
		case 3, 4: // unmap (no invalidate yet)
			for v, mp := range ref {
				if err := u.Unmap(1, v, mem.PageSize); err != nil {
					t.Fatalf("step %d: unmap: %v", step, err)
				}
				stale[v] = mp
				delete(ref, v)
				break
			}
		case 5: // drain an invalidation
			u.InvQ().Submit(Command{Kind: InvDomain, Dev: 1})
			u.InvQ().Drain()
			stale = map[IOVA]mapping{}
		default: // translate
			v := randIOVA()
			write := rng.Intn(2) == 0
			got, err := u.Translate(1, v+IOVA(rng.Intn(mem.PageSize)), write)
			need := PermRead
			if write {
				need = PermWrite
			}
			live, isLive := ref[v]
			st, isStale := stale[v]
			switch {
			case isLive && live.perm&need != 0:
				if err != nil {
					t.Fatalf("step %d: live mapping faulted: %v", step, err)
				}
				if got>>mem.PageShift != mem.PhysAddr(live.pa)>>mem.PageShift {
					t.Fatalf("step %d: wrong frame: %#x vs %#x", step, got, live.pa)
				}
			case isLive: // wrong permission
				if err == nil {
					t.Fatalf("step %d: permission violation allowed", step)
				}
			case isStale && st.perm&need != 0:
				// May hit (stale IOTLB) or fault (entry evicted or
				// never cached) — both are legitimate hardware
				// behaviours. But if it hits, it must be the old
				// frame.
				if err == nil && got>>mem.PageShift != mem.PhysAddr(st.pa)>>mem.PageShift {
					t.Fatalf("step %d: stale hit to wrong frame", step)
				}
			default:
				if err == nil {
					t.Fatalf("step %d: unmapped IOVA %#x translated", step, v)
				}
			}
		}
	}
	_ = freePages
}
