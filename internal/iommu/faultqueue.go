package iommu

import (
	"fmt"

	"github.com/asplos18/damn/internal/stats"
)

// VT-d hardware does not raise a Go error at the device: a blocked DMA
// aborts silently on the bus and the IOMMU deposits a *fault record* into a
// bounded ring the OS reads later (primary fault logging). FaultQueue
// models that ring: faultLocked pushes a record for every blocked DMA, and
// when the ring is full the record is lost and only an overflow counter
// advances — exactly the information loss real hardware exhibits under a
// fault storm.

// FaultRecordDepth is the ring capacity. VT-d exposes a small number of
// fault-recording registers backed by a software ring; 64 keeps the OS's
// view bounded the way hardware does.
const FaultRecordDepth = 64

// FaultRecord is one entry of the fault-record queue.
type FaultRecord struct {
	Fault
	// Injected marks records produced by the fault plane rather than a
	// genuinely missing/insufficient translation.
	Injected bool
}

// FaultQueue is the bounded VT-d-style fault-record ring. It is guarded by
// the owning IOMMU's mutex.
type FaultQueue struct {
	buf   [FaultRecordDepth]FaultRecord
	head  int
	tail  int
	count int

	Recorded  uint64 // records successfully deposited
	Overflows uint64 // records lost to a full ring

	// Per-source-device attribution: the supervisor needs to pin a fault
	// storm on one fault domain, and a full ring must still say *whose*
	// records it is losing (the source-id field of a VT-d fault record).
	// Dense slices indexed by device id; a fault storm hammers these, so
	// the hot path is an indexed add, not a map probe.
	recordedBy  []uint64
	overflowsBy []uint64
	// probesBy counts, per source device, blocked DMAs whose target IOVA
	// decodes to a *different* device's range — neighbour probes, the
	// cross-tenant attack signature (see IOMMU.SetProbeClassifier).
	probesBy []uint64

	recordC    *stats.Counter
	overflowC  *stats.Counter
	reg        *stats.Registry
	recordDevC []*stats.Counter
	overDevC   []*stats.Counter
	probeDevC  []*stats.Counter
}

func (fq *FaultQueue) setStats(r *stats.Registry) {
	fq.reg = r
	fq.recordC = r.Counter("iommu", "fault_records")
	fq.overflowC = r.Counter("iommu", "fault_overflows")
}

// devCounter lazily creates the per-device flavour of a fault counter the
// first time device dev faults. Caller holds the IOMMU mutex.
func (fq *FaultQueue) devCounter(cache *[]*stats.Counter, name string, dev int) *stats.Counter {
	if fq.reg == nil || dev < 0 {
		return nil // nil-safe handle: stats not attached
	}
	for dev >= len(*cache) {
		*cache = append(*cache, nil)
	}
	c := (*cache)[dev]
	if c == nil {
		c = fq.reg.Counter("iommu", fmt.Sprintf("%s_dev%d", name, dev))
		(*cache)[dev] = c
	}
	return c
}

// bumpDev adds one to the device's slot of a dense attribution slice,
// growing it on first sight of the device. Caller holds the IOMMU mutex.
func bumpDev(counts *[]uint64, dev int) {
	if dev < 0 {
		return
	}
	for dev >= len(*counts) {
		*counts = append(*counts, 0)
	}
	(*counts)[dev]++
}

// push deposits a record, dropping it (and counting the overflow) when the
// ring is full. Caller holds the IOMMU mutex.
func (fq *FaultQueue) push(rec FaultRecord) {
	if fq.count == FaultRecordDepth {
		fq.Overflows++
		fq.overflowC.Inc()
		bumpDev(&fq.overflowsBy, rec.Dev)
		fq.devCounter(&fq.overDevC, "fault_overflows", rec.Dev).Inc()
		return
	}
	fq.buf[fq.tail] = rec
	fq.tail = (fq.tail + 1) % FaultRecordDepth
	fq.count++
	fq.Recorded++
	fq.recordC.Inc()
	bumpDev(&fq.recordedBy, rec.Dev)
	fq.devCounter(&fq.recordDevC, "fault_records", rec.Dev).Inc()
}

// Pending reports deposited, not-yet-read records.
func (fq *FaultQueue) Pending() int { return fq.count }

// drain pops every pending record in FIFO order. Caller holds the IOMMU
// mutex.
func (fq *FaultQueue) drain() []FaultRecord {
	if fq.count == 0 {
		return nil
	}
	out := make([]FaultRecord, 0, fq.count)
	for fq.count > 0 {
		out = append(out, fq.buf[fq.head])
		fq.head = (fq.head + 1) % FaultRecordDepth
		fq.count--
	}
	return out
}

// ReadFaultRecords is the OS side of primary fault logging: it pops and
// returns every pending record, clearing the ring the way the fault-status
// register write-back does.
func (u *IOMMU) ReadFaultRecords() []FaultRecord {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.fq.drain()
}

// PendingFaultRecords reports deposited, not-yet-read records.
func (u *IOMMU) PendingFaultRecords() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.fq.Pending()
}

// FaultQueueStats reports (recorded, overflowed) record counts.
func (u *IOMMU) FaultQueueStats() (recorded, overflowed uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.fq.Recorded, u.fq.Overflows
}

// DeviceFaultStats reports (recorded, overflowed, probesBlocked) fault
// counts attributed to one source device. This is what lets the supervisor,
// the tenant manager and the stats snapshot pin a storm on a fault domain
// instead of the machine; probesBlocked isolates the subset of blocked DMAs
// that aimed at a sibling device's IOVA range (neighbour probes).
func (u *IOMMU) DeviceFaultStats(dev int) (recorded, overflowed, probesBlocked uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if dev >= 0 && dev < len(u.fq.recordedBy) {
		recorded = u.fq.recordedBy[dev]
	}
	if dev >= 0 && dev < len(u.fq.overflowsBy) {
		overflowed = u.fq.overflowsBy[dev]
	}
	if dev >= 0 && dev < len(u.fq.probesBy) {
		probesBlocked = u.fq.probesBy[dev]
	}
	return recorded, overflowed, probesBlocked
}
