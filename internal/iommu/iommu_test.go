package iommu

import (
	"errors"
	"testing"

	"github.com/asplos18/damn/internal/mem"
)

func newTestIOMMU(t *testing.T) (*IOMMU, *mem.Memory) {
	t.Helper()
	m, err := mem.New(mem.Config{TotalBytes: 64 << 20, NUMANodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(m), m
}

func allocPA(t *testing.T, m *mem.Memory, order int) mem.PhysAddr {
	t.Helper()
	p, err := m.AllocPages(order, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p.PFN().Addr()
}

func TestMapTranslateUnmap(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	const iova = IOVA(0x100000)
	if err := u.Map(1, iova, pa, mem.PageSize, PermRW); err != nil {
		t.Fatalf("Map: %v", err)
	}
	got, err := u.Translate(1, iova+123, true)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if got != pa+123 {
		t.Fatalf("Translate = %#x, want %#x", got, pa+123)
	}
	if err := u.Unmap(1, iova, mem.PageSize); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	u.TLB().InvalidateRange(1, iova, mem.PageSize)
	if _, err := u.Translate(1, iova, true); err == nil {
		t.Fatal("translate after unmap+invalidate should fault")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(1, 0x1000, false); err != nil {
		t.Fatalf("read should be allowed: %v", err)
	}
	if _, err := u.Translate(1, 0x1000, true); err == nil {
		t.Fatal("write to read-only mapping should fault")
	}
	var f Fault
	if !errors.As(func() error { _, err := u.Translate(1, 0x1000, true); return err }(), &f) {
		t.Fatal("fault should be a Fault")
	}
	if f.Dev != 1 || !f.Write {
		t.Fatalf("bad fault contents: %+v", f)
	}
}

func TestPermCachedInTLBStillChecked(t *testing.T) {
	// A read fill must not grant write through the cached entry.
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(1, 0x1000, false); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(1, 0x1000, true); err == nil {
		t.Fatal("TLB hit must still enforce permissions")
	}
}

func TestUnattachedDeviceBlocked(t *testing.T) {
	u, _ := newTestIOMMU(t)
	if _, err := u.Translate(9, 0x1000, false); err == nil {
		t.Fatal("unattached device should fault")
	}
	if u.BlockedDMAs != 1 {
		t.Fatalf("BlockedDMAs = %d", u.BlockedDMAs)
	}
	if len(u.Faults()) != 1 {
		t.Fatalf("fault log has %d entries", len(u.Faults()))
	}
}

func TestDeferredWindowViaIOTLB(t *testing.T) {
	// The crux of §4.1: after Unmap but before IOTLB invalidation, a
	// previously cached translation still works — the TOCTTOU window.
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	const iova = IOVA(0x200000)
	if err := u.Map(1, iova, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Prime the IOTLB.
	if _, err := u.Translate(1, iova, true); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(1, iova, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// No invalidation yet: the stale entry still translates.
	got, err := u.Translate(1, iova, true)
	if err != nil {
		t.Fatal("expected stale IOTLB entry to keep working (the vulnerability window)")
	}
	if got != pa {
		t.Fatalf("stale translation = %#x, want %#x", got, pa)
	}
	// After invalidation the window closes.
	u.TLB().InvalidateRange(1, iova, mem.PageSize)
	if _, err := u.Translate(1, iova, true); err == nil {
		t.Fatal("translate after invalidation should fault")
	}
}

func TestMultiPageMap(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 4) // 16 contiguous pages
	const iova = IOVA(0x400000)
	if err := u.Map(1, iova, pa, 16*mem.PageSize, PermWrite); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got, err := u.Translate(1, iova+IOVA(i*mem.PageSize)+7, true)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := pa + mem.PhysAddr(i*mem.PageSize) + 7
		if got != want {
			t.Fatalf("page %d: got %#x want %#x", i, got, want)
		}
	}
	if u.MappedPages(1) != 16 {
		t.Fatalf("MappedPages = %d", u.MappedPages(1))
	}
}

func TestDoubleMapRejected(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err == nil {
		t.Fatal("double map should fail")
	}
}

func TestUnalignedRejected(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1001, pa, mem.PageSize, PermRW); err == nil {
		t.Fatal("unaligned iova should fail")
	}
	if err := u.Map(1, 0x1000, pa+1, mem.PageSize, PermRW); err == nil {
		t.Fatal("unaligned pa should fail")
	}
	if err := u.Map(1, 0x1000, pa, mem.PageSize, 0); err == nil {
		t.Fatal("empty perm should fail")
	}
}

func TestHugePageMapping(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	// Need a 2 MiB aligned physical block: order 9 = 512 pages = 2 MiB.
	p, err := m.AllocPages(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa := p.PFN().Addr()
	if pa&mem.HugePageMask != 0 {
		t.Fatalf("order-9 block not 2 MiB aligned: %#x", pa)
	}
	const iova = IOVA(0x40000000) // 1 GiB, 2 MiB aligned
	if err := u.MapHuge(1, iova, pa, PermRW); err != nil {
		t.Fatalf("MapHuge: %v", err)
	}
	// Translate addresses all across the 2 MiB range.
	for _, off := range []IOVA{0, 4096, 1 << 20, mem.HugePageSize - 1} {
		got, err := u.Translate(1, iova+off, true)
		if err != nil {
			t.Fatalf("huge translate +%#x: %v", off, err)
		}
		if got != pa+mem.PhysAddr(off) {
			t.Fatalf("huge translate +%#x: got %#x", off, got)
		}
	}
	if u.MappedPages(1) != 512 {
		t.Fatalf("MappedPages = %d, want 512", u.MappedPages(1))
	}
	if err := u.UnmapHuge(1, iova); err != nil {
		t.Fatal(err)
	}
	u.TLB().InvalidateDevice(1)
	if _, err := u.Translate(1, iova, true); err == nil {
		t.Fatal("translate after huge unmap should fault")
	}
}

func TestHugeTLBEntryCoversRange(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	p, _ := m.AllocPages(9, 0)
	const iova = IOVA(0x40000000)
	if err := u.MapHuge(1, iova, p.PFN().Addr(), PermRW); err != nil {
		t.Fatal(err)
	}
	u.Translate(1, iova, true) // miss + fill
	misses := u.TLB().Misses
	// Every other page in the same 2 MiB region must now hit.
	for off := IOVA(mem.PageSize); off < mem.HugePageSize; off += 64 * mem.PageSize {
		if _, err := u.Translate(1, iova+off, true); err != nil {
			t.Fatal(err)
		}
	}
	if u.TLB().Misses != misses {
		t.Fatalf("expected all translations within huge page to hit; misses grew %d -> %d", misses, u.TLB().Misses)
	}
}

func TestPassthrough(t *testing.T) {
	u, m := newTestIOMMU(t)
	d := u.AttachDevice(1)
	d.Passthrough = true
	pa := allocPA(t, m, 0)
	got, err := u.Translate(1, IOVA(pa)+5, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != pa+5 {
		t.Fatalf("passthrough translate = %#x", got)
	}
}

func TestDMAReadWrite(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 1) // 2 pages, to cross a page boundary
	const iova = IOVA(0x10000)
	if err := u.Map(1, iova, pa, 2*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 6000) // crosses the page boundary
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := u.DMAWrite(1, iova+100, msg)
	if err != nil || n != len(msg) {
		t.Fatalf("DMAWrite = %d, %v", n, err)
	}
	// The kernel-side view must see the same bytes.
	kernel := m.Bytes(pa+100, len(msg))
	for i := range msg {
		if kernel[i] != msg[i] {
			t.Fatalf("byte %d: %d != %d", i, kernel[i], msg[i])
		}
	}
	back := make([]byte, len(msg))
	n, err = u.DMARead(1, iova+100, back)
	if err != nil || n != len(back) {
		t.Fatalf("DMARead = %d, %v", n, err)
	}
	for i := range back {
		if back[i] != msg[i] {
			t.Fatalf("readback byte %d mismatch", i)
		}
	}
}

func TestDMAFaultStopsAtBoundary(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	const iova = IOVA(0x10000)
	if err := u.Map(1, iova, pa, mem.PageSize, PermWrite); err != nil {
		t.Fatal(err)
	}
	// Attempt to write 2 pages; only the first is mapped.
	buf := make([]byte, 2*mem.PageSize)
	n, err := u.DMAWrite(1, iova, buf)
	if err == nil {
		t.Fatal("expected fault on second page")
	}
	if n != mem.PageSize {
		t.Fatalf("transferred %d bytes before fault, want %d", n, mem.PageSize)
	}
}

func TestIOTLBEviction(t *testing.T) {
	tlb := NewIOTLB(IOTLBConfig{Sets: 2, Ways: 2}) // 4 entries
	for i := 0; i < 100; i++ {
		tlb.insert(1, IOVA(i)<<mem.PageShift, false, mem.PFN(i), PermRW)
	}
	live := 0
	for i := 0; i < 100; i++ {
		if _, ok := tlb.lookup(1, IOVA(i)<<mem.PageShift); ok {
			live++
		}
	}
	if live > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", live)
	}
	if live == 0 {
		t.Fatal("cache retained nothing")
	}
}

func TestIOTLBInvalidateDevice(t *testing.T) {
	tlb := NewIOTLB(DefaultIOTLBConfig())
	tlb.insert(1, 0x1000, false, 1, PermRW)
	tlb.insert(2, 0x1000, false, 2, PermRW)
	tlb.InvalidateDevice(1)
	if _, ok := tlb.lookup(1, 0x1000); ok {
		t.Fatal("dev 1 entry should be gone")
	}
	if _, ok := tlb.lookup(2, 0x1000); !ok {
		t.Fatal("dev 2 entry should survive")
	}
}

func TestIOTLBInvalidateAll(t *testing.T) {
	tlb := NewIOTLB(DefaultIOTLBConfig())
	tlb.insert(1, 0x1000, false, 1, PermRW)
	tlb.insert(2, 0x2000, false, 2, PermRW)
	tlb.InvalidateAll()
	if _, ok := tlb.lookup(1, 0x1000); ok {
		t.Fatal("entries should be gone")
	}
	if _, ok := tlb.lookup(2, 0x2000); ok {
		t.Fatal("entries should be gone")
	}
}

func TestEverMappedMonotone(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	for i := 0; i < 5; i++ {
		pa := allocPA(t, m, 0)
		iova := IOVA(0x1000 * (i + 1))
		if err := u.Map(1, iova, pa, mem.PageSize, PermRW); err != nil {
			t.Fatal(err)
		}
		if err := u.Unmap(1, iova, mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if u.MappedPages(1) != 0 {
		t.Fatalf("MappedPages = %d, want 0", u.MappedPages(1))
	}
	if u.EverMappedPages(1) != 5 {
		t.Fatalf("EverMappedPages = %d, want 5", u.EverMappedPages(1))
	}
}

func TestHitRate(t *testing.T) {
	u, m := newTestIOMMU(t)
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	u.Map(1, 0x1000, pa, mem.PageSize, PermRW)
	u.Translate(1, 0x1000, true) // miss
	u.Translate(1, 0x1000, true) // hit
	u.Translate(1, 0x1000, true) // hit
	if got := u.TLB().HitRate(); got < 0.6 || got > 0.7 {
		t.Fatalf("HitRate = %f, want 2/3", got)
	}
}
