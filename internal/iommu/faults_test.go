package iommu

import (
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

func alwaysInject(k faults.Kind) *faults.Injector {
	return faults.New(faults.Config{Seed: 1, Rates: map[faults.Kind]float64{k: 1}})
}

// TestDrainRetryChargesSimulatedTime is the ITE regression: an injected
// invalidation time-out must stall the calling task for the full
// exponential-backoff wait — recovery is real simulated time, not a free
// retry loop — and the drain must still complete.
func TestDrainRetryChargesSimulatedTime(t *testing.T) {
	u, m := newTestIOMMU(t)
	reg := stats.NewRegistry()
	u.SetStats(reg)
	u.SetFaults(alwaysInject(faults.InvTimeout))
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.InvQ().Submit(Command{Kind: InvRange, Dev: 1, Base: 0x1000, Size: mem.PageSize}); err != nil {
		t.Fatal(err)
	}

	se := sim.NewEngine(0)
	core := sim.NewCore(se, 0, 0, 1e9)
	const timeout = 10 * sim.Microsecond
	// Rate 1 times out every attempt, so the OS pays the full capped
	// exponential series: timeout * (2^maxITERetries - 1).
	want := timeout * ((1 << 8) - 1)
	var end sim.Time
	var drained int
	core.Submit(false, func(task *sim.Task) {
		drained = u.InvQ().DrainRetry(task, timeout)
		end = task.Now()
	})
	se.RunUntilIdle()

	if drained != 1 {
		t.Fatalf("drained %d commands, want 1", drained)
	}
	if end != want {
		t.Fatalf("task advanced %v, want %v of ITE backoff", end, want)
	}
	if core.Busy() != want {
		t.Fatalf("core busy %v, want %v", core.Busy(), want)
	}
	if u.InvQ().ITETimeouts != 8 {
		t.Fatalf("ITETimeouts = %d, want 8", u.InvQ().ITETimeouts)
	}
	if got := reg.Snapshot().Counters["iommu/ite_timeouts"]; got != 8 {
		t.Fatalf("registry ite_timeouts = %d, want 8", got)
	}
}

// TestDrainRetryWithoutFaultsIsDrain: a nil injector (or a quiet one) makes
// DrainRetry cost nothing beyond Drain.
func TestDrainRetryWithoutFaultsIsDrain(t *testing.T) {
	u, _ := newTestIOMMU(t)
	u.AttachDevice(1)
	se := sim.NewEngine(0)
	core := sim.NewCore(se, 0, 0, 1e9)
	var end sim.Time
	core.Submit(false, func(task *sim.Task) {
		u.InvQ().DrainRetry(task, 10*sim.Microsecond)
		end = task.Now()
	})
	se.RunUntilIdle()
	if end != 0 {
		t.Fatalf("fault-free DrainRetry charged %v", end)
	}
	if u.InvQ().ITETimeouts != 0 {
		t.Fatal("spurious ITE timeouts")
	}
}

// TestInjectedDMAFaultRecords: an injected translation fault must abort the
// access with a fault and land in the bounded fault-record queue, flagged
// as injected; overflow drops records and counts them.
func TestInjectedDMAFaultRecords(t *testing.T) {
	u, m := newTestIOMMU(t)
	reg := stats.NewRegistry()
	u.SetStats(reg)
	u.SetFaults(alwaysInject(faults.DMAFault))
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}

	// Push well past the queue depth: every translate faults at rate 1.
	total := FaultRecordDepth + 10
	for i := 0; i < total; i++ {
		if _, err := u.Translate(1, 0x1000, false); err == nil {
			t.Fatal("injected DMA fault did not surface")
		}
	}
	recs := u.ReadFaultRecords()
	if len(recs) != FaultRecordDepth {
		t.Fatalf("read %d records, want the full queue %d", len(recs), FaultRecordDepth)
	}
	for _, r := range recs {
		if !r.Injected {
			t.Fatal("record not flagged injected")
		}
		if r.Dev != 1 {
			t.Fatalf("record dev %d", r.Dev)
		}
	}
	recorded, overflowed := u.FaultQueueStats()
	if recorded != uint64(FaultRecordDepth) {
		t.Fatalf("recorded %d", recorded)
	}
	if overflowed != uint64(total-FaultRecordDepth) {
		t.Fatalf("overflowed %d, want %d", overflowed, total-FaultRecordDepth)
	}
	// Reading drained the queue; the next fault records again.
	if u.PendingFaultRecords() != 0 {
		t.Fatalf("queue not drained: %d", u.PendingFaultRecords())
	}
	if _, err := u.Translate(1, 0x1000, false); err == nil {
		t.Fatal("expected fault")
	}
	if u.PendingFaultRecords() != 1 {
		t.Fatalf("new fault not recorded: %d pending", u.PendingFaultRecords())
	}
}

// TestPerDeviceFaultAttribution: the fault ring's per-source-device
// counters must attribute records (and overflow losses) to the right fault
// domain, and DetachDevice must make subsequent DMA fault naturally.
func TestPerDeviceFaultAttribution(t *testing.T) {
	u, m := newTestIOMMU(t)
	reg := stats.NewRegistry()
	u.SetStats(reg)
	u.AttachDevice(1)
	u.AttachDevice(2)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}

	// Device 2 faults on an address it never mapped; device 1 stays clean.
	for i := 0; i < 5; i++ {
		if _, err := u.Translate(2, 0x9000, false); err == nil {
			t.Fatal("expected fault for unmapped iova")
		}
	}
	if n := u.BlockedDMAsFor(2); n != 5 {
		t.Fatalf("device 2 blocked DMAs = %d, want 5", n)
	}
	if n := u.BlockedDMAsFor(1); n != 0 {
		t.Fatalf("device 1 blocked DMAs = %d, want 0", n)
	}
	rec2, over2, _ := u.DeviceFaultStats(2)
	if rec2 != 5 || over2 != 0 {
		t.Fatalf("device 2 fault stats = (%d,%d), want (5,0)", rec2, over2)
	}
	if rec1, _, _ := u.DeviceFaultStats(1); rec1 != 0 {
		t.Fatalf("device 1 recorded %d faults, want 0", rec1)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("iommu/fault_records_dev2"); got != 5 {
		t.Fatalf("registry fault_records_dev2 = %d, want 5", got)
	}

	// Overflow the ring from device 2: losses must stay attributed.
	for i := 0; i < FaultRecordDepth+7; i++ {
		u.Translate(2, 0x9000, false)
	}
	_, over2, _ = u.DeviceFaultStats(2)
	// 5 records were already queued, so the ring had Depth-5 free slots.
	wantOver := uint64(7 + 5)
	if over2 != wantOver {
		t.Fatalf("device 2 overflows = %d, want %d", over2, wantOver)
	}
	if _, over1, _ := u.DeviceFaultStats(1); over1 != 0 {
		t.Fatalf("device 1 charged %d overflows", over1)
	}

	// Detach: device 1's formerly valid DMA now faults naturally and is
	// attributed to it.
	if pages, ok := u.DetachDevice(1); !ok || pages != 1 {
		t.Fatalf("DetachDevice = (%d,%v)", pages, ok)
	}
	if u.Attached(1) {
		t.Fatal("device 1 still attached")
	}
	if _, err := u.Translate(1, 0x1000, false); err == nil {
		t.Fatal("detached device translated successfully")
	}
	if n := u.BlockedDMAsFor(1); n != 1 {
		t.Fatalf("device 1 blocked DMAs after detach = %d, want 1", n)
	}
}
