package iommu

import (
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

func alwaysInject(k faults.Kind) *faults.Injector {
	return faults.New(faults.Config{Seed: 1, Rates: map[faults.Kind]float64{k: 1}})
}

// TestDrainRetryChargesSimulatedTime is the ITE regression: an injected
// invalidation time-out must stall the calling task for the full
// exponential-backoff wait — recovery is real simulated time, not a free
// retry loop — and the drain must still complete.
func TestDrainRetryChargesSimulatedTime(t *testing.T) {
	u, m := newTestIOMMU(t)
	reg := stats.NewRegistry()
	u.SetStats(reg)
	u.SetFaults(alwaysInject(faults.InvTimeout))
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.InvQ().Submit(Command{Kind: InvRange, Dev: 1, Base: 0x1000, Size: mem.PageSize}); err != nil {
		t.Fatal(err)
	}

	se := sim.NewEngine(0)
	core := sim.NewCore(se, 0, 0, 1e9)
	const timeout = 10 * sim.Microsecond
	// Rate 1 times out every attempt, so the OS pays the full capped
	// exponential series: timeout * (2^maxITERetries - 1).
	want := timeout * ((1 << 8) - 1)
	var end sim.Time
	var drained int
	core.Submit(false, func(task *sim.Task) {
		drained = u.InvQ().DrainRetry(task, timeout)
		end = task.Now()
	})
	se.RunUntilIdle()

	if drained != 1 {
		t.Fatalf("drained %d commands, want 1", drained)
	}
	if end != want {
		t.Fatalf("task advanced %v, want %v of ITE backoff", end, want)
	}
	if core.Busy() != want {
		t.Fatalf("core busy %v, want %v", core.Busy(), want)
	}
	if u.InvQ().ITETimeouts != 8 {
		t.Fatalf("ITETimeouts = %d, want 8", u.InvQ().ITETimeouts)
	}
	if got := reg.Snapshot().Counters["iommu/ite_timeouts"]; got != 8 {
		t.Fatalf("registry ite_timeouts = %d, want 8", got)
	}
}

// TestDrainRetryWithoutFaultsIsDrain: a nil injector (or a quiet one) makes
// DrainRetry cost nothing beyond Drain.
func TestDrainRetryWithoutFaultsIsDrain(t *testing.T) {
	u, _ := newTestIOMMU(t)
	u.AttachDevice(1)
	se := sim.NewEngine(0)
	core := sim.NewCore(se, 0, 0, 1e9)
	var end sim.Time
	core.Submit(false, func(task *sim.Task) {
		u.InvQ().DrainRetry(task, 10*sim.Microsecond)
		end = task.Now()
	})
	se.RunUntilIdle()
	if end != 0 {
		t.Fatalf("fault-free DrainRetry charged %v", end)
	}
	if u.InvQ().ITETimeouts != 0 {
		t.Fatal("spurious ITE timeouts")
	}
}

// TestInjectedDMAFaultRecords: an injected translation fault must abort the
// access with a fault and land in the bounded fault-record queue, flagged
// as injected; overflow drops records and counts them.
func TestInjectedDMAFaultRecords(t *testing.T) {
	u, m := newTestIOMMU(t)
	reg := stats.NewRegistry()
	u.SetStats(reg)
	u.SetFaults(alwaysInject(faults.DMAFault))
	u.AttachDevice(1)
	pa := allocPA(t, m, 0)
	if err := u.Map(1, 0x1000, pa, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}

	// Push well past the queue depth: every translate faults at rate 1.
	total := FaultRecordDepth + 10
	for i := 0; i < total; i++ {
		if _, err := u.Translate(1, 0x1000, false); err == nil {
			t.Fatal("injected DMA fault did not surface")
		}
	}
	recs := u.ReadFaultRecords()
	if len(recs) != FaultRecordDepth {
		t.Fatalf("read %d records, want the full queue %d", len(recs), FaultRecordDepth)
	}
	for _, r := range recs {
		if !r.Injected {
			t.Fatal("record not flagged injected")
		}
		if r.Dev != 1 {
			t.Fatalf("record dev %d", r.Dev)
		}
	}
	recorded, overflowed := u.FaultQueueStats()
	if recorded != uint64(FaultRecordDepth) {
		t.Fatalf("recorded %d", recorded)
	}
	if overflowed != uint64(total-FaultRecordDepth) {
		t.Fatalf("overflowed %d, want %d", overflowed, total-FaultRecordDepth)
	}
	// Reading drained the queue; the next fault records again.
	if u.PendingFaultRecords() != 0 {
		t.Fatalf("queue not drained: %d", u.PendingFaultRecords())
	}
	if _, err := u.Translate(1, 0x1000, false); err == nil {
		t.Fatal("expected fault")
	}
	if u.PendingFaultRecords() != 1 {
		t.Fatalf("new fault not recorded: %d pending", u.PendingFaultRecords())
	}
}
