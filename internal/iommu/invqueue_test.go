package iommu

import (
	"testing"

	"github.com/asplos18/damn/internal/mem"
)

func newQueueFixture(t *testing.T) (*IOMMU, *mem.Memory) {
	t.Helper()
	m, err := mem.New(mem.Config{TotalBytes: 32 << 20, NUMANodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := New(m)
	u.AttachDevice(1)
	return u, m
}

func TestInvQueueDeferredSemantics(t *testing.T) {
	// The defining behaviour: a submitted invalidation has no effect
	// until the hardware drains the queue.
	u, m := newQueueFixture(t)
	p, _ := m.AllocPages(0, 0)
	if err := u.Map(1, 0x4000, p.PFN().Addr(), mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(1, 0x4000, true); err != nil { // prime IOTLB
		t.Fatal(err)
	}
	if err := u.Unmap(1, 0x4000, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	u.InvQ().Submit(Command{Kind: InvRange, Dev: 1, Base: 0x4000, Size: mem.PageSize})
	if u.InvQ().Pending() != 1 {
		t.Fatalf("Pending = %d", u.InvQ().Pending())
	}
	// Still translatable: the command has not executed.
	if _, err := u.Translate(1, 0x4000, true); err != nil {
		t.Fatal("stale IOTLB entry should survive until drain")
	}
	if n := u.InvQ().Drain(); n != 1 {
		t.Fatalf("Drain = %d", n)
	}
	if _, err := u.Translate(1, 0x4000, true); err == nil {
		t.Fatal("translation should fault after drain")
	}
}

func TestInvQueueFIFOAndWait(t *testing.T) {
	u, m := newQueueFixture(t)
	p, _ := m.AllocPages(0, 0)
	u.Map(1, 0x4000, p.PFN().Addr(), mem.PageSize, PermRW)
	u.Translate(1, 0x4000, true)

	acked := false
	u.InvQ().Submit(Command{Kind: InvDomain, Dev: 1})
	u.InvQ().Submit(Command{Kind: InvWait, Acked: &acked})
	if acked {
		t.Fatal("wait acked before drain")
	}
	u.InvQ().Drain()
	if !acked {
		t.Fatal("wait command not acknowledged")
	}
	if u.InvQ().Processed != 2 || u.InvQ().Submitted != 2 {
		t.Fatalf("counters: %d/%d", u.InvQ().Processed, u.InvQ().Submitted)
	}
}

func TestInvQueueWrapDrains(t *testing.T) {
	u, _ := newQueueFixture(t)
	// Overfill the cyclic buffer: the producer must drain rather than
	// drop or corrupt commands.
	for i := 0; i < InvQueueDepth+10; i++ {
		if err := u.InvQ().Submit(Command{Kind: InvGlobal}); err != nil {
			t.Fatal(err)
		}
	}
	if u.InvQ().Submitted != InvQueueDepth+10 {
		t.Fatalf("Submitted = %d", u.InvQ().Submitted)
	}
	u.InvQ().Drain()
	if u.InvQ().Processed != InvQueueDepth+10 {
		t.Fatalf("Processed = %d", u.InvQ().Processed)
	}
	if u.InvQ().Pending() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestInvQueueRejectsBadRange(t *testing.T) {
	u, _ := newQueueFixture(t)
	if err := u.InvQ().Submit(Command{Kind: InvRange, Dev: 1, Base: 0x1000, Size: 0}); err == nil {
		t.Fatal("zero-size range accepted")
	}
}

func TestInvQueueGlobal(t *testing.T) {
	u, m := newQueueFixture(t)
	u.AttachDevice(2)
	p, _ := m.AllocPages(0, 0)
	p2, _ := m.AllocPages(0, 0)
	u.Map(1, 0x4000, p.PFN().Addr(), mem.PageSize, PermRW)
	u.Map(2, 0x8000, p2.PFN().Addr(), mem.PageSize, PermRW)
	u.Translate(1, 0x4000, true)
	u.Translate(2, 0x8000, true)
	u.Unmap(1, 0x4000, mem.PageSize)
	u.Unmap(2, 0x8000, mem.PageSize)
	u.InvQ().Submit(Command{Kind: InvGlobal})
	u.InvQ().Drain()
	if _, err := u.Translate(1, 0x4000, true); err == nil {
		t.Fatal("dev 1 entry survived global invalidation")
	}
	if _, err := u.Translate(2, 0x8000, true); err == nil {
		t.Fatal("dev 2 entry survived global invalidation")
	}
}

func TestInvalidateRangeIndexedMatchesSweep(t *testing.T) {
	// The set-indexed fast path must drop exactly what the sweep would.
	u, m := newQueueFixture(t)
	p, _ := m.AllocPages(4, 0) // 16 pages
	base := p.PFN().Addr()
	if err := u.Map(1, 0x100000, base, 16*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		u.Translate(1, 0x100000+IOVA(i*mem.PageSize), true)
	}
	// Invalidate the middle 4 pages via the indexed path (<=64 pages).
	u.TLB().InvalidateRange(1, 0x100000+4*mem.PageSize, 4*mem.PageSize)
	for i := 0; i < 16; i++ {
		miss0 := u.TLB().Misses
		u.Translate(1, 0x100000+IOVA(i*mem.PageSize), true)
		missed := u.TLB().Misses > miss0
		inRange := i >= 4 && i < 8
		if inRange && !missed {
			t.Fatalf("page %d should have been invalidated", i)
		}
		if !inRange && missed {
			t.Fatalf("page %d was invalidated but is outside the range", i)
		}
	}
}
