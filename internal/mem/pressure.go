package mem

import "sync"

// Shrinker support — the interface §5.4 of the paper points at ("modern
// OSes provide a standard interface for the OS to request a cache to
// release memory back to the system if memory pressure occurs", citing the
// Linux shrinker). Subsystems that cache pages (DAMN's DMA caches, most
// prominently) register a callback; when the buddy allocator cannot satisfy
// a request, the shrinkers run and the allocation retries.

// ShrinkFunc releases cached memory and returns the number of pages freed.
type ShrinkFunc func() int64

type shrinkerRegistry struct {
	mu  sync.Mutex
	fns []ShrinkFunc
}

// RegisterShrinker adds a reclaim callback.
func (m *Memory) RegisterShrinker(fn ShrinkFunc) {
	m.shrinkers.mu.Lock()
	defer m.shrinkers.mu.Unlock()
	m.shrinkers.fns = append(m.shrinkers.fns, fn)
}

// reclaim runs every shrinker and reports the pages released.
func (m *Memory) reclaim() int64 {
	m.shrinkers.mu.Lock()
	fns := append([]ShrinkFunc(nil), m.shrinkers.fns...)
	m.shrinkers.mu.Unlock()
	var total int64
	for _, fn := range fns {
		total += fn()
	}
	m.reclaimRuns.Add(1)
	m.reclaimedPages.Add(total)
	return total
}

// ReclaimRuns reports how many times memory pressure invoked the shrinkers.
func (m *Memory) ReclaimRuns() int64 { return m.reclaimRuns.Load() }

// ReclaimedPages reports the cumulative pages released under pressure.
func (m *Memory) ReclaimedPages() int64 { return m.reclaimedPages.Load() }
