package mem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/asplos18/damn/internal/faults"
)

// ErrNoMemory reports page-allocator exhaustion after reclaim has run.
// Callers match it with errors.Is: it is the one allocation failure that is
// a state of the machine rather than a caller bug, and every layer above
// (slab, DAMN, netstack) must degrade rather than panic on it.
var ErrNoMemory = errors.New("mem: out of memory")

// Memory is the simulated physical memory of one machine: a flat byte array
// plus the page-struct array and per-NUMA-node buddy zones. It is safe for
// concurrent use; the buddy zones serialize internally.
type Memory struct {
	data  []byte
	pages []Page
	zones []*Zone

	// dirty is a host-side bitmap of 256 KiB granules that Bytes has ever
	// exposed. It exists purely so Release can hand the (large, mostly
	// untouched) data array to the backing pool and the next Memory of the
	// same size can scrub only the granules this one touched, instead of
	// paying a full memclr at construction. It has no simulated meaning.
	dirty []uint64

	// Counters for the evaluation harness (Fig 9 / Fig 10).
	allocatedPages atomic.Int64
	zeroedBytes    atomic.Int64

	// Memory-pressure reclaim (§5.4's shrinker interface).
	shrinkers      shrinkerRegistry
	reclaimRuns    atomic.Int64
	reclaimedPages atomic.Int64

	inj *faults.Injector
}

// SetFaults attaches the machine's fault-injection plane. An injected
// AllocFail behaves exactly like true exhaustion: reclaim runs (shrinkers
// give pages back), then the allocation fails with ErrNoMemory.
func (m *Memory) SetFaults(inj *faults.Injector) { m.inj = inj }

// Config describes the machine memory layout.
type Config struct {
	// TotalBytes of simulated RAM. Rounded down to a page multiple.
	TotalBytes int64
	// NUMANodes is the number of memory nodes; frames are split evenly
	// into contiguous per-node ranges, matching a dual-socket server.
	NUMANodes int
}

// DefaultConfig models the paper's evaluation server: 128 GiB would be
// wasteful to back with real bytes, so tests use smaller memories; the
// evaluation harness sizes memory to the working set it actually touches.
func DefaultConfig() Config {
	return Config{TotalBytes: 512 << 20, NUMANodes: 2}
}

// New constructs a Memory. Frame 0 is reserved (a NULL physical address is
// never handed out), as on real hardware where low memory is firmware-owned.
func New(cfg Config) (*Memory, error) {
	if cfg.NUMANodes <= 0 {
		cfg.NUMANodes = 1
	}
	nPages := int(cfg.TotalBytes >> PageShift)
	if nPages < cfg.NUMANodes*2 {
		return nil, fmt.Errorf("mem: %d bytes is too small for %d NUMA nodes", cfg.TotalBytes, cfg.NUMANodes)
	}
	data, dirty := takeBacking(nPages << PageShift)
	m := &Memory{
		data:  data,
		dirty: dirty,
		pages: make([]Page, nPages),
		zones: make([]*Zone, cfg.NUMANodes),
	}
	perNode := nPages / cfg.NUMANodes
	for i := range m.pages {
		node := i / perNode
		if node >= cfg.NUMANodes {
			node = cfg.NUMANodes - 1
		}
		m.pages[i].pfn = PFN(i)
		m.pages[i].Node = node
	}
	// Reserve frame 0.
	m.pages[0].SetFlags(FlagReserved)
	for n := 0; n < cfg.NUMANodes; n++ {
		start := PFN(n * perNode)
		end := PFN((n + 1) * perNode)
		if n == cfg.NUMANodes-1 {
			end = PFN(nPages)
		}
		if n == 0 {
			start = 1 // skip reserved frame 0
		}
		m.zones[n] = newZone(m, n, start, end)
	}
	return m, nil
}

// NumPages returns the number of physical frames.
func (m *Memory) NumPages() int { return len(m.pages) }

// NumNodes returns the number of NUMA nodes.
func (m *Memory) NumNodes() int { return len(m.zones) }

// PageOf returns the page struct for a frame number.
func (m *Memory) PageOf(pfn PFN) *Page {
	return &m.pages[pfn]
}

// PageOfAddr returns the page struct covering a physical address.
func (m *Memory) PageOfAddr(pa PhysAddr) *Page { return m.PageOf(PFNOf(pa)) }

// CheckRange validates that [pa, pa+n) lies inside simulated RAM.
func (m *Memory) CheckRange(pa PhysAddr, n int) error {
	if n < 0 || uint64(pa)+uint64(n) > uint64(len(m.data)) {
		return fmt.Errorf("mem: physical range [%#x,+%d) out of bounds (RAM is %d bytes)", pa, n, len(m.data))
	}
	return nil
}

// Bytes returns the live byte slice backing [pa, pa+n). Callers are kernel
// code or post-IOMMU device accesses; bounds are enforced. Every exposure
// marks the covered granules dirty — the slice is mutable, so this is the
// single choke point the backing pool relies on to know what needs
// scrubbing on reuse (see Release).
func (m *Memory) Bytes(pa PhysAddr, n int) []byte {
	if err := m.CheckRange(pa, n); err != nil {
		panic(err)
	}
	if n > 0 {
		g0 := uint64(pa) >> granuleShift
		g1 := (uint64(pa) + uint64(n) - 1) >> granuleShift
		for g := g0; g <= g1; g++ {
			m.dirty[g>>6] |= 1 << (g & 63)
		}
	}
	return m.data[pa:PhysAddr(uint64(pa)+uint64(n))]
}

// Read copies n bytes at pa into dst and returns the count.
func (m *Memory) Read(pa PhysAddr, dst []byte) int {
	return copy(dst, m.Bytes(pa, len(dst)))
}

// Write copies src into memory at pa and returns the count.
func (m *Memory) Write(pa PhysAddr, src []byte) int {
	return copy(m.Bytes(pa, len(src)), src)
}

// Zero clears [pa, pa+n). DAMN zeroes every chunk it takes from the page
// allocator (§5.6 TX security argument), and the counter lets tests assert
// that it really happened.
func (m *Memory) Zero(pa PhysAddr, n int) {
	clear(m.Bytes(pa, n))
	m.zeroedBytes.Add(int64(n))
}

// ZeroedBytes reports the cumulative number of bytes zeroed.
func (m *Memory) ZeroedBytes() int64 { return m.zeroedBytes.Load() }

// AllocatedPages reports the number of pages currently held by callers.
func (m *Memory) AllocatedPages() int64 { return m.allocatedPages.Load() }

// AllocPages allocates 2^order physically contiguous frames on the given
// NUMA node (falling back to other nodes if the preferred one is exhausted)
// and returns the head page struct. The block is returned as a compound
// page when order > 0, mirroring __GFP_COMP which network buffer
// allocations use and which DAMN's metadata scheme (§5.5) depends on.
func (m *Memory) AllocPages(order int, node int) (*Page, error) {
	if order < 0 || order > MaxOrder {
		return nil, fmt.Errorf("mem: bad order %d", order)
	}
	if node < 0 || node >= len(m.zones) {
		node = 0
	}
	if m.inj.Should(faults.AllocFail) {
		m.reclaim()
		return nil, fmt.Errorf("%w: injected failure allocating order-%d block on node %d",
			ErrNoMemory, order, node)
	}
	for round := 0; round < 2; round++ {
		for attempt := 0; attempt < len(m.zones); attempt++ {
			z := m.zones[(node+attempt)%len(m.zones)]
			if pfn, ok := z.alloc(order); ok {
				m.allocatedPages.Add(1 << order)
				head := m.PageOf(pfn)
				m.makeCompound(head, order)
				return head, nil
			}
		}
		// Memory pressure: ask the registered caches (DAMN's DMA
		// caches among them) to give pages back, then retry once.
		if round == 0 && m.reclaim() == 0 {
			break
		}
	}
	return nil, fmt.Errorf("%w allocating order-%d block on node %d", ErrNoMemory, order, node)
}

// FreePages returns a block previously obtained from AllocPages.
func (m *Memory) FreePages(head *Page, order int) {
	if head.Has(FlagBuddy) {
		panic(fmt.Sprintf("mem: double free of pfn %d", head.pfn))
	}
	m.breakCompound(head, order)
	m.allocatedPages.Add(-(1 << order))
	m.zones[head.Node].free(head.pfn, order)
}

// makeCompound links 2^order pages into a compound: head gets FlagHead and
// the order; tails get FlagTail and a pointer to the head.
func (m *Memory) makeCompound(head *Page, order int) {
	head.Order = uint8(order)
	head.SetRefCount(1)
	if order == 0 {
		return
	}
	head.SetFlags(FlagHead)
	for i := 1; i < 1<<order; i++ {
		t := m.PageOf(head.pfn + PFN(i))
		t.SetFlags(FlagTail)
		t.HeadPFN = head.pfn
		t.Private = 0
	}
}

// breakCompound dissolves the compound linkage before the block re-enters
// the buddy system.
func (m *Memory) breakCompound(head *Page, order int) {
	head.ClearFlags(FlagHead)
	head.Order = 0
	head.SetRefCount(0)
	for i := 1; i < 1<<order; i++ {
		t := m.PageOf(head.pfn + PFN(i))
		t.ClearFlags(FlagTail | FlagDAMN)
		t.HeadPFN = 0
		t.Private = 0
	}
}

// SplitCompound re-forms one order-`order` compound block into
// 2^(order-sub) independent compounds of order sub, returning their heads.
// The caller must own the block. Used by DAMN's dense-huge-IOVA variant to
// carve a 2 MiB superblock into 64 KiB chunks that each keep their own
// head-page refcount and tail-page metadata.
func (m *Memory) SplitCompound(head *Page, order, sub int) []*Page {
	if sub > order {
		panic(fmt.Sprintf("mem: cannot split order %d into order %d", order, sub))
	}
	m.breakCompound(head, order)
	n := 1 << (order - sub)
	heads := make([]*Page, 0, n)
	for i := 0; i < n; i++ {
		h := m.PageOf(head.pfn + PFN(i<<sub))
		m.makeCompound(h, sub)
		heads = append(heads, h)
	}
	return heads
}

// Head resolves a page to its compound head (itself if not a tail).
func (m *Memory) Head(p *Page) *Page {
	if p.IsCompoundTail() {
		return m.PageOf(p.HeadPFN)
	}
	return p
}

// FreePagesInZone reports the free frame count on a node (for tests and the
// shrinker pressure model).
func (m *Memory) FreePagesInZone(node int) int64 {
	return m.zones[node].freePages()
}

// TotalFreePages reports free frames across all nodes.
func (m *Memory) TotalFreePages() int64 {
	var n int64
	for _, z := range m.zones {
		n += z.freePages()
	}
	return n
}
