package mem

import (
	"math/bits"
	"sync"
)

// Backing pool: machines are built and discarded by the dozen per
// experiment run, and the dominant host cost of each construction is the
// Go runtime zeroing the (hundreds of MiB, mostly never touched) data
// array. Memory tracks which 256 KiB granules it ever exposed through
// Bytes, and Release parks the array here; the next New of the same size
// scrubs only those granules. A recycled backing is therefore
// byte-for-byte indistinguishable from a fresh make([]byte, n) — reuse is
// a host-side optimisation with no simulated effect.

const (
	// granuleShift covers 64 pages (256 KiB) per dirty bit: coarse enough
	// that marking in Bytes is one or two word ORs for any ordinary span,
	// fine enough that a machine which touched 1% of RAM scrubs ~1% of it.
	granuleShift = PageShift + 6
	granuleSize  = 1 << granuleShift
)

// backingBudget bounds the pool's total held bytes (host memory only);
// beyond it, released arrays are simply dropped for the GC.
const backingBudget = 4 << 30

var backingPool struct {
	mu    sync.Mutex
	free  map[int][]backing // keyed by len(data)
	bytes int
}

type backing struct {
	data  []byte
	dirty []uint64
}

// takeBacking returns a zeroed data array of the given size plus its dirty
// bitmap, recycling a pooled pair when one fits.
func takeBacking(size int) ([]byte, []uint64) {
	backingPool.mu.Lock()
	list := backingPool.free[size]
	if n := len(list); n > 0 {
		b := list[n-1]
		list[n-1] = backing{}
		backingPool.free[size] = list[:n-1]
		backingPool.bytes -= size
		backingPool.mu.Unlock()
		scrub(b)
		return b.data, b.dirty
	}
	backingPool.mu.Unlock()
	nGranules := (size + granuleSize - 1) >> granuleShift
	return make([]byte, size), make([]uint64, (nGranules+63)/64)
}

// scrub re-zeroes exactly the granules the previous owner dirtied and
// resets the bitmap.
func scrub(b backing) {
	size := len(b.data)
	for wi, w := range b.dirty {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << bit
			lo := (wi*64 + bit) << granuleShift
			hi := lo + granuleSize
			if hi > size {
				hi = size
			}
			clear(b.data[lo:hi])
		}
		b.dirty[wi] = 0
	}
}

// Release parks the data array in the backing pool for the next Memory of
// the same size. The Memory must not be used afterwards: any surviving
// accessor panics on the nil data array, so a use-after-release is loud.
// Release is optional — an un-released Memory is simply collected by the
// GC — and idempotent.
func (m *Memory) Release() {
	if m.data == nil {
		return
	}
	data, dirty := m.data, m.dirty
	m.data, m.dirty = nil, nil
	backingPool.mu.Lock()
	defer backingPool.mu.Unlock()
	if backingPool.bytes+len(data) > backingBudget {
		return
	}
	if backingPool.free == nil {
		backingPool.free = make(map[int][]backing)
	}
	backingPool.free[len(data)] = append(backingPool.free[len(data)], backing{data, dirty})
	backingPool.bytes += len(data)
}
