// Package mem implements the simulated physical memory substrate that the
// rest of the reproduction runs on: a flat byte-addressable "RAM", an array
// of page structs (the analogue of Linux's struct page), a NUMA-zoned buddy
// page allocator, compound pages, and a small kmalloc-style slab allocator.
//
// Everything above this package — the IOMMU, the DMA API, DAMN itself, the
// device models — addresses memory through mem.PhysAddr values and reads or
// writes bytes through Memory accessors, exactly as hardware and kernel code
// address physical memory. Nothing in the repository holds raw Go pointers
// into DMA-visible memory; all device access is by simulated physical
// address, so IOMMU enforcement is airtight within the simulation.
package mem

import (
	"fmt"
	"sync/atomic"
)

// Page geometry. These mirror x86-64: 4 KiB base pages and 2 MiB huge pages
// (used by the IOMMU for "huge IOVA page" mappings, Table 3 of the paper).
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1

	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift // 2 MiB
	HugePageMask  = HugePageSize - 1
)

// PhysAddr is a simulated physical address.
type PhysAddr uint64

// PFN is a physical frame number: PhysAddr >> PageShift.
type PFN uint64

// Addr returns the physical address of the first byte of the frame.
func (p PFN) Addr() PhysAddr { return PhysAddr(p) << PageShift }

// PFNOf returns the frame number containing the physical address.
func PFNOf(pa PhysAddr) PFN { return PFN(pa >> PageShift) }

// PageFlags is the per-page flag word, the analogue of struct page flags.
type PageFlags uint32

const (
	// FlagHead marks the head page of a compound (multi-page) allocation.
	FlagHead PageFlags = 1 << iota
	// FlagTail marks a non-head page of a compound allocation.
	FlagTail
	// FlagDAMN is DAMN's flag F (§5.5 of the paper): set on the *third*
	// page struct of a DAMN chunk to identify the compound as
	// DAMN-managed without enlarging struct page.
	FlagDAMN
	// FlagReserved marks frames that are not available to the allocator
	// (simulated firmware holes, the zero frame).
	FlagReserved
	// FlagSlab marks pages owned by the kmalloc slab allocator.
	FlagSlab
	// FlagBuddy marks a free page currently held in a buddy free list; it
	// exists to catch double frees.
	FlagBuddy
)

// Page is the simulated struct page. One exists for every physical frame.
// As in Linux, several fields are unions in spirit: Private carries
// order-of-block for free buddy pages, slab metadata for slab pages, and
// DAMN metadata (the chunk IOVA, the owning DMA-cache handle) on tail pages
// of DAMN chunks — storing that metadata in otherwise-unused tail page
// structs is precisely the trick §5.5 of the paper describes.
type Page struct {
	flags    atomicFlags
	refcount atomic.Int32

	// Order is valid on a compound head: log2 of the number of pages.
	Order uint8

	// HeadPFN is valid on tail pages: the PFN of the compound head.
	HeadPFN PFN

	// Private is general-purpose per-page metadata storage (see above).
	Private uint64

	// NUMA node this frame belongs to. Fixed at Memory construction.
	Node int

	pfn PFN
}

type atomicFlags struct{ v atomic.Uint32 }

func (f *atomicFlags) set(bits PageFlags)      { f.v.Or(uint32(bits)) }
func (f *atomicFlags) clear(bits PageFlags)    { f.v.And(^uint32(bits)) }
func (f *atomicFlags) has(bits PageFlags) bool { return PageFlags(f.v.Load())&bits == bits }

// PFN returns the frame number this page struct describes.
func (p *Page) PFN() PFN { return p.pfn }

// Flags returns the current flag word.
func (p *Page) Flags() PageFlags { return PageFlags(p.flags.v.Load()) }

// SetFlags sets the given flag bits.
func (p *Page) SetFlags(bits PageFlags) { p.flags.set(bits) }

// ClearFlags clears the given flag bits.
func (p *Page) ClearFlags(bits PageFlags) { p.flags.clear(bits) }

// Has reports whether all the given flag bits are set.
func (p *Page) Has(bits PageFlags) bool { return p.flags.has(bits) }

// Get increments the page reference count and returns the new value.
// This is the interface DAMN's chunk refcounting uses (§5.4: "using the
// existing OS page reference-count interface").
func (p *Page) Get() int32 { return p.refcount.Add(1) }

// Put decrements the page reference count and returns the new value.
func (p *Page) Put() int32 {
	n := p.refcount.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("mem: refcount of pfn %d went negative", p.pfn))
	}
	return n
}

// RefCount returns the current reference count.
func (p *Page) RefCount() int32 { return p.refcount.Load() }

// SetRefCount forces the reference count; used when (re)initialising a
// freshly allocated block.
func (p *Page) SetRefCount(n int32) { p.refcount.Store(n) }

// IsCompoundHead reports whether this page heads a compound allocation.
func (p *Page) IsCompoundHead() bool { return p.Has(FlagHead) }

// IsCompoundTail reports whether this page is a compound tail.
func (p *Page) IsCompoundTail() bool { return p.Has(FlagTail) }
