package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlabAllocAligned(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	s := NewSlab(m)
	for _, size := range []int{1, 8, 9, 100, 500, 4096} {
		pa, err := s.Alloc(size, 0)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if pa%8 != 0 {
			t.Errorf("Alloc(%d) = %#x, not 8-byte aligned", size, pa)
		}
		s.Free(pa)
	}
}

func TestSlabCoLocation(t *testing.T) {
	// This is the property the paper's §4.1 exploits: two unrelated
	// kmalloc objects can land on the same physical page, so
	// page-granularity IOMMU mappings leak neighbours.
	m := newTestMemory(t, 16<<20, 1)
	s := NewSlab(m)
	a, err := s.Alloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if PFNOf(a) != PFNOf(b) {
		t.Fatalf("consecutive 256 B allocations on different pages (%d vs %d); co-location property broken", PFNOf(a), PFNOf(b))
	}
	s.Free(a)
	s.Free(b)
}

func TestSlabLargeAllocation(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	s := NewSlab(m)
	pa, err := s.Alloc(3*PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa&PageMask != 0 {
		t.Errorf("large alloc %#x not page aligned", pa)
	}
	// A 3-page request rounds to an order-2 block.
	if got := s.BytesAllocated(); got != 4*PageSize {
		t.Errorf("BytesAllocated = %d, want %d", got, 4*PageSize)
	}
	s.Free(pa)
	if got := s.BytesAllocated(); got != 0 {
		t.Errorf("BytesAllocated after free = %d, want 0", got)
	}
}

func TestSlabPageRecycled(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1)
	s := NewSlab(m)
	free0 := m.TotalFreePages()
	var addrs []PhysAddr
	for i := 0; i < PageSize/64; i++ { // fill exactly one 64 B slab page
		pa, err := s.Alloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, pa)
	}
	if m.TotalFreePages() != free0-1 {
		t.Fatalf("expected exactly one backing page, free delta = %d", free0-m.TotalFreePages())
	}
	for _, pa := range addrs {
		s.Free(pa)
	}
	if m.TotalFreePages() != free0 {
		t.Fatal("empty slab page not returned to buddy allocator")
	}
}

func TestSlabDoubleFreePanics(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1)
	s := NewSlab(m)
	pa, _ := s.Alloc(64, 0)
	s.Free(pa)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	s.Free(pa)
}

func TestSlabDistinctAddresses(t *testing.T) {
	// Property test: any sequence of allocation sizes yields pairwise
	// non-overlapping objects.
	m := newTestMemory(t, 64<<20, 1)
	s := NewSlab(m)
	check := func(sizes []uint16) bool {
		type span struct{ lo, hi PhysAddr }
		var spans []span
		var addrs []PhysAddr
		for _, raw := range sizes {
			size := int(raw)%2048 + 1
			pa, err := s.Alloc(size, 0)
			if err != nil {
				return false
			}
			for _, sp := range spans {
				if pa < sp.hi && sp.lo < pa+PhysAddr(size) {
					return false
				}
			}
			spans = append(spans, span{pa, pa + PhysAddr(size)})
			addrs = append(addrs, pa)
		}
		for _, pa := range addrs {
			s.Free(pa)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabStress(t *testing.T) {
	m := newTestMemory(t, 32<<20, 2)
	s := NewSlab(m)
	rng := rand.New(rand.NewSource(7))
	live := map[PhysAddr]int{}
	for i := 0; i < 10000; i++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			size := rng.Intn(8192) + 1
			pa, err := s.Alloc(size, rng.Intn(2))
			if err != nil {
				continue
			}
			live[pa] = size
		} else {
			for pa := range live {
				s.Free(pa)
				delete(live, pa)
				break
			}
		}
	}
	for pa := range live {
		s.Free(pa)
	}
	if got := s.BytesAllocated(); got != 0 {
		t.Fatalf("leaked %d bytes", got)
	}
}
