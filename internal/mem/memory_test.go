package mem

import (
	"math/rand"
	"testing"
)

func newTestMemory(t testing.TB, bytes int64, nodes int) *Memory {
	t.Helper()
	m, err := New(Config{TotalBytes: bytes, NUMANodes: nodes})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewMemoryLayout(t *testing.T) {
	m := newTestMemory(t, 16<<20, 2)
	if got, want := m.NumPages(), 4096; got != want {
		t.Fatalf("NumPages = %d, want %d", got, want)
	}
	if m.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", m.NumNodes())
	}
	if !m.PageOf(0).Has(FlagReserved) {
		t.Error("frame 0 should be reserved")
	}
	if m.PageOf(100).Node != 0 {
		t.Errorf("pfn 100 node = %d, want 0", m.PageOf(100).Node)
	}
	if m.PageOf(3000).Node != 1 {
		t.Errorf("pfn 3000 node = %d, want 1", m.PageOf(3000).Node)
	}
}

func TestNewMemoryTooSmall(t *testing.T) {
	if _, err := New(Config{TotalBytes: PageSize, NUMANodes: 2}); err == nil {
		t.Fatal("expected error for tiny memory")
	}
}

func TestAllocFreeSinglePage(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	before := m.TotalFreePages()
	p, err := m.AllocPages(0, 0)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if p.PFN() == 0 {
		t.Fatal("allocated reserved frame 0")
	}
	if p.RefCount() != 1 {
		t.Errorf("fresh page refcount = %d, want 1", p.RefCount())
	}
	if m.TotalFreePages() != before-1 {
		t.Errorf("free pages = %d, want %d", m.TotalFreePages(), before-1)
	}
	m.FreePages(p, 0)
	if m.TotalFreePages() != before {
		t.Errorf("after free, free pages = %d, want %d", m.TotalFreePages(), before)
	}
}

func TestAllocCompound(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, err := m.AllocPages(4, 0) // 16 pages = a DAMN chunk
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if !p.IsCompoundHead() {
		t.Error("head page should have FlagHead")
	}
	if p.Order != 4 {
		t.Errorf("head order = %d, want 4", p.Order)
	}
	for i := 1; i < 16; i++ {
		tail := m.PageOf(p.PFN() + PFN(i))
		if !tail.IsCompoundTail() {
			t.Fatalf("page %d should be a tail", i)
		}
		if tail.HeadPFN != p.PFN() {
			t.Fatalf("tail %d head = %d, want %d", i, tail.HeadPFN, p.PFN())
		}
		if m.Head(tail) != p {
			t.Fatalf("Head(tail %d) mismatch", i)
		}
	}
	m.FreePages(p, 4)
	for i := 1; i < 16; i++ {
		if m.PageOf(p.PFN() + PFN(i)).IsCompoundTail() {
			t.Fatalf("tail flag not cleared on page %d after free", i)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	m := newTestMemory(t, 64<<20, 1)
	for order := 0; order <= MaxOrder; order++ {
		p, err := m.AllocPages(order, 0)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if uint64(p.PFN())&((1<<order)-1) != 0 {
			t.Errorf("order-%d block at pfn %d is unaligned", order, p.PFN())
		}
		m.FreePages(p, order)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, _ := m.AllocPages(0, 0)
	m.FreePages(p, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.FreePages(p, 0)
}

func TestOutOfMemory(t *testing.T) {
	m := newTestMemory(t, 1<<20, 1) // 256 pages
	var blocks []*Page
	for {
		p, err := m.AllocPages(0, 0)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	if len(blocks) != 255 { // 256 minus reserved frame 0
		t.Errorf("allocated %d pages, want 255", len(blocks))
	}
	if _, err := m.AllocPages(0, 0); err == nil {
		t.Fatal("expected OOM")
	}
	for _, p := range blocks {
		m.FreePages(p, 0)
	}
	if got := m.TotalFreePages(); got != 255 {
		t.Errorf("after freeing all: %d free, want 255", got)
	}
}

func TestBuddyCoalescing(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	// Allocate everything as order-0, free it all, then a MaxOrder
	// allocation must succeed again — proving full coalescing.
	var blocks []*Page
	for {
		p, err := m.AllocPages(0, 0)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	for i := len(blocks) - 1; i >= 0; i-- { // reverse order for variety
		m.FreePages(blocks[i], 0)
	}
	p, err := m.AllocPages(MaxOrder, 0)
	if err != nil {
		t.Fatalf("MaxOrder alloc after full free failed: %v", err)
	}
	m.FreePages(p, MaxOrder)
}

func TestNUMAPreference(t *testing.T) {
	m := newTestMemory(t, 32<<20, 2)
	p0, err := m.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Node != 0 {
		t.Errorf("node-0 alloc landed on node %d", p0.Node)
	}
	if p1.Node != 1 {
		t.Errorf("node-1 alloc landed on node %d", p1.Node)
	}
	m.FreePages(p0, 0)
	m.FreePages(p1, 0)
}

func TestNUMAFallback(t *testing.T) {
	m := newTestMemory(t, 4<<20, 2) // 512 pages per node
	var blocks []*Page
	// Exhaust node 0.
	for {
		p, err := m.AllocPages(0, 0)
		if err != nil || p.Node != 0 {
			if err == nil {
				blocks = append(blocks, p)
			}
			break
		}
		blocks = append(blocks, p)
	}
	// The last allocation (or the next) must have fallen back to node 1.
	p, err := m.AllocPages(0, 0)
	if err != nil {
		t.Fatalf("fallback alloc failed: %v", err)
	}
	if p.Node != 1 {
		t.Errorf("fallback landed on node %d, want 1", p.Node)
	}
	m.FreePages(p, 0)
	for _, b := range blocks {
		m.FreePages(b, 0)
	}
}

func TestReadWriteZero(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1)
	p, _ := m.AllocPages(0, 0)
	pa := p.PFN().Addr()
	src := []byte("hello, DMA world")
	m.Write(pa+5, src)
	dst := make([]byte, len(src))
	m.Read(pa+5, dst)
	if string(dst) != string(src) {
		t.Fatalf("read back %q, want %q", dst, src)
	}
	m.Zero(pa, PageSize)
	if m.ZeroedBytes() != PageSize {
		t.Errorf("ZeroedBytes = %d, want %d", m.ZeroedBytes(), PageSize)
	}
	m.Read(pa+5, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("Zero did not clear page")
		}
	}
	m.FreePages(p, 0)
}

func TestBytesBounds(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Bytes did not panic")
		}
	}()
	m.Bytes(PhysAddr(8<<20)-10, 100)
}

func TestPageFlagOps(t *testing.T) {
	var p Page
	p.SetFlags(FlagDAMN | FlagSlab)
	if !p.Has(FlagDAMN) || !p.Has(FlagSlab) {
		t.Fatal("flags not set")
	}
	p.ClearFlags(FlagDAMN)
	if p.Has(FlagDAMN) {
		t.Fatal("FlagDAMN not cleared")
	}
	if !p.Has(FlagSlab) {
		t.Fatal("FlagSlab should survive")
	}
}

func TestRefCounting(t *testing.T) {
	var p Page
	p.SetRefCount(1)
	if p.Get() != 2 {
		t.Fatal("Get should return 2")
	}
	if p.Put() != 1 {
		t.Fatal("Put should return 1")
	}
	if p.Put() != 0 {
		t.Fatal("Put should return 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative refcount did not panic")
		}
	}()
	p.Put()
}

// TestBuddyRandomized is a randomized stress test: interleave allocations
// and frees of random orders and verify that (a) no two live blocks
// overlap, and (b) after freeing everything the free-page count returns to
// its initial value.
func TestBuddyRandomized(t *testing.T) {
	m := newTestMemory(t, 32<<20, 2)
	rng := rand.New(rand.NewSource(42))
	initial := m.TotalFreePages()

	type block struct {
		p     *Page
		order int
	}
	var live []block
	owned := map[PFN]bool{}

	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			order := rng.Intn(5)
			p, err := m.AllocPages(order, rng.Intn(2))
			if err != nil {
				continue // OOM under load is fine
			}
			for i := PFN(0); i < 1<<order; i++ {
				if owned[p.PFN()+i] {
					t.Fatalf("step %d: frame %d double-allocated", step, p.PFN()+i)
				}
				owned[p.PFN()+i] = true
			}
			live = append(live, block{p, order})
		} else {
			i := rng.Intn(len(live))
			b := live[i]
			for j := PFN(0); j < 1<<b.order; j++ {
				delete(owned, b.p.PFN()+j)
			}
			m.FreePages(b.p, b.order)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, b := range live {
		m.FreePages(b.p, b.order)
	}
	if got := m.TotalFreePages(); got != initial {
		t.Fatalf("leaked frames: %d free, want %d", got, initial)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	m := newTestMemory(t, 64<<20, 2)
	initial := m.TotalFreePages()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				order := rng.Intn(4)
				p, err := m.AllocPages(order, rng.Intn(2))
				if err != nil {
					continue
				}
				// Touch the memory to catch overlapping handouts.
				m.Write(p.PFN().Addr(), []byte{byte(seed)})
				m.FreePages(p, order)
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := m.TotalFreePages(); got != initial {
		t.Fatalf("leaked frames under concurrency: %d free, want %d", got, initial)
	}
}

func TestShrinkerRunsUnderPressure(t *testing.T) {
	m := newTestMemory(t, 1<<20, 1) // 256 pages
	// A cache subsystem holds half the memory and registers a shrinker.
	var cached []*Page
	for i := 0; i < 128; i++ {
		p, err := m.AllocPages(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		cached = append(cached, p)
	}
	m.RegisterShrinker(func() int64 {
		n := int64(len(cached))
		for _, p := range cached {
			m.FreePages(p, 0)
		}
		cached = nil
		return n
	})
	// Exhaust the rest.
	var hogs []*Page
	for {
		p, err := m.AllocPages(0, 0)
		if err != nil {
			break
		}
		hogs = append(hogs, p)
		if len(hogs) > 300 {
			break
		}
	}
	// The shrinker must have been invoked and satisfied the tail of the
	// allocations from the reclaimed cache.
	if m.ReclaimRuns() == 0 {
		t.Fatal("no reclaim under pressure")
	}
	if m.ReclaimedPages() != 128 {
		t.Fatalf("reclaimed %d pages, want 128", m.ReclaimedPages())
	}
	if len(hogs) != 255 { // the whole machine minus the reserved frame
		t.Fatalf("allocated %d pages, want 255 after reclaim", len(hogs))
	}
}

func TestReclaimWithoutShrinkersFailsFast(t *testing.T) {
	m := newTestMemory(t, 1<<20, 1)
	for {
		if _, err := m.AllocPages(0, 0); err != nil {
			break
		}
	}
	if _, err := m.AllocPages(0, 0); err == nil {
		t.Fatal("expected OOM")
	}
	if m.ReclaimedPages() != 0 {
		t.Fatal("phantom reclaim")
	}
}
