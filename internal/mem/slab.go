package mem

import (
	"fmt"
	"sync"
)

// Slab is a kmalloc-style size-class allocator layered on the buddy
// allocator. The reproduction uses it for "ordinary" kernel allocations:
// skbuff heads on the non-DAMN paths, shadow-buffer staging copies, and the
// sensitive-data objects of the co-location attack scenario. Its defining
// property for this paper is that *unrelated allocations share pages* —
// which is exactly why DMA-API-level IOMMU protection is only partial
// (§4.1): mapping a kmalloc'ed buffer for a device exposes every other
// object on the same page.
type Slab struct {
	mem *Memory

	mu      sync.Mutex
	classes []*sizeClass
	// large allocations (> the biggest class) get whole page blocks;
	// track their order by head PFN for free.
	largeOrders map[PFN]int
	// pagesByPFN lets Free recover the slabPage from an object address.
	pagesByPFN map[PFN]*slabPage
	// spare recycles slabPage records (and their free-index capacity).
	// A short-lived object on an otherwise-empty page releases and
	// recreates its page every cycle — that page traffic is simulated
	// behaviour and stays; the host-side bookkeeping struct behind it
	// need not churn the Go heap. Bounded so a burst cannot pin memory.
	spare []*slabPage

	bytesAllocated int64
}

// slabClassSizes are the kmalloc size classes, powers of two from 8 B to
// 4 KiB, as in Linux's kmalloc caches.
var slabClassSizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

type sizeClass struct {
	size    int
	partial []*slabPage // pages with at least one free object
}

type slabPage struct {
	head     *Page
	objSize  int
	free     []int // free object indexes within the page
	nObjects int
	inUse    int
}

// NewSlab constructs a slab allocator over the given memory.
func NewSlab(m *Memory) *Slab {
	s := &Slab{mem: m, largeOrders: make(map[PFN]int), pagesByPFN: make(map[PFN]*slabPage)}
	for _, sz := range slabClassSizes {
		s.classes = append(s.classes, &sizeClass{size: sz})
	}
	return s
}

// classFor returns the index of the smallest class that fits size, or -1 if
// the request needs whole pages.
func (s *Slab) classFor(size int) int {
	for i, c := range s.classes {
		if size <= c.size {
			return i
		}
	}
	return -1
}

// Alloc returns the physical address of a newly allocated object of at
// least the given size, 8-byte aligned, physically contiguous — the
// semantics the paper gives for kmalloc (§5.1). node selects the preferred
// NUMA node.
func (s *Slab) Alloc(size, node int) (PhysAddr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: slab alloc of size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.classFor(size)
	if ci < 0 {
		// Whole-page allocation.
		order := 0
		for (PageSize << order) < size {
			order++
		}
		head, err := s.mem.AllocPages(order, node)
		if err != nil {
			return 0, err
		}
		head.SetFlags(FlagSlab)
		s.largeOrders[head.PFN()] = order
		s.bytesAllocated += int64(PageSize << order)
		return head.PFN().Addr(), nil
	}
	c := s.classes[ci]
	if len(c.partial) == 0 {
		sp, err := s.newSlabPage(c.size, node)
		if err != nil {
			return 0, err
		}
		c.partial = append(c.partial, sp)
	}
	sp := c.partial[len(c.partial)-1]
	idx := sp.free[len(sp.free)-1]
	sp.free = sp.free[:len(sp.free)-1]
	sp.inUse++
	if len(sp.free) == 0 {
		c.partial = c.partial[:len(c.partial)-1]
	}
	s.bytesAllocated += int64(c.size)
	return sp.head.PFN().Addr() + PhysAddr(idx*sp.objSize), nil
}

func (s *Slab) newSlabPage(objSize, node int) (*slabPage, error) {
	head, err := s.mem.AllocPages(0, node)
	if err != nil {
		return nil, err
	}
	head.SetFlags(FlagSlab)
	n := PageSize / objSize
	var sp *slabPage
	if k := len(s.spare); k > 0 {
		sp = s.spare[k-1]
		s.spare = s.spare[:k-1]
		sp.head, sp.objSize, sp.nObjects, sp.inUse = head, objSize, n, 0
		sp.free = sp.free[:0]
	} else {
		sp = &slabPage{head: head, objSize: objSize, nObjects: n}
	}
	for i := n - 1; i >= 0; i-- {
		sp.free = append(sp.free, i)
	}
	// Record the slabPage so Free can find it from an object address.
	head.Private = uint64(objSize)
	s.pagesByPFN[head.PFN()] = sp
	return sp, nil
}

// Free releases an object previously returned by Alloc.
func (s *Slab) Free(pa PhysAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pfn := PFNOf(pa)
	head := s.mem.Head(s.mem.PageOf(pfn))
	if order, ok := s.largeOrders[head.PFN()]; ok {
		head.ClearFlags(FlagSlab)
		delete(s.largeOrders, head.PFN())
		s.bytesAllocated -= int64(PageSize << order)
		s.mem.FreePages(head, order)
		return
	}
	sp, ok := s.pagesByPFN[pfn]
	if !ok {
		panic(fmt.Sprintf("mem: slab free of non-slab address %#x", pa))
	}
	off := int(pa - pfn.Addr())
	if off%sp.objSize != 0 {
		panic(fmt.Sprintf("mem: slab free of unaligned address %#x (class %d)", pa, sp.objSize))
	}
	idx := off / sp.objSize
	for _, f := range sp.free {
		if f == idx {
			panic(fmt.Sprintf("mem: slab double free of %#x", pa))
		}
	}
	wasFull := len(sp.free) == 0
	sp.free = append(sp.free, idx)
	sp.inUse--
	s.bytesAllocated -= int64(sp.objSize)
	ci := s.classFor(sp.objSize)
	c := s.classes[ci]
	if sp.inUse == 0 {
		// Return the empty page to the buddy allocator.
		if !wasFull {
			for i, p := range c.partial {
				if p == sp {
					c.partial = append(c.partial[:i], c.partial[i+1:]...)
					break
				}
			}
		}
		delete(s.pagesByPFN, sp.head.PFN())
		sp.head.ClearFlags(FlagSlab)
		sp.head.Private = 0
		s.mem.FreePages(sp.head, 0)
		if len(s.spare) < 128 {
			sp.head = nil
			s.spare = append(s.spare, sp)
		}
		return
	}
	if wasFull {
		c.partial = append(c.partial, sp)
	}
}

// BytesAllocated reports the live allocation footprint.
func (s *Slab) BytesAllocated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesAllocated
}
