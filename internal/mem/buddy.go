package mem

import (
	"fmt"
	"sync"
)

// MaxOrder is the largest block the buddy allocator manages: 2^10 pages =
// 4 MiB, matching Linux's MAX_ORDER-1 = 10 on x86.
const MaxOrder = 10

// Zone is one NUMA node's buddy allocator. It owns the frame range
// [start, end) and maintains per-order free lists with buddy coalescing.
// The implementation is a faithful miniature of the Linux page allocator:
// blocks split downward on allocation and merge with their buddy upward on
// free, and FlagBuddy on the block head detects double frees.
type Zone struct {
	mem   *Memory
	node  int
	start PFN
	end   PFN

	mu        sync.Mutex
	freeLists [MaxOrder + 1]freeList
	nfree     int64 // free frames
}

// freeList is an intrusive singly linked list of free block heads; the link
// is stored in the page struct's Private field (as Linux stores the lru
// linkage in the free struct page).
type freeList struct {
	head PFN // 0 means empty; frame 0 is reserved so 0 is a safe sentinel
	n    int
}

func newZone(m *Memory, node int, start, end PFN) *Zone {
	z := &Zone{mem: m, node: node, start: start, end: end}
	// Seed the free lists greedily with the largest aligned blocks.
	pfn := start
	for pfn < end {
		order := MaxOrder
		for order > 0 {
			if pfn&((1<<order)-1) == 0 && pfn+(1<<order) <= end {
				break
			}
			order--
		}
		z.pushFree(pfn, order)
		pfn += 1 << order
	}
	return z
}

func (z *Zone) pushFree(pfn PFN, order int) {
	p := z.mem.PageOf(pfn)
	p.SetFlags(FlagBuddy)
	p.Order = uint8(order)
	p.Private = uint64(z.freeLists[order].head)
	z.freeLists[order].head = pfn
	z.freeLists[order].n++
	z.nfree += 1 << order
}

// popFree removes and returns the first block of the given order, or false.
func (z *Zone) popFree(order int) (PFN, bool) {
	pfn := z.freeLists[order].head
	if pfn == 0 {
		return 0, false
	}
	p := z.mem.PageOf(pfn)
	z.freeLists[order].head = PFN(p.Private)
	z.freeLists[order].n--
	z.nfree -= 1 << order
	p.ClearFlags(FlagBuddy)
	p.Private = 0
	return pfn, true
}

// removeFree unlinks a specific block (used when merging with a buddy).
func (z *Zone) removeFree(pfn PFN, order int) bool {
	prev := PFN(0)
	cur := z.freeLists[order].head
	for cur != 0 {
		if cur == pfn {
			p := z.mem.PageOf(cur)
			if prev == 0 {
				z.freeLists[order].head = PFN(p.Private)
			} else {
				z.mem.PageOf(prev).Private = p.Private
			}
			z.freeLists[order].n--
			z.nfree -= 1 << order
			p.ClearFlags(FlagBuddy)
			p.Private = 0
			return true
		}
		prev = cur
		cur = PFN(z.mem.PageOf(cur).Private)
	}
	return false
}

// alloc returns a 2^order frame block, splitting larger blocks as needed.
func (z *Zone) alloc(order int) (PFN, bool) {
	z.mu.Lock()
	defer z.mu.Unlock()
	for o := order; o <= MaxOrder; o++ {
		pfn, ok := z.popFree(o)
		if !ok {
			continue
		}
		// Split the block down to the requested order, returning the
		// upper halves to their free lists.
		for o > order {
			o--
			buddy := pfn + (1 << o)
			z.pushFree(buddy, o)
		}
		return pfn, true
	}
	return 0, false
}

// free returns a block and coalesces it with free buddies.
func (z *Zone) free(pfn PFN, order int) {
	if pfn < z.start || pfn+(1<<order) > z.end {
		panic(fmt.Sprintf("mem: freeing pfn %d order %d outside zone %d [%d,%d)", pfn, order, z.node, z.start, z.end))
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	for order < MaxOrder {
		buddy := pfn ^ (1 << order)
		if buddy < z.start || buddy+(1<<order) > z.end {
			break
		}
		bp := z.mem.PageOf(buddy)
		if !bp.Has(FlagBuddy) || int(bp.Order) != order {
			break
		}
		if !z.removeFree(buddy, order) {
			break
		}
		if buddy < pfn {
			pfn = buddy
		}
		order++
	}
	z.pushFree(pfn, order)
}

// freePages reports the number of free frames in the zone.
func (z *Zone) freePages() int64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.nfree
}

// freeBlocks reports the number of free blocks of one order (tests only).
func (z *Zone) freeBlocks(order int) int {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.freeLists[order].n
}
