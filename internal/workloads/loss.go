package workloads

import (
	"fmt"
	"net/netip"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// ARQGenerator is the reliable flavour of the remote traffic machine: the
// same flow identity and pacing as Generator, but every segment carries an
// ARQ sequence number and the source retransmits what the receiver's
// cumulative ACKs say was lost. Loss is injected at the host's ingress, so
// the generator is where the sending half of the transport lives; the
// host side is a netstack.ReliableReceiver whose ACKs ride the host's TX
// DMA path back here.
type ARQGenerator struct {
	ma      *testbed.Machine
	port    int
	ring    int
	flow    int
	segLen  int
	src     netip.Addr
	dst     netip.Addr
	hash    uint32
	arq     *netstack.ArqSender
	stopped bool
	pumpFn  func()
}

// NewARQGenerator builds a reliable, flow-steered traffic source: segments
// arrive on port, an exact-match steering rule directs the flow to ring,
// and the embedded ArqSender's window paces injection alongside the usual
// wire/ring backpressure.
func NewARQGenerator(ma *testbed.Machine, port, ring, flow, segLen, window int) (*ARQGenerator, error) {
	g := &ARQGenerator{
		ma: ma, port: port, ring: ring, flow: flow, segLen: segLen,
		src: netip.AddrFrom4([4]byte{192, 168, byte(flow >> 8), byte(flow)}),
		dst: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
	g.hash = netstack.RSSHashIPv4(g.src, g.dst, uint16(10000+g.flow), 5001)
	if err := ma.NIC.SteerFlow(g.hash, ring); err != nil {
		return nil, err
	}
	g.arq = netstack.NewArqSender(ma.Sim, netstack.ArqConfig{
		Window: window, SegLen: segLen,
	}, g.xmit)
	return g, nil
}

// Arq exposes the sending state machine (the receiver side needs it as the
// ACK destination; tests and figures read its counters).
func (g *ARQGenerator) Arq() *netstack.ArqSender { return g.arq }

// Hash reports the flow's RSS hash; Ring the RX ring its segments land on.
func (g *ARQGenerator) Hash() uint32 { return g.hash }

// Ring reports the RX ring the flow's segments are delivered to.
func (g *ARQGenerator) Ring() int { return g.ring }

// xmit puts one (possibly retransmitted) segment on the wire. The header
// is built once into the segment's embedded buffer — the TCP sequence
// field carries the flow's byte offset — and reused verbatim on
// retransmission, so the retransmit path performs no allocation.
func (g *ARQGenerator) xmit(seg *netstack.ArqSegment, retx bool) {
	if !retx {
		payload := seg.Len - netstack.HeaderLen
		byteSeq := (seg.Seq - 1) * uint32(payload)
		seg.Hdr = netstack.AppendHeaders(seg.HdrBuf(), g.src, g.dst, uint16(10000+g.flow), 5001, byteSeq, payload)
	}
	g.ma.NIC.InjectRX(g.port, device.Segment{
		Flow: g.flow, Hash: g.hash, Seq: seg.Seq, Len: seg.Len, Header: seg.Hdr,
	})
}

// Start begins offering load.
func (g *ARQGenerator) Start() {
	g.pumpFn = g.pump
	g.pump()
}

// Stop halts the generator at its next pump. In-flight segments may still
// be retransmitted by the ARQ timer until acknowledged.
func (g *ARQGenerator) Stop() { g.stopped = true }

// pump offers load under three brakes: the ARQ window (reliability
// backpressure), the wire backlog (link pacing), and the parked-segment
// limit (PFC pause emulation). Unlike the unreliable generator it never
// gives up when the ring errors out — a quarantined or removed ring is
// what the recovery supervisor heals, and the flow must resume on its own
// once reinit refills the rings.
func (g *ARQGenerator) pump() {
	if g.stopped {
		return
	}
	se := g.ma.Sim
	nic := g.ma.NIC
	parked, err := nic.RXParked(g.ring)
	if err == nil && parked < genParkLimit {
		for g.arq.CanSend() && nic.WireRXBacklog(g.port) < genWindow {
			g.arq.SendNext()
			if parked, err = nic.RXParked(g.ring); err != nil || parked >= genParkLimit {
				break
			}
		}
	}
	se.After(genPoll, g.pumpFn)
}

// LossConfig describes one loss-resilience experiment: reliable flows over
// a machine whose fault plane drops/corrupts a fraction of wire segments.
type LossConfig struct {
	Machine *testbed.Machine
	// Flows is the number of reliable flows (default one per core; flow i
	// is steered to ring i%rings on port i%ports, with its ACKs on the
	// same ring/port).
	Flows int
	// Window is the per-flow ARQ window in segments (default 64).
	Window   int
	Duration sim.Time
	Warmup   sim.Time
}

// LossResult is one datapoint of the loss-resilience figure. All counters
// are measurement-window deltas.
type LossResult struct {
	Scheme string
	// GoodputGbps is delivered in-order bytes — not raw wire bytes.
	GoodputGbps float64
	// WireGbps is what the NIC accepted off the wire (retransmissions and
	// soon-to-be-dropped segments included).
	WireGbps float64
	// RetxPct is retransmissions as a percentage of all data
	// transmissions (new + retransmitted).
	RetxPct float64
	// CPUPerMB is core-busy microseconds per delivered megabyte — the
	// column where the per-scheme retransmit cost shows up directly.
	CPUPerMB float64

	Sent        uint64
	Retransmits uint64
	FastRetx    uint64
	TimeoutRetx uint64
	Timeouts    uint64
	AcksSent    uint64
	DroppedDup  uint64
	DroppedOow  uint64
	CsumDrops   uint64

	// InjectedTotal / ScheduleDigest identify the fault schedule that ran
	// (digest equality means exact replay); DamnLiveChunks is the
	// conservation audit's live count (-1 without DAMN).
	InjectedTotal  uint64
	ScheduleDigest uint64
	DamnLiveChunks int
}

// RunLoss executes reliable flows over the machine's (possibly lossy)
// fault plane and measures goodput and retransmission cost.
func RunLoss(cfg LossConfig) (LossResult, error) {
	ma := cfg.Machine
	if ma == nil {
		return LossResult{}, fmt.Errorf("workloads: nil machine")
	}
	if ma.Faults == nil {
		return LossResult{}, fmt.Errorf("workloads: loss run needs a fault plane (zero rates are fine)")
	}
	if cfg.Flows == 0 {
		cfg.Flows = len(ma.Cores)
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * sim.Millisecond
	}
	if err := ma.FillAllRings(); err != nil {
		return LossResult{}, err
	}

	rings := ma.NIC.Cfg.Rings
	ports := ma.Model.NICPorts
	gens := make([]*ARQGenerator, cfg.Flows)
	recvs := make([]*netstack.Receiver, cfg.Flows)
	rrs := map[int]*netstack.ReliableReceiver{}
	for i := 0; i < cfg.Flows; i++ {
		flow := i + 1
		g, err := NewARQGenerator(ma, i%ports, i%rings, flow, ma.Model.SegmentSize, cfg.Window)
		if err != nil {
			return LossResult{}, err
		}
		gens[i] = g
		recvs[i] = &netstack.Receiver{K: ma.Kernel}
		rr := netstack.NewReliableReceiver(recvs[i], ma.Driver, g.Ring(), i%ports, g.Arq())
		rr.Window = cfg.Window
		rrs[flow] = rr
	}
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		if rr, ok := rrs[skb.Flow]; ok {
			rr.HandleSegment(t, skb)
			return
		}
		skb.Free(t)
	}
	for _, g := range gens {
		g.Start()
	}

	// Warmup, then measure deltas over the window.
	ma.Sim.Run(cfg.Warmup)
	type snap struct {
		good, sent, retx, fast, tout, timeouts, acks, dup, oow, csum, wire uint64
	}
	take := func() snap {
		var s snap
		for i := range gens {
			a := gens[i].Arq()
			s.sent += a.Sent
			s.retx += a.Retransmits
			s.fast += a.FastRetx
			s.tout += a.TimeoutRetx
			s.timeouts += a.Timeouts
			s.good += recvs[i].Bytes
		}
		for _, rr := range rrs {
			s.acks += rr.AcksSent
			s.dup += rr.DroppedDup
			s.oow += rr.DroppedOow
		}
		s.csum = ma.Driver.RxCsumDrops
		s.wire = ma.NIC.RxBytes
		return s
	}
	s0 := take()
	busy0 := make([]sim.Time, len(ma.Cores))
	for i, c := range ma.Cores {
		busy0[i] = c.Busy()
	}
	t0 := ma.Sim.Now()
	ma.Sim.Run(t0 + cfg.Duration)
	t1 := ma.Sim.Now()
	s1 := take()
	var busy sim.Time
	for i, c := range ma.Cores {
		busy += c.Busy() - busy0[i]
	}
	for _, g := range gens {
		g.Stop()
	}

	dt := (t1 - t0).Seconds()
	goodBytes := s1.good - s0.good
	sent := s1.sent - s0.sent
	retx := s1.retx - s0.retx
	res := LossResult{
		Scheme:      ma.SchemeName(),
		GoodputGbps: float64(goodBytes) * 8 / dt / 1e9,
		WireGbps:    float64(s1.wire-s0.wire) * 8 / dt / 1e9,
		Sent:        sent,
		Retransmits: retx,
		FastRetx:    s1.fast - s0.fast,
		TimeoutRetx: s1.tout - s0.tout,
		Timeouts:    s1.timeouts - s0.timeouts,
		AcksSent:    s1.acks - s0.acks,
		DroppedDup:  s1.dup - s0.dup,
		DroppedOow:  s1.oow - s0.oow,
		CsumDrops:   s1.csum - s0.csum,
	}
	if total := sent + retx; total > 0 {
		res.RetxPct = 100 * float64(retx) / float64(total)
	}
	if goodBytes > 0 {
		res.CPUPerMB = busy.Seconds() * 1e6 / (float64(goodBytes) / 1e6)
	}

	if ma.StopWatchdog != nil {
		ma.StopWatchdog()
	}
	res.DamnLiveChunks = -1
	if ma.Damn != nil {
		live, err := ma.Damn.Audit()
		if err != nil {
			return res, fmt.Errorf("workloads: loss conservation audit: %w", err)
		}
		res.DamnLiveChunks = live
	}
	res.InjectedTotal = ma.Faults.InjectedTotal()
	res.ScheduleDigest = ma.Faults.ScheduleDigest()
	return res, nil
}
