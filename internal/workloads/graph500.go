package workloads

import (
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// Graph500Config models Fig 2's co-runner: BFS over a 2^20-vertex graph
// with average degree 256, running on a set of cores and hammering the
// shared memory controller. One "iteration" is one full BFS.
type Graph500Config struct {
	Machine *testbed.Machine
	// Cores the instance runs on (8 in the paper, split across sockets).
	Cores []int
	// Vertices and Degree define the problem (2^20 and 256).
	Vertices int
	Degree   int
}

// Graph500Instance is one running BFS loop.
type Graph500Instance struct {
	cfg        Graph500Config
	Iterations int
	IterTimes  []sim.Time
	iterStart  sim.Time
	remaining  []int64 // edges left per core for the current iteration
	stopped    bool
}

// edgeQuantum is how many edges one scheduling slice processes; small
// enough to interleave with networking on the memory controller.
const edgeQuantum = 50_000

// StartGraph500 launches the BFS loop; it runs until Stop.
func StartGraph500(cfg Graph500Config) *Graph500Instance {
	if cfg.Vertices == 0 {
		cfg.Vertices = 1 << 20
	}
	if cfg.Degree == 0 {
		cfg.Degree = 256
	}
	g := &Graph500Instance{cfg: cfg}
	g.startIteration()
	return g
}

// Stop halts the loop at the next slice boundary.
func (g *Graph500Instance) Stop() { g.stopped = true }

// MeanIterTime returns the average completed-iteration time.
func (g *Graph500Instance) MeanIterTime() sim.Time {
	if len(g.IterTimes) == 0 {
		return 0
	}
	var sum sim.Time
	for _, t := range g.IterTimes {
		sum += t
	}
	return sum / sim.Time(len(g.IterTimes))
}

func (g *Graph500Instance) startIteration() {
	if g.stopped {
		return
	}
	g.iterStart = g.cfg.Machine.Sim.Now()
	totalEdges := int64(g.cfg.Vertices) * int64(g.cfg.Degree)
	per := totalEdges / int64(len(g.cfg.Cores))
	g.remaining = make([]int64, len(g.cfg.Cores))
	for i := range g.remaining {
		g.remaining[i] = per
	}
	for i := range g.cfg.Cores {
		g.slice(i)
	}
}

// slice schedules one quantum of edge processing on worker i. A small
// scheduling jitter keeps the workers from marching in lockstep (real cores
// drift apart; perfectly synchronized bursts would make the shared
// memory-controller estimate oscillate).
func (g *Graph500Instance) slice(i int) {
	if g.stopped {
		return
	}
	ma := g.cfg.Machine
	core := ma.Cores[g.cfg.Cores[i]]
	jitter := sim.Time(ma.Sim.Rand().Intn(20)) * sim.Microsecond
	ma.Sim.After(jitter, func() {
		g.sliceNow(i, core)
	})
}

func (g *Graph500Instance) sliceNow(i int, core *sim.Core) {
	if g.stopped {
		return
	}
	ma := g.cfg.Machine
	core.Submit(false, func(t *sim.Task) {
		if g.stopped {
			return
		}
		edges := g.remaining[i]
		if edges > edgeQuantum {
			edges = edgeQuantum
		}
		if edges <= 0 {
			return
		}
		m := ma.Model
		// BFS is latency-bound: every edge is a dependent random DRAM
		// access. Its own bandwidth use is modest, but the access
		// latency inflates when the controller is busy serving the
		// networking traffic — superlinearly, as queueing does. This is
		// the 1.44× of Fig 2b: shadow buffers' copy traffic raises the
		// utilization the BFS's loads wait behind.
		rho := ma.MemBW.Utilization()
		latency := m.Graph500LatencyCycles * (1 + 3.5*rho*rho)
		t.Charge(float64(edges) * (m.Graph500EdgeCycles + latency))
		ma.MemBW.Use(t.Now(), float64(edges)*m.Graph500BytesPerEdge)
		g.remaining[i] -= edges
		if g.remaining[i] > 0 {
			g.slice(i)
			return
		}
		// This worker finished; the last one closes the iteration.
		for _, r := range g.remaining {
			if r > 0 {
				return
			}
		}
		g.Iterations++
		g.IterTimes = append(g.IterTimes, ma.Sim.Now()-g.iterStart)
		g.startIteration()
	})
}
