package workloads

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// lossMachine builds a small machine with the fault plane armed at the
// given link-loss percentage (split 80/20 between clean drops and
// corruption, so the checksum path is exercised too).
func lossMachine(t *testing.T, scheme testbed.Scheme, lossPct float64, seed int64) *testbed.Machine {
	t.Helper()
	p := lossPct / 100
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   scheme,
		Cores:    2,
		RingSize: 32,
		Faults: &faults.Config{Seed: seed, Rates: map[faults.Kind]float64{
			faults.LinkDrop:    0.8 * p,
			faults.LinkCorrupt: 0.2 * p,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

func runLossQuick(t *testing.T, ma *testbed.Machine) LossResult {
	t.Helper()
	res, err := RunLoss(LossConfig{
		Machine:  ma,
		Duration: 10 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLossZeroRateIsRetransmitFree(t *testing.T) {
	for _, scheme := range []testbed.Scheme{testbed.SchemeDAMN, testbed.SchemeStrict} {
		t.Run(string(scheme), func(t *testing.T) {
			ma := lossMachine(t, scheme, 0, 42)
			defer ma.Close()
			res := runLossQuick(t, ma)
			if res.GoodputGbps <= 0 {
				t.Fatalf("no goodput: %+v", res)
			}
			if res.Retransmits != 0 || res.Timeouts != 0 {
				t.Fatalf("retransmissions on a clean wire: %+v", res)
			}
			if res.DroppedDup != 0 || res.DroppedOow != 0 || res.CsumDrops != 0 {
				t.Fatalf("drops on a clean wire: %+v", res)
			}
			if res.InjectedTotal != 0 {
				t.Fatalf("zero-rate plane injected %d faults", res.InjectedTotal)
			}
		})
	}
}

func TestLossGoodputRecoversAtOnePercent(t *testing.T) {
	ma0 := lossMachine(t, testbed.SchemeDAMN, 0, 42)
	defer ma0.Close()
	base := runLossQuick(t, ma0)

	ma1 := lossMachine(t, testbed.SchemeDAMN, 1, 42)
	defer ma1.Close()
	lossy := runLossQuick(t, ma1)

	if lossy.Retransmits == 0 {
		t.Fatalf("1%% loss produced no retransmissions: %+v", lossy)
	}
	if lossy.CsumDrops == 0 {
		t.Fatalf("corruption share produced no checksum drops: %+v", lossy)
	}
	if lossy.GoodputGbps < 0.9*base.GoodputGbps {
		t.Fatalf("goodput not recovered: %.2f Gb/s at 1%% loss vs %.2f clean (< 90%%)",
			lossy.GoodputGbps, base.GoodputGbps)
	}
}

func TestLossSeedReplay(t *testing.T) {
	run := func(seed int64) LossResult {
		ma := lossMachine(t, testbed.SchemeDAMN, 2, seed)
		defer ma.Close()
		return runLossQuick(t, ma)
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := run(8)
	if c.ScheduleDigest == a.ScheduleDigest {
		t.Fatalf("different seeds share a schedule digest: %#x", a.ScheduleDigest)
	}
}

// TestRetransmitQuarantineRecovery is the watchdog × retransmission ×
// recovery interplay gate: a DMA-fault storm mid-flow quarantines and
// resets the NIC while ARQ segments are in flight. Retransmissions landing
// on the quarantined device die at the fence, completions that crossed the
// quarantine epoch release their buffers without touching the rebuilt
// ring, the allocator's conservation audit stays clean, and the flow
// resumes on its own once the supervisor heals the device.
func TestRetransmitQuarantineRecovery(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme:   testbed.SchemeDAMN,
		Cores:    2,
		RingSize: 32,
		Faults:   &faults.Config{Seed: 11, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	sup := recovery.Attach(ma, recovery.Config{})
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}

	g, err := NewARQGenerator(ma, 0, 0, 1, ma.Model.SegmentSize, 64)
	if err != nil {
		t.Fatal(err)
	}
	recv := &netstack.Receiver{K: ma.Kernel}
	rr := netstack.NewReliableReceiver(recv, ma.Driver, 0, 0, g.Arq())
	ma.Driver.OnDeliver = func(tk *sim.Task, ring int, skb *netstack.SKBuff) {
		rr.HandleSegment(tk, skb)
	}
	g.Start()

	// Reach steady state.
	ma.Sim.Run(5 * sim.Millisecond)
	if recv.Segments == 0 {
		t.Fatal("flow never started")
	}

	// The storm: translations fault hard for 2 ms; the supervisor must
	// quarantine, reset, and heal.
	stormStart := ma.Sim.Now()
	ma.Faults.SetRate(faults.DMAFault, 0.5)
	ma.Sim.At(stormStart+2*sim.Millisecond, func() {
		ma.Faults.SetRate(faults.DMAFault, 0)
	})
	// Ride out the storm window first (detection and quarantine happen
	// inside it), then step until the supervisor reports Healthy again.
	ma.Sim.Run(stormStart + 2*sim.Millisecond)
	deadline := stormStart + 60*sim.Millisecond
	for ma.Sim.Now() < deadline &&
		(sup.Quarantines == 0 || sup.State(testbed.NICDeviceID) != recovery.Healthy) {
		ma.Sim.Run(ma.Sim.Now() + 100*sim.Microsecond)
	}
	if got := sup.State(testbed.NICDeviceID); got != recovery.Healthy {
		t.Fatalf("device not healed: %v", got)
	}
	if sup.Quarantines == 0 || sup.Resets == 0 {
		t.Fatalf("storm handled without quarantine/reset: %+v", sup)
	}

	// The flow must recover by retransmission: delivery advances after
	// the heal, with no operator intervention (the pump keeps polling).
	preBytes, preExpect := recv.Bytes, rr.Expect()
	ma.Sim.Run(ma.Sim.Now() + 10*sim.Millisecond)
	if recv.Bytes <= preBytes {
		t.Fatalf("flow did not recover after reinit: bytes %d -> %d", preBytes, recv.Bytes)
	}
	if rr.Expect() <= preExpect {
		t.Fatalf("receive window did not advance: expect %d -> %d", preExpect, rr.Expect())
	}
	if g.Arq().Retransmits == 0 {
		t.Fatal("outage repaired without retransmissions?")
	}

	// Epoch hygiene: any completion that crossed the quarantine was
	// reclaimed without touching the rebuilt ring, and buffer
	// conservation held throughout (the audit fails on any leak the
	// stale-completion path would have caused).
	g.Stop()
	sup.Stop()
	if ma.StopWatchdog != nil {
		ma.StopWatchdog()
	}
	if _, err := ma.Damn.Audit(); err != nil {
		t.Fatalf("conservation audit after recovery: %v", err)
	}
}
