// Package workloads implements the load generators of the paper's
// evaluation: netperf TCP_STREAM (RX/TX/bidirectional, single- and
// multi-core), memcached+memslap, the Graph500 BFS co-runner, fio over
// NVMe, the XOR netfilter callback, and the kernel-compile allocator
// stress. Each drives a testbed.Machine and reports calibrated
// measurements.
package workloads

import (
	"fmt"
	"net/netip"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// NetperfConfig describes one TCP_STREAM experiment.
type NetperfConfig struct {
	Machine *testbed.Machine
	// RXCores / TXCores pin one netperf instance per entry (an entry may
	// repeat a core: the single-core test runs 4 instances on core 0).
	RXCores []int
	TXCores []int
	// Duration of the measurement window; Warmup precedes it.
	Duration sim.Time
	Warmup   sim.Time
	// ExtraCycles is the per-segment workload overhead of this scenario
	// (multi-instance cache/scheduler effects; see EXPERIMENTS.md).
	ExtraCycles float64
	// Wakeup charges blocked-reader/writer wakeups per segment.
	Wakeup bool
	// Bidirectional runs add ACK competition (§6.1).
	bidir bool
}

// NetperfResult is one row of a throughput figure.
type NetperfResult struct {
	Scheme    string
	RXGbps    float64
	TXGbps    float64
	TotalGbps float64
	// CPUUtil is the fraction of all-core capacity consumed (one core at
	// 100% on the 28-core machine reports as 3.57%).
	CPUUtil float64
	// MemBWGBps is average memory-controller traffic.
	MemBWGBps float64
}

// Generator models the remote traffic-generation machine of §6: it offers
// unlimited load on one flow, paced only by the wire and by flow control
// (ring backpressure).
type Generator struct {
	ma      *testbed.Machine
	port    int
	ring    int
	flow    int
	segLen  int
	src     netip.Addr
	dst     netip.Addr
	hash    uint32
	seq     uint32
	stopped bool
}

// newGen builds the flow identity shared by both generator flavours: the
// 4-tuple, its headers' RSS hash (what the NIC's hash unit computes from
// the wire bytes), and the segment template.
func newGen(ma *testbed.Machine, port, flow, segLen int) *Generator {
	g := &Generator{
		ma: ma, port: port, flow: flow, segLen: segLen,
		src: netip.AddrFrom4([4]byte{192, 168, byte(flow >> 8), byte(flow)}),
		dst: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
	g.hash = netstack.RSSHashIPv4(g.src, g.dst, uint16(10000+g.flow), 5001)
	return g
}

// NewGenerator builds a pinned traffic source for one flow: segments of
// segLen arrive on port and are directed to ring by an exact-match flow
// steering rule (the aRFS analogue), so the flow lands on the core its
// netperf instance is pinned to. Each segment carries a real
// Ethernet/IPv4/TCP header stack, so firewall hooks parse genuine protocol
// bytes. An out-of-range ring surfaces as an error.
func NewGenerator(ma *testbed.Machine, port, ring, flow, segLen int) (*Generator, error) {
	g := newGen(ma, port, flow, segLen)
	if err := ma.NIC.SteerFlow(g.hash, ring); err != nil {
		return nil, err
	}
	g.ring = ring
	return g, nil
}

// NewRSSGenerator builds a pure-RSS traffic source: no steering rule — the
// NIC's Toeplitz hash and indirection table place the flow, and the
// generator merely learns the resulting ring for its flow-control polls
// (the scaling figure's mode: many flows spread across every ring).
func NewRSSGenerator(ma *testbed.Machine, port, flow, segLen int) *Generator {
	g := newGen(ma, port, flow, segLen)
	g.ring = ma.NIC.RingFor(g.hash)
	return g
}

// Hash reports the flow's RSS hash; Ring the RX ring its segments land on.
func (g *Generator) Hash() uint32 { return g.hash }

// Ring reports the RX ring the flow's segments are delivered to.
func (g *Generator) Ring() int { return g.ring }

const (
	// genWindow is how much wire backlog the generator keeps queued.
	genWindow = 40 * sim.Microsecond
	// genPoll is the re-arm interval.
	genPoll = 10 * sim.Microsecond
	// genParkLimit pauses injection when the ring has this many parked
	// segments (PFC pause emulation).
	genParkLimit = 8
)

// Start begins offering load.
func (g *Generator) Start() { g.pump() }

// Stop halts the generator at its next pump.
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) pump() {
	if g.stopped {
		return
	}
	se := g.ma.Sim
	nic := g.ma.NIC
	parked, err := nic.RXParked(g.ring)
	if err != nil {
		return // ring vanished under us: stop offering load
	}
	if parked < genParkLimit {
		for nic.WireRXBacklog(g.port) < genWindow {
			hdr := netstack.BuildHeaders(g.src, g.dst, uint16(10000+g.flow), 5001, g.seq, g.segLen-netstack.HeaderLen)
			g.seq += uint32(g.segLen - netstack.HeaderLen)
			nic.InjectRX(g.port, device.Segment{
				Flow: g.flow, Hash: g.hash, Len: g.segLen, Header: hdr,
			})
			if parked, err = nic.RXParked(g.ring); err != nil || parked >= genParkLimit {
				break
			}
		}
	}
	se.After(genPoll, g.pump)
}

// RunNetperf executes the experiment and returns the measured row.
func RunNetperf(cfg NetperfConfig) (NetperfResult, error) {
	ma := cfg.Machine
	if ma == nil {
		return NetperfResult{}, fmt.Errorf("workloads: nil machine")
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 20 * sim.Millisecond
	}
	cfg.bidir = len(cfg.RXCores) > 0 && len(cfg.TXCores) > 0

	if err := ma.FillAllRings(); err != nil {
		return NetperfResult{}, err
	}

	// Receivers: one per RX instance, demuxed by flow id.
	receivers := map[int]*netstack.Receiver{}
	var gens []*Generator
	for i, core := range cfg.RXCores {
		flow := i + 1
		recv := &netstack.Receiver{
			K:           ma.Kernel,
			ExtraCycles: cfg.ExtraCycles,
			Wakeup:      cfg.Wakeup,
			AckCost:     cfg.bidir,
		}
		receivers[flow] = recv
		g, err := NewGenerator(ma, i%ma.Model.NICPorts, core, flow, ma.Model.SegmentSize)
		if err != nil {
			return NetperfResult{}, err
		}
		gens = append(gens, g)
	}
	if len(receivers) > 0 {
		ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
			if r, ok := receivers[skb.Flow]; ok {
				r.HandleSegment(t, skb)
				return
			}
			skb.Free(t)
		}
	}

	// Senders.
	var senders []*netstack.Sender
	for i, core := range cfg.TXCores {
		snd := &netstack.Sender{
			K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[core],
			Ring: core, PortID: i % ma.Model.NICPorts, Flow: 1000 + i,
			ExtraCycles: cfg.ExtraCycles,
			AckCost:     cfg.bidir,
			Wakeup:      cfg.Wakeup,
		}
		senders = append(senders, snd)
	}

	for _, g := range gens {
		g.Start()
	}
	for _, s := range senders {
		s.Start()
	}

	// Warmup, then measure.
	ma.Sim.Run(cfg.Warmup)
	startRX := map[int]uint64{}
	for f, r := range receivers {
		startRX[f] = r.Bytes
	}
	startTX := make([]uint64, len(senders))
	for i, s := range senders {
		startTX[i] = s.Bytes
	}
	busy0 := make([]sim.Time, len(ma.Cores))
	for i, c := range ma.Cores {
		busy0[i] = c.Busy()
	}
	mem0 := ma.MemBW.Used()
	t0 := ma.Sim.Now()

	ma.Sim.Run(t0 + cfg.Duration)

	t1 := ma.Sim.Now()
	dt := (t1 - t0).Seconds()
	var rxBytes, txBytes uint64
	for f, r := range receivers {
		rxBytes += r.Bytes - startRX[f]
	}
	for i, s := range senders {
		txBytes += s.Bytes - startTX[i]
	}
	var busy sim.Time
	for i, c := range ma.Cores {
		busy += c.Busy() - busy0[i]
	}
	res := NetperfResult{
		Scheme:    ma.SchemeName(),
		RXGbps:    float64(rxBytes) * 8 / dt / 1e9,
		TXGbps:    float64(txBytes) * 8 / dt / 1e9,
		CPUUtil:   busy.Seconds() / (dt * float64(len(ma.Cores))),
		MemBWGBps: (ma.MemBW.Used() - mem0) / dt / 1e9,
	}
	res.TotalGbps = res.RXGbps + res.TXGbps

	for _, g := range gens {
		g.Stop()
	}
	for _, s := range senders {
		s.Stop()
	}
	return res, nil
}
