package workloads

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// RecoveryConfig describes one recovery experiment: a bidirectional netperf
// that reaches steady state, suffers a scheduled DMA-fault storm, and is
// healed by the fault-domain supervisor. Every phase boundary is a fixed
// simulated time and the storm is drawn from the seeded fault plane, so the
// whole trajectory — dip, detection, quarantine, reset, recovery — replays
// byte-identically from (Scheme, FaultSeed).
type RecoveryConfig struct {
	Scheme    testbed.Scheme
	FaultSeed int64
	// Cores for the machine (default 4, like the chaos harness).
	Cores int
	// Warmup precedes the steady-state measurement (default 10 ms).
	Warmup sim.Time
	// Steady is the pre-storm measurement window (default 15 ms).
	Steady sim.Time
	// StormLen is how long the DMA-fault rate stays raised (default 2 ms).
	StormLen sim.Time
	// StormRate is the per-translation fault probability during the storm
	// (default 0.5 — a sick device, not a flaky link).
	StormRate float64
	// RecoveryDeadline bounds how long the run waits for the device to
	// return to Healthy after the storm ends (default 50 ms).
	RecoveryDeadline sim.Time
	// Settle separates recovery from the recovered-throughput measurement
	// (default 3 ms).
	Settle sim.Time
	// Measure is the post-recovery measurement window (default 15 ms).
	Measure sim.Time
	// Supervisor tunes the recovery supervisor (zero = defaults).
	Supervisor recovery.Config
}

// RecoveryResult is one row of the recovery figure.
type RecoveryResult struct {
	Scheme string
	// SteadyGbps / StormGbps / RecoveredGbps are total (RX+TX) throughput
	// before the storm, during the storm+outage, and after recovery.
	SteadyGbps    float64
	StormGbps     float64
	RecoveredGbps float64
	// DetectPS is storm start → quarantine; MTTRPS is quarantine → healthy.
	DetectPS sim.Time
	MTTRPS   sim.Time
	// FinalState is the NIC's state at run end ("healthy" on success).
	FinalState  string
	Storms      uint64
	Quarantines uint64
	Resets      uint64
	// ReleasedPages / PinnedChunks report the allocator reclamation the
	// reset performed (0 on non-DAMN schemes).
	ReleasedPages int64
	PinnedChunks  int
	// DamnLiveChunks is the post-audit live-chunk count (-1 without DAMN).
	DamnLiveChunks int
	// FaultRecords / FaultOverflows are the NIC's per-device fault-ring
	// counters; ScheduleDigest fingerprints the fault schedule.
	FaultRecords   uint64
	FaultOverflows uint64
	ScheduleDigest uint64
}

func (cfg *RecoveryConfig) defaults() {
	if cfg.Scheme == "" {
		cfg.Scheme = testbed.SchemeDAMN
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * sim.Millisecond
	}
	if cfg.Steady == 0 {
		cfg.Steady = 15 * sim.Millisecond
	}
	if cfg.StormLen == 0 {
		cfg.StormLen = 2 * sim.Millisecond
	}
	if cfg.StormRate == 0 {
		cfg.StormRate = 0.5
	}
	if cfg.RecoveryDeadline == 0 {
		cfg.RecoveryDeadline = 50 * sim.Millisecond
	}
	if cfg.Settle == 0 {
		cfg.Settle = 3 * sim.Millisecond
	}
	if cfg.Measure == 0 {
		cfg.Measure = 15 * sim.Millisecond
	}
}

// RunRecovery executes the storm-and-heal experiment and returns its row.
func RunRecovery(cfg RecoveryConfig) (RecoveryResult, error) {
	cfg.defaults()
	// The fault plane is armed with every rate at zero: the storm is the
	// only injected failure, raised and lowered by scheduled events.
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: cfg.Scheme,
		Cores:  cfg.Cores,
		Faults: &faults.Config{Seed: cfg.FaultSeed, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	sup := recovery.Attach(ma, cfg.Supervisor)

	if err := ma.FillAllRings(); err != nil {
		return RecoveryResult{}, err
	}

	// Bidirectional netperf: half the cores receive, half send.
	rxCores := make([]int, len(ma.Cores)/2)
	for i := range rxCores {
		rxCores[i] = i
	}
	receivers := map[int]*netstack.Receiver{}
	var gens []*Generator
	for i, core := range rxCores {
		flow := i + 1
		receivers[flow] = &netstack.Receiver{K: ma.Kernel, AckCost: true}
		g, err := NewGenerator(ma, i%ma.Model.NICPorts, core, flow, ma.Model.SegmentSize)
		if err != nil {
			return RecoveryResult{}, err
		}
		gens = append(gens, g)
	}
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		if r, ok := receivers[skb.Flow]; ok {
			r.HandleSegment(t, skb)
			return
		}
		skb.Free(t)
	}
	var senders []*netstack.Sender
	for i := len(rxCores); i < len(ma.Cores); i++ {
		snd := &netstack.Sender{
			K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[i],
			Ring: i, PortID: i % ma.Model.NICPorts, Flow: 1000 + i,
			AckCost: true,
		}
		senders = append(senders, snd)
	}
	// A quarantine stalls sender pumps on Transmit errors with no
	// completion left to restart them; the supervisor kicks them awake.
	sup.OnRecovered = func(dev int) {
		if dev != testbed.NICDeviceID {
			return
		}
		for _, s := range senders {
			s.Kick()
		}
	}
	for _, g := range gens {
		g.Start()
	}
	for _, s := range senders {
		s.Start()
	}

	bytesNow := func() uint64 {
		var n uint64
		for _, r := range receivers {
			n += r.Bytes
		}
		for _, s := range senders {
			n += s.Bytes
		}
		return n
	}
	measure := func(dur sim.Time) float64 {
		b0, t0 := bytesNow(), ma.Sim.Now()
		ma.Sim.Run(t0 + dur)
		dt := (ma.Sim.Now() - t0).Seconds()
		return float64(bytesNow()-b0) * 8 / dt / 1e9
	}

	res := RecoveryResult{Scheme: ma.SchemeName()}

	ma.Sim.Run(cfg.Warmup)
	res.SteadyGbps = measure(cfg.Steady)

	// The storm: a scheduled event raises the DMA-fault rate, a later one
	// drops it back. Both are ordinary sim events — the trajectory is a
	// pure function of the seed.
	stormStart := ma.Sim.Now()
	ma.Faults.SetRate(faults.DMAFault, cfg.StormRate)
	ma.Sim.At(stormStart+cfg.StormLen, func() {
		ma.Faults.SetRate(faults.DMAFault, 0)
	})
	res.StormGbps = measure(cfg.StormLen)

	// Step deterministically until the supervisor heals the device (or the
	// deadline expires and the row reports the terminal state).
	deadline := ma.Sim.Now() + cfg.RecoveryDeadline
	for ma.Sim.Now() < deadline && sup.State(testbed.NICDeviceID) != recovery.Healthy {
		ma.Sim.Run(ma.Sim.Now() + 100*sim.Microsecond)
	}

	ma.Sim.Run(ma.Sim.Now() + cfg.Settle)
	res.RecoveredGbps = measure(cfg.Measure)

	sup.Stop()
	if ma.StopWatchdog != nil {
		ma.StopWatchdog()
	}

	res.DetectPS = detectLatency(sup, stormStart)
	res.MTTRPS = sup.MTTR(testbed.NICDeviceID)
	res.FinalState = sup.State(testbed.NICDeviceID).String()
	res.Storms = sup.Storms
	res.Quarantines = sup.Quarantines
	res.Resets = sup.Resets
	res.ReleasedPages = sup.ReleasedPages
	res.PinnedChunks = sup.PinnedChunks
	res.FaultRecords, res.FaultOverflows, _ = ma.IOMMU.DeviceFaultStats(testbed.NICDeviceID)
	res.ScheduleDigest = ma.Faults.ScheduleDigest()

	res.DamnLiveChunks = -1
	if ma.Damn != nil {
		live, err := ma.Damn.Audit()
		if err != nil {
			return res, fmt.Errorf("workloads: recovery conservation audit: %w", err)
		}
		res.DamnLiveChunks = live
	}
	return res, nil
}

// detectLatency is storm start → first quarantine of the NIC.
func detectLatency(sup *recovery.Supervisor, stormStart sim.Time) sim.Time {
	for _, tr := range sup.Transitions {
		if tr.Dev == testbed.NICDeviceID && tr.To == recovery.Quarantined && tr.At >= stormStart {
			return tr.At - stormStart
		}
	}
	return 0
}
