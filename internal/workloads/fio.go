package workloads

import (
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// FioConfig models §6.5: fio threads doing asynchronous direct sequential
// reads from the NVMe SSD. Direct I/O bypasses the page cache, so the
// user's buffers are the DMA buffers — each read is a dma_map, a device
// command and a dma_unmap under the active protection scheme. (This is
// exactly the path DAMN cannot serve, §2.2, which is why the prior schemes
// remain in charge of storage.)
type FioConfig struct {
	Machine *testbed.Machine
	NVMe    *device.NVMe
	// Threads (12 in the paper), one queue pair and one core each.
	Threads int
	// BlockSize per read.
	BlockSize int
	// Depth is per-thread async queue depth.
	Depth    int
	Duration sim.Time
	Warmup   sim.Time
}

// FioResult is one Fig 11 point.
type FioResult struct {
	Scheme    string
	BlockSize int
	IOPS      float64
	GiBps     float64
	CPUUtil   float64
}

type fioThread struct {
	cfg  *FioConfig
	qp   int
	core *sim.Core
	buf  mem.PhysAddr // reused user buffer (sequential reads into the same VMA)
	ops  uint64
	stop bool
}

// RunFio executes one block-size point.
func RunFio(cfg FioConfig) (FioResult, error) {
	ma := cfg.Machine
	if cfg.Threads == 0 {
		cfg.Threads = 12
	}
	if cfg.Depth == 0 {
		cfg.Depth = 16
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Duration == 0 {
		cfg.Duration = 50 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * sim.Millisecond
	}

	threads := make([]*fioThread, cfg.Threads)
	for i := range threads {
		// O_DIRECT user buffer: page-aligned anonymous memory.
		order := 0
		for (mem.PageSize << order) < cfg.BlockSize {
			order++
		}
		p, err := ma.Mem.AllocPages(order, i%ma.Model.NumNodes)
		if err != nil {
			return FioResult{}, err
		}
		th := &fioThread{cfg: &cfg, qp: i, core: ma.Cores[i%len(ma.Cores)], buf: p.PFN().Addr()}
		threads[i] = th
		for d := 0; d < cfg.Depth; d++ {
			th.submit()
		}
	}

	ma.Sim.Run(cfg.Warmup)
	var ops0 uint64
	for _, th := range threads {
		ops0 += th.ops
	}
	busy0 := make([]sim.Time, len(ma.Cores))
	for i, c := range ma.Cores {
		busy0[i] = c.Busy()
	}
	t0 := ma.Sim.Now()
	ma.Sim.Run(t0 + cfg.Duration)
	dt := (ma.Sim.Now() - t0).Seconds()
	var ops uint64
	for _, th := range threads {
		th.stop = true
		ops += th.ops
	}
	var busy sim.Time
	for i, c := range ma.Cores {
		busy += c.Busy() - busy0[i]
	}
	iops := float64(ops-ops0) / dt
	return FioResult{
		Scheme:    ma.SchemeName(),
		BlockSize: cfg.BlockSize,
		IOPS:      iops,
		GiBps:     iops * float64(cfg.BlockSize) / (1 << 30),
		CPUUtil:   busy.Seconds() / (dt * float64(len(ma.Cores))),
	}, nil
}

// submit issues one async read: map the user buffer, command the device,
// and on completion unmap and immediately resubmit (fio keeps the queue
// full).
func (th *fioThread) submit() {
	if th.stop {
		// Keep the pipeline running so IOPS stay in steady state for
		// result accounting, but stop counting.
		return
	}
	ma := th.cfg.Machine
	th.core.Submit(false, func(t *sim.Task) {
		perf.Charge(t, ma.Model.FioPerIOCycles/2) // submission half
		v, err := ma.Kernel.DMA.Map(t, testbed.NVMeDeviceID, th.buf, th.cfg.BlockSize, dmaapi.FromDevice)
		if err != nil {
			return
		}
		err = th.cfg.NVMe.SubmitRead(th.qp, v, th.cfg.BlockSize, func(t2 *sim.Task, derr error) {
			perf.Charge(t2, ma.Model.FioPerIOCycles/2) // completion half
			if uerr := ma.Kernel.DMA.Unmap(t2, testbed.NVMeDeviceID, v, th.cfg.BlockSize, dmaapi.FromDevice); uerr != nil {
				// The buffer's mapping state is unknown; drop this I/O,
				// count the error and keep the queue pumping.
				ma.Stats.Counter("workloads", "fio_unmap_errors").Inc()
				th.submit()
				return
			}
			if derr == nil {
				th.ops++
			}
			th.submit()
		})
		if err != nil {
			// Queue full: retry when the device drains a little.
			ma.Sim.After(5*sim.Microsecond, th.submit)
			ma.Kernel.DMA.Unmap(t, testbed.NVMeDeviceID, v, th.cfg.BlockSize, dmaapi.FromDevice)
		}
	})
}
