package workloads

import (
	"testing"

	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func singleCoreRX(t *testing.T, scheme testbed.Scheme) NetperfResult {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: scheme, MemBytes: 512 << 20, RingSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNetperf(NetperfConfig{
		Machine: ma,
		RXCores: []int{0, 0, 0, 0}, // 4 netperf instances pinned to core 0
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-10s single-core RX: %.1f Gb/s (CPU %.1f%%)", scheme, res.RXGbps, res.CPUUtil*100)
	return res
}

// TestSingleCoreRXCalibration checks the Fig 4a shape: iommu-off ≈ 67 Gb/s,
// deferred/damn close behind, strict ≈ 50, shadow ≈ 26.
func TestSingleCoreRXCalibration(t *testing.T) {
	off := singleCoreRX(t, testbed.SchemeOff)
	deferred := singleCoreRX(t, testbed.SchemeDeferred)
	strict := singleCoreRX(t, testbed.SchemeStrict)
	shadow := singleCoreRX(t, testbed.SchemeShadow)
	dm := singleCoreRX(t, testbed.SchemeDAMN)

	within := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.1f Gb/s, want in [%.0f, %.0f]", name, got, lo, hi)
		}
	}
	within("iommu-off", off.RXGbps, 60, 75)
	within("deferred", deferred.RXGbps, 55, 70)
	within("damn", dm.RXGbps, 58, 70)
	within("strict", strict.RXGbps, 42, 58)
	within("shadow", shadow.RXGbps, 20, 33)

	// Ordering (who wins) is the headline result.
	if !(shadow.RXGbps < strict.RXGbps && strict.RXGbps < dm.RXGbps) {
		t.Errorf("ordering broken: shadow %.1f, strict %.1f, damn %.1f",
			shadow.RXGbps, strict.RXGbps, dm.RXGbps)
	}
	if dm.RXGbps < 2.0*shadow.RXGbps {
		t.Errorf("damn (%.1f) should be ≈2.7× shadow (%.1f) on one core", dm.RXGbps, shadow.RXGbps)
	}
}

func TestSingleCoreTXCalibration(t *testing.T) {
	run := func(scheme testbed.Scheme) NetperfResult {
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme: scheme, MemBytes: 512 << 20, RingSize: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunNetperf(NetperfConfig{
			Machine: ma,
			TXCores: []int{0, 0, 0, 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s single-core TX: %.1f Gb/s (CPU %.1f%%)", scheme, res.TXGbps, res.CPUUtil*100)
		return res
	}
	off := run(testbed.SchemeOff)
	dm := run(testbed.SchemeDAMN)
	shadow := run(testbed.SchemeShadow)
	if off.TXGbps < 65 || off.TXGbps > 82 {
		t.Errorf("iommu-off TX = %.1f, want ≈74", off.TXGbps)
	}
	if dm.TXGbps < 0.9*off.TXGbps {
		t.Errorf("damn TX %.1f should be ≈ iommu-off %.1f", dm.TXGbps, off.TXGbps)
	}
	// TX shadow improves ≈1.7× over its RX result but stays worst.
	if shadow.TXGbps > 0.75*off.TXGbps {
		t.Errorf("shadow TX %.1f suspiciously close to off %.1f", shadow.TXGbps, off.TXGbps)
	}
}

// TestGeneratorEmitsRealHeaders runs a short RX test with a firewall hook
// that fully parses every segment's Ethernet/IPv4/TCP headers.
func TestGeneratorEmitsRealHeaders(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN, MemBytes: 256 << 20, Cores: 2, RingSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	parsed, bad := 0, 0
	ma.Kernel.Netfilter.Register(func(task *sim.Task, skb *netstack.SKBuff) netstack.Verdict {
		hdr, err := skb.Access(task, netstack.HeaderLen)
		if err != nil {
			bad++
			return netstack.Drop
		}
		p, err := netstack.ParsePacket(hdr)
		if err != nil || p.TCP.DstPort != 5001 {
			bad++
			return netstack.Drop
		}
		parsed++
		return netstack.Accept
	})
	res, err := RunNetperf(NetperfConfig{
		Machine: ma, RXCores: []int{0},
		Warmup: 2 * sim.Millisecond, Duration: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if parsed == 0 {
		t.Fatal("no segments parsed")
	}
	if bad != 0 {
		t.Fatalf("%d segments failed header parsing", bad)
	}
	if res.RXGbps == 0 {
		t.Fatal("no throughput")
	}
	t.Logf("parsed %d real header stacks at %.1f Gb/s", parsed, res.RXGbps)
}
