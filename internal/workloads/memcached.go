package workloads

import (
	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// MemcachedConfig models §6.1's memcached benchmark: one memcached instance
// per core, loaded by memslap with 50/50 GET/SET of 512 KiB values (the
// non-default sizes that make the benchmark network-bound).
type MemcachedConfig struct {
	Machine *testbed.Machine
	// Instances is the number of memcached processes (one per core).
	Instances int
	// Concurrency is outstanding requests per instance (memslap load).
	Concurrency int
	// ValueBytes is the value size (512 KiB in the paper).
	ValueBytes int
	// GetRatio of operations that are GETs (0.5 in the paper).
	GetRatio float64
	Duration sim.Time
	Warmup   sim.Time
	// ExtraCycles per segment (scenario calibration).
	ExtraCycles float64
}

// MemcachedResult is the Fig 7 row.
type MemcachedResult struct {
	Scheme  string
	TPS     float64 // operations per second, aggregated
	CPUUtil float64
}

// memcachedInstance is one server process plus its memslap loader.
type memcachedInstance struct {
	cfg   *MemcachedConfig
	ma    *testbed.Machine
	core  int
	flow  int
	hash  uint32
	ops   uint64
	seq   uint64
	stopd bool
}

// RunMemcached executes Fig 7's workload.
func RunMemcached(cfg MemcachedConfig) (MemcachedResult, error) {
	ma := cfg.Machine
	if cfg.Instances == 0 {
		cfg.Instances = len(ma.Cores)
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 2
	}
	if cfg.ValueBytes == 0 {
		cfg.ValueBytes = 512 << 10
	}
	if cfg.GetRatio == 0 {
		cfg.GetRatio = 0.5
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 15 * sim.Millisecond
	}
	if err := ma.FillAllRings(); err != nil {
		return MemcachedResult{}, err
	}

	// Instance order is simulation-visible (it decides the seq numbers of
	// the initial request storm), so keep instances in a slice and use the
	// map only for flow lookup — ranging over the map here would make runs
	// irreproducible.
	instances := make([]*memcachedInstance, 0, cfg.Instances)
	byFlow := map[int]*memcachedInstance{}
	for i := 0; i < cfg.Instances; i++ {
		inst := &memcachedInstance{cfg: &cfg, ma: ma, core: i % len(ma.Cores), flow: i + 1}
		// Memcached frames are not TCP/IPv4, so the NIC's hash unit falls
		// back to the flow hash; an aRFS rule pins each instance's flow to
		// the ring (= core) the server thread runs on.
		inst.hash = netstack.RSSFlowHash(inst.flow)
		if err := ma.NIC.SteerFlow(inst.hash, inst.core); err != nil {
			return MemcachedResult{}, err
		}
		instances = append(instances, inst)
		byFlow[inst.flow] = inst
	}

	// Request arrival: memslap sends a request segment; the server's RX
	// path processes it and transmits the response; response completion
	// triggers the next request on that slot.
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		inst, ok := byFlow[skb.Flow]
		if !ok {
			skb.Free(t)
			return
		}
		inst.handleRequest(t, skb)
	}

	for _, inst := range instances {
		for s := 0; s < cfg.Concurrency; s++ {
			inst.sendRequest()
		}
	}

	ma.Sim.Run(cfg.Warmup)
	var ops0 uint64
	for _, inst := range instances {
		ops0 += inst.ops
	}
	busy0 := make([]sim.Time, len(ma.Cores))
	for i, c := range ma.Cores {
		busy0[i] = c.Busy()
	}
	t0 := ma.Sim.Now()
	ma.Sim.Run(t0 + cfg.Duration)
	dt := (ma.Sim.Now() - t0).Seconds()

	var ops uint64
	for _, inst := range instances {
		inst.stopd = true
		ops += inst.ops
	}
	var busy sim.Time
	for i, c := range ma.Cores {
		busy += c.Busy() - busy0[i]
	}
	return MemcachedResult{
		Scheme:  ma.SchemeName(),
		TPS:     float64(ops-ops0) / dt,
		CPUUtil: busy.Seconds() / (dt * float64(len(ma.Cores))),
	}, nil
}

// sendRequest injects the client's request. A GET request is small; a SET
// carries the full value inbound.
func (in *memcachedInstance) sendRequest() {
	if in.stopd {
		return
	}
	in.seq++
	isGet := float64(in.seq%100)/100.0 < in.cfg.GetRatio
	segSize := in.ma.Model.SegmentSize
	port := in.flow % in.ma.Model.NICPorts

	inject := func(n int) {
		for n > 0 {
			l := n
			if l > segSize {
				l = segSize
			}
			hdr := make([]byte, 64)
			if isGet {
				hdr[0] = 'G'
			} else {
				hdr[0] = 'S'
			}
			in.ma.NIC.InjectRX(port, device.Segment{Flow: in.flow, Hash: in.hash, Len: l, Header: hdr})
			n -= l
		}
	}
	if isGet {
		inject(256) // "get <key>\r\n"
	} else {
		inject(256 + in.cfg.ValueBytes) // SET carries the value
	}
}

// handleRequest is the server's RX path for one request segment; the last
// segment of a request triggers the response.
func (in *memcachedInstance) handleRequest(t *sim.Task, skb *netstack.SKBuff) {
	m := in.ma.Model
	perf.Charge(t, m.RXSegCycles+in.cfg.ExtraCycles)
	hdr, _ := skb.Access(t, 64)
	isGet := len(hdr) > 0 && hdr[0] == 'G'
	skb.CopyToUser(t, skb.Len())
	last := isGet || skb.Len() < m.SegmentSize // GETs are single-segment; a short SET segment is the tail
	skb.Free(t)
	if !last {
		return
	}
	// Server-side op processing, then the response.
	perf.Charge(t, m.MemcachedOpCycles)
	respBytes := 128
	if isGet {
		respBytes = in.cfg.ValueBytes
	}
	in.transmitResponse(t, respBytes)
}

// memcachedChunk is the item-chunk granularity of a large memcached value:
// a 512 KiB value is assembled from many slab chunks, so its response goes
// down as a scatter/gather list with one DMA mapping per chunk — the "IOTLB
// invalidation rate caused by TX traffic" that cripples strict in Fig 7.
const memcachedChunk = 4096

// memcachedChunkCycles is the per-chunk kernel cost on the TX path (far
// below a full TSO segment's cost: no separate syscall or TCP work).
const memcachedChunkCycles = 900

// transmitResponse sends the response as item-chunk segments; the last
// completion counts the op and lets memslap issue the next request.
func (in *memcachedInstance) transmitResponse(t *sim.Task, n int) {
	m := in.ma.Model
	chunk := memcachedChunk
	segs := (n + chunk - 1) / chunk
	sent := 0
	for i := 0; i < segs; i++ {
		l := n - sent
		if l > chunk {
			l = chunk
		}
		sent += l
		skb, err := netstack.AllocSKB(in.ma.Kernel, t, in.ma.NIC.ID(), l, false)
		if err != nil {
			return
		}
		skb.Flow = in.flow
		skb.CopyFromUser(t, nil, l)
		perf.Charge(t, memcachedChunkCycles+in.cfg.ExtraCycles)
		if i == 0 {
			perf.Charge(t, m.TXSegCycles)
		}
		last := i == segs-1
		skb.Owner = txCallback(func(t2 *sim.Task, done *netstack.SKBuff) {
			done.Free(t2)
			if last {
				in.ops++
				// Client thinks, then sends the next request.
				in.ma.Sim.After(5*sim.Microsecond, in.sendRequest)
			}
		})
		if err := in.ma.Driver.Transmit(t, in.core, in.flow%in.ma.Model.NICPorts, skb); err != nil {
			// TX ring full: abandon the response but keep the memslap
			// slot alive (the client would time out and retry).
			skb.Free(t)
			in.ma.Sim.After(50*sim.Microsecond, in.sendRequest)
			return
		}
	}
}

// txCallback adapts a func to the skb Owner completion dispatch.
type txCallback func(t *sim.Task, skb *netstack.SKBuff)

// TxDone implements the completion hook used by DispatchTxDone.
func (f txCallback) TxDone(t *sim.Task, skb *netstack.SKBuff) { f(t, skb) }
