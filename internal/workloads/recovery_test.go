package workloads

import (
	"testing"

	"github.com/asplos18/damn/internal/testbed"
)

// TestRecoveryStormHeals is the acceptance scenario: a DMA-fault storm must
// quarantine the NIC, and the supervisor must bring it back to Healthy with
// allocator conservation intact and recovered throughput within 5% of the
// pre-fault steady state.
func TestRecoveryStormHeals(t *testing.T) {
	for _, scheme := range []testbed.Scheme{testbed.SchemeDeferred, testbed.SchemeDAMN} {
		t.Run(string(scheme), func(t *testing.T) {
			res, err := RunRecovery(RecoveryConfig{Scheme: scheme, FaultSeed: 7})
			if err != nil {
				t.Fatalf("RunRecovery: %v", err)
			}
			if res.Storms == 0 || res.Quarantines == 0 {
				t.Fatalf("storm did not trigger quarantine: %+v", res)
			}
			if res.FinalState != "healthy" {
				t.Fatalf("device did not recover: final state %s", res.FinalState)
			}
			if res.MTTRPS <= 0 || res.DetectPS <= 0 {
				t.Errorf("missing latency measurements: detect=%v mttr=%v", res.DetectPS, res.MTTRPS)
			}
			if res.StormGbps >= res.SteadyGbps {
				t.Errorf("storm did not dent throughput: steady=%.2f storm=%.2f", res.SteadyGbps, res.StormGbps)
			}
			if res.RecoveredGbps < 0.95*res.SteadyGbps {
				t.Errorf("recovered throughput %.2f Gbps below 95%% of steady %.2f Gbps",
					res.RecoveredGbps, res.SteadyGbps)
			}
			if res.FaultRecords == 0 {
				t.Errorf("no per-device fault records attributed to the NIC")
			}
			if scheme == testbed.SchemeDAMN && res.ReleasedPages == 0 {
				t.Errorf("reset reclaimed no DAMN pages")
			}
		})
	}
}

// TestRecoveryDeterminism: the whole trajectory — dip, detection, reset,
// recovery — must be a pure function of (scheme, seed).
func TestRecoveryDeterminism(t *testing.T) {
	run := func() RecoveryResult {
		res, err := RunRecovery(RecoveryConfig{Scheme: testbed.SchemeDAMN, FaultSeed: 11})
		if err != nil {
			t.Fatalf("RunRecovery: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("recovery run not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}
