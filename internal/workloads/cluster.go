package workloads

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
	"github.com/asplos18/damn/internal/topo"
)

// ClusterLinkLatency is the one-way propagation delay of every topology
// link — and therefore the cluster's conservative lookahead (a ~1 km
// datacenter fabric hop).
const ClusterLinkLatency = 5 * sim.Microsecond

// clusterMachineCfg sizes one machine of a multi-machine topology: smaller
// than the standalone 28-core testbed (a topology keeps every machine's
// simulated RAM alive at once) but with the same per-core performance
// model, so per-scheme IOMMU costs are unchanged.
func clusterMachineCfg(scheme testbed.Scheme, seed int64, cores int) testbed.MachineConfig {
	return testbed.MachineConfig{
		Scheme:   scheme,
		Seed:     seed,
		Cores:    cores,
		MemBytes: 256 << 20,
	}
}

// clusterAddr gives every machine of a topology a distinct address for RSS
// hash derivation.
func clusterAddr(machine int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 1, byte(machine >> 8), byte(machine)})
}

// p99 returns the 99th-percentile of the samples (0 when empty). Exact:
// the workload records every latency, so no histogram resolution is lost.
func p99(samples []sim.Time) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// ---------------------------------------------------------------------------
// Incast: S senders storm one receiver through a router.
// ---------------------------------------------------------------------------

// IncastConfig describes an incast storm: Senders machines blast full-rate
// streams through a router whose single output port drains into one
// receiver machine — the classic many-to-one congestion pattern. Every
// endpoint pays its scheme's IOMMU costs: senders on dma_map for TX,
// the receiver on dma_unmap + interposition for RX.
type IncastConfig struct {
	Scheme  testbed.Scheme
	Senders int
	// Workers is the host parallelism of the conservative engine
	// (1 = serial reference execution; results are identical either way).
	Workers  int
	Seed     int64
	Duration sim.Time
	Warmup   sim.Time
	// QueueLimit bounds the router's output-port backlog (tail-drop).
	QueueLimit sim.Time
	// Cores per machine.
	Cores int
	// Inspect, when non-nil, receives every machine (placement order:
	// receiver first, then senders) after the run but before teardown —
	// the hook for cross-machine allocator conservation checks
	// (damn.Audit on both sides of the wire) and stats capture.
	Inspect func([]*testbed.Machine) error
}

// IncastResult is one row of the cluster figure's incast half.
type IncastResult struct {
	Scheme    string
	Gbps      float64 // receiver goodput over the measurement window
	P99       sim.Time
	DropFrac  float64 // router tail-drop fraction
	Delivered uint64
	Epochs    uint64
}

// RunIncast builds the topology, runs warmup + measurement, and reports
// receiver goodput, exact p99 end-to-end segment latency (sender wire-out
// to receiver delivery), and the router's drop fraction.
func RunIncast(cfg IncastConfig) (IncastResult, error) {
	if cfg.Senders <= 0 {
		cfg.Senders = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 3 * sim.Millisecond
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 100 * sim.Microsecond
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}

	tp := topo.New(ClusterLinkLatency, cfg.Workers)
	defer tp.Close()

	recv, err := tp.AddMachine(clusterMachineCfg(cfg.Scheme, cfg.Seed*1000+1, cfg.Cores))
	if err != nil {
		return IncastResult{}, err
	}
	router := tp.AddRouter(cfg.Seed*1000+2, cfg.QueueLimit, func(device.Segment) int { return 0 })
	if _, err := tp.ConnectRouterToMachine(router, recv, 0, recv.M.Model.WireGbpsPerPort, ClusterLinkLatency); err != nil {
		return IncastResult{}, err
	}

	receivers := map[int]*netstack.Receiver{}
	var senders []*netstack.Sender
	for i := 0; i < cfg.Senders; i++ {
		node, err := tp.AddMachine(clusterMachineCfg(cfg.Scheme, cfg.Seed*1000+10+int64(i), cfg.Cores))
		if err != nil {
			return IncastResult{}, err
		}
		if err := tp.ConnectMachineToRouter(node, 0, router, ClusterLinkLatency); err != nil {
			return IncastResult{}, err
		}
		flow := 100 + i
		hash := netstack.RSSHashIPv4(clusterAddr(10+i), clusterAddr(1), uint16(10000+i), 5001)
		senders = append(senders, &netstack.Sender{
			K: node.M.Kernel, Drv: node.M.Driver, Core: node.M.Cores[0],
			Ring: 0, PortID: 0, Flow: flow, Hash: hash,
		})
		receivers[flow] = &netstack.Receiver{K: recv.M.Kernel}
	}

	for _, n := range tp.Nodes() {
		if err := n.M.FillAllRings(); err != nil {
			return IncastResult{}, err
		}
	}

	measuring := false
	var lats []sim.Time
	rse := recv.M.Sim
	recv.M.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		r, ok := receivers[skb.Flow]
		if !ok {
			skb.Free(t)
			return
		}
		if measuring && skb.Stamp > 0 {
			lats = append(lats, rse.Now()-skb.Stamp)
		}
		r.HandleSegment(t, skb)
	}
	for _, s := range senders {
		s.Start()
	}

	tp.Run(cfg.Warmup)
	measuring = true
	var rx0 uint64
	for _, r := range receivers {
		rx0 += r.Bytes
	}
	fwd0, drop0 := router.Forwarded, router.Dropped
	t0 := tp.Cluster().Now()
	tp.Run(t0 + cfg.Duration)
	dt := (tp.Cluster().Now() - t0).Seconds()

	var rx uint64
	for _, r := range receivers {
		rx += r.Bytes
	}
	rx -= rx0
	fwd, drop := router.Forwarded-fwd0, router.Dropped-drop0
	res := IncastResult{
		Scheme:    string(cfg.Scheme),
		Gbps:      float64(rx) * 8 / dt / 1e9,
		P99:       p99(lats),
		Delivered: rx,
		Epochs:    tp.Cluster().Epochs(),
	}
	if fwd+drop > 0 {
		res.DropFrac = float64(drop) / float64(fwd+drop)
	}
	for _, s := range senders {
		s.Stop()
	}
	if err := inspect(cfg.Inspect, tp); err != nil {
		return res, err
	}
	return res, nil
}

// inspect hands every machine of the topology (placement order) to the
// caller's hook before teardown.
func inspect(fn func([]*testbed.Machine) error, tp *topo.Topology) error {
	if fn == nil {
		return nil
	}
	ms := make([]*testbed.Machine, 0, len(tp.Nodes()))
	for _, n := range tp.Nodes() {
		ms = append(ms, n.M)
	}
	return fn(ms)
}

// ---------------------------------------------------------------------------
// Memcached cluster: clients → load-balancing router → servers.
// ---------------------------------------------------------------------------

// Request metadata rides in Segment.Meta (the application header bytes the
// simulation doesn't materialise): direction, op, client, server, and a
// request id matching responses back to their issue times.
const (
	mcDirBit   = 1 << 31 // response
	mcSetBit   = 1 << 30 // SET (else GET)
	mcReqBits  = 14
	mcReqMask  = 1<<mcReqBits - 1
	mcReqBytes = 256
)

func mcEncode(set bool, client, server int, reqid uint32) uint32 {
	m := uint32(client)<<22 | uint32(server)<<mcReqBits | (reqid & mcReqMask)
	if set {
		m |= mcSetBit
	}
	return m
}

func mcClientOf(m uint32) int { return int(m>>22) & 0xff }
func mcServerOf(m uint32) int { return int(m>>mcReqBits) & 0xff }

// MemcachedClusterConfig describes the distributed memcached scenario: C
// client machines issue closed-loop GET/SET requests (Depth outstanding
// each, ~10 µs think time) through a load-balancing router to S server
// machines; responses return through the same router. Requests and
// responses are single segments, so a GET costs the client one TX dma_map
// and the server one RX unmap plus one value-sized TX map — the two-sided
// IOMMU tax the figure measures.
type MemcachedClusterConfig struct {
	Scheme   testbed.Scheme
	Clients  int
	Servers  int
	Workers  int
	Seed     int64
	Duration sim.Time
	Warmup   sim.Time
	// Depth is the outstanding requests per client.
	Depth int
	// ValueBytes is the GET response / SET request value size.
	ValueBytes int
	Cores      int
	// Inspect, when non-nil, receives every machine (placement order:
	// servers first, then clients) after the run but before teardown.
	Inspect func([]*testbed.Machine) error
}

// MemcachedClusterResult is the cluster figure's memcached half.
type MemcachedClusterResult struct {
	Scheme  string
	KOps    float64 // completed requests per second / 1000
	P99     sim.Time
	Ops     uint64
	TxDrops uint64 // requests/responses lost to full TX rings
}

type mcClient struct {
	node  *topo.Node
	id    int
	hash  uint32 // responses steer here
	issue [mcReqMask + 1]sim.Time
	seq   uint32
	lats  []sim.Time
	ops   uint64
	sends uint64
	drops uint64
}

// RunMemcachedCluster executes the scenario and reports completed-request
// throughput and exact p99 request latency at the clients.
func RunMemcachedCluster(cfg MemcachedClusterConfig) (MemcachedClusterResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 3 * sim.Millisecond
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 16 << 10
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Clients > 256 || cfg.Servers > 256 {
		return MemcachedClusterResult{}, fmt.Errorf("workloads: memcached cluster is limited to 256 clients and servers")
	}

	tp := topo.New(ClusterLinkLatency, cfg.Workers)
	defer tp.Close()

	// The router's first S output ports reach the servers, the next C the
	// clients; requests route by server id, responses by client id.
	nServers := cfg.Servers
	router := tp.AddRouter(cfg.Seed*1000+2, 0, func(seg device.Segment) int {
		if seg.Meta&mcDirBit == 0 {
			return mcServerOf(seg.Meta)
		}
		return nServers + mcClientOf(seg.Meta)
	})

	type mcServer struct {
		node *topo.Node
		recv *netstack.Receiver
	}
	var servers []*mcServer
	for i := 0; i < cfg.Servers; i++ {
		node, err := tp.AddMachine(clusterMachineCfg(cfg.Scheme, cfg.Seed*1000+10+int64(i), cfg.Cores))
		if err != nil {
			return MemcachedClusterResult{}, err
		}
		if err := tp.ConnectMachineToRouter(node, 0, router, ClusterLinkLatency); err != nil {
			return MemcachedClusterResult{}, err
		}
		if _, err := tp.ConnectRouterToMachine(router, node, 0, node.M.Model.WireGbpsPerPort, ClusterLinkLatency); err != nil {
			return MemcachedClusterResult{}, err
		}
		servers = append(servers, &mcServer{node: node, recv: &netstack.Receiver{K: node.M.Kernel}})
	}

	var clients []*mcClient
	for i := 0; i < cfg.Clients; i++ {
		node, err := tp.AddMachine(clusterMachineCfg(cfg.Scheme, cfg.Seed*1000+100+int64(i), cfg.Cores))
		if err != nil {
			return MemcachedClusterResult{}, err
		}
		if err := tp.ConnectMachineToRouter(node, 0, router, ClusterLinkLatency); err != nil {
			return MemcachedClusterResult{}, err
		}
		if _, err := tp.ConnectRouterToMachine(router, node, 0, node.M.Model.WireGbpsPerPort, ClusterLinkLatency); err != nil {
			return MemcachedClusterResult{}, err
		}
		clients = append(clients, &mcClient{
			node: node, id: i,
			hash: netstack.RSSHashIPv4(clusterAddr(100+i), clusterAddr(0), uint16(20000+i), 11211),
		})
	}

	for _, n := range tp.Nodes() {
		if err := n.M.FillAllRings(); err != nil {
			return MemcachedClusterResult{}, err
		}
	}

	// Server request handling: consume the request, then send the response
	// from the same interrupt task (the memcached worker inlined — its CPU
	// cost is charged through the receiver path and the TX segment cost).
	srvHash := make([]uint32, cfg.Servers)
	for i := range srvHash {
		srvHash[i] = netstack.RSSHashIPv4(clusterAddr(200), clusterAddr(10+i), 31337, 11211)
	}
	var txDrops uint64
	for si, srv := range servers {
		srv := srv
		_ = si
		m := srv.node.M
		m.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
			meta := skb.Meta
			srv.recv.HandleSegment(t, skb)
			respSize := cfg.ValueBytes // GET: the value comes back
			if meta&mcSetBit != 0 {
				respSize = mcReqBytes // SET: a small ack
			}
			out, err := netstack.AllocSKB(m.Kernel, t, m.NIC.ID(), respSize, false)
			if err != nil {
				txDrops++
				return
			}
			out.Flow = 1 + mcClientOf(meta)
			out.Hash = clients[mcClientOf(meta)].hash
			out.Meta = meta | mcDirBit
			if err := out.CopyFromUser(t, nil, respSize); err != nil {
				txDrops++
				out.Free(t)
				return
			}
			perf.Charge(t, m.Model.TXSegCycles)
			if err := m.Driver.Transmit(t, ring, 0, out); err != nil {
				txDrops++
				out.Free(t)
			}
		}
	}

	// Client side: closed-loop issue with think time; latency measured
	// from issue to response delivery.
	const thinkTime = 10 * sim.Microsecond
	measuring := false
	for _, c := range clients {
		c := c
		m := c.node.M
		se := m.Sim
		crecv := &netstack.Receiver{K: m.Kernel}
		var issueFn func(t *sim.Task)
		issueFn = func(t *sim.Task) {
			reqid := c.seq & mcReqMask
			c.seq++
			set := reqid%2 == 1
			server := int(reqid) % cfg.Servers
			size := mcReqBytes
			if set {
				size += cfg.ValueBytes
			}
			skb, err := netstack.AllocSKB(m.Kernel, t, m.NIC.ID(), size, false)
			if err != nil {
				c.drops++
				return
			}
			skb.Flow = 1 + c.id
			skb.Hash = srvHash[server]
			skb.Meta = mcEncode(set, c.id, server, reqid)
			if err := skb.CopyFromUser(t, nil, size); err != nil {
				c.drops++
				skb.Free(t)
				return
			}
			perf.Charge(t, m.Model.TXSegCycles)
			if err := m.Driver.Transmit(t, 0, 0, skb); err != nil {
				c.drops++
				skb.Free(t)
				return
			}
			c.issue[reqid] = se.Now()
			c.sends++
		}
		m.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
			meta := skb.Meta
			if meta&mcDirBit == 0 {
				skb.Free(t)
				return
			}
			reqid := meta & mcReqMask
			if measuring {
				c.lats = append(c.lats, se.Now()-c.issue[reqid])
				c.ops++
			}
			crecv.HandleSegment(t, skb)
			se.After(thinkTime, func() { c.node.M.Cores[0].Submit(false, issueFn) })
		}
		for k := 0; k < cfg.Depth; k++ {
			c.node.M.Cores[0].Submit(false, issueFn)
		}
	}

	tp.Run(cfg.Warmup)
	measuring = true
	t0 := tp.Cluster().Now()
	tp.Run(t0 + cfg.Duration)
	dt := (tp.Cluster().Now() - t0).Seconds()

	res := MemcachedClusterResult{Scheme: string(cfg.Scheme), TxDrops: txDrops}
	var all []sim.Time
	for _, c := range clients {
		res.Ops += c.ops
		all = append(all, c.lats...)
	}
	res.KOps = float64(res.Ops) / dt / 1e3
	res.P99 = p99(all)
	if err := inspect(cfg.Inspect, tp); err != nil {
		return res, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Ring: N machines, each streaming to its successor — the balanced
// topology behind the wall-clock scaling leg and the determinism tests.
// ---------------------------------------------------------------------------

// RingConfig describes an N-machine ring where machine i streams one flow
// to machine (i+1) mod N over a direct link. Load is symmetric, so every
// shard has equal work — the best case for conservative-parallel scaling
// and the cleanest byte-identity probe (every machine is both endpoint
// roles at once).
type RingConfig struct {
	Scheme   testbed.Scheme
	Machines int
	Workers  int
	Seed     int64
	Duration sim.Time
	Warmup   sim.Time
	Cores    int
	// Faults, when non-nil, arms every machine's fault-injection plane —
	// link impairments then fire at each machine's ingress links,
	// including the cross-machine forwarded path. Each machine draws from
	// its own per-kind streams, so the combined schedule replays exactly
	// and is independent of the host worker count.
	Faults *faults.Config
}

// RingResult summarises a ring run. Two runs of the same config are
// comparable field-by-field: any divergence between worker counts is a
// determinism bug.
type RingResult struct {
	Scheme         string
	PerMachineGbps []float64
	TotalGbps      float64
	Segments       uint64
	Epochs         uint64
	// Processed is each shard's engine event count — the strictest cheap
	// identity probe (every event execution shows up here).
	Processed []uint64
	// FaultDigests is each machine's fault-schedule digest (nil when the
	// ring runs fault-free): a replay/divergence probe for the fault plane
	// across shards.
	FaultDigests []uint64
	// Injected is the total injected faults across machines.
	Injected uint64
}

// RunRing executes the ring and reports per-machine receive goodput.
func RunRing(cfg RingConfig) (RingResult, error) {
	if cfg.Machines <= 1 {
		cfg.Machines = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 5 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 1 * sim.Millisecond
	}
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}

	tp := topo.New(ClusterLinkLatency, cfg.Workers)
	defer tp.Close()

	var nodes []*topo.Node
	for i := 0; i < cfg.Machines; i++ {
		mcfg := clusterMachineCfg(cfg.Scheme, cfg.Seed*1000+int64(i), cfg.Cores)
		if cfg.Faults != nil {
			f := *cfg.Faults
			f.Seed ^= int64(i) * 0x9E3779B9 // distinct per-machine schedules
			mcfg.Faults = &f
		}
		node, err := tp.AddMachine(mcfg)
		if err != nil {
			return RingResult{}, err
		}
		nodes = append(nodes, node)
	}

	receivers := make([]*netstack.Receiver, cfg.Machines)
	var senders []*netstack.Sender
	for i, node := range nodes {
		next := nodes[(i+1)%cfg.Machines]
		if err := tp.ConnectMachines(node, 0, next, 0, ClusterLinkLatency); err != nil {
			return RingResult{}, err
		}
		hash := netstack.RSSHashIPv4(clusterAddr(i), clusterAddr((i+1)%cfg.Machines), uint16(10000+i), 5001)
		// Steer the inbound flow to the successor's core 1: core 0 runs its
		// sender pump, so without the rule RSS luck decides which machines
		// suffer send/receive contention and the ring load is lopsided.
		if cfg.Cores > 1 {
			if err := next.M.NIC.SteerFlow(hash, 1); err != nil {
				return RingResult{}, err
			}
		}
		senders = append(senders, &netstack.Sender{
			K: node.M.Kernel, Drv: node.M.Driver, Core: node.M.Cores[0],
			Ring: 0, PortID: 0, Flow: 200 + i, Hash: hash,
		})
		receivers[i] = &netstack.Receiver{K: node.M.Kernel}
		recv := receivers[i]
		node.M.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
			recv.HandleSegment(t, skb)
		}
	}
	for _, n := range nodes {
		if err := n.M.FillAllRings(); err != nil {
			return RingResult{}, err
		}
	}
	for _, s := range senders {
		s.Start()
	}

	tp.Run(cfg.Warmup)
	rx0 := make([]uint64, cfg.Machines)
	for i, r := range receivers {
		rx0[i] = r.Bytes
	}
	t0 := tp.Cluster().Now()
	tp.Run(t0 + cfg.Duration)
	dt := (tp.Cluster().Now() - t0).Seconds()

	res := RingResult{Scheme: string(cfg.Scheme), Epochs: tp.Cluster().Epochs()}
	for i, r := range receivers {
		g := float64(r.Bytes-rx0[i]) * 8 / dt / 1e9
		res.PerMachineGbps = append(res.PerMachineGbps, g)
		res.TotalGbps += g
		res.Segments += r.Segments
	}
	for _, s := range tp.Cluster().Shards() {
		res.Processed = append(res.Processed, s.Engine().Processed())
	}
	for _, n := range nodes {
		if n.M.Faults != nil {
			res.FaultDigests = append(res.FaultDigests, n.M.Faults.ScheduleDigest())
			res.Injected += n.M.Faults.InjectedTotal()
		}
	}
	return res, nil
}
