package workloads

import (
	"fmt"

	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// BypassConfig describes one kernel-bypass polling run: Rings queue pairs,
// each owned by a polling driver spinning on its own dedicated core.
type BypassConfig struct {
	Machine *testbed.Machine
	// Rings is the number of poll-mode queue pairs (default 1); ring i's
	// driver spins on core i.
	Rings    int
	Duration sim.Time
	Warmup   sim.Time
	// IdleWindow, measured before any load is offered, captures the
	// busy-poll burn of an idle bypass app (default 2 ms).
	IdleWindow sim.Time
}

// BypassResult is one row of the bypass figure.
type BypassResult struct {
	Scheme string
	RXGbps float64
	// CPUUtil is the fraction of all-core capacity consumed — for a
	// polling driver this approaches 100% of its dedicated cores by
	// construction.
	CPUUtil float64
	// CPUPerMBus is CPU microseconds charged per megabyte delivered,
	// spin time included — the honest cost-of-goodput metric the figure
	// compares across schemes.
	CPUPerMBus float64
	// IdleBurnCores is how many cores' worth of CPU the driver burned
	// during the idle window with zero traffic offered (≈ Rings for a
	// busy-poll loop; 0 for an interrupt driver).
	IdleBurnCores float64
	MemBWGBps     float64
	Polls         uint64
	Harvested     uint64
	Doorbells     uint64
	PublishFaults uint64
}

// RunBypass executes a kernel-bypass run on a bypass-raw or bypass-prot
// machine: set up the pool and virtqueues, measure idle burn, then offer
// one steered line-rate flow per ring and measure goodput and CPU/MB.
func RunBypass(cfg BypassConfig) (BypassResult, error) {
	ma := cfg.Machine
	if ma == nil {
		return BypassResult{}, fmt.Errorf("workloads: nil machine")
	}
	if !testbed.IsBypass(ma.Cfg.Scheme) {
		return BypassResult{}, fmt.Errorf("workloads: RunBypass on scheme %q", ma.Cfg.Scheme)
	}
	if cfg.Rings <= 0 {
		cfg.Rings = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 20 * sim.Millisecond
	}
	if cfg.IdleWindow == 0 {
		cfg.IdleWindow = 2 * sim.Millisecond
	}
	if cfg.Rings > ma.NIC.Cfg.Rings {
		return BypassResult{}, fmt.Errorf("workloads: %d bypass rings on a %d-ring NIC", cfg.Rings, ma.NIC.Cfg.Rings)
	}
	prot := ma.Cfg.Scheme == testbed.SchemeBypassProt

	drivers := make([]*netstack.BypassDriver, cfg.Rings)
	var setupErr error
	for ring := 0; ring < cfg.Rings; ring++ {
		d := netstack.NewBypassDriver(ma.Kernel, ma.NIC, ring, testbed.BypassDeviceID, prot)
		drivers[ring] = d
		d.Core().Submit(false, func(t *sim.Task) {
			if err := d.Setup(t); err != nil && setupErr == nil {
				setupErr = err
			}
		})
	}
	ma.Sim.Run(ma.Sim.Now())
	if setupErr != nil {
		return BypassResult{}, setupErr
	}
	for _, d := range drivers {
		d.Start()
	}
	defer func() {
		for _, d := range drivers {
			d.Stop()
		}
	}()

	busyAll := func() sim.Time {
		var b sim.Time
		for _, c := range ma.Cores {
			b += c.Busy()
		}
		return b
	}

	// Idle window: the poll loops spin against an empty used ring.
	idle0 := busyAll()
	tIdle := ma.Sim.Now()
	ma.Sim.Run(tIdle + cfg.IdleWindow)
	idleBurn := (busyAll() - idle0).Seconds() / cfg.IdleWindow.Seconds()

	// One steered line-rate flow per ring, ports round-robined.
	var gens []*Generator
	for ring := 0; ring < cfg.Rings; ring++ {
		g, err := NewGenerator(ma, ring%ma.Model.NICPorts, ring, ring+1, ma.Model.SegmentSize)
		if err != nil {
			return BypassResult{}, err
		}
		gens = append(gens, g)
	}
	for _, g := range gens {
		g.Start()
	}
	defer func() {
		for _, g := range gens {
			g.Stop()
		}
	}()

	ma.Sim.Run(ma.Sim.Now() + cfg.Warmup)
	var bytes0 uint64
	for _, d := range drivers {
		bytes0 += d.Bytes
	}
	busy0 := busyAll()
	mem0 := ma.MemBW.Used()
	t0 := ma.Sim.Now()

	ma.Sim.Run(t0 + cfg.Duration)

	dt := (ma.Sim.Now() - t0).Seconds()
	var bytes uint64
	res := BypassResult{Scheme: ma.SchemeName(), IdleBurnCores: idleBurn}
	for _, d := range drivers {
		bytes += d.Bytes
		res.Polls += d.Polls
		res.Harvested += d.Harvested
		res.Doorbells += d.Doorbells
		res.PublishFaults += d.Virtqueue().PublishFaults
	}
	bytes -= bytes0
	busy := busyAll() - busy0
	res.RXGbps = float64(bytes) * 8 / dt / 1e9
	res.CPUUtil = busy.Seconds() / (dt * float64(len(ma.Cores)))
	if bytes > 0 {
		res.CPUPerMBus = busy.Seconds() * 1e6 / (float64(bytes) / 1e6)
	}
	res.MemBWGBps = (ma.MemBW.Used() - mem0) / dt / 1e9
	return res, nil
}
