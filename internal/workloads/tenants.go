package workloads

import (
	"fmt"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/tenant"
	"github.com/asplos18/damn/internal/testbed"
)

// TenantsConfig describes one multi-tenant experiment: N tenants share one
// protected NIC, each with its own virtual function (IOMMU domain + DAMN
// generation), an RX/TX ring pair, capability-gated buffer handoff and a
// weighted fair share of the PCIe ceiling. The run measures a clean phase
// (per-tenant goodput, Jain's fairness index), then — if Attack is set —
// compromises tenant 0 with the full hostile repertoire (forged
// capabilities, DMA probes into sibling IOVA ranges, a DMA-fault storm)
// and measures the blast radius on its neighbours while the containment
// ladder runs. Every phase boundary is a fixed simulated time, so the
// whole trajectory replays byte-identically from (Scheme, Tenants, Seed).
type TenantsConfig struct {
	Scheme  testbed.Scheme
	Tenants int
	// FaultSeed seeds the fault plane (the attack storm's randomness).
	FaultSeed int64
	// Warmup precedes the clean measurement (default 5 ms).
	Warmup sim.Time
	// Measure is the clean-phase measurement window (default 10 ms).
	Measure sim.Time
	// Attack enables the compromised-tenant phase.
	Attack bool
	// AttackLen is the hostile window (default 10 ms; the victim-goodput
	// measurement spans exactly this window).
	AttackLen sim.Time
	// StormRate is the attacker VF's DMA-fault probability (default 0.5).
	StormRate float64
	// ProbeEvery is the neighbour-probe cadence (default 20 µs).
	ProbeEvery sim.Time
	// SettleDeadline bounds the post-attack wait for the ladder to settle
	// (default 20 ms).
	SettleDeadline sim.Time
	// Manager tunes the containment ladder (zero = defaults).
	Manager tenant.Config
	// Supervisor tunes the recovery supervisor the manager is wired
	// through (zero = defaults).
	Supervisor recovery.Config
	// OnMachine, when non-nil, observes the finished machine (the figure
	// uses it to export the stats snapshot, per-tenant counters included).
	OnMachine func(*testbed.Machine)
}

// TenantsResult is one row of the tenants figure.
type TenantsResult struct {
	Scheme  string
	Tenants int

	// Clean phase.
	CleanGbps    []float64 // per tenant
	AggGbps      float64
	JainIndex    float64
	FairDelaysPS []int64 // cumulative admission delay per tenant

	// Attack phase (zero-valued when Attack is off).
	Attacked         bool
	VictimGbps       []float64 // per surviving tenant (index 0 is tenant 1)
	VictimRatioMin   float64   // worst victim attack/clean goodput ratio
	VictimRatioMean  float64
	AttackerState    string
	AttackerQuar     int
	Evictions        uint64
	ProbesBlocked    uint64
	ProbesLanded     int
	CapChecks        uint64
	CapDenials       uint64
	CapRevocations   uint64
	CrossTenantRecs  uint64 // fault records attributed to victim VFs
	ReleasedPages    int64
	PinnedChunks     int
	RxWrongCoreByTen []uint64

	// Conservation and determinism evidence.
	DamnLiveChunks int
	ScheduleDigest uint64
}

func (cfg *TenantsConfig) defaults() {
	if cfg.Scheme == "" {
		cfg.Scheme = testbed.SchemeDAMN
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 4
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 5 * sim.Millisecond
	}
	if cfg.Measure == 0 {
		cfg.Measure = 10 * sim.Millisecond
	}
	if cfg.AttackLen == 0 {
		cfg.AttackLen = 10 * sim.Millisecond
	}
	if cfg.StormRate == 0 {
		cfg.StormRate = 0.5
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 20 * sim.Microsecond
	}
	if cfg.SettleDeadline == 0 {
		cfg.SettleDeadline = 20 * sim.Millisecond
	}
}

// RunTenants executes the multi-tenant experiment and returns its row.
func RunTenants(cfg TenantsConfig) (TenantsResult, error) {
	cfg.defaults()
	nT := cfg.Tenants
	// Each tenant owns one RX ring (cores 0..N-1) and one TX ring (cores
	// N..2N-1), the same bidirectional split as the recovery harness.
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: cfg.Scheme,
		Cores:  2 * nT,
		Faults: &faults.Config{Seed: cfg.FaultSeed, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		return TenantsResult{}, err
	}
	mgr := tenant.Attach(ma, cfg.Manager)
	sup := recovery.Attach(ma, cfg.Supervisor)
	// The supervisor owns the single-consumer fault-record ring; records
	// attributed to tenant VFs (not supervisor-managed devices) are
	// forwarded into the containment windows.
	sup.OnForeignRecord = mgr.BindSupervisor()

	tens := make([]*tenant.Tenant, nT)
	for i := 0; i < nT; i++ {
		tens[i], err = mgr.AddTenant(i, 1, []int{i, nT + i})
		if err != nil {
			return TenantsResult{}, err
		}
	}
	// Rings fill after tenancy is set up so every buffer is allocated and
	// mapped under its owner VF's identity (per-tenant DAMN generations).
	if err := ma.FillAllRings(); err != nil {
		return TenantsResult{}, err
	}

	receivers := make(map[int]*netstack.Receiver, nT)
	gens := make([]*Generator, nT)
	senders := make([]*netstack.Sender, nT)
	for i := 0; i < nT; i++ {
		flow := i + 1
		receivers[flow] = &netstack.Receiver{K: ma.Kernel, AckCost: true}
		g, err := NewGenerator(ma, i%ma.Model.NICPorts, i, flow, ma.Model.SegmentSize)
		if err != nil {
			return TenantsResult{}, err
		}
		gens[i] = g
		senders[i] = &netstack.Sender{
			K: ma.Kernel, Drv: ma.Driver, Core: ma.Cores[nT+i],
			Ring: nT + i, PortID: i % ma.Model.NICPorts, Flow: 1000 + i,
			Dev: tenant.DevOf(i), AckCost: true,
		}
	}
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		if r, ok := receivers[skb.Flow]; ok {
			r.HandleSegment(t, skb)
			return
		}
		skb.Free(t)
	}
	for _, g := range gens {
		g.Start()
	}
	for _, s := range senders {
		s.Start()
	}

	tenantBytes := func(i int) uint64 {
		return receivers[i+1].Bytes + senders[i].Bytes
	}
	measure := func(dur sim.Time) []float64 {
		b0 := make([]uint64, nT)
		for i := range b0 {
			b0[i] = tenantBytes(i)
		}
		t0 := ma.Sim.Now()
		ma.Sim.Run(t0 + dur)
		dt := (ma.Sim.Now() - t0).Seconds()
		out := make([]float64, nT)
		for i := range out {
			out[i] = float64(tenantBytes(i)-b0[i]) * 8 / dt / 1e9
		}
		return out
	}

	res := TenantsResult{Scheme: ma.SchemeName(), Tenants: nT}

	ma.Sim.Run(cfg.Warmup)
	res.CleanGbps = measure(cfg.Measure)
	for _, g := range res.CleanGbps {
		res.AggGbps += g
	}
	res.JainIndex = jain(res.CleanGbps)
	res.FairDelaysPS = make([]int64, nT)
	for i := range res.FairDelaysPS {
		res.FairDelaysPS[i] = int64(mgr.Fair().DelayFor(i))
	}

	if cfg.Attack && nT > 1 {
		res.Attacked = true
		attackerDev := tenant.DevOf(0)
		mal := device.NewMalicious(ma.IOMMU, attackerDev)

		// The compromise, all at once: forged capabilities on both of the
		// attacker's rings, a neighbour-probe loop sweeping sibling IOVA
		// ranges, and a DMA-fault storm filtered to the attacker's VF so
		// no neighbour's fault schedule is perturbed.
		mgr.Table().Present(0, tenant.Handle{Tenant: 0, Epoch: ^uint32(0)})
		mgr.Table().Present(nT, tenant.Handle{Tenant: nT + 7})
		ma.Faults.SetDeviceFilter(faults.DMAFault, attackerDev)
		ma.Faults.SetRate(faults.DMAFault, cfg.StormRate)
		probeVictim := 0
		stopProbes := ma.Sim.Every(cfg.ProbeEvery, func() {
			probeVictim = probeVictim%(nT-1) + 1 // rotate over victims
			_, l := mal.ProbeNeighbor(tenant.DevOf(probeVictim), 2, 4)
			res.ProbesLanded += l
			// The no-protection counterfactual: under passthrough domains
			// the attacker reads arbitrary physical memory directly; with
			// per-tenant domains the same reads fault in its own domain.
			for p := 0; p < 2; p++ {
				v := iommu.IOVA(1<<20 + p*4096)
				if _, err := mal.TryRead(v, 64); err == nil {
					res.ProbesLanded++
				}
			}
		})
		attackEnd := ma.Sim.Now() + cfg.AttackLen
		ma.Sim.At(attackEnd, func() {
			ma.Faults.SetRate(faults.DMAFault, 0)
			ma.Faults.SetDeviceFilter(faults.DMAFault, -1)
		})

		victims := measure(cfg.AttackLen)[1:]
		stopProbes()
		res.VictimGbps = victims
		res.VictimRatioMin = 1e18
		for i, v := range victims {
			r := 0.0
			if c := res.CleanGbps[i+1]; c > 0 {
				r = v / c
			}
			if r < res.VictimRatioMin {
				res.VictimRatioMin = r
			}
			res.VictimRatioMean += r
		}
		res.VictimRatioMean /= float64(len(victims))

		// Let the ladder settle (the attacker should be in containment).
		deadline := ma.Sim.Now() + cfg.SettleDeadline
		for ma.Sim.Now() < deadline {
			s := tens[0].State()
			if s == tenant.Quarantined || s == tenant.Evicted {
				break
			}
			ma.Sim.Run(ma.Sim.Now() + 100*sim.Microsecond)
		}

		res.AttackerState = tens[0].State().String()
		res.AttackerQuar = tens[0].Quarantines()
		res.Evictions = mgr.Evictions
		_, _, res.ProbesBlocked = ma.IOMMU.DeviceFaultStats(attackerDev)
		res.CapChecks = mgr.Table().Checks
		res.CapDenials = mgr.Table().Denials
		res.CapRevocations = mgr.Table().Revocations
		for i := 1; i < nT; i++ {
			rec, _, _ := ma.IOMMU.DeviceFaultStats(tenant.DevOf(i))
			res.CrossTenantRecs += rec
		}
		res.ReleasedPages = mgr.ReleasedPages
		res.PinnedChunks = mgr.PinnedChunks
		res.RxWrongCoreByTen = make([]uint64, nT)
		for i := range res.RxWrongCoreByTen {
			res.RxWrongCoreByTen[i] = ma.Driver.RxWrongCoreFor(i)
		}
	}

	mgr.Stop()
	sup.Stop()
	if ma.StopWatchdog != nil {
		ma.StopWatchdog()
	}

	res.ScheduleDigest = ma.Faults.ScheduleDigest()
	res.DamnLiveChunks = -1
	if ma.Damn != nil {
		live, err := ma.Damn.Audit()
		if err != nil {
			return res, fmt.Errorf("workloads: tenants conservation audit: %w", err)
		}
		res.DamnLiveChunks = live
	}
	if cfg.OnMachine != nil {
		cfg.OnMachine(ma)
	}
	return res, nil
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) — 1.0 is perfectly
// fair, 1/n is one tenant hogging everything.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
