package workloads

import (
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func quickMachine(t testing.TB, scheme testbed.Scheme) *testbed.Machine {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: scheme, MemBytes: 512 << 20, RingSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

func TestMemcachedMakesProgress(t *testing.T) {
	ma := quickMachine(t, testbed.SchemeDAMN)
	res, err := RunMemcached(MemcachedConfig{
		Machine: ma, Instances: 8,
		Warmup: 5 * sim.Millisecond, Duration: 20 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TPS < 1000 {
		t.Fatalf("TPS = %.0f", res.TPS)
	}
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Fatalf("CPUUtil = %f", res.CPUUtil)
	}
}

func TestMemcachedGetSetMix(t *testing.T) {
	// A GET-only run must move far more TX than RX payload; a SET-only
	// run the reverse (values flow inbound).
	run := func(ratio float64) (rx, tx uint64) {
		ma := quickMachine(t, testbed.SchemeOff)
		_, err := RunMemcached(MemcachedConfig{
			Machine: ma, Instances: 4, GetRatio: ratio,
			Warmup: 5 * sim.Millisecond, Duration: 20 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ma.NIC.RxBytes, ma.NIC.TxBytes
	}
	rxG, txG := run(0.99)
	if txG < 4*rxG {
		t.Errorf("GET-heavy mix should be TX-dominated: rx=%d tx=%d", rxG, txG)
	}
	rxS, txS := run(0.01)
	if rxS < 4*txS {
		t.Errorf("SET-heavy mix should be RX-dominated: rx=%d tx=%d", rxS, txS)
	}
}

func TestGraph500CompletesIterations(t *testing.T) {
	ma := quickMachine(t, testbed.SchemeOff)
	g := StartGraph500(Graph500Config{
		Machine: ma, Cores: []int{0, 1, 2, 3}, Vertices: 1 << 12, Degree: 64,
	})
	ma.Sim.Run(200 * sim.Millisecond)
	g.Stop()
	if g.Iterations < 2 {
		t.Fatalf("iterations = %d", g.Iterations)
	}
	if g.MeanIterTime() <= 0 {
		t.Fatal("no iteration time recorded")
	}
	// Stopping halts the loop.
	n := g.Iterations
	ma.Sim.Run(ma.Sim.Now() + 100*sim.Millisecond)
	if g.Iterations != n {
		t.Fatal("instance kept iterating after Stop")
	}
}

func TestGraph500SlowsUnderMemoryPressure(t *testing.T) {
	// Saturate the controller with synthetic traffic; the BFS iteration
	// time must grow (the Fig 2 mechanism in isolation).
	base := func(pressure bool) sim.Time {
		ma := quickMachine(t, testbed.SchemeOff)
		if pressure {
			ma.Sim.Every(2*sim.Microsecond, func() {
				ma.MemBW.Use(ma.Sim.Now(), 150_000) // 75 GB/s of noise
			})
		}
		g := StartGraph500(Graph500Config{
			Machine: ma, Cores: []int{0, 1, 2, 3}, Vertices: 1 << 12, Degree: 64,
		})
		ma.Sim.Run(200 * sim.Millisecond)
		g.Stop()
		if g.MeanIterTime() == 0 {
			t.Fatal("no iterations completed")
		}
		return g.MeanIterTime()
	}
	quiet := base(false)
	loud := base(true)
	if loud < quiet*5/4 {
		t.Fatalf("BFS under pressure %v should exceed quiet %v by ≥25%%", loud, quiet)
	}
}

func TestKCompileChurnsAllocator(t *testing.T) {
	ma := quickMachine(t, testbed.SchemeOff)
	before := ma.Mem.AllocatedPages()
	kc := StartKCompile(ma, []int{0, 1}, 42)
	ma.Sim.Run(50 * sim.Millisecond)
	held := ma.Mem.AllocatedPages()
	if held <= before {
		t.Fatal("kcompile allocated nothing")
	}
	kc.Stop()
	if got := ma.Mem.AllocatedPages(); got != before {
		t.Fatalf("kcompile leaked %d pages", got-before)
	}
}

func TestFioRunsAllSchemes(t *testing.T) {
	for _, scheme := range []testbed.Scheme{testbed.SchemeOff, testbed.SchemeStrict, testbed.SchemeShadow} {
		ma, err := testbed.NewMachine(testbed.MachineConfig{
			Scheme: scheme, MemBytes: 128 << 20, Seed: 1, NoNIC: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nvme := device.NewNVMe(ma.Sim, ma.IOMMU, ma.Model, ma.Cores,
			device.DefaultP3700(testbed.NVMeDeviceID))
		res, err := RunFio(FioConfig{
			Machine: ma, NVMe: nvme, Threads: 4, BlockSize: 4096,
			Warmup: 2 * sim.Millisecond, Duration: 10 * sim.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.IOPS < 10_000 {
			t.Fatalf("%s: IOPS = %.0f", scheme, res.IOPS)
		}
		if nvme.Faults != 0 {
			t.Fatalf("%s: %d DMA faults on legitimate traffic", scheme, nvme.Faults)
		}
	}
}
