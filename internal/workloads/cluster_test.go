package workloads

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

func quickRing(workers int) RingConfig {
	return RingConfig{
		Scheme: testbed.SchemeDAMN, Machines: 3, Workers: workers,
		Seed: 42, Duration: 3 * sim.Millisecond, Warmup: 1 * sim.Millisecond,
	}
}

// TestRingParallelMatchesSerial is the tentpole's identity bar on a real
// workload: a 3-machine ring run with 1, 2 and 4 host workers must produce
// identical results down to each shard's engine event count — host
// parallelism changes wall-clock time and nothing else.
func TestRingParallelMatchesSerial(t *testing.T) {
	serial, err := RunRing(quickRing(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Segments == 0 {
		t.Fatal("ring moved no traffic")
	}
	for _, workers := range []int{2, 4} {
		got, err := RunRing(quickRing(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d diverged:\nserial: %+v\ngot:    %+v", workers, serial, got)
		}
	}
}

// TestRingSeedReplay: same seed, same run; different seed, different run.
func TestRingSeedReplay(t *testing.T) {
	a, err := RunRing(quickRing(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRing(quickRing(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

// TestRingZeroRateFaultsMatchBaseline extends the zero-rate-equals-baseline
// contract to topologies: arming every machine's fault plane with all rates
// zero must not change a single workload number, because a zero-rate
// injector never draws on the link impairment path (now owned by
// device.Link, exercised by both local injection and cross-machine
// forwarding). Processed counts are excluded — an armed plane runs a
// watchdog ticker, which adds events without touching traffic.
func TestRingZeroRateFaultsMatchBaseline(t *testing.T) {
	base, err := RunRing(quickRing(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickRing(2)
	cfg.Faults = &faults.Config{Seed: 99, Rates: faults.UniformRates(0)}
	armed, err := RunRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if armed.Injected != 0 {
		t.Fatalf("zero-rate plane fired %d faults", armed.Injected)
	}
	if !reflect.DeepEqual(base.PerMachineGbps, armed.PerMachineGbps) ||
		base.TotalGbps != armed.TotalGbps || base.Segments != armed.Segments ||
		base.Epochs != armed.Epochs {
		t.Fatalf("zero-rate fault plane perturbed the ring:\nbase:  %+v\narmed: %+v", base, armed)
	}
}

// TestRingChaosParallelMatchesSerial puts the fault plane and the sharded
// executor together: with link impairments firing on every machine, the
// per-machine fault schedules (digests), counts and workload results must
// be identical at any worker count.
func TestRingChaosParallelMatchesSerial(t *testing.T) {
	cfg := func(workers int) RingConfig {
		c := quickRing(workers)
		c.Faults = &faults.Config{Seed: 17, Rates: faults.UniformRates(0.005)}
		return c
	}
	serial, err := RunRing(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Injected == 0 {
		t.Fatal("no faults fired at rate 0.005")
	}
	if len(serial.FaultDigests) != 3 {
		t.Fatalf("expected 3 per-machine digests, got %v", serial.FaultDigests)
	}
	par, err := RunRing(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("chaos ring diverged across workers:\nserial: %+v\npar:    %+v", serial, par)
	}
}

// TestIncastParallelMatchesSerial covers the router + heterogeneous-role
// topology (the cluster figure's shape) at both worker counts.
func TestIncastParallelMatchesSerial(t *testing.T) {
	cfg := func(workers int) IncastConfig {
		return IncastConfig{
			Scheme: testbed.SchemeDAMN, Senders: 3, Workers: workers,
			Seed: 7, Duration: 3 * sim.Millisecond, Warmup: 1 * sim.Millisecond,
		}
	}
	serial, err := RunIncast(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Delivered == 0 {
		t.Fatal("incast delivered nothing")
	}
	par, err := RunIncast(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("incast diverged:\nserial: %+v\npar:    %+v", serial, par)
	}
}

// TestMemcachedClusterParallelMatchesSerial covers the request/response
// (bidirectional routing) topology.
func TestMemcachedClusterParallelMatchesSerial(t *testing.T) {
	cfg := func(workers int) MemcachedClusterConfig {
		return MemcachedClusterConfig{
			Scheme: testbed.SchemeDAMN, Clients: 2, Servers: 2, Workers: workers,
			Seed: 11, Duration: 3 * sim.Millisecond, Warmup: 1 * sim.Millisecond,
		}
	}
	serial, err := RunMemcachedCluster(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Ops == 0 {
		t.Fatal("memcached cluster completed no requests")
	}
	par, err := RunMemcachedCluster(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("memcached cluster diverged:\nserial: %+v\npar:    %+v", serial, par)
	}
}

// TestIncastDamnAuditAcrossMachines drives the incast storm with DAMN on
// every machine, then audits each machine's allocator through the Inspect
// hook (which runs before teardown): cross-machine forwarding must not
// leak or double-free DAMN chunks on either side of the wire.
func TestIncastDamnAuditAcrossMachines(t *testing.T) {
	res, err := RunIncast(IncastConfig{
		Scheme: testbed.SchemeDAMN, Senders: 2, Workers: 2,
		Seed: 3, Duration: 2 * sim.Millisecond, Warmup: 1 * sim.Millisecond,
		Inspect: func(machines []*testbed.Machine) error {
			for _, ma := range machines {
				if ma.Damn == nil {
					continue
				}
				if _, err := ma.Damn.Audit(); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("incast delivered nothing")
	}
}
