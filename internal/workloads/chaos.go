package workloads

import (
	"fmt"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/recovery"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
)

// ChaosConfig describes one chaos run: a normal workload executed under a
// randomized-but-deterministic fault schedule. The schedule is a pure
// function of FaultSeed, so any failure replays exactly.
type ChaosConfig struct {
	// Scheme is the machine's protection configuration (default SchemeDAMN,
	// the configuration with the deepest degradation chain: depot → bump →
	// slow path → ErrNoMemory).
	Scheme testbed.Scheme
	// FaultSeed roots every fault kind's random stream.
	FaultSeed int64
	// FaultRate is the uniform per-visit injection probability applied to
	// every fault kind (default 0.002). Rates overrides it per kind when
	// non-nil.
	FaultRate float64
	Rates     map[faults.Kind]float64
	// Cores for the machine (default 4: chaos runs favour iteration speed
	// over fidelity to the 28-core testbed).
	Cores    int
	Duration sim.Time
	Warmup   sim.Time
	// Recovery attaches the fault-domain supervisor, so a chaos run that
	// degrades into a fault storm gets quarantined and healed instead of
	// limping. The supervisor's own work is part of the schedule under
	// test — determinism must survive it.
	Recovery bool
}

// ChaosResult reports what a chaos run survived.
type ChaosResult struct {
	Netperf NetperfResult
	// Injected is the fired-fault count per kind name.
	Injected      map[string]uint64
	InjectedTotal uint64
	// ScheduleDigest folds every injection decision; equal digests mean
	// byte-identical fault schedules.
	ScheduleDigest uint64
	// FaultRecords / FaultOverflows are the IOMMU fault-record queue's
	// counters; ITETimeouts counts invalidation-queue timeouts retried.
	FaultRecords   uint64
	FaultOverflows uint64
	ITETimeouts    uint64
	// DamnLiveChunks is the allocator's live-chunk count after the
	// conservation audit (-1 when the scheme has no DAMN).
	DamnLiveChunks int
	// RecoveryFinal is the NIC's supervisor state at run end, or "off"
	// when no supervisor was attached; RecoveryStorms/RecoveryResets count
	// its interventions.
	RecoveryFinal  string
	RecoveryStorms uint64
	RecoveryResets uint64
	// Snapshot is the machine's full metrics state at run end.
	Snapshot stats.Snapshot
}

func (cfg *ChaosConfig) defaults() {
	if cfg.Scheme == "" {
		cfg.Scheme = testbed.SchemeDAMN
	}
	if cfg.FaultRate == 0 {
		cfg.FaultRate = 0.002
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * sim.Millisecond
	}
}

// faultConfig builds the machine's fault plane from the chaos knobs.
func (cfg *ChaosConfig) faultConfig() *faults.Config {
	rates := cfg.Rates
	if rates == nil {
		rates = faults.UniformRates(cfg.FaultRate)
	}
	return &faults.Config{Seed: cfg.FaultSeed, Rates: rates}
}

// newChaosMachine assembles the machine under test with injection armed.
func newChaosMachine(cfg *ChaosConfig) (*testbed.Machine, error) {
	return testbed.NewMachine(testbed.MachineConfig{
		Scheme: cfg.Scheme,
		Cores:  cfg.Cores,
		Faults: cfg.faultConfig(),
	})
}

// attachChaosRecovery arms the supervisor when the config asks for it.
func attachChaosRecovery(cfg *ChaosConfig, ma *testbed.Machine) *recovery.Supervisor {
	if !cfg.Recovery {
		return nil
	}
	return recovery.Attach(ma, recovery.Config{})
}

// finish stops the watchdog and supervisor, runs the conservation audit and
// collects the fault plane's evidence.
func finishChaos(ma *testbed.Machine, sup *recovery.Supervisor, res *ChaosResult) error {
	res.RecoveryFinal = "off"
	if sup != nil {
		sup.Stop()
		res.RecoveryFinal = sup.State(testbed.NICDeviceID).String()
		res.RecoveryStorms = sup.Storms
		res.RecoveryResets = sup.Resets
	}
	if ma.StopWatchdog != nil {
		ma.StopWatchdog()
	}
	res.DamnLiveChunks = -1
	if ma.Damn != nil {
		live, err := ma.Damn.Audit()
		if err != nil {
			return fmt.Errorf("workloads: chaos conservation audit: %w", err)
		}
		res.DamnLiveChunks = live
	}
	res.Injected = ma.Faults.Counts()
	res.InjectedTotal = ma.Faults.InjectedTotal()
	res.ScheduleDigest = ma.Faults.ScheduleDigest()
	res.FaultRecords, res.FaultOverflows = ma.IOMMU.FaultQueueStats()
	res.ITETimeouts = ma.IOMMU.InvQ().ITETimeouts
	res.Snapshot = ma.StatsSnapshot()
	return nil
}

// RunChaosNetperf runs a bidirectional netperf under the fault schedule:
// every RX and TX path of the stack — wire, DMA translation, invalidation,
// allocation, completion delivery — takes deterministic hits while the
// degradation paths keep the machine alive. The run fails only if a layer
// panics or the allocator's conservation invariants break.
func RunChaosNetperf(cfg ChaosConfig) (ChaosResult, error) {
	cfg.defaults()
	ma, err := newChaosMachine(&cfg)
	if err != nil {
		return ChaosResult{}, err
	}
	sup := attachChaosRecovery(&cfg, ma)
	rx := make([]int, len(ma.Cores)/2)
	tx := make([]int, len(ma.Cores)-len(rx))
	for i := range rx {
		rx[i] = i
	}
	for i := range tx {
		tx[i] = len(rx) + i
	}
	var res ChaosResult
	res.Netperf, err = RunNetperf(NetperfConfig{
		Machine:  ma,
		RXCores:  rx,
		TXCores:  tx,
		Duration: cfg.Duration,
		Warmup:   cfg.Warmup,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	if err := finishChaos(ma, sup, &res); err != nil {
		return res, err
	}
	return res, nil
}

// ChaosMemcachedResult pairs the workload row with the fault evidence.
type ChaosMemcachedResult struct {
	Memcached MemcachedResult
	ChaosResult
}

// RunChaosMemcached runs the memcached request/response workload under the
// fault schedule — the RX-and-TX-coupled flow where a lost completion stalls
// a memslap slot until the watchdog reaps it.
func RunChaosMemcached(cfg ChaosConfig) (ChaosMemcachedResult, error) {
	cfg.defaults()
	ma, err := newChaosMachine(&cfg)
	if err != nil {
		return ChaosMemcachedResult{}, err
	}
	sup := attachChaosRecovery(&cfg, ma)
	var res ChaosMemcachedResult
	res.Memcached, err = RunMemcached(MemcachedConfig{
		Machine:  ma,
		Duration: cfg.Duration,
		Warmup:   cfg.Warmup,
	})
	if err != nil {
		return ChaosMemcachedResult{}, err
	}
	if err := finishChaos(ma, sup, &res.ChaosResult); err != nil {
		return res, err
	}
	return res, nil
}
