package workloads

import (
	"reflect"
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// chaosCfg is the shared fast configuration: 4 cores and short windows keep
// each run around a second while still pushing thousands of segments through
// every fault point.
func chaosCfg(seed int64, rate float64) ChaosConfig {
	return ChaosConfig{
		FaultSeed: seed,
		// Rates set explicitly: FaultRate zero would mean "default".
		Rates:    faults.UniformRates(rate),
		Cores:    4,
		Duration: 20 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	}
}

// TestChaosSeedReplay: the defining property of the fault plane — the same
// seed replays a byte-identical fault schedule, so two runs agree on every
// decision (digest), every count, the workload result and the entire final
// metrics state.
func TestChaosSeedReplay(t *testing.T) {
	a, err := RunChaosNetperf(chaosCfg(42, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosNetperf(chaosCfg(42, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Fatalf("fault schedules diverged: digest %#x vs %#x", a.ScheduleDigest, b.ScheduleDigest)
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) {
		t.Fatalf("injected counts diverged:\n%v\n%v", a.Injected, b.Injected)
	}
	if a.Netperf != b.Netperf {
		t.Fatalf("workload results diverged:\n%+v\n%+v", a.Netperf, b.Netperf)
	}
	if !reflect.DeepEqual(a.Snapshot, b.Snapshot) {
		t.Fatal("final stats snapshots diverged between identical seeds")
	}
}

// TestChaosSeedsDiverge: different seeds must produce different schedules —
// otherwise the seed isn't reaching the streams.
func TestChaosSeedsDiverge(t *testing.T) {
	a, err := RunChaosNetperf(chaosCfg(1, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosNetperf(chaosCfg(2, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	if a.InjectedTotal == 0 || b.InjectedTotal == 0 {
		t.Fatalf("expected faults to fire: %d and %d", a.InjectedTotal, b.InjectedTotal)
	}
	if a.ScheduleDigest == b.ScheduleDigest {
		t.Fatalf("different seeds produced identical schedule digest %#x", a.ScheduleDigest)
	}
}

// TestChaosNetperfSurvivesFaults: under an aggressive uniform schedule the
// run must complete without a panic, keep moving traffic, fire every
// injectable fault kind at least once in aggregate, pass the allocator's
// conservation audit, and expose the per-kind counters via the registry.
func TestChaosNetperfSurvivesFaults(t *testing.T) {
	res, err := RunChaosNetperf(chaosCfg(7, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Netperf.TotalGbps <= 0 {
		t.Fatalf("machine stopped moving traffic under faults: %+v", res.Netperf)
	}
	if res.InjectedTotal == 0 {
		t.Fatal("no faults fired at rate 0.01")
	}
	// Every kind on the netperf path should have fired at this rate. fio's
	// storage path isn't exercised here, but all kinds share the NIC/DMA/
	// alloc fault points so they all see visits.
	for _, k := range faults.Kinds {
		if res.Injected[k.String()] == 0 {
			t.Errorf("fault kind %s never fired (visits missing?): %s", k, k)
		}
	}
	// The degradation paths must be observable: injected DMA faults land in
	// the IOMMU's fault-record queue, ITEs are retried, and the registry
	// mirrors the injector's counts.
	if res.FaultRecords == 0 {
		t.Error("no IOMMU fault records despite injected DMA faults")
	}
	if res.ITETimeouts == 0 {
		t.Error("no ITE timeouts recorded despite injected invalidation timeouts")
	}
	if res.DamnLiveChunks < 0 {
		t.Error("DAMN scheme should run the conservation audit")
	}
	for _, k := range faults.Kinds {
		key := "faults/injected_" + k.String()
		if res.Snapshot.Counters[key] != res.Injected[k.String()] {
			t.Errorf("registry counter %s=%d disagrees with injector %d",
				key, res.Snapshot.Counters[key], res.Injected[k.String()])
		}
	}
}

// TestChaosZeroRateMatchesBaseline: arming the fault plane with all rates
// zero must not change the workload numbers — the injection points and the
// watchdog are free when nothing fires.
func TestChaosZeroRateMatchesBaseline(t *testing.T) {
	chaos, err := RunChaosNetperf(chaosCfg(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	ma, err := testbed.NewMachine(testbed.MachineConfig{Scheme: testbed.SchemeDAMN, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunNetperf(NetperfConfig{
		Machine: ma,
		RXCores: []int{0, 1}, TXCores: []int{2, 3},
		Duration: 20 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chaos.InjectedTotal != 0 {
		t.Fatalf("rate 0 fired %d faults", chaos.InjectedTotal)
	}
	if chaos.Netperf != base {
		t.Fatalf("zero-rate chaos run differs from fault-free baseline:\n%+v\n%+v",
			chaos.Netperf, base)
	}
}

// TestChaosScheduleGolden pins the exact fault schedules across the wire-
// model refactor that moved the link impairment draws from the NIC's
// InjectRX onto device.Link. The constants were captured immediately before
// the move; a digest, count or throughput change here means the per-kind
// RNG streams shifted or the draw order on the injection path changed —
// both break replay of every recorded -faults run.
func TestChaosScheduleGolden(t *testing.T) {
	for _, g := range []struct {
		seed     int64
		rate     float64
		digest   uint64
		injected uint64
		gbps     float64
	}{
		{42, 0.003, 0x9b0b9076c9973fe1, 657, 195.7167104},
		{7, 0.01, 0xa8d03cab8d47c93b, 2193, 192.0991232},
	} {
		res, err := RunChaosNetperf(chaosCfg(g.seed, g.rate))
		if err != nil {
			t.Fatal(err)
		}
		if res.ScheduleDigest != g.digest {
			t.Errorf("seed=%d rate=%v: digest %#x, want %#x (fault streams shifted)",
				g.seed, g.rate, res.ScheduleDigest, g.digest)
		}
		if res.InjectedTotal != g.injected {
			t.Errorf("seed=%d rate=%v: injected %d, want %d",
				g.seed, g.rate, res.InjectedTotal, g.injected)
		}
		if res.Netperf.TotalGbps != g.gbps {
			t.Errorf("seed=%d rate=%v: %.7f Gb/s, want %.7f",
				g.seed, g.rate, res.Netperf.TotalGbps, g.gbps)
		}
	}
}

// TestChaosThroughputDegradesGracefully: more injected faults may only cost
// throughput, never wedge the machine; the decline must be graceful, not a
// cliff to zero.
func TestChaosThroughputDegradesGracefully(t *testing.T) {
	rates := []float64{0, 0.003, 0.03}
	gbps := make([]float64, len(rates))
	for i, r := range rates {
		res, err := RunChaosNetperf(chaosCfg(11, r))
		if err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
		gbps[i] = res.Netperf.TotalGbps
		if gbps[i] <= 0 {
			t.Fatalf("rate %v: machine wedged (%.3f Gb/s)", r, gbps[i])
		}
	}
	// Monotone within tolerance: injected faults cost retries, drops and
	// watchdog recoveries, so throughput must not *rise* with the rate
	// (small scheduling noise gets 2% slack).
	const slack = 1.02
	for i := 1; i < len(gbps); i++ {
		if gbps[i] > gbps[i-1]*slack {
			t.Errorf("throughput rose with fault rate: %.3f Gb/s at %v vs %.3f Gb/s at %v",
				gbps[i], rates[i], gbps[i-1], rates[i-1])
		}
	}
	if gbps[len(gbps)-1] < gbps[0]*0.10 {
		t.Errorf("degradation is a cliff, not graceful: %.3f -> %.3f Gb/s", gbps[0], gbps[len(gbps)-1])
	}
}

// TestChaosMemcachedSurvivesFaults: the request/response workload couples RX
// to TX, so a lost completion stalls a memslap slot until the watchdog reaps
// it — the run must keep serving ops and pass the audit.
func TestChaosMemcachedSurvivesFaults(t *testing.T) {
	cfg := chaosCfg(13, 0.005)
	res, err := RunChaosMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Memcached.TPS <= 0 {
		t.Fatalf("memcached stopped serving under faults: %+v", res.Memcached)
	}
	if res.InjectedTotal == 0 {
		t.Fatal("no faults fired")
	}
}

// TestUnmapFailureReleasesDamnBuffers is the unmap-quarantine regression:
// when dma_unmap fails on a DAMN RX buffer, the driver must release the
// buffer back to the allocator (its chunk-owned mapping is unaffected by
// the per-DMA unmap) instead of quarantining it — otherwise a long-lived
// machine leaks a chunk per failure and the conservation audit pins them
// forever.
func TestUnmapFailureReleasesDamnBuffers(t *testing.T) {
	res, err := RunChaosNetperf(ChaosConfig{
		FaultSeed: 5,
		Rates:     map[faults.Kind]float64{faults.UnmapFail: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := res.Snapshot.Counter("netstack/rx_unmap_errors")
	released := res.Snapshot.Counter("netstack/rx_unmap_released")
	if errs == 0 {
		t.Fatal("no unmap failures injected; regression not exercised")
	}
	// Every RX buffer under SchemeDAMN is a DAMN buffer, so every failed
	// unmap must have released its buffer rather than leaking it.
	if released != errs {
		t.Fatalf("released %d of %d failed unmaps; the rest leaked", released, errs)
	}
	if res.DamnLiveChunks < 0 {
		t.Fatal("no DAMN audit ran")
	}
	if res.Netperf.TotalGbps <= 0 {
		t.Fatal("workload made no progress under unmap failures")
	}
}

// TestChaosWithRecoverySupervised: chaos with the fault-domain supervisor
// attached. A DMA-fault-heavy schedule must trip the storm detector and the
// supervisor must intervene; the supervisor's own work is part of the
// schedule under test, so two identical runs must still agree on every
// decision and on the recovery evidence.
func TestChaosWithRecoverySupervised(t *testing.T) {
	cfg := ChaosConfig{
		FaultSeed: 9,
		Rates:     map[faults.Kind]float64{faults.DMAFault: 0.3},
		Recovery:  true,
	}
	a, err := RunChaosNetperf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecoveryFinal == "off" {
		t.Fatal("Recovery: true attached no supervisor")
	}
	if a.RecoveryStorms == 0 || a.RecoveryResets == 0 {
		t.Errorf("storm-heavy schedule never tripped the supervisor: %+v", a)
	}
	if a.DamnLiveChunks < 0 {
		t.Error("no DAMN audit ran")
	}
	b, err := RunChaosNetperf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecoveryFinal != b.RecoveryFinal || a.RecoveryStorms != b.RecoveryStorms ||
		a.RecoveryResets != b.RecoveryResets || a.ScheduleDigest != b.ScheduleDigest {
		t.Errorf("supervised chaos runs diverge:\n a=%+v\n b=%+v", a, b)
	}
}
