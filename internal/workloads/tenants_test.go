package workloads

import (
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/tenant"
	"github.com/asplos18/damn/internal/testbed"
)

// TestTenantsClean: with no attacker, every tenant gets an equal share —
// Jain's index near 1 — and conservation holds.
func TestTenantsClean(t *testing.T) {
	res, err := RunTenants(TenantsConfig{
		Scheme: testbed.SchemeDAMN, Tenants: 4, FaultSeed: 1,
		Warmup: 2 * sim.Millisecond, Measure: 5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AggGbps <= 0 {
		t.Fatalf("no goodput: %+v", res)
	}
	if res.JainIndex < 0.99 {
		t.Errorf("clean-phase Jain index = %.4f, want >= 0.99 (per-tenant %v)",
			res.JainIndex, res.CleanGbps)
	}
	if res.DamnLiveChunks < 0 {
		t.Error("DAMN audit did not run on the damn scheme")
	}
}

// TestTenantsBlastRadius is the blast-radius gate: one compromised tenant
// (forged capabilities + neighbour DMA probes + a VF-filtered fault storm)
// must be contained while every sibling keeps >= 95% of its clean goodput,
// with the attacker's DAMN generation reclaimed audit-clean and zero fault
// records attributed to the victims.
func TestTenantsBlastRadius(t *testing.T) {
	res, err := RunTenants(TenantsConfig{
		Scheme: testbed.SchemeDAMN, Tenants: 4, FaultSeed: 1,
		Warmup: 2 * sim.Millisecond, Measure: 5 * sim.Millisecond,
		Attack: true, AttackLen: 5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Attacked {
		t.Fatal("attack phase did not run")
	}
	if res.VictimRatioMin < 0.95 {
		t.Errorf("victim goodput dropped to %.3f of clean (want >= 0.95); victims %v vs clean %v",
			res.VictimRatioMin, res.VictimGbps, res.CleanGbps[1:])
	}
	if res.AttackerState != tenant.Quarantined.String() && res.AttackerState != tenant.Evicted.String() {
		t.Errorf("attacker state = %s, want quarantined or evicted", res.AttackerState)
	}
	if res.ProbesBlocked == 0 {
		t.Error("no neighbour probes were blocked/classified")
	}
	if res.ProbesLanded != 0 {
		t.Errorf("%d neighbour probes landed through per-tenant domains", res.ProbesLanded)
	}
	if res.CapDenials == 0 {
		t.Error("forged capabilities were never denied")
	}
	if res.CrossTenantRecs != 0 {
		t.Errorf("%d fault records attributed to victim VFs, want 0", res.CrossTenantRecs)
	}
	if res.ReleasedPages == 0 {
		t.Error("attacker's DAMN generation was not reclaimed")
	}
	if res.DamnLiveChunks < 0 {
		t.Error("DAMN audit did not run")
	}
}

// TestTenantsFaultStormIsolation fault-storms one tenant through the
// shared fault plane (device-filtered uniform rate) and checks neighbours
// see none of it: their goodput holds and no records land on their VFs.
func TestTenantsFaultStormIsolation(t *testing.T) {
	res, err := RunTenants(TenantsConfig{
		Scheme: testbed.SchemeDAMN, Tenants: 2, FaultSeed: 7,
		Warmup: 2 * sim.Millisecond, Measure: 4 * sim.Millisecond,
		Attack: true, AttackLen: 4 * sim.Millisecond, StormRate: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossTenantRecs != 0 {
		t.Errorf("fault storm leaked %d records onto the neighbour", res.CrossTenantRecs)
	}
	if res.VictimRatioMin < 0.95 {
		t.Errorf("neighbour goodput ratio %.3f under storm, want >= 0.95", res.VictimRatioMin)
	}
}

// TestTenantsSeedReplay: the whole multi-tenant trajectory — including the
// attack — is a pure function of (Scheme, Tenants, Seed).
func TestTenantsSeedReplay(t *testing.T) {
	run := func() TenantsResult {
		res, err := RunTenants(TenantsConfig{
			Scheme: testbed.SchemeDAMN, Tenants: 2, FaultSeed: 3,
			Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond,
			Attack: true, AttackLen: 3 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Errorf("fault schedule digests differ: %x vs %x", a.ScheduleDigest, b.ScheduleDigest)
	}
	if a.AggGbps != b.AggGbps || a.VictimRatioMin != b.VictimRatioMin ||
		a.CapDenials != b.CapDenials || a.ProbesBlocked != b.ProbesBlocked {
		t.Errorf("replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestTenantsOffSchemeProbesLand documents the counterfactual: with the
// IOMMU off, per-tenant domains are passthrough and neighbour probes land.
func TestTenantsOffSchemeProbesLand(t *testing.T) {
	res, err := RunTenants(TenantsConfig{
		Scheme: testbed.SchemeOff, Tenants: 2, FaultSeed: 1,
		Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond,
		Attack: true, AttackLen: 2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbesLanded == 0 {
		t.Error("iommu-off probes were all blocked — passthrough not propagated to tenant VFs")
	}
}

// TestTenancyFreeMachineUnchanged pins the zero-cost claim: a machine with
// no tenant manager attached must not even have the tenant counters, and
// the capability gate must be absent from the driver.
func TestTenancyFreeMachineUnchanged(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN, Cores: 2,
		Faults: &faults.Config{Seed: 1, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	ma.Sim.Run(2 * sim.Millisecond)
	for name := range ma.Stats.Snapshot().Counters {
		if len(name) >= 7 && name[:7] == "tenant/" {
			t.Errorf("tenancy-free machine grew tenant counter %q", name)
		}
	}
}
