package workloads

import (
	"fmt"

	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// ScalingConfig drives the RSS scale-out experiment: many flows spread by
// the NIC's Toeplitz hash across every RX ring (no aRFS pinning), so each
// core's NAPI context allocates, maps, and invalidates on its own DAMN
// shard and throughput should grow with core count.
type ScalingConfig struct {
	Machine *testbed.Machine
	// FlowsPerRing is how many flows the selector places on every ring
	// (default 4 — enough to keep a ring busy through one flow's pauses).
	FlowsPerRing int
	Duration     sim.Time
	Warmup       sim.Time
	// ExtraCycles is the per-segment workload overhead (calibration).
	ExtraCycles float64
	// Wakeup charges blocked-reader wakeups per segment.
	Wakeup bool
}

// ScalingResult is one point of the scaling figure.
type ScalingResult struct {
	Scheme  string
	Cores   int
	RXGbps  float64
	CPUUtil float64
	// WrongCore is the driver's shard-affinity invariant counter: RX
	// completions that ran on a core other than their ring's. Must be 0.
	WrongCore uint64
	// ShardClamps is DAMN's out-of-range-CPU alias counter. Must be 0.
	ShardClamps uint64
}

// selectScalingFlows picks flow ids whose RSS hash covers every ring with
// perRing flows each. Selection is a pure function of the fixed Toeplitz
// key and the ring count: it walks candidate flow ids in order and keeps a
// flow only if the ring its hash maps to still needs one, so the same core
// count always yields the same flow set — the determinism contract extends
// through ring placement.
func selectScalingFlows(ma *testbed.Machine, perRing int) ([]*Generator, error) {
	rings := ma.NIC.Cfg.Rings
	need := rings * perRing
	counts := make([]int, rings)
	var gens []*Generator
	for flow := 1; len(gens) < need; flow++ {
		if flow > 1000*need {
			return nil, fmt.Errorf("workloads: RSS left a ring short after %d candidate flows (rings=%d)", flow-1, rings)
		}
		g := NewRSSGenerator(ma, len(gens)%ma.Model.NICPorts, flow, ma.Model.SegmentSize)
		if counts[g.Ring()] >= perRing {
			continue
		}
		counts[g.Ring()]++
		gens = append(gens, g)
	}
	return gens, nil
}

// RunScaling executes one point: pure-RSS netperf RX across all rings.
func RunScaling(cfg ScalingConfig) (ScalingResult, error) {
	ma := cfg.Machine
	if ma == nil {
		return ScalingResult{}, fmt.Errorf("workloads: nil machine")
	}
	if cfg.FlowsPerRing == 0 {
		cfg.FlowsPerRing = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 20 * sim.Millisecond
	}
	if err := ma.FillAllRings(); err != nil {
		return ScalingResult{}, err
	}

	gens, err := selectScalingFlows(ma, cfg.FlowsPerRing)
	if err != nil {
		return ScalingResult{}, err
	}
	receivers := map[int]*netstack.Receiver{}
	for _, g := range gens {
		receivers[g.flow] = &netstack.Receiver{
			K: ma.Kernel, ExtraCycles: cfg.ExtraCycles, Wakeup: cfg.Wakeup,
		}
	}
	ma.Driver.OnDeliver = func(t *sim.Task, ring int, skb *netstack.SKBuff) {
		if r, ok := receivers[skb.Flow]; ok {
			r.HandleSegment(t, skb)
			return
		}
		skb.Free(t)
	}
	for _, g := range gens {
		g.Start()
	}

	ma.Sim.Run(cfg.Warmup)
	startRX := map[int]uint64{}
	for f, r := range receivers {
		startRX[f] = r.Bytes
	}
	busy0 := make([]sim.Time, len(ma.Cores))
	for i, c := range ma.Cores {
		busy0[i] = c.Busy()
	}
	t0 := ma.Sim.Now()
	ma.Sim.Run(t0 + cfg.Duration)
	dt := (ma.Sim.Now() - t0).Seconds()

	var rxBytes uint64
	for f, r := range receivers {
		rxBytes += r.Bytes - startRX[f]
	}
	var busy sim.Time
	for i, c := range ma.Cores {
		busy += c.Busy() - busy0[i]
	}
	for _, g := range gens {
		g.Stop()
	}
	res := ScalingResult{
		Scheme:    ma.SchemeName(),
		Cores:     len(ma.Cores),
		RXGbps:    float64(rxBytes) * 8 / dt / 1e9,
		CPUUtil:   busy.Seconds() / (dt * float64(len(ma.Cores))),
		WrongCore: ma.Driver.RxWrongCore,
	}
	if ma.Damn != nil {
		res.ShardClamps = ma.Damn.ShardClamps()
	}
	return res, nil
}
