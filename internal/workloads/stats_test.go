package workloads

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
)

// TestNetperfStatsCoverage runs a short DAMN netperf and checks the metrics
// registry actually observed the run: the IOTLB saw traffic (hits and
// misses both nonzero), the DMA cache served allocations from magazines,
// and every instrumented layer contributed at least one counter.
func TestNetperfStatsCoverage(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN, MemBytes: 512 << 20, RingSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNetperf(NetperfConfig{
		Machine: ma,
		RXCores: []int{0, 0},
		Warmup:  1 * sim.Millisecond, Duration: 5 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	snap := ma.StatsSnapshot()

	for _, key := range []string{
		"iommu/iotlb_hits",
		"iommu/iotlb_misses",
		"damn/magazine_hits",
		"damn/chunks_created",
		"sim/events_processed",
		"device/nic_rx_segments",
		"dmaapi/maps_interposed",
		"netstack/rx_delivered",
	} {
		if snap.Counter(key) == 0 {
			t.Errorf("counter %q is zero after a DAMN netperf run", key)
		}
	}
	hits, builds := snap.Counter("damn/magazine_hits"), snap.Counter("damn/chunk_builds")
	t.Logf("DMA-cache hit rate: %d magazine hits, %d slow-path builds", hits, builds)
	if snap.Floats["perf/cycles_damn_alloc"] <= 0 {
		t.Error("no allocator cycles accounted")
	}
	if h, ok := snap.Histograms["device/nic_rx_segment_bytes"]; !ok || h.Count == 0 {
		t.Error("RX segment-size histogram empty")
	}
	// Snapshots must round-trip through JSON (the -stats file format).
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back stats.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counter("iommu/iotlb_hits") != snap.Counter("iommu/iotlb_hits") {
		t.Fatal("counter lost in JSON round-trip")
	}
}

// TestNetperfTraceOutput runs a traced machine and checks the emitted
// document is a loadable Chrome trace_event file: valid JSON with metadata
// records naming the process/threads and complete (ph "X") span events.
func TestNetperfTraceOutput(t *testing.T) {
	tr := stats.NewTracer()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN, MemBytes: 512 << 20, RingSize: 32,
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNetperf(NetperfConfig{
		Machine: ma,
		RXCores: []int{0},
		Warmup:  1 * sim.Millisecond, Duration: 2 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, spans int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Fatalf("span %q has non-positive duration %v", e.Name, e.Dur)
			}
		}
	}
	if meta == 0 {
		t.Error("no process/thread metadata in trace")
	}
	if spans == 0 {
		t.Error("no task spans in trace")
	}
}
