package workloads

import (
	"testing"

	"github.com/asplos18/damn/internal/device"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// TestDamnCoexistsWithFallbackScheme exercises §5.3/§6.5: on a single
// machine, the NIC's traffic flows through DAMN (permanent mappings, no
// DMA-API work) while the NVMe SSD — which DAMN cannot serve (§2.2) — is
// protected by the fallback deferred scheme, concurrently.
func TestDamnCoexistsWithFallbackScheme(t *testing.T) {
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN, MemBytes: 512 << 20, RingSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	nvme := device.NewNVMe(ma.Sim, ma.IOMMU, ma.Model, ma.Cores,
		device.DefaultP3700(testbed.NVMeDeviceID))

	// Drive both workloads over the same simulated window: submit fio's
	// storage load (cores of the second socket) without advancing time,
	// then let RunNetperf drive the engine for both.
	fioCfg := FioConfig{Machine: ma, NVMe: nvme, Threads: 8, BlockSize: 4096}
	netCfg := NetperfConfig{
		Machine: ma, RXCores: []int{0, 1, 2, 3},
		Warmup: 5 * sim.Millisecond, Duration: 30 * sim.Millisecond,
	}
	fioStarted := startFioThreads(t, fioCfg)

	netRes, err := RunNetperf(netCfg)
	if err != nil {
		t.Fatal(err)
	}
	fioRes := fioStarted.collect(ma)

	if netRes.RXGbps < 20 {
		t.Fatalf("netperf under coexistence: %.1f Gb/s", netRes.RXGbps)
	}
	if fioRes.IOPS < 50_000 {
		t.Fatalf("fio under coexistence: %.0f IOPS", fioRes.IOPS)
	}
	// The NIC path never touched the DMA API's dynamic machinery…
	if ma.IOMMU.Unmappings == 0 {
		t.Fatal("expected NVMe unmaps through the fallback scheme")
	}
	// …while the NVMe path did: deferred batching really ran.
	if ma.Deferred.S.Flushes == 0 && ma.Deferred.S.PendingInvalidations() == 0 {
		t.Fatal("fallback scheme saw no NVMe traffic")
	}
	if ma.Damn.FootprintBytes() == 0 {
		t.Fatal("DAMN saw no NIC traffic")
	}
	t.Logf("coexistence: netperf %.1f Gb/s + fio %.0f IOPS; deferred flushes %d",
		netRes.RXGbps, fioRes.IOPS, ma.Deferred.S.Flushes)
}

// fioThreads is the started-but-not-driven state for coexistence tests.
type fioThreads struct {
	threads []*fioThread
	t0      sim.Time
}

// startFioThreads allocates buffers and submits the initial queue depth
// without driving the engine.
func startFioThreads(t *testing.T, cfg FioConfig) *fioThreads {
	t.Helper()
	ma := cfg.Machine
	ft := &fioThreads{t0: ma.Sim.Now()}
	for i := 0; i < cfg.Threads; i++ {
		p, err := ma.Mem.AllocPages(0, i%ma.Model.NumNodes)
		if err != nil {
			t.Fatal(err)
		}
		th := &fioThread{cfg: &cfg, qp: i, core: ma.Cores[(14+i)%len(ma.Cores)], buf: p.PFN().Addr()}
		ft.threads = append(ft.threads, th)
		for d := 0; d < 8; d++ {
			th.submit()
		}
	}
	return ft
}

// collect stops the threads and reports IOPS over the elapsed window.
func (ft *fioThreads) collect(ma *testbed.Machine) FioResult {
	var ops uint64
	for _, th := range ft.threads {
		th.stop = true
		ops += th.ops
	}
	dt := (ma.Sim.Now() - ft.t0).Seconds()
	if dt <= 0 {
		return FioResult{}
	}
	return FioResult{IOPS: float64(ops) / dt}
}
