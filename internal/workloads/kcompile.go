package workloads

import (
	"math/rand"

	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/testbed"
)

// KCompile is the Fig 9 co-runner: an "iterative kernel compile job, which
// stresses the kernel allocator". It churns slab objects and page blocks so
// that the network stack's buffer allocations keep landing on fresh
// physical pages — which is why, under the legacy schemes, the set of pages
// that have *ever* been DMA-mapped grows without bound while the instantly
// mapped set stays flat.
type KCompile struct {
	ma      *testbed.Machine
	cores   []int
	rng     *rand.Rand
	held    []heldObj
	stopped bool
}

type heldObj struct {
	pa    mem.PhysAddr
	page  *mem.Page
	order int
	slab  bool
}

// kcompileQuantum is allocations per scheduling slice.
const kcompileQuantum = 64

// StartKCompile launches the allocator churn on the given cores.
func StartKCompile(ma *testbed.Machine, cores []int, seed int64) *KCompile {
	k := &KCompile{ma: ma, cores: cores, rng: rand.New(rand.NewSource(seed))}
	for i := range cores {
		k.slice(i)
	}
	return k
}

// Stop halts the churn.
func (k *KCompile) Stop() {
	k.stopped = true
	for _, h := range k.held {
		k.release(h)
	}
	k.held = nil
}

func (k *KCompile) release(h heldObj) {
	if h.slab {
		k.ma.Slab.Free(h.pa)
	} else {
		k.ma.Mem.FreePages(h.page, h.order)
	}
}

func (k *KCompile) slice(i int) {
	if k.stopped {
		return
	}
	core := k.ma.Cores[k.cores[i]]
	core.Submit(false, func(t *sim.Task) {
		t.Charge(50_000) // a compiler process chews CPU between allocations
		for n := 0; n < kcompileQuantum; n++ {
			// Hold a working set of ~2k objects; churn beyond it.
			if len(k.held) > 2048 && k.rng.Intn(2) == 0 {
				j := k.rng.Intn(len(k.held))
				k.release(k.held[j])
				k.held[j] = k.held[len(k.held)-1]
				k.held = k.held[:len(k.held)-1]
				continue
			}
			if k.rng.Intn(4) > 0 {
				size := 32 << k.rng.Intn(10) // 32 B .. 16 KiB
				pa, err := k.ma.Slab.Alloc(size, k.rng.Intn(k.ma.Model.NumNodes))
				if err == nil {
					k.held = append(k.held, heldObj{pa: pa, slab: true})
				}
			} else {
				order := k.rng.Intn(4)
				p, err := k.ma.Mem.AllocPages(order, k.rng.Intn(k.ma.Model.NumNodes))
				if err == nil {
					k.held = append(k.held, heldObj{page: p, order: order})
				}
			}
		}
		k.ma.Sim.After(100*sim.Microsecond, func() { k.slice(i) })
	})
}
