package dmaapi

import (
	"fmt"
	"sync"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

// ShadowScheme implements DMA shadow buffers (Markuze et al., ASPLOS'16):
// the device is restricted to a pool of permanently IOMMU-mapped shadow
// pages, and the DMA API copies data between the caller's buffer and a
// shadow buffer on every map/unmap. No IOTLB invalidations ever happen, and
// the device can only ever see DMA data (byte granularity) — but every byte
// moved over the network is copied one extra time, which is the CPU and
// memory-bandwidth tax the paper measures (§4.2).
type ShadowScheme struct {
	mu    sync.Mutex
	mem   *mem.Memory
	u     *iommu.IOMMU
	model *perf.Model
	membw *sim.MemController
	alloc *iova.Allocator

	pools    map[poolKey]*shadowPool
	mappings map[iommu.IOVA]shadowMapping

	// Stats.
	CopiedBytes uint64
	PoolBytes   int64 // permanently mapped shadow memory
	PoolGrowths uint64
}

type poolKey struct {
	dev  int
	perm iommu.Perm
}

// shadowPool is a per-(device, permission) free list of shadow buffers,
// bucketed by power-of-two size class from one page up to 64 KiB.
type shadowPool struct {
	free [5][]shadowBuf // class i holds 4 KiB << i
}

type shadowBuf struct {
	pa   mem.PhysAddr
	v    iommu.IOVA
	size int
}

type shadowMapping struct {
	buf    shadowBuf
	origPA mem.PhysAddr
	size   int // caller's transfer size
	class  int
	key    poolKey
}

// NewShadowScheme builds the shadow-buffer scheme. membw may be nil in
// functional tests.
func NewShadowScheme(m *mem.Memory, u *iommu.IOMMU, model *perf.Model, membw *sim.MemController) *ShadowScheme {
	return &ShadowScheme{
		mem:      m,
		u:        u,
		model:    model,
		membw:    membw,
		alloc:    iova.NewAPIAllocator(),
		pools:    make(map[poolKey]*shadowPool),
		mappings: make(map[iommu.IOVA]shadowMapping),
	}
}

func (*ShadowScheme) Name() string { return "shadow" }

func classFor(size int) (int, error) {
	c := 0
	for sz := mem.PageSize; c < 5; c, sz = c+1, sz*2 {
		if size <= sz {
			return c, nil
		}
	}
	return 0, fmt.Errorf("dmaapi: shadow buffer request %d exceeds 64 KiB", size)
}

// get returns a shadow buffer of the class covering size, growing the pool
// (allocate pages, map them permanently) when the free list is empty.
func (s *ShadowScheme) get(c perf.Charger, key poolKey, size int) (shadowBuf, int, error) {
	class, err := classFor(size)
	if err != nil {
		return shadowBuf{}, 0, err
	}
	pool := s.pools[key]
	if pool == nil {
		pool = &shadowPool{}
		s.pools[key] = pool
	}
	if n := len(pool.free[class]); n > 0 {
		buf := pool.free[class][n-1]
		pool.free[class] = pool.free[class][:n-1]
		return buf, class, nil
	}
	// Grow: allocate an order-class block and map it permanently.
	page, err := s.mem.AllocPages(class, 0)
	if err != nil {
		return shadowBuf{}, 0, err
	}
	bytes := mem.PageSize << class
	pa := page.PFN().Addr()
	s.mem.Zero(pa, bytes)
	v, err := s.alloc.Alloc(bytes)
	if err != nil {
		s.mem.FreePages(page, class)
		return shadowBuf{}, 0, err
	}
	if err := s.u.Map(key.dev, v, pa, bytes, key.perm); err != nil {
		s.alloc.Free(v)
		s.mem.FreePages(page, class)
		return shadowBuf{}, 0, err
	}
	s.PoolBytes += int64(bytes)
	s.PoolGrowths++
	perf.Charge(c, s.model.MapCycles) // one-time mapping cost
	return shadowBuf{pa: pa, v: v, size: bytes}, class, nil
}

func (s *ShadowScheme) Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perf.Charge(c, s.model.ShadowMgmtCycles)
	key := poolKey{dev: dev, perm: dir.Perm()}
	buf, class, err := s.get(c, key, size)
	if err != nil {
		return 0, err
	}
	if dir == ToDevice || dir == Bidirectional {
		// Stage the payload into the shadow buffer: the extra copy.
		src := s.mem.Bytes(pa, size)
		s.mem.Write(buf.pa, src)
		s.CopiedBytes += uint64(size)
		perf.CPUCopy(c, s.membw, size, s.model.ShadowTXCopyCyclesPerByte, s.model.ShadowCopyMemFraction)
	}
	s.mappings[buf.v] = shadowMapping{buf: buf, origPA: pa, size: size, class: class, key: key}
	return buf.v, nil
}

func (s *ShadowScheme) Unmap(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	perf.Charge(c, s.model.ShadowMgmtCycles)
	m, ok := s.mappings[v]
	if !ok {
		return fmt.Errorf("dmaapi: shadow unmap of unknown iova %#x", v)
	}
	delete(s.mappings, v)
	if dir == FromDevice || dir == Bidirectional {
		// Copy the received data out of the shadow into the caller's
		// buffer: the RX-side extra copy.
		src := s.mem.Bytes(m.buf.pa, m.size)
		s.mem.Write(m.origPA, src)
		s.CopiedBytes += uint64(m.size)
		perf.CPUCopy(c, s.membw, m.size, s.model.ColdCopyCyclesPerByte, s.model.ShadowCopyMemFraction)
	}
	// Recycle the shadow buffer; its mapping stays alive forever, which
	// is the whole point: no IOTLB invalidation is ever needed.
	s.pools[m.key].free[m.class] = append(s.pools[m.key].free[m.class], m.buf)
	return nil
}

// LiveMappings reports outstanding shadow mappings (tests).
func (s *ShadowScheme) LiveMappings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mappings)
}
