package dmaapi

import (
	"fmt"
	"sort"
	"sync"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// OffScheme is iommu-off: domains run in passthrough, Map is the identity
// (DMA address == physical address) and Unmap does nothing. No protection.
type OffScheme struct{}

// NewOffScheme puts every attached device the caller registers later into
// passthrough; AttachPassthrough must be used for each device.
func NewOffScheme() *OffScheme { return &OffScheme{} }

func (*OffScheme) Name() string { return "iommu-off" }

func (*OffScheme) Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	return iommu.IOVA(pa), nil
}

func (*OffScheme) Unmap(perf.Charger, int, iommu.IOVA, int, Direction) error { return nil }

// mappingScheme is the shared machinery of strict and deferred: a real IOVA
// allocator plus IOMMU page-table updates on every map/unmap. What differs
// is invalidation policy.
type mappingScheme struct {
	mu    sync.Mutex
	u     *iommu.IOMMU
	model *perf.Model
	alloc *iova.Allocator

	// invLock is the invalidation-queue spinlock (the strict-mode
	// bottleneck of §4.1). In strict mode the core keeps it held while
	// the hardware executes the invalidation command, so the lock also
	// serializes the command stream.
	invLock *sim.SpinLock

	// Observability (nil-safe handles; see SetStats).
	mapCyc   *stats.FloatCounter
	unmapCyc *stats.FloatCounter
}

// SetStats attributes the cycles this scheme charges to perf cost
// categories, so snapshots break overhead down by map vs. unmap work.
func (s *mappingScheme) SetStats(r *stats.Registry) {
	s.mapCyc = r.FloatCounter("perf", "cycles_dma_map")
	s.unmapCyc = r.FloatCounter("perf", "cycles_dma_unmap")
}

// FrameBytes is the mapping granularity of the dynamic schemes: the mlx5
// driver maps/unmaps MTU-sized (9000 B, jumbo) frame buffers, so one 64 KiB
// LRO segment costs ~8 map/unmap/invalidate operations. The reproduction
// keeps one *functional* mapping per buffer but bills the per-frame costs,
// which is what makes strict collapse at multi-gigabit rates while the
// same scheme keeps up with NVMe's one-mapping-per-command pattern (§6.5).
const FrameBytes = 9000

// frames returns the number of driver mapping operations a buffer costs:
// the driver maps MTU-sized frame buffers on receive, and TSO transmit
// segments go down as scatter/gather lists with one entry per frame-sized
// frag — either way one 64 KiB buffer is ~8 operations, while sub-frame
// buffers (NVMe blocks, memcached chunks) are one.
func frames(size int, dir Direction) int {
	n := (size + FrameBytes - 1) / FrameBytes
	if n < 1 {
		n = 1
	}
	return n
}

func newMappingScheme(u *iommu.IOMMU, model *perf.Model) *mappingScheme {
	return &mappingScheme{
		u:       u,
		model:   model,
		alloc:   iova.NewAPIAllocator(),
		invLock: &sim.SpinLock{},
	}
}

func (s *mappingScheme) mapCommon(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	perf.ChargeCat(c, s.mapCyc, s.model.MapCycles*float64(frames(size, dir)))
	// Page-align the mapping: the IOMMU maps whole pages, which is why
	// DMA-API protection is only page-granular (§4: a sub-page buffer
	// exposes its page neighbours).
	off := pa & mem.PhysAddr(mem.PageMask)
	base := pa - off
	span := int(off) + size
	v, err := s.alloc.Alloc(span)
	if err != nil {
		return 0, err
	}
	if err := s.u.Map(dev, v, base, span, dir.Perm()); err != nil {
		s.alloc.Free(v)
		return 0, err
	}
	return v + iommu.IOVA(off), nil
}

func (s *mappingScheme) unmapCommon(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) (base iommu.IOVA, span int, err error) {
	perf.ChargeCat(c, s.unmapCyc, s.model.UnmapCycles*float64(frames(size, dir)))
	off := v & iommu.IOVA(mem.PageMask)
	base = v - off
	span = s.alloc.SizeOf(base)
	if span == 0 {
		return 0, 0, fmt.Errorf("dmaapi: unmap of unknown iova %#x", v)
	}
	if int(off)+size > span {
		return 0, 0, fmt.Errorf("dmaapi: unmap size %d exceeds mapping span %d", size, span)
	}
	if err := s.u.Unmap(dev, base, span); err != nil {
		return 0, 0, err
	}
	return base, span, nil
}

// StrictScheme synchronously invalidates the IOTLB on every unmap: the
// device provably cannot touch the buffer afterwards, at the price of the
// invalidation latency and the shared lock on every DMA (§4.1).
type StrictScheme struct {
	*mappingScheme
}

// NewStrictScheme builds strict protection over the IOMMU.
func NewStrictScheme(u *iommu.IOMMU, model *perf.Model) *StrictScheme {
	return &StrictScheme{newMappingScheme(u, model)}
}

func (*StrictScheme) Name() string { return "strict" }

func (s *StrictScheme) Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mapCommon(c, dev, pa, size, dir)
}

func (s *StrictScheme) Unmap(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	base, span, err := s.unmapCommon(c, dev, v, size, dir)
	if err != nil {
		return err
	}
	// Queue one invalidation per mapped frame under the global lock,
	// holding the lock until the hardware executes each command
	// ("waiting for the invalidation to complete", §4.1) — the lock
	// serializes both the CPU bookkeeping and the hardware latency.
	// Under multi-core contention the hold inflates with the lock's
	// utilization (cache-line bouncing between sockets), which is what
	// throttles strict at 100 Gb/s networking rates (§4.1, Fig 5) while
	// a 12-thread NVMe workload still keeps up (Fig 11).
	if task, ok := c.(*sim.Task); ok && task != nil {
		for f := 0; f < frames(span, dir); f++ {
			base := task.Core().CyclesToTime(s.model.InvLockHoldCycles) + s.model.IOTLBInvLatency
			rho := s.invLock.Utilization(task.Now())
			hold := base + sim.Time(float64(base)*s.model.InvLockCongestionFactor*rho)
			s.invLock.LockFor(task, hold)
		}
	}
	// Strict: submit the invalidation and synchronously drain the queue
	// (the lock hold above models the wait).
	if err := s.u.InvQ().Submit(iommu.Command{Kind: iommu.InvRange, Dev: dev, Base: base, Size: span}); err != nil {
		return fmt.Errorf("dmaapi: strict invalidation submit: %w", err)
	}
	s.u.InvQ().DrainRetry(c, s.model.ITETimeout)
	s.alloc.Free(base)
	return nil
}

// DeferredScheme batches IOTLB invalidations: unmap clears the page tables
// and queues the flush, which runs after DeferredBatchSize unmaps or
// DeferredFlushInterval, whichever comes first. Until the flush, the device
// can still use stale IOTLB entries and the IOVA range is not reused —
// the Linux-default trade of security for performance (§4.1).
type DeferredScheme struct {
	*mappingScheme
	se *sim.Engine

	pending   []deferredEntry
	timerSet  bool
	Flushes   uint64
	MaxWindow int // high-water mark of batched entries, for tests
}

type deferredEntry struct {
	dev  int
	base iommu.IOVA
	span int
}

// NewDeferredScheme builds Linux's default protection mode.
func NewDeferredScheme(se *sim.Engine, u *iommu.IOMMU, model *perf.Model) *DeferredScheme {
	return &DeferredScheme{mappingScheme: newMappingScheme(u, model), se: se}
}

func (*DeferredScheme) Name() string { return "deferred" }

func (s *DeferredScheme) Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mapCommon(c, dev, pa, size, dir)
}

func (s *DeferredScheme) Unmap(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	base, span, err := s.unmapCommon(c, dev, v, size, dir)
	if err != nil {
		return err
	}
	// One batch entry per frame, as the driver unmaps frame buffers.
	perf.Charge(c, s.model.DeferredEnqueueCycles*float64(frames(span, dir)))
	for f := frames(span, dir); f > 1; f-- {
		s.pending = append(s.pending, deferredEntry{dev: dev})
	}
	s.pending = append(s.pending, deferredEntry{dev: dev, base: base, span: span})
	if len(s.pending) > s.MaxWindow {
		s.MaxWindow = len(s.pending)
	}
	if len(s.pending) >= s.model.DeferredBatchSize {
		s.flushLocked(c)
		return nil
	}
	if !s.timerSet && s.se != nil {
		s.timerSet = true
		s.se.After(s.model.DeferredFlushInterval, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.timerSet = false
			s.flushLocked(nil)
		})
	}
	return nil
}

// Flush forces the batched invalidations to run now (tests and shutdown).
func (s *DeferredScheme) Flush(c perf.Charger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked(c)
}

// ResetDevice implements dmaapi.DeviceResetter: a device reset flushes the
// whole batch window now. The window may hold entries for other devices
// too; flushing them early is always safe (it only narrows their
// vulnerability window) and keeps the batch bookkeeping simple.
func (s *DeferredScheme) ResetDevice(c perf.Charger, dev int) {
	s.Flush(c)
}

// PendingInvalidations reports the current window size: unmapped buffers
// the device can still reach.
func (s *DeferredScheme) PendingInvalidations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

func (s *DeferredScheme) flushLocked(c perf.Charger) {
	if len(s.pending) == 0 {
		return
	}
	perf.Charge(c, s.model.DeferredFlushCycles)
	// One batched hardware command invalidates the affected domains;
	// deferred does not wait for its completion.
	if task, ok := c.(*sim.Task); ok && task != nil {
		s.invLock.Lock(task, s.model.InvLockHoldCycles)
	}
	devs := map[int]bool{}
	var order []int
	for _, e := range s.pending {
		if !devs[e.dev] {
			devs[e.dev] = true
			order = append(order, e.dev)
		}
	}
	sort.Ints(order) // invalidation order is simulation-visible; keep it deterministic
	for _, dev := range order {
		if err := s.u.InvQ().Submit(iommu.Command{Kind: iommu.InvDomain, Dev: dev}); err != nil {
			// Domain invalidations are always well-formed and a full
			// queue drains synchronously, so a rejection here is a bug.
			panic("dmaapi: deferred invalidation submit failed: " + err.Error())
		}
	}
	s.u.InvQ().DrainRetry(c, s.model.ITETimeout)
	// Only now do the IOVA ranges become reusable. (Placeholder frame
	// entries carry no base.)
	for _, e := range s.pending {
		if e.base != 0 {
			s.alloc.Free(e.base)
		}
	}
	s.pending = s.pending[:0]
	s.Flushes++
}
