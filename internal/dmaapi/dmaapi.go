// Package dmaapi implements the kernel DMA mapping API (dma_map/dma_unmap)
// together with the four baseline IOMMU protection schemes the paper
// evaluates against (Table 1):
//
//   - off:      IOMMU in passthrough; no protection, no overhead.
//   - strict:   unmap removes the mapping and synchronously invalidates the
//     IOTLB — secure at page granularity but slow (ATC'15 [34]).
//   - deferred: unmap batches invalidations (250 entries or 10 ms),
//     leaving a vulnerability window — Linux's default.
//   - shadow:   DMA is restricted to a permanently mapped shadow pool and
//     every transfer is copied through it (ASPLOS'16 [29]) —
//     full byte-granularity protection, paid in copies.
//
// DAMN itself is not a scheme here: it interposes on this API (§5.3 of the
// paper) through the Interposer hook and falls back to whichever scheme is
// configured for non-DAMN buffers.
package dmaapi

import (
	"fmt"
	"sync"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Direction of a DMA transfer, as in the kernel's dma_data_direction.
type Direction int

const (
	// ToDevice: the device reads the buffer (transmit).
	ToDevice Direction = iota
	// FromDevice: the device writes the buffer (receive).
	FromDevice
	// Bidirectional transfers.
	Bidirectional
)

func (d Direction) String() string {
	switch d {
	case ToDevice:
		return "to-device"
	case FromDevice:
		return "from-device"
	default:
		return "bidirectional"
	}
}

// Perm returns the IOMMU permission a direction requires.
func (d Direction) Perm() iommu.Perm {
	switch d {
	case ToDevice:
		return iommu.PermRead
	case FromDevice:
		return iommu.PermWrite
	default:
		return iommu.PermRW
	}
}

// Interposer lets a higher-level allocator (DAMN) intercept map/unmap calls
// for buffers it owns, per §5.3: the networking stack keeps calling the
// standard DMA API, and DAMN short-circuits it for its own buffers.
type Interposer interface {
	// MapHook returns (iova, true) if the buffer at pa is owned by the
	// interposer and already has a live mapping; (0, false) otherwise.
	MapHook(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, bool)
	// UnmapHook returns true if the IOVA belongs to the interposer (in
	// which case nothing needs tearing down).
	UnmapHook(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) bool
}

// Scheme is one IOMMU protection policy plugged into the Engine.
type Scheme interface {
	Name() string
	// Map makes [pa, pa+size) DMAable by dev and returns the DMA address.
	Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error)
	// Unmap revokes a mapping returned by Map.
	Unmap(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) error
}

// Engine is the DMA API entry point drivers call. It tracks the Fig 9
// page-exposure statistics and dispatches to the interposer or the scheme.
type Engine struct {
	Sim    *sim.Engine
	Mem    *mem.Memory
	IOMMU  *iommu.IOMMU
	Model  *perf.Model
	scheme Scheme

	mu         sync.Mutex
	interposer Interposer
	inj        *faults.Injector

	// everDMA tracks distinct physical frames that have ever been
	// exposed to a device through this API (Fig 9's monotone curve).
	everDMA      []uint64
	everDMACount int64

	// MapCalls / UnmapCalls count API operations.
	MapCalls   uint64
	UnmapCalls uint64

	// Observability (nil-safe handles; see SetStats).
	mapC     *stats.Counter
	unmapC   *stats.Counter
	ipMapC   *stats.Counter
	ipUnmapC *stats.Counter
	sgMapC   *stats.Counter
	sgUnmapC *stats.Counter
	everDMAG *stats.Gauge
}

// statsSink is implemented by schemes that export their own metrics.
type statsSink interface {
	SetStats(r *stats.Registry)
}

// SetStats attaches a metrics registry. Map/unmap counters carry the active
// scheme's name so runs under different protection schemes stay
// distinguishable in merged snapshots; interposed operations (DAMN fast
// path) are counted separately because they bypass the scheme entirely.
func (e *Engine) SetStats(r *stats.Registry) {
	name := e.scheme.Name()
	e.mapC = r.Counter("dmaapi", "maps_"+name)
	e.unmapC = r.Counter("dmaapi", "unmaps_"+name)
	e.ipMapC = r.Counter("dmaapi", "maps_interposed")
	e.ipUnmapC = r.Counter("dmaapi", "unmaps_interposed")
	e.sgMapC = r.Counter("dmaapi", "sg_map_entries")
	e.sgUnmapC = r.Counter("dmaapi", "sg_unmap_entries")
	e.everDMAG = r.Gauge("dmaapi", "ever_dma_pages")
	if s, ok := e.scheme.(statsSink); ok {
		s.SetStats(r)
	}
}

// NewEngine builds the DMA API over the given machine pieces.
func NewEngine(se *sim.Engine, m *mem.Memory, u *iommu.IOMMU, model *perf.Model, scheme Scheme) *Engine {
	return &Engine{
		Sim:     se,
		Mem:     m,
		IOMMU:   u,
		Model:   model,
		scheme:  scheme,
		everDMA: make([]uint64, (m.NumPages()+63)/64),
	}
}

// Scheme returns the active protection scheme.
func (e *Engine) Scheme() Scheme { return e.scheme }

// SetInterposer registers the DAMN hook.
func (e *Engine) SetInterposer(i Interposer) { e.interposer = i }

// SetFaults attaches the machine's fault-injection plane: injected IOVA
// exhaustion makes Map fail with an error wrapping iova.ErrExhausted, the
// same failure a genuinely full address space produces.
func (e *Engine) SetFaults(inj *faults.Injector) { e.inj = inj }

// Map is dma_map: it passes ownership of [pa, pa+size) to the device and
// returns the DMA address the driver must program into the device.
func (e *Engine) Map(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir Direction) (iommu.IOVA, error) {
	if size <= 0 {
		return 0, fmt.Errorf("dmaapi: bad map size %d", size)
	}
	e.MapCalls++
	e.recordExposure(pa, size)
	if e.inj.Should(faults.IOVAExhaust) {
		return 0, fmt.Errorf("dmaapi: %w (injected) mapping %d bytes for dev %d",
			iova.ErrExhausted, size, dev)
	}
	if ip := e.interposer; ip != nil {
		if v, ok := ip.MapHook(c, dev, pa, size, dir); ok {
			e.ipMapC.Inc()
			return v, nil
		}
	}
	e.mapC.Inc()
	return e.scheme.Map(c, dev, pa, size, dir)
}

// Unmap is dma_unmap: the driver passes back the DMA address it received
// from Map once the device is done with the buffer.
func (e *Engine) Unmap(c perf.Charger, dev int, v iommu.IOVA, size int, dir Direction) error {
	e.UnmapCalls++
	// An injected unmap failure models dma_unmap detecting inconsistent
	// mapping state (e.g. a function-level reset tore the domain down under
	// the driver). It fires before the interposer so DAMN buffers hit the
	// same driver error path — for them the failure is spurious, which is
	// exactly what the driver's release-not-leak handling relies on.
	if e.inj.Should(faults.UnmapFail) {
		return fmt.Errorf("dmaapi: unmap failed (injected) iova=%#x dev=%d", v, dev)
	}
	if ip := e.interposer; ip != nil {
		if ip.UnmapHook(c, dev, v, size, dir) {
			e.ipUnmapC.Inc()
			return nil
		}
	}
	e.unmapC.Inc()
	return e.scheme.Unmap(c, dev, v, size, dir)
}

// DeviceResetter is implemented by schemes that hold per-device state a
// function-level reset must retire (deferred's batched invalidations, whose
// IOVA ranges only recycle at flush time).
type DeviceResetter interface {
	ResetDevice(c perf.Charger, dev int)
}

// ResetDevice retires scheme state referencing the device's (dying) domain.
// The recovery supervisor calls it during quarantine, before the domain is
// detached, so that batched unmaps flush while their invalidations can
// still be attributed and IOVA allocator slots come back for the rebuilt
// device.
func (e *Engine) ResetDevice(c perf.Charger, dev int) {
	if r, ok := e.scheme.(DeviceResetter); ok {
		r.ResetDevice(c, dev)
	}
}

// recordExposure marks the frames of [pa, pa+size) as having held DMA data.
func (e *Engine) recordExposure(pa mem.PhysAddr, size int) {
	first := mem.PFNOf(pa)
	last := mem.PFNOf(pa + mem.PhysAddr(size-1))
	for pfn := first; pfn <= last; pfn++ {
		w, b := pfn/64, pfn%64
		if e.everDMA[w]&(1<<b) == 0 {
			e.everDMA[w] |= 1 << b
			e.everDMACount++
		}
	}
	e.everDMAG.Set(e.everDMACount)
}

// EverDMAPages returns how many distinct physical pages have ever been
// handed to a device (Fig 9, "ever mapped").
func (e *Engine) EverDMAPages() int64 { return e.everDMACount }
