package dmaapi

import (
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
)

func sgFixture(t *testing.T, scheme func(*machine) Scheme) (*machine, *Engine, []SGEntry) {
	t.Helper()
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, scheme(ma))
	// Three discontiguous pieces.
	var sg []SGEntry
	for i := 0; i < 3; i++ {
		pa := ma.allocBuf(t, 0)
		ma.mem.Write(pa, []byte{byte('A' + i)})
		sg = append(sg, SGEntry{PA: pa, Len: 1000})
	}
	return ma, e, sg
}

func TestMapSGStrict(t *testing.T) {
	ma, e, sg := sgFixture(t, func(ma *machine) Scheme { return NewStrictScheme(ma.iommu, ma.model) })
	if err := e.MapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	// Every entry individually DMAable, with its own contents.
	for i := range sg {
		got := make([]byte, 1)
		if _, err := ma.iommu.DMARead(dev, sg[i].DMAAddr, got); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got[0] != byte('A'+i) {
			t.Fatalf("entry %d read %q", i, got)
		}
	}
	if err := e.UnmapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	for i := range sg {
		if sg[i].DMAAddr != 0 {
			t.Fatalf("entry %d DMAAddr not cleared", i)
		}
	}
	// Strict: everything revoked immediately.
	if got := ma.iommu.MappedPages(dev); got != 0 {
		t.Fatalf("%d pages still mapped after UnmapSG", got)
	}
}

func TestMapSGShadowCopies(t *testing.T) {
	ma, e, sg := sgFixture(t, func(ma *machine) Scheme {
		return NewShadowScheme(ma.mem, ma.iommu, ma.model, nil)
	})
	if err := e.MapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	// The device sees staged copies, not the originals.
	for i := range sg {
		if sg[i].DMAAddr == iommu.IOVA(sg[i].PA) {
			t.Fatalf("entry %d exposes the original buffer", i)
		}
		got := make([]byte, 1)
		if _, err := ma.iommu.DMARead(dev, sg[i].DMAAddr, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte('A'+i) {
			t.Fatalf("entry %d shadow holds %q", i, got)
		}
	}
	if err := e.UnmapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
}

func TestMapSGRollsBackOnFailure(t *testing.T) {
	ma, e, sg := sgFixture(t, func(ma *machine) Scheme { return NewStrictScheme(ma.iommu, ma.model) })
	sg[2].Len = 0 // invalid tail entry
	if err := e.MapSG(nil, dev, sg, ToDevice); err == nil {
		t.Fatal("invalid list accepted")
	}
	// The first two entries must have been rolled back.
	if got := ma.iommu.MappedPages(dev); got != 0 {
		t.Fatalf("%d pages leaked by rollback", got)
	}
	for i := range sg {
		if sg[i].DMAAddr != 0 {
			t.Fatalf("entry %d retains a DMA address after rollback", i)
		}
	}
}

func TestMapSGInterposedByDamn(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	fake := &fakeInterposer{iova: iommu.IOVA(1) << 47}
	e.SetInterposer(fake)
	pa := ma.allocBuf(t, 0)
	sg := []SGEntry{{PA: pa, Len: 512}}
	if err := e.MapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	if sg[0].DMAAddr != fake.iova {
		t.Fatalf("interposer bypassed: %#x", sg[0].DMAAddr)
	}
	if err := e.UnmapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	if ma.iommu.Mappings != 0 {
		t.Fatal("scheme mapped despite interposer")
	}
}

func TestMapSGPageGranularityExposure(t *testing.T) {
	// Scatterlists inherit the page-granularity weakness of the dynamic
	// schemes: sub-page entries expose their page neighbours.
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewDeferredScheme(ma.se, ma.iommu, ma.model))
	slab := mem.NewSlab(ma.mem)
	a, _ := slab.Alloc(256, 0)
	b, _ := slab.Alloc(256, 0)
	ma.mem.Write(b, []byte("NEIGHBOUR-SECRET"))
	sg := []SGEntry{{PA: a, Len: 256}}
	if err := e.MapSG(nil, dev, sg, ToDevice); err != nil {
		t.Fatal(err)
	}
	probe := sg[0].DMAAddr - iommu.IOVA(a-b)
	stolen := make([]byte, 16)
	if _, err := ma.iommu.DMARead(dev, probe, stolen); err != nil {
		t.Fatal("expected page-granularity exposure")
	}
	if string(stolen) != "NEIGHBOUR-SECRET" {
		t.Fatalf("read %q", stolen)
	}
	e.UnmapSG(nil, dev, sg, ToDevice)
}
