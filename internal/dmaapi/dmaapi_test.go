package dmaapi

import (
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/sim"
)

type machine struct {
	se    *sim.Engine
	mem   *mem.Memory
	iommu *iommu.IOMMU
	model *perf.Model
}

func newMachine(t *testing.T) *machine {
	t.Helper()
	m, err := mem.New(mem.Config{TotalBytes: 64 << 20, NUMANodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &machine{
		se:    sim.NewEngine(1),
		mem:   m,
		iommu: iommu.New(m),
		model: perf.Default28Core(),
	}
}

func (ma *machine) allocBuf(t *testing.T, order int) mem.PhysAddr {
	t.Helper()
	p, err := ma.mem.AllocPages(order, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p.PFN().Addr()
}

const dev = 7

func TestOffSchemeIdentity(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev).Passthrough = true
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewOffScheme())
	pa := ma.allocBuf(t, 0)
	v, err := e.Map(nil, dev, pa, 1000, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if v != iommu.IOVA(pa) {
		t.Fatalf("off-scheme iova %#x != pa %#x", v, pa)
	}
	// Device can DMA anywhere — including memory never mapped.
	other := ma.allocBuf(t, 0)
	if _, err := ma.iommu.DMAWrite(dev, iommu.IOVA(other), []byte("rogue")); err != nil {
		t.Fatal("passthrough should allow arbitrary DMA (that is the insecurity)")
	}
	if err := e.Unmap(nil, dev, v, 1000, FromDevice); err != nil {
		t.Fatal(err)
	}
}

func TestStrictMapUnmapRoundTrip(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	pa := ma.allocBuf(t, 1)
	msg := []byte("strict payload")
	ma.mem.Write(pa, msg)

	v, err := e.Map(nil, dev, pa, len(msg), ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := ma.iommu.DMARead(dev, v, got); err != nil {
		t.Fatalf("mapped DMA failed: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("DMA read %q", got)
	}
	if err := e.Unmap(nil, dev, v, len(msg), ToDevice); err != nil {
		t.Fatal(err)
	}
	// Strict: the device must be locked out immediately after unmap.
	if _, err := ma.iommu.DMARead(dev, v, got); err == nil {
		t.Fatal("strict unmap left the buffer DMAable")
	}
}

func TestStrictSubPageExposure(t *testing.T) {
	// The partial-protection flaw (§4.1): mapping a sub-page buffer
	// exposes other data on the same page.
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	slab := mem.NewSlab(ma.mem)
	bufPA, err := slab.Alloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	secretPA, err := slab.Alloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PFNOf(bufPA) != mem.PFNOf(secretPA) {
		t.Skip("slab did not co-locate (unexpected)")
	}
	secret := []byte("co-located secret")
	ma.mem.Write(secretPA, secret)

	v, err := e.Map(nil, dev, bufPA, 256, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	// The device reads the *secret* through the page-granularity mapping.
	stolen := make([]byte, len(secret))
	secretIOVA := v - iommu.IOVA(bufPA-secretPA)
	if _, err := ma.iommu.DMARead(dev, secretIOVA, stolen); err != nil {
		t.Fatal("expected page-granularity exposure to allow the read")
	}
	if string(stolen) != string(secret) {
		t.Fatalf("stolen %q", stolen)
	}
}

func TestDeferredWindowThenFlush(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	s := NewDeferredScheme(ma.se, ma.iommu, ma.model)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, s)
	pa := ma.allocBuf(t, 0)
	v, err := e.Map(nil, dev, pa, 512, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the IOTLB with a device write.
	if _, err := ma.iommu.DMAWrite(dev, v, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.Unmap(nil, dev, v, 512, FromDevice); err != nil {
		t.Fatal(err)
	}
	if s.PendingInvalidations() != 1 {
		t.Fatalf("pending = %d", s.PendingInvalidations())
	}
	// Vulnerability window: the write still lands.
	if _, err := ma.iommu.DMAWrite(dev, v, []byte("tocttou!")); err != nil {
		t.Fatal("expected the deferred window to allow the write")
	}
	s.Flush(nil)
	if s.PendingInvalidations() != 0 {
		t.Fatal("flush did not drain")
	}
	if _, err := ma.iommu.DMAWrite(dev, v, []byte("late")); err == nil {
		t.Fatal("post-flush DMA should fault")
	}
}

func TestDeferredBatchSizeTriggersFlush(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	ma.model.DeferredBatchSize = 10
	s := NewDeferredScheme(ma.se, ma.iommu, ma.model)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, s)
	for i := 0; i < 10; i++ {
		pa := ma.allocBuf(t, 0)
		v, err := e.Map(nil, dev, pa, 512, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Unmap(nil, dev, v, 512, FromDevice); err != nil {
			t.Fatal(err)
		}
	}
	if s.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1 (batch size reached)", s.Flushes)
	}
	if s.PendingInvalidations() != 0 {
		t.Fatal("pending should be empty after batch flush")
	}
}

func TestDeferredTimerFlush(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	s := NewDeferredScheme(ma.se, ma.iommu, ma.model)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, s)
	pa := ma.allocBuf(t, 0)
	v, _ := e.Map(nil, dev, pa, 512, FromDevice)
	e.Unmap(nil, dev, v, 512, FromDevice)
	if s.Flushes != 0 {
		t.Fatal("premature flush")
	}
	ma.se.Run(11 * sim.Millisecond) // past the 10 ms timer
	if s.Flushes != 1 {
		t.Fatalf("timer flush did not run; Flushes = %d", s.Flushes)
	}
}

func TestDeferredIOVANotReusedInWindow(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	s := NewDeferredScheme(ma.se, ma.iommu, ma.model)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, s)
	pa := ma.allocBuf(t, 0)
	v1, _ := e.Map(nil, dev, pa, 512, FromDevice)
	e.Unmap(nil, dev, v1, 512, FromDevice)
	// While the invalidation is pending, the same IOVA must not be
	// handed to a new mapping (that would corrupt the new buffer).
	pa2 := ma.allocBuf(t, 0)
	v2, _ := e.Map(nil, dev, pa2, 512, FromDevice)
	if v1 == v2 {
		t.Fatal("IOVA reused during the invalidation window")
	}
	s.Flush(nil)
}

func TestStrictChargesInvalidationCosts(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	core := sim.NewCore(ma.se, 0, 0, ma.model.CoreHz)
	pa := ma.allocBuf(t, 0)
	var elapsed sim.Time
	core.Submit(false, func(task *sim.Task) {
		v, err := e.Map(task, dev, pa, 512, FromDevice)
		if err != nil {
			t.Error(err)
			return
		}
		if err := e.Unmap(task, dev, v, 512, FromDevice); err != nil {
			t.Error(err)
		}
		elapsed = task.Elapsed()
	})
	ma.se.RunUntilIdle()
	// Must include at least the hardware invalidation latency.
	if elapsed < ma.model.IOTLBInvLatency {
		t.Fatalf("strict unmap cost %v < hardware latency %v", elapsed, ma.model.IOTLBInvLatency)
	}
}

func TestShadowCopiesThroughPool(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	sh := NewShadowScheme(ma.mem, ma.iommu, ma.model, nil)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, sh)

	// TX: payload must be staged into the shadow pool; the device reads
	// the copy, not the original.
	pa := ma.allocBuf(t, 0)
	msg := []byte("shadow tx payload")
	ma.mem.Write(pa, msg)
	v, err := e.Map(nil, dev, pa, len(msg), ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if v == iommu.IOVA(pa) {
		t.Fatal("shadow map must not expose the original buffer")
	}
	got := make([]byte, len(msg))
	if _, err := ma.iommu.DMARead(dev, v, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("device read %q through shadow", got)
	}
	// Mutating the original after Map must NOT be visible to the device
	// (the device only sees the staged copy).
	ma.mem.Write(pa, []byte("MUTATED AFTERWARDS"))
	if _, err := ma.iommu.DMARead(dev, v, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatal("device observed post-map mutation; shadow isolation broken")
	}
	if err := e.Unmap(nil, dev, v, len(msg), ToDevice); err != nil {
		t.Fatal(err)
	}

	// RX: device writes into the shadow; unmap copies back.
	rxPA := ma.allocBuf(t, 0)
	v2, err := e.Map(nil, dev, rxPA, 64, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.iommu.DMAWrite(dev, v2, []byte("rx data")); err != nil {
		t.Fatal(err)
	}
	if err := e.Unmap(nil, dev, v2, 64, FromDevice); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 7)
	ma.mem.Read(rxPA, back)
	if string(back) != "rx data" {
		t.Fatalf("unmap copy-back gave %q", back)
	}
	if sh.CopiedBytes == 0 {
		t.Fatal("no bytes accounted as copied")
	}
}

func TestShadowPoolRecycles(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	sh := NewShadowScheme(ma.mem, ma.iommu, ma.model, nil)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, sh)
	pa := ma.allocBuf(t, 0)
	for i := 0; i < 100; i++ {
		v, err := e.Map(nil, dev, pa, 2048, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Unmap(nil, dev, v, 2048, FromDevice); err != nil {
			t.Fatal(err)
		}
	}
	if sh.PoolGrowths != 1 {
		t.Fatalf("PoolGrowths = %d, want 1 (buffer should be recycled)", sh.PoolGrowths)
	}
	// Mappings are permanent: zero unmappings in the IOMMU.
	if ma.iommu.Unmappings != 0 {
		t.Fatalf("shadow performed %d IOMMU unmaps; should be zero", ma.iommu.Unmappings)
	}
	if ma.iommu.TLB().FlushCommands != 0 {
		t.Fatal("shadow should never invalidate the IOTLB")
	}
}

func TestShadowNeverExposesKernelMemory(t *testing.T) {
	// Byte granularity: the device sees only the shadow pool, so memory
	// co-located with the original buffer is unreachable.
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	sh := NewShadowScheme(ma.mem, ma.iommu, ma.model, nil)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, sh)
	slab := mem.NewSlab(ma.mem)
	bufPA, _ := slab.Alloc(256, 0)
	secretPA, _ := slab.Alloc(256, 0)
	ma.mem.Write(secretPA, []byte("secret"))
	v, err := e.Map(nil, dev, bufPA, 256, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker knows the co-location offset; through shadow buffers
	// the neighbouring IOVA either faults or hits other shadow data —
	// never the secret.
	stolen := make([]byte, 6)
	probe := v - iommu.IOVA(bufPA-secretPA)
	if _, err := ma.iommu.DMARead(dev, probe, stolen); err == nil {
		if string(stolen) == "secret" {
			t.Fatal("shadow scheme exposed co-located kernel data")
		}
	}
}

func TestShadowRejectsOversizedBuffers(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	sh := NewShadowScheme(ma.mem, ma.iommu, ma.model, nil)
	pa := ma.allocBuf(t, 0)
	if _, err := sh.Map(nil, dev, pa, 128<<10, ToDevice); err == nil {
		t.Fatal("oversized shadow map should fail")
	}
}

func TestEngineEverDMAPagesMonotone(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	s := NewDeferredScheme(ma.se, ma.iommu, ma.model)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, s)
	// Map 5 distinct pages, then re-map the first one: ever-count is 5.
	var first mem.PhysAddr
	for i := 0; i < 5; i++ {
		pa := ma.allocBuf(t, 0)
		if i == 0 {
			first = pa
		}
		v, _ := e.Map(nil, dev, pa, mem.PageSize, FromDevice)
		e.Unmap(nil, dev, v, mem.PageSize, FromDevice)
	}
	if e.EverDMAPages() != 5 {
		t.Fatalf("EverDMAPages = %d, want 5", e.EverDMAPages())
	}
	v, _ := e.Map(nil, dev, first, mem.PageSize, FromDevice)
	e.Unmap(nil, dev, v, mem.PageSize, FromDevice)
	if e.EverDMAPages() != 5 {
		t.Fatalf("re-mapping an old page changed the ever count: %d", e.EverDMAPages())
	}
}

func TestInterposerShortCircuits(t *testing.T) {
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	fake := &fakeInterposer{iova: 0x8000_1234_0000}
	e.SetInterposer(fake)
	pa := ma.allocBuf(t, 0)
	v, err := e.Map(nil, dev, pa, 512, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if v != fake.iova {
		t.Fatalf("interposer bypassed: got %#x", v)
	}
	if err := e.Unmap(nil, dev, v, 512, ToDevice); err != nil {
		t.Fatal(err)
	}
	if !fake.unmapped {
		t.Fatal("unmap hook not consulted")
	}
	if ma.iommu.Mappings != 0 {
		t.Fatal("scheme ran despite interposer claim")
	}
}

type fakeInterposer struct {
	iova     iommu.IOVA
	unmapped bool
}

func (f *fakeInterposer) MapHook(perf.Charger, int, mem.PhysAddr, int, Direction) (iommu.IOVA, bool) {
	return f.iova, true
}

func (f *fakeInterposer) UnmapHook(c perf.Charger, d int, v iommu.IOVA, s int, dir Direction) bool {
	if iova.IsDAMN(v) || v == f.iova {
		f.unmapped = true
		return true
	}
	return false
}

func TestDirectionPerms(t *testing.T) {
	if ToDevice.Perm() != iommu.PermRead {
		t.Error("ToDevice should need read")
	}
	if FromDevice.Perm() != iommu.PermWrite {
		t.Error("FromDevice should need write")
	}
	if Bidirectional.Perm() != iommu.PermRW {
		t.Error("Bidirectional should need rw")
	}
}

func TestStrictContentionInflatesCost(t *testing.T) {
	// Two cores unmapping at once: the second pays the bounce penalty,
	// so its elapsed time exceeds an uncontended unmap.
	ma := newMachine(t)
	ma.iommu.AttachDevice(dev)
	e := NewEngine(ma.se, ma.mem, ma.iommu, ma.model, NewStrictScheme(ma.iommu, ma.model))
	c0 := sim.NewCore(ma.se, 0, 0, ma.model.CoreHz)
	c1 := sim.NewCore(ma.se, 1, 0, ma.model.CoreHz)
	pa0, pa1 := ma.allocBuf(t, 0), ma.allocBuf(t, 0)
	var t0, t1 sim.Time
	c0.Submit(false, func(task *sim.Task) {
		v, _ := e.Map(task, dev, pa0, 512, FromDevice)
		e.Unmap(task, dev, v, 512, FromDevice)
		t0 = task.Elapsed()
	})
	c1.Submit(false, func(task *sim.Task) {
		v, _ := e.Map(task, dev, pa1, 512, FromDevice)
		e.Unmap(task, dev, v, 512, FromDevice)
		t1 = task.Elapsed()
	})
	ma.se.RunUntilIdle()
	if t1 <= t0 {
		t.Fatalf("contended unmap (%v) should cost more than uncontended (%v)", t1, t0)
	}
}
