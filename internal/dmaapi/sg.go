package dmaapi

import (
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
)

// Scatter/gather mapping — the "analogous methods to (un)map non-contiguous
// scatter/gather lists" of §3. A scatterlist is a set of physically
// discontiguous buffer pieces that the device walks as one logical
// transfer; each entry is mapped (or interposed) individually and the
// resulting DMA addresses are written back into the list.

// SGEntry is one scatterlist element.
type SGEntry struct {
	PA  mem.PhysAddr
	Len int
	// DMAAddr is filled by MapSG.
	DMAAddr iommu.IOVA
}

// MapSG maps every entry of the list, rolling back on failure so no
// partially mapped list escapes.
func (e *Engine) MapSG(c perf.Charger, dev int, sg []SGEntry, dir Direction) error {
	for i := range sg {
		if sg[i].Len <= 0 {
			e.unmapPrefix(c, dev, sg[:i], dir)
			return fmt.Errorf("dmaapi: scatterlist entry %d has length %d", i, sg[i].Len)
		}
		v, err := e.Map(c, dev, sg[i].PA, sg[i].Len, dir)
		if err != nil {
			e.unmapPrefix(c, dev, sg[:i], dir)
			return fmt.Errorf("dmaapi: scatterlist entry %d: %w", i, err)
		}
		sg[i].DMAAddr = v
		e.sgMapC.Inc()
	}
	return nil
}

// UnmapSG unmaps every entry of a list previously mapped with MapSG.
func (e *Engine) UnmapSG(c perf.Charger, dev int, sg []SGEntry, dir Direction) error {
	var firstErr error
	for i := range sg {
		if err := e.Unmap(c, dev, sg[i].DMAAddr, sg[i].Len, dir); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dmaapi: scatterlist entry %d: %w", i, err)
		}
		sg[i].DMAAddr = 0
		e.sgUnmapC.Inc()
	}
	return firstErr
}

func (e *Engine) unmapPrefix(c perf.Charger, dev int, sg []SGEntry, dir Direction) {
	for i := range sg {
		e.Unmap(c, dev, sg[i].DMAAddr, sg[i].Len, dir) //nolint:errcheck
		sg[i].DMAAddr = 0
	}
}
