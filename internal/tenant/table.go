// Package tenant adds SR-IOV-style multi-tenancy to the protected NIC:
// each tenant owns a virtual function (its own IOMMU domain and DAMN
// cache generation), a partition of the RSS rings and their bound cores,
// an epoch-stamped revocable capability gating every buffer handoff on the
// TX/RX fast path, and a weighted fair share of the PCIe/memory-bandwidth
// ceiling. A misbehaving tenant — forged or revoked capabilities, DMA
// probes into a sibling's IOVA range, a fault storm — walks the
// containment ladder Healthy → Throttled → Quarantined → Evicted, and
// every containment step touches only that tenant's rings, domain and
// allocator generation: the blast radius is one tenant.
//
// The design follows the capability systems the related work builds for
// kernel-bypass I/O (CAPIO; Beadle/Scott/Criswell): the kernel checks a
// revocable capability at the boundary instead of trusting the
// application, and revocation is a cheap epoch bump rather than a sweep
// of outstanding references.
package tenant

import (
	"fmt"

	"github.com/asplos18/damn/internal/stats"
)

// Handle is one tenant's capability for buffer handoff on its rings: the
// tenant id plus the epoch it was granted under. Revocation bumps the
// tenant's epoch, so every outstanding handle goes stale at once — O(1)
// revocation with no sweep, and validation is two integer compares on the
// per-packet path.
type Handle struct {
	Tenant int
	Epoch  uint32
}

// Table is the kernel's capability table: the current epoch per tenant,
// which tenant owns each ring, and the handle each ring currently
// presents. It implements netstack.CapGate; CheckRing is called by the
// driver before every map and unmap on a tenant-owned ring and must stay
// allocation-free (the per-tenant denial counters are created when the
// tenant is registered, never on the check path).
type Table struct {
	epochs    []uint32
	ringOwner []int
	presented []Handle

	Checks      uint64
	Denials     uint64
	Revocations uint64
	// denialsBy attributes denials to the ring's owning tenant.
	denialsBy []uint64

	checksC  *stats.Counter
	denialsC *stats.Counter
	revokesC *stats.Counter
	denTenC  []*stats.Counter
	reg      *stats.Registry
}

// NewTable builds a capability table for a NIC with the given ring count.
// Rings start unowned: CheckRing on an unowned ring always passes, so a
// machine with a table installed but no tenants behaves exactly like one
// without.
func NewTable(rings int) *Table {
	t := &Table{
		ringOwner: make([]int, rings),
		presented: make([]Handle, rings),
	}
	for i := range t.ringOwner {
		t.ringOwner[i] = -1
	}
	return t
}

// SetStats attaches a metrics registry: the aggregate capability counters
// (tenant/cap_checks, cap_denials, cap_revocations). Per-tenant denial
// counters are added as tenants register.
func (t *Table) SetStats(r *stats.Registry) {
	t.reg = r
	t.checksC = r.Counter("tenant", "cap_checks")
	t.denialsC = r.Counter("tenant", "cap_denials")
	t.revokesC = r.Counter("tenant", "cap_revocations")
}

// Register sizes the table for a tenant id and creates its per-tenant
// denial counter, keeping the deny path allocation-free afterwards.
func (t *Table) Register(tenant int) {
	for tenant >= len(t.epochs) {
		t.epochs = append(t.epochs, 0)
		t.denialsBy = append(t.denialsBy, 0)
		t.denTenC = append(t.denTenC, nil)
	}
	if t.reg != nil && t.denTenC[tenant] == nil {
		t.denTenC[tenant] = t.reg.Counter("tenant", fmt.Sprintf("cap_denials_t%d", tenant))
	}
}

// Grant issues a fresh capability for a tenant at its current epoch.
func (t *Table) Grant(tenant int) Handle {
	t.Register(tenant)
	return Handle{Tenant: tenant, Epoch: t.epochs[tenant]}
}

// AssignRing gives a tenant ownership of a ring and presents a freshly
// granted handle on it. tenant < 0 releases the ring (unowned rings are
// ungated).
func (t *Table) AssignRing(ring, tenant int) {
	if ring < 0 || ring >= len(t.ringOwner) {
		return
	}
	t.ringOwner[ring] = tenant
	if tenant < 0 {
		t.presented[ring] = Handle{}
		return
	}
	t.presented[ring] = t.Grant(tenant)
}

// Present replaces the handle a ring presents — the attack surface: a
// compromised tenant presenting a stale (revoked) or forged (wrong-tenant)
// handle is exactly what CheckRing denies.
func (t *Table) Present(ring int, h Handle) {
	if ring < 0 || ring >= len(t.presented) {
		return
	}
	t.presented[ring] = h
}

// Revoke invalidates every outstanding capability of a tenant by bumping
// its epoch. Handles already presented on rings stay in place and simply
// stop validating — revocation needs no per-ring sweep.
func (t *Table) Revoke(tenant int) {
	if tenant < 0 || tenant >= len(t.epochs) {
		return
	}
	t.epochs[tenant]++
	t.Revocations++
	if t.revokesC != nil {
		t.revokesC.Inc()
	}
}

// CheckRing validates the capability a ring currently presents against its
// owner's epoch. Unowned rings pass unconditionally (and uncounted — a
// tenancy-free machine's stats stay byte-identical). This is the
// netstack.CapGate fast path: two loads, two compares, counter bumps.
func (t *Table) CheckRing(ring int) bool {
	owner := t.ringOwner[ring]
	if owner < 0 {
		return true
	}
	t.Checks++
	if t.checksC != nil {
		t.checksC.Inc()
	}
	h := t.presented[ring]
	if h.Tenant == owner && h.Epoch == t.epochs[owner] {
		return true
	}
	t.Denials++
	t.denialsBy[owner]++
	if t.denialsC != nil {
		t.denialsC.Inc()
	}
	if c := t.denTenC[owner]; c != nil {
		c.Inc()
	}
	return false
}

// DenialsFor reports capability denials attributed to one tenant.
func (t *Table) DenialsFor(tenant int) uint64 {
	if tenant < 0 || tenant >= len(t.denialsBy) {
		return 0
	}
	return t.denialsBy[tenant]
}
