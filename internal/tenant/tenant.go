package tenant

import (
	"fmt"

	damncore "github.com/asplos18/damn/internal/damn"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
	"github.com/asplos18/damn/internal/testbed"
)

// VFBase is the IOMMU device id of tenant 0's virtual function; tenant i
// DMAs as device VFBase+i. It sits above the physical devices (NIC = 1,
// NVMe = 2) and keeps every VF within the DAMN IOVA encoding's 7-bit
// device field.
const VFBase = 8

// DevOf maps a tenant id to its virtual function's IOMMU identity.
func DevOf(tenant int) int { return VFBase + tenant }

// State is a tenant's position on the containment ladder.
type State int

const (
	// Healthy: full fair share, capabilities valid.
	Healthy State = iota
	// Throttled: violations crossed the soft threshold; the tenant keeps
	// running at a fraction of its fair share.
	Throttled
	// Quarantined: violations crossed the storm threshold; capabilities
	// revoked, rings drained and fenced, VF domain detached, DAMN
	// generation reclaimed. Re-admitted after probation if it quiets down.
	Quarantined
	// Evicted: the fault budget is exhausted; the tenant stays fenced for
	// the life of the machine.
	Evicted
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Throttled:
		return "throttled"
	case Quarantined:
		return "quarantined"
	case Evicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Transition is one containment-ladder step (instrumentation).
type Transition struct {
	At       sim.Time
	Tenant   int
	From, To State
}

// Config tunes the containment ladder. Zero values take defaults.
type Config struct {
	// Poll is the violation-detection tick.
	Poll sim.Time
	// Window is how long a violation stays countable.
	Window sim.Time
	// ThrottleThreshold violations in the window move Healthy→Throttled.
	ThrottleThreshold int
	// StormThreshold violations move any live state →Quarantined.
	StormThreshold int
	// Probation is the quarantine length before re-admission is weighed.
	Probation sim.Time
	// MaxQuarantines is the fault budget: needing one more quarantine
	// after this many becomes Evicted.
	MaxQuarantines int
	// ThrottleFactor is the fair-share fraction kept while Throttled.
	ThrottleFactor float64
	// ResetTime is the simulated cost of a VF function-level reset.
	ResetTime sim.Time
}

func (c Config) withDefaults() Config {
	if c.Poll <= 0 {
		c.Poll = 50 * sim.Microsecond
	}
	if c.Window <= 0 {
		c.Window = 200 * sim.Microsecond
	}
	if c.ThrottleThreshold <= 0 {
		c.ThrottleThreshold = 8
	}
	if c.StormThreshold <= 0 {
		c.StormThreshold = 32
	}
	if c.Probation <= 0 {
		c.Probation = 300 * sim.Microsecond
	}
	if c.MaxQuarantines <= 0 {
		c.MaxQuarantines = 2
	}
	if c.ThrottleFactor <= 0 {
		c.ThrottleFactor = 0.25
	}
	if c.ResetTime <= 0 {
		c.ResetTime = 20 * sim.Microsecond
	}
	return c
}

// Tenant is one virtual function's containment state.
type Tenant struct {
	ID     int
	Dev    int
	Rings  []int
	Weight float64

	state         State
	window        []sim.Time
	lastRecorded  uint64
	lastDenials   uint64
	quarantines   int
	quarantinedAt sim.Time
	probationAt   sim.Time
	busy          bool
}

// State reports the tenant's current ladder position.
func (t *Tenant) State() State { return t.state }

// Quarantines reports how many times the tenant has been quarantined.
func (t *Tenant) Quarantines() int { return t.quarantines }

// Manager owns a machine's tenants: the capability table on the driver's
// fast path, the fair-share pacer on the NIC, per-tenant violation windows
// fed by the IOMMU's per-device fault attribution (and, when a recovery
// supervisor is attached, by its foreign-record forwarding), and the
// containment ladder that quarantines exactly one tenant's rings, domain
// and DAMN generation.
type Manager struct {
	ma    *testbed.Machine
	cfg   Config
	table *Table
	fair  *FairShare

	tenants []*Tenant
	byDev   map[int]*Tenant
	stop    func()

	// viaSupervisor: fault records arrive through the recovery
	// supervisor's OnForeignRecord hook (the IOMMU ring is
	// single-consumer); the poll then skips its own recorded-count
	// harvest to avoid double counting.
	viaSupervisor bool

	// Evidence.
	Transitions   []Transition
	Quarantines   uint64
	Evictions     uint64
	Throttles     uint64
	ReleasedPages int64
	PinnedChunks  int

	quarC  *stats.Counter
	evictC *stats.Counter
	throtC *stats.Counter
}

// Attach wires a tenant manager to a machine: installs the capability gate
// on the driver, the fair-share pacer on the NIC, and arms the violation
// poll. The machine behaves identically until AddTenant assigns rings.
func Attach(ma *testbed.Machine, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	rings := ma.NIC.Cfg.Rings
	m := &Manager{ma: ma, cfg: cfg, byDev: map[int]*Tenant{}}
	m.table = NewTable(rings)
	m.table.SetStats(ma.Stats)
	// The admission ceiling is the NIC's aggregate DMA budget: PCIeGbps is
	// per direction and each tenant's bucket is debited for both RX and TX
	// bytes, so the shared ceiling is twice the per-direction rate (the
	// same aggregation the NIC's own PCIe fluid resource applies).
	m.fair = NewFairShare(rings, 2*ma.NIC.Cfg.PCIeGbps*1e9/8, cfg.ThrottleFactor)
	ma.Driver.SetCapGate(m.table)
	ma.NIC.SetAdmission(m.fair)
	m.quarC = ma.Stats.Counter("tenant", "quarantines")
	m.evictC = ma.Stats.Counter("tenant", "evictions")
	m.throtC = ma.Stats.Counter("tenant", "throttles")
	m.stop = ma.Sim.Every(cfg.Poll, m.poll)
	return m
}

// Stop disarms the violation poll (drain-to-idle runs).
func (m *Manager) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// Table exposes the capability table (attack simulation and tests).
func (m *Manager) Table() *Table { return m.table }

// Fair exposes the fair-share pacer.
func (m *Manager) Fair() *FairShare { return m.fair }

// Tenants lists tenants in registration order.
func (m *Manager) Tenants() []*Tenant { return m.tenants }

// TenantByID returns a registered tenant, or nil.
func (m *Manager) TenantByID(id int) *Tenant {
	return m.byDev[DevOf(id)]
}

// AddTenant carves a tenant out of the machine: a fresh IOMMU domain for
// its virtual function (passthrough iff the physical function runs
// passthrough — iommu-off protects nobody, tenants included), ring
// ownership re-bound to the VF's DMA identity, a granted capability on
// each ring, and a weighted slice of the PCIe ceiling. Rings must be
// disjoint across tenants.
func (m *Manager) AddTenant(id int, weight float64, rings []int) (*Tenant, error) {
	if m.TenantByID(id) != nil {
		return nil, fmt.Errorf("tenant: id %d already registered", id)
	}
	dev := DevOf(id)
	for _, r := range rings {
		if r < 0 || r >= m.ma.NIC.Cfg.Rings {
			return nil, fmt.Errorf("tenant: ring %d out of range", r)
		}
		if m.table.ringOwner[r] >= 0 {
			return nil, fmt.Errorf("tenant: ring %d already owned by tenant %d", r, m.table.ringOwner[r])
		}
	}
	dom := m.ma.IOMMU.AttachDevice(dev)
	if pf := m.ma.IOMMU.Domain(testbed.NICDeviceID); pf != nil && pf.Passthrough {
		dom.Passthrough = true
	}
	t := &Tenant{ID: id, Dev: dev, Rings: append([]int(nil), rings...), Weight: weight}
	m.table.Register(id)
	for _, r := range rings {
		m.table.AssignRing(r, id)
		if err := m.ma.NIC.BindRingDevice(r, dev); err != nil {
			return nil, err
		}
		m.ma.Driver.SetRingTenant(r, id)
	}
	m.fair.AddTenant(id, weight, rings, m.ma.Sim.Now())
	t.lastRecorded, _, _ = m.ma.IOMMU.DeviceFaultStats(dev)
	m.tenants = append(m.tenants, t)
	m.byDev[dev] = t
	return t, nil
}

// BindSupervisor routes the recovery supervisor's unclaimed fault records
// (tenant VFs are not supervisor-managed devices) into the violation
// windows. The supervisor owns the single-consumer fault-record ring; set
// its OnForeignRecord to the returned ingest function:
//
//	sup.OnForeignRecord = mgr.BindSupervisor()
func (m *Manager) BindSupervisor() func(rec iommu.FaultRecord) {
	m.viaSupervisor = true
	return func(rec iommu.FaultRecord) {
		if t := m.byDev[rec.Dev]; t != nil && t.state != Evicted {
			t.window = append(t.window, m.ma.Sim.Now())
		}
	}
}

// poll is the detection tick: harvest per-tenant violation signals
// (fault records attributed to the VF, capability denials), age windows,
// and walk the ladder. Tenants are visited in registration order so the
// event stream is deterministic.
func (m *Manager) poll() {
	now := m.ma.Sim.Now()
	for _, t := range m.tenants {
		if t.state == Evicted || t.busy {
			continue
		}
		if !m.viaSupervisor {
			recorded, _, _ := m.ma.IOMMU.DeviceFaultStats(t.Dev)
			for i := t.lastRecorded; i < recorded; i++ {
				t.window = append(t.window, now)
			}
			t.lastRecorded = recorded
		}
		denials := m.table.DenialsFor(t.ID)
		for i := t.lastDenials; i < denials; i++ {
			t.window = append(t.window, now)
		}
		t.lastDenials = denials
		// Age the window.
		keep := t.window[:0]
		for _, at := range t.window {
			if now-at <= m.cfg.Window {
				keep = append(keep, at)
			}
		}
		t.window = keep
		v := len(t.window)
		switch t.state {
		case Healthy:
			if v >= m.cfg.StormThreshold {
				m.quarantine(t)
			} else if v >= m.cfg.ThrottleThreshold {
				m.setState(t, Throttled)
				m.Throttles++
				m.throtC.Inc()
				m.fair.Throttle(t.ID, true)
			}
		case Throttled:
			if v >= m.cfg.StormThreshold {
				m.quarantine(t)
			} else if v == 0 {
				m.setState(t, Healthy)
				m.fair.Throttle(t.ID, false)
			}
		case Quarantined:
			if now >= t.probationAt {
				if v > 0 {
					// Still hostile through its own quarantine (DMA
					// probes from a detached function keep faulting):
					// spend another quarantine or run out of budget.
					if t.quarantines >= m.cfg.MaxQuarantines {
						m.evict(t)
					} else {
						m.quarantine(t)
					}
				} else {
					m.readmit(t)
				}
			}
		}
	}
}

func (m *Manager) setState(t *Tenant, s State) {
	if t.state == s {
		return
	}
	m.Transitions = append(m.Transitions, Transition{At: m.ma.Sim.Now(), Tenant: t.ID, From: t.state, To: s})
	t.state = s
}

// quarantine contains one tenant with the recovery discipline, scoped to
// its slice of the machine: revoke capabilities (the fast path starts
// denying immediately), drain and fence only its rings while its domain is
// still attached (legacy unmaps must succeed so IOVA slots recycle), reset
// the VF, detach its domain, flush the IOTLB of the dead domain, and
// reclaim only its DAMN generation. Neighbours' rings, domains, caches and
// in-flight completions are untouched.
func (m *Manager) quarantine(t *Tenant) {
	t.busy = true
	m.setState(t, Quarantined)
	t.quarantinedAt = m.ma.Sim.Now()
	t.quarantines++
	m.Quarantines++
	m.quarC.Inc()
	m.table.Revoke(t.ID)
	m.ma.Cores[0].Submit(true, func(task *sim.Task) {
		m.ma.Driver.QuarantineDrainRings(task, t.Rings)
		m.ma.DMA.ResetDevice(task, t.Dev)
		m.ma.IOMMU.DetachDevice(t.Dev)
		if err := m.ma.IOMMU.InvQ().Submit(iommu.Command{Kind: iommu.InvDomain, Dev: t.Dev}); err == nil {
			m.ma.IOMMU.InvQ().DrainRetry(task, m.ma.Model.ITETimeout)
		}
		if m.ma.Damn != nil {
			released, pinned := m.ma.Damn.ReleaseDevice(damncore.Ctx{C: task}, t.Dev)
			m.ReleasedPages += released
			m.PinnedChunks = pinned
		}
		task.ChargeTime(m.cfg.ResetTime)
		t.window = t.window[:0]
		t.lastRecorded, _, _ = m.ma.IOMMU.DeviceFaultStats(t.Dev)
		t.lastDenials = m.table.DenialsFor(t.ID)
		t.probationAt = m.ma.Sim.Now() + m.cfg.Probation
		t.busy = false
	})
}

// readmit lifts a quarantine after a clean probation: fresh domain, fresh
// capabilities, rings refilled, full fair share restored.
func (m *Manager) readmit(t *Tenant) {
	t.busy = true
	m.ma.Cores[0].Submit(true, func(task *sim.Task) {
		dom := m.ma.IOMMU.AttachDevice(t.Dev)
		if pf := m.ma.IOMMU.Domain(testbed.NICDeviceID); pf != nil && pf.Passthrough {
			dom.Passthrough = true
		}
		for _, r := range t.Rings {
			m.table.AssignRing(r, t.ID)
		}
		if err := m.ma.Driver.ReinitRings(task, t.Rings); err != nil {
			// Refill failures leave shortfalls the watchdog restores; the
			// tenant is still re-admitted.
			_ = err
		}
		m.fair.Throttle(t.ID, false)
		m.setState(t, Healthy)
		t.window = t.window[:0]
		t.lastRecorded, _, _ = m.ma.IOMMU.DeviceFaultStats(t.Dev)
		t.lastDenials = m.table.DenialsFor(t.ID)
		t.busy = false
	})
}

// evict retires a tenant permanently: rings stay fenced, the domain stays
// detached, capabilities stay revoked. Terminal.
func (m *Manager) evict(t *Tenant) {
	m.setState(t, Evicted)
	m.Evictions++
	m.evictC.Inc()
}
