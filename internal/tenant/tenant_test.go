package tenant_test

import (
	"math"
	"testing"

	"github.com/asplos18/damn/internal/faults"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/tenant"
	"github.com/asplos18/damn/internal/testbed"
)

func newMachine(t *testing.T) *testbed.Machine {
	t.Helper()
	ma, err := testbed.NewMachine(testbed.MachineConfig{
		Scheme: testbed.SchemeDAMN,
		Cores:  2,
		Faults: &faults.Config{Seed: 1, Rates: map[faults.Kind]float64{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

// TestCapabilityTable exercises grant, forge, revoke and re-grant on the
// capability fast path, including per-tenant denial attribution and the
// unowned-ring bypass.
func TestCapabilityTable(t *testing.T) {
	tab := tenant.NewTable(4)
	tab.AssignRing(0, 0)
	tab.AssignRing(1, 1)

	if !tab.CheckRing(0) || !tab.CheckRing(1) {
		t.Fatal("freshly granted capabilities must validate")
	}
	// Forgery: tenant 1's identity presented on tenant 0's ring.
	tab.Present(0, tenant.Handle{Tenant: 1})
	if tab.CheckRing(0) {
		t.Error("forged handle validated")
	}
	if got := tab.DenialsFor(0); got != 1 {
		t.Errorf("denial attributed to ring owner: got %d, want 1", got)
	}
	if got := tab.DenialsFor(1); got != 0 {
		t.Errorf("denial leaked to tenant 1: got %d", got)
	}
	// Stale: a revoked epoch stops validating without any per-ring sweep.
	tab.Present(0, tab.Grant(0))
	if !tab.CheckRing(0) {
		t.Fatal("re-presented valid handle must validate")
	}
	tab.Revoke(0)
	if tab.CheckRing(0) {
		t.Error("revoked handle validated")
	}
	if tab.Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", tab.Revocations)
	}
	// Re-grant after revocation restores the ring.
	tab.AssignRing(0, 0)
	if !tab.CheckRing(0) {
		t.Error("re-granted handle must validate")
	}
	// Unowned rings pass and are never counted.
	checks := tab.Checks
	if !tab.CheckRing(3) {
		t.Error("unowned ring must pass")
	}
	if tab.Checks != checks {
		t.Error("unowned ring check was counted")
	}
}

// TestFairShareWeights verifies the weighted split of the ceiling, burst
// forgiveness, overdraw delay, and the throttle fraction.
func TestFairShareWeights(t *testing.T) {
	const ceiling = 1e9 // bytes/s
	f := tenant.NewFairShare(4, ceiling, 0.25)
	f.AddTenant(0, 1, []int{0}, 0)
	f.AddTenant(1, 3, []int{1}, 0)

	// Within burst (100 µs of rate): free.
	if d := f.AdmitDMA(0, 1500, 0); d != 0 {
		t.Errorf("burst-sized DMA delayed by %d ps", d)
	}
	// Overdraw tenant 0's bucket (rate 0.25e9 B/s, burst 25 kB): a 1 MB
	// transfer must pay roughly its wire time at the tenant's rate.
	d := f.AdmitDMA(0, 1<<20, 0)
	wantPS := float64(1<<20-25000+1500) / 0.25e9 * 1e12
	if math.Abs(float64(d)-wantPS) > wantPS*0.05 {
		t.Errorf("overdraw delay %d ps, want ~%.0f ps", d, wantPS)
	}
	// Tenant 1 has 3x the weight: same overdraw costs a third.
	d1 := f.AdmitDMA(1, 1<<20, 0)
	if d1 <= 0 || d1 >= d {
		t.Errorf("heavier tenant must pay less: t0=%d t1=%d", d, d1)
	}
	// Unowned ring: never paced.
	if d := f.AdmitDMA(2, 1<<30, 0); d != 0 {
		t.Errorf("unowned ring paced by %d ps", d)
	}
	// Throttle quarters the refill rate.
	f.Throttle(0, true)
	before := f.DelayFor(0)
	dThrottled := f.AdmitDMA(0, 1<<20, sim.Time(10*sim.Millisecond))
	if dThrottled <= d {
		t.Errorf("throttled overdraw %d must exceed healthy %d", dThrottled, d)
	}
	if f.DelayFor(0) <= before {
		t.Error("delay evidence not accumulated")
	}
}

// runUntil steps the engine until cond holds (cores stay busy for a few
// hundred µs after ring fills, so containment actions land asynchronously).
func runUntil(t *testing.T, ma *testbed.Machine, what string, cond func() bool) {
	t.Helper()
	deadline := ma.Sim.Now() + 100*sim.Millisecond
	for ma.Sim.Now() < deadline && !cond() {
		ma.Sim.Run(ma.Sim.Now() + 10*sim.Microsecond)
	}
	if !cond() {
		t.Fatalf("%s never happened", what)
	}
}

// TestLadderThrottleRecover walks Healthy→Throttled→Healthy: a burst of
// capability denials above the soft threshold throttles the tenant, and a
// quiet window restores it.
func TestLadderThrottleRecover(t *testing.T) {
	ma := newMachine(t)
	mgr := tenant.Attach(ma, tenant.Config{})
	ten, err := mgr.AddTenant(0, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	// Present a forged handle and touch the gate 10 times (>= soft
	// threshold 8, < storm threshold 32).
	mgr.Table().Present(0, tenant.Handle{Tenant: 3})
	for i := 0; i < 10; i++ {
		mgr.Table().CheckRing(0)
	}
	runUntil(t, ma, "throttle after denial burst", func() bool {
		return ten.State() == tenant.Throttled
	})
	// Restore a valid handle; the window ages out and the tenant recovers.
	mgr.Table().Present(0, mgr.Table().Grant(0))
	runUntil(t, ma, "recovery after quiet window", func() bool {
		return ten.State() == tenant.Healthy
	})
	if mgr.Throttles != 1 {
		t.Errorf("Throttles = %d, want 1", mgr.Throttles)
	}
}

// TestLadderQuarantineReadmit walks Healthy→Quarantined→Healthy: a denial
// storm quarantines exactly the tenant's ring (neighbour rings stay live),
// revokes its capabilities, reclaims its DAMN generation, and a clean
// probation re-admits it.
func TestLadderQuarantineReadmit(t *testing.T) {
	ma := newMachine(t)
	mgr := tenant.Attach(ma, tenant.Config{})
	ten, err := mgr.AddTenant(0, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.AddTenant(1, 1, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	mgr.Table().Present(0, tenant.Handle{Tenant: 7})
	for i := 0; i < 40; i++ {
		mgr.Table().CheckRing(0)
	}
	runUntil(t, ma, "quarantine after denial storm", func() bool {
		return ten.State() == tenant.Quarantined && ma.NIC.RingQuarantined(0)
	})
	if ma.NIC.RingQuarantined(1) {
		t.Error("neighbour ring fenced — blast radius exceeded one tenant")
	}
	if ma.NIC.Quarantined() {
		t.Error("whole NIC fenced by a tenant quarantine")
	}
	if ma.IOMMU.Attached(tenant.DevOf(0)) {
		t.Error("attacker VF domain still attached")
	}
	if !ma.IOMMU.Attached(tenant.DevOf(1)) {
		t.Error("neighbour VF domain detached")
	}
	if live, err := ma.Damn.Audit(); err != nil {
		t.Errorf("DAMN audit after quarantine: %v (live=%d)", err, live)
	}
	// Clean probation: the forged handle stays on the fenced ring but no
	// traffic touches the gate, so the window drains and the tenant is
	// re-admitted with fresh capabilities.
	runUntil(t, ma, "re-admission after clean probation", func() bool {
		return ten.State() == tenant.Healthy
	})
	if ma.NIC.RingQuarantined(0) {
		t.Error("ring still fenced after re-admission")
	}
	if !ma.IOMMU.Attached(tenant.DevOf(0)) {
		t.Error("VF domain not re-attached after re-admission")
	}
	if mgr.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", mgr.Quarantines)
	}
}

// TestLadderEvict: a persistent attacker that keeps presenting revoked
// capabilities straight through its own quarantine exhausts the fault
// budget and is evicted for good.
func TestLadderEvict(t *testing.T) {
	ma := newMachine(t)
	mgr := tenant.Attach(ma, tenant.Config{MaxQuarantines: 1})
	ten, err := mgr.AddTenant(0, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.FillAllRings(); err != nil {
		t.Fatal(err)
	}
	// The attack: hammer the gate every 5 µs with whatever handle the ring
	// holds — forged before quarantine, stale after revocation.
	mgr.Table().Present(0, tenant.Handle{Tenant: 9})
	stop := ma.Sim.Every(5*sim.Microsecond, func() {
		mgr.Table().CheckRing(0)
	})
	defer stop()
	deadline := ma.Sim.Now() + 10*sim.Millisecond
	for ma.Sim.Now() < deadline && ten.State() != tenant.Evicted {
		ma.Sim.Run(ma.Sim.Now() + 50*sim.Microsecond)
	}
	if got := ten.State(); got != tenant.Evicted {
		t.Fatalf("persistent attacker state = %s, want evicted", got)
	}
	if !ma.NIC.RingQuarantined(0) {
		t.Error("evicted tenant's ring not fenced")
	}
	if ma.IOMMU.Attached(tenant.DevOf(0)) {
		t.Error("evicted tenant's domain still attached")
	}
	// The ladder was walked in order.
	want := []tenant.State{tenant.Throttled, tenant.Quarantined, tenant.Evicted}
	var seen []tenant.State
	for _, tr := range mgr.Transitions {
		seen = append(seen, tr.To)
	}
	for i, s := range want {
		if i >= len(seen) || seen[i] != s {
			t.Fatalf("transition sequence %v, want prefix %v", seen, want)
		}
	}
}
