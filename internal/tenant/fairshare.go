package tenant

import (
	"github.com/asplos18/damn/internal/sim"
)

// FairShare is the weighted fair-share admission pacer on the NIC's shared
// PCIe/memory-bandwidth ceiling: each tenant owns a token bucket refilled
// at weight_i/Σw of the configured byte rate, and a DMA that overdraws its
// tenant's bucket absorbs the deficit as extra wire time. The NIC consults
// it per transfer (device.Admission); unowned rings are never paced, so a
// tenancy-free machine pays one nil check. Throttled tenants (containment
// ladder step one) refill at a fraction of their share.
//
// All state is plain float/int arithmetic on dense slices — deterministic
// and allocation-free on the per-packet path.
type FairShare struct {
	totalBytesPS float64 // shared ceiling, bytes per simulated second

	ringTenant []int // ring -> tenant (-1 unowned)

	weights   []float64
	rates     []float64 // refill rate, bytes/s (post-throttle)
	avail     []float64 // bucket level, bytes (may go negative)
	burst     []float64 // bucket cap, bytes
	last      []sim.Time
	throttled []bool

	throttleFactor float64

	// Delays accumulates the admission delay imposed per tenant
	// (picoseconds) — the fairness evidence the figure reports.
	Delays []sim.Time
}

// NewFairShare builds a pacer for a NIC with the given ring count and a
// shared ceiling in bytes per second. throttleFactor is the fraction of a
// tenant's rate kept while Throttled (default 0.25 when <= 0).
func NewFairShare(rings int, totalBytesPS, throttleFactor float64) *FairShare {
	if throttleFactor <= 0 {
		throttleFactor = 0.25
	}
	f := &FairShare{totalBytesPS: totalBytesPS, throttleFactor: throttleFactor,
		ringTenant: make([]int, rings)}
	for i := range f.ringTenant {
		f.ringTenant[i] = -1
	}
	return f
}

// AddTenant registers a tenant's weight and ring ownership, then
// recomputes every tenant's rate so the shares always sum to the ceiling.
func (f *FairShare) AddTenant(tenant int, weight float64, rings []int, now sim.Time) {
	if weight <= 0 {
		weight = 1
	}
	for tenant >= len(f.weights) {
		f.weights = append(f.weights, 0)
		f.rates = append(f.rates, 0)
		f.avail = append(f.avail, 0)
		f.burst = append(f.burst, 0)
		f.last = append(f.last, 0)
		f.throttled = append(f.throttled, false)
		f.Delays = append(f.Delays, 0)
	}
	f.weights[tenant] = weight
	f.last[tenant] = now
	for _, r := range rings {
		if r >= 0 && r < len(f.ringTenant) {
			f.ringTenant[r] = tenant
		}
	}
	f.recompute()
	// A new tenant starts with a full bucket: its first burst rides free.
	f.avail[tenant] = f.burst[tenant]
}

// recompute distributes the ceiling across registered tenants by weight.
// Bursts are sized to ~100 µs of each tenant's rate, so short bursts ride
// free and sustained overdraw pays.
func (f *FairShare) recompute() {
	var sum float64
	for _, w := range f.weights {
		sum += w
	}
	if sum <= 0 {
		return
	}
	for i, w := range f.weights {
		if w <= 0 {
			continue
		}
		rate := f.totalBytesPS * w / sum
		if f.throttled[i] {
			rate *= f.throttleFactor
		}
		f.rates[i] = rate
		f.burst[i] = rate * 100e-6 // 100 µs of line rate
		if f.avail[i] > f.burst[i] {
			f.avail[i] = f.burst[i]
		}
	}
}

// Throttle moves a tenant onto (or off) its reduced containment rate.
func (f *FairShare) Throttle(tenant int, on bool) {
	if tenant < 0 || tenant >= len(f.throttled) {
		return
	}
	f.throttled[tenant] = on
	f.recompute()
}

// AdmitDMA implements device.Admission: refill the ring owner's bucket to
// now, debit the transfer, and convert any deficit into delay at the
// tenant's refill rate.
func (f *FairShare) AdmitDMA(ring, bytes int, now sim.Time) sim.Time {
	if ring < 0 || ring >= len(f.ringTenant) {
		return 0
	}
	ten := f.ringTenant[ring]
	if ten < 0 {
		return 0
	}
	rate := f.rates[ten]
	if rate <= 0 {
		return 0
	}
	if dt := now - f.last[ten]; dt > 0 {
		f.avail[ten] += rate * float64(dt) / 1e12 // sim.Time is picoseconds
		if f.avail[ten] > f.burst[ten] {
			f.avail[ten] = f.burst[ten]
		}
	}
	f.last[ten] = now
	f.avail[ten] -= float64(bytes)
	if f.avail[ten] >= 0 {
		return 0
	}
	d := sim.Time(-f.avail[ten] / rate * 1e12)
	f.Delays[ten] += d
	return d
}

// DelayFor reports the cumulative admission delay imposed on a tenant.
func (f *FairShare) DelayFor(tenant int) sim.Time {
	if tenant < 0 || tenant >= len(f.Delays) {
		return 0
	}
	return f.Delays[tenant]
}
