package damn

import (
	"sort"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/perf"
)

// Shrink implements the OS shrinker interface the paper describes (§5.4
// "Responding to OS memory pressure"): under memory pressure, DAMN releases
// chunks that sit unused in magazines and the depot back to the page
// allocator. Such chunks contain no live buffers, so releasing them is
// safe; their IOMMU mappings are destroyed (and the IOTLB invalidated —
// otherwise the device could keep writing into pages the kernel reuses) and
// their identity-region IOVA slots are recycled.
//
// Chunks carved from dense huge superblocks are skipped: their 2 MiB
// mapping is shared with sibling chunks.
//
// Returns the number of pages released to the system.
func (d *DAMN) Shrink(x Ctx) int64 {
	// Release order is simulation-visible (unmaps and IOTLB invalidations
	// are charged work), so walk the caches in sorted-key order rather
	// than map order.
	d.mu.Lock()
	keys := make([]cacheKey, 0, len(d.caches))
	for k := range d.caches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.dev != b.dev {
			return a.dev < b.dev
		}
		if a.rights != b.rights {
			return a.rights < b.rights
		}
		return a.node < b.node
	})
	caches := make([]*dmaCache, 0, len(keys))
	for _, k := range keys {
		caches = append(caches, d.caches[k])
	}
	d.mu.Unlock()

	var released int64
	for _, c := range caches {
		var victims []*chunk
		// Depot first: those chunks are coldest.
		victims = append(victims, c.depot.drainFull()...)
		// Then the per-core magazines.
		for cpu := range c.perCPU {
			for ctx := 0; ctx < 2; ctx++ {
				cc := c.perCPU[cpu][ctx]
				for _, m := range []*magazine{cc.loaded, cc.previous} {
					if m == nil {
						continue
					}
					victims = append(victims, m.chunks...)
					m.chunks = m.chunks[:0]
				}
			}
		}
		for _, ch := range victims {
			if ch.huge {
				// Cannot unmap a shared huge mapping; keep the
				// chunk cached instead.
				c.putChunk(x, ch)
				continue
			}
			released += d.releaseChunk(x, c, ch)
		}
	}
	d.shrinkRunsC.Inc()
	if released > 0 {
		d.shrinkPagesC.Add(uint64(released))
	}
	return released
}

// releaseChunk tears one chunk down completely, charging the caller for the
// unmap work and the synchronous IOTLB invalidation wait — the same costs the
// NoDMACache ablation pays on every free. Reclaim is not free; it only
// happens off the fast path.
func (d *DAMN) releaseChunk(x Ctx, c *dmaCache, ch *chunk) int64 {
	// Revoke device access *before* the pages go back to the kernel.
	if err := d.iommu.Unmap(c.key.dev, ch.iova, d.ChunkBytes()); err != nil {
		panic("damn: shrinker unmap failed: " + err.Error())
	}
	perf.ChargeCat(x.C, d.teardownCyc, d.model.UnmapCycles*float64(d.cfg.ChunkPages))
	if err := d.iommu.InvQ().Submit(iommu.Command{Kind: iommu.InvRange, Dev: c.key.dev, Base: ch.iova, Size: d.ChunkBytes()}); err != nil {
		panic("damn: shrinker invalidation submit failed: " + err.Error())
	}
	d.iommu.InvQ().DrainRetry(x.C, d.model.ITETimeout)
	perf.ChargeTimeCat(x.C, d.teardownInvPS, d.model.IOTLBInvLatency)
	// Recycle the identity-region IOVA slot.
	if e, ok := iova.Decode(ch.iova); ok && !ch.huge {
		d.mu.Lock()
		if r := d.regions[identKey{cpu: e.CPU, rights: e.Rights, dev: e.Dev}]; r != nil {
			r.release(e.Offset)
		}
		d.mu.Unlock()
	}
	d.unregisterChunk(ch)
	order := log2(d.cfg.ChunkPages)
	d.mem.FreePages(ch.head, order)
	return int64(d.cfg.ChunkPages)
}
