package damn

import (
	"sort"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/perf"
)

// Shrink implements the OS shrinker interface the paper describes (§5.4
// "Responding to OS memory pressure"): under memory pressure, DAMN releases
// chunks that sit unused in magazines and the depot back to the page
// allocator. Such chunks contain no live buffers, so releasing them is
// safe; their IOMMU mappings are destroyed (and the IOTLB invalidated —
// otherwise the device could keep writing into pages the kernel reuses) and
// their identity-region IOVA slots are recycled.
//
// Chunks carved from dense huge superblocks are skipped: their 2 MiB
// mapping is shared with sibling chunks.
//
// Returns the number of pages released to the system.
func (d *DAMN) Shrink(x Ctx) int64 {
	// Release order is simulation-visible (unmaps and IOTLB invalidations
	// are charged work), so walk the caches in sorted-key order rather
	// than map order.
	d.mu.Lock()
	keys := make([]cacheKey, 0, len(d.caches))
	for k := range d.caches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.dev != b.dev {
			return a.dev < b.dev
		}
		if a.rights != b.rights {
			return a.rights < b.rights
		}
		return a.node < b.node
	})
	caches := make([]*dmaCache, 0, len(keys))
	for _, k := range keys {
		caches = append(caches, d.caches[k])
	}
	d.mu.Unlock()

	var released int64
	for _, c := range caches {
		var victims []*chunk
		// Depot first: those chunks are coldest.
		victims = append(victims, c.depot.drainFull()...)
		// Then the per-core magazines.
		for cpu := range c.perCPU {
			for ctx := 0; ctx < 2; ctx++ {
				cc := c.perCPU[cpu][ctx]
				for _, m := range []*magazine{cc.loaded, cc.previous} {
					if m == nil {
						continue
					}
					victims = append(victims, m.chunks...)
					m.chunks = m.chunks[:0]
				}
			}
		}
		for _, ch := range victims {
			if ch.huge {
				// Cannot unmap a shared huge mapping; keep the
				// chunk cached instead.
				c.putChunk(x, ch)
				continue
			}
			released += d.releaseChunk(x, c, ch)
		}
	}
	d.shrinkRunsC.Inc()
	if released > 0 {
		d.shrinkPagesC.Add(uint64(released))
	}
	return released
}

// releaseChunk tears one chunk down completely, charging the caller for the
// unmap work and the synchronous IOTLB invalidation wait — the same costs the
// NoDMACache ablation pays on every free. Reclaim is not free; it only
// happens off the fast path.
func (d *DAMN) releaseChunk(x Ctx, c *dmaCache, ch *chunk) int64 {
	if !d.iommu.Attached(c.key.dev) {
		// The domain is already gone (device quarantined or removed):
		// there is nothing to unmap or invalidate — the teardown and the
		// domain-wide invalidation happen in the recovery path. Reclaim
		// the pages and metadata only.
		return d.releaseDeadChunk(x, c, ch)
	}
	// Revoke device access *before* the pages go back to the kernel.
	if err := d.iommu.Unmap(c.key.dev, ch.iova, d.ChunkBytes()); err != nil {
		panic("damn: shrinker unmap failed: " + err.Error())
	}
	perf.ChargeCat(x.C, d.teardownCyc, d.model.UnmapCycles*float64(d.cfg.ChunkPages))
	if err := d.iommu.InvQ().Submit(iommu.Command{Kind: iommu.InvRange, Dev: c.key.dev, Base: ch.iova, Size: d.ChunkBytes()}); err != nil {
		panic("damn: shrinker invalidation submit failed: " + err.Error())
	}
	d.iommu.InvQ().DrainRetry(x.C, d.model.ITETimeout)
	perf.ChargeTimeCat(x.C, d.teardownInvPS, d.model.IOTLBInvLatency)
	// Recycle the identity-region IOVA slot.
	if e, ok := iova.Decode(ch.iova); ok && !ch.huge {
		d.releaseRegionSlot(e.CPU, e.Rights, e.Dev, e.Offset)
	}
	d.unregisterChunk(ch)
	order := log2(d.cfg.ChunkPages)
	d.mem.FreePages(ch.head, order)
	return int64(d.cfg.ChunkPages)
}

// chunkIsDead reports whether the chunk predates the device's current
// generation: its mapping died with a destroyed domain. It runs on every
// chunk recycle, so it reads the lock-free generation snapshot (device
// resets are rare; they republish it under d.mu).
func (d *DAMN) chunkIsDead(ch *chunk) bool {
	gens, _ := d.genSnap.Load().([]uint64)
	dev := ch.cache.key.dev
	var gen uint64
	if dev >= 0 && dev < len(gens) {
		gen = gens[dev]
	}
	return ch.gen != gen
}

// releaseDeadChunk reclaims a chunk whose domain no longer exists: no unmap
// and no invalidation (the recovery path's domain teardown and InvDomain
// already revoked device access wholesale), just the IOVA slot, registry
// metadata and pages. Unlike releaseChunk this also handles huge chunks —
// the shared 2 MiB mapping died with the domain, so the usual "cannot unmap
// a shared mapping" constraint is moot.
func (d *DAMN) releaseDeadChunk(x Ctx, c *dmaCache, ch *chunk) int64 {
	perf.ChargeCat(x.C, d.teardownCyc, d.model.DamnFreeCycles)
	if e, ok := iova.Decode(ch.iova); ok && !ch.huge {
		d.releaseRegionSlot(e.CPU, e.Rights, e.Dev, e.Offset)
	}
	d.unregisterChunk(ch)
	d.mem.FreePages(ch.head, log2(d.cfg.ChunkPages))
	return int64(d.cfg.ChunkPages)
}

// ReleaseDevice reclaims every cached resource the allocator holds for one
// device after its domain was destroyed (quarantine, function-level reset,
// surprise removal). It must run *after* iommu.DetachDevice and after a
// domain-wide invalidation has drained, because nothing here touches the
// IOMMU.
//
// The device generation is bumped first, so chunks still pinned by in-flight
// buffers are torn down lazily by their last free (recycle's dead-chunk
// check) instead of re-entering magazines, and chunks created after a
// re-attach start a fresh generation. Then the per-core bump allocators
// retire their carving references, and the magazines, depot and superblock
// spares drain straight to the page allocator.
//
// Returns the pages released now and the chunks still pinned by live
// buffers (they conserve through the lazy path; damn.Audit stays exact
// throughout).
func (d *DAMN) ReleaseDevice(x Ctx, dev int) (releasedPages int64, pinnedChunks int) {
	if dev < 0 {
		return 0, 0
	}
	d.mu.Lock()
	for dev >= len(d.devGens) {
		d.devGens = append(d.devGens, 0)
	}
	d.devGens[dev]++
	gens := make([]uint64, len(d.devGens))
	copy(gens, d.devGens)
	d.genSnap.Store(gens)
	keys := make([]cacheKey, 0, len(d.caches))
	for k := range d.caches {
		if k.dev == dev {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.rights != b.rights {
			return a.rights < b.rights
		}
		return a.node < b.node
	})
	caches := make([]*dmaCache, 0, len(keys))
	for _, k := range keys {
		caches = append(caches, d.caches[k])
	}
	d.mu.Unlock()

	for _, c := range caches {
		// Retire the bump allocators' carving references. A chunk with no
		// outstanding buffers recycles immediately — and, being from a
		// stale generation now, tears down on the spot; one with live
		// buffers stays out until its last free.
		for cpu := range c.perCPU {
			for ctx := 0; ctx < 2; ctx++ {
				cc := c.perCPU[cpu][ctx]
				for _, b := range []*bumpAlloc{&cc.bump, &cc.bumpPages} {
					if b.ch != nil {
						ch := b.ch
						b.ch = nil
						b.offset = 0
						d.putChunkRef(x, ch)
					}
				}
			}
		}
		var victims []*chunk
		victims = append(victims, c.depot.drainFull()...)
		for cpu := range c.perCPU {
			for ctx := 0; ctx < 2; ctx++ {
				cc := c.perCPU[cpu][ctx]
				for _, m := range []*magazine{cc.loaded, cc.previous} {
					if m == nil {
						continue
					}
					victims = append(victims, m.chunks...)
					m.chunks = m.chunks[:0]
				}
			}
		}
		d.mu.Lock()
		victims = append(victims, c.depotSpare...)
		c.depotSpare = nil
		d.mu.Unlock()
		for _, ch := range victims {
			releasedPages += d.releaseDeadChunk(x, c, ch)
		}
	}

	d.mu.Lock()
	for _, ch := range d.registry {
		if ch != nil && ch.cache.key.dev == dev {
			pinnedChunks++
		}
	}
	d.mu.Unlock()
	return releasedPages, pinnedChunks
}
