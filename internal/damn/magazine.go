package damn

import (
	"sync"

	"github.com/asplos18/damn/internal/sim"
)

// magazine is an M-element LIFO stack of free chunks (Bonwick & Adams,
// USENIX ATC'01, as adopted by §5.4). Being per-core, push/pop need no
// synchronisation.
type magazine struct {
	chunks []*chunk
	cap    int
}

func newMagazine(m int) *magazine { return &magazine{chunks: make([]*chunk, 0, m), cap: m} }

func (m *magazine) empty() bool { return m == nil || len(m.chunks) == 0 }
func (m *magazine) full() bool  { return m != nil && len(m.chunks) == m.cap }

func (m *magazine) pop() *chunk {
	ch := m.chunks[len(m.chunks)-1]
	m.chunks = m.chunks[:len(m.chunks)-1]
	return ch
}

func (m *magazine) push(ch *chunk) { m.chunks = append(m.chunks, ch) }

// depot is the shared second-level store: full and empty magazines behind a
// lock. Cores only come here when both their magazines are exhausted (or
// both full), so the lock is off the fast path — the property that makes
// magazines scale (§5.4).
type depot struct {
	m int

	mu sync.Mutex

	full  []*magazine
	empty []*magazine

	// Exchanges counts depot round trips (tests assert the fast path).
	Exchanges uint64

	// Adaptive magazine sizing (Bonwick §4.2: "the actual magazine
	// replenishment policy is more sophisticated"): when cores hit the
	// depot too often, newly created magazines grow, raising the number
	// of operations a core can satisfy without the shared lock.
	// sinceGrow counts exchanges since the last growth step.
	sinceGrow int
}

// Magazine-size adaptation parameters.
const (
	// magGrowThreshold is the depot-exchange count that triggers growth.
	magGrowThreshold = 64
	// magMaxSize caps adaptive growth.
	magMaxSize = 64
)

// adapt is called under dp.mu on every exchange; it enlarges the magazine
// size when the depot is hit frequently.
func (dp *depot) adapt() {
	dp.sinceGrow++
	if dp.sinceGrow >= magGrowThreshold && dp.m < magMaxSize {
		dp.m *= 2
		if dp.m > magMaxSize {
			dp.m = magMaxSize
		}
		dp.sinceGrow = 0
	}
}

// MagazineSize reports the current (possibly grown) magazine capacity.
func (dp *depot) MagazineSize() int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.m
}

const depotLockHoldCycles = 220

// chargeLock bills the depot lock acquisition. The depot is off the fast
// path (cores come here only when both their magazines are exhausted), so
// contention is negligible and the lock is billed as a fixed cost.
func (dp *depot) chargeLock(x Ctx) {
	if task, ok := x.C.(*sim.Task); ok && task != nil {
		task.Charge(depotLockHoldCycles)
	}
}

// exchangeForFull hands the depot an empty magazine (may be nil) and
// returns a full one, or nil if the depot has none cached.
func (dp *depot) exchangeForFull(x Ctx, give *magazine) *magazine {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	dp.chargeLock(x)
	dp.Exchanges++
	dp.adapt()
	if len(dp.full) == 0 {
		return nil
	}
	fullMag := dp.full[len(dp.full)-1]
	dp.full = dp.full[:len(dp.full)-1]
	if give != nil {
		dp.empty = append(dp.empty, give)
	}
	return fullMag
}

// exchangeForEmpty hands the depot a full magazine and returns an empty one.
func (dp *depot) exchangeForEmpty(x Ctx, give *magazine) *magazine {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	dp.chargeLock(x)
	dp.Exchanges++
	dp.adapt()
	dp.full = append(dp.full, give)
	if n := len(dp.empty); n > 0 {
		m := dp.empty[n-1]
		dp.empty = dp.empty[:n-1]
		return m
	}
	return newMagazine(dp.m)
}

// drainFull removes and returns all chunks cached in the depot's full
// magazines (shrinker path).
func (dp *depot) drainFull() []*chunk {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	var out []*chunk
	for _, m := range dp.full {
		out = append(out, m.chunks...)
		m.chunks = m.chunks[:0]
		dp.empty = append(dp.empty, m)
	}
	dp.full = nil
	return out
}
