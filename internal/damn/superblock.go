package damn

import (
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
)

// Dense-huge-IOVA variant (Table 3 of the paper): instead of mapping each
// 64 KiB chunk with 4 KiB PTEs at a metadata-encoded IOVA, DAMN allocates
// 2 MiB physically contiguous superblocks, maps each with a single huge
// IOVA page from a *dense* region, and carves it into chunks. One IOTLB
// entry then covers 32 chunks, which is what recovers the 6.5 % of
// throughput the sparse encoding costs (Table 3, "huge iova pages + dense
// iova range").
//
// The paper's prototype cannot free these IOVAs (no metadata in them) and
// uses the variant for analysis only; here chunk recycling still works
// because chunk identity lives in the page-struct registry, but the
// shrinker skips huge chunks.

const superblockOrder = 9 // 512 pages = 2 MiB

// newChunkFromSuperblock returns a chunk carved from this cache's spare
// list, allocating and huge-mapping a new superblock when empty.
func (c *dmaCache) newChunkFromSuperblock(x Ctx) (*chunk, error) {
	d := c.d
	d.mu.Lock()
	spare := c.depotSpare
	if len(spare) > 0 {
		ch := spare[len(spare)-1]
		c.depotSpare = spare[:len(spare)-1]
		d.mu.Unlock()
		return ch, nil
	}
	// Reserve a dense 2 MiB IOVA slot (bit 47 set so dma_unmap still
	// recognises the buffer as DAMN's, but no identity encoding).
	base := iova.DAMNBit | iommu.IOVA(d.denseNext)
	d.denseNext += mem.HugePageSize
	d.mu.Unlock()

	head, err := d.mem.AllocPages(superblockOrder, c.key.node)
	if err != nil {
		return nil, err
	}
	pa := head.PFN().Addr()
	d.mem.Zero(pa, mem.HugePageSize)
	if err := d.iommu.MapHuge(c.key.dev, base, pa, c.key.rights); err != nil {
		d.mem.FreePages(head, superblockOrder)
		return nil, fmt.Errorf("damn: huge map failed: %w", err)
	}
	chunkOrder := log2(d.cfg.ChunkPages)
	heads := d.mem.SplitCompound(head, superblockOrder, chunkOrder)
	chunks := make([]*chunk, 0, len(heads))
	for i, h := range heads {
		ch := &chunk{
			head:  h,
			pa:    h.PFN().Addr(),
			iova:  base + iommu.IOVA(i*d.ChunkBytes()),
			cache: c,
			huge:  true,
		}
		d.registerChunk(ch)
		chunks = append(chunks, ch)
	}
	d.mu.Lock()
	c.depotSpare = append(c.depotSpare, chunks[1:]...)
	d.mu.Unlock()
	return chunks[0], nil
}
