package damn

import (
	"fmt"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
)

// Audit checks the chunk-conservation invariants that must hold at every
// quiescent point, whatever interleaving of Alloc/Free/Shrink (and injected
// faults) got us here:
//
//   - the registry holds exactly ChunksCreated-ChunksReleased live chunks;
//   - no two live chunks overlap (no duplication of pages or IOVAs);
//   - free registry slots and live slots partition the registry;
//   - FootprintBytes matches the live-chunk count exactly.
//
// It returns the number of live chunks and the first violated invariant, if
// any. The property tests run it between operation bursts, and the chaos
// harness runs it after every faulted workload: graceful degradation means
// dropping packets, never losing or double-owning chunks.
func (d *DAMN) Audit() (live int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	seenPA := map[mem.PhysAddr]bool{}
	seenIOVA := map[iommu.IOVA]bool{}
	for i, ch := range d.registry {
		if ch == nil {
			continue
		}
		live++
		if ch.regIdx != i+1 {
			return live, fmt.Errorf("damn: registry[%d] holds chunk with regIdx %d", i, ch.regIdx)
		}
		if seenPA[ch.pa] {
			return live, fmt.Errorf("damn: chunk at %#x registered twice", ch.pa)
		}
		seenPA[ch.pa] = true
		if !ch.huge && seenIOVA[ch.iova] {
			return live, fmt.Errorf("damn: IOVA %#x registered twice", ch.iova)
		}
		seenIOVA[ch.iova] = true
	}
	for _, slot := range d.freeSlots {
		if d.registry[slot] != nil {
			return live, fmt.Errorf("damn: free slot %d still holds a chunk", slot)
		}
	}
	if len(d.freeSlots) != len(d.registry)-live {
		return live, fmt.Errorf("damn: slot accounting broken: %d free + %d live != %d total",
			len(d.freeSlots), live, len(d.registry))
	}
	if got, want := d.ChunksCreated-d.ChunksReleased, uint64(live); got != want {
		return live, fmt.Errorf("damn: created-released = %d but %d chunks live", got, want)
	}
	if got, want := d.footprint, int64(live)*int64(d.ChunkBytes()); got != want {
		return live, fmt.Errorf("damn: footprint %d bytes, want %d for %d live chunks", got, want, live)
	}
	return live, nil
}
