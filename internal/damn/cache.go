package damn

import (
	"fmt"
	"sync"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
)

// chunk is the bottom-level allocation unit: C physically contiguous pages,
// permanently IOMMU-mapped for one (device, rights) and recycled through
// the magazine layer. Its head page's refcount counts live buffers plus one
// for the bump allocator currently carving it (the "page frag" scheme of
// §5.4).
type chunk struct {
	head  *mem.Page
	pa    mem.PhysAddr
	iova  iommu.IOVA
	cache *dmaCache
	// regIdx is this chunk's registry slot + 1 (also stored in the third
	// tail page struct).
	regIdx int
	// huge marks chunks carved from a 2 MiB huge-mapped superblock
	// (DenseHugeIOVA variant); they are never unmapped individually.
	huge bool
	// gen is the device generation the chunk was created under. A device
	// reset bumps the generation (ReleaseDevice); a chunk from an older
	// generation is "dead" — its IOMMU mapping died with the old domain —
	// and must be torn down on its last free instead of re-entering
	// circulation, where a rebuilt domain would know nothing of its IOVA.
	gen uint64
}

// dmaCache is one DMA cache: the per-core top level (two bump allocators ×
// two contexts) plus the per-core magazines and the shared depot (§5.4).
type dmaCache struct {
	d   *DAMN
	key cacheKey

	// perCPU[cpu][context]; context 0 = standard, 1 = interrupt.
	perCPU [][2]*cpuCache

	depot depot

	// depotSpare holds chunks carved from a superblock but not yet
	// handed out (DenseHugeIOVA mode only; guarded by DAMN.mu).
	depotSpare []*chunk
}

// cpuCache is the per-core, per-context state.
type cpuCache struct {
	// bump carves byte allocations; bumpPages carves page allocations —
	// two separate bump allocators per §5.4 so page-aligned requests do
	// not fragment the byte chunk.
	bump      bumpAlloc
	bumpPages bumpAlloc

	loaded   *magazine
	previous *magazine
}

// bumpAlloc carves a chunk by advancing an offset.
type bumpAlloc struct {
	ch     *chunk
	offset int
}

func newDMACache(d *DAMN, key cacheKey) *dmaCache {
	c := &dmaCache{d: d, key: key}
	c.perCPU = make([][2]*cpuCache, len(d.cfg.CoreNodes))
	for i := range c.perCPU {
		c.perCPU[i][0] = &cpuCache{}
		c.perCPU[i][1] = &cpuCache{}
	}
	c.depot.m = d.cfg.MagazineSize
	return c
}

func (c *dmaCache) cpu(x Ctx) *cpuCache {
	cpu := x.CPU
	if cpu < 0 || cpu >= len(c.perCPU) {
		cpu = 0
		c.d.noteShardClamp(c.key.dev)
	}
	return c.perCPU[cpu][c.d.ctxIndex(x)]
}

// allocBytes satisfies damn_alloc: 8-byte aligned bump allocation.
func (c *dmaCache) allocBytes(x Ctx, size int) (mem.PhysAddr, error) {
	cc := c.cpu(x)
	size = (size + 7) &^ 7
	return c.bumpFrom(x, &cc.bump, size, 8)
}

// allocPages satisfies damn_alloc_pages: naturally aligned page blocks.
func (c *dmaCache) allocPages(x Ctx, k int) (mem.PhysAddr, error) {
	cc := c.cpu(x)
	size := mem.PageSize << k
	return c.bumpFrom(x, &cc.bumpPages, size, size)
}

// bumpFrom allocates from a bump allocator, replacing its chunk when
// exhausted. Every allocation takes a chunk reference (§5.4).
func (c *dmaCache) bumpFrom(x Ctx, b *bumpAlloc, size, align int) (mem.PhysAddr, error) {
	for try := 0; try < 2; try++ {
		if b.ch != nil {
			off := (b.offset + align - 1) &^ (align - 1)
			if off+size <= c.d.ChunkBytes() {
				b.offset = off + size
				b.ch.head.Get()
				pa := b.ch.pa + mem.PhysAddr(off)
				if c.d.cfg.NoDMACache && b.offset >= c.d.ChunkBytes() {
					// Ablation: nothing is cached, so an exhausted
					// chunk is retired immediately — the last free
					// tears it down.
					ch := b.ch
					b.ch = nil
					b.offset = 0
					c.d.putChunkRef(x, ch)
				}
				return pa, nil
			}
			// Chunk exhausted: retire it (drop the allocator's own
			// reference; outstanding buffers keep it alive).
			ch := b.ch
			b.ch = nil
			b.offset = 0
			c.d.putChunkRef(x, ch)
		}
		ch, err := c.getChunk(x)
		if err != nil {
			return 0, err
		}
		// The bump allocator holds one reference while carving.
		ch.head.SetRefCount(1)
		b.ch = ch
		b.offset = 0
	}
	return 0, fmt.Errorf("damn: bump allocation failed for size %d", size)
}

// getChunk obtains a chunk from the magazine layer (§5.4 "Bottom-level
// chunk cache"): loaded magazine → previous magazine → depot exchange →
// fresh allocation.
func (c *dmaCache) getChunk(x Ctx) (*chunk, error) {
	if c.d.cfg.NoDMACache {
		// Ablation: no caching layer at all.
		return c.newChunk(x)
	}
	cc := c.cpu(x)
	if cc.loaded != nil && !cc.loaded.empty() {
		c.d.magHitC.Inc()
		return cc.loaded.pop(), nil
	}
	if cc.previous != nil && !cc.previous.empty() {
		cc.loaded, cc.previous = cc.previous, cc.loaded
		c.d.magHitC.Inc()
		return cc.loaded.pop(), nil
	}
	// Depot round trip.
	perf.ChargeCat(x.C, c.d.refillCyc, c.d.model.DamnRefillCycles)
	full := c.depot.exchangeForFull(x, cc.loaded)
	if full != nil {
		cc.loaded = full
		c.d.depotHitC.Inc()
		return cc.loaded.pop(), nil
	}
	// Depot has nothing cached: fall back to the page allocator and
	// build a fresh chunk (zeroed and IOMMU-mapped).
	return c.newChunk(x)
}

// putChunk returns a free chunk to the magazine layer.
func (c *dmaCache) putChunk(x Ctx, ch *chunk) {
	cc := c.cpu(x)
	if cc.loaded == nil {
		cc.loaded = newMagazine(c.depot.m)
	}
	if !cc.loaded.full() {
		cc.loaded.push(ch)
		return
	}
	if cc.previous == nil || !cc.previous.full() {
		cc.loaded, cc.previous = cc.previous, cc.loaded
		if cc.loaded == nil {
			cc.loaded = newMagazine(c.depot.m)
		}
		cc.loaded.push(ch)
		return
	}
	// Both magazines full: hand the loaded one to the depot.
	perf.ChargeCat(x.C, c.d.refillCyc, c.d.model.DamnRefillCycles)
	empty := c.depot.exchangeForEmpty(x, cc.loaded)
	cc.loaded = empty
	cc.loaded.push(ch)
}

// recycle is called when a chunk's refcount reaches zero: the freeing core
// looks up the owning cache (already done via the registry) and returns the
// chunk to *its own* magazine for that cache (§5.4 "Top-level
// deallocation"). The chunk's identity (and thus IOVA) is unchanged — it
// stays mapped, ready for reuse.
func (c *dmaCache) recycle(x Ctx, ch *chunk) {
	if c.d.chunkIsDead(ch) {
		// The chunk belongs to a generation whose domain a device reset
		// destroyed: its mapping is gone and the reset's domain-wide
		// invalidation retired any stale IOTLB entries. Tear it down
		// without touching the IOMMU.
		c.d.releaseDeadChunk(x, c, ch)
		return
	}
	if c.d.cfg.NoDMACache && !ch.huge {
		// Ablation: tear the chunk down on every free — unmap, wait
		// for the invalidation, release the pages. This is the cost
		// the permanent mapping avoids. releaseChunk charges the
		// unmap cycles and invalidation wait to x.
		c.d.releaseChunk(x, c, ch)
		return
	}
	c.putChunk(x, ch)
}

// newChunk allocates, zeroes and IOMMU-maps a fresh chunk for this cache.
func (c *dmaCache) newChunk(x Ctx) (*chunk, error) {
	d := c.d
	if d.cfg.DenseHugeIOVA {
		return c.newChunkFromSuperblock(x)
	}
	order := log2(d.cfg.ChunkPages)
	head, err := d.mem.AllocPages(order, c.key.node)
	if err != nil {
		return nil, err
	}
	pa := head.PFN().Addr()
	d.mem.Zero(pa, d.ChunkBytes())
	// Building a chunk is the slow path: zeroing plus IOMMU mapping of
	// every page. With the DMA cache this amortizes to ~nothing; the
	// NoDMACache ablation pays it on every allocation.
	d.buildC.Inc()
	perf.ChargeCat(x.C, d.buildCyc, d.model.ZeroCyclesPerByte*float64(d.ChunkBytes())+
		d.model.MapCycles*float64(d.cfg.ChunkPages))
	v, err := d.allocEncodedIOVA(x.CPU, c.key.rights, c.key.dev)
	if err != nil {
		d.mem.FreePages(head, order)
		return nil, err
	}
	if err := d.iommu.Map(c.key.dev, v, pa, d.ChunkBytes(), c.key.rights); err != nil {
		d.mem.FreePages(head, order)
		return nil, err
	}
	ch := &chunk{head: head, pa: pa, iova: v, cache: c}
	d.registerChunk(ch)
	return ch, nil
}

// log2 of a power of two.
func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// regionKey identifies one identity region within a CPU's shard.
type regionKey struct {
	rights iommu.Perm
	dev    int
}

// regionShard holds one CPU's identity-region allocators. IOVA regions are
// per-(cpu, rights, dev) by construction (Figure 3 encodes the CPU into the
// address), so sharding by CPU removes the global allocator lock from chunk
// creation: cores only contend when the shrinker releases another core's
// slots back.
type regionShard struct {
	mu      sync.Mutex
	regions map[regionKey]*regionAlloc
}

// shard returns the region shard for a CPU, clamping out-of-range values
// the same way the IOVA encoding does. A clamp means some caller handed us
// a CPU id the machine does not have — the work lands on shard 0, skewing
// per-core accounting and contention — so every clamp is counted and
// surfaced via ShardClamps / the damn.shard_cpu_clamps stat instead of
// disappearing silently.
func (d *DAMN) shard(cpu, dev int) *regionShard {
	if cpu < 0 || cpu >= len(d.shards) {
		cpu = 0
		d.noteShardClamp(dev)
	}
	return &d.shards[cpu]
}

// allocEncodedIOVA takes the next chunk-sized slot in the 1 GiB region of
// the (cpu, rights, dev) identity and encodes it per Figure 3.
func (d *DAMN) allocEncodedIOVA(cpu int, rights iommu.Perm, dev int) (iommu.IOVA, error) {
	if cpu < 0 || cpu >= len(d.cfg.CoreNodes) {
		cpu = 0
		d.noteShardClamp(dev)
	}
	s := d.shard(cpu, dev)
	s.mu.Lock()
	defer s.mu.Unlock()
	key := regionKey{rights: rights, dev: dev}
	r := s.regions[key]
	if r == nil {
		if s.regions == nil {
			s.regions = make(map[regionKey]*regionAlloc)
		}
		r = &regionAlloc{}
		s.regions[key] = r
	}
	off, err := r.alloc(uint64(d.ChunkBytes()))
	if err != nil {
		return 0, err
	}
	return iova.Encode(cpu, rights, dev, off)
}

// releaseRegionSlot returns a chunk's IOVA slot to its identity region
// (shrinker and dead-chunk teardown paths).
func (d *DAMN) releaseRegionSlot(cpu int, rights iommu.Perm, dev int, off uint64) {
	s := d.shard(cpu, dev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.regions[regionKey{rights: rights, dev: dev}]; r != nil {
		r.release(off)
	}
}

// regionAlloc hands out chunk-sized offsets within one identity's 1 GiB
// region, reusing freed slots (the shrinker returns them).
type regionAlloc struct {
	next uint64
	free []uint64
}

func (r *regionAlloc) alloc(size uint64) (uint64, error) {
	if n := len(r.free); n > 0 {
		off := r.free[n-1]
		r.free = r.free[:n-1]
		return off, nil
	}
	if r.next+size > iova.OffsetSpace {
		return 0, fmt.Errorf("damn: identity IOVA region exhausted")
	}
	off := r.next
	r.next += size
	return off, nil
}

func (r *regionAlloc) release(off uint64) { r.free = append(r.free, off) }

// registerChunk writes the §5.5 metadata: flag F plus the registry index on
// the third page, the IOVA on the second page, and accounts the footprint.
func (d *DAMN) registerChunk(ch *chunk) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var idx int
	if n := len(d.freeSlots); n > 0 {
		idx = d.freeSlots[n-1]
		d.freeSlots = d.freeSlots[:n-1]
		d.registry[idx] = ch
	} else {
		d.registry = append(d.registry, ch)
		idx = len(d.registry) - 1
	}
	ch.regIdx = idx + 1
	if dev := ch.cache.key.dev; dev >= 0 && dev < len(d.devGens) {
		ch.gen = d.devGens[dev]
	}
	tail1 := d.mem.PageOf(ch.head.PFN() + 1)
	tail1.Private = uint64(ch.iova)
	tail2 := d.mem.PageOf(ch.head.PFN() + 2)
	tail2.Private = uint64(ch.regIdx)
	tail2.SetFlags(mem.FlagDAMN)
	d.publishRegistryLocked()
	d.ChunksCreated++
	d.footprint += int64(d.ChunkBytes())
	d.createdC.Inc()
	d.footprintG.Add(int64(d.ChunkBytes()))
}

// publishRegistryLocked refreshes the lock-free registry snapshot chunkOf
// reads. Caller holds d.mu.
func (d *DAMN) publishRegistryLocked() {
	snap := make([]*chunk, len(d.registry))
	copy(snap, d.registry)
	d.regSnap.Store(snap)
}

// unregisterChunk removes the metadata (shrinker path).
func (d *DAMN) unregisterChunk(ch *chunk) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tail2 := d.mem.PageOf(ch.head.PFN() + 2)
	tail2.ClearFlags(mem.FlagDAMN)
	tail2.Private = 0
	d.mem.PageOf(ch.head.PFN() + 1).Private = 0
	d.registry[ch.regIdx-1] = nil
	d.freeSlots = append(d.freeSlots, ch.regIdx-1)
	d.publishRegistryLocked()
	ch.regIdx = 0
	d.ChunksReleased++
	d.footprint -= int64(d.ChunkBytes())
	d.releasedC.Inc()
	d.footprintG.Add(-int64(d.ChunkBytes()))
}
