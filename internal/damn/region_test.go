package damn

import (
	"math/rand"
	"testing"

	"github.com/asplos18/damn/internal/iova"
)

// TestRegionAllocFreeListBounded drives random alloc/release cycles against
// one identity-region allocator and checks the slot bookkeeping stays exact:
// the free list reuses slots LIFO (pop from tail), never holds a duplicate,
// and live+free slot counts never exceed the high-water carve — so arbitrary
// churn cannot grow the free list beyond the region's slot capacity.
func TestRegionAllocFreeListBounded(t *testing.T) {
	const size = uint64(64 << 10) // chunk bytes
	capacity := iova.OffsetSpace / size
	r := &regionAlloc{}
	rng := rand.New(rand.NewSource(5))
	live := make(map[uint64]bool)

	check := func(step int) {
		carved := r.next / size
		if uint64(len(live))+uint64(len(r.free)) != carved {
			t.Fatalf("step %d: %d live + %d free != %d carved",
				step, len(live), len(r.free), carved)
		}
		if uint64(len(r.free)) > capacity {
			t.Fatalf("step %d: free list %d exceeds region capacity %d",
				step, len(r.free), capacity)
		}
		seen := make(map[uint64]bool, len(r.free))
		for _, off := range r.free {
			if live[off] {
				t.Fatalf("step %d: offset %#x both live and free", step, off)
			}
			if seen[off] {
				t.Fatalf("step %d: offset %#x twice in free list", step, off)
			}
			seen[off] = true
		}
	}

	for step := 0; step < 20000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			off, err := r.alloc(size)
			if err != nil {
				t.Fatalf("step %d: alloc: %v", step, err)
			}
			if off%size != 0 {
				t.Fatalf("step %d: misaligned offset %#x", step, off)
			}
			if live[off] {
				t.Fatalf("step %d: offset %#x handed out twice", step, off)
			}
			live[off] = true
		} else {
			// Release a random live slot, then verify LIFO reuse: the
			// very next alloc must return it.
			var victim uint64
			n := rng.Intn(len(live))
			for off := range live {
				if n == 0 {
					victim = off
					break
				}
				n--
			}
			delete(live, victim)
			r.release(victim)
			if step%3 == 0 {
				off, err := r.alloc(size)
				if err != nil {
					t.Fatalf("step %d: realloc: %v", step, err)
				}
				if off != victim {
					t.Fatalf("step %d: reuse not LIFO: got %#x, want %#x",
						step, off, victim)
				}
				live[off] = true
			}
		}
		check(step)
	}

	// Drain everything: the free list ends exactly at the high-water carve
	// and a full refill consumes only recycled slots (next is unchanged).
	for off := range live {
		r.release(off)
		delete(live, off)
	}
	carved := r.next
	for i := uint64(0); i < carved/size; i++ {
		if _, err := r.alloc(size); err != nil {
			t.Fatalf("refill alloc %d: %v", i, err)
		}
	}
	if len(r.free) != 0 {
		t.Fatalf("refill left %d free slots", len(r.free))
	}
	if r.next != carved {
		t.Fatalf("refill carved new slots: next %#x, want %#x", r.next, carved)
	}
}
