package damn

import (
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
)

// Interposer adapts DAMN to the DMA API hook (§5.3): drivers keep calling
// dma_map/dma_unmap unmodified; for DAMN-allocated buffers the calls
// short-circuit (the mapping is permanent), and everything else falls back
// to the configured legacy scheme.
type Interposer struct {
	D *DAMN
}

var _ dmaapi.Interposer = (*Interposer)(nil)

// MapHook checks whether pa lies in a DAMN buffer (the §5.5 page-struct
// test) and, if so, returns its long-lived IOVA.
func (ip *Interposer) MapHook(c perf.Charger, dev int, pa mem.PhysAddr, size int, dir dmaapi.Direction) (iommu.IOVA, bool) {
	ch := ip.D.chunkOf(pa)
	if ch == nil {
		return 0, false
	}
	perf.Charge(c, ip.D.model.DamnMapLookupCycles)
	return ch.iova + iommu.IOVA(pa-ch.pa), true
}

// UnmapHook performs the MSB test of §5.3: DAMN-partition IOVAs need no
// teardown (the buffer will be freed later through damn_free).
func (ip *Interposer) UnmapHook(c perf.Charger, dev int, v iommu.IOVA, size int, dir dmaapi.Direction) bool {
	perf.Charge(c, ip.D.model.DamnUnmapCheckCycles)
	return iova.IsDAMN(v)
}
