package damn

import (
	"math/rand"
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
)

const testDev = 3

type fixture struct {
	mem   *mem.Memory
	iommu *iommu.IOMMU
	d     *DAMN
}

func newFixture(t testing.TB, cfgMod func(*Config)) *fixture {
	t.Helper()
	m, err := mem.New(mem.Config{TotalBytes: 128 << 20, NUMANodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := iommu.New(m)
	u.AttachDevice(testDev)
	cfg := DefaultConfig([]int{0, 0, 1, 1}) // 4 cores, 2 per node
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	d, err := New(m, u, perf.Default28Core(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: m, iommu: u, d: d}
}

func TestAllocReturnsDMAableBuffer(t *testing.T) {
	f := newFixture(t, nil)
	pa, err := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 1500)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := f.d.IOVAOf(pa)
	if !ok {
		t.Fatal("IOVAOf failed for DAMN buffer")
	}
	// The device can write the buffer through the permanent mapping.
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("packet data")); err != nil {
		t.Fatalf("device DMA to DAMN buffer failed: %v", err)
	}
	// And the kernel sees the data (no copies in between).
	got := make([]byte, 11)
	f.mem.Read(pa, got)
	if string(got) != "packet data" {
		t.Fatalf("kernel sees %q", got)
	}
	if err := f.d.Free(Ctx{}, pa); err != nil {
		t.Fatal(err)
	}
}

func TestAllocRespectsRights(t *testing.T) {
	f := newFixture(t, nil)
	// A read-only (TX) buffer must not be writable by the device.
	pa, err := f.d.Alloc(Ctx{}, testDev, iommu.PermRead, 512)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f.d.IOVAOf(pa)
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("overwrite")); err == nil {
		t.Fatal("device wrote a read-only TX buffer")
	}
	if _, err := f.iommu.DMARead(testDev, v, make([]byte, 16)); err != nil {
		t.Fatalf("device read of TX buffer failed: %v", err)
	}
	f.d.Free(Ctx{}, pa)
}

func TestAllocAlignment(t *testing.T) {
	f := newFixture(t, nil)
	for _, size := range []int{1, 7, 8, 100, 1500, 9000, 65536} {
		pa, err := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if pa%8 != 0 {
			t.Errorf("Alloc(%d) not 8-byte aligned: %#x", size, pa)
		}
		f.d.Free(Ctx{}, pa)
	}
}

func TestAllocPagesNaturalAlignment(t *testing.T) {
	f := newFixture(t, nil)
	for k := 0; k <= 4; k++ {
		p, err := f.d.AllocPages(Ctx{}, testDev, iommu.PermWrite, k)
		if err != nil {
			t.Fatalf("AllocPages(%d): %v", k, err)
		}
		if uint64(p.PFN())&uint64(1<<k-1) != 0 {
			t.Errorf("AllocPages(%d) at pfn %d not naturally aligned", k, p.PFN())
		}
		if err := f.d.FreePages(Ctx{}, p, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllocRejectsBadArgs(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, f.d.MaxAlloc()+1); err == nil {
		t.Error("oversize accepted")
	}
	if _, err := f.d.Alloc(Ctx{}, -1, iommu.PermWrite, 64); err == nil {
		t.Error("negative dev accepted")
	}
	if _, err := f.d.Alloc(Ctx{}, iova.MaxDev+1, iommu.PermWrite, 64); err == nil {
		t.Error("oversized dev accepted")
	}
	if _, err := f.d.Alloc(Ctx{}, testDev, 0, 64); err == nil {
		t.Error("zero rights accepted")
	}
}

func TestFreeOfNonDAMNFails(t *testing.T) {
	f := newFixture(t, nil)
	p, _ := f.mem.AllocPages(0, 0)
	if err := f.d.Free(Ctx{}, p.PFN().Addr()); err == nil {
		t.Fatal("freeing a non-DAMN page should fail")
	}
	if f.d.Owns(p.PFN().Addr()) {
		t.Fatal("Owns claimed a kernel page")
	}
}

func TestIOVAEncodingIdentity(t *testing.T) {
	f := newFixture(t, nil)
	pa, err := f.d.Alloc(Ctx{CPU: 2}, testDev, iommu.PermWrite, 256)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f.d.IOVAOf(pa)
	if !iova.IsDAMN(v) {
		t.Fatal("DAMN buffer IOVA lacks the partition bit")
	}
	e, ok := iova.Decode(v)
	if !ok {
		t.Fatal("decode failed")
	}
	if e.CPU != 2 || e.Rights != iommu.PermWrite || e.Dev != testDev {
		t.Fatalf("encoded identity = %+v", e)
	}
	f.d.Free(Ctx{CPU: 2}, pa)
}

func TestChunkSharingAndRefcount(t *testing.T) {
	f := newFixture(t, nil)
	// Two small allocations share one chunk; the chunk must survive
	// until both are freed.
	pa1, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 100)
	pa2, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 100)
	h1 := f.mem.Head(f.mem.PageOfAddr(pa1))
	h2 := f.mem.Head(f.mem.PageOfAddr(pa2))
	if h1 != h2 {
		t.Fatal("small allocations should share a chunk")
	}
	if err := f.d.Free(Ctx{}, pa1); err != nil {
		t.Fatal(err)
	}
	// Chunk still owned (pa2 alive + bump allocator reference).
	if !f.d.Owns(pa2) {
		t.Fatal("chunk metadata vanished while buffers live")
	}
	if err := f.d.Free(Ctx{}, pa2); err != nil {
		t.Fatal(err)
	}
}

func TestChunkRecycledThroughMagazine(t *testing.T) {
	f := newFixture(t, nil)
	x := Ctx{}
	// Exhaust chunks repeatedly with full-size allocations; freed chunks
	// must be reused rather than newly created.
	var pas []mem.PhysAddr
	for i := 0; i < 4; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
	created := f.d.ChunksCreated
	for round := 0; round < 10; round++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		f.d.Free(x, pa)
	}
	// Reuse may need one extra chunk (the bump allocator retires chunks
	// lazily) but must not create one per round.
	if f.d.ChunksCreated > created+2 {
		t.Fatalf("chunks not recycled: created %d -> %d", created, f.d.ChunksCreated)
	}
}

func TestMappingIsPermanent(t *testing.T) {
	f := newFixture(t, nil)
	x := Ctx{}
	pa, _ := f.d.Alloc(x, testDev, iommu.PermWrite, 2048)
	v, _ := f.d.IOVAOf(pa)
	f.d.Free(x, pa)
	// After free (buffer recycled, not shrunk), the mapping must still
	// exist and the IOMMU must never have seen an unmap.
	if f.iommu.Unmappings != 0 {
		t.Fatalf("DAMN unmapped a chunk on free: %d", f.iommu.Unmappings)
	}
	if _, err := f.iommu.Translate(testDev, v, true); err != nil {
		t.Fatal("permanent mapping destroyed by free")
	}
	if f.iommu.TLB().FlushCommands != 0 {
		t.Fatal("DAMN should not invalidate the IOTLB on free")
	}
}

func TestChunksAreZeroedOnCreation(t *testing.T) {
	f := newFixture(t, nil)
	z0 := f.mem.ZeroedBytes()
	pa, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermRead, 4096)
	if f.mem.ZeroedBytes() < z0+int64(f.d.ChunkBytes()) {
		t.Fatal("fresh chunk not zeroed (TX security, §5.6)")
	}
	buf := f.mem.Bytes(pa, 4096)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	f.d.Free(Ctx{}, pa)
}

func TestSeparateContexts(t *testing.T) {
	f := newFixture(t, nil)
	std := Ctx{CPU: 1, IRQ: false}
	irq := Ctx{CPU: 1, IRQ: true}
	pa1, err := f.d.Alloc(std, testDev, iommu.PermRead, 64)
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := f.d.Alloc(irq, testDev, iommu.PermRead, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The two contexts use distinct bump chunks (§5.4 "two physical
	// copies"), so the buffers come from different chunks.
	h1 := f.mem.Head(f.mem.PageOfAddr(pa1))
	h2 := f.mem.Head(f.mem.PageOfAddr(pa2))
	if h1 == h2 {
		t.Fatal("standard and interrupt context shared a bump chunk")
	}
	f.d.Free(std, pa1)
	f.d.Free(irq, pa2)
}

func TestNUMALocalChunks(t *testing.T) {
	f := newFixture(t, nil)
	pa0, _ := f.d.Alloc(Ctx{CPU: 0}, testDev, iommu.PermWrite, 64) // node 0
	pa1, _ := f.d.Alloc(Ctx{CPU: 2}, testDev, iommu.PermWrite, 64) // node 1
	if n := f.mem.PageOfAddr(pa0).Node; n != 0 {
		t.Errorf("core-0 buffer on node %d", n)
	}
	if n := f.mem.PageOfAddr(pa1).Node; n != 1 {
		t.Errorf("core-2 buffer on node %d", n)
	}
	f.d.Free(Ctx{CPU: 0}, pa0)
	f.d.Free(Ctx{CPU: 2}, pa1)
}

func TestByteGranularityIsolation(t *testing.T) {
	// §4/§5.6: DAMN pages contain only DMA buffers, so nothing sensitive
	// is ever co-located. Verify a device probing around its buffer only
	// ever reaches DAMN memory.
	f := newFixture(t, nil)
	pa, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 512)
	v, _ := f.d.IOVAOf(pa)
	probe := v &^ iommu.IOVA(mem.PageMask) // page base
	got, err := f.iommu.Translate(testDev, probe, true)
	if err != nil {
		t.Fatal(err)
	}
	if !f.d.Owns(got) {
		t.Fatal("device reached non-DAMN memory via a DAMN mapping")
	}
	f.d.Free(Ctx{}, pa)
}

func TestShrinkerReleasesCachedChunks(t *testing.T) {
	f := newFixture(t, nil)
	x := Ctx{}
	var pas []mem.PhysAddr
	for i := 0; i < 8; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
	footBefore := f.d.FootprintBytes()
	memBefore := f.mem.AllocatedPages()
	released := f.d.Shrink(x)
	if released == 0 {
		t.Fatal("shrinker released nothing despite cached chunks")
	}
	if f.d.FootprintBytes() >= footBefore {
		t.Fatal("footprint did not shrink")
	}
	if f.mem.AllocatedPages() >= memBefore {
		t.Fatal("pages not returned to the system")
	}
}

func TestShrinkerRevokesDeviceAccess(t *testing.T) {
	f := newFixture(t, nil)
	x := Ctx{}
	// Fill chunk 1 and keep its buffer alive while the bump allocator
	// moves on to chunk 2; freeing the chunk-1 buffer then parks chunk 1
	// in the magazine, where the shrinker can take it.
	pa, _ := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
	v, _ := f.d.IOVAOf(pa)
	// Prime the IOTLB so a lazy shrinker would leave a stale entry.
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("x")); err != nil {
		t.Fatal(err)
	}
	pa2, _ := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
	f.d.Free(x, pa)
	f.d.Shrink(x)
	defer f.d.Free(x, pa2)
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("use-after-shrink")); err == nil {
		t.Fatal("device retained access to shrunk chunk — kernel memory exposed")
	}
}

func TestShrinkerLeavesLiveBuffersAlone(t *testing.T) {
	f := newFixture(t, nil)
	x := Ctx{}
	live, _ := f.d.Alloc(x, testDev, iommu.PermWrite, 1024)
	vLive, _ := f.d.IOVAOf(live)
	f.d.Shrink(x)
	if _, err := f.iommu.DMAWrite(testDev, vLive, []byte("still here")); err != nil {
		t.Fatalf("shrinker broke a live buffer: %v", err)
	}
	f.d.Free(x, live)
}

func TestDenseHugeIOVAVariant(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.DenseHugeIOVA = true })
	x := Ctx{}
	var pas []mem.PhysAddr
	for i := 0; i < 40; i++ { // spans more than one 2 MiB superblock
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		v, ok := f.d.IOVAOf(pa)
		if !ok || !iova.IsDAMN(v) {
			t.Fatal("dense variant lost the DAMN partition bit")
		}
		if _, err := f.iommu.DMAWrite(testDev, v, []byte("dense")); err != nil {
			t.Fatalf("DMA to dense-huge chunk failed: %v", err)
		}
		pas = append(pas, pa)
	}
	// IOVAs must be dense: total huge mappings should be 2 (40 chunks /
	// 32 per superblock), not 40.
	if got := f.iommu.MappedPages(testDev); got != 2*512 {
		t.Fatalf("mapped pages = %d, want 1024 (two huge pages)", got)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
	// Recycling still works in this implementation.
	created := f.d.ChunksCreated
	pa, _ := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
	if f.d.ChunksCreated != created {
		t.Fatal("dense chunks not recycled")
	}
	f.d.Free(x, pa)
}

func TestDenseHugeIOTLBReach(t *testing.T) {
	// The point of Table 3's variant: consecutive chunks share an IOTLB
	// entry. Touch 32 chunks of one superblock and expect ~1 miss.
	f := newFixture(t, func(c *Config) { c.DenseHugeIOVA = true })
	x := Ctx{}
	var iovas []iommu.IOVA
	var pas []mem.PhysAddr
	for i := 0; i < 32; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		v, _ := f.d.IOVAOf(pa)
		iovas = append(iovas, v)
		pas = append(pas, pa)
	}
	m0 := f.iommu.TLB().Misses
	for _, v := range iovas {
		if _, err := f.iommu.Translate(testDev, v, true); err != nil {
			t.Fatal(err)
		}
	}
	if misses := f.iommu.TLB().Misses - m0; misses > 1 {
		t.Fatalf("dense huge mapping took %d misses for one superblock, want <= 1", misses)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
}

func TestSparseIOVAsMissMore(t *testing.T) {
	// Contrast with the default encoding: chunks allocated by different
	// CPUs live in different regions, so the same working set needs one
	// IOTLB entry per chunk page — more misses.
	f := newFixture(t, nil)
	var iovas []iommu.IOVA
	for cpu := 0; cpu < 4; cpu++ {
		for i := 0; i < 8; i++ {
			pa, err := f.d.Alloc(Ctx{CPU: cpu}, testDev, iommu.PermWrite, f.d.MaxAlloc())
			if err != nil {
				t.Fatal(err)
			}
			v, _ := f.d.IOVAOf(pa)
			iovas = append(iovas, v)
		}
	}
	m0 := f.iommu.TLB().Misses
	for _, v := range iovas {
		f.iommu.Translate(testDev, v, true)
	}
	if misses := f.iommu.TLB().Misses - m0; misses < 16 {
		t.Fatalf("sparse encoding took only %d misses; expected one per chunk", misses)
	}
}

func TestFootprintAccounting(t *testing.T) {
	f := newFixture(t, nil)
	if f.d.FootprintBytes() != 0 {
		t.Fatal("fresh allocator has footprint")
	}
	pa, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 64)
	if f.d.FootprintBytes() < int64(f.d.ChunkBytes()) {
		t.Fatal("footprint missing the live chunk")
	}
	f.d.Free(Ctx{}, pa)
	// Freed chunk stays in the magazines: footprint unchanged (§6.3:
	// memory remains in the DMA cache until the shrinker runs).
	if f.d.FootprintBytes() < int64(f.d.ChunkBytes()) {
		t.Fatal("footprint dropped without a shrink")
	}
	f.d.Shrink(Ctx{})
}

func TestRandomizedAllocFree(t *testing.T) {
	f := newFixture(t, nil)
	rng := rand.New(rand.NewSource(11))
	type buf struct {
		pa   mem.PhysAddr
		size int
		tag  byte
	}
	var live []buf
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			size := rng.Intn(f.d.MaxAlloc()) + 1
			x := Ctx{CPU: rng.Intn(4), IRQ: rng.Intn(2) == 0}
			rights := []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW}[rng.Intn(3)]
			pa, err := f.d.Alloc(x, testDev, rights, size)
			if err != nil {
				continue
			}
			tag := byte(step)
			b := f.mem.Bytes(pa, size)
			for i := range b {
				b[i] = tag
			}
			// No overlap with any live buffer.
			for _, o := range live {
				if pa < o.pa+mem.PhysAddr(o.size) && o.pa < pa+mem.PhysAddr(size) {
					t.Fatalf("overlap: [%#x,+%d) with [%#x,+%d)", pa, size, o.pa, o.size)
				}
			}
			live = append(live, buf{pa, size, tag})
		} else {
			i := rng.Intn(len(live))
			b := live[i]
			// Contents intact (nothing scribbled on it).
			data := f.mem.Bytes(b.pa, b.size)
			for j, v := range data {
				if v != b.tag {
					t.Fatalf("buffer %#x corrupted at %d", b.pa, j)
				}
			}
			x := Ctx{CPU: rng.Intn(4), IRQ: rng.Intn(2) == 0}
			if err := f.d.Free(x, b.pa); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, b := range live {
		f.d.Free(Ctx{}, b.pa)
	}
}

func TestInterposerIntegration(t *testing.T) {
	f := newFixture(t, nil)
	ip := &Interposer{D: f.d}
	pa, _ := f.d.Alloc(Ctx{}, testDev, iommu.PermWrite, 1500)
	v, ok := ip.MapHook(nil, testDev, pa, 1500, 1 /* FromDevice */)
	if !ok {
		t.Fatal("MapHook rejected a DAMN buffer")
	}
	want, _ := f.d.IOVAOf(pa)
	if v != want {
		t.Fatalf("MapHook iova %#x, want %#x", v, want)
	}
	if !ip.UnmapHook(nil, testDev, v, 1500, 1) {
		t.Fatal("UnmapHook rejected a DAMN IOVA")
	}
	// Non-DAMN addresses pass through.
	p, _ := f.mem.AllocPages(0, 0)
	if _, ok := ip.MapHook(nil, testDev, p.PFN().Addr(), 100, 1); ok {
		t.Fatal("MapHook claimed a kernel page")
	}
	if ip.UnmapHook(nil, testDev, 0x1000, 100, 1) {
		t.Fatal("UnmapHook claimed a legacy IOVA")
	}
	f.d.Free(Ctx{}, pa)
}

func TestManyDevicesAndCaches(t *testing.T) {
	f := newFixture(t, nil)
	for dev := 0; dev < 8; dev++ {
		f.iommu.AttachDevice(dev)
		pa, err := f.d.Alloc(Ctx{}, dev, iommu.PermRW, 4096)
		if err != nil {
			t.Fatalf("dev %d: %v", dev, err)
		}
		v, _ := f.d.IOVAOf(pa)
		e, _ := iova.Decode(v)
		if e.Dev != dev {
			t.Fatalf("buffer encoded dev %d, want %d", e.Dev, dev)
		}
		// Device isolation: another device cannot use this mapping.
		other := (dev + 1) % 8
		if _, err := f.iommu.Translate(other, v, true); err == nil {
			t.Fatalf("device %d reached device %d's buffer", other, dev)
		}
		f.d.Free(Ctx{}, pa)
	}
}

func TestAblationNoDMACacheTearsDown(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.NoDMACache = true })
	x := Ctx{}
	pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f.d.IOVAOf(pa)
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("x")); err != nil {
		t.Fatal(err)
	}
	maps := f.iommu.Mappings
	if err := f.d.Free(x, pa); err != nil {
		t.Fatal(err)
	}
	// The chunk must be gone: unmapped, invalidated, pages released.
	if f.iommu.Unmappings == 0 {
		t.Fatal("no unmap on free in no-cache mode")
	}
	if _, err := f.iommu.DMAWrite(testDev, v, []byte("y")); err == nil {
		t.Fatal("device retained access after free")
	}
	if f.d.FootprintBytes() != 0 {
		t.Fatalf("footprint %d after free", f.d.FootprintBytes())
	}
	// The next allocation builds a brand-new chunk.
	pa2, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if f.iommu.Mappings == maps {
		t.Fatal("no fresh mapping for the second allocation")
	}
	f.d.Free(x, pa2)
}

func TestAblationSingleContextSharesCopy(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SingleContext = true })
	std := Ctx{CPU: 1, IRQ: false}
	irq := Ctx{CPU: 1, IRQ: true}
	pa1, err := f.d.Alloc(std, testDev, iommu.PermRead, 64)
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := f.d.Alloc(irq, testDev, iommu.PermRead, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike the full design (TestSeparateContexts), both contexts carve
	// the same bump chunk.
	h1 := f.mem.Head(f.mem.PageOfAddr(pa1))
	h2 := f.mem.Head(f.mem.PageOfAddr(pa2))
	if h1 != h2 {
		t.Fatal("single-context ablation still split by context")
	}
	f.d.Free(std, pa1)
	f.d.Free(irq, pa2)
}

func TestMagazineDepotRoundTrips(t *testing.T) {
	// Fill and drain far more chunks than one magazine holds: the depot
	// must absorb full magazines and hand them back.
	f := newFixture(t, func(c *Config) { c.MagazineSize = 2 })
	x := Ctx{}
	var pas []mem.PhysAddr
	for i := 0; i < 12; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for _, pa := range pas {
		if err := f.d.Free(x, pa); err != nil {
			t.Fatal(err)
		}
	}
	created := f.d.ChunksCreated
	// Everything cached: a second round must create nothing.
	for i := 0; i < 12; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas[i] = pa
	}
	if f.d.ChunksCreated > created+1 {
		t.Fatalf("depot failed to cache: %d -> %d chunks", created, f.d.ChunksCreated)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
}

func TestProducerConsumerPattern(t *testing.T) {
	// §5.4's target pattern: one core allocates, another frees. Chunks
	// drain into the freeing core's magazines and flow back through the
	// depot to the allocating core.
	f := newFixture(t, nil)
	producer := Ctx{CPU: 0}
	consumer := Ctx{CPU: 2}
	for round := 0; round < 30; round++ {
		pa, err := f.d.Alloc(producer, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.d.Free(consumer, pa); err != nil {
			t.Fatal(err)
		}
	}
	// Footprint must stay bounded (chunks recycle; they don't leak).
	if f.d.FootprintBytes() > 40*int64(f.d.ChunkBytes()) {
		t.Fatalf("footprint grew unbounded: %d bytes", f.d.FootprintBytes())
	}
}

func TestAdaptiveMagazineGrowth(t *testing.T) {
	// Hammer the depot with a producer/consumer flow on a tiny magazine
	// size: the depot must respond by growing magazines, reducing its
	// own hit rate (Bonwick's adaptive policy).
	f := newFixture(t, func(c *Config) { c.MagazineSize = 1 })
	producer := Ctx{CPU: 0}
	consumer := Ctx{CPU: 2}
	cache := f.d.cache(cacheKey{dev: testDev, rights: iommu.PermWrite, node: 0})
	if got := cache.depot.MagazineSize(); got != 1 {
		t.Fatalf("initial magazine size %d", got)
	}
	// Keep several buffers in flight (as a ring does) so the last chunk
	// reference drops on the consumer side and chunks flow through the
	// consumer's magazines and the depot back to the producer.
	var inflight []mem.PhysAddr
	for round := 0; round < 500; round++ {
		pa, err := f.d.Alloc(producer, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		inflight = append(inflight, pa)
		if len(inflight) > 8 {
			if err := f.d.Free(consumer, inflight[0]); err != nil {
				t.Fatal(err)
			}
			inflight = inflight[1:]
		}
	}
	for _, pa := range inflight {
		f.d.Free(consumer, pa)
	}
	grown := cache.depot.MagazineSize()
	if grown <= 1 {
		t.Fatalf("magazine size did not adapt: still %d after heavy depot traffic", grown)
	}
	if grown > magMaxSize {
		t.Fatalf("magazine size %d exceeded the cap", grown)
	}
	// The allocator must still be fully functional with mixed sizes.
	pa, err := f.d.Alloc(producer, testDev, iommu.PermWrite, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.d.Free(consumer, pa); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkerIntegrationWithMemoryPressure(t *testing.T) {
	// End-to-end §5.4: DAMN's cached chunks are released when the page
	// allocator hits pressure, via the registered shrinker.
	f := newFixture(t, nil)
	f.mem.RegisterShrinker(func() int64 { return f.d.Shrink(Ctx{}) })
	x := Ctx{}
	// Park a pile of chunks in the magazines.
	var pas []mem.PhysAddr
	for i := 0; i < 16; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for _, pa := range pas {
		f.d.Free(x, pa)
	}
	cachedBefore := f.d.FootprintBytes()
	if cachedBefore == 0 {
		t.Fatal("nothing cached")
	}
	// Exhaust the machine with kernel allocations; the tail must be fed
	// by DAMN's reclaimed chunks.
	var hogs []*mem.Page
	for {
		p, err := f.mem.AllocPages(4, 0)
		if err != nil {
			break
		}
		hogs = append(hogs, p)
	}
	if f.mem.ReclaimRuns() == 0 {
		t.Fatal("pressure never reached the shrinker")
	}
	if f.d.FootprintBytes() >= cachedBefore {
		t.Fatal("DAMN released nothing under pressure")
	}
	for _, p := range hogs {
		f.mem.FreePages(p, 4)
	}
}

// TestShardAffinity is the per-core shard invariant: an allocation made
// with CPU id n must come out of shard n — the IOVA's encoded CPU field is
// the witness — and no in-range request may trip the clamp counter.
func TestShardAffinity(t *testing.T) {
	f := newFixture(t, nil) // 4 cores
	for cpu := 0; cpu < 4; cpu++ {
		pa, err := f.d.Alloc(Ctx{CPU: cpu}, testDev, iommu.PermWrite, 1500)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := f.d.IOVAOf(pa)
		if !ok {
			t.Fatal("IOVAOf failed")
		}
		enc, ok := iova.Decode(v)
		if !ok {
			t.Fatal("iova.Decode failed")
		}
		if enc.CPU != cpu {
			t.Fatalf("cpu %d allocation landed on shard %d", cpu, enc.CPU)
		}
		if err := f.d.Free(Ctx{CPU: cpu}, pa); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.d.ShardClamps(); got != 0 {
		t.Fatalf("in-range CPUs tripped the shard clamp %d times", got)
	}
}

// TestShardClampCounted: out-of-range CPU ids still work (aliased to shard
// 0, like the encoding clamps them) but are counted, not silent.
func TestShardClampCounted(t *testing.T) {
	f := newFixture(t, nil)
	for _, cpu := range []int{-1, 4, 99} {
		pa, err := f.d.Alloc(Ctx{CPU: cpu}, testDev, iommu.PermWrite, 1500)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := f.d.IOVAOf(pa)
		if !ok {
			t.Fatal("IOVAOf failed")
		}
		enc, ok := iova.Decode(v)
		if !ok {
			t.Fatal("iova.Decode failed")
		}
		if enc.CPU != 0 {
			t.Fatalf("out-of-range cpu %d landed on shard %d, want 0", cpu, enc.CPU)
		}
		if err := f.d.Free(Ctx{CPU: cpu}, pa); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.d.ShardClamps(); got == 0 {
		t.Fatal("out-of-range CPU ids were clamped silently (counter stayed 0)")
	}
}
