// Package damn implements DAMN — the DMA-Aware Malloc for Networking — the
// primary contribution of the paper (§5). DAMN is a memory allocator whose
// buffers are *permanently* mapped in the IOMMU for one specific device and
// access right, so network buffers never need per-DMA map/unmap work or
// IOTLB invalidations, while the device can never reach anything except
// packet data.
//
// Structure (paper §5.4):
//
//   - A DMA cache exists per (device, access rights, NUMA node).
//   - The bottom level caches chunks — C=16 physically contiguous pages
//     (64 KiB), IOMMU-mapped at creation — in per-core magazines backed by
//     a shared depot (Bonwick's magazine scheme).
//   - The top level is a pair of per-core bump-pointer ("page frag")
//     allocators per context — one for byte allocations, one for
//     page allocations — carving the current chunk; chunk lifetime is
//     managed with the page reference count of the chunk's head page.
//   - Everything exists twice per core: once for standard context and once
//     for interrupt context, so the allocator never needs to disable
//     interrupts (§5.4 "Physical DMA cache organization").
//
// Buffer metadata (the chunk's IOVA and identity) lives in the otherwise
// unused page structs of the chunk's tail pages, with flag F on the third
// page marking the compound as DAMN-owned (§5.5) — no change to the page
// struct layout is needed.
package damn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/iova"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/perf"
	"github.com/asplos18/damn/internal/stats"
)

// Config sizes the allocator.
type Config struct {
	// ChunkPages is C, the pages per chunk; 16 gives the 64 KiB maximum
	// buffer the Linux network stack needs (§5.4).
	ChunkPages int
	// MagazineSize is M, the chunks per magazine.
	MagazineSize int
	// CoreNodes maps core index -> NUMA node; its length is the core
	// count (and bounds the cpu field of encoded IOVAs).
	CoreNodes []int

	// DenseHugeIOVA enables the Table 3 analysis variant: chunks are
	// carved out of 2 MiB superblocks mapped with huge IOVA pages from a
	// single dense region, maximising IOTLB reach. The paper's prototype
	// cannot free such IOVAs; this implementation still recycles chunks
	// through the registry, but the shrinker is disabled in this mode.
	DenseHugeIOVA bool

	// SingleContext is an ablation of §5.4's "two physical copies":
	// one DMA-cache copy per core, protected by disabling interrupts
	// around every operation (the design the paper rejects because
	// "interrupt disabling has measurable negative impact on I/O
	// throughput").
	SingleContext bool

	// NoDMACache is an ablation of the chunk cache itself: freed chunks
	// are unmapped, invalidated and returned to the page allocator
	// immediately, and every allocation builds (zeroes + IOMMU-maps) a
	// fresh chunk — demonstrating why the permanent mapping is the whole
	// point.
	NoDMACache bool
}

// DefaultConfig matches the paper's parameters.
func DefaultConfig(coreNodes []int) Config {
	return Config{ChunkPages: 16, MagazineSize: 8, CoreNodes: coreNodes}
}

// Ctx carries the identity of the executing context into allocator calls:
// which core runs, whether it is in interrupt context, and where to charge
// simulated cycle costs. A zero Ctx is valid for functional tests.
type Ctx struct {
	C   perf.Charger
	CPU int
	IRQ bool
}

func (x Ctx) context() int {
	if x.IRQ {
		return 1
	}
	return 0
}

// ctxIndex selects the per-core cache copy; the SingleContext ablation
// collapses both contexts onto one copy and pays the interrupt-disable
// cost on every operation instead.
func (d *DAMN) ctxIndex(x Ctx) int {
	if d.cfg.SingleContext {
		return 0
	}
	return x.context()
}

func (d *DAMN) chargeCtxProtection(x Ctx) {
	if d.cfg.SingleContext {
		perf.Charge(x.C, d.model.IRQDisableCycles)
	}
}

// DAMN is the allocator instance for one machine.
type DAMN struct {
	mem   *mem.Memory
	iommu *iommu.IOMMU
	model *perf.Model
	cfg   Config

	mu     sync.Mutex
	caches map[cacheKey]*dmaCache
	// cacheSnap is a copy-on-write snapshot of caches: Alloc/Free read it
	// without taking d.mu (the §5.4 point — the hot path is per-core), and
	// the rare cache creation republishes it under d.mu.
	cacheSnap atomic.Value // map[cacheKey]*dmaCache
	// shards hold the per-CPU identity-region IOVA allocators: chunk
	// creation on one core never contends with another core's.
	shards []regionShard
	// registry maps small indexes (stored in tail page structs) back to
	// chunk objects; the functional equivalent of deriving the chunk
	// from page-struct metadata. regSnap is its copy-on-write snapshot:
	// chunkOf (every Free and every interposed dma_map) reads it without
	// d.mu; register/unregister republish under d.mu.
	registry  []*chunk
	freeSlots []int
	regSnap   atomic.Value // []*chunk

	// dense is the single dense IOVA bump used in DenseHugeIOVA mode.
	denseNext uint64

	// devGens counts device resets, indexed by device id: chunks record the
	// generation they were created under, and a chunk whose generation is
	// stale is dead — its mapping died with the old domain (see
	// ReleaseDevice). genSnap is the lock-free read-side copy consulted on
	// every chunk recycle.
	devGens []uint64
	genSnap atomic.Value // []uint64

	// Stats for Fig 10 / EXPERIMENTS.md.
	ChunksCreated  uint64
	ChunksReleased uint64
	footprint      int64 // bytes currently owned by DAMN

	// shardClamps counts requests whose CPU id was out of range and got
	// aliased to shard/magazine 0 — see (*DAMN).shard. Non-zero means the
	// per-core affinity invariant was violated somewhere upstream.
	shardClamps atomic.Uint64

	// Observability (nil-safe handles; see SetStats). magHitC counts chunk
	// gets served by a per-core magazine, depotHitC by a depot exchange,
	// and buildC the slow path that zeroes and IOMMU-maps a fresh chunk —
	// together they give the cache hit rate §5.4's design exists for.
	magHitC      *stats.Counter
	depotHitC    *stats.Counter
	buildC       *stats.Counter
	createdC     *stats.Counter
	releasedC    *stats.Counter
	shrinkRunsC  *stats.Counter
	shrinkPagesC *stats.Counter
	shardClampC  *stats.Counter
	footprintG   *stats.Gauge
	// Per-device clamp attribution: with tenants mapped to virtual
	// functions, a noisy tenant must not hide behind the machine-global
	// clamp counter. Guarded by clampMu (clamps are off the fast path —
	// zero in a healthy run).
	reg            *stats.Registry
	clampMu        sync.Mutex
	shardClampsBy  []uint64
	shardClampDevC []*stats.Counter
	allocCyc       *stats.FloatCounter
	freeCyc        *stats.FloatCounter
	refillCyc      *stats.FloatCounter
	buildCyc       *stats.FloatCounter
	teardownCyc    *stats.FloatCounter
	teardownInvPS  *stats.FloatCounter
}

// SetStats attaches a metrics registry: the allocator records magazine and
// depot hit rates, chunk creation/teardown, shrinker reclaim, and the
// simulated cycles it charges per cost category.
func (d *DAMN) SetStats(r *stats.Registry) {
	d.reg = r
	d.magHitC = r.Counter("damn", "magazine_hits")
	d.depotHitC = r.Counter("damn", "depot_hits")
	d.buildC = r.Counter("damn", "chunk_builds")
	d.createdC = r.Counter("damn", "chunks_created")
	d.releasedC = r.Counter("damn", "chunks_released")
	d.shrinkRunsC = r.Counter("damn", "shrink_runs")
	d.shrinkPagesC = r.Counter("damn", "shrink_pages")
	d.shardClampC = r.Counter("damn", "shard_cpu_clamps")
	d.footprintG = r.Gauge("damn", "footprint_bytes")
	d.allocCyc = r.FloatCounter("perf", "cycles_damn_alloc")
	d.freeCyc = r.FloatCounter("perf", "cycles_damn_free")
	d.refillCyc = r.FloatCounter("perf", "cycles_damn_refill")
	d.buildCyc = r.FloatCounter("perf", "cycles_damn_build")
	d.teardownCyc = r.FloatCounter("perf", "cycles_damn_teardown")
	d.teardownInvPS = r.FloatCounter("perf", "inv_wait_ps_damn_teardown")
}

type cacheKey struct {
	dev    int
	rights iommu.Perm
	node   int
}

// New builds a DAMN allocator over the machine's memory and IOMMU.
func New(m *mem.Memory, u *iommu.IOMMU, model *perf.Model, cfg Config) (*DAMN, error) {
	if cfg.ChunkPages <= 0 || cfg.ChunkPages&(cfg.ChunkPages-1) != 0 {
		return nil, fmt.Errorf("damn: ChunkPages must be a power of two, got %d", cfg.ChunkPages)
	}
	if cfg.ChunkPages < 4 {
		// Metadata needs tail pages 1 and 2 (§5.5), so chunks must
		// have at least 4 pages.
		return nil, fmt.Errorf("damn: ChunkPages must be >= 4 for tail-page metadata")
	}
	if cfg.MagazineSize <= 0 {
		return nil, fmt.Errorf("damn: MagazineSize must be positive")
	}
	if len(cfg.CoreNodes) == 0 {
		return nil, fmt.Errorf("damn: CoreNodes must not be empty")
	}
	if len(cfg.CoreNodes) > iova.MaxCPU+1 {
		return nil, fmt.Errorf("damn: %d cores exceed the IOVA encoding's %d", len(cfg.CoreNodes), iova.MaxCPU+1)
	}
	return &DAMN{
		mem:    m,
		iommu:  u,
		model:  model,
		cfg:    cfg,
		caches: make(map[cacheKey]*dmaCache),
		shards: make([]regionShard, len(cfg.CoreNodes)),
	}, nil
}

// ChunkBytes is the byte size of one chunk.
func (d *DAMN) ChunkBytes() int { return d.cfg.ChunkPages * mem.PageSize }

// MaxAlloc is the largest supported allocation (§5.4: 64 KiB with the
// default configuration).
func (d *DAMN) MaxAlloc() int { return d.ChunkBytes() }

// FootprintBytes reports the memory currently owned by DAMN (in-use
// buffers, bump chunks, magazines and depot) — the Fig 10 metric.
func (d *DAMN) FootprintBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.footprint
}

// noteShardClamp records one out-of-range-CPU alias to shard 0, attributed
// to the device (and hence tenant) whose request carried the bogus CPU id.
// dev < 0 means the caller had no device identity in scope.
func (d *DAMN) noteShardClamp(dev int) {
	d.shardClamps.Add(1)
	d.shardClampC.Add(1)
	if dev < 0 {
		return
	}
	d.clampMu.Lock()
	defer d.clampMu.Unlock()
	for dev >= len(d.shardClampsBy) {
		d.shardClampsBy = append(d.shardClampsBy, 0)
	}
	d.shardClampsBy[dev]++
	if d.reg != nil {
		for dev >= len(d.shardClampDevC) {
			d.shardClampDevC = append(d.shardClampDevC, nil)
		}
		c := d.shardClampDevC[dev]
		if c == nil {
			c = d.reg.Counter("damn", fmt.Sprintf("shard_cpu_clamps_dev%d", dev))
			d.shardClampDevC[dev] = c
		}
		c.Inc()
	}
}

// ShardClamps reports how many requests carried a CPU id outside the
// machine and were aliased to shard 0. Zero in a healthy system.
func (d *DAMN) ShardClamps() uint64 { return d.shardClamps.Load() }

// ShardClampsFor reports shard clamps attributed to one device — the
// per-tenant flavour of ShardClamps.
func (d *DAMN) ShardClampsFor(dev int) uint64 {
	d.clampMu.Lock()
	defer d.clampMu.Unlock()
	if dev < 0 || dev >= len(d.shardClampsBy) {
		return 0
	}
	return d.shardClampsBy[dev]
}

// nodeOf returns the NUMA node of a core (clamped).
func (d *DAMN) nodeOf(cpu int) int {
	if cpu < 0 || cpu >= len(d.cfg.CoreNodes) {
		return 0
	}
	return d.cfg.CoreNodes[cpu]
}

// cache returns (creating on demand) the DMA cache for a key. The common
// case — the cache exists — is a lock-free snapshot read; only the first
// allocation against a new (dev, rights, node) identity takes d.mu.
func (d *DAMN) cache(key cacheKey) *dmaCache {
	if m, _ := d.cacheSnap.Load().(map[cacheKey]*dmaCache); m != nil {
		if c := m[key]; c != nil {
			return c
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.caches[key]
	if !ok {
		c = newDMACache(d, key)
		d.caches[key] = c
		snap := make(map[cacheKey]*dmaCache, len(d.caches))
		for k, v := range d.caches {
			snap[k] = v
		}
		d.cacheSnap.Store(snap)
	}
	return c
}

// Alloc is damn_alloc (Table 2): it returns the kernel address of an s-byte
// buffer that is DMA-accessible to dev with the given rights. The buffer is
// 8-byte aligned and physically contiguous. dev must be a registered device
// index in [0, 127].
func (d *DAMN) Alloc(x Ctx, dev int, rights iommu.Perm, size int) (mem.PhysAddr, error) {
	if err := d.checkArgs(dev, rights, size); err != nil {
		return 0, err
	}
	perf.ChargeCat(x.C, d.allocCyc, d.model.DamnAllocCycles)
	d.chargeCtxProtection(x)
	c := d.cache(cacheKey{dev: dev, rights: rights, node: d.nodeOf(x.CPU)})
	return c.allocBytes(x, size)
}

// AllocPages is damn_alloc_pages (Table 2): it returns the head page of
// 2^k physically contiguous, naturally aligned, DMA-accessible pages.
func (d *DAMN) AllocPages(x Ctx, dev int, rights iommu.Perm, k int) (*mem.Page, error) {
	size := mem.PageSize << k
	if err := d.checkArgs(dev, rights, size); err != nil {
		return nil, err
	}
	perf.ChargeCat(x.C, d.allocCyc, d.model.DamnAllocCycles)
	d.chargeCtxProtection(x)
	c := d.cache(cacheKey{dev: dev, rights: rights, node: d.nodeOf(x.CPU)})
	pa, err := c.allocPages(x, k)
	if err != nil {
		return nil, err
	}
	return d.mem.PageOfAddr(pa), nil
}

func (d *DAMN) checkArgs(dev int, rights iommu.Perm, size int) error {
	if dev < 0 || dev > iova.MaxDev {
		return fmt.Errorf("damn: device index %d out of range", dev)
	}
	if rights == 0 || rights&^iommu.PermRW != 0 {
		return fmt.Errorf("damn: bad rights %v", rights)
	}
	if size <= 0 || size > d.MaxAlloc() {
		return fmt.Errorf("damn: size %d out of range (max %d)", size, d.MaxAlloc())
	}
	return nil
}

// Free is damn_free (Table 2): callers pass only the address; DAMN finds
// the owning chunk and allocator through the page-struct metadata (§5.5).
func (d *DAMN) Free(x Ctx, addr mem.PhysAddr) error {
	perf.ChargeCat(x.C, d.freeCyc, d.model.DamnFreeCycles)
	d.chargeCtxProtection(x)
	ch := d.chunkOf(addr)
	if ch == nil {
		return fmt.Errorf("damn: free of non-DAMN address %#x", addr)
	}
	d.putChunkRef(x, ch)
	return nil
}

// FreePages is damn_free_pages (Table 2).
func (d *DAMN) FreePages(x Ctx, page *mem.Page, k int) error {
	return d.Free(x, page.PFN().Addr())
}

// putChunkRef drops one reference on the chunk; the last reference sends
// the chunk back to the freeing core's magazine layer.
func (d *DAMN) putChunkRef(x Ctx, ch *chunk) {
	if ch.head.Put() == 0 {
		// Identify the owning DMA cache and recycle (§5.4 "Top-level
		// deallocation").
		ch.cache.recycle(x, ch)
	}
}

// Owns reports whether addr lies in a DAMN buffer — the page-struct check
// of §5.5: a compound page whose third page carries flag F.
func (d *DAMN) Owns(addr mem.PhysAddr) bool {
	return d.chunkOf(addr) != nil
}

// IOVAOf translates a kernel address inside a DAMN buffer to the device-
// visible IOVA, using the metadata stored in the chunk's tail pages. This
// is the dma_map interposition fast path (§5.3/§5.5).
func (d *DAMN) IOVAOf(addr mem.PhysAddr) (iommu.IOVA, bool) {
	ch := d.chunkOf(addr)
	if ch == nil {
		return 0, false
	}
	return ch.iova + iommu.IOVA(addr-ch.pa), true
}

// chunkOf resolves an address to its DAMN chunk, or nil. It runs on every
// Free and every interposed dma_map, so the registry read goes through the
// lock-free copy-on-write snapshot.
func (d *DAMN) chunkOf(addr mem.PhysAddr) *chunk {
	if d.mem.CheckRange(addr, 1) != nil {
		return nil
	}
	page := d.mem.PageOfAddr(addr)
	head := d.mem.Head(page)
	if !head.IsCompoundHead() {
		return nil
	}
	// Flag F lives on the third page of the compound (§5.5: head and
	// second page have predetermined semantics).
	flagPage := d.mem.PageOf(head.PFN() + 2)
	if !flagPage.Has(mem.FlagDAMN) {
		return nil
	}
	idx := int(flagPage.Private)
	registry, _ := d.regSnap.Load().([]*chunk)
	if idx < 1 || idx > len(registry) {
		return nil
	}
	return registry[idx-1]
}
