package damn

import (
	"math/rand"
	"testing"

	"github.com/asplos18/damn/internal/iommu"
	"github.com/asplos18/damn/internal/mem"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// auditChunks runs the exported conservation Audit (see audit.go) and fails
// the test on the first violated invariant. It returns the number of live
// chunks.
func auditChunks(t *testing.T, f *fixture) int {
	t.Helper()
	live, err := f.d.Audit()
	if err != nil {
		t.Fatal(err)
	}
	return live
}

// TestChunkConservationProperty drives the allocator through arbitrary
// interleavings of Alloc, Free and Shrink from mixed contexts and checks
// after every burst that chunks are neither lost (created but unreachable)
// nor duplicated (two owners for the same pages). Runs against the full
// design and each ablation, since they share the registry machinery but
// take different release paths.
func TestChunkConservationProperty(t *testing.T) {
	configs := map[string]func(*Config){
		"default":        nil,
		"single-context": func(c *Config) { c.SingleContext = true },
		"no-dma-cache":   func(c *Config) { c.NoDMACache = true },
		"dense-huge":     func(c *Config) { c.DenseHugeIOVA = true },
	}
	for name, mod := range configs {
		t.Run(name, func(t *testing.T) {
			f := newFixture(t, mod)
			rng := rand.New(rand.NewSource(23))
			basePages := f.mem.AllocatedPages()
			var live []mem.PhysAddr
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 6 || len(live) == 0: // alloc-biased to build pressure
					x := Ctx{CPU: rng.Intn(4), IRQ: rng.Intn(2) == 0}
					size := rng.Intn(f.d.MaxAlloc()) + 1
					pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, size)
					if err != nil {
						continue
					}
					if !f.d.Owns(pa) {
						t.Fatalf("fresh allocation %#x not owned by DAMN", pa)
					}
					live = append(live, pa)
				case op < 9:
					i := rng.Intn(len(live))
					x := Ctx{CPU: rng.Intn(4), IRQ: rng.Intn(2) == 0}
					if err := f.d.Free(x, live[i]); err != nil {
						t.Fatalf("free %#x: %v", live[i], err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					f.d.Shrink(Ctx{CPU: rng.Intn(4)})
				}
				if step%97 == 0 {
					auditChunks(t, f)
				}
			}
			for _, pa := range live {
				if err := f.d.Free(Ctx{}, pa); err != nil {
					t.Fatal(err)
				}
			}
			// Drain the caches completely; repeated shrinks must converge
			// (a lost chunk would leave footprint the shrinker cannot find,
			// a duplicated one would make it release pages twice).
			for i := 0; i < 3; i++ {
				f.d.Shrink(Ctx{})
			}
			liveChunks := auditChunks(t, f)
			// Whatever survives the shrinker (bump-pinned and huge chunks)
			// must be exactly the pages still charged to this allocator.
			wantPages := int64(liveChunks) * int64(f.d.cfg.ChunkPages)
			if got := f.mem.AllocatedPages() - basePages; got != wantPages {
				t.Fatalf("page accounting: %d pages still allocated, want %d for %d chunks",
					got, wantPages, liveChunks)
			}
		})
	}
}

// TestShrinkAdvancesSimulatedTime is the regression test for the shrinker
// cost-accounting bug: releaseChunk must charge the caller UnmapCycles per
// page and the synchronous IOTLB-invalidation wait, exactly like the
// NoDMACache teardown path. A task that runs Shrink therefore consumes
// simulated time, and work queued behind it starts later.
func TestShrinkAdvancesSimulatedTime(t *testing.T) {
	f := newFixture(t, nil)
	reg := stats.NewRegistry()
	f.d.SetStats(reg)

	// Park a pile of clean chunks in the magazines.
	x := Ctx{}
	var pas []mem.PhysAddr
	for i := 0; i < 8; i++ {
		pa, err := f.d.Alloc(x, testDev, iommu.PermWrite, f.d.MaxAlloc())
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for _, pa := range pas {
		if err := f.d.Free(x, pa); err != nil {
			t.Fatal(err)
		}
	}

	eng := sim.NewEngine(1)
	core := sim.NewCore(eng, 0, 0, 2e9)
	var released int64
	var start, end, nextStart sim.Time
	core.Submit(false, func(task *sim.Task) {
		start = task.Now()
		released = f.d.Shrink(Ctx{C: task})
		end = task.Now()
	})
	core.Submit(false, func(task *sim.Task) { nextStart = task.Start() })
	eng.RunUntilIdle()

	if released == 0 {
		t.Fatal("shrinker released nothing despite cached chunks")
	}
	chunks := released / int64(f.d.cfg.ChunkPages)
	// Each released chunk waits out one synchronous IOTLB invalidation and
	// pays per-page unmap cycles on top.
	minElapsed := sim.Time(chunks) * f.d.model.IOTLBInvLatency
	if end-start < minElapsed {
		t.Fatalf("Shrink advanced the task clock by %v, want >= %v for %d chunks",
			end-start, minElapsed, chunks)
	}
	if core.Busy() < minElapsed {
		t.Fatalf("core busy %v, want >= %v — reclaim not billed as CPU time", core.Busy(), minElapsed)
	}
	if nextStart < end {
		t.Fatalf("task behind the shrinker started at %v, before reclaim finished at %v",
			nextStart, end)
	}

	// The cost shows up in the per-category accounting, too.
	snap := reg.Snapshot()
	if snap.Floats["perf/cycles_damn_teardown"] <= 0 {
		t.Fatal("no teardown cycles accounted")
	}
	if snap.Floats["perf/inv_wait_ps_damn_teardown"] <= 0 {
		t.Fatal("no invalidation wait accounted")
	}
}
