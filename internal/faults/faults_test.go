package faults

import (
	"testing"

	"github.com/asplos18/damn/internal/sim"
)

// TestNilInjectorIsInert: every method must be callable on a nil injector —
// that is the whole zero-cost-when-off contract.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	for _, k := range Kinds {
		if inj.Should(k) {
			t.Fatalf("nil injector fired %s", k)
		}
	}
	if d := inj.Duration(LinkReorder, sim.Microsecond, 2*sim.Microsecond); d != 0 {
		t.Fatalf("nil injector drew duration %v", d)
	}
	inj.ObserveRecovery(ComplLoss, sim.Microsecond)
	inj.SetStats(nil)
	if inj.Injected(LinkDrop) != 0 || inj.InjectedTotal() != 0 {
		t.Fatal("nil injector counted faults")
	}
	if inj.Counts() != nil {
		t.Fatal("nil injector returned counts")
	}
	if inj.ScheduleDigest() != 0 {
		t.Fatal("nil injector has a digest")
	}
	if inj.FormatCounts() != "faults off" {
		t.Fatalf("nil injector formatted %q", inj.FormatCounts())
	}
}

// drive visits every kind n times and returns the decision trace.
func drive(inj *Injector, n int) []bool {
	var trace []bool
	for i := 0; i < n; i++ {
		for _, k := range Kinds {
			fired := inj.Should(k)
			trace = append(trace, fired)
			if fired && (k == LinkReorder || k == ComplDelay) {
				inj.Duration(k, sim.Microsecond, 100*sim.Microsecond)
			}
		}
	}
	return trace
}

// TestSeedReplay: the same seed replays the identical decision sequence,
// counts and digest.
func TestSeedReplay(t *testing.T) {
	cfg := Config{Seed: 99, Rates: UniformRates(0.1)}
	a, b := New(cfg), New(cfg)
	ta, tb := drive(a, 500), drive(b, 500)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if a.ScheduleDigest() != b.ScheduleDigest() {
		t.Fatalf("digests diverged: %#x vs %#x", a.ScheduleDigest(), b.ScheduleDigest())
	}
	if a.InjectedTotal() != b.InjectedTotal() || a.InjectedTotal() == 0 {
		t.Fatalf("totals: %d vs %d", a.InjectedTotal(), b.InjectedTotal())
	}
}

// TestSeedsDiverge: different seeds must give different schedules.
func TestSeedsDiverge(t *testing.T) {
	a := New(Config{Seed: 1, Rates: UniformRates(0.1)})
	b := New(Config{Seed: 2, Rates: UniformRates(0.1)})
	drive(a, 500)
	drive(b, 500)
	if a.ScheduleDigest() == b.ScheduleDigest() {
		t.Fatalf("seeds 1 and 2 share digest %#x", a.ScheduleDigest())
	}
}

// TestStreamsIndependent: changing one kind's rate must not shift another
// kind's schedule — each kind draws from its own stream, and rate-zero
// kinds draw nothing.
func TestStreamsIndependent(t *testing.T) {
	ratesA := UniformRates(0.1)
	ratesB := UniformRates(0.1)
	ratesB[DMAFault] = 0 // turning a kind off...
	a := New(Config{Seed: 7, Rates: ratesA})
	b := New(Config{Seed: 7, Rates: ratesB})
	const n = 2000
	for i := 0; i < n; i++ {
		fa := a.Should(AllocFail)
		fb := b.Should(AllocFail)
		if fa != fb {
			t.Fatalf("alloc_fail decision %d shifted when dma_fault was disabled", i)
		}
		a.Should(DMAFault) // ...must leave the other kinds' streams alone
		b.Should(DMAFault)
	}
	if a.Injected(AllocFail) != b.Injected(AllocFail) {
		t.Fatalf("alloc_fail counts diverged: %d vs %d", a.Injected(AllocFail), b.Injected(AllocFail))
	}
	if b.Injected(DMAFault) != 0 {
		t.Fatal("rate-zero kind fired")
	}
}

// TestRateZeroNeverFires and rate-one always fires.
func TestRateExtremes(t *testing.T) {
	inj := New(Config{Seed: 3, Rates: map[Kind]float64{LinkDrop: 1.0}})
	for i := 0; i < 100; i++ {
		if !inj.Should(LinkDrop) {
			t.Fatal("rate 1.0 did not fire")
		}
		if inj.Should(LinkCorrupt) {
			t.Fatal("absent kind fired")
		}
	}
	if inj.Injected(LinkDrop) != 100 {
		t.Fatalf("count %d", inj.Injected(LinkDrop))
	}
}

// TestDurationBounds: drawn durations stay inside [min, max] and are
// deterministic per seed.
func TestDurationBounds(t *testing.T) {
	a := New(Config{Seed: 5, Rates: UniformRates(1)})
	b := New(Config{Seed: 5, Rates: UniformRates(1)})
	min, max := 2*sim.Microsecond, 30*sim.Microsecond
	for i := 0; i < 1000; i++ {
		da := a.Duration(LinkReorder, min, max)
		db := b.Duration(LinkReorder, min, max)
		if da != db {
			t.Fatalf("draw %d diverged: %v vs %v", i, da, db)
		}
		if da < min || da > max {
			t.Fatalf("draw %d out of bounds: %v", i, da)
		}
	}
	if d := a.Duration(ComplDelay, max, max); d != max {
		t.Fatalf("degenerate range drew %v", d)
	}
}
