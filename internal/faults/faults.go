// Package faults is the simulator's deterministic fault-injection plane.
// Real hardware at the OS/device boundary does not only run the happy path:
// links drop and mangle frames, DMA translations fault into the IOMMU's
// fault-record queue, invalidation commands time out (VT-d's ITE), memory
// and IOVA space run out, and completion interrupts get lost. Every layer of
// the simulated machine consults one per-machine Injector at its fault
// points; the layers' recovery paths (re-posting descriptors, retry with
// backoff, allocator fallback chains) then make the injected fault
// survivable — and measurably so, because recovery cost is charged to
// simulated time like any other work.
//
// Determinism is the defining property: each fault kind draws from its own
// seeded random stream, so a fault schedule is a pure function of (seed,
// sequence of fault-point visits). Since the simulation itself is
// deterministic, the same seed replays byte-for-byte the same faults — a
// chaos-run failure reproduces exactly. A nil *Injector is valid everywhere
// and injects nothing, so instrumented hot paths cost one nil check when
// fault injection is off.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/stats"
)

// Kind enumerates the typed fault points of the DMA stack.
type Kind uint8

const (
	// LinkDrop loses a wire segment before it reaches the NIC.
	LinkDrop Kind = iota
	// LinkCorrupt mangles a frame in flight; the NIC's hardware checksum
	// validation flags the completion and the driver drops the packet.
	LinkCorrupt
	// LinkDuplicate delivers a segment twice (it pays wire time twice).
	LinkDuplicate
	// LinkReorder holds a segment back so later traffic overtakes it.
	LinkReorder
	// DMAFault blocks one device-side translation even though the mapping
	// is valid — the VT-d fault-record path (§2.1 analogue: hardware
	// reports the fault and the transfer aborts; the OS reads the record).
	DMAFault
	// InvTimeout is VT-d's ITE: an invalidation-queue drain times out and
	// the OS retries with exponential backoff in simulated time.
	InvTimeout
	// IOVAExhaust makes a dma_map fail as if the IOVA space were full.
	IOVAExhaust
	// AllocFail makes a page allocation fail as if memory were exhausted
	// (after the shrinkers have run, as a real OOM would).
	AllocFail
	// ComplDelay delays an RX completion interrupt.
	ComplDelay
	// ComplLoss loses an RX completion interrupt entirely; the driver's
	// NAPI-style watchdog poll recovers the completion later.
	ComplLoss
	// UnmapFail makes a dma_unmap report failure (inconsistent mapping
	// state, e.g. after a function-level reset tore the domain down under
	// the driver). The driver must quarantine the buffer — except DAMN
	// buffers, whose chunk-owned mapping is independent of the per-DMA
	// unmap and which can therefore be released safely.
	UnmapFail

	numKinds
)

// Kinds lists every fault kind, in order.
var Kinds = []Kind{
	LinkDrop, LinkCorrupt, LinkDuplicate, LinkReorder, DMAFault,
	InvTimeout, IOVAExhaust, AllocFail, ComplDelay, ComplLoss, UnmapFail,
}

func (k Kind) String() string {
	switch k {
	case LinkDrop:
		return "link_drop"
	case LinkCorrupt:
		return "link_corrupt"
	case LinkDuplicate:
		return "link_duplicate"
	case LinkReorder:
		return "link_reorder"
	case DMAFault:
		return "dma_fault"
	case InvTimeout:
		return "inv_timeout"
	case IOVAExhaust:
		return "iova_exhaust"
	case AllocFail:
		return "alloc_fail"
	case ComplDelay:
		return "compl_delay"
	case ComplLoss:
		return "compl_loss"
	case UnmapFail:
		return "unmap_fail"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config describes one machine's fault plane.
type Config struct {
	// Seed roots every fault kind's random stream. Two machines with the
	// same Seed and the same workload see the same fault schedule.
	Seed int64
	// Rates is the per-visit injection probability of each fault kind;
	// kinds absent from the map never fire.
	Rates map[Kind]float64
}

// UniformRates gives every fault kind the same injection probability — the
// chaos harness's default schedule.
func UniformRates(p float64) map[Kind]float64 {
	m := make(map[Kind]float64, len(Kinds))
	for _, k := range Kinds {
		m[k] = p
	}
	return m
}

// Injector is one machine's fault plane. It is consulted from the single
// simulation goroutine only (like the engine it rides on).
type Injector struct {
	rates  [numKinds]float64
	rngs   [numKinds]*rand.Rand
	counts [numKinds]uint64
	// devFilter restricts a kind's fault points to visits attributed to one
	// device (-1 = any). Filtered-out visits return false *without drawing*,
	// so an unset filter is bit-identical to the unfiltered injector and a
	// per-tenant storm never perturbs its neighbours' schedules.
	devFilter [numKinds]int
	// digest folds every decision of every stream into one value, so two
	// runs can assert byte-identical fault schedules without recording
	// them (FNV-1a over (kind, decision) pairs).
	digest uint64

	// Observability (nil-safe handles; see SetStats).
	injectedC [numKinds]*stats.Counter
	recoveryH [numKinds]*stats.Histogram
}

// New builds an injector from a config. Each kind gets an independent
// random stream derived from the seed, so the schedule of one fault kind
// does not shift when another kind's rate changes.
func New(cfg Config) *Injector {
	inj := &Injector{digest: 1469598103934665603} // FNV-1a offset basis
	for _, k := range Kinds {
		inj.rates[k] = cfg.Rates[k]
		inj.devFilter[k] = -1
		// splitmix-style per-kind seed derivation keeps streams distinct
		// even for adjacent kinds.
		s := int64(uint64(cfg.Seed) ^ uint64(k+1)*0x9E3779B97F4A7C15)
		inj.rngs[k] = rand.New(rand.NewSource(s))
	}
	return inj
}

// SetStats attaches a metrics registry: one injected-fault counter and one
// recovery-latency histogram per fault kind, under the "faults" component.
func (inj *Injector) SetStats(r *stats.Registry) {
	if inj == nil {
		return
	}
	for _, k := range Kinds {
		inj.injectedC[k] = r.Counter("faults", "injected_"+k.String())
		inj.recoveryH[k] = r.Histogram("faults", "recovery_ps_"+k.String())
	}
}

// SetRate changes kind k's per-visit injection probability mid-run. The
// recovery figure uses this to schedule a deterministic fault *storm*: an
// event at a fixed simulated time raises the DMA-fault rate, a later event
// drops it back. Because each kind owns its stream and zero-rate kinds draw
// nothing, a scheduled rate change is exactly as deterministic as the
// schedule of the events that perform it.
func (inj *Injector) SetRate(k Kind, rate float64) {
	if inj == nil {
		return
	}
	inj.rates[k] = rate
}

// SetDeviceFilter restricts fault kind k to fault points attributed to one
// source device; dev < 0 clears the filter. Device-attributed fault points
// consult ShouldDev; plain Should ignores filters (its call sites carry no
// device identity). The tenant blast-radius experiments use this to storm a
// single virtual function while its neighbours see a fault-free schedule.
func (inj *Injector) SetDeviceFilter(k Kind, dev int) {
	if inj == nil {
		return
	}
	if dev < 0 {
		dev = -1
	}
	inj.devFilter[k] = dev
}

// Rate reports kind k's current per-visit injection probability.
func (inj *Injector) Rate(k Kind) float64 {
	if inj == nil {
		return 0
	}
	return inj.rates[k]
}

// Should reports whether fault kind k fires at this fault-point visit.
// A nil injector never fires. Kinds with rate zero draw nothing, so their
// streams stay aligned whatever other code paths execute.
func (inj *Injector) Should(k Kind) bool {
	if inj == nil || inj.rates[k] <= 0 {
		return false
	}
	fired := inj.rngs[k].Float64() < inj.rates[k]
	bit := uint64(0)
	if fired {
		bit = 1
		inj.counts[k]++
		inj.injectedC[k].Inc()
	}
	inj.digest = (inj.digest ^ (uint64(k)<<1 | bit)) * 1099511628211
	return fired
}

// ShouldDev is Should for fault points that carry a source-device identity.
// When kind k has a device filter installed and dev does not match, the
// visit returns false without drawing, so the filtered kind's stream
// advances only on target-device visits. With no filter installed ShouldDev
// is bit-identical to Should.
func (inj *Injector) ShouldDev(k Kind, dev int) bool {
	if inj == nil || inj.rates[k] <= 0 {
		return false
	}
	if f := inj.devFilter[k]; f >= 0 && dev != f {
		return false
	}
	return inj.Should(k)
}

// Duration draws a deterministic duration in [min, max] from kind k's
// stream — the hold-back of a reordered segment, the lateness of a delayed
// completion. Call it only after Should(k) returned true so the stream
// advances identically across replays.
func (inj *Injector) Duration(k Kind, min, max sim.Time) sim.Time {
	if inj == nil {
		return 0
	}
	if max <= min {
		return min
	}
	d := min + sim.Time(inj.rngs[k].Int63n(int64(max-min)+1))
	inj.digest = (inj.digest ^ uint64(d)) * 1099511628211
	return d
}

// ObserveRecovery records how long the stack took to recover from one
// injected fault of kind k (simulated picoseconds) — the latency cost of
// the degradation path, attributable per fault type.
func (inj *Injector) ObserveRecovery(k Kind, d sim.Time) {
	if inj == nil {
		return
	}
	inj.recoveryH[k].Observe(float64(d))
}

// Injected reports how many faults of kind k have fired.
func (inj *Injector) Injected(k Kind) uint64 {
	if inj == nil {
		return 0
	}
	return inj.counts[k]
}

// InjectedTotal reports all fired faults.
func (inj *Injector) InjectedTotal() uint64 {
	if inj == nil {
		return 0
	}
	var n uint64
	for _, k := range Kinds {
		n += inj.counts[k]
	}
	return n
}

// Counts returns fired-fault counts keyed by kind name (snapshot).
func (inj *Injector) Counts() map[string]uint64 {
	if inj == nil {
		return nil
	}
	m := make(map[string]uint64, len(Kinds))
	for _, k := range Kinds {
		m[k.String()] = inj.counts[k]
	}
	return m
}

// ScheduleDigest folds every decision the injector has made into one
// value: two runs with equal digests executed byte-identical fault
// schedules. A nil injector reports zero.
func (inj *Injector) ScheduleDigest() uint64 {
	if inj == nil {
		return 0
	}
	return inj.digest
}

// FormatCounts renders non-zero fired-fault counts deterministically
// ("link_drop=12 dma_fault=3"), for logs and the chaos harness.
func (inj *Injector) FormatCounts() string {
	if inj == nil {
		return "faults off"
	}
	var keys []string
	counts := inj.Counts()
	for k, n := range counts {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, counts[k])
	}
	if out == "" {
		return "no faults fired"
	}
	return out
}
