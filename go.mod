module github.com/asplos18/damn

go 1.24
