// Netperf example: run the paper's single-core and bidirectional
// TCP_STREAM experiments across all protection schemes and print the
// comparison — a hands-on miniature of Figures 4 and 6.
package main

import (
	"flag"
	"fmt"
	"log"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/workloads"
)

func main() {
	mode := flag.String("mode", "single", "single (Fig 4) or bidir (Fig 6)")
	flag.Parse()

	fmt.Printf("netperf TCP_STREAM, mode=%s\n\n", *mode)
	fmt.Printf("%-12s %10s %10s %8s\n", "scheme", "RX Gb/s", "TX Gb/s", "CPU")
	for _, scheme := range damn.AllSchemes {
		m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 1 << 30})
		if err != nil {
			log.Fatal(err)
		}
		tb := m.Testbed()
		cfg := workloads.NetperfConfig{
			Machine:  tb,
			Warmup:   20 * sim.Millisecond,
			Duration: 60 * sim.Millisecond,
		}
		switch *mode {
		case "single":
			// Four instances pinned to core 0, as in §6.1.
			cfg.RXCores = []int{0, 0, 0, 0}
		case "bidir":
			for i := 0; i < len(tb.Cores); i++ {
				cfg.RXCores = append(cfg.RXCores, i)
				cfg.TXCores = append(cfg.TXCores, i)
			}
			cfg.ExtraCycles = 44000
			cfg.Wakeup = true
		default:
			log.Fatalf("unknown mode %q", *mode)
		}
		res, err := workloads.RunNetperf(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.1f %10.1f %7.1f%%\n",
			scheme, res.RXGbps, res.TXGbps, res.CPUUtil*100)
	}
	fmt.Println("\n(expect: damn ≈ iommu-off; strict collapses; shadow burns CPU/memory)")
}
