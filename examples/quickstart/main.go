// Quickstart: build a DAMN-protected machine, allocate device-visible
// packet buffers, watch the permanent IOMMU mapping work, and see a
// malicious device bounce off it.
package main

import (
	"fmt"
	"log"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/iova"
)

func main() {
	m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine up: scheme=%s\n\n", m.Scheme())

	// 1. Allocate an RX packet buffer: damn_alloc + dma_map.
	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("damn_alloc(dev=NIC, rights=w, 2048):\n")
	fmt.Printf("  kernel address : %#x\n", buf.Addr)
	fmt.Printf("  DMA address    : %#x (bit 47 set: DAMN partition)\n", buf.DMAAddr)
	if e, ok := iova.Decode(buf.DMAAddr); ok {
		fmt.Printf("  encoded fields : cpu=%d rights=%s dev=%d offset=%#x (Figure 3)\n\n",
			e.CPU, e.Rights, e.Dev, e.Offset)
	}

	// 2. The NIC deposits a packet through the permanent mapping.
	nic := m.Attacker() // same hardware identity as the NIC
	if err := nic.TryWrite(buf.DMAAddr, []byte("hello through the IOMMU")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NIC DMA write landed; kernel reads: %q\n\n", buf.Bytes()[:23])

	// 3. The same device turning malicious gets nothing else.
	secretPA, err := m.Testbed().Slab.Alloc(64, 0)
	if err != nil {
		log.Fatal(err)
	}
	m.Testbed().Mem.Write(secretPA, []byte("TOP-SECRET"))
	if _, err := nic.TryRead(0x1000, 64); err != nil {
		fmt.Printf("malicious read of unmapped memory: BLOCKED (%v)\n", err)
	}
	found, readable := nic.ScanForSecret(buf.DMAAddr&^0xFFFFF, (buf.DMAAddr&^0xFFFFF)+1<<21, []byte("TOP-SECRET"))
	fmt.Printf("scan of the device-visible region: %d pages readable, secret found %d times\n\n",
		readable, len(found))

	// 4. Free: no unmapping, no IOTLB invalidation — the whole point.
	tb := m.Testbed()
	unmapsBefore := tb.IOMMU.Unmappings
	if err := buf.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("damn_free: IOMMU unmap operations performed = %d (permanently mapped)\n",
		tb.IOMMU.Unmappings-unmapsBefore)
	fmt.Printf("allocator footprint: %d KiB (chunk recycled in the DMA cache)\n",
		tb.Damn.FootprintBytes()>>10)
}
