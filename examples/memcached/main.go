// Memcached example: the Fig 7 key-value workload — 28 memcached
// instances, 50/50 GET/SET with 512 KiB values — across all protection
// schemes.
package main

import (
	"fmt"
	"log"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/sim"
	"github.com/asplos18/damn/internal/workloads"
)

func main() {
	fmt.Println("memcached + memslap (28 instances, 50/50 GET/SET, 512 KiB values)")
	fmt.Println()
	fmt.Printf("%-12s %10s %8s\n", "scheme", "TPS", "CPU")
	for _, scheme := range damn.AllSchemes {
		m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 1 << 30})
		if err != nil {
			log.Fatal(err)
		}
		res, err := workloads.RunMemcached(workloads.MemcachedConfig{
			Machine:  m.Testbed(),
			Warmup:   15 * sim.Millisecond,
			Duration: 45 * sim.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.0f %7.1f%%\n", scheme, res.TPS, res.CPUUtil*100)
	}
	fmt.Println("\n(expect: strict at ≈half TPS with a CPU spike; shadow at ≈1.6–1.8× damn's CPU)")
}
