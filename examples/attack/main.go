// Attack example: a compromised NIC mounts the paper's TOCTTOU attack
// (§4.1/§5.2) against deferred protection and against DAMN, showing the
// window in the former and the accessor copy defeating it in the latter.
package main

import (
	"fmt"
	"log"

	damn "github.com/asplos18/damn"
	"github.com/asplos18/damn/internal/dmaapi"
	"github.com/asplos18/damn/internal/netstack"
	"github.com/asplos18/damn/internal/testbed"
)

func main() {
	fmt.Println("TOCTTOU: firewall inspects a header; the NIC rewrites it afterwards")
	fmt.Println()

	packet := []byte("SRC=10.0.0.1 ACCEPT")
	evil := []byte("SRC=66.6.6.66 EVIL!")

	// --- Deferred (Linux default): the attack lands. ---
	{
		m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDeferred, MemBytes: 128 << 20, Cores: 2})
		if err != nil {
			log.Fatal(err)
		}
		tb := m.Testbed()
		skb, err := netstack.AllocSKB(tb.Kernel, nil, testbed.NICDeviceID, 2048, true)
		if err != nil {
			log.Fatal(err)
		}
		v, err := skb.MapForDevice(nil, dmaapi.FromDevice)
		if err != nil {
			log.Fatal(err)
		}
		tb.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet)
		skb.SetReceived(len(packet), len(packet))
		skb.UnmapForDevice(nil, dmaapi.FromDevice) // deferred: IOTLB stays stale

		hdr, _ := skb.Access(nil, len(packet))
		fmt.Printf("[deferred] firewall sees : %q -> ACCEPT\n", hdr)
		m.Attacker().TOCTTOUFlip(v, evil, 1)
		hdr2, _ := skb.Access(nil, len(packet))
		fmt.Printf("[deferred] kernel now has: %q  <-- ATTACK LANDED in the invalidation window\n\n", hdr2)
	}

	// --- DAMN: the buffer stays device-writable by design, but the
	// accessed bytes were copied out of reach. ---
	{
		m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 128 << 20, Cores: 2})
		if err != nil {
			log.Fatal(err)
		}
		tb := m.Testbed()
		skb, err := netstack.DmaAllocSKB(tb.Kernel, nil, testbed.NICDeviceID, 2048, true)
		if err != nil {
			log.Fatal(err)
		}
		v, _ := tb.Damn.IOVAOf(skb.HeadPA())
		tb.IOMMU.DMAWrite(testbed.NICDeviceID, v, packet)
		skb.SetReceived(len(packet), len(packet))

		hdr, _ := skb.Access(nil, len(packet))
		fmt.Printf("[damn]     firewall sees : %q -> ACCEPT (header copied on access, §5.2)\n", hdr)
		if err := m.Attacker().TryWrite(v, evil); err != nil {
			log.Fatal("unexpected: DAMN RX buffers are device-writable by design")
		}
		hdr2, _ := skb.Access(nil, len(packet))
		fmt.Printf("[damn]     kernel still  : %q  <-- attack had no effect on inspected bytes\n", hdr2)
		fmt.Printf("[damn]     raw buffer now: %q (writable, but the OS never re-reads it)\n",
			tb.Mem.Bytes(skb.HeadPA(), len(packet)))
	}
}
