GO ?= go

.PHONY: all fmt vet staticcheck build test race race-full alloc-gate bench bench-go chaos recovery scaling loss topo tenants bypass ci

all: build

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is not vendored; CI installs it with `go install`. Locally the
# target fails with instructions rather than silently passing.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not found: go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the simulations ~10×; -short skips the full
# figure reproductions (covered by `make test`) so the pass stays bounded.
race:
	$(GO) test -race -short -timeout 20m ./...

# The full race pass: every test, figure reproductions included. CI runs it
# as its own job; budget the better part of an hour locally.
race-full:
	$(GO) test -race -timeout 60m ./...

# alloc-gate pins the zero-allocation property of the per-packet data path
# and the engine's cancel-heavy ticker churn: the DAMN alloc/free fast path,
# dma_map/dma_unmap under every scheme, a full RX segment through the pooled
# skb path (with and without the multi-tenant capability gate installed), a
# full ARQ loss-recovery cycle (fast retransmit included), the capability
# check itself, a ticker start/stop storm, the idle bypass busy-poll tick and
# a segment through the virtqueue harvest/repost cycle must not touch the Go
# heap in steady state. Runs in seconds; CI fails on any regression.
alloc-gate:
	$(GO) test -run 'ZeroAlloc' -count=1 .

# bench regenerates BENCH_PR10.json: engine event-loop microbenchmarks
# (ns/op, allocs/op — the 0-alloc hot paths are regression-gated, the
# multi-tenant capability check included), the RSS scale-out grid with its
# monotone-growth gates (bypass columns included, excluded from the strict
# contention gate), the kernel-bypass figure with its acceptance gates, the
# tenants blast-radius macro with its containment
# gates, the 4-machine topology wall-clock scaling leg (serial vs
# one-worker-per-machine, byte-compared, speedup-gated on multi-CPU hosts),
# plus the quick-suite wall clock at -parallel 1 vs the parallel leg with
# the speedup and a byte-identity check between the two runs. benchreport
# refuses to capture at gomaxprocs 1; on a single-CPU host this target
# oversubscribes to two timesliced Ps so the report still records a genuine
# two-worker leg.
bench:
	@p=$$(nproc); [ $$p -ge 2 ] || p=2; \
	set -x; $(GO) run ./cmd/benchreport -out BENCH_PR10.json -procs $$p -parallel $$p

# bench-go runs the full go-test benchmark tiers: data-structure micro
# benchmarks, engine micro benchmarks, one macro benchmark per paper figure,
# and the serial/parallel full-suite macro.
bench-go:
	$(GO) test -bench=. -benchmem -timeout 60m -run=^$$ .

# The chaos harness: workloads under deterministic fault injection, with
# conservation audits and seed-replay checks, under the race detector.
chaos:
	$(GO) test -race -short -timeout 10m -run Chaos ./...

# The device-recovery suite: the fault-domain supervisor package end to end,
# plus the recovery workload/figure and the unmap-failure conservation
# regression, all under the race detector.
recovery:
	$(GO) test -race -short -timeout 15m ./internal/recovery/...
	$(GO) test -race -short -timeout 15m -run 'Recovery|UnmapFailure' \
		./internal/workloads/... ./internal/experiments/...

# The RSS scale-out figure (quick mode) under the race detector, plus the
# scaling determinism tests: Gb/s must grow with simulated core count and
# ring placement must be identical across runs and -parallel settings.
scaling:
	$(GO) run -race ./cmd/damnbench -quick -exp scaling
	$(GO) test -race -timeout 10m -run 'TestScaling|TestNAPIRunsOnRingCore|TestRXPathZeroAllocMultiRing' \
		./internal/experiments/... ./internal/netstack/... .

# The loss-resilience suite: the ARQ transport's unit tests, the lossy-link
# workload and figure (goodput recovery, seed replay, serial-vs-parallel
# byte identity), the watchdog × retransmit × recovery interplay gate, and
# the retransmit-path allocation gate — all under the race detector.
loss:
	$(GO) run -race ./cmd/damnbench -quick -exp loss
	$(GO) test -race -timeout 15m -run 'TestArq|TestLoss|TestRetransmit' \
		./internal/netstack/... ./internal/workloads/... ./internal/experiments/... .

# The multi-machine topology suite under the race detector: the sharded
# conservative-parallel executor's serial-vs-parallel identity bars (cluster
# primitives, ring/incast/memcached workloads, the cluster figure), the
# cross-machine DAMN conservation audit, the fault plane on topologies, and
# the chaos schedule goldens that pin the Link wire-model refactor.
topo:
	$(GO) run -race ./cmd/damnbench -quick -exp cluster -topo-workers 4
	$(GO) test -race -timeout 15m -run 'TestCluster|TestRing|TestIncast|TestMemcachedCluster|TestChaosScheduleGolden|TestLink' \
		./internal/sim/... ./internal/device/... ./internal/topo/... \
		./internal/workloads/... ./internal/experiments/...

# The multi-tenant suite under the race detector: the tenants figure (quick
# mode), the capability table, the fair-share pacer and containment-ladder
# unit tests, the blast-radius acceptance gate and the tenancy-off
# byte-identity checks.
tenants:
	$(GO) run -race ./cmd/damnbench -quick -exp tenants
	$(GO) test -race -timeout 15m -run 'TestTenan|TestLadder|TestCapability|TestFairShare|TestCapCheck' \
		./internal/tenant/... ./internal/workloads/... ./internal/experiments/... .

# The kernel-bypass suite under the race detector: the bypass figure (quick
# mode) with its in-figure acceptance gates (bypass-raw beats iommu-off,
# bypass-prot within 10% of raw, idle busy-poll burn on both flavors, zero
# used-ring publish faults), the attack verdicts via attacksim -bypass, and
# the virtqueue/driver/determinism tests plus the two bypass allocation
# gates.
bypass:
	$(GO) run -race ./cmd/damnbench -quick -exp bypass
	$(GO) run -race ./cmd/attacksim -bypass > /dev/null
	$(GO) test -race -timeout 15m -run 'TestBypass|TestVirtqueue' \
		./internal/device/... ./internal/experiments/... .

ci: fmt vet build race chaos recovery scaling loss topo tenants bypass
