GO ?= go

.PHONY: all fmt vet build test race bench chaos ci

all: build

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the simulations ~10×; -short skips the full
# figure reproductions (covered by `make test`) so the pass stays bounded.
race:
	$(GO) test -race -short -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The chaos harness: workloads under deterministic fault injection, with
# conservation audits and seed-replay checks, under the race detector.
chaos:
	$(GO) test -race -short -timeout 10m -run Chaos ./...

ci: fmt vet build race chaos
