package damn_test

import (
	"testing"

	damn "github.com/asplos18/damn"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// The NIC can write it through its DMA address.
	attacker := m.Attacker() // same device identity
	if err := attacker.TryWrite(buf.DMAAddr, []byte("packet")); err != nil {
		t.Fatalf("legitimate DMA failed: %v", err)
	}
	if string(buf.Bytes()[:6]) != "packet" {
		t.Fatal("DMA write not visible")
	}
	if err := buf.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIIsolation(t *testing.T) {
	for _, scheme := range []damn.Scheme{damn.SchemeStrict, damn.SchemeShadow, damn.SchemeDAMN} {
		m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 128 << 20})
		if err != nil {
			t.Fatal(err)
		}
		// A kernel secret the device was never given.
		secret, err := m.Testbed().Slab.Alloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.Testbed().Mem.Write(secret, []byte("super secret"))
		if _, err := m.Attacker().TryRead(0x1000, 16); err == nil {
			t.Errorf("%s: arbitrary low-memory read should fault", scheme)
		}
	}
}

func TestPublicAPIAllSchemesConstruct(t *testing.T) {
	for _, scheme := range append(damn.AllSchemes,
		damn.SchemeDAMNHugeDense, damn.SchemeDAMNNoIOMMU) {
		m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 64 << 20, Cores: 4})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if m.Scheme() != scheme {
			t.Fatalf("scheme mismatch: %s", m.Scheme())
		}
		buf, err := m.AllocPacketBuffer(damn.RightsRead, 1500)
		if err != nil {
			t.Fatalf("%s: alloc: %v", scheme, err)
		}
		if err := buf.Free(); err != nil {
			t.Fatalf("%s: free: %v", scheme, err)
		}
	}
}

func TestPublicAPIDamnAllocatorExposed(t *testing.T) {
	m, _ := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 64 << 20, Cores: 2})
	if m.DamnAllocator() == nil {
		t.Fatal("DAMN machine should expose the allocator")
	}
	m2, _ := damn.NewMachine(damn.Config{Scheme: damn.SchemeDeferred, MemBytes: 64 << 20, Cores: 2})
	if m2.DamnAllocator() != nil {
		t.Fatal("baseline machine should not expose an allocator")
	}
}

func TestPublicAPISKB(t *testing.T) {
	m, _ := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 64 << 20, Cores: 2})
	skb, err := m.NewSKB(4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if !skb.DamnOwned() {
		t.Fatal("RX skb on a DAMN machine should be DAMN-owned")
	}
	skb.Free(nil)
}
