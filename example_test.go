package damn_test

import (
	"fmt"
	"log"

	damn "github.com/asplos18/damn"
)

// Example shows the core DAMN flow: allocate a permanently-mapped packet
// buffer, let the NIC DMA into it, and observe that freeing performs no
// IOMMU work at all.
func Example() {
	m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 128 << 20, Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	buf, err := m.AllocPacketBuffer(damn.RightsWrite, 2048)
	if err != nil {
		log.Fatal(err)
	}
	// The NIC writes a packet through its permanent mapping.
	if err := m.Attacker().TryWrite(buf.DMAAddr, []byte("packet")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel reads: %s\n", buf.Bytes()[:6])

	unmapsBefore := m.Testbed().IOMMU.Unmappings
	if err := buf.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IOMMU unmaps performed by free: %d\n", m.Testbed().IOMMU.Unmappings-unmapsBefore)
	// Output:
	// kernel reads: packet
	// IOMMU unmaps performed by free: 0
}

// ExampleMachine_Attacker demonstrates the protection: the device identity
// that owns packet buffers still cannot reach anything else.
func ExampleMachine_Attacker() {
	m, err := damn.NewMachine(damn.Config{Scheme: damn.SchemeDAMN, MemBytes: 128 << 20, Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Attacker().TryRead(0x2000, 64); err != nil {
		fmt.Println("arbitrary DMA read: blocked")
	}
	// Output:
	// arbitrary DMA read: blocked
}

// ExampleNewMachine_schemes builds one machine per evaluated protection
// configuration.
func ExampleNewMachine_schemes() {
	for _, scheme := range damn.AllSchemes {
		m, err := damn.NewMachine(damn.Config{Scheme: scheme, MemBytes: 64 << 20, Cores: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: damn-deployed=%v\n", m.Scheme(), m.DamnAllocator() != nil)
	}
	// Output:
	// iommu-off: damn-deployed=false
	// deferred: damn-deployed=false
	// strict: damn-deployed=false
	// shadow: damn-deployed=false
	// damn: damn-deployed=true
}
